//! Offline drop-in subset of the `criterion` bench API.
//!
//! The build environment has no crates.io access, so this shim keeps the
//! workspace's `benches/` compiling and *running*: every benchmark executes
//! a warm-up pass plus a small number of timed iterations and prints the
//! mean wall-clock per iteration. No statistics, plots or regression
//! tracking — the numbers are indicative, the harness shape is identical.

use std::time::{Duration, Instant};

/// Opaque value barrier (defers to `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-iteration measurement driver handed to bench closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`].
    mean_ns: f64,
    iters_done: u64,
    max_iters: u64,
    budget: Duration,
}

impl Bencher {
    fn new(max_iters: u64, budget: Duration) -> Self {
        Bencher {
            mean_ns: f64::NAN,
            iters_done: 0,
            max_iters,
            budget,
        }
    }

    /// Times `f` over up to `max_iters` iterations (bounded by the time
    /// budget) after one warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < self.max_iters && (iters == 0 || start.elapsed() < self.budget) {
            black_box(f());
            iters += 1;
        }
        self.iters_done = iters;
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters.max(1) as f64;
    }
}

/// Benchmark identifier: function name + parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Throughput annotation (recorded, reported as elements/sec when set).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level bench context.
pub struct Criterion {
    sample_size: u64,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Applies command-line overrides (accepted and ignored; the shim has
    /// no filtering or baseline machinery).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Builder-style default iteration count (consuming, as on the real
    /// `Criterion`).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n as u64;
        self
    }

    /// Builder-style time budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        run_one(name, self.sample_size, self.measurement_time, None, f);
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Sets the per-benchmark time budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Annotates throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a named benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl std::fmt::Display, f: F) {
        let full = format!("{}/{}", self.name, name);
        run_one(
            &full,
            self.sample_size,
            self.measurement_time,
            self.throughput,
            f,
        );
    }

    /// Runs a parameterised benchmark in this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let full = format!("{}/{}", self.name, id);
        run_one(
            &full,
            self.sample_size,
            self.measurement_time,
            self.throughput,
            |b| f(b, input),
        );
    }

    /// Ends the group (printing is per-benchmark; nothing buffered).
    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: u64,
    budget: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher::new(sample_size.max(1), budget);
    f(&mut b);
    if b.iters_done == 0 {
        println!("{name:<48} (closure never called Bencher::iter)");
        return;
    }
    let per = b.mean_ns;
    let human = if per >= 1e9 {
        format!("{:.3} s", per / 1e9)
    } else if per >= 1e6 {
        format!("{:.3} ms", per / 1e6)
    } else if per >= 1e3 {
        format!("{:.3} µs", per / 1e3)
    } else {
        format!("{per:.0} ns")
    };
    match throughput {
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 / (per / 1e9);
            println!(
                "{name:<48} {human:>12}/iter  ({eps:.0} elem/s, {} iters)",
                b.iters_done
            );
        }
        Some(Throughput::Bytes(n)) => {
            let bps = n as f64 / (per / 1e9);
            println!(
                "{name:<48} {human:>12}/iter  ({:.1} MB/s, {} iters)",
                bps / 1e6,
                b.iters_done
            );
        }
        None => println!("{name:<48} {human:>12}/iter  ({} iters)", b.iters_done),
    }
}

/// Declares a group of benchmark functions. Both forms of the real macro
/// are supported: `criterion_group!(name, targets...)` and
/// `criterion_group! { name = ...; config = ...; targets = ... }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($group:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $group;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_counts() {
        let mut b = Bencher::new(5, Duration::from_secs(1));
        let mut calls = 0u64;
        b.iter(|| calls += 1);
        assert_eq!(calls, b.iters_done + 1); // +1 warm-up
        assert!(b.mean_ns.is_finite());
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2).throughput(Throughput::Elements(4));
        group.bench_function("f", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("p", 3), &3, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(0)));
    }
}
