//! Offline drop-in subset of the `bytes` crate: the little-endian
//! reader/writer surface `trajcl_nn::ParamStore` serialisation uses
//! ([`Buf`] over `&[u8]`, [`BufMut`]/[`BytesMut`] for building buffers).

/// Read cursor over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Advances past `n` bytes.
    fn advance(&mut self, n: usize);

    /// Borrows the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Copies the next `n` bytes out and advances.
    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        let out = Bytes(self.chunk()[..n].to_vec());
        self.advance(n);
        out
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// An owned immutable byte buffer (minimal: enough for `.to_vec()`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// The bytes as a vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Write interface for growable byte buffers.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        BytesMut(Vec::with_capacity(n))
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The written bytes as a vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(7);
        buf.put_u8(9);
        buf.put_f32_le(-1.5);
        buf.put_slice(b"ab");
        buf.put_u64_le(u64::MAX - 1);
        buf.put_f64_le(2.25);
        let v = buf.to_vec();
        let mut r: &[u8] = &v;
        assert_eq!(r.remaining(), v.len());
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.get_u8(), 9);
        assert_eq!(r.get_f32_le(), -1.5);
        assert_eq!(r.copy_to_bytes(2).to_vec(), b"ab".to_vec());
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_f64_le(), 2.25);
        assert_eq!(r.remaining(), 0);
    }
}
