//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this workspace-local
//! shim provides exactly the surface the TrajCL workspace uses: [`RngCore`],
//! [`Rng`] (with `gen`, `gen_range`, `gen_bool`), [`SeedableRng`],
//! [`rngs::StdRng`] and [`seq::SliceRandom`]. The generator is xoshiro256**
//! seeded through SplitMix64 — deterministic per seed, statistically solid
//! for tests and experiments, NOT cryptographically secure (neither is the
//! real `StdRng` contract this code relies on).

/// The low-level generator interface (object-safe).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of the real crate).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

/// Types with a uniform sampler over a half-open or inclusive range.
pub trait UniformSample: Sized + PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // 128-bit multiply-shift avoids the modulo bias that a bare
                // `% span` would introduce for spans near 2^64.
                let r = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + r) as $t
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                if lo == hi {
                    return lo;
                }
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformSample> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: UniformSample> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Fills a slice-like with standard samples (subset of the real API:
    /// byte slices only).
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Seed material.
    type Seed: Default + AsMut<[u8]>;

    /// Builds from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state is a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E3779B97F4A7C15,
                    0xBF58476D1CE4E5B9,
                    0x94D049BB133111EB,
                    1,
                ];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Slice sampling helpers.

    use super::{RngCore, UniformSample};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// One uniformly chosen element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_range_inclusive(rng, 0, i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_range(rng, 0, self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let i = rng.gen_range(3..17usize);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-2.5..7.5f64);
            assert!((-2.5..7.5).contains(&f));
            let k = rng.gen_range(0..=4u32);
            assert!(k <= 4);
        }
    }

    #[test]
    fn gen_range_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0f64)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "50! leaves ~no chance of identity"
        );
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &x = v.choose(&mut rng).unwrap();
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn dyn_rngcore_usable_through_rng_trait() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut dyn_rng: &mut dyn super::RngCore = &mut rng;
        // The workspace passes `&mut &mut dyn RngCore` into `impl Rng`
        // parameters (see trajcl-nn's Fwd); mirror that pattern.
        let x: f64 = (&mut dyn_rng).gen();
        assert!((0.0..1.0).contains(&x));
    }
}
