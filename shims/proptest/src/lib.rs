//! Offline drop-in subset of the `proptest` API.
//!
//! Supports what the workspace's property tests use: range and tuple
//! strategies, `prop::collection::vec`, `prop_map`, the `proptest!` macro
//! with an optional `#![proptest_config(...)]` header, and the
//! `prop_assert*` macros. Cases are generated from a deterministic
//! per-test RNG; failing cases are reported with their case index but NOT
//! shrunk (rerun with the printed seed logic to reproduce — generation is
//! pure in the test name and case index).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Value-generation strategy.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// Collection size specification: an exact count or a range of counts.
pub trait SizeBounds {
    /// Draws a size.
    fn sample_size(&self, rng: &mut StdRng) -> usize;
}

impl SizeBounds for usize {
    fn sample_size(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

impl SizeBounds for std::ops::Range<usize> {
    fn sample_size(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl SizeBounds for std::ops::RangeInclusive<usize> {
    fn sample_size(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// Strategy namespace mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeBounds, Strategy};
        use rand::rngs::StdRng;

        /// Strategy for `Vec<S::Value>` with the given size bounds.
        pub struct VecStrategy<S, Z> {
            elem: S,
            size: Z,
        }

        /// Vector strategy from an element strategy and a size (exact
        /// `usize` or `Range<usize>`).
        pub fn vec<S: Strategy, Z: SizeBounds>(elem: S, size: Z) -> VecStrategy<S, Z> {
            VecStrategy { elem, size }
        }

        impl<S: Strategy, Z: SizeBounds> Strategy for VecStrategy<S, Z> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let n = self.size.sample_size(rng);
                (0..n).map(|_| self.elem.sample(rng)).collect()
            }
        }
    }
}

/// Per-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-test RNG: seeded from the test's name so adding or
/// reordering sibling tests never changes a test's cases.
pub fn rng_for(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h)
}

/// Everything the tests import.
pub mod prelude {
    pub use super::{prop, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts inside a `proptest!` body (panics with case context).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Defines property tests: each listed function runs `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( #[test] fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases {
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut rng); )+
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $body
                    }));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest case {case}/{} failed for `{}`",
                            cfg.cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (f64, f64)> {
        (0.0f64..10.0, 5.0f64..6.0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 1.0f64..2.0, n in 3usize..7) {
            prop_assert!((1.0..2.0).contains(&x));
            prop_assert!((3..7).contains(&n));
        }

        #[test]
        fn vec_and_map_compose(v in prop::collection::vec(0.0f32..1.0, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn tuple_and_named_strategy(p in arb_pair()) {
            prop_assert!(p.0 < 10.0);
            prop_assert_eq!(p.1.floor(), 5.0);
        }

        #[test]
        fn exact_size_vec(v in prop::collection::vec(0u32..9, 4)) {
            prop_assert_eq!(v.len(), 4);
        }
    }

    #[test]
    fn prop_map_applies() {
        let s = (0usize..5).prop_map(|x| x * 2);
        let mut rng = super::rng_for("prop_map_applies");
        for _ in 0..50 {
            let v = s.sample(&mut rng);
            assert!(v % 2 == 0 && v < 10);
        }
    }
}
