//! Persistent parameter storage shared across tapes.
//!
//! A [`ParamStore`] owns the model weights plus per-parameter optimizer
//! state. Tapes are rebuilt every step; modules *bind* their parameters into
//! the current tape with [`ParamStore::bind`], and after the backward pass
//! gradients are routed back by parameter id with
//! [`ParamStore::accumulate`].

use bytes::{Buf, BufMut, BytesMut};
use trajcl_tensor::{Shape, Tape, Tensor, Var};

/// Opaque handle to a parameter slot in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

#[derive(Clone)]
struct Slot {
    name: String,
    value: Tensor,
    grad: Tensor,
    /// Adam first moment.
    m: Tensor,
    /// Adam second moment.
    v: Tensor,
}

/// Owns model parameters, their gradients and optimizer state.
///
/// Cloning a store produces an independent copy with identical slot layout —
/// this is how the MoCo momentum encoder is created.
#[derive(Clone, Default)]
pub struct ParamStore {
    slots: Vec<Slot>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new parameter and returns its id.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let shape = value.shape();
        self.slots.push(Slot {
            name: name.into(),
            value,
            grad: Tensor::zeros(shape),
            m: Tensor::zeros(shape),
            v: Tensor::zeros(shape),
        });
        ParamId(self.slots.len() - 1)
    }

    /// Binds parameter `id` into `tape` as a differentiable leaf.
    pub fn bind(&self, tape: &mut Tape, id: ParamId) -> Var {
        tape.param(self.slots[id.0].value.clone(), id.0)
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.slots[id.0].value
    }

    /// Mutable access to a parameter value (used by optimizers and tests).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.slots[id.0].value
    }

    /// Current gradient accumulator of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.slots[id.0].grad
    }

    /// Registered name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.slots[id.0].name
    }

    /// Number of parameter slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total number of scalar parameters (for model-size reporting).
    pub fn num_scalars(&self) -> usize {
        self.slots.iter().map(|s| s.value.numel()).sum()
    }

    /// All parameter ids in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.slots.len()).map(ParamId)
    }

    /// Ids of parameters whose name satisfies `pred` (used by fine-tuning
    /// to select trainable subsets by name prefix).
    pub fn ids_where(&self, pred: impl Fn(&str) -> bool) -> Vec<ParamId> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| pred(&s.name))
            .map(|(i, _)| ParamId(i))
            .collect()
    }

    /// Zeroes the gradients of every parameter whose name does NOT satisfy
    /// `keep` — i.e. freezes everything else before the optimizer step.
    pub fn zero_grads_where_not(&mut self, keep: impl Fn(&str) -> bool) {
        for s in &mut self.slots {
            if !keep(&s.name) {
                s.grad.data_mut().fill(0.0);
            }
        }
    }

    /// Clears all gradient accumulators.
    pub fn zero_grads(&mut self) {
        for s in &mut self.slots {
            s.grad.data_mut().fill(0.0);
        }
    }

    /// Adds tape gradients (from `Grads::into_param_grads`) into the
    /// per-parameter accumulators. Repeated bindings of the same parameter
    /// sum naturally.
    pub fn accumulate(&mut self, grads: Vec<(usize, Tensor)>) {
        for (id, g) in grads {
            self.slots[id].grad.add_assign_scaled(&g, 1.0);
        }
    }

    /// Global L2 norm of all gradients.
    pub fn grad_norm(&self) -> f32 {
        self.slots
            .iter()
            .map(|s| s.grad.data().iter().map(|v| v * v).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Scales gradients so the global norm does not exceed `max_norm`.
    pub fn clip_grad_norm(&mut self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for s in &mut self.slots {
                s.grad.scale_in_place(scale);
            }
        }
    }

    /// MoCo momentum (EMA) update: `self = m*self + (1-m)*other`.
    ///
    /// # Panics
    /// Panics if the two stores have different slot layouts.
    pub fn ema_update_from(&mut self, other: &ParamStore, momentum: f32) {
        assert_eq!(self.slots.len(), other.slots.len(), "store layout mismatch");
        for (a, b) in self.slots.iter_mut().zip(&other.slots) {
            assert_eq!(a.value.shape(), b.value.shape(), "slot shape mismatch");
            for (x, &y) in a.value.data_mut().iter_mut().zip(b.value.data()) {
                *x = momentum * *x + (1.0 - momentum) * y;
            }
        }
    }

    /// Whether `other` has the same slot layout: identical count, names
    /// and per-slot shapes. A decoded store that merely *counts* the same
    /// is not enough — replacing a slot with a differently-shaped tensor
    /// poisons every downstream kernel (fuzz-found: a zero-element gamma
    /// indexed out of bounds in the attention forward).
    pub fn layout_matches(&self, other: &ParamStore) -> bool {
        self.slots.len() == other.slots.len()
            && self
                .slots
                .iter()
                .zip(&other.slots)
                .all(|(a, b)| a.name == b.name && a.value.shape() == b.value.shape())
    }

    /// Copies all parameter values (not optimizer state) from `other`.
    ///
    /// # Panics
    /// Panics if the two stores have different slot layouts (count, names
    /// or shapes); callers holding untrusted stores must gate on
    /// [`ParamStore::layout_matches`] first.
    pub fn copy_values_from(&mut self, other: &ParamStore) {
        assert!(self.layout_matches(other), "store layout mismatch");
        for (a, b) in self.slots.iter_mut().zip(&other.slots) {
            a.value = b.value.clone();
        }
    }

    pub(crate) fn adam_state_mut(
        &mut self,
        id: usize,
    ) -> (&mut Tensor, &Tensor, &mut Tensor, &mut Tensor) {
        let s = &mut self.slots[id];
        (&mut s.value, &s.grad, &mut s.m, &mut s.v)
    }

    /// Serializes parameter values (names + shapes + data) to bytes.
    ///
    /// Optimizer state is not saved; a deserialized store is ready for
    /// inference or fresh fine-tuning.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_u32_le(self.slots.len() as u32);
        for s in &self.slots {
            buf.put_u32_le(s.name.len() as u32);
            buf.put_slice(s.name.as_bytes());
            let shape = s.value.shape();
            let dims = shape.dims();
            buf.put_u8(dims.len() as u8);
            for &d in dims {
                buf.put_u32_le(d as u32);
            }
            for &v in s.value.data() {
                buf.put_f32_le(v);
            }
        }
        buf.to_vec()
    }

    /// Restores a store from [`ParamStore::to_bytes`] output.
    ///
    /// Returns `None` if the buffer is malformed.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut buf = bytes;
        if buf.remaining() < 4 {
            return None;
        }
        let count = buf.get_u32_le() as usize;
        let mut store = ParamStore::new();
        for _ in 0..count {
            if buf.remaining() < 4 {
                return None;
            }
            let name_len = buf.get_u32_le() as usize;
            if buf.remaining() < name_len + 1 {
                return None;
            }
            let name = String::from_utf8(buf.copy_to_bytes(name_len).to_vec()).ok()?;
            let rank = buf.get_u8() as usize;
            if rank == 0 || rank > 4 || buf.remaining() < rank * 4 {
                return None;
            }
            let mut dims = Vec::with_capacity(rank);
            for _ in 0..rank {
                dims.push(buf.get_u32_le() as usize);
            }
            // Element count and byte length with explicit overflow checks:
            // four u32 dims can overflow `usize` multiplication, which in a
            // hostile buffer would fake a tiny length past the size check.
            let n = dims.iter().try_fold(1usize, |acc, &d| acc.checked_mul(d))?;
            match n.checked_mul(4) {
                Some(nb) if buf.remaining() >= nb => {}
                _ => return None,
            }
            let shape = Shape::from_slice(&dims);
            let mut data = Vec::with_capacity(n);
            for _ in 0..n {
                data.push(buf.get_f32_le());
            }
            store.add(name, Tensor::from_vec(data, shape));
        }
        Some(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_bind_and_accumulate() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::from_vec(vec![1.0, 2.0], Shape::d1(2)));
        let mut tape = Tape::new();
        let w = store.bind(&mut tape, id);
        let loss = tape.sum_all(w);
        let grads = tape.backward(loss);
        store.accumulate(grads.into_param_grads(&tape));
        assert_eq!(store.grad(id).data(), &[1.0, 1.0]);
        // Accumulation is additive until cleared.
        let mut tape = Tape::new();
        let w = store.bind(&mut tape, id);
        let loss = tape.sum_all(w);
        let grads = tape.backward(loss);
        store.accumulate(grads.into_param_grads(&tape));
        assert_eq!(store.grad(id).data(), &[2.0, 2.0]);
        store.zero_grads();
        assert_eq!(store.grad(id).data(), &[0.0, 0.0]);
    }

    #[test]
    fn double_binding_sums_gradients() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::scalar(3.0));
        let mut tape = Tape::new();
        let w1 = store.bind(&mut tape, id);
        let w2 = store.bind(&mut tape, id);
        let prod = tape.mul(w1, w2); // w^2 -> d/dw = 2w = 6
        let loss = tape.sum_all(prod);
        let grads = tape.backward(loss);
        store.accumulate(grads.into_param_grads(&tape));
        assert!((store.grad(id).data()[0] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn clip_grad_norm_scales_down_only() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::zeros(Shape::d1(2)));
        store.slots[id.0].grad = Tensor::from_vec(vec![3.0, 4.0], Shape::d1(2));
        store.clip_grad_norm(10.0);
        assert_eq!(store.grad(id).data(), &[3.0, 4.0]); // norm 5 <= 10
        store.clip_grad_norm(1.0);
        assert!((store.grad_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn ema_update_moves_towards_source() {
        let mut a = ParamStore::new();
        let ida = a.add("w", Tensor::scalar(0.0));
        let mut b = ParamStore::new();
        b.add("w", Tensor::scalar(10.0));
        a.ema_update_from(&b, 0.9);
        assert!((a.value(ida).data()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn serialization_round_trip() {
        let mut store = ParamStore::new();
        store.add(
            "layer.weight",
            Tensor::from_vec(vec![1.5, -2.0, 0.25, 9.0], Shape::d2(2, 2)),
        );
        store.add("layer.bias", Tensor::from_vec(vec![0.5], Shape::d1(1)));
        let bytes = store.to_bytes();
        let restored = ParamStore::from_bytes(&bytes).unwrap();
        assert_eq!(restored.len(), 2);
        assert_eq!(restored.name(ParamId(0)), "layer.weight");
        assert_eq!(
            restored.value(ParamId(0)).data(),
            store.value(ParamId(0)).data()
        );
        assert_eq!(restored.value(ParamId(1)).shape(), Shape::d1(1));
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(ParamStore::from_bytes(&[1, 2, 3]).is_none());
        let mut bytes = ParamStore::new().to_bytes();
        bytes[0] = 200; // claims 200 slots, provides none
        assert!(ParamStore::from_bytes(&bytes).is_none());
    }

    #[test]
    fn layout_matches_requires_names_and_shapes() {
        let mut a = ParamStore::new();
        a.add("w", Tensor::from_vec(vec![1.0, 2.0], Shape::d1(2)));
        let mut same = ParamStore::new();
        same.add("w", Tensor::from_vec(vec![9.0, 9.0], Shape::d1(2)));
        assert!(a.layout_matches(&same));
        // Same slot count, same element count, different shape: a decoded
        // store like this used to slip through a count-only check and
        // poison downstream kernels (fuzz-found).
        let mut reshaped = ParamStore::new();
        reshaped.add("w", Tensor::from_vec(vec![9.0, 9.0], Shape::d2(2, 1)));
        assert!(!a.layout_matches(&reshaped));
        let mut renamed = ParamStore::new();
        renamed.add("v", Tensor::from_vec(vec![9.0, 9.0], Shape::d1(2)));
        assert!(!a.layout_matches(&renamed));
        let mut empty_slot = ParamStore::new();
        empty_slot.add("w", Tensor::from_vec(Vec::new(), Shape::d1(0)));
        assert!(!a.layout_matches(&empty_slot));
    }

    #[test]
    fn from_bytes_rejects_overflowing_shape() {
        // One tensor whose four u32 dims multiply past usize::MAX: the
        // wrapped element count must not slip past the length check.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&1u32.to_le_bytes()); // one slot
        bytes.extend_from_slice(&1u32.to_le_bytes()); // name "x"
        bytes.push(b'x');
        bytes.push(4); // rank 4
        for _ in 0..4 {
            bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        }
        assert!(ParamStore::from_bytes(&bytes).is_none());
    }

    #[test]
    fn num_scalars_counts_everything() {
        let mut store = ParamStore::new();
        store.add("a", Tensor::zeros(Shape::d2(3, 4)));
        store.add("b", Tensor::zeros(Shape::d1(5)));
        assert_eq!(store.num_scalars(), 17);
    }
}
