//! Basic building-block layers.

use crate::init;
use crate::store::{ParamId, ParamStore};
use rand::{Rng, RngCore};
use trajcl_tensor::{InferCtx, Shape, Tape, Tensor, Var};

/// Per-step forward context: the current tape, the parameter store, an RNG
/// (for dropout) and the training flag.
pub struct Fwd<'a> {
    pub tape: &'a mut Tape,
    pub store: &'a ParamStore,
    pub rng: &'a mut dyn RngCore,
    pub training: bool,
}

impl<'a> Fwd<'a> {
    /// Convenience constructor.
    pub fn new(
        tape: &'a mut Tape,
        store: &'a ParamStore,
        rng: &'a mut dyn RngCore,
        training: bool,
    ) -> Self {
        Fwd {
            tape,
            store,
            rng,
            training,
        }
    }

    /// Binds parameter `id` into the current tape.
    #[inline]
    pub fn p(&mut self, id: ParamId) -> Var {
        self.store.bind(self.tape, id)
    }

    /// Records a constant input.
    #[inline]
    pub fn input(&mut self, t: Tensor) -> Var {
        self.tape.input(t)
    }

    /// Dropout respecting the context's training flag.
    pub fn dropout(&mut self, x: Var, p: f32) -> Var {
        let training = self.training;
        self.tape.dropout(x, p, training, &mut self.rng)
    }
}

/// Tape-free forward context: the serving-path counterpart of [`Fwd`].
///
/// No tape, no RNG, no training flag — dropout is statically elided and
/// parameters are read straight from the store instead of being cloned
/// onto a tape. All intermediates come from the [`InferCtx`] scratch
/// arena, so steady-state inference allocates nothing.
pub struct InferFwd<'a> {
    /// Scratch arena + tape-free kernels.
    pub ctx: &'a mut InferCtx,
    /// The model parameters (read-only).
    pub store: &'a ParamStore,
}

impl<'a> InferFwd<'a> {
    /// Convenience constructor.
    pub fn new(ctx: &'a mut InferCtx, store: &'a ParamStore) -> Self {
        InferFwd { ctx, store }
    }

    /// The current value of parameter `id`.
    #[inline]
    pub fn p(&self, id: ParamId) -> &'a Tensor {
        self.store.value(id)
    }
}

/// Fully-connected layer `y = x·W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    /// Input feature dimension (for shape reporting).
    pub in_dim: usize,
    /// Output feature dimension.
    pub out_dim: usize,
}

impl Linear {
    /// Registers a new Xavier-initialised linear layer.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let w = store.add(
            format!("{name}.weight"),
            init::xavier_uniform(in_dim, out_dim, rng),
        );
        let b = store.add(format!("{name}.bias"), Tensor::zeros(Shape::d1(out_dim)));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Applies the layer to `(.., in_dim)` input.
    pub fn forward(&self, f: &mut Fwd, x: Var) -> Var {
        let w = f.p(self.w);
        let b = f.p(self.b);
        let y = f.tape.matmul(x, w, false, false);
        f.tape.add_bias(y, b)
    }

    /// Tape-free forward: `x·W + b` with the bias fused into the matmul
    /// output pass.
    pub fn infer_forward(&self, f: &mut InferFwd, x: &Tensor) -> Tensor {
        let (w, b) = (f.p(self.w), f.p(self.b));
        f.ctx.linear(x, w, b)
    }

    /// Parameter ids `(weight, bias)` — exposed for fine-tuning selectors.
    pub fn params(&self) -> (ParamId, ParamId) {
        (self.w, self.b)
    }
}

/// Layer normalisation with learnable affine parameters.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gamma: ParamId,
    beta: ParamId,
    eps: f32,
}

impl LayerNorm {
    /// Registers a layer-norm over feature dimension `dim`.
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        let gamma = store.add(format!("{name}.gamma"), Tensor::ones(Shape::d1(dim)));
        let beta = store.add(format!("{name}.beta"), Tensor::zeros(Shape::d1(dim)));
        LayerNorm {
            gamma,
            beta,
            eps: 1e-5,
        }
    }

    /// Normalises the last dimension of `x`.
    pub fn forward(&self, f: &mut Fwd, x: Var) -> Var {
        let g = f.p(self.gamma);
        let b = f.p(self.beta);
        f.tape.layer_norm(x, g, b, self.eps)
    }

    /// Tape-free forward, normalising `x` in place.
    pub fn infer_forward_inplace(&self, f: &InferFwd, x: &mut Tensor) {
        InferCtx::layer_norm_inplace(x, f.p(self.gamma), f.p(self.beta), self.eps);
    }
}

/// Two-layer perceptron `FC ∘ ReLU ∘ FC` (the projection-head shape from
/// TrajCL Eq. 1, also the Transformer feed-forward block).
#[derive(Debug, Clone)]
pub struct Mlp {
    fc1: Linear,
    fc2: Linear,
    dropout: f32,
}

impl Mlp {
    /// Registers an MLP `in_dim -> hidden -> out_dim`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        dropout: f32,
        rng: &mut impl Rng,
    ) -> Self {
        Mlp {
            fc1: Linear::new(store, &format!("{name}.fc1"), in_dim, hidden, rng),
            fc2: Linear::new(store, &format!("{name}.fc2"), hidden, out_dim, rng),
            dropout,
        }
    }

    /// `fc2(dropout(relu(fc1(x))))`.
    pub fn forward(&self, f: &mut Fwd, x: Var) -> Var {
        let h = self.fc1.forward(f, x);
        let h = f.tape.relu(h);
        let h = f.dropout(h, self.dropout);
        self.fc2.forward(f, h)
    }

    /// Tape-free forward: `fc2(relu(fc1(x)))`, dropout statically elided.
    pub fn infer_forward(&self, f: &mut InferFwd, x: &Tensor) -> Tensor {
        let mut h = self.fc1.infer_forward(f, x);
        InferCtx::relu_inplace(&mut h);
        let out = self.fc2.infer_forward(f, &h);
        f.ctx.recycle(h);
        out
    }

    /// The final linear sub-layer (for partial fine-tuning).
    pub fn last_layer(&self) -> &Linear {
        &self.fc2
    }
}

/// Token-embedding table with gather-based lookup.
#[derive(Debug, Clone)]
pub struct Embedding {
    table: ParamId,
    /// Vocabulary size.
    pub vocab: usize,
    /// Embedding dimension.
    pub dim: usize,
}

impl Embedding {
    /// Registers a `(vocab, dim)` embedding table.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        vocab: usize,
        dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let table = store.add(
            format!("{name}.table"),
            init::embedding_init(vocab, dim, rng),
        );
        Embedding { table, vocab, dim }
    }

    /// Registers an embedding initialised from a precomputed table (e.g.
    /// node2vec cell embeddings).
    pub fn from_pretrained(store: &mut ParamStore, name: &str, table: Tensor) -> Self {
        let shape = table.shape();
        assert_eq!(shape.rank(), 2, "embedding table must be rank 2");
        let (vocab, dim) = (shape[0], shape[1]);
        let table = store.add(format!("{name}.table"), table);
        Embedding { table, vocab, dim }
    }

    /// Looks up `ids`, reshaping the result to `(batch, seq, dim)`.
    pub fn forward_seq(&self, f: &mut Fwd, ids: &[u32], batch: usize, seq: usize) -> Var {
        assert_eq!(ids.len(), batch * seq, "ids length mismatch");
        let t = f.p(self.table);
        let flat = f.tape.embedding(t, ids);
        f.tape.reshape(flat, Shape::d3(batch, seq, self.dim))
    }
}

/// 2-D convolution layer (NCHW) for the TrjSR baseline.
#[derive(Debug, Clone)]
pub struct Conv2d {
    w: ParamId,
    b: ParamId,
    stride: usize,
    pad: usize,
}

impl Conv2d {
    /// Registers a conv layer with a square `k`-kernel.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_ch: usize,
        out_ch: usize,
        k: usize,
        stride: usize,
        pad: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let w = store.add(
            format!("{name}.weight"),
            init::conv_xavier(out_ch, in_ch, k, rng),
        );
        let b = store.add(format!("{name}.bias"), Tensor::zeros(Shape::d1(out_ch)));
        Conv2d { w, b, stride, pad }
    }

    /// Applies the convolution to `(B, C, H, W)` input.
    pub fn forward(&self, f: &mut Fwd, x: Var) -> Var {
        let w = f.p(self.w);
        let b = f.p(self.b);
        f.tape.conv2d(x, w, b, self.stride, self.pad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn ctx<'a>(tape: &'a mut Tape, store: &'a ParamStore, rng: &'a mut StdRng) -> Fwd<'a> {
        Fwd::new(tape, store, rng, false)
    }

    #[test]
    fn linear_shapes_and_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 4, 3, &mut rng);
        // Force known weights: zero W, bias = [1, 2, 3].
        store.value_mut(lin.params().0).data_mut().fill(0.0);
        store
            .value_mut(lin.params().1)
            .data_mut()
            .copy_from_slice(&[1.0, 2.0, 3.0]);
        let mut tape = Tape::new();
        let mut f = ctx(&mut tape, &store, &mut rng);
        let x = f.input(Tensor::ones(Shape::d2(2, 4)));
        let y = lin.forward(&mut f, x);
        assert_eq!(tape.shape(y), Shape::d2(2, 3));
        assert_eq!(tape.value(y).row(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn linear_batched_rank3() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 4, 5, &mut rng);
        let mut tape = Tape::new();
        let mut f = ctx(&mut tape, &store, &mut rng);
        let x = f.input(Tensor::ones(Shape::d3(2, 3, 4)));
        let y = lin.forward(&mut f, x);
        assert_eq!(tape.shape(y), Shape::d3(2, 3, 5));
    }

    #[test]
    fn layer_norm_normalizes_rows() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 8);
        let mut tape = Tape::new();
        let mut f = ctx(&mut tape, &store, &mut rng);
        let x = f.input(Tensor::randn(
            Shape::d2(4, 8),
            5.0,
            3.0,
            &mut StdRng::seed_from_u64(3),
        ));
        let y = ln.forward(&mut f, x);
        for r in 0..4 {
            let row = tape.value(y).row(r);
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4, "row mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "row var {var}");
        }
    }

    #[test]
    fn mlp_end_to_end_gradients_flow() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", 4, 8, 2, 0.0, &mut rng);
        let mut tape = Tape::new();
        let mut f = Fwd::new(&mut tape, &store, &mut rng, true);
        let x = f.input(Tensor::ones(Shape::d2(3, 4)));
        let y = mlp.forward(&mut f, x);
        let loss = tape.mean_all(y);
        let grads = tape.backward(loss);
        let pairs = grads.into_param_grads(&tape);
        assert!(!pairs.is_empty(), "MLP params should receive gradients");
        store.accumulate(pairs);
        assert!(store.grad_norm() > 0.0);
    }

    #[test]
    fn embedding_lookup_rows() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let table = Tensor::from_vec(vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0], Shape::d2(3, 2));
        let emb = Embedding::from_pretrained(&mut store, "e", table);
        let mut tape = Tape::new();
        let mut f = ctx(&mut tape, &store, &mut rng);
        let y = emb.forward_seq(&mut f, &[2, 0, 1, 1], 2, 2);
        assert_eq!(tape.shape(y), Shape::d3(2, 2, 2));
        assert_eq!(tape.value(y).at3(0, 0, 0), 2.0);
        assert_eq!(tape.value(y).at3(1, 0, 1), 1.0);
    }

    #[test]
    fn conv2d_layer_shapes() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut store = ParamStore::new();
        let conv = Conv2d::new(&mut store, "c", 1, 4, 3, 2, 1, &mut rng);
        let mut tape = Tape::new();
        let mut f = ctx(&mut tape, &store, &mut rng);
        let x = f.input(Tensor::ones(Shape::d4(2, 1, 8, 8)));
        let y = conv.forward(&mut f, x);
        assert_eq!(tape.shape(y), Shape::d4(2, 4, 4, 4));
    }
}
