//! Multi-head self-attention, Transformer encoder layers, padding masks and
//! sinusoidal positional encodings.
//!
//! The vanilla multi-head self-attention module (MSM) here is the one used
//! by the CSTRM/T3S baselines and by the `TrajCL-MSM` / `TrajCL-concat`
//! ablations; TrajCL's DualMSM (in `trajcl-core`) builds on the same
//! primitives ([`project_heads`], [`scaled_scores`]) but learns two
//! attention-coefficient matrices and fuses them.

use crate::modules::{Fwd, InferFwd, Mlp};
use crate::store::{ParamId, ParamStore};
use crate::{init, LayerNorm};
use rand::Rng;
use trajcl_tensor::{InferCtx, Shape, Tensor, Var};

/// Large negative bias used to mask padded attention slots.
pub const MASK_NEG: f32 = -1e9;

/// Sinusoidal position table of shape `(l, d)` following Vaswani et al. /
/// TrajCL Eq. 9.
pub fn sinusoidal_pe(l: usize, d: usize) -> Tensor {
    let mut pe = Tensor::zeros(Shape::d2(l, d));
    for i in 0..l {
        for j in 0..d {
            let exponent = if j % 2 == 0 { j } else { j - 1 } as f32 / d as f32;
            let angle = i as f32 / 10_000f32.powf(exponent);
            pe.data_mut()[i * d + j] = if j % 2 == 0 { angle.sin() } else { angle.cos() };
        }
    }
    pe
}

/// Adds a `(l, d)` positional table to a `(B, l, d)` tensor.
pub fn add_positional(f: &mut Fwd, x: Var, pe: &Tensor) -> Var {
    let xs = f.tape.shape(x);
    assert_eq!(xs.rank(), 3, "positional encoding expects (B, L, D)");
    let (b, l, d) = (xs[0], xs[1], xs[2]);
    assert_eq!(pe.shape(), Shape::d2(l, d), "PE table shape mismatch");
    let mut tiled = Tensor::zeros(Shape::d3(b, l, d));
    for bi in 0..b {
        tiled.data_mut()[bi * l * d..(bi + 1) * l * d].copy_from_slice(pe.data());
    }
    let pe_var = f.input(tiled);
    f.tape.add(x, pe_var)
}

/// Additive attention-mask bias of shape `(B*heads, l, l)`: `0` where the
/// key position is valid, [`MASK_NEG`] where it is padding.
pub fn attention_mask_bias(lens: &[usize], l: usize, heads: usize) -> Tensor {
    let b = lens.len();
    let mut mask = Tensor::zeros(Shape::d3(b * heads, l, l));
    for (bi, &len) in lens.iter().enumerate() {
        debug_assert!(len <= l);
        for h in 0..heads {
            let base = (bi * heads + h) * l * l;
            for q in 0..l {
                for k in len..l {
                    mask.data_mut()[base + q * l + k] = MASK_NEG;
                }
            }
        }
    }
    mask
}

/// Projects `(B, L, D)` through weight `w` and splits into
/// `(B*heads, L, D/heads)`.
pub fn project_heads(f: &mut Fwd, x: Var, w: ParamId, heads: usize) -> Var {
    let wv = f.p(w);
    let proj = f.tape.matmul(x, wv, false, false);
    f.tape.split_heads(proj, heads)
}

/// `softmax(Q·Kᵀ/√dh + mask)` attention coefficients.
pub fn scaled_scores(f: &mut Fwd, q: Var, k: Var, mask: Option<Var>) -> Var {
    let dh = f.tape.shape(q).last();
    let scores = f.tape.matmul(q, k, false, true);
    let scaled = f.tape.scale(scores, 1.0 / (dh as f32).sqrt());
    let biased = match mask {
        Some(m) => f.tape.add(scaled, m),
        None => scaled,
    };
    f.tape.softmax(biased)
}

/// Vanilla multi-head self-attention (the Transformer MSM).
#[derive(Debug, Clone)]
pub struct MultiHeadSelfAttention {
    wq: ParamId,
    wk: ParamId,
    wv: ParamId,
    wo: ParamId,
    /// Number of attention heads.
    pub heads: usize,
    /// Model dimension.
    pub dim: usize,
}

impl MultiHeadSelfAttention {
    /// Registers projection weights for model dimension `dim` and `heads`
    /// heads (`dim` must be divisible by `heads`).
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        heads: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert_eq!(dim % heads, 0, "dim {dim} not divisible by heads {heads}");
        let mut mk = |suffix: &str, mut rng: &mut dyn rand::RngCore| {
            store.add(
                format!("{name}.{suffix}"),
                init::xavier_uniform(dim, dim, &mut rng),
            )
        };
        let wq = mk("wq", rng);
        let wk = mk("wk", rng);
        let wv = mk("wv", rng);
        let wo = mk("wo", rng);
        MultiHeadSelfAttention {
            wq,
            wk,
            wv,
            wo,
            heads,
            dim,
        }
    }

    /// Runs attention over `(B, L, dim)`, returning the contextualised
    /// output `(B, L, dim)` and the attention coefficients
    /// `(B*heads, L, L)`.
    pub fn forward(&self, f: &mut Fwd, x: Var, mask: Option<Var>) -> (Var, Var) {
        let q = project_heads(f, x, self.wq, self.heads);
        let k = project_heads(f, x, self.wk, self.heads);
        let v = project_heads(f, x, self.wv, self.heads);
        let attn = scaled_scores(f, q, k, mask);
        let ctx = f.tape.matmul(attn, v, false, false);
        let merged = f.tape.merge_heads(ctx, self.heads);
        let wo = f.p(self.wo);
        let out = f.tape.matmul(merged, wo, false, false);
        (out, attn)
    }

    /// Tape-free attention over `(B, L, dim)` with per-batch valid lengths
    /// `lens` in place of an additive mask tensor.
    ///
    /// With `want_attn = false` the whole `QKᵀ → scale → mask → softmax →
    /// ·V` chain runs through the fused kernel and the `(B·H, L, L)`
    /// coefficient tensor is never materialised; with `true` the
    /// coefficients are returned (DualMSM needs them for the γ-fusion).
    pub fn infer_forward(
        &self,
        f: &mut InferFwd,
        x: &Tensor,
        lens: &[usize],
        want_attn: bool,
    ) -> (Tensor, Option<Tensor>) {
        let q = infer_project_heads(f, x, self.wq, self.heads);
        let k = infer_project_heads(f, x, self.wk, self.heads);
        let v = infer_project_heads(f, x, self.wv, self.heads);
        let (ctx_heads, attn) = if want_attn {
            let probs = f.ctx.attention_probs(&q, &k, lens);
            let ctx_heads = f.ctx.matmul(&probs, &v, false, false);
            (ctx_heads, Some(probs))
        } else {
            (f.ctx.fused_attention(&q, &k, &v, lens), None)
        };
        let merged = f.ctx.merge_heads(&ctx_heads, self.heads);
        let out = f.ctx.matmul(&merged, f.p(self.wo), false, false);
        for t in [q, k, v, ctx_heads, merged] {
            f.ctx.recycle(t);
        }
        (out, attn)
    }

    /// Tape-free attention *coefficients only* (`(B·H, L, L)`), skipping
    /// the value path entirely — used where only the coefficient matrix
    /// feeds downstream computation (the last DualMSM layer's spatial
    /// branch).
    pub fn infer_attention_probs(&self, f: &mut InferFwd, x: &Tensor, lens: &[usize]) -> Tensor {
        let q = infer_project_heads(f, x, self.wq, self.heads);
        let k = infer_project_heads(f, x, self.wk, self.heads);
        let probs = f.ctx.attention_probs(&q, &k, lens);
        f.ctx.recycle(q);
        f.ctx.recycle(k);
        probs
    }
}

/// Tape-free [`project_heads`]: projects `(B, L, D)` through `w` and splits
/// into `(B·H, L, D/H)`.
pub fn infer_project_heads(f: &mut InferFwd, x: &Tensor, w: ParamId, heads: usize) -> Tensor {
    let proj = f.ctx.matmul(x, f.p(w), false, false);
    let split = f.ctx.split_heads(&proj, heads);
    f.ctx.recycle(proj);
    split
}

/// One pre-built Transformer encoder layer:
/// `LN(x + Dropout(MSM(x)))` then `LN(h + Dropout(MLP(h)))`
/// (TrajCL Eq. 10–11 structure, vanilla-attention variant).
#[derive(Debug, Clone)]
pub struct TransformerEncoderLayer {
    /// The attention sub-layer.
    pub attn: MultiHeadSelfAttention,
    ln1: LayerNorm,
    mlp: Mlp,
    ln2: LayerNorm,
    dropout: f32,
}

impl TransformerEncoderLayer {
    /// Registers one encoder layer with a `hidden`-wide feed-forward block.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        heads: usize,
        hidden: usize,
        dropout: f32,
        rng: &mut impl Rng,
    ) -> Self {
        TransformerEncoderLayer {
            attn: MultiHeadSelfAttention::new(store, &format!("{name}.attn"), dim, heads, rng),
            ln1: LayerNorm::new(store, &format!("{name}.ln1"), dim),
            mlp: Mlp::new(
                store,
                &format!("{name}.mlp"),
                dim,
                hidden,
                dim,
                dropout,
                rng,
            ),
            ln2: LayerNorm::new(store, &format!("{name}.ln2"), dim),
            dropout,
        }
    }

    /// Applies the layer; also returns the attention coefficients.
    pub fn forward(&self, f: &mut Fwd, x: Var, mask: Option<Var>) -> (Var, Var) {
        let (a, attn) = self.attn.forward(f, x, mask);
        let a = f.dropout(a, self.dropout);
        let res = f.tape.add(x, a);
        let h = self.ln1.forward(f, res);
        let m = self.mlp.forward(f, h);
        let m = f.dropout(m, self.dropout);
        let res2 = f.tape.add(h, m);
        (self.ln2.forward(f, res2), attn)
    }

    /// Tape-free forward (dropout elided); returns the attention
    /// coefficients only when `want_attn` is set.
    pub fn infer_forward(
        &self,
        f: &mut InferFwd,
        x: &Tensor,
        lens: &[usize],
        want_attn: bool,
    ) -> (Tensor, Option<Tensor>) {
        let (mut h, attn) = self.attn.infer_forward(f, x, lens, want_attn);
        InferCtx::add_inplace(&mut h, x);
        self.ln1.infer_forward_inplace(f, &mut h);
        let mut out = self.mlp.infer_forward(f, &h);
        InferCtx::add_inplace(&mut out, &h);
        self.ln2.infer_forward_inplace(f, &mut out);
        f.ctx.recycle(h);
        (out, attn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use trajcl_tensor::Tape;

    #[test]
    fn pe_table_values() {
        let pe = sinusoidal_pe(4, 6);
        // Position 0: sin(0)=0 on even dims, cos(0)=1 on odd dims.
        for j in 0..6 {
            let expect = if j % 2 == 0 { 0.0 } else { 1.0 };
            assert!((pe.at2(0, j) - expect).abs() < 1e-6);
        }
        // All values bounded by 1.
        assert!(pe.data().iter().all(|v| v.abs() <= 1.0 + 1e-6));
        // Different positions differ.
        assert!(pe.row(1) != pe.row(2));
    }

    #[test]
    fn mask_bias_blocks_padding() {
        let mask = attention_mask_bias(&[2, 3], 3, 2);
        assert_eq!(mask.shape(), Shape::d3(4, 3, 3));
        // Batch 0 (len 2): column 2 masked for every query and head.
        for h in 0..2 {
            for q in 0..3 {
                assert_eq!(mask.at3(h, q, 2), MASK_NEG);
                assert_eq!(mask.at3(h, q, 1), 0.0);
            }
        }
        // Batch 1 (len 3): nothing masked.
        for h in 2..4 {
            assert!(mask.data()[h * 9..(h + 1) * 9].iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn attention_rows_sum_to_one_and_ignore_padding() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let msm = MultiHeadSelfAttention::new(&mut store, "a", 8, 2, &mut rng);
        let mut tape = Tape::new();
        let mut f = Fwd::new(&mut tape, &store, &mut rng, false);
        let x = f.input(Tensor::randn(
            Shape::d3(2, 4, 8),
            0.0,
            1.0,
            &mut StdRng::seed_from_u64(1),
        ));
        let mask = f.input(attention_mask_bias(&[2, 4], 4, 2));
        let (out, attn) = msm.forward(&mut f, x, Some(mask));
        assert_eq!(tape.shape(out), Shape::d3(2, 4, 8));
        let a = tape.value(attn);
        assert_eq!(a.shape(), Shape::d3(4, 4, 4));
        for bh in 0..4 {
            for q in 0..4 {
                let row: Vec<f32> = (0..4).map(|k| a.at3(bh, q, k)).collect();
                let sum: f32 = row.iter().sum();
                assert!((sum - 1.0).abs() < 1e-5, "attn row must sum to 1");
                if bh < 2 {
                    // First batch element has length 2: keys 2,3 masked.
                    assert!(row[2] < 1e-6 && row[3] < 1e-6, "masked keys got weight");
                }
            }
        }
    }

    #[test]
    fn encoder_layer_preserves_shape_and_grads_flow() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let layer = TransformerEncoderLayer::new(&mut store, "enc", 8, 2, 16, 0.1, &mut rng);
        let mut tape = Tape::new();
        let mut f = Fwd::new(&mut tape, &store, &mut rng, true);
        let x = f.input(Tensor::randn(
            Shape::d3(2, 3, 8),
            0.0,
            1.0,
            &mut StdRng::seed_from_u64(3),
        ));
        let (y, _attn) = layer.forward(&mut f, x, None);
        assert_eq!(tape.shape(y), Shape::d3(2, 3, 8));
        let loss = tape.mean_all(y);
        let grads = tape.backward(loss);
        let pairs = grads.into_param_grads(&tape);
        store.accumulate(pairs);
        assert!(
            store.grad_norm() > 0.0,
            "gradients must reach encoder params"
        );
    }

    #[test]
    fn infer_forward_matches_tape_forward() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let layer = TransformerEncoderLayer::new(&mut store, "enc", 8, 2, 16, 0.1, &mut rng);
        let x_val = Tensor::randn(Shape::d3(2, 5, 8), 0.0, 1.0, &mut StdRng::seed_from_u64(6));
        let lens = [3usize, 5];

        let mut tape = Tape::new();
        let mut f = Fwd::new(&mut tape, &store, &mut rng, false);
        let x = f.input(x_val.clone());
        let mask = f.input(attention_mask_bias(&lens, 5, 2));
        let (y_tape, attn_tape) = layer.forward(&mut f, x, Some(mask));

        let mut ctx = InferCtx::new();
        let mut inf = InferFwd::new(&mut ctx, &store);
        let (y_infer, attn_infer) = layer.infer_forward(&mut inf, &x_val, &lens, true);

        // Valid positions must agree (padded rows are ignored downstream by
        // the masked pooling, so only t < len rows are compared).
        let yt = tape.value(y_tape);
        for (b, &len) in lens.iter().enumerate() {
            for t in 0..len {
                for d in 0..8 {
                    let (a, i) = (yt.at3(b, t, d), y_infer.at3(b, t, d));
                    assert!(
                        (a - i).abs() < 1e-5,
                        "output diverged at ({b},{t},{d}): {a} vs {i}"
                    );
                }
            }
        }
        assert!(
            attn_infer
                .expect("requested coefficients")
                .approx_eq(tape.value(attn_tape), 1e-5),
            "attention coefficients diverged"
        );
    }

    #[test]
    fn fused_path_matches_coefficient_path() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let msm = MultiHeadSelfAttention::new(&mut store, "a", 8, 2, &mut rng);
        let x = Tensor::randn(Shape::d3(2, 6, 8), 0.0, 1.0, &mut StdRng::seed_from_u64(8));
        let lens = [4usize, 6];
        let mut ctx = InferCtx::new();
        let mut inf = InferFwd::new(&mut ctx, &store);
        let (fused, none) = msm.infer_forward(&mut inf, &x, &lens, false);
        assert!(none.is_none());
        let mut inf = InferFwd::new(&mut ctx, &store);
        let (via_probs, some) = msm.infer_forward(&mut inf, &x, &lens, true);
        assert!(some.is_some());
        assert!(
            fused.approx_eq(&via_probs, 1e-5),
            "fused attention diverged"
        );
    }

    #[test]
    fn add_positional_changes_values_per_time_step() {
        let mut rng = StdRng::seed_from_u64(4);
        let store = ParamStore::new();
        let mut tape = Tape::new();
        let mut f = Fwd::new(&mut tape, &store, &mut rng, false);
        let x = f.input(Tensor::zeros(Shape::d3(2, 3, 4)));
        let pe = sinusoidal_pe(3, 4);
        let y = add_positional(&mut f, x, &pe);
        let v = tape.value(y);
        for bi in 0..2 {
            for t in 0..3 {
                for d in 0..4 {
                    assert_eq!(v.at3(bi, t, d), pe.at2(t, d));
                }
            }
        }
    }
}
