//! Recurrent cells (GRU / LSTM) for the t2vec, E2DTC, T3S and Traj2SimVec
//! baselines.
//!
//! Sequences are processed step-by-step on the tape; variable lengths are
//! handled with per-step update masks so the final hidden state of each
//! batch element is the state at its own last valid position (matching how
//! packed sequences behave in the original PyTorch baselines).

use crate::init;
use crate::modules::{Fwd, InferFwd};
use crate::store::{ParamId, ParamStore};
use rand::Rng;
use trajcl_tensor::{InferCtx, Shape, Tensor, Var};

/// A gated recurrent unit cell.
#[derive(Debug, Clone)]
pub struct GruCell {
    wz: ParamId,
    uz: ParamId,
    bz: ParamId,
    wr: ParamId,
    ur: ParamId,
    br: ParamId,
    wh: ParamId,
    uh: ParamId,
    bh: ParamId,
    /// Input dimension.
    pub in_dim: usize,
    /// Hidden dimension.
    pub hidden: usize,
}

impl GruCell {
    /// Registers GRU parameters.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let mut w = |s: &str, a: usize, b: usize, mut rng: &mut dyn rand::RngCore| {
            store.add(format!("{name}.{s}"), init::xavier_uniform(a, b, &mut rng))
        };
        let wz = w("wz", in_dim, hidden, rng);
        let uz = w("uz", hidden, hidden, rng);
        let wr = w("wr", in_dim, hidden, rng);
        let ur = w("ur", hidden, hidden, rng);
        let wh = w("wh", in_dim, hidden, rng);
        let uh = w("uh", hidden, hidden, rng);
        let bz = store.add(format!("{name}.bz"), Tensor::zeros(Shape::d1(hidden)));
        let br = store.add(format!("{name}.br"), Tensor::zeros(Shape::d1(hidden)));
        let bh = store.add(format!("{name}.bh"), Tensor::zeros(Shape::d1(hidden)));
        GruCell {
            wz,
            uz,
            bz,
            wr,
            ur,
            br,
            wh,
            uh,
            bh,
            in_dim,
            hidden,
        }
    }

    /// One step: `(x_t (B, in), h (B, hidden)) -> h' (B, hidden)`.
    pub fn step(&self, f: &mut Fwd, x: Var, h: Var) -> Var {
        let gate = |f: &mut Fwd, w, u, b, x, h| {
            let (wv, uv, bv) = (f.p(w), f.p(u), f.p(b));
            let xs = f.tape.matmul(x, wv, false, false);
            let hs = f.tape.matmul(h, uv, false, false);
            let s = f.tape.add(xs, hs);
            f.tape.add_bias(s, bv)
        };
        let z_pre = gate(f, self.wz, self.uz, self.bz, x, h);
        let z = f.tape.sigmoid(z_pre);
        let r_pre = gate(f, self.wr, self.ur, self.br, x, h);
        let r = f.tape.sigmoid(r_pre);
        let rh = f.tape.mul(r, h);
        let n_pre = gate(f, self.wh, self.uh, self.bh, x, rh);
        let n = f.tape.tanh_op(n_pre);
        // h' = (1 - z) ⊙ n + z ⊙ h
        let zh = f.tape.mul(z, h);
        let zn = f.tape.mul(z, n);
        let n_minus_zn = f.tape.sub(n, zn);
        f.tape.add(n_minus_zn, zh)
    }

    /// Tape-free step, mirroring [`GruCell::step`] op-for-op.
    pub fn infer_step(&self, f: &mut InferFwd, x: &Tensor, h: &Tensor) -> Tensor {
        let gate = |f: &mut InferFwd, w, u, b, x: &Tensor, h: &Tensor| {
            let mut xs = f.ctx.matmul(x, f.p(w), false, false);
            let hs = f.ctx.matmul(h, f.p(u), false, false);
            InferCtx::add_inplace(&mut xs, &hs);
            f.ctx.recycle(hs);
            InferCtx::add_bias_inplace(&mut xs, f.p(b));
            xs
        };
        let sigmoid = |t: &mut Tensor| InferCtx::map_inplace(t, |v| 1.0 / (1.0 + (-v).exp()));
        let mut z = gate(f, self.wz, self.uz, self.bz, x, h);
        sigmoid(&mut z);
        let mut r = gate(f, self.wr, self.ur, self.br, x, h);
        sigmoid(&mut r);
        let rh = f.ctx.zip(&r, h, |a, b| a * b);
        let mut n = gate(f, self.wh, self.uh, self.bh, x, &rh);
        InferCtx::map_inplace(&mut n, f32::tanh);
        // h' = (1 - z) ⊙ n + z ⊙ h, composed exactly as the tape does.
        let zh = f.ctx.zip(&z, h, |a, b| a * b);
        let zn = f.ctx.zip(&z, &n, |a, b| a * b);
        let mut out = f.ctx.zip(&n, &zn, |a, b| a - b);
        InferCtx::add_inplace(&mut out, &zh);
        for t in [z, r, rh, n, zh, zn] {
            f.ctx.recycle(t);
        }
        out
    }
}

/// An LSTM cell.
#[derive(Debug, Clone)]
pub struct LstmCell {
    wi: ParamId,
    ui: ParamId,
    bi: ParamId,
    wf: ParamId,
    uf: ParamId,
    bf: ParamId,
    wo: ParamId,
    uo: ParamId,
    bo: ParamId,
    wg: ParamId,
    ug: ParamId,
    bg: ParamId,
    /// Input dimension.
    pub in_dim: usize,
    /// Hidden dimension.
    pub hidden: usize,
}

impl LstmCell {
    /// Registers LSTM parameters (forget-gate bias initialised to 1).
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let mut w = |s: &str, a: usize, b: usize, mut rng: &mut dyn rand::RngCore| {
            store.add(format!("{name}.{s}"), init::xavier_uniform(a, b, &mut rng))
        };
        let wi = w("wi", in_dim, hidden, rng);
        let ui = w("ui", hidden, hidden, rng);
        let wf = w("wf", in_dim, hidden, rng);
        let uf = w("uf", hidden, hidden, rng);
        let wo = w("wo", in_dim, hidden, rng);
        let uo = w("uo", hidden, hidden, rng);
        let wg = w("wg", in_dim, hidden, rng);
        let ug = w("ug", hidden, hidden, rng);
        let bi = store.add(format!("{name}.bi"), Tensor::zeros(Shape::d1(hidden)));
        let bf = store.add(format!("{name}.bf"), Tensor::ones(Shape::d1(hidden)));
        let bo = store.add(format!("{name}.bo"), Tensor::zeros(Shape::d1(hidden)));
        let bg = store.add(format!("{name}.bg"), Tensor::zeros(Shape::d1(hidden)));
        LstmCell {
            wi,
            ui,
            bi,
            wf,
            uf,
            bf,
            wo,
            uo,
            bo,
            wg,
            ug,
            bg,
            in_dim,
            hidden,
        }
    }

    /// One step: returns `(h', c')`.
    pub fn step(&self, f: &mut Fwd, x: Var, h: Var, c: Var) -> (Var, Var) {
        let gate = |f: &mut Fwd, w, u, b, x, h| {
            let (wv, uv, bv) = (f.p(w), f.p(u), f.p(b));
            let xs = f.tape.matmul(x, wv, false, false);
            let hs = f.tape.matmul(h, uv, false, false);
            let s = f.tape.add(xs, hs);
            f.tape.add_bias(s, bv)
        };
        let i_pre = gate(f, self.wi, self.ui, self.bi, x, h);
        let i = f.tape.sigmoid(i_pre);
        let fg_pre = gate(f, self.wf, self.uf, self.bf, x, h);
        let fg = f.tape.sigmoid(fg_pre);
        let o_pre = gate(f, self.wo, self.uo, self.bo, x, h);
        let o = f.tape.sigmoid(o_pre);
        let g_pre = gate(f, self.wg, self.ug, self.bg, x, h);
        let g = f.tape.tanh_op(g_pre);
        let fc = f.tape.mul(fg, c);
        let ig = f.tape.mul(i, g);
        let c_new = f.tape.add(fc, ig);
        let tc = f.tape.tanh_op(c_new);
        let h_new = f.tape.mul(o, tc);
        (h_new, c_new)
    }
}

/// Runs an RNN cell over a `(B, L, in_dim)` sequence with per-element valid
/// lengths, freezing each element's state once its sequence ends.
///
/// Returns `(all_states (B, L, hidden), final_state (B, hidden))`.
pub fn run_gru(f: &mut Fwd, cell: &GruCell, xs: Var, lens: &[usize]) -> (Var, Var) {
    let shape = f.tape.shape(xs);
    assert_eq!(shape.rank(), 3, "run_gru expects (B, L, D)");
    let (b, l, _) = (shape[0], shape[1], shape[2]);
    assert_eq!(lens.len(), b);
    let mut h = f.input(Tensor::zeros(Shape::d2(b, cell.hidden)));
    let mut states = Vec::with_capacity(l);
    for t in 0..l {
        let x_t = f.tape.select_time(xs, t);
        let h_new = cell.step(f, x_t, h);
        h = freeze_finished(f, h_new, h, lens, t, cell.hidden);
        states.push(h);
    }
    let all = f.tape.stack_time(&states);
    (all, h)
}

/// Tape-free [`run_gru`]: runs a GRU over `(B, L, in_dim)` with per-element
/// valid lengths, returning `(all_states (B, L, hidden), final (B, hidden))`.
pub fn run_gru_infer(
    f: &mut InferFwd,
    cell: &GruCell,
    xs: &Tensor,
    lens: &[usize],
) -> (Tensor, Tensor) {
    let shape = xs.shape();
    assert_eq!(shape.rank(), 3, "run_gru_infer expects (B, L, D)");
    let (b, l) = (shape[0], shape[1]);
    assert_eq!(lens.len(), b);
    let mut h = f.ctx.alloc(Shape::d2(b, cell.hidden));
    h.data_mut().fill(0.0);
    let mut states: Vec<Tensor> = Vec::with_capacity(l);
    for t in 0..l {
        let x_t = f.ctx.select_time(xs, t);
        let mut h_new = cell.infer_step(f, &x_t, &h);
        f.ctx.recycle(x_t);
        // Freeze finished sequences at their last valid state.
        for (bi, &len) in lens.iter().enumerate() {
            if t >= len {
                let src = &h.data()[bi * cell.hidden..(bi + 1) * cell.hidden];
                h_new.data_mut()[bi * cell.hidden..(bi + 1) * cell.hidden].copy_from_slice(src);
            }
        }
        let h_next = f.ctx.alloc_copy(&h_new);
        f.ctx.recycle(std::mem::replace(&mut h, h_next));
        states.push(h_new);
    }
    let refs: Vec<&Tensor> = states.iter().collect();
    let all = f.ctx.stack_time(&refs);
    for s in states {
        f.ctx.recycle(s);
    }
    (all, h)
}

/// Runs an LSTM over a sequence the same way as [`run_gru`].
pub fn run_lstm(f: &mut Fwd, cell: &LstmCell, xs: Var, lens: &[usize]) -> (Var, Var) {
    let shape = f.tape.shape(xs);
    assert_eq!(shape.rank(), 3, "run_lstm expects (B, L, D)");
    let (b, l, _) = (shape[0], shape[1], shape[2]);
    assert_eq!(lens.len(), b);
    let mut h = f.input(Tensor::zeros(Shape::d2(b, cell.hidden)));
    let mut c = f.input(Tensor::zeros(Shape::d2(b, cell.hidden)));
    let mut states = Vec::with_capacity(l);
    for t in 0..l {
        let x_t = f.tape.select_time(xs, t);
        let (h_new, c_new) = cell.step(f, x_t, h, c);
        h = freeze_finished(f, h_new, h, lens, t, cell.hidden);
        c = freeze_finished(f, c_new, c, lens, t, cell.hidden);
        states.push(h);
    }
    let all = f.tape.stack_time(&states);
    (all, h)
}

/// `new` where `t < len[b]`, otherwise `old` (keeps finished sequences
/// frozen at their last valid state).
fn freeze_finished(
    f: &mut Fwd,
    new: Var,
    old: Var,
    lens: &[usize],
    t: usize,
    hidden: usize,
) -> Var {
    if lens.iter().all(|&len| t < len) {
        return new;
    }
    let b = lens.len();
    let mut mask = Tensor::zeros(Shape::d2(b, hidden));
    for (bi, &len) in lens.iter().enumerate() {
        if t < len {
            mask.data_mut()[bi * hidden..(bi + 1) * hidden].fill(1.0);
        }
    }
    let inv_mask = mask.map(|v| 1.0 - v);
    let m = f.input(mask);
    let im = f.input(inv_mask);
    let keep_new = f.tape.mul(new, m);
    let keep_old = f.tape.mul(old, im);
    f.tape.add(keep_new, keep_old)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use trajcl_tensor::Tape;

    #[test]
    fn gru_step_shape_and_bounded() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let cell = GruCell::new(&mut store, "gru", 4, 6, &mut rng);
        let mut tape = Tape::new();
        let mut f = Fwd::new(&mut tape, &store, &mut rng, false);
        let x = f.input(Tensor::randn(
            Shape::d2(3, 4),
            0.0,
            1.0,
            &mut StdRng::seed_from_u64(1),
        ));
        let h = f.input(Tensor::zeros(Shape::d2(3, 6)));
        let h2 = cell.step(&mut f, x, h);
        assert_eq!(tape.shape(h2), Shape::d2(3, 6));
        // GRU state from zero init is a convex-ish mix of tanh outputs: bounded.
        assert!(tape.value(h2).max_abs() <= 1.0 + 1e-5);
    }

    #[test]
    fn lstm_step_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let cell = LstmCell::new(&mut store, "lstm", 4, 5, &mut rng);
        let mut tape = Tape::new();
        let mut f = Fwd::new(&mut tape, &store, &mut rng, false);
        let x = f.input(Tensor::randn(
            Shape::d2(2, 4),
            0.0,
            1.0,
            &mut StdRng::seed_from_u64(3),
        ));
        let h = f.input(Tensor::zeros(Shape::d2(2, 5)));
        let c = f.input(Tensor::zeros(Shape::d2(2, 5)));
        let (h2, c2) = cell.step(&mut f, x, h, c);
        assert_eq!(tape.shape(h2), Shape::d2(2, 5));
        assert_eq!(tape.shape(c2), Shape::d2(2, 5));
    }

    #[test]
    fn run_gru_freezes_short_sequences() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let cell = GruCell::new(&mut store, "gru", 3, 4, &mut rng);
        let mut tape = Tape::new();
        let mut f = Fwd::new(&mut tape, &store, &mut rng, false);
        let xs = f.input(Tensor::randn(
            Shape::d3(2, 5, 3),
            0.0,
            1.0,
            &mut StdRng::seed_from_u64(5),
        ));
        let (all, fin) = run_gru(&mut f, &cell, xs, &[2, 5]);
        assert_eq!(tape.shape(all), Shape::d3(2, 5, 4));
        assert_eq!(tape.shape(fin), Shape::d2(2, 4));
        // Element 0 (len 2): states at t >= 1 must all equal the state at t=1.
        let a = tape.value(all);
        for t in 2..5 {
            for d in 0..4 {
                assert!(
                    (a.at3(0, t, d) - a.at3(0, 1, d)).abs() < 1e-6,
                    "finished sequence state changed at t={t}"
                );
            }
        }
        // Final state equals last row of all-states.
        let fv = tape.value(fin);
        for d in 0..4 {
            assert!((fv.at2(0, d) - a.at3(0, 1, d)).abs() < 1e-6);
            assert!((fv.at2(1, d) - a.at3(1, 4, d)).abs() < 1e-6);
        }
    }

    #[test]
    fn gru_infer_matches_tape() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut store = ParamStore::new();
        let cell = GruCell::new(&mut store, "gru", 3, 4, &mut rng);
        let xs_val = Tensor::randn(Shape::d3(2, 5, 3), 0.0, 1.0, &mut StdRng::seed_from_u64(9));
        let lens = [3usize, 5];

        let mut tape = Tape::new();
        let mut f = Fwd::new(&mut tape, &store, &mut rng, false);
        let xs = f.input(xs_val.clone());
        let (all_tape, fin_tape) = run_gru(&mut f, &cell, xs, &lens);

        let mut ctx = InferCtx::new();
        let mut inf = InferFwd::new(&mut ctx, &store);
        let (all_infer, fin_infer) = run_gru_infer(&mut inf, &cell, &xs_val, &lens);

        assert!(
            all_infer.approx_eq(tape.value(all_tape), 1e-5),
            "GRU states diverged"
        );
        assert!(
            fin_infer.approx_eq(tape.value(fin_tape), 1e-5),
            "GRU final state diverged"
        );
    }

    #[test]
    fn rnn_gradients_flow_through_time() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut store = ParamStore::new();
        let cell = GruCell::new(&mut store, "gru", 3, 4, &mut rng);
        let mut tape = Tape::new();
        let mut f = Fwd::new(&mut tape, &store, &mut rng, true);
        let xs = f.input(Tensor::randn(
            Shape::d3(2, 4, 3),
            0.0,
            1.0,
            &mut StdRng::seed_from_u64(7),
        ));
        let (_, fin) = run_gru(&mut f, &cell, xs, &[4, 4]);
        let loss = tape.mean_all(fin);
        let grads = tape.backward(loss);
        store.accumulate(grads.into_param_grads(&tape));
        assert!(store.grad_norm() > 0.0);
    }
}
