//! Weight initialisation schemes.

use rand::Rng;
use trajcl_tensor::{Shape, Tensor};

/// Xavier/Glorot uniform initialisation for a `(fan_in, fan_out)` matrix.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::rand_uniform(Shape::d2(fan_in, fan_out), -bound, bound, rng)
}

/// Kaiming/He normal initialisation (good before ReLU).
pub fn kaiming_normal(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Tensor {
    let std = (2.0 / fan_in as f32).sqrt();
    Tensor::randn(Shape::d2(fan_in, fan_out), 0.0, std, rng)
}

/// Xavier uniform for a conv kernel `(out_ch, in_ch, k, k)`.
pub fn conv_xavier(out_ch: usize, in_ch: usize, k: usize, rng: &mut impl Rng) -> Tensor {
    let fan_in = in_ch * k * k;
    let fan_out = out_ch * k * k;
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::rand_uniform(Shape::d4(out_ch, in_ch, k, k), -bound, bound, rng)
}

/// Small-scale normal initialisation for embedding tables.
pub fn embedding_init(vocab: usize, dim: usize, rng: &mut impl Rng) -> Tensor {
    Tensor::randn(Shape::d2(vocab, dim), 0.0, 0.1, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn xavier_bound_respected() {
        let mut rng = StdRng::seed_from_u64(0);
        let w = xavier_uniform(64, 64, &mut rng);
        let bound = (6.0 / 128.0f32).sqrt();
        assert!(w.data().iter().all(|v| v.abs() <= bound));
        assert!(
            w.max_abs() > bound * 0.5,
            "values should spread near the bound"
        );
    }

    #[test]
    fn kaiming_std_close() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = kaiming_normal(256, 256, &mut rng);
        let std = (w.data().iter().map(|v| v * v).sum::<f32>() / w.numel() as f32).sqrt();
        let expect = (2.0 / 256.0f32).sqrt();
        assert!(
            (std - expect).abs() < expect * 0.1,
            "std={std} expect={expect}"
        );
    }

    #[test]
    fn conv_kernel_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = conv_xavier(8, 3, 5, &mut rng);
        assert_eq!(w.shape(), Shape::d4(8, 3, 5, 5));
    }
}
