//! Optimizers and learning-rate schedules.

use crate::store::ParamStore;

/// Plain stochastic gradient descent.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// New SGD optimizer.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }

    /// Applies one descent step using the store's accumulated gradients,
    /// then clears them.
    pub fn step(&mut self, store: &mut ParamStore) {
        for id in 0..store.len() {
            let lr = self.lr;
            let (value, grad, _, _) = store.adam_state_mut(id);
            let g = grad.clone();
            value.add_assign_scaled(&g, -lr);
        }
        store.zero_grads();
    }
}

/// Adam (Kingma & Ba) with bias correction — the optimizer TrajCL trains
/// with (§V-A).
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u32,
}

impl Adam {
    /// Adam with the standard betas `(0.9, 0.999)`.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
        }
    }

    /// Applies one Adam step using the store's accumulated gradients, then
    /// clears them.
    pub fn step(&mut self, store: &mut ParamStore) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for id in 0..store.len() {
            let (value, grad, m, v) = store.adam_state_mut(id);
            let (b1, b2, eps, lr) = (self.beta1, self.beta2, self.eps, self.lr);
            let gd = grad.data();
            let md = m.data_mut();
            let vd = v.data_mut();
            let wd = value.data_mut();
            for i in 0..gd.len() {
                let g = gd[i];
                md[i] = b1 * md[i] + (1.0 - b1) * g;
                vd[i] = b2 * vd[i] + (1.0 - b2) * g * g;
                let mhat = md[i] / bc1;
                let vhat = vd[i] / bc2;
                wd[i] -= lr * mhat / (vhat.sqrt() + eps);
            }
        }
        store.zero_grads();
    }
}

/// Step-decay schedule: the paper halves the learning rate every 5 epochs
/// from an initial 1e-3.
#[derive(Debug, Clone)]
pub struct StepDecay {
    initial: f32,
    every: u32,
    factor: f32,
}

impl StepDecay {
    /// `factor`-decay every `every` epochs starting from `initial`.
    pub fn new(initial: f32, every: u32, factor: f32) -> Self {
        assert!(every > 0, "decay interval must be positive");
        StepDecay {
            initial,
            every,
            factor,
        }
    }

    /// TrajCL's published schedule: 1e-3 halved every 5 epochs.
    pub fn trajcl_default() -> Self {
        StepDecay::new(1e-3, 5, 0.5)
    }

    /// Learning rate for a zero-based `epoch`.
    pub fn lr_at(&self, epoch: u32) -> f32 {
        self.initial * self.factor.powi((epoch / self.every) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajcl_tensor::{Shape, Tape, Tensor};

    /// Minimise ||w - target||^2 and check convergence.
    fn train_quadratic(optimizer: &mut dyn FnMut(&mut ParamStore)) -> f32 {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::from_vec(vec![5.0, -3.0], Shape::d1(2)));
        let target = Tensor::from_vec(vec![1.0, 2.0], Shape::d1(2));
        for _ in 0..400 {
            let mut tape = Tape::new();
            let w = store.bind(&mut tape, id);
            let t = tape.input(target.clone());
            let diff = tape.sub(w, t);
            let sq = tape.mul(diff, diff);
            let loss = tape.mean_all(sq);
            let grads = tape.backward(loss);
            store.accumulate(grads.into_param_grads(&tape));
            optimizer(&mut store);
        }
        let w = store.value(id);
        let d0 = w.data()[0] - 1.0;
        let d1 = w.data()[1] - 2.0;
        (d0 * d0 + d1 * d1).sqrt()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut sgd = Sgd::new(0.1);
        let err = train_quadratic(&mut |s| sgd.step(s));
        assert!(err < 1e-3, "SGD failed to converge: err={err}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(0.05);
        let err = train_quadratic(&mut |s| adam.step(s));
        assert!(err < 1e-2, "Adam failed to converge: err={err}");
    }

    #[test]
    fn adam_clears_grads_after_step() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::scalar(1.0));
        let mut tape = Tape::new();
        let w = store.bind(&mut tape, id);
        let loss = tape.sum_all(w);
        let grads = tape.backward(loss);
        store.accumulate(grads.into_param_grads(&tape));
        let mut adam = Adam::new(0.01);
        adam.step(&mut store);
        assert_eq!(store.grad(id).data()[0], 0.0);
    }

    #[test]
    fn step_decay_schedule_matches_paper() {
        let s = StepDecay::trajcl_default();
        assert!((s.lr_at(0) - 1e-3).abs() < 1e-9);
        assert!((s.lr_at(4) - 1e-3).abs() < 1e-9);
        assert!((s.lr_at(5) - 5e-4).abs() < 1e-9);
        assert!((s.lr_at(10) - 2.5e-4).abs() < 1e-9);
    }
}
