//! # trajcl-nn
//!
//! Neural-network building blocks on top of [`trajcl_tensor`]: a persistent
//! [`ParamStore`] with optimizer state and serialisation, standard layers
//! (linear, layer norm, MLP, embedding, conv), vanilla multi-head
//! self-attention with padding masks and sinusoidal positional encodings,
//! GRU/LSTM cells for the recurrent baselines, and SGD/Adam optimizers with
//! the paper's step-decay schedule.
//!
//! The TrajCL-specific DualMSM/DualSTB modules live in `trajcl-core` and are
//! composed from the primitives exported here.

pub mod attention;
pub mod init;
pub mod modules;
pub mod optim;
pub mod rnn;
pub mod store;

pub use attention::{
    add_positional, attention_mask_bias, infer_project_heads, project_heads, scaled_scores,
    sinusoidal_pe, MultiHeadSelfAttention, TransformerEncoderLayer, MASK_NEG,
};
pub use modules::{Conv2d, Embedding, Fwd, InferFwd, LayerNorm, Linear, Mlp};
pub use optim::{Adam, Sgd, StepDecay};
pub use rnn::{run_gru, run_gru_infer, run_lstm, GruCell, LstmCell};
pub use store::{ParamId, ParamStore};
