//! DFT-style segment-based trajectory index with Hausdorff kNN pruning
//! (the comparison index of §V-E, following Xie et al. \[1\]).
//!
//! The index materialises every trajectory's segments and bounding box —
//! the auxiliary data that makes segment indexes memory-hungry (the paper's
//! Table IX shows DFT at 30.8 GB for 1 M trajectories and OOM at 10 M; our
//! `memory_bytes` exposes the same blow-up at reproduction scale).
//!
//! Query algorithm: a cheap per-candidate lower bound
//! `LB(q, t) = max_{p ∈ q} dist(p, bbox(t))` (every point of `q` must reach
//! *some* point of `t`, all of which lie in `bbox(t)`), candidates scanned
//! in ascending LB order with exact Hausdorff evaluation until the LB
//! exceeds the current k-th best — an exact kNN search.

use trajcl_geo::{Bbox, Point, Trajectory};
use trajcl_measures::hausdorff;
use trajcl_tensor::pool;

struct Entry {
    traj: Trajectory,
    bbox: Bbox,
    /// Materialised segments (the DFT-style auxiliary data).
    segments: Vec<(Point, Point)>,
}

/// A segment-based Hausdorff kNN index.
pub struct SegmentHausdorffIndex {
    entries: Vec<Entry>,
}

impl SegmentHausdorffIndex {
    /// Builds the index (copies trajectories and materialises segments).
    pub fn build(trajs: &[Trajectory]) -> Self {
        let entries = trajs
            .iter()
            .map(|t| Entry {
                bbox: t.bbox(),
                segments: t.segments().collect(),
                traj: t.clone(),
            })
            .collect();
        SegmentHausdorffIndex { entries }
    }

    /// Number of indexed trajectories.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total segments stored (Table IX reports segment counts).
    pub fn num_segments(&self) -> usize {
        self.entries.iter().map(|e| e.segments.len()).sum()
    }

    /// Approximate resident memory in bytes: points + duplicated segment
    /// endpoints + boxes.
    pub fn memory_bytes(&self) -> usize {
        self.entries
            .iter()
            .map(|e| e.traj.len() * 16 + e.segments.len() * 64 + 32 + 48)
            .sum()
    }

    /// Lower bound on `hausdorff(q, t)` from t's bounding box.
    fn lower_bound(query: &Trajectory, bbox: &Bbox) -> f64 {
        query
            .points()
            .iter()
            .map(|p| bbox.dist_to_point(p))
            .fold(0.0, f64::max)
    }

    /// Exact k-nearest-neighbour search under the Hausdorff distance.
    ///
    /// Candidates are scanned in ascending lower-bound order, but the
    /// typical query terminates after a handful of exact evaluations — so
    /// instead of sorting all `N` lower bounds, `select_nth_unstable`
    /// partitions out a small prefix and only that prefix is sorted; the
    /// tail is sorted lazily in the (rare) case the scan outlives it.
    pub fn knn(&self, query: &Trajectory, k: usize) -> Vec<(u32, f64)> {
        let k = k.min(self.entries.len());
        if k == 0 {
            return Vec::new();
        }
        let mut order: Vec<(u32, f64)> = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (i as u32, Self::lower_bound(query, &e.bbox)))
            .collect();
        let prefix = (4 * k).max(32).min(order.len());
        if prefix < order.len() {
            order.select_nth_unstable_by(prefix - 1, |a, b| a.1.total_cmp(&b.1));
        }
        order[..prefix].sort_by(|a, b| a.1.total_cmp(&b.1));

        let mut best: Vec<(u32, f64)> = Vec::with_capacity(k + 1);
        let mut tail_sorted = prefix == order.len();
        let mut i = 0;
        while i < order.len() {
            if i == prefix && !tail_sorted {
                order[prefix..].sort_by(|a, b| a.1.total_cmp(&b.1));
                tail_sorted = true;
            }
            let (id, lb) = order[i];
            if best.len() == k && lb >= best[k - 1].1 {
                break; // every remaining candidate has an even larger LB
            }
            let d = hausdorff(query, &self.entries[id as usize].traj);
            best.push((id, d));
            best.sort_by(|a, b| a.1.total_cmp(&b.1));
            best.truncate(k);
            i += 1;
        }
        best
    }

    /// Parallel batched kNN.
    pub fn batch_knn(&self, queries: &[Trajectory], k: usize) -> Vec<Vec<(u32, f64)>> {
        let mut out: Vec<Vec<(u32, f64)>> = vec![Vec::new(); queries.len()];
        let per = pool::rows_per_lane(queries.len());
        pool::par_chunks_mut(&mut out, per, |c, chunk| {
            let start = c * per;
            for (i, slot) in chunk.iter_mut().enumerate() {
                *slot = self.knn(&queries[start + i], k);
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(y: f64, n: usize) -> Trajectory {
        (0..n).map(|i| Point::new(i as f64 * 50.0, y)).collect()
    }

    fn db() -> Vec<Trajectory> {
        (0..20).map(|i| line(i as f64 * 100.0, 8)).collect()
    }

    #[test]
    fn knn_matches_brute_force() {
        let data = db();
        let index = SegmentHausdorffIndex::build(&data);
        let query = line(230.0, 8);
        let hits = index.knn(&query, 4);
        // Brute force.
        let mut bf: Vec<(u32, f64)> = data
            .iter()
            .enumerate()
            .map(|(i, t)| (i as u32, hausdorff(&query, t)))
            .collect();
        bf.sort_by(|a, b| a.1.total_cmp(&b.1));
        bf.truncate(4);
        assert_eq!(hits, bf, "pruned kNN must stay exact");
    }

    #[test]
    fn nearest_is_the_planted_neighbor() {
        let mut data = db();
        data.push(line(233.0, 8));
        let index = SegmentHausdorffIndex::build(&data);
        let query = line(231.0, 8);
        let hits = index.knn(&query, 1);
        assert_eq!(hits[0].0, 20, "closest line (Δ=2 m) must win");
    }

    #[test]
    fn lower_bound_is_valid() {
        let data = db();
        let query = line(555.0, 8);
        for t in &data {
            let lb = SegmentHausdorffIndex::lower_bound(&query, &t.bbox());
            assert!(
                lb <= hausdorff(&query, t) + 1e-9,
                "lower bound exceeded true distance"
            );
        }
    }

    #[test]
    fn memory_grows_with_segments() {
        let small = SegmentHausdorffIndex::build(&db()[..5]);
        let big = SegmentHausdorffIndex::build(&db());
        assert!(big.memory_bytes() > small.memory_bytes());
        assert_eq!(big.num_segments(), 20 * 7);
    }

    #[test]
    fn batch_matches_single() {
        let data = db();
        let index = SegmentHausdorffIndex::build(&data);
        let queries = vec![line(120.0, 8), line(980.0, 6)];
        let batch = index.batch_knn(&queries, 3);
        for (q, hits) in queries.iter().zip(&batch) {
            assert_eq!(hits, &index.knn(q, 3));
        }
    }

    #[test]
    fn k_larger_than_population() {
        let data = db();
        let index = SegmentHausdorffIndex::build(&data[..3]);
        let hits = index.knn(&line(0.0, 8), 10);
        assert_eq!(hits.len(), 3);
    }
}
