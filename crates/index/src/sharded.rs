//! A hash-partitioned group of [`MutableIndex`] shards with
//! scatter-gather kNN — the index layer under sharded serving.
//!
//! Each external id is owned by exactly one shard, chosen by a fixed
//! hash of the id ([`ShardedIndex::shard_of`]). Every shard is a full
//! [`MutableIndex`]: its own writer lock, its own atomically-swapped read
//! snapshot, its own sealed part and write buffer, and its own
//! independently-schedulable compaction. Writes to different shards never
//! contend; a compaction retrains one shard's k-means while the other
//! shards keep absorbing writes and answering queries.
//!
//! kNN is scatter-gather: every shard is probed for its own top-k (in
//! parallel on the global [`trajcl_tensor::pool`] when more than one
//! shard exists), and the per-shard partials are merged with the fused
//! [`TopK`] heap from [`kernels`](crate::kernels). Because the shards
//! partition the id space, the union of per-shard top-k sets is a
//! superset of the global top-k, so the merge is *exact*: for unquantized
//! storage the sharded result is bit-identical to an unsharded index over
//! the same vectors, including `(distance, id)` tie ordering (see the
//! `sharded_knn_matches_unsharded` proptest).

use std::sync::Arc;

use trajcl_tensor::{pool, Shape, Tensor};

use crate::ivf::Metric;
use crate::kernels::TopK;
use crate::mutable::{ExactRescorer, IndexOptions, IndexSnapshot, MutableIndex};

/// The finalizer of splitmix64 — a fixed, well-mixing `u64 -> u64`
/// permutation. Sequential ids (the common external-id pattern) land on
/// different shards instead of striping through `id % n` hotspots.
#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The shard owning external id `id` in any `nshards`-way trajcl
/// partition: `splitmix64(id) % nshards`.
///
/// This is the **normative placement function** of the sharding
/// contract — [`ShardedIndex`] uses it internally, and any out-of-process
/// router (a fleet front-end addressing N shard servers) must use the
/// same function so wire-routed writes land where a co-located
/// [`ShardedIndex`] would put them. It is a pure function of
/// `(id, nshards)`; no routing state ever needs persisting.
///
/// # Examples
///
/// ```
/// use trajcl_index::shard_for;
///
/// // Sequential ids spread instead of striping.
/// let shards: Vec<usize> = (0..8u64).map(|id| shard_for(id, 4)).collect();
/// assert!(shards.iter().any(|&s| s != shards[0]));
/// // Pure function: same inputs, same shard, forever.
/// assert_eq!(shard_for(12345, 4), shard_for(12345, 4));
/// ```
#[inline]
pub fn shard_for(id: u64, nshards: usize) -> usize {
    (splitmix64(id) % nshards.max(1) as u64) as usize
}

/// Merges per-shard top-k partial hit lists into the exact global top-k
/// — the gather half of scatter-gather kNN, shared by
/// [`ShardedSnapshot::search`] and out-of-process routers (a fleet
/// front-end merging wire responses from N shard servers).
///
/// The partial lists must draw from **disjoint id sets** (shards
/// partition the id space), each sorted ascending as
/// [`IndexSnapshot::search`] returns them. Because no candidate can be
/// evicted inside its own shard by a vector from another shard, the
/// union of per-shard top-k sets contains the true global top-k; this
/// merge re-ranks that superset through the same fused [`TopK`] heap
/// the scan kernels use, preserving the unsharded `(distance, id)`
/// order bit-exactly (candidates are ordered by external id first and
/// offered by position, so the heap's internal tie-break coincides with
/// the external order).
///
/// # Examples
///
/// ```
/// use trajcl_index::merge_partials;
///
/// let merged = merge_partials(
///     vec![vec![(10, 0.5), (12, 2.0)], vec![(3, 1.0), (7, 2.0)]],
///     3,
/// );
/// assert_eq!(merged, vec![(10, 0.5), (3, 1.0), (7, 2.0)]);
/// ```
pub fn merge_partials(partials: Vec<Vec<(u64, f64)>>, k: usize) -> Vec<(u64, f64)> {
    if k == 0 {
        return Vec::new();
    }
    let mut candidates: Vec<(u64, f64)> = partials.into_iter().flatten().collect();
    candidates.sort_unstable_by_key(|&(id, _)| id);
    let mut topk = TopK::new(k);
    for (pos, &(_, d)) in candidates.iter().enumerate() {
        topk.offer(pos as u32, d);
    }
    topk.into_sorted()
        .into_iter()
        .map(|(pos, d)| (candidates[pos as usize].0, d))
        .collect()
}

/// A group of hash-partitioned [`MutableIndex`] shards searched by
/// scatter-gather (see the module docs).
///
/// A 1-shard group behaves exactly like (and costs exactly as much as)
/// a bare [`MutableIndex`] — the serving layer always goes through this
/// type and treats "unsharded" as the degenerate case.
///
/// # Examples
///
/// ```
/// use trajcl_index::{IndexOptions, Metric, ShardedIndex};
///
/// // Four shards over 2-d vectors; ids route by a fixed hash.
/// let index = ShardedIndex::with_options(2, Metric::L1, IndexOptions::default(), 4);
/// for id in 0..32u64 {
///     index.upsert(id, vec![id as f32, 0.0]);
/// }
/// assert_eq!(index.len(), 32);
///
/// // Scatter-gather kNN merges per-shard partials exactly.
/// let hits = index.snapshot().search(&[3.1, 0.0], 2, usize::MAX);
/// assert_eq!(hits[0].0, 3);
/// assert_eq!(hits[1].0, 4);
///
/// // Compaction seals every shard independently; per-shard compaction
/// // (`compact_shard`) never stalls the others.
/// assert_eq!(index.compact(), 32);
/// assert!(index.remove(3));
/// assert_eq!(index.len(), 31);
/// ```
pub struct ShardedIndex {
    shards: Vec<MutableIndex>,
}

impl ShardedIndex {
    /// `nshards` empty shards over `dim`-dimensional vectors, each built
    /// with `opts` (every shard seals, quantizes and retrains
    /// independently). `nshards` is clamped to at least 1.
    pub fn with_options(dim: usize, metric: Metric, opts: IndexOptions, nshards: usize) -> Self {
        let shards = (0..nshards.max(1))
            .map(|s| {
                // Decorrelate per-shard k-means inits without giving up
                // determinism: shard s trains with seed ^ hash(s).
                let opts = IndexOptions {
                    seed: opts.seed ^ splitmix64(s as u64),
                    ..opts
                };
                MutableIndex::with_options(dim, metric, opts)
            })
            .collect();
        ShardedIndex { shards }
    }

    /// A sharded index pre-seeded with `(ids[i], embeddings.row(i))`
    /// pairs: rows are partitioned by [`ShardedIndex::shard_of`] and each
    /// shard seals its partition immediately. Ids must be unique.
    pub fn from_table_with(
        ids: Vec<u64>,
        embeddings: &Tensor,
        metric: Metric,
        opts: IndexOptions,
        nshards: usize,
    ) -> Self {
        assert_eq!(
            ids.len(),
            embeddings.shape().rows(),
            "one id per embedding row"
        );
        let n = nshards.max(1);
        let dim = embeddings.shape().last();
        let mut part_ids: Vec<Vec<u64>> = vec![Vec::new(); n];
        let mut part_data: Vec<Vec<f32>> = vec![Vec::new(); n];
        for (row, &id) in ids.iter().enumerate() {
            let s = shard_for(id, n);
            part_ids[s].push(id);
            part_data[s].extend_from_slice(embeddings.row(row));
        }
        let shards: Vec<MutableIndex> = part_ids
            .into_iter()
            .zip(part_data)
            .enumerate()
            .map(|(s, (ids, data))| {
                let opts = IndexOptions {
                    seed: opts.seed ^ splitmix64(s as u64),
                    ..opts
                };
                if ids.is_empty() {
                    MutableIndex::with_options(dim, metric, opts)
                } else {
                    let rows = ids.len();
                    let table = Tensor::from_vec(data, Shape::d2(rows, dim));
                    MutableIndex::from_table_with(ids, &table, metric, opts)
                }
            })
            .collect();
        ShardedIndex { shards }
    }

    /// Number of shards (fixed at construction).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.shards[0].dim()
    }

    /// The shard owning external id `id`: `splitmix64(id) % nshards`.
    /// The hash is a fixed part of the sharding contract — two
    /// [`ShardedIndex`]es with the same shard count always agree on
    /// placement, so routing state never needs persisting.
    #[inline]
    pub fn shard_of(&self, id: u64) -> usize {
        shard_for(id, self.shards.len())
    }

    /// The shard at position `s` (diagnostics, per-shard compaction
    /// scheduling).
    pub fn shard(&self, s: usize) -> &MutableIndex {
        &self.shards[s]
    }

    /// Total live vectors across shards. Per-shard snapshots are taken
    /// one after another, so concurrent writers may be observed
    /// mid-flight across shards (each individual shard's count is
    /// consistent; use [`ShardedIndex::snapshot`] for the same caveat on
    /// searches).
    pub fn len(&self) -> usize {
        self.shards.iter().map(MutableIndex::len).sum()
    }

    /// True when no shard holds a live vector.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts or replaces the vector for `id` in its owning shard.
    /// Returns `true` when the id was already present. Writes to
    /// different shards serialise on different locks — they never
    /// contend.
    pub fn upsert(&self, id: u64, vector: Vec<f32>) -> bool {
        self.shards[self.shard_of(id)].upsert(id, vector)
    }

    /// Removes `id` from its owning shard; `true` when it was present.
    pub fn remove(&self, id: u64) -> bool {
        self.shards[self.shard_of(id)].remove(id)
    }

    /// Compacts every shard (each one independently: a shard's k-means
    /// retrain never blocks another shard's reads or writes). Returns the
    /// total number of live vectors sealed.
    pub fn compact(&self) -> usize {
        self.shards.iter().map(MutableIndex::compact).sum()
    }

    /// Compacts only shard `s` — the building block for rolling
    /// compaction schedules that bound the stall to one shard's rebuild.
    pub fn compact_shard(&self, s: usize) -> usize {
        self.shards[s].compact()
    }

    /// One read view per shard, taken back-to-back. Each shard's view is
    /// immutable and internally consistent; the *set* is not a global
    /// atomic cut, but since every id lives in exactly one shard, any
    /// single id is either present or absent — never duplicated or torn —
    /// in the combined view.
    pub fn snapshot(&self) -> ShardedSnapshot {
        ShardedSnapshot {
            shards: self.shards.iter().map(MutableIndex::snapshot).collect(),
        }
    }

    /// One-shot scatter-gather kNN against a fresh snapshot.
    pub fn search(&self, query: &[f32], k: usize, nprobe: usize) -> Vec<(u64, f64)> {
        self.snapshot().search(query, k, nprobe)
    }
}

/// An immutable scatter-gather read view: one [`IndexSnapshot`] per
/// shard (see [`ShardedIndex::snapshot`] for consistency semantics).
pub struct ShardedSnapshot {
    shards: Vec<Arc<IndexSnapshot>>,
}

impl ShardedSnapshot {
    /// Total live vectors across the shard views.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// True when no shard view holds a live vector.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total write-buffer entries across the shard views.
    pub fn buffer_len(&self) -> usize {
        self.shards.iter().map(|s| s.buffer_len()).sum()
    }

    /// Sum of per-shard publication counters: strictly increases with
    /// every mutation anywhere in the group (shards never decrement), so
    /// it works as a combined change detector even though it is not a
    /// global atomic cut.
    pub fn generation(&self) -> u64 {
        self.shards.iter().map(|s| s.generation()).sum()
    }

    /// Approximate resident bytes across the shard views.
    pub fn memory_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.memory_bytes()).sum()
    }

    /// All live external ids across shards, ascending.
    pub fn live_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.shards.iter().flat_map(|s| s.live_ids()).collect();
        ids.sort_unstable();
        ids
    }

    /// The per-shard snapshot views (diagnostics).
    pub fn shard_views(&self) -> &[Arc<IndexSnapshot>] {
        &self.shards
    }

    /// Scatter-gather kNN: every shard answers its own top-k
    /// ([`IndexSnapshot::search`] semantics per shard, `nprobe` applied
    /// within each shard's sealed IVF), and the partials are merged with
    /// the fused [`TopK`] heap. Returns `(external id, distance)`
    /// ascending by `(distance, id)`, at most `k` entries — for exact
    /// (unquantized) storage, bit-identical to an unsharded search over
    /// the same vectors.
    pub fn search(&self, query: &[f32], k: usize, nprobe: usize) -> Vec<(u64, f64)> {
        self.search_rescored(query, k, nprobe, None)
    }

    /// [`ShardedSnapshot::search`] with optional sealed-part rescoring,
    /// applied within each shard exactly as
    /// [`IndexSnapshot::search_rescored`] does (`Sync` because shards are
    /// probed from pool threads).
    pub fn search_rescored(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
        rescorer: Option<&(dyn ExactRescorer + Sync)>,
    ) -> Vec<(u64, f64)> {
        if k == 0 {
            return Vec::new();
        }
        if let [only] = self.shards.as_slice() {
            return only.search_rescored(
                query,
                k,
                nprobe,
                rescorer.map(|r| r as &dyn ExactRescorer),
            );
        }
        // Scatter: probe every shard for its own top-k, in parallel on
        // the global pool (caller-participating, so this makes progress
        // even when every worker lane is busy).
        let mut partials: Vec<Vec<(u64, f64)>> = vec![Vec::new(); self.shards.len()];
        pool::par_chunks_mut(&mut partials, 1, |s, out| {
            out[0] = self.shards[s].search_rescored(
                query,
                k,
                nprobe,
                rescorer.map(|r| r as &dyn ExactRescorer),
            );
        });
        // Gather: merge at most shards*k candidates through the shared
        // exact-merge seam (fused TopK heap, tie order preserved).
        merge_partials(partials, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn vecs(n: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect()
    }

    #[test]
    fn routes_every_id_to_one_stable_shard() {
        let a = ShardedIndex::with_options(2, Metric::L1, IndexOptions::default(), 5);
        let b = ShardedIndex::with_options(2, Metric::L1, IndexOptions::default(), 5);
        for id in 0..1000u64 {
            let s = a.shard_of(id);
            assert!(s < 5);
            assert_eq!(s, b.shard_of(id), "placement is a pure function of id");
        }
        // The hash actually spreads sequential ids.
        let mut per_shard = [0usize; 5];
        for id in 0..1000u64 {
            per_shard[a.shard_of(id)] += 1;
        }
        for (s, &count) in per_shard.iter().enumerate() {
            assert!(count > 100, "shard {s} starved: {per_shard:?}");
        }
    }

    #[test]
    fn upsert_remove_compact_across_shards() {
        let index = ShardedIndex::with_options(3, Metric::L1, IndexOptions::default(), 4);
        let data = vecs(40, 3, 1);
        for (i, v) in data.iter().enumerate() {
            assert!(!index.upsert(i as u64, v.clone()));
        }
        assert_eq!(index.len(), 40);
        assert_eq!(index.compact(), 40);
        assert!(index.upsert(7, data[0].clone()), "replace after sealing");
        assert!(index.remove(7));
        assert!(!index.remove(7));
        assert_eq!(index.len(), 39);
        let hits = index.search(&data[12], 1, usize::MAX);
        assert_eq!(hits[0].0, 12);
        assert_eq!(hits[0].1, 0.0);
        // Per-shard compaction only reseals its own shard.
        let before: Vec<usize> = (0..4).map(|s| index.shard(s).buffer_len()).collect();
        index.compact_shard(0);
        assert_eq!(index.shard(0).buffer_len(), 0);
        for (s, &len) in before.iter().enumerate().skip(1) {
            assert_eq!(index.shard(s).buffer_len(), len);
        }
    }

    #[test]
    fn from_table_partitions_and_seals() {
        let data = vecs(60, 4, 3);
        let flat: Vec<f32> = data.iter().flatten().copied().collect();
        let table = Tensor::from_vec(flat, Shape::d2(60, 4));
        let ids: Vec<u64> = (500..560).collect();
        let index =
            ShardedIndex::from_table_with(ids, &table, Metric::L1, IndexOptions::default(), 3);
        assert_eq!(index.len(), 60);
        assert_eq!(index.snapshot().buffer_len(), 0, "from_table must seal");
        for (i, q) in data.iter().enumerate().step_by(11) {
            let hits = index.search(q, 1, usize::MAX);
            assert_eq!(hits[0], (500 + i as u64, 0.0));
        }
    }

    // The tentpole equivalence property: for exact (f32) storage, a
    // sharded index over the same live set returns bit-identical kNN —
    // ids, distances AND tie order — to a single unsharded index, for
    // any shard count, with and without IVF sealing (full probe).
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn sharded_knn_matches_unsharded(
            n in 8usize..60,
            nshards in 1usize..8,
            k in 1usize..12,
            nlist_raw in 0usize..5,
            seed in 0u64..1000,
            compact_mask in 0u32..8,
        ) {
            let d = 4;
            let data = vecs(n, d, seed);
            let nlist = (nlist_raw > 0).then_some(nlist_raw);
            let opts = IndexOptions { nlist, ..IndexOptions::default() };
            let single = MutableIndex::with_options(d, Metric::L1, opts);
            let sharded = ShardedIndex::with_options(d, Metric::L1, opts, nshards);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
            for (i, v) in data.iter().enumerate() {
                // Mixed ops: upserts, replaces, removes, staggered
                // compactions (sharded compacts at different times than
                // the single index — snapshots must still agree).
                let id = rng.gen_range(0u64..(n as u64));
                single.upsert(id, v.clone());
                sharded.upsert(id, v.clone());
                if i % 7 == 3 {
                    single.remove(id / 2);
                    sharded.remove(id / 2);
                }
                if i % 13 == (compact_mask % 13) as usize {
                    sharded.compact();
                }
                if i % 17 == (compact_mask % 17) as usize {
                    single.compact();
                }
            }
            prop_assert_eq!(single.len(), sharded.len());
            for q in data.iter().step_by(5) {
                let want = single.search(q, k, usize::MAX);
                let got = sharded.snapshot().search(q, k, usize::MAX);
                prop_assert_eq!(&got, &want, "sharded != unsharded");
                // Bit-identical distances, not merely approximately equal.
                for (g, w) in got.iter().zip(&want) {
                    prop_assert!(g.1.to_bits() == w.1.to_bits());
                }
            }
        }
    }
}
