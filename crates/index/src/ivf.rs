//! IVF (inverted-file) vector index — the Faiss \[52\] substitute used for
//! embedding kNN queries (§V-E).
//!
//! Build: k-means coarse quantizer (the Voronoi partition) + one inverted
//! list per centroid. Search: probe the `nprobe` nearest lists and scan
//! them exactly. `nprobe = nlist` degenerates to exact brute force, which
//! the tests exploit to validate recall.

use rand::seq::SliceRandom;
use rand::Rng;
use trajcl_tensor::{pool, Tensor};

/// Distance metric for index search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Manhattan distance (TrajCL compares embeddings with L1).
    L1,
    /// Squared Euclidean distance.
    L2,
}

impl Metric {
    /// Distance between two equal-length vectors under this metric.
    #[inline]
    pub fn dist(&self, a: &[f32], b: &[f32]) -> f64 {
        match self {
            Metric::L1 => a.iter().zip(b).map(|(x, y)| (x - y).abs() as f64).sum(),
            Metric::L2 => a
                .iter()
                .zip(b)
                .map(|(x, y)| {
                    let d = (x - y) as f64;
                    d * d
                })
                .sum(),
        }
    }
}

/// An IVF index over fixed-dimension f32 vectors.
pub struct IvfIndex {
    centroids: Vec<f32>,
    lists: Vec<Vec<u32>>,
    vectors: Vec<f32>,
    n: usize,
    d: usize,
    metric: Metric,
}

impl IvfIndex {
    /// Builds an index over the `(N, d)` embedding table with `nlist`
    /// Voronoi cells (clamped to `N`).
    pub fn build(embeddings: &Tensor, nlist: usize, metric: Metric, rng: &mut impl Rng) -> Self {
        let d = embeddings.shape().last();
        let n = embeddings.shape().rows();
        assert!(n > 0, "cannot index an empty table");
        let nlist = nlist.clamp(1, n);
        let data = embeddings.data();

        // k-means++-lite init: distinct random rows.
        let mut ids: Vec<usize> = (0..n).collect();
        ids.shuffle(rng);
        let mut centroids: Vec<f32> = Vec::with_capacity(nlist * d);
        for &i in ids.iter().take(nlist) {
            centroids.extend_from_slice(&data[i * d..(i + 1) * d]);
        }
        // Lloyd iterations.
        let mut assign = vec![0u32; n];
        for _ in 0..10 {
            for (i, slot) in assign.iter_mut().enumerate() {
                *slot = nearest_centroid(&centroids, d, &data[i * d..(i + 1) * d], metric) as u32;
            }
            let mut sums = vec![0.0f64; nlist * d];
            let mut counts = vec![0usize; nlist];
            for (i, &c) in assign.iter().enumerate() {
                counts[c as usize] += 1;
                for k in 0..d {
                    sums[c as usize * d + k] += data[i * d + k] as f64;
                }
            }
            for c in 0..nlist {
                if counts[c] > 0 {
                    for k in 0..d {
                        centroids[c * d + k] = (sums[c * d + k] / counts[c] as f64) as f32;
                    }
                }
            }
        }
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); nlist];
        for (i, &c) in assign.iter().enumerate() {
            lists[c as usize].push(i as u32);
        }
        IvfIndex {
            centroids,
            lists,
            vectors: data.to_vec(),
            n,
            d,
            metric,
        }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of inverted lists.
    pub fn nlist(&self) -> usize {
        self.lists.len()
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// The indexed vector at position `id` (the compaction path of the
    /// mutable index reads sealed rows back out).
    pub fn vector(&self, id: u32) -> &[f32] {
        &self.vectors[id as usize * self.d..(id as usize + 1) * self.d]
    }

    /// Approximate resident memory of the index in bytes (Table IX).
    pub fn memory_bytes(&self) -> usize {
        self.vectors.len() * 4
            + self.centroids.len() * 4
            + self.lists.iter().map(|l| l.len() * 4 + 24).sum::<usize>()
    }

    /// kNN search probing the `nprobe` nearest Voronoi cells. Returns
    /// `(id, distance)` sorted ascending; fewer than `k` results only when
    /// the probed lists hold fewer vectors.
    pub fn search(&self, query: &[f32], k: usize, nprobe: usize) -> Vec<(u32, f64)> {
        assert_eq!(query.len(), self.d, "query dimensionality mismatch");
        let nprobe = nprobe.clamp(1, self.lists.len());
        // Rank centroids by distance to the query.
        let mut order: Vec<usize> = (0..self.lists.len()).collect();
        let cd: Vec<f64> = (0..self.lists.len())
            .map(|c| {
                self.metric
                    .dist(query, &self.centroids[c * self.d..(c + 1) * self.d])
            })
            .collect();
        order.sort_by(|&a, &b| cd[a].total_cmp(&cd[b]));

        let mut hits: Vec<(u32, f64)> = Vec::new();
        for &c in order.iter().take(nprobe) {
            for &id in &self.lists[c] {
                let v = &self.vectors[id as usize * self.d..(id as usize + 1) * self.d];
                hits.push((id, self.metric.dist(query, v)));
            }
        }
        hits.sort_by(|a, b| a.1.total_cmp(&b.1));
        hits.truncate(k);
        hits
    }

    /// Serialises the index (magic `IVF1`, metric, dims, centroids,
    /// inverted lists, vectors; little-endian).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.vectors.len() * 4);
        out.extend_from_slice(b"IVF1");
        out.push(match self.metric {
            Metric::L1 => 0u8,
            Metric::L2 => 1u8,
        });
        out.extend_from_slice(&(self.n as u32).to_le_bytes());
        out.extend_from_slice(&(self.d as u32).to_le_bytes());
        out.extend_from_slice(&(self.lists.len() as u32).to_le_bytes());
        for &c in &self.centroids {
            out.extend_from_slice(&c.to_le_bytes());
        }
        for list in &self.lists {
            out.extend_from_slice(&(list.len() as u32).to_le_bytes());
            for &id in list {
                out.extend_from_slice(&id.to_le_bytes());
            }
        }
        for &v in &self.vectors {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Restores an index from [`IvfIndex::to_bytes`] output; `None` when
    /// the buffer is malformed.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut r = bytes;
        let take = |r: &mut &[u8], n: usize| -> Option<Vec<u8>> {
            if r.len() < n {
                return None;
            }
            let (head, rest) = r.split_at(n);
            *r = rest;
            Some(head.to_vec())
        };
        let u32_of = |r: &mut &[u8]| -> Option<u32> {
            take(r, 4).map(|b| u32::from_le_bytes(b.try_into().unwrap()))
        };
        if take(&mut r, 4)? != b"IVF1" {
            return None;
        }
        let metric = match take(&mut r, 1)?[0] {
            0 => Metric::L1,
            1 => Metric::L2,
            _ => return None,
        };
        let n = u32_of(&mut r)? as usize;
        let d = u32_of(&mut r)? as usize;
        let nlist = u32_of(&mut r)? as usize;
        let nc = nlist.checked_mul(d)?.checked_mul(4)?;
        let raw = take(&mut r, nc)?;
        let centroids: Vec<f32> = raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let mut lists = Vec::with_capacity(nlist);
        let mut total_ids = 0usize;
        for _ in 0..nlist {
            let len = u32_of(&mut r)? as usize;
            total_ids += len;
            if total_ids > n {
                return None;
            }
            let raw = take(&mut r, len.checked_mul(4)?)?;
            lists.push(
                raw.chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                    .collect::<Vec<u32>>(),
            );
        }
        if total_ids != n || lists.iter().flatten().any(|&id| id as usize >= n) {
            return None;
        }
        let nv = n.checked_mul(d)?.checked_mul(4)?;
        let raw = take(&mut r, nv)?;
        let vectors: Vec<f32> = raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        if !r.is_empty() {
            return None;
        }
        Some(IvfIndex {
            centroids,
            lists,
            vectors,
            n,
            d,
            metric,
        })
    }

    /// Batched parallel search.
    pub fn batch_search(&self, queries: &Tensor, k: usize, nprobe: usize) -> Vec<Vec<(u32, f64)>> {
        let q = queries.shape().rows();
        assert_eq!(
            queries.shape().last(),
            self.d,
            "query dimensionality mismatch"
        );
        let mut out: Vec<Vec<(u32, f64)>> = vec![Vec::new(); q];
        let per = pool::rows_per_lane(q);
        let qd = queries.data();
        pool::par_chunks_mut(&mut out, per, |c, chunk| {
            let start = c * per;
            for (i, slot) in chunk.iter_mut().enumerate() {
                let row = &qd[(start + i) * self.d..(start + i + 1) * self.d];
                *slot = self.search(row, k, nprobe);
            }
        });
        out
    }
}

fn nearest_centroid(centroids: &[f32], d: usize, v: &[f32], metric: Metric) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for c in 0..centroids.len() / d {
        let dist = metric.dist(v, &centroids[c * d..(c + 1) * d]);
        if dist < best_d {
            best_d = dist;
            best = c;
        }
    }
    best
}

/// Exact brute-force kNN over an embedding table (baseline for recall
/// measurements).
pub fn brute_force_knn(
    embeddings: &Tensor,
    query: &[f32],
    k: usize,
    metric: Metric,
) -> Vec<(u32, f64)> {
    let d = embeddings.shape().last();
    let n = embeddings.shape().rows();
    let mut hits: Vec<(u32, f64)> = (0..n)
        .map(|i| {
            (
                i as u32,
                metric.dist(query, &embeddings.data()[i * d..(i + 1) * d]),
            )
        })
        .collect();
    hits.sort_by(|a, b| a.1.total_cmp(&b.1));
    hits.truncate(k);
    hits
}

/// Parallel batched brute-force kNN: one result row per query row,
/// splitting queries across the shared pool (the engine's no-IVF route).
pub fn brute_force_batch_knn(
    embeddings: &Tensor,
    queries: &Tensor,
    k: usize,
    metric: Metric,
) -> Vec<Vec<(u32, f64)>> {
    let d = embeddings.shape().last();
    let q = queries.shape().rows();
    assert_eq!(queries.shape().last(), d, "query dimensionality mismatch");
    let mut out: Vec<Vec<(u32, f64)>> = vec![Vec::new(); q];
    let per = pool::rows_per_lane(q);
    let qd = queries.data();
    pool::par_chunks_mut(&mut out, per, |c, chunk| {
        let start = c * per;
        for (i, slot) in chunk.iter_mut().enumerate() {
            let row = &qd[(start + i) * d..(start + i + 1) * d];
            *slot = brute_force_knn(embeddings, row, k, metric);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use trajcl_tensor::Shape;

    fn table(n: usize, d: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::randn(Shape::d2(n, d), 0.0, 1.0, &mut rng)
    }

    #[test]
    fn full_probe_equals_brute_force() {
        let emb = table(200, 8, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let index = IvfIndex::build(&emb, 16, Metric::L1, &mut rng);
        for qi in [0usize, 57, 133] {
            let q = emb.row(qi);
            let ivf = index.search(q, 5, index.nlist());
            let bf = brute_force_knn(&emb, q, 5, Metric::L1);
            assert_eq!(
                ivf.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
                bf.iter().map(|(i, _)| *i).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn self_query_returns_self_first() {
        let emb = table(100, 6, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let index = IvfIndex::build(&emb, 8, Metric::L2, &mut rng);
        let hits = index.search(emb.row(42), 1, 4);
        assert_eq!(hits[0].0, 42);
        assert_eq!(hits[0].1, 0.0);
    }

    #[test]
    fn partial_probe_has_high_recall() {
        let emb = table(500, 8, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let index = IvfIndex::build(&emb, 20, Metric::L1, &mut rng);
        let mut recall_sum = 0.0;
        let trials = 30;
        for qi in 0..trials {
            let q = emb.row(qi * 16);
            let approx = index.search(q, 10, 5);
            let exact = brute_force_knn(&emb, q, 10, Metric::L1);
            let exact_ids: Vec<u32> = exact.iter().map(|(i, _)| *i).collect();
            let hits = approx.iter().filter(|(i, _)| exact_ids.contains(i)).count();
            recall_sum += hits as f64 / 10.0;
        }
        let recall = recall_sum / trials as f64;
        assert!(recall > 0.6, "recall@10 with nprobe=5/20 too low: {recall}");
    }

    #[test]
    fn batch_search_matches_single() {
        let emb = table(150, 4, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let index = IvfIndex::build(&emb, 10, Metric::L1, &mut rng);
        let queries = table(9, 4, 8);
        let batch = index.batch_search(&queries, 3, 10);
        for (i, hits) in batch.iter().enumerate() {
            let single = index.search(queries.row(i), 3, 10);
            assert_eq!(hits, &single);
        }
    }

    #[test]
    fn memory_accounting_scales_with_n() {
        let small = IvfIndex::build(
            &table(50, 8, 9),
            4,
            Metric::L1,
            &mut StdRng::seed_from_u64(0),
        );
        let large = IvfIndex::build(
            &table(500, 8, 9),
            4,
            Metric::L1,
            &mut StdRng::seed_from_u64(0),
        );
        assert!(large.memory_bytes() > small.memory_bytes() * 5);
    }

    #[test]
    fn serialization_round_trip_preserves_search() {
        let emb = table(120, 6, 11);
        let mut rng = StdRng::seed_from_u64(12);
        let index = IvfIndex::build(&emb, 10, Metric::L1, &mut rng);
        let bytes = index.to_bytes();
        let restored = IvfIndex::from_bytes(&bytes).expect("round trip");
        assert_eq!(restored.len(), index.len());
        assert_eq!(restored.nlist(), index.nlist());
        for qi in [0usize, 33, 77] {
            assert_eq!(
                restored.search(emb.row(qi), 5, 3),
                index.search(emb.row(qi), 5, 3),
                "restored index diverged on query {qi}"
            );
        }
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(IvfIndex::from_bytes(b"nope").is_none());
        assert!(IvfIndex::from_bytes(b"IVF1").is_none());
        let emb = table(30, 4, 13);
        let index = IvfIndex::build(&emb, 4, Metric::L2, &mut StdRng::seed_from_u64(0));
        let mut bytes = index.to_bytes();
        bytes.truncate(bytes.len() - 7);
        assert!(IvfIndex::from_bytes(&bytes).is_none());
        bytes.clear();
        assert!(IvfIndex::from_bytes(&bytes).is_none());
    }

    #[test]
    fn nlist_clamps_to_population() {
        let emb = table(3, 4, 10);
        let index = IvfIndex::build(&emb, 100, Metric::L2, &mut StdRng::seed_from_u64(0));
        assert_eq!(index.nlist(), 3);
        assert_eq!(index.search(emb.row(0), 3, 100).len(), 3);
    }
}
