//! IVF (inverted-file) vector index — the Faiss \[52\] substitute used for
//! embedding kNN queries (§V-E).
//!
//! Build: k-means coarse quantizer (the Voronoi partition) + one inverted
//! list per centroid. Search: probe the `nprobe` nearest lists and scan
//! them exactly. `nprobe = nlist` degenerates to exact brute force, which
//! the tests exploit to validate recall.
//!
//! Storage is exact f32 rows, SQ8 scalar-quantized codes
//! ([`Quantization::Sq8`]: one byte per dimension with per-dimension
//! affine decode, scanned by the asymmetric f32-query × int8-database
//! kernels in [`crate::kernels`]) or PQ product-quantized codes
//! ([`Quantization::Pq`]: `m` codes per *vector* — one byte each, or two
//! per byte when `nbits ≤ 4` — scanned via a per-query ADC lookup table).
//! SQ8 indexes built with [`ScanMode::Symmetric`] additionally quantize
//! the *query* at search time and scan in pure integer arithmetic
//! through the runtime-dispatched SIMD kernels
//! ([`crate::kernels::dispatch`]). Quantized searches are optionally
//! **rescored** exactly — the top `rescore_factor · k` candidates
//! re-ranked against a caller-supplied exact f32 table (the engine keeps
//! its embedding table for precisely this). All scans run through the
//! blocked f32 kernels and the fused bounded top-k selector, never a
//! full sort.

use rand::seq::SliceRandom;
use rand::Rng;
use trajcl_tensor::{pool, Tensor};

use crate::kernels::{self, PqCodebook, Sq8Codebook, TopK};

/// Distance metric for index search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Manhattan distance (TrajCL compares embeddings with L1).
    L1,
    /// Squared Euclidean distance.
    L2,
}

impl Metric {
    /// Distance between two equal-length vectors under this metric
    /// (blocked f32 kernel, widened to `f64` at the boundary).
    #[inline]
    pub fn dist(&self, a: &[f32], b: &[f32]) -> f64 {
        kernels::dist(*self, a, b)
    }
}

/// How database vectors are stored inside an [`IvfIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Quantization {
    /// Exact f32 rows (4 bytes per dimension).
    #[default]
    None,
    /// Per-dimension int8 scalar quantization (1 byte per dimension,
    /// asymmetric search, optional exact rescoring).
    Sq8,
    /// Product quantization: `m` k-means sub-quantizers with
    /// `2^nbits`-entry codebooks each — `m` bytes per vector, searched by
    /// per-query ADC lookup tables ([`crate::kernels::PqCodebook`]).
    /// Recall is recovered through the same over-fetch + exact-rescore
    /// path SQ8 uses.
    Pq {
        /// Subspace count (= codes per vector); clamped to `1..=d` at
        /// build time. With `nbits ≤ 4` two codes pack into each byte.
        m: usize,
        /// Code width in bits (clamped to `1..=8`; 8 ⇒ 256 centroids per
        /// subspace, `≤ 4` ⇒ nibble-packed rows).
        nbits: u8,
    },
}

/// Which kernel quantized SQ8 scans use before rescoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanMode {
    /// Exact f32 query against quantized rows (the default): per-element
    /// decode in the scan, distances exact up to row quantization error.
    #[default]
    Asymmetric,
    /// Quantize the query with the index's codebook too and scan codes
    /// against codes in pure integer arithmetic (no per-element decode;
    /// SIMD `psadbw`-class kernels via [`crate::kernels::dispatch`]).
    /// Requires a uniform-scale SQ8 codebook — [`IvfIndex::build_with_scan`]
    /// trains one — and adds at most twice the asymmetric error, which the
    /// over-fetch + exact rescore path absorbs. Ignored (falls back to
    /// asymmetric) for f32 and PQ storage.
    Symmetric,
}

impl std::str::FromStr for ScanMode {
    type Err = String;

    fn from_str(s: &str) -> Result<ScanMode, String> {
        match s.to_lowercase().as_str() {
            "asym" | "asymmetric" => Ok(ScanMode::Asymmetric),
            "sym" | "symmetric" => Ok(ScanMode::Symmetric),
            _ => Err(format!("unknown scan mode {s:?} (try symmetric or asym)")),
        }
    }
}

impl std::str::FromStr for Quantization {
    type Err = String;

    fn from_str(s: &str) -> Result<Quantization, String> {
        let lower = s.to_lowercase();
        match lower.as_str() {
            "none" | "f32" => return Ok(Quantization::None),
            "sq8" | "int8" => return Ok(Quantization::Sq8),
            "pq" => {
                return Ok(Quantization::Pq {
                    m: DEFAULT_PQ_M,
                    nbits: 8,
                })
            }
            "pq4" => {
                return Ok(Quantization::Pq {
                    m: DEFAULT_PQ_M,
                    nbits: 4,
                })
            }
            _ => {}
        }
        for (prefix, nbits) in [("pq:", 8u8), ("pq4:", 4u8)] {
            if let Some(m) = lower.strip_prefix(prefix) {
                let m: usize = m
                    .parse()
                    .ok()
                    .filter(|&m| m >= 1)
                    .ok_or_else(|| format!("bad PQ subspace count in {s:?} (try {prefix}8)"))?;
                return Ok(Quantization::Pq { m, nbits });
            }
        }
        Err(format!(
            "unknown quantization {s:?} (try sq8, pq, pq4, pq:M or pq4:M)"
        ))
    }
}

/// Default over-fetch multiplier for quantized (SQ8/PQ) rescoring.
pub const DEFAULT_RESCORE_FACTOR: usize = 4;

/// Default PQ subspace count (`--quantize pq` without an explicit `:m`).
pub const DEFAULT_PQ_M: usize = 8;

/// The vector payload of an index: exact rows, SQ8 codes or PQ codes.
enum Storage {
    F32(Vec<f32>),
    Sq8 { codes: Vec<u8>, cb: Sq8Codebook },
    Pq { codes: Vec<u8>, cb: PqCodebook },
}

/// Reusable per-thread search state: centroid ranking buffer, fused
/// top-k heap and candidate list. One scratch serves any number of
/// queries — batch search allocates one per pool lane, not per query.
#[derive(Default)]
pub struct SearchScratch {
    /// `(centroid distance, centroid)` ranking buffer.
    order: Vec<(f32, u32)>,
    topk: TopK,
    /// Quantized-candidate buffer between scan and rescore.
    cand: Vec<(u32, f64)>,
    /// PQ ADC lookup table (`m × ksub`), rebuilt per query, allocation
    /// reused across the batch.
    lut: Vec<f32>,
    /// Quantized query codes for the symmetric SQ8 scan, rebuilt per
    /// query, allocation reused across the batch.
    qcodes: Vec<u8>,
}

/// An IVF index over fixed-dimension vectors (exact f32 or SQ8-quantized).
pub struct IvfIndex {
    centroids: Vec<f32>,
    lists: Vec<Vec<u32>>,
    storage: Storage,
    n: usize,
    d: usize,
    metric: Metric,
    rescore_factor: usize,
    scan: ScanMode,
}

impl IvfIndex {
    /// Builds an exact-storage index over the `(N, d)` embedding table
    /// with `nlist` Voronoi cells (clamped to `N`).
    pub fn build(embeddings: &Tensor, nlist: usize, metric: Metric, rng: &mut impl Rng) -> Self {
        Self::build_with(
            embeddings,
            nlist,
            metric,
            Quantization::None,
            DEFAULT_RESCORE_FACTOR,
            rng,
        )
    }

    /// Builds an index with explicit storage quantization. With
    /// [`Quantization::Sq8`] the table is stored as int8 codes (4× smaller)
    /// and searches over-fetch `rescore_factor · k` candidates for exact
    /// rescoring when a caller supplies the exact table
    /// ([`IvfIndex::search_rescored`]).
    pub fn build_with(
        embeddings: &Tensor,
        nlist: usize,
        metric: Metric,
        quant: Quantization,
        rescore_factor: usize,
        rng: &mut impl Rng,
    ) -> Self {
        Self::build_with_scan(
            embeddings,
            nlist,
            metric,
            quant,
            rescore_factor,
            ScanMode::Asymmetric,
            rng,
        )
    }

    /// [`IvfIndex::build_with`] with an explicit scan mode. With
    /// [`ScanMode::Symmetric`] and [`Quantization::Sq8`] the codebook is
    /// trained with one *uniform* scale across dimensions
    /// ([`crate::kernels::Sq8Codebook::train_uniform`]) so list scans
    /// reduce to integer sum-of-absolute/squared-differences over code
    /// bytes; other storages ignore the mode (normalised back to
    /// asymmetric).
    #[allow(clippy::too_many_arguments)]
    pub fn build_with_scan(
        embeddings: &Tensor,
        nlist: usize,
        metric: Metric,
        quant: Quantization,
        rescore_factor: usize,
        scan: ScanMode,
        rng: &mut impl Rng,
    ) -> Self {
        let d = embeddings.shape().last();
        let n = embeddings.shape().rows();
        assert!(n > 0, "cannot index an empty table");
        let nlist = nlist.clamp(1, n);
        let data = embeddings.data();

        // k-means++-lite init: distinct random rows.
        let mut ids: Vec<usize> = (0..n).collect();
        ids.shuffle(rng);
        let mut centroids: Vec<f32> = Vec::with_capacity(nlist * d);
        for &i in ids.iter().take(nlist) {
            centroids.extend_from_slice(&data[i * d..(i + 1) * d]);
        }
        // Lloyd iterations: blocked-kernel assignment fanned across the
        // shared pool (the O(n · nlist · d) inner loop), serial means.
        let mut assign = vec![0u32; n];
        for _ in 0..10 {
            let per = pool::rows_per_lane(n);
            let centroids_ref = &centroids;
            pool::par_chunks_mut(&mut assign, per, |c, chunk| {
                let start = c * per;
                for (i, slot) in chunk.iter_mut().enumerate() {
                    let row = &data[(start + i) * d..(start + i + 1) * d];
                    *slot = kernels::argmin_row(metric, row, centroids_ref, d) as u32;
                }
            });
            let mut sums = vec![0.0f64; nlist * d];
            let mut counts = vec![0usize; nlist];
            for (i, &c) in assign.iter().enumerate() {
                counts[c as usize] += 1;
                for k in 0..d {
                    sums[c as usize * d + k] += data[i * d + k] as f64;
                }
            }
            for c in 0..nlist {
                if counts[c] > 0 {
                    for k in 0..d {
                        centroids[c * d + k] = (sums[c * d + k] / counts[c] as f64) as f32;
                    }
                }
            }
        }
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); nlist];
        for (i, &c) in assign.iter().enumerate() {
            lists[c as usize].push(i as u32);
        }
        // Symmetric scanning only exists for SQ8 storage.
        let scan = match quant {
            Quantization::Sq8 => scan,
            _ => ScanMode::Asymmetric,
        };
        let storage = match quant {
            Quantization::None => Storage::F32(data.to_vec()),
            Quantization::Sq8 => {
                let cb = match scan {
                    ScanMode::Symmetric => Sq8Codebook::train_uniform(data, d),
                    ScanMode::Asymmetric => Sq8Codebook::train(data, d),
                };
                let mut codes = Vec::with_capacity(n * d);
                for row in data.chunks_exact(d) {
                    cb.encode_into(row, &mut codes);
                }
                Storage::Sq8 { codes, cb }
            }
            Quantization::Pq { m, nbits } => {
                let mut cb = PqCodebook::train(data, d, m, nbits, rng);
                let codes = cb.encode_table(data);
                Storage::Pq { codes, cb }
            }
        };
        IvfIndex {
            centroids,
            lists,
            storage,
            n,
            d,
            metric,
            rescore_factor: rescore_factor.max(1),
            scan,
        }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of inverted lists.
    pub fn nlist(&self) -> usize {
        self.lists.len()
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// The storage quantization of this index (for PQ, the *effective*
    /// parameters after build-time clamping).
    pub fn quantization(&self) -> Quantization {
        match &self.storage {
            Storage::F32(_) => Quantization::None,
            Storage::Sq8 { .. } => Quantization::Sq8,
            Storage::Pq { cb, .. } => Quantization::Pq {
                m: cb.m(),
                nbits: cb.nbits(),
            },
        }
    }

    /// Over-fetch multiplier used by quantized (SQ8/PQ) rescoring.
    pub fn rescore_factor(&self) -> usize {
        self.rescore_factor
    }

    /// The scan mode this index was built with (always
    /// [`ScanMode::Asymmetric`] for f32/PQ storage).
    pub fn scan_mode(&self) -> ScanMode {
        self.scan
    }

    /// The SQ8 codebook, when the index uses SQ8 storage (the worst-case
    /// distance error bound quantization-aware tests reason about).
    pub fn codebook(&self) -> Option<&Sq8Codebook> {
        match &self.storage {
            Storage::Sq8 { cb, .. } => Some(cb),
            _ => None,
        }
    }

    /// The PQ codebook, when the index uses PQ storage.
    pub fn pq_codebook(&self) -> Option<&PqCodebook> {
        match &self.storage {
            Storage::Pq { cb, .. } => Some(cb),
            _ => None,
        }
    }

    /// The exact indexed vector at position `id`.
    ///
    /// # Panics
    /// On quantized (SQ8/PQ) storage, which holds no exact rows — use
    /// [`IvfIndex::decode_vector_into`] there.
    pub fn vector(&self, id: u32) -> &[f32] {
        match &self.storage {
            Storage::F32(vectors) => &vectors[id as usize * self.d..(id as usize + 1) * self.d],
            Storage::Sq8 { .. } | Storage::Pq { .. } => {
                panic!("IvfIndex::vector on quantized storage; use decode_vector_into")
            }
        }
    }

    /// Appends row `id` to `out`: the exact row for f32 storage, the
    /// decoded (quantized) row for SQ8/PQ — the read-back path compaction
    /// uses, which works for any storage.
    pub fn decode_vector_into(&self, id: u32, out: &mut Vec<f32>) {
        match &self.storage {
            Storage::F32(vectors) => {
                let at = id as usize * self.d;
                out.extend_from_slice(&vectors[at..at + self.d]);
            }
            Storage::Sq8 { codes, cb } => {
                let at = id as usize * self.d;
                let start = out.len();
                out.resize(start + self.d, 0.0);
                cb.decode_into(&codes[at..at + self.d], &mut out[start..]);
            }
            Storage::Pq { codes, cb } => {
                let stride = cb.code_stride();
                let at = id as usize * stride;
                let start = out.len();
                out.resize(start + self.d, 0.0);
                cb.decode_into(&codes[at..at + stride], &mut out[start..]);
            }
        }
    }

    /// Approximate resident memory of the index in bytes (Table IX).
    pub fn memory_bytes(&self) -> usize {
        let payload = match &self.storage {
            Storage::F32(vectors) => vectors.len() * 4,
            Storage::Sq8 { codes, cb } => codes.len() + cb.memory_bytes(),
            Storage::Pq { codes, cb } => codes.len() + cb.memory_bytes(),
        };
        payload
            + self.centroids.len() * 4
            + self.lists.iter().map(|l| l.len() * 4 + 24).sum::<usize>()
    }

    /// Ranks centroids and leaves the `nprobe` nearest in
    /// `scratch.order[..nprobe]` (unordered within the prefix — every
    /// probed list is scanned anyway, so a partial selection via
    /// `select_nth_unstable` replaces the former full sort).
    fn probe_prefix(&self, query: &[f32], nprobe: usize, scratch: &mut SearchScratch) {
        scratch.order.clear();
        scratch.order.extend((0..self.lists.len() as u32).map(|c| {
            let row = &self.centroids[c as usize * self.d..(c as usize + 1) * self.d];
            let cd = match self.metric {
                Metric::L1 => kernels::l1_f32(query, row),
                Metric::L2 => kernels::l2_f32(query, row),
            };
            (cd, c)
        }));
        if nprobe < scratch.order.len() {
            scratch
                .order
                .select_nth_unstable_by(nprobe - 1, |a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        }
    }

    /// kNN search probing the `nprobe` nearest Voronoi cells. Returns
    /// `(id, distance)` sorted ascending; fewer than `k` results only when
    /// the probed lists hold fewer vectors. Quantized (SQ8/PQ) distances
    /// are approximate — asymmetric (exact query vs quantized rows), or
    /// fully quantized under [`ScanMode::Symmetric`] — supply the exact
    /// table via [`IvfIndex::search_rescored`] for exact top-k distances.
    pub fn search(&self, query: &[f32], k: usize, nprobe: usize) -> Vec<(u32, f64)> {
        self.search_rescored(query, k, nprobe, None)
    }

    /// [`IvfIndex::search`] with optional exact rescoring: when `exact`
    /// carries the original `(N, d)` f32 table, quantized (SQ8/PQ)
    /// searches over-fetch the top `rescore_factor · k` candidates by
    /// asymmetric distance and re-rank them with exact f32 distances
    /// (f32-storage searches are already exact and ignore `exact`).
    ///
    /// # Examples
    ///
    /// ```
    /// use rand::rngs::StdRng;
    /// use rand::SeedableRng;
    /// use trajcl_index::{IvfIndex, Metric, Quantization};
    /// use trajcl_tensor::{Shape, Tensor};
    ///
    /// let mut rng = StdRng::seed_from_u64(0);
    /// let table = Tensor::randn(Shape::d2(64, 8), 0.0, 1.0, &mut rng);
    /// let index =
    ///     IvfIndex::build_with(&table, 4, Metric::L1, Quantization::Sq8, 4, &mut rng);
    ///
    /// // Without the exact table: asymmetric (quantized) distances.
    /// let raw = index.search(table.row(3), 3, 4);
    /// // With it: the same over-fetched candidates, re-ranked exactly —
    /// // the self-query comes back at distance exactly 0.
    /// let hits = index.search_rescored(table.row(3), 3, 4, Some(&table));
    /// assert_eq!(hits[0], (3, 0.0));
    /// assert!(raw[0].1 >= 0.0);
    /// ```
    pub fn search_rescored(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
        exact: Option<&Tensor>,
    ) -> Vec<(u32, f64)> {
        let mut scratch = SearchScratch::default();
        let mut out = Vec::new();
        self.search_into(&mut scratch, query, k, nprobe, exact, &mut out);
        out
    }

    /// The scratch-reusing search core behind every public search entry.
    pub fn search_into(
        &self,
        scratch: &mut SearchScratch,
        query: &[f32],
        k: usize,
        nprobe: usize,
        exact: Option<&Tensor>,
        out: &mut Vec<(u32, f64)>,
    ) {
        assert_eq!(query.len(), self.d, "query dimensionality mismatch");
        if let Some(t) = exact {
            assert_eq!(t.shape().rows(), self.n, "exact table row mismatch");
            assert_eq!(t.shape().last(), self.d, "exact table dim mismatch");
        }
        let nprobe = nprobe.clamp(1, self.lists.len());
        self.probe_prefix(query, nprobe, scratch);
        match &self.storage {
            Storage::F32(vectors) => {
                scratch.topk.reset(k);
                for &(_, c) in &scratch.order[..nprobe] {
                    kernels::scan_ids(
                        self.metric,
                        query,
                        vectors,
                        self.d,
                        &self.lists[c as usize],
                        &mut scratch.topk,
                    );
                }
                scratch.topk.drain_sorted_into(out);
            }
            Storage::Sq8 { codes, cb } => {
                scratch.topk.reset(self.quantized_fetch(k, exact));
                // Symmetric scanning needs the uniform scale the codebook
                // was trained with; a non-uniform codebook (deserialised
                // from an asymmetric build) silently falls back.
                let sym_scale = match self.scan {
                    ScanMode::Symmetric => cb.uniform_scale(),
                    ScanMode::Asymmetric => None,
                };
                if let Some(scale) = sym_scale {
                    scratch.qcodes.clear();
                    cb.encode_into(query, &mut scratch.qcodes);
                    for &(_, c) in &scratch.order[..nprobe] {
                        kernels::sq8_sym_scan_ids(
                            self.metric,
                            &scratch.qcodes,
                            codes,
                            self.d,
                            scale,
                            &self.lists[c as usize],
                            &mut scratch.topk,
                        );
                    }
                } else {
                    for &(_, c) in &scratch.order[..nprobe] {
                        kernels::sq8_scan_ids(
                            self.metric,
                            query,
                            codes,
                            self.d,
                            cb,
                            &self.lists[c as usize],
                            &mut scratch.topk,
                        );
                    }
                }
                self.finish_quantized(scratch, query, k, exact, out);
            }
            Storage::Pq { codes, cb } => {
                // One ADC lookup table per query (m × ksub exact
                // subvector distances); every scanned row is then m table
                // lookups, no decode.
                cb.build_lut_into(self.metric, query, &mut scratch.lut);
                scratch.topk.reset(self.quantized_fetch(k, exact));
                for &(_, c) in &scratch.order[..nprobe] {
                    if cb.packed() {
                        kernels::pq_packed_scan_ids(
                            &scratch.lut,
                            codes,
                            cb.code_stride(),
                            cb.m(),
                            cb.ksub(),
                            &self.lists[c as usize],
                            &mut scratch.topk,
                        );
                    } else {
                        kernels::pq_scan_ids(
                            &scratch.lut,
                            codes,
                            cb.m(),
                            cb.ksub(),
                            &self.lists[c as usize],
                            &mut scratch.topk,
                        );
                    }
                }
                self.finish_quantized(scratch, query, k, exact, out);
            }
        }
    }

    /// Candidate count of a quantized scan: `rescore_factor · k` when an
    /// exact table will re-rank, plain `k` otherwise.
    fn quantized_fetch(&self, k: usize, exact: Option<&Tensor>) -> usize {
        if exact.is_some() {
            k.saturating_mul(self.rescore_factor).max(k)
        } else {
            k
        }
    }

    /// Drains a quantized scan's candidates into `out`, re-ranking the
    /// over-fetched set against the exact table when one was supplied.
    fn finish_quantized(
        &self,
        scratch: &mut SearchScratch,
        query: &[f32],
        k: usize,
        exact: Option<&Tensor>,
        out: &mut Vec<(u32, f64)>,
    ) {
        match exact {
            Some(table) => {
                scratch.topk.drain_sorted_into(&mut scratch.cand);
                scratch.topk.reset(k);
                for &(id, _) in scratch.cand.iter() {
                    let row = table.row(id as usize);
                    scratch
                        .topk
                        .offer(id, kernels::dist(self.metric, query, row));
                }
                scratch.topk.drain_sorted_into(out);
            }
            None => scratch.topk.drain_sorted_into(out),
        }
    }

    /// True when this index needs the `IVF4` section: a symmetric-scan
    /// SQ8 build (the scan mode must round-trip) or nibble-packed PQ
    /// codes (the packed layout must round-trip). Everything else keeps
    /// its legacy section so pre-existing readers still load it.
    fn uses_ivf4(&self) -> bool {
        match &self.storage {
            Storage::F32(_) => false,
            Storage::Sq8 { .. } => self.scan == ScanMode::Symmetric,
            Storage::Pq { cb, .. } => cb.packed(),
        }
    }

    /// Serialises the index. Exact-storage indexes keep the original
    /// `IVF1` layout (metric, dims, centroids, inverted lists, f32 rows;
    /// little-endian) so pre-quantization readers still load them; SQ8
    /// indexes write the `IVF2` section (adds the rescore factor, the
    /// per-dimension codebook and int8 codes); unpacked PQ indexes write
    /// `IVF3` (rescore factor, PQ geometry, sub-centroid tables, the
    /// trained error bound and `n·m` code bytes). Symmetric-scan SQ8 and
    /// nibble-packed PQ (`nbits ≤ 4`) write `IVF4`, which inserts a scan
    /// byte (0 = asymmetric, 1 = symmetric) and a storage tag (1 = SQ8,
    /// 2 = PQ) between the list count and the rescore factor, and stores
    /// PQ rows at `ceil(m / 2)` bytes — see DESIGN.md §10/§12 for the
    /// byte diagrams. The output buffer is preallocated to its exact
    /// final size.
    pub fn to_bytes(&self) -> Vec<u8> {
        let list_bytes: usize = self.lists.iter().map(|l| 4 + l.len() * 4).sum();
        let header = 4 + 1 + 4 + 4 + 4;
        let ivf4 = self.uses_ivf4();
        let expected = header
            + if ivf4 { 2 } else { 0 }
            + self.centroids.len() * 4
            + list_bytes
            + match &self.storage {
                Storage::F32(vectors) => vectors.len() * 4,
                Storage::Sq8 { codes, .. } => 4 + self.d * 8 + codes.len(),
                Storage::Pq { codes, cb } => {
                    4 + 4 + 1 + 4 + cb.centroids().len() * 4 + 4 + codes.len()
                }
            };
        let mut out = Vec::with_capacity(expected);
        out.extend_from_slice(if ivf4 {
            b"IVF4"
        } else {
            match &self.storage {
                Storage::F32(_) => b"IVF1",
                Storage::Sq8 { .. } => b"IVF2",
                Storage::Pq { .. } => b"IVF3",
            }
        });
        out.push(match self.metric {
            Metric::L1 => 0u8,
            Metric::L2 => 1u8,
        });
        out.extend_from_slice(&(self.n as u32).to_le_bytes());
        out.extend_from_slice(&(self.d as u32).to_le_bytes());
        out.extend_from_slice(&(self.lists.len() as u32).to_le_bytes());
        if ivf4 {
            out.push(match self.scan {
                ScanMode::Asymmetric => 0u8,
                ScanMode::Symmetric => 1u8,
            });
        }
        match &self.storage {
            Storage::F32(_) => {}
            Storage::Sq8 { .. } => {
                out.extend_from_slice(&(self.rescore_factor as u32).to_le_bytes());
                if ivf4 {
                    out.push(1u8);
                }
            }
            Storage::Pq { cb, .. } => {
                out.extend_from_slice(&(self.rescore_factor as u32).to_le_bytes());
                if ivf4 {
                    out.push(2u8);
                }
                out.extend_from_slice(&(cb.m() as u32).to_le_bytes());
                out.push(cb.nbits());
                out.extend_from_slice(&(cb.ksub() as u32).to_le_bytes());
            }
        }
        for &c in &self.centroids {
            out.extend_from_slice(&c.to_le_bytes());
        }
        for list in &self.lists {
            out.extend_from_slice(&(list.len() as u32).to_le_bytes());
            for &id in list {
                out.extend_from_slice(&id.to_le_bytes());
            }
        }
        match &self.storage {
            Storage::F32(vectors) => {
                for &v in vectors {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Storage::Sq8 { codes, cb } => {
                for &v in cb.bias.iter().chain(&cb.scale) {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                out.extend_from_slice(codes);
            }
            Storage::Pq { codes, cb } => {
                for &v in cb.centroids() {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                out.extend_from_slice(&cb.l1_bound_raw().to_le_bytes());
                out.extend_from_slice(codes);
            }
        }
        debug_assert_eq!(out.len(), expected, "to_bytes size accounting drifted");
        out
    }

    /// Restores an index from [`IvfIndex::to_bytes`] output (the legacy
    /// `IVF1`, the SQ8 `IVF2`, the PQ `IVF3` and the scan-mode/packed-PQ
    /// `IVF4` sections); `None` when the buffer is malformed. Parsing is
    /// zero-copy over the input slice — fields decode straight out of
    /// `bytes` with no intermediate buffer.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader(bytes);
        let section = r.bytes(4)?;
        let version = match section {
            b"IVF1" => 1u8,
            b"IVF2" => 2,
            b"IVF3" => 3,
            b"IVF4" => 4,
            _ => return None,
        };
        let metric = match r.u8()? {
            0 => Metric::L1,
            1 => Metric::L2,
            _ => return None,
        };
        let n = r.u32()? as usize;
        let d = r.u32()? as usize;
        let nlist = r.u32()? as usize;
        // `build` never produces an empty index (it asserts `n > 0` and
        // clamps `nlist` into `1..=n`), so zero counts only appear in
        // corrupt buffers — and an accepted zero-list index would panic
        // later in `search`'s `nprobe.clamp(1, nlist)`.
        if n == 0 || d == 0 || nlist == 0 {
            return None;
        }
        let scan = if version == 4 {
            match r.u8()? {
                0 => ScanMode::Asymmetric,
                1 => ScanMode::Symmetric,
                _ => return None,
            }
        } else {
            ScanMode::Asymmetric
        };
        let rescore_factor = if version >= 2 {
            (r.u32()? as usize).max(1)
        } else {
            DEFAULT_RESCORE_FACTOR
        };
        // (is_sq8, Some(packed)) — IVF4 reads an explicit storage tag,
        // the legacy sections imply one. IVF4 PQ rows are always packed,
        // which from_parts bounds to nbits ≤ 4.
        let (is_sq8, pq_packed) = match version {
            1 => (false, None),
            2 => (true, None),
            3 => (false, Some(false)),
            _ => match r.u8()? {
                1 => (true, None),
                2 => (false, Some(true)),
                _ => return None,
            },
        };
        let pq_geom = if let Some(packed) = pq_packed {
            let m = r.u32()? as usize;
            let nbits = r.u8()?;
            let ksub = r.u32()? as usize;
            Some((m, nbits, ksub, packed))
        } else {
            None
        };
        let centroids = r.f32_vec(nlist.checked_mul(d)?)?;
        let mut lists = Vec::with_capacity(nlist);
        let mut total_ids = 0usize;
        for _ in 0..nlist {
            let len = r.u32()? as usize;
            total_ids += len;
            if total_ids > n {
                return None;
            }
            lists.push(r.u32_vec(len)?);
        }
        if total_ids != n || lists.iter().flatten().any(|&id| id as usize >= n) {
            return None;
        }
        let storage = if let Some((m, nbits, ksub, packed)) = pq_geom {
            let pq_centroids = r.f32_vec(ksub.checked_mul(d)?)?;
            let l1_bound = r.f32()?;
            let cb = PqCodebook::from_parts(d, m, nbits, ksub, pq_centroids, l1_bound, packed)?;
            let codes = r.bytes(n.checked_mul(cb.code_stride())?)?.to_vec();
            // Every code indexes a ksub-entry table; an out-of-range code
            // in a corrupt buffer must fail HERE, not as an out-of-bounds
            // panic in the first LUT scan or decode. Packed rows also
            // reject a non-zero trailing nibble (odd m), which encode
            // never produces — so round trips stay bit-exact.
            if packed {
                let stride = cb.code_stride();
                for row in codes.chunks_exact(stride) {
                    if (0..m).any(|s| cb.code_at(row, s) >= ksub) {
                        return None;
                    }
                    if m % 2 == 1 && row[stride - 1] >> 4 != 0 {
                        return None;
                    }
                }
            } else if codes.iter().any(|&c| c as usize >= ksub) {
                return None;
            }
            Storage::Pq { codes, cb }
        } else if is_sq8 {
            let bias = r.f32_vec(d)?;
            let scale = r.f32_vec(d)?;
            let codes = r.bytes(n.checked_mul(d)?)?.to_vec();
            Storage::Sq8 {
                codes,
                cb: Sq8Codebook { bias, scale },
            }
        } else {
            Storage::F32(r.f32_vec(n.checked_mul(d)?)?)
        };
        if !r.0.is_empty() {
            return None;
        }
        Some(IvfIndex {
            centroids,
            lists,
            storage,
            n,
            d,
            metric,
            rescore_factor,
            scan,
        })
    }

    /// Batched parallel search (one reusable [`SearchScratch`] per pool
    /// lane, not per query).
    pub fn batch_search(&self, queries: &Tensor, k: usize, nprobe: usize) -> Vec<Vec<(u32, f64)>> {
        self.batch_search_rescored(queries, k, nprobe, None)
    }

    /// [`IvfIndex::batch_search`] with optional exact rescoring (see
    /// [`IvfIndex::search_rescored`]).
    pub fn batch_search_rescored(
        &self,
        queries: &Tensor,
        k: usize,
        nprobe: usize,
        exact: Option<&Tensor>,
    ) -> Vec<Vec<(u32, f64)>> {
        let q = queries.shape().rows();
        assert_eq!(
            queries.shape().last(),
            self.d,
            "query dimensionality mismatch"
        );
        let mut out: Vec<Vec<(u32, f64)>> = vec![Vec::new(); q];
        let per = pool::rows_per_lane(q);
        let qd = queries.data();
        pool::par_chunks_mut(&mut out, per, |c, chunk| {
            let mut scratch = SearchScratch::default();
            let start = c * per;
            for (i, slot) in chunk.iter_mut().enumerate() {
                let row = &qd[(start + i) * self.d..(start + i + 1) * self.d];
                self.search_into(&mut scratch, row, k, nprobe, exact, slot);
            }
        });
        out
    }
}

/// Zero-copy little-endian field reader over a borrowed byte slice.
struct Reader<'a>(&'a [u8]);

impl<'a> Reader<'a> {
    fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.0.len() < n {
            return None;
        }
        let (head, rest) = self.0.split_at(n);
        self.0 = rest;
        Some(head)
    }

    fn u8(&mut self) -> Option<u8> {
        self.bytes(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.bytes(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn f32(&mut self) -> Option<f32> {
        self.bytes(4)
            .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn f32_vec(&mut self, count: usize) -> Option<Vec<f32>> {
        let raw = self.bytes(count.checked_mul(4)?)?;
        Some(
            raw.chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect(),
        )
    }

    fn u32_vec(&mut self, count: usize) -> Option<Vec<u32>> {
        let raw = self.bytes(count.checked_mul(4)?)?;
        Some(
            raw.chunks_exact(4)
                .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect(),
        )
    }
}

/// Exact brute-force kNN over an embedding table (baseline for recall
/// measurements): a fused blocked scan, no candidate materialisation.
pub fn brute_force_knn(
    embeddings: &Tensor,
    query: &[f32],
    k: usize,
    metric: Metric,
) -> Vec<(u32, f64)> {
    let d = embeddings.shape().last();
    assert_eq!(query.len(), d, "query dimensionality mismatch");
    let mut topk = TopK::new(k);
    kernels::scan_block(metric, query, embeddings.data(), d, 0, &mut topk);
    topk.into_sorted()
}

/// Parallel batched brute-force kNN: one result row per query row,
/// splitting queries across the shared pool (the engine's no-IVF route).
/// Each lane reuses one fused top-k heap across all its queries.
pub fn brute_force_batch_knn(
    embeddings: &Tensor,
    queries: &Tensor,
    k: usize,
    metric: Metric,
) -> Vec<Vec<(u32, f64)>> {
    let d = embeddings.shape().last();
    let q = queries.shape().rows();
    assert_eq!(queries.shape().last(), d, "query dimensionality mismatch");
    let mut out: Vec<Vec<(u32, f64)>> = vec![Vec::new(); q];
    let per = pool::rows_per_lane(q);
    let qd = queries.data();
    let table = embeddings.data();
    pool::par_chunks_mut(&mut out, per, |c, chunk| {
        let mut topk = TopK::new(k);
        let start = c * per;
        for (i, slot) in chunk.iter_mut().enumerate() {
            let row = &qd[(start + i) * d..(start + i + 1) * d];
            topk.reset(k);
            kernels::scan_block(metric, row, table, d, 0, &mut topk);
            topk.drain_sorted_into(slot);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use trajcl_tensor::Shape;

    fn table(n: usize, d: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::randn(Shape::d2(n, d), 0.0, 1.0, &mut rng)
    }

    #[test]
    fn full_probe_equals_brute_force() {
        let emb = table(200, 8, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let index = IvfIndex::build(&emb, 16, Metric::L1, &mut rng);
        for qi in [0usize, 57, 133] {
            let q = emb.row(qi);
            let ivf = index.search(q, 5, index.nlist());
            let bf = brute_force_knn(&emb, q, 5, Metric::L1);
            assert_eq!(
                ivf.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
                bf.iter().map(|(i, _)| *i).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn self_query_returns_self_first() {
        let emb = table(100, 6, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let index = IvfIndex::build(&emb, 8, Metric::L2, &mut rng);
        let hits = index.search(emb.row(42), 1, 4);
        assert_eq!(hits[0].0, 42);
        assert_eq!(hits[0].1, 0.0);
    }

    #[test]
    fn partial_probe_has_high_recall() {
        let emb = table(500, 8, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let index = IvfIndex::build(&emb, 20, Metric::L1, &mut rng);
        let mut recall_sum = 0.0;
        let trials = 30;
        for qi in 0..trials {
            let q = emb.row(qi * 16);
            let approx = index.search(q, 10, 5);
            let exact = brute_force_knn(&emb, q, 10, Metric::L1);
            let exact_ids: Vec<u32> = exact.iter().map(|(i, _)| *i).collect();
            let hits = approx.iter().filter(|(i, _)| exact_ids.contains(i)).count();
            recall_sum += hits as f64 / 10.0;
        }
        let recall = recall_sum / trials as f64;
        assert!(recall > 0.6, "recall@10 with nprobe=5/20 too low: {recall}");
    }

    #[test]
    fn batch_search_matches_single() {
        let emb = table(150, 4, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let index = IvfIndex::build(&emb, 10, Metric::L1, &mut rng);
        let queries = table(9, 4, 8);
        let batch = index.batch_search(&queries, 3, 10);
        for (i, hits) in batch.iter().enumerate() {
            let single = index.search(queries.row(i), 3, 10);
            assert_eq!(hits, &single);
        }
    }

    #[test]
    fn memory_accounting_scales_with_n() {
        let small = IvfIndex::build(
            &table(50, 8, 9),
            4,
            Metric::L1,
            &mut StdRng::seed_from_u64(0),
        );
        let large = IvfIndex::build(
            &table(500, 8, 9),
            4,
            Metric::L1,
            &mut StdRng::seed_from_u64(0),
        );
        assert!(large.memory_bytes() > small.memory_bytes() * 5);
    }

    #[test]
    fn serialization_round_trip_preserves_search() {
        let emb = table(120, 6, 11);
        let mut rng = StdRng::seed_from_u64(12);
        let index = IvfIndex::build(&emb, 10, Metric::L1, &mut rng);
        let bytes = index.to_bytes();
        assert_eq!(&bytes[..4], b"IVF1", "f32 storage keeps the IVF1 layout");
        let restored = IvfIndex::from_bytes(&bytes).expect("round trip");
        assert_eq!(restored.len(), index.len());
        assert_eq!(restored.nlist(), index.nlist());
        for qi in [0usize, 33, 77] {
            assert_eq!(
                restored.search(emb.row(qi), 5, 3),
                index.search(emb.row(qi), 5, 3),
                "restored index diverged on query {qi}"
            );
        }
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(IvfIndex::from_bytes(b"nope").is_none());
        assert!(IvfIndex::from_bytes(b"IVF1").is_none());
        let emb = table(30, 4, 13);
        let index = IvfIndex::build(&emb, 4, Metric::L2, &mut StdRng::seed_from_u64(0));
        let mut bytes = index.to_bytes();
        bytes.truncate(bytes.len() - 7);
        assert!(IvfIndex::from_bytes(&bytes).is_none());
        bytes.clear();
        assert!(IvfIndex::from_bytes(&bytes).is_none());
        // Trailing garbage after a valid payload is rejected too.
        let mut bytes = index.to_bytes();
        bytes.push(0);
        assert!(IvfIndex::from_bytes(&bytes).is_none());
    }

    #[test]
    fn from_bytes_rejects_zero_counts() {
        // Fuzz regression: an all-zero IVF1 header (n = d = nlist = 0) is
        // self-consistent — zero lists summing to zero ids over an empty
        // table — so it used to decode; the first `search` then panicked
        // at `nprobe.clamp(1, 0)`. Zero counts must fail to decode.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"IVF1");
        bytes.push(0); // metric: L1
        bytes.extend_from_slice(&[0u8; 12]); // n = d = nlist = 0
        assert!(IvfIndex::from_bytes(&bytes).is_none());
    }

    #[test]
    fn nlist_clamps_to_population() {
        let emb = table(3, 4, 10);
        let index = IvfIndex::build(&emb, 100, Metric::L2, &mut StdRng::seed_from_u64(0));
        assert_eq!(index.nlist(), 3);
        assert_eq!(index.search(emb.row(0), 3, 100).len(), 3);
    }

    #[test]
    fn sq8_memory_is_a_quarter_of_f32() {
        let emb = table(1000, 32, 20);
        let mut rng = StdRng::seed_from_u64(21);
        let f32_index = IvfIndex::build(&emb, 16, Metric::L1, &mut rng);
        let mut rng = StdRng::seed_from_u64(21);
        let sq8 = IvfIndex::build_with(&emb, 16, Metric::L1, Quantization::Sq8, 4, &mut rng);
        assert!(
            (sq8.memory_bytes() as f64) < 0.30 * f32_index.memory_bytes() as f64,
            "sq8 {} vs f32 {}",
            sq8.memory_bytes(),
            f32_index.memory_bytes()
        );
        assert_eq!(sq8.quantization(), Quantization::Sq8);
        assert_eq!(f32_index.quantization(), Quantization::None);
    }

    #[test]
    fn sq8_full_probe_distances_stay_within_quantization_bound() {
        let emb = table(200, 16, 22);
        let mut rng = StdRng::seed_from_u64(23);
        let index = IvfIndex::build_with(&emb, 8, Metric::L1, Quantization::Sq8, 4, &mut rng);
        let bound = index.codebook().expect("sq8").l1_error_bound();
        for qi in [3usize, 77, 140] {
            let q = emb.row(qi);
            for (id, d) in index.search(q, 10, index.nlist()) {
                let exact = Metric::L1.dist(q, emb.row(id as usize));
                assert!(
                    (d - exact).abs() <= bound + 1e-5,
                    "id {id}: sq8 {d} vs exact {exact} (bound {bound})"
                );
            }
        }
    }

    #[test]
    fn sq8_rescoring_returns_exact_distances() {
        let emb = table(300, 12, 24);
        let mut rng = StdRng::seed_from_u64(25);
        let index = IvfIndex::build_with(&emb, 8, Metric::L1, Quantization::Sq8, 4, &mut rng);
        let q = emb.row(9);
        let rescored = index.search_rescored(q, 5, index.nlist(), Some(&emb));
        assert_eq!(rescored[0], (9, 0.0), "self-query must rescore to zero");
        for &(id, d) in &rescored {
            let exact = Metric::L1.dist(q, emb.row(id as usize));
            assert!((d - exact).abs() < 1e-9, "rescored distance must be exact");
        }
        // Batch rescoring agrees with the single-query path.
        let queries = table(5, 12, 26);
        let batch = index.batch_search_rescored(&queries, 4, 8, Some(&emb));
        for (i, hits) in batch.iter().enumerate() {
            assert_eq!(
                hits,
                &index.search_rescored(queries.row(i), 4, 8, Some(&emb))
            );
        }
    }

    #[test]
    fn sq8_serialization_round_trip() {
        let emb = table(90, 10, 30);
        let mut rng = StdRng::seed_from_u64(31);
        let index = IvfIndex::build_with(&emb, 6, Metric::L2, Quantization::Sq8, 7, &mut rng);
        let bytes = index.to_bytes();
        assert_eq!(&bytes[..4], b"IVF2");
        let restored = IvfIndex::from_bytes(&bytes).expect("round trip");
        assert_eq!(restored.rescore_factor(), 7);
        assert_eq!(restored.to_bytes(), bytes, "bit-exact round trip");
        for qi in [0usize, 44, 89] {
            assert_eq!(
                restored.search(emb.row(qi), 5, 3),
                index.search(emb.row(qi), 5, 3)
            );
        }
    }

    #[test]
    fn decode_vector_matches_storage() {
        let emb = table(40, 6, 33);
        let mut rng = StdRng::seed_from_u64(34);
        let f32_index = IvfIndex::build(&emb, 4, Metric::L1, &mut rng);
        let mut out = Vec::new();
        f32_index.decode_vector_into(7, &mut out);
        assert_eq!(out.as_slice(), f32_index.vector(7));
        let mut rng = StdRng::seed_from_u64(34);
        let sq8 = IvfIndex::build_with(&emb, 4, Metric::L1, Quantization::Sq8, 4, &mut rng);
        let bound = sq8.codebook().unwrap();
        let mut decoded = Vec::new();
        sq8.decode_vector_into(7, &mut decoded);
        for (j, (&v, &w)) in emb.row(7).iter().zip(&decoded).enumerate() {
            assert!((v - w).abs() <= bound.step_error(j) + 1e-6);
        }
    }

    #[test]
    fn pq_memory_is_under_a_tenth_of_f32() {
        // 6-bit codes keep the codebook small enough that the 10% bound
        // already holds at 2000 rows (at bench scale, 8-bit PQ lands
        // around 5% — see BENCH_index.json).
        let emb = table(2000, 64, 50);
        let mut rng = StdRng::seed_from_u64(51);
        let f32_index = IvfIndex::build(&emb, 16, Metric::L1, &mut rng);
        let mut rng = StdRng::seed_from_u64(51);
        let pq = IvfIndex::build_with(
            &emb,
            16,
            Metric::L1,
            Quantization::Pq { m: 8, nbits: 6 },
            8,
            &mut rng,
        );
        assert!(
            (pq.memory_bytes() as f64) < 0.10 * f32_index.memory_bytes() as f64,
            "pq {} vs f32 {}",
            pq.memory_bytes(),
            f32_index.memory_bytes()
        );
        assert_eq!(pq.quantization(), Quantization::Pq { m: 8, nbits: 6 });
        assert!(pq.pq_codebook().is_some() && pq.codebook().is_none());
    }

    #[test]
    fn pq_full_probe_distances_stay_within_trained_bound() {
        let emb = table(400, 16, 52);
        let mut rng = StdRng::seed_from_u64(53);
        let index = IvfIndex::build_with(
            &emb,
            8,
            Metric::L1,
            Quantization::Pq { m: 4, nbits: 8 },
            8,
            &mut rng,
        );
        let bound = index.pq_codebook().expect("pq").l1_error_bound();
        for qi in [3usize, 177, 340] {
            let q = emb.row(qi);
            for (id, d) in index.search(q, 10, index.nlist()) {
                let exact = Metric::L1.dist(q, emb.row(id as usize));
                assert!(
                    (d - exact).abs() <= bound + 1e-5,
                    "id {id}: pq {d} vs exact {exact} (bound {bound})"
                );
            }
        }
    }

    #[test]
    fn pq_rescoring_returns_exact_distances() {
        let emb = table(300, 12, 54);
        let mut rng = StdRng::seed_from_u64(55);
        let index = IvfIndex::build_with(
            &emb,
            8,
            Metric::L1,
            Quantization::Pq { m: 3, nbits: 8 },
            8,
            &mut rng,
        );
        let q = emb.row(9);
        let rescored = index.search_rescored(q, 5, index.nlist(), Some(&emb));
        assert_eq!(rescored[0], (9, 0.0), "self-query must rescore to zero");
        for &(id, d) in &rescored {
            let exact = Metric::L1.dist(q, emb.row(id as usize));
            assert!((d - exact).abs() < 1e-9, "rescored distance must be exact");
        }
        let queries = table(5, 12, 56);
        let batch = index.batch_search_rescored(&queries, 4, 8, Some(&emb));
        for (i, hits) in batch.iter().enumerate() {
            assert_eq!(
                hits,
                &index.search_rescored(queries.row(i), 4, 8, Some(&emb))
            );
        }
    }

    #[test]
    fn pq_serialization_round_trip() {
        let emb = table(90, 10, 57);
        let mut rng = StdRng::seed_from_u64(58);
        let index = IvfIndex::build_with(
            &emb,
            6,
            Metric::L2,
            Quantization::Pq { m: 3, nbits: 8 },
            5,
            &mut rng,
        );
        let bytes = index.to_bytes();
        assert_eq!(&bytes[..4], b"IVF3");
        let restored = IvfIndex::from_bytes(&bytes).expect("round trip");
        assert_eq!(restored.rescore_factor(), 5);
        assert_eq!(restored.quantization(), index.quantization());
        assert_eq!(restored.to_bytes(), bytes, "bit-exact round trip");
        for qi in [0usize, 44, 89] {
            assert_eq!(
                restored.search(emb.row(qi), 5, 3),
                index.search(emb.row(qi), 5, 3)
            );
        }
        // Truncation and trailing garbage are rejected like IVF1/IVF2.
        let mut bad = index.to_bytes();
        bad.truncate(bad.len() - 3);
        assert!(IvfIndex::from_bytes(&bad).is_none());
        let mut bad = index.to_bytes();
        bad.push(7);
        assert!(IvfIndex::from_bytes(&bad).is_none());
    }

    #[test]
    fn from_bytes_rejects_out_of_range_pq_codes() {
        // A code must index the ksub-entry centroid table; with 6-bit
        // codes (ksub = 64) a corrupt byte of 200 has to fail in
        // from_bytes, not panic in the first scan or decode.
        let emb = table(60, 8, 59);
        let mut rng = StdRng::seed_from_u64(60);
        let index = IvfIndex::build_with(
            &emb,
            4,
            Metric::L1,
            Quantization::Pq { m: 2, nbits: 6 },
            4,
            &mut rng,
        );
        let mut bytes = index.to_bytes();
        assert!(IvfIndex::from_bytes(&bytes).is_some(), "sanity");
        // Codes are the final n·m bytes of the IVF3 section.
        let last = bytes.len() - 1;
        bytes[last] = 200;
        assert!(IvfIndex::from_bytes(&bytes).is_none());
    }

    #[test]
    fn from_bytes_rejects_corrupt_packed_pq_nibbles() {
        // Packed rows fail on two corruptions the byte check can't see:
        // a nibble ≥ ksub (3-bit codes → ksub 8, nibble 9 is garbage) and
        // a non-zero trailing nibble on an odd m (never produced by
        // encode, so it can only be corruption).
        let emb = table(60, 9, 61);
        let mut rng = StdRng::seed_from_u64(62);
        let index = IvfIndex::build_with(
            &emb,
            4,
            Metric::L1,
            Quantization::Pq { m: 3, nbits: 3 },
            4,
            &mut rng,
        );
        assert_eq!(index.pq_codebook().expect("pq").code_stride(), 2);
        let bytes = index.to_bytes();
        assert!(IvfIndex::from_bytes(&bytes).is_some(), "sanity");
        // Codes are the final n·stride bytes; corrupt the last row.
        let mut bad = bytes.clone();
        let first_of_last_row = bad.len() - 2;
        bad[first_of_last_row] = 0x99; // nibbles 9, 9 ≥ ksub = 8
        assert!(IvfIndex::from_bytes(&bad).is_none());
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] |= 0xF0; // trailing nibble of odd m must stay zero
        assert!(IvfIndex::from_bytes(&bad).is_none());
    }

    #[test]
    fn pq4_serialization_round_trip_is_packed() {
        let emb = table(90, 10, 63);
        let mut rng = StdRng::seed_from_u64(64);
        let index = IvfIndex::build_with(
            &emb,
            6,
            Metric::L1,
            Quantization::Pq { m: 5, nbits: 4 },
            5,
            &mut rng,
        );
        let cb = index.pq_codebook().expect("pq");
        assert!(cb.packed());
        assert_eq!(cb.code_stride(), 3, "ceil(5 / 2) bytes per row");
        let bytes = index.to_bytes();
        assert_eq!(&bytes[..4], b"IVF4");
        let restored = IvfIndex::from_bytes(&bytes).expect("round trip");
        assert_eq!(restored.quantization(), index.quantization());
        assert!(restored.pq_codebook().expect("pq").packed());
        assert_eq!(restored.to_bytes(), bytes, "bit-exact round trip");
        for qi in [0usize, 44, 89] {
            assert_eq!(
                restored.search(emb.row(qi), 5, 3),
                index.search(emb.row(qi), 5, 3)
            );
        }
    }

    #[test]
    fn symmetric_serialization_round_trips_scan_mode() {
        let emb = table(120, 12, 65);
        let mut rng = StdRng::seed_from_u64(66);
        let index = IvfIndex::build_with_scan(
            &emb,
            8,
            Metric::L1,
            Quantization::Sq8,
            6,
            ScanMode::Symmetric,
            &mut rng,
        );
        assert_eq!(index.scan_mode(), ScanMode::Symmetric);
        assert!(index.codebook().expect("sq8").uniform_scale().is_some());
        let bytes = index.to_bytes();
        assert_eq!(&bytes[..4], b"IVF4");
        let restored = IvfIndex::from_bytes(&bytes).expect("round trip");
        assert_eq!(restored.scan_mode(), ScanMode::Symmetric);
        assert_eq!(restored.rescore_factor(), 6);
        assert_eq!(restored.to_bytes(), bytes, "bit-exact round trip");
        for qi in [0usize, 44, 119] {
            assert_eq!(
                restored.search(emb.row(qi), 5, 4),
                index.search(emb.row(qi), 5, 4)
            );
        }
        // Asymmetric SQ8 builds still write the legacy IVF2 section.
        let mut rng = StdRng::seed_from_u64(66);
        let asym = IvfIndex::build_with(&emb, 8, Metric::L1, Quantization::Sq8, 6, &mut rng);
        assert_eq!(&asym.to_bytes()[..4], b"IVF2");
    }

    #[test]
    fn symmetric_search_stays_within_error_bound_and_rescores_exactly() {
        let emb = table(300, 16, 67);
        let mut rng = StdRng::seed_from_u64(68);
        let index = IvfIndex::build_with_scan(
            &emb,
            8,
            Metric::L1,
            Quantization::Sq8,
            4,
            ScanMode::Symmetric,
            &mut rng,
        );
        // Symmetric distances quantize both sides, so they deviate from
        // exact by at most twice the codebook bound (queries drawn from
        // the table are inside the trained box).
        let bound = 2.0 * index.codebook().expect("sq8").l1_error_bound();
        for qi in [3usize, 111, 280] {
            let q = emb.row(qi);
            for (id, dq) in index.search(q, 10, index.nlist()) {
                let exact = Metric::L1.dist(q, emb.row(id as usize));
                assert!(
                    (dq - exact).abs() <= bound + 1e-5,
                    "id {id}: sym {dq} vs exact {exact} (bound {bound})"
                );
            }
        }
        // Rescoring returns exact distances, identical to batch.
        let q = emb.row(9);
        let rescored = index.search_rescored(q, 5, index.nlist(), Some(&emb));
        assert_eq!(rescored[0], (9, 0.0), "self-query must rescore to zero");
        for &(id, dq) in &rescored {
            let exact = Metric::L1.dist(q, emb.row(id as usize));
            assert!((dq - exact).abs() < 1e-9);
        }
        let queries = table(5, 16, 69);
        let batch = index.batch_search_rescored(&queries, 4, 8, Some(&emb));
        for (i, hits) in batch.iter().enumerate() {
            assert_eq!(
                hits,
                &index.search_rescored(queries.row(i), 4, 8, Some(&emb))
            );
        }
    }

    #[test]
    fn symmetric_mode_normalises_to_asymmetric_off_sq8() {
        let emb = table(50, 6, 70);
        let mut rng = StdRng::seed_from_u64(71);
        let f32_index = IvfIndex::build_with_scan(
            &emb,
            4,
            Metric::L1,
            Quantization::None,
            4,
            ScanMode::Symmetric,
            &mut rng,
        );
        assert_eq!(f32_index.scan_mode(), ScanMode::Asymmetric);
        assert_eq!(&f32_index.to_bytes()[..4], b"IVF1");
        let mut rng = StdRng::seed_from_u64(71);
        let pq = IvfIndex::build_with_scan(
            &emb,
            4,
            Metric::L1,
            Quantization::Pq { m: 2, nbits: 8 },
            4,
            ScanMode::Symmetric,
            &mut rng,
        );
        assert_eq!(pq.scan_mode(), ScanMode::Asymmetric);
    }

    #[test]
    fn scan_mode_and_pq4_parse_from_str() {
        assert_eq!("symmetric".parse::<ScanMode>(), Ok(ScanMode::Symmetric));
        assert_eq!("SYM".parse::<ScanMode>(), Ok(ScanMode::Symmetric));
        assert_eq!("asym".parse::<ScanMode>(), Ok(ScanMode::Asymmetric));
        assert!("fast".parse::<ScanMode>().is_err());
        assert_eq!(
            "pq4".parse::<Quantization>(),
            Ok(Quantization::Pq {
                m: DEFAULT_PQ_M,
                nbits: 4
            })
        );
        assert_eq!(
            "pq4:16".parse::<Quantization>(),
            Ok(Quantization::Pq { m: 16, nbits: 4 })
        );
        assert_eq!(
            "pq:16".parse::<Quantization>(),
            Ok(Quantization::Pq { m: 16, nbits: 8 })
        );
        assert!("pq4:0".parse::<Quantization>().is_err());
        assert!("pq5".parse::<Quantization>().is_err());
    }

    #[test]
    fn brute_force_batch_matches_single() {
        let emb = table(120, 8, 40);
        let queries = table(7, 8, 41);
        let batch = brute_force_batch_knn(&emb, &queries, 6, Metric::L2);
        for (i, hits) in batch.iter().enumerate() {
            assert_eq!(hits, &brute_force_knn(&emb, queries.row(i), 6, Metric::L2));
        }
    }
}
