//! Blocked, SIMD-friendly distance kernels, fused bounded top-k selection,
//! and the SQ8 scalar quantizer — the compute core of million-scale kNN.
//!
//! Design notes:
//!
//! * **Distance kernels** accumulate in `f32` across 8 independent lanes
//!   (one accumulator per unrolled element), so LLVM auto-vectorizes the
//!   inner loop into full-width SIMD without any per-element `f64` upcast.
//!   Database vectors live in contiguous row-major (SoA) storage; a search
//!   streams one query against a block of rows, touching each cache line
//!   exactly once.
//! * **[`TopK`]** is a bounded binary max-heap fused into the scan: a
//!   candidate whose distance is not below the current k-th best is
//!   rejected with one comparison (early abandon), no full sort of the
//!   candidate set ever happens, and the heap storage is reusable across
//!   queries (see [`crate::ivf::SearchScratch`]) — no per-candidate-list
//!   allocation.
//! * **[`Sq8Codebook`]** quantizes each dimension independently to int8
//!   codes (`v ≈ bias_j + scale_j · code_j`, code ∈ 0..=255). The
//!   asymmetric kernels compare an exact `f32` query against quantized
//!   database rows by decoding inline — two fused multiply-adds per
//!   element, still auto-vectorizable — so the database shrinks 4× while
//!   queries lose no precision.
//! * **[`PqCodebook`]** goes below one byte per dimension: the vector is
//!   split into `m` subspaces and each subvector is replaced by the index
//!   of its nearest k-means-trained sub-centroid — `m` code bytes per
//!   vector regardless of `d`. Search is ADC (asymmetric distance
//!   computation): one `m × ksub` lookup table of exact
//!   query-subvector-to-centroid distances is built per query
//!   ([`PqCodebook::build_lut_into`]), after which scanning a row is `m`
//!   table lookups and adds ([`pq_scan_ids`]) — no decode in the loop.
//!   With `nbits ≤ 4` codes are **packed two per byte** (low nibble =
//!   even subspace) and the whole LUT is `m × 16` floats — small enough
//!   to live in L1 for any realistic `m` ([`pq_packed_scan_ids`]).
//! * **Symmetric SQ8** ([`sq8_sym_scan_ids`]) quantizes the *query* with
//!   the same uniform-scale codebook ([`Sq8Codebook::train_uniform`]) and
//!   scans in the byte domain: `Σ scale·|q_j − c_j|` factors into one
//!   integer sum-of-absolute-differences times a constant, which the
//!   [`dispatch`] module maps onto `vpsadbw`-style SIMD chosen at
//!   runtime. Distances deviate from asymmetric ones by at most the
//!   codebook's encode error bound; the over-fetch rescore restores
//!   exact results.
//! * Every `*_scan_ids` variant funnels through one generic seam,
//!   [`scan_ids_by`]: gather loop + per-row distance closure + the
//!   `TopK::offer` early abandon — the scan logic exists once.

use rand::seq::SliceRandom;
use rand::Rng;
use trajcl_tensor::pool;

use crate::ivf::Metric;

pub mod dispatch;

/// Unroll width of the f32 kernels (accumulator lanes).
const LANES: usize = 8;

/// L1 distance, f32 accumulation, 8-wide unrolled.
#[inline]
pub fn l1_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for j in 0..LANES {
            acc[j] += (xa[j] - xb[j]).abs();
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += (x - y).abs();
    }
    acc.iter().sum::<f32>() + tail
}

/// Squared L2 distance, f32 accumulation, 8-wide unrolled.
#[inline]
pub fn l2_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for j in 0..LANES {
            let d = xa[j] - xb[j];
            acc[j] += d * d;
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        let d = x - y;
        tail += d * d;
    }
    acc.iter().sum::<f32>() + tail
}

/// Distance under `metric` (f32 kernel, widened to `f64` at the boundary).
#[inline]
pub fn dist(metric: Metric, a: &[f32], b: &[f32]) -> f64 {
    match metric {
        Metric::L1 => l1_f32(a, b) as f64,
        Metric::L2 => l2_f32(a, b) as f64,
    }
}

/// Streams `query` against the contiguous `(rows.len()/d, d)` block `rows`,
/// offering every row to `topk` as id `base + row_index`.
#[inline]
pub fn scan_block(
    metric: Metric,
    query: &[f32],
    rows: &[f32],
    d: usize,
    base: u32,
    topk: &mut TopK,
) {
    debug_assert_eq!(rows.len() % d, 0);
    match metric {
        Metric::L1 => {
            for (i, row) in rows.chunks_exact(d).enumerate() {
                topk.offer(base + i as u32, l1_f32(query, row) as f64);
            }
        }
        Metric::L2 => {
            for (i, row) in rows.chunks_exact(d).enumerate() {
                topk.offer(base + i as u32, l2_f32(query, row) as f64);
            }
        }
    }
}

/// The one gather-scan loop every `*_scan_ids` variant shares: walk the
/// inverted list, compute a per-row distance through `dist_of`, offer it
/// to the fused selector (whose `offer` is the O(1) early abandon).
///
/// Storage-specific scans differ only in how a row id becomes a
/// distance, so they pass a closure here instead of re-rolling the loop
/// — see [`scan_ids`] (f32), [`sq8_scan_ids`] (asymmetric int8),
/// [`sq8_sym_scan_ids`] (symmetric int8), [`pq_scan_ids`] /
/// [`pq_packed_scan_ids`] (ADC).
#[inline]
pub fn scan_ids_by(ids: &[u32], topk: &mut TopK, mut dist_of: impl FnMut(u32) -> f64) {
    for &id in ids {
        let d = dist_of(id);
        topk.offer(id, d);
    }
}

/// Like [`scan_block`] but over a gather list of row ids into `rows`
/// (the inverted-list scan: ids index the full SoA table).
#[inline]
pub fn scan_ids(
    metric: Metric,
    query: &[f32],
    rows: &[f32],
    d: usize,
    ids: &[u32],
    topk: &mut TopK,
) {
    match metric {
        Metric::L1 => scan_ids_by(ids, topk, |id| {
            l1_f32(query, &rows[id as usize * d..(id as usize + 1) * d]) as f64
        }),
        Metric::L2 => scan_ids_by(ids, topk, |id| {
            l2_f32(query, &rows[id as usize * d..(id as usize + 1) * d]) as f64
        }),
    }
}

/// Index of the nearest row of `rows` to `query` (k-means assignment
/// inner step); `rows` is contiguous `(n, d)`.
#[inline]
pub fn argmin_row(metric: Metric, query: &[f32], rows: &[f32], d: usize) -> usize {
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    match metric {
        Metric::L1 => {
            for (i, row) in rows.chunks_exact(d).enumerate() {
                let dd = l1_f32(query, row);
                if dd < best_d {
                    best_d = dd;
                    best = i;
                }
            }
        }
        Metric::L2 => {
            for (i, row) in rows.chunks_exact(d).enumerate() {
                let dd = l2_f32(query, row);
                if dd < best_d {
                    best_d = dd;
                    best = i;
                }
            }
        }
    }
    best
}

/// A bounded top-k selector: binary max-heap over `(distance, id)` with
/// the heap root as the early-abandon bound.
///
/// Ordering is `(distance, id)` ascending, so results are deterministic
/// even across equal distances. `offer` is O(1) for rejected candidates
/// (one comparison against the current k-th best) and O(log k) for
/// accepted ones. The backing storage is retained across [`TopK::reset`]
/// calls, so one scratch heap serves any number of queries without
/// reallocating.
#[derive(Default)]
pub struct TopK {
    k: usize,
    /// Max-heap: `heap[0]` is the worst retained candidate.
    heap: Vec<(f64, u32)>,
}

impl TopK {
    /// An empty selector for `k` results.
    pub fn new(k: usize) -> TopK {
        TopK {
            k,
            heap: Vec::with_capacity(k.min(1 << 20)),
        }
    }

    /// Clears the selector and re-arms it for `k` results, keeping the
    /// backing allocation.
    pub fn reset(&mut self, k: usize) {
        self.k = k;
        self.heap.clear();
        // `reserve` is relative to the (now zero) length, so this
        // guarantees capacity for k retained candidates up front — capped
        // so a wire-supplied absurd k cannot become an absurd allocation.
        self.heap.reserve(k.min(1 << 20));
    }

    /// Number of retained candidates.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The current k-th best distance — the early-abandon bound. Any
    /// candidate at or above it cannot enter the result set.
    #[inline]
    pub fn bound(&self) -> f64 {
        if self.heap.len() < self.k {
            f64::INFINITY
        } else {
            self.heap[0].0
        }
    }

    /// Offers a candidate; rejects in O(1) when it cannot rank.
    #[inline]
    pub fn offer(&mut self, id: u32, dist: f64) {
        if self.heap.len() < self.k {
            self.heap.push((dist, id));
            self.sift_up(self.heap.len() - 1);
        } else if self.k > 0 && Self::less((dist, id), self.heap[0]) {
            self.heap[0] = (dist, id);
            self.sift_down(0);
        }
    }

    /// `(dist, id)` lexicographic order (total over f64 via `total_cmp`).
    #[inline]
    fn less(a: (f64, u32), b: (f64, u32)) -> bool {
        match a.0.total_cmp(&b.0) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => a.1 < b.1,
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if Self::less(self.heap[parent], self.heap[i]) {
                self.heap.swap(parent, i);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut largest = i;
            if l < self.heap.len() && Self::less(self.heap[largest], self.heap[l]) {
                largest = l;
            }
            if r < self.heap.len() && Self::less(self.heap[largest], self.heap[r]) {
                largest = r;
            }
            if largest == i {
                break;
            }
            self.heap.swap(i, largest);
            i = largest;
        }
    }

    /// Drains the retained candidates into `out` as `(id, dist)` sorted
    /// ascending by `(dist, id)`, leaving the selector empty (storage
    /// kept). `out` is cleared first.
    pub fn drain_sorted_into(&mut self, out: &mut Vec<(u32, f64)>) {
        out.clear();
        out.extend(self.heap.iter().map(|&(d, id)| (id, d)));
        self.heap.clear();
        out.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    }

    /// Convenience: drain into a fresh vector.
    pub fn into_sorted(mut self) -> Vec<(u32, f64)> {
        let mut out = Vec::new();
        self.drain_sorted_into(&mut out);
        out
    }
}

/// Per-dimension affine scalar quantizer: `v_j ≈ bias_j + scale_j · c_j`
/// with `c_j ∈ 0..=255` (one byte per dimension, 4× smaller than f32).
///
/// # Examples
///
/// ```
/// use trajcl_index::Sq8Codebook;
///
/// // Train per-dimension ranges over a (3, 2) table, then round-trip a
/// // row: the decode error is at most half a quantization step per dim.
/// let table = [0.0f32, 10.0, 1.0, 20.0, 2.0, 30.0];
/// let cb = Sq8Codebook::train(&table, 2);
/// let mut codes = Vec::new();
/// cb.encode_into(&table[2..4], &mut codes);
/// assert_eq!(codes.len(), 2); // one byte per dimension
///
/// let mut decoded = [0.0f32; 2];
/// cb.decode_into(&codes, &mut decoded);
/// for j in 0..2 {
///     assert!((decoded[j] - table[2 + j]).abs() <= cb.step_error(j) + 1e-6);
/// }
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Sq8Codebook {
    /// Per-dimension minimum (the value of code 0).
    pub bias: Vec<f32>,
    /// Per-dimension step (the value span of one code increment).
    pub scale: Vec<f32>,
}

impl Sq8Codebook {
    /// Trains the per-dimension ranges over a contiguous `(n, d)` table.
    pub fn train(data: &[f32], d: usize) -> Sq8Codebook {
        assert!(
            d > 0 && data.len().is_multiple_of(d),
            "table must be (n, d)"
        );
        let mut lo = vec![f32::INFINITY; d];
        let mut hi = vec![f32::NEG_INFINITY; d];
        for row in data.chunks_exact(d) {
            for (j, &v) in row.iter().enumerate() {
                lo[j] = lo[j].min(v);
                hi[j] = hi[j].max(v);
            }
        }
        let scale = lo
            .iter()
            .zip(&hi)
            .map(|(&l, &h)| {
                let span = h - l;
                // Degenerate dimension (constant, or empty table): a zero
                // scale keeps every code at 0 and decodes exactly to bias.
                if span.is_finite() && span > 0.0 {
                    span / 255.0
                } else {
                    0.0
                }
            })
            .collect();
        let bias = lo
            .into_iter()
            .map(|l| if l.is_finite() { l } else { 0.0 })
            .collect();
        Sq8Codebook { bias, scale }
    }

    /// Like [`Sq8Codebook::train`] but with **one shared scale** across
    /// all dimensions: the widest per-dimension span divided by 255
    /// (per-dimension bias is kept — it cancels out of code-to-code
    /// differences). Encode, decode and serialization are unchanged;
    /// what a uniform scale buys is the symmetric integer scan, where
    /// `Σ_j scale_j · |q_j − c_j|` factors into
    /// `scale · Σ_j |q_j − c_j|` — one byte-domain SAD and a single
    /// multiply ([`sq8_sym_scan_ids`]). Narrow dimensions pay a slightly
    /// coarser step (reflected honestly in
    /// [`Sq8Codebook::l1_error_bound`]), which the over-fetch rescore
    /// absorbs.
    pub fn train_uniform(data: &[f32], d: usize) -> Sq8Codebook {
        let mut cb = Sq8Codebook::train(data, d);
        let widest = cb.scale.iter().fold(0.0f32, |a, &s| a.max(s));
        cb.scale.fill(widest);
        cb
    }

    /// The shared scale when every dimension uses the same one — `Some`
    /// for [`Sq8Codebook::train_uniform`] codebooks (a bit-exact
    /// property, preserved by serialization round trips), `None` for
    /// per-dimension codebooks. Symmetric scans require `Some`; callers
    /// fall back to the asymmetric kernels otherwise.
    pub fn uniform_scale(&self) -> Option<f32> {
        let s = *self.scale.first()?;
        self.scale.iter().all(|&x| x == s).then_some(s)
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.bias.len()
    }

    /// Encodes one `d`-vector, appending `d` codes to `out`.
    pub fn encode_into(&self, v: &[f32], out: &mut Vec<u8>) {
        debug_assert_eq!(v.len(), self.dim());
        out.extend(
            v.iter()
                .zip(&self.bias)
                .zip(&self.scale)
                .map(|((&x, &b), &s)| {
                    if s > 0.0 {
                        ((x - b) / s).round().clamp(0.0, 255.0) as u8
                    } else {
                        0u8
                    }
                }),
        );
    }

    /// Decodes `codes` (one row) into `out[..d]`.
    pub fn decode_into(&self, codes: &[u8], out: &mut [f32]) {
        debug_assert_eq!(codes.len(), self.dim());
        for ((o, &c), (&b, &s)) in out
            .iter_mut()
            .zip(codes)
            .zip(self.bias.iter().zip(&self.scale))
        {
            *o = b + s * c as f32;
        }
    }

    /// Worst-case absolute error of one decoded coordinate in dimension
    /// `j` (half a quantization step).
    pub fn step_error(&self, j: usize) -> f32 {
        self.scale[j] * 0.5
    }

    /// Worst-case L1 distance error of one quantized row (the sum of all
    /// per-dimension half-steps) — the bound quantization-aware tests and
    /// the rescoring margin reason about.
    pub fn l1_error_bound(&self) -> f64 {
        self.scale.iter().map(|&s| s as f64 * 0.5).sum()
    }

    /// Approximate resident bytes of the codebook itself.
    pub fn memory_bytes(&self) -> usize {
        (self.bias.len() + self.scale.len()) * 4
    }
}

/// Asymmetric L1: exact f32 `query` vs one quantized row, decoding inline
/// (`chunks_exact` zips keep the loop bounds-check-free so it vectorizes
/// like the pure-f32 kernels).
#[inline]
pub fn sq8_l1_asym(query: &[f32], codes: &[u8], bias: &[f32], scale: &[f32]) -> f32 {
    debug_assert_eq!(query.len(), codes.len());
    let mut acc = [0.0f32; LANES];
    let mut cq = query.chunks_exact(LANES);
    let mut cc = codes.chunks_exact(LANES);
    let mut cb = bias.chunks_exact(LANES);
    let mut cs = scale.chunks_exact(LANES);
    for (((xq, xc), xb), xs) in (&mut cq).zip(&mut cc).zip(&mut cb).zip(&mut cs) {
        for j in 0..LANES {
            let v = xb[j] + xs[j] * xc[j] as f32;
            acc[j] += (xq[j] - v).abs();
        }
    }
    let mut tail = 0.0f32;
    for (((&q, &c), &b), &s) in cq
        .remainder()
        .iter()
        .zip(cc.remainder())
        .zip(cb.remainder())
        .zip(cs.remainder())
    {
        tail += (q - (b + s * c as f32)).abs();
    }
    acc.iter().sum::<f32>() + tail
}

/// Asymmetric squared L2: exact f32 `query` vs one quantized row.
#[inline]
pub fn sq8_l2_asym(query: &[f32], codes: &[u8], bias: &[f32], scale: &[f32]) -> f32 {
    debug_assert_eq!(query.len(), codes.len());
    let mut acc = [0.0f32; LANES];
    let mut cq = query.chunks_exact(LANES);
    let mut cc = codes.chunks_exact(LANES);
    let mut cb = bias.chunks_exact(LANES);
    let mut cs = scale.chunks_exact(LANES);
    for (((xq, xc), xb), xs) in (&mut cq).zip(&mut cc).zip(&mut cb).zip(&mut cs) {
        for j in 0..LANES {
            let v = xb[j] + xs[j] * xc[j] as f32;
            let d = xq[j] - v;
            acc[j] += d * d;
        }
    }
    let mut tail = 0.0f32;
    for (((&q, &c), &b), &s) in cq
        .remainder()
        .iter()
        .zip(cc.remainder())
        .zip(cb.remainder())
        .zip(cs.remainder())
    {
        let d = q - (b + s * c as f32);
        tail += d * d;
    }
    acc.iter().sum::<f32>() + tail
}

/// Asymmetric distance under `metric` (f64 at the boundary).
#[inline]
pub fn sq8_dist(metric: Metric, query: &[f32], codes: &[u8], cb: &Sq8Codebook) -> f64 {
    match metric {
        Metric::L1 => sq8_l1_asym(query, codes, &cb.bias, &cb.scale) as f64,
        Metric::L2 => sq8_l2_asym(query, codes, &cb.bias, &cb.scale) as f64,
    }
}

/// Scans quantized rows by gather list, offering to `topk` (the SQ8
/// inverted-list scan; `codes` is the full `(n, d)` code table).
#[inline]
pub fn sq8_scan_ids(
    metric: Metric,
    query: &[f32],
    codes: &[u8],
    d: usize,
    cb: &Sq8Codebook,
    ids: &[u32],
    topk: &mut TopK,
) {
    scan_ids_by(ids, topk, |id| {
        sq8_dist(
            metric,
            query,
            &codes[id as usize * d..(id as usize + 1) * d],
            cb,
        )
    });
}

/// Symmetric SQ8 distance between two code rows of a **uniform-scale**
/// codebook (`scale` = [`Sq8Codebook::uniform_scale`]): the metric
/// distance between the two *decoded* rows, computed without decoding —
/// per-dimension bias cancels, so L1 is `scale · Σ|q_j − c_j|` and
/// squared L2 is `scale² · Σ(q_j − c_j)²`, both exact integer sums
/// scaled once at the end.
#[inline]
pub fn sq8_sym_dist(metric: Metric, qcodes: &[u8], codes: &[u8], scale: f32) -> f64 {
    match metric {
        Metric::L1 => dispatch::sad_scalar(qcodes, codes) as f64 * scale as f64,
        Metric::L2 => dispatch::ssd_scalar(qcodes, codes) as f64 * scale as f64 * scale as f64,
    }
}

/// Scans quantized rows against a quantized query (the symmetric SQ8
/// inverted-list scan): byte-domain integer kernels resolved through
/// [`dispatch`] once per call, no per-element decode. `qcodes` is the
/// query encoded with the index's codebook, `scale` the codebook's
/// uniform scale. Offered distances equal [`sq8_sym_dist`] for every
/// dispatch level (the integer sums are bit-identical across scalar and
/// SIMD paths).
#[inline]
pub fn sq8_sym_scan_ids(
    metric: Metric,
    qcodes: &[u8],
    codes: &[u8],
    d: usize,
    scale: f32,
    ids: &[u32],
    topk: &mut TopK,
) {
    match metric {
        Metric::L1 => {
            let sad = dispatch::sad_fn();
            let s = scale as f64;
            scan_ids_by(ids, topk, |id| {
                sad(qcodes, &codes[id as usize * d..(id as usize + 1) * d]) as f64 * s
            });
        }
        Metric::L2 => {
            let ssd = dispatch::ssd_fn();
            let s2 = scale as f64 * scale as f64;
            scan_ids_by(ids, topk, |id| {
                ssd(qcodes, &codes[id as usize * d..(id as usize + 1) * d]) as f64 * s2
            });
        }
    }
}

/// Product quantizer: the vector is split into `m` contiguous subspaces
/// and each subvector is stored as the index of its nearest sub-centroid
/// (k-means-trained per subspace) — `m` bytes per vector, i.e. sub-byte
/// cost *per dimension* once `m < d`.
///
/// Training follows standard practice: plain k-means (L2) per subspace
/// over (a sample of) the indexed table, encoding by nearest-centroid
/// assignment. Search never decodes rows: a per-query lookup table of
/// exact query-subvector-to-centroid distances turns each row scan into
/// `m` table lookups ([`pq_scan_ids`]).
///
/// When `d` is not a multiple of `m`, the first `d mod m` subspaces are
/// one dimension wider — any `1 ≤ m ≤ d` works.
///
/// # Examples
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use trajcl_index::{Metric, PqCodebook};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// // A tiny (32, 8) table; 2 subspaces of 4 dims, 8-bit codes.
/// let table: Vec<f32> = (0..32 * 8).map(|i| (i % 13) as f32 * 0.1).collect();
/// let mut cb = PqCodebook::train(&table, 8, 2, 8, &mut rng);
/// let codes = cb.encode_table(&table); // 2 bytes per row
/// assert_eq!(codes.len(), 32 * 2);
///
/// // ADC: build the per-query LUT once, then row distances are m lookups.
/// let query = &table[..8];
/// let mut lut = Vec::new();
/// cb.build_lut_into(Metric::L1, query, &mut lut);
/// let d0 = cb.lut_distance(&lut, &codes[..2]);
/// assert!(d0 <= cb.l1_error_bound() + 1e-5); // self-row ≈ 0 within the bound
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct PqCodebook {
    m: usize,
    nbits: u8,
    /// Centroids per subspace (`min(2^nbits, n)` at training time).
    ksub: usize,
    d: usize,
    /// Subspace boundaries, `m + 1` entries; subspace `s` covers
    /// dimensions `offsets[s]..offsets[s+1]`. Recomputed from `(d, m)`,
    /// never serialised.
    offsets: Vec<usize>,
    /// Concatenated per-subspace centroid tables (`ksub * d` floats):
    /// subspace `s` occupies `ksub * dsub_s` floats starting at
    /// `ksub * offsets[s]`, stored row-major (`ksub` rows of `dsub_s`).
    centroids: Vec<f32>,
    /// Max per-row L1 reconstruction error observed over the encoded
    /// table ([`PqCodebook::encode_table`]); 0 until a table is encoded.
    l1_bound: f32,
    /// Whether stored rows pack two 4-bit codes per byte (`nbits ≤ 4`):
    /// subspace `2i` in the low nibble of byte `i`, `2i + 1` in the high
    /// nibble, trailing nibble of an odd `m` always zero. Row stride is
    /// [`PqCodebook::code_stride`] bytes either way.
    packed: bool,
}

/// Lloyd iterations used by PQ sub-quantizer training.
const PQ_KMEANS_ITERS: usize = 10;
/// Training-sample cap per sub-quantizer, as a multiple of `ksub`
/// (k-means quality saturates long before the full table is needed).
const PQ_TRAIN_POINTS_PER_CENTROID: usize = 128;

/// Subspace boundaries for a `(d, m)` split: `m + 1` offsets, the first
/// `d mod m` subspaces one dimension wider. The single source of truth —
/// training and deserialization must agree on the split or codes decode
/// against the wrong centroids.
fn subspace_offsets(d: usize, m: usize) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(m + 1);
    offsets.push(0usize);
    for s in 0..m {
        offsets.push(offsets[s] + d / m + usize::from(s < d % m));
    }
    offsets
}

/// The ADC accumulation shared by [`pq_scan_ids`] and
/// [`PqCodebook::lut_distance`]: sum of one LUT entry per code byte.
#[inline]
fn adc_sum(lut: &[f32], codes: &[u8], ksub: usize) -> f32 {
    let mut acc = 0.0f32;
    for (s, &c) in codes.iter().enumerate() {
        acc += lut[s * ksub + c as usize];
    }
    acc
}

/// The packed-row ADC accumulation ([`pq_packed_scan_ids`],
/// [`PqCodebook::lut_distance`]): two 4-bit codes per byte, low nibble =
/// even subspace. The trailing high nibble of an odd `m` is skipped.
#[inline]
fn adc_sum_packed(lut: &[f32], row: &[u8], m: usize, ksub: usize) -> f32 {
    let mut acc = 0.0f32;
    for (i, &b) in row.iter().enumerate() {
        let s = 2 * i;
        acc += lut[s * ksub + (b & 0x0F) as usize];
        if s + 1 < m {
            acc += lut[(s + 1) * ksub + (b >> 4) as usize];
        }
    }
    acc
}

impl PqCodebook {
    /// Trains `m` sub-quantizers (8-bit by default ⇒ `ksub = 256`
    /// centroids each, clamped to the table size) over a contiguous
    /// `(n, d)` table. Tables larger than `ksub ·` 128 rows are
    /// subsampled for training; encoding always covers every row.
    /// `m` is clamped to `1..=d`, `nbits` to `1..=8`.
    pub fn train(data: &[f32], d: usize, m: usize, nbits: u8, rng: &mut impl Rng) -> PqCodebook {
        assert!(
            d > 0 && data.len().is_multiple_of(d) && !data.is_empty(),
            "table must be a non-empty (n, d)"
        );
        let n = data.len() / d;
        let m = m.clamp(1, d);
        let nbits = nbits.clamp(1, 8);
        let ksub = (1usize << nbits).min(n);
        let offsets = subspace_offsets(d, m);
        // Sample training rows once, shared by every subspace.
        let cap = ksub * PQ_TRAIN_POINTS_PER_CENTROID;
        let sample: Vec<usize> = if n <= cap {
            (0..n).collect()
        } else {
            let mut ids: Vec<usize> = (0..n).collect();
            ids.shuffle(rng);
            ids.truncate(cap);
            ids
        };
        let mut centroids = vec![0.0f32; ksub * d];
        for s in 0..m {
            let dsub = offsets[s + 1] - offsets[s];
            let off = offsets[s];
            let sub: Vec<f32> = sample
                .iter()
                .flat_map(|&i| data[i * d + off..i * d + off + dsub].iter().copied())
                .collect();
            let table = &mut centroids[ksub * off..ksub * off + ksub * dsub];
            kmeans_subspace(&sub, dsub, ksub, table, rng);
        }
        PqCodebook {
            m,
            nbits,
            ksub,
            d,
            offsets,
            centroids,
            l1_bound: 0.0,
            packed: nbits <= 4,
        }
    }

    /// Rebuilds a codebook from serialised parts (`IVF3`/`IVF4` readers);
    /// `None` when the field sizes are inconsistent. `packed` must only
    /// be set for `nbits ≤ 4` (two codes per byte need 4-bit codes).
    pub fn from_parts(
        d: usize,
        m: usize,
        nbits: u8,
        ksub: usize,
        centroids: Vec<f32>,
        l1_bound: f32,
        packed: bool,
    ) -> Option<PqCodebook> {
        if d == 0
            || m == 0
            || m > d
            || nbits == 0
            || nbits > 8
            || (packed && nbits > 4)
            || ksub == 0
            || ksub > (1usize << nbits)
            || centroids.len() != ksub.checked_mul(d)?
        {
            return None;
        }
        Some(PqCodebook {
            m,
            nbits,
            ksub,
            d,
            offsets: subspace_offsets(d, m),
            centroids,
            l1_bound,
            packed,
        })
    }

    /// Number of subspaces (= code bytes per vector).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Code width in bits (8 ⇒ up to 256 centroids per subspace).
    pub fn nbits(&self) -> u8 {
        self.nbits
    }

    /// Centroids per subspace (`min(2^nbits, n)` at training time).
    pub fn ksub(&self) -> usize {
        self.ksub
    }

    /// Whether stored rows pack two 4-bit codes per byte.
    pub fn packed(&self) -> bool {
        self.packed
    }

    /// Bytes per stored code row: `ceil(m / 2)` when packed, `m` otherwise.
    pub fn code_stride(&self) -> usize {
        if self.packed {
            self.m.div_ceil(2)
        } else {
            self.m
        }
    }

    /// Code index of subspace `s` in a stored row (nibble extraction for
    /// packed rows, plain byte otherwise).
    #[inline]
    pub fn code_at(&self, row: &[u8], s: usize) -> usize {
        if self.packed {
            let b = row[s / 2];
            (if s.is_multiple_of(2) {
                b & 0x0F
            } else {
                b >> 4
            }) as usize
        } else {
            row[s] as usize
        }
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// The flat centroid table (serialisation).
    pub fn centroids(&self) -> &[f32] {
        &self.centroids
    }

    /// The centroid table of subspace `s` (`ksub` rows of `dsub_s`).
    fn sub_centroids(&self, s: usize) -> &[f32] {
        let dsub = self.offsets[s + 1] - self.offsets[s];
        let at = self.ksub * self.offsets[s];
        &self.centroids[at..at + self.ksub * dsub]
    }

    /// Encodes one `d`-vector, appending one stored code row
    /// ([`PqCodebook::code_stride`] bytes) to `out` — nibble-packed when
    /// the codebook is packed, one byte per subspace otherwise. The
    /// trailing nibble of an odd packed `m` is always zero.
    pub fn encode_into(&self, v: &[f32], out: &mut Vec<u8>) {
        debug_assert_eq!(v.len(), self.d);
        let start = out.len();
        if self.packed {
            out.resize(start + self.code_stride(), 0);
        }
        for s in 0..self.m {
            let sub = &v[self.offsets[s]..self.offsets[s + 1]];
            let dsub = sub.len();
            let c = argmin_row(Metric::L2, sub, self.sub_centroids(s), dsub) as u8;
            if self.packed {
                // ksub ≤ 16, so `c` always fits in the nibble.
                out[start + s / 2] |= if s % 2 == 0 { c } else { c << 4 };
            } else {
                out.push(c);
            }
        }
    }

    /// Encodes a whole `(n, d)` table (fanned across the shared pool) and
    /// records the max per-row L1 reconstruction error into the bound
    /// returned by [`PqCodebook::l1_error_bound`] — every sealed row is
    /// an encoded row, so the bound covers exactly what the index stores.
    pub fn encode_table(&mut self, data: &[f32]) -> Vec<u8> {
        assert!(data.len().is_multiple_of(self.d), "table must be (n, d)");
        let n = data.len() / self.d;
        let stride = self.code_stride();
        let mut codes = vec![0u8; n * stride];
        let per = pool::rows_per_lane(n);
        let this = &*self;
        pool::par_chunks_mut(&mut codes, per * stride, |c, chunk| {
            let start = c * per;
            let mut scratch = Vec::with_capacity(stride);
            for (i, crow) in chunk.chunks_exact_mut(stride).enumerate() {
                scratch.clear();
                this.encode_into(
                    &data[(start + i) * this.d..(start + i + 1) * this.d],
                    &mut scratch,
                );
                crow.copy_from_slice(&scratch);
            }
        });
        let mut worst = 0.0f32;
        let mut decoded = vec![0.0f32; self.d];
        for (row, crow) in data.chunks_exact(self.d).zip(codes.chunks_exact(stride)) {
            self.decode_into(crow, &mut decoded);
            worst = worst.max(l1_f32(row, &decoded));
        }
        self.l1_bound = worst;
        codes
    }

    /// Decodes one stored code row ([`PqCodebook::code_stride`] bytes)
    /// into `out[..d]` (centroid gather).
    pub fn decode_into(&self, codes: &[u8], out: &mut [f32]) {
        debug_assert_eq!(codes.len(), self.code_stride());
        debug_assert_eq!(out.len(), self.d);
        for s in 0..self.m {
            let c = self.code_at(codes, s);
            let dsub = self.offsets[s + 1] - self.offsets[s];
            let cen = &self.sub_centroids(s)[c * dsub..(c + 1) * dsub];
            out[self.offsets[s]..self.offsets[s + 1]].copy_from_slice(cen);
        }
    }

    /// Fills `lut` with the `m × ksub` ADC table for `query`:
    /// `lut[s * ksub + c]` is the exact `metric` distance between the
    /// query's subvector `s` and centroid `c` of that subspace. Built
    /// once per query, reused for every scanned row.
    pub fn build_lut_into(&self, metric: Metric, query: &[f32], lut: &mut Vec<f32>) {
        debug_assert_eq!(query.len(), self.d);
        lut.clear();
        lut.reserve(self.m * self.ksub);
        for s in 0..self.m {
            let qs = &query[self.offsets[s]..self.offsets[s + 1]];
            let dsub = qs.len();
            for cen in self.sub_centroids(s).chunks_exact(dsub) {
                lut.push(match metric {
                    Metric::L1 => l1_f32(qs, cen),
                    Metric::L2 => l2_f32(qs, cen),
                });
            }
        }
    }

    /// ADC distance of one code row under a LUT from
    /// [`PqCodebook::build_lut_into`] — identical to the metric distance
    /// between the query and the *decoded* row. (For squared L2 this holds
    /// because subspaces partition the dimensions, so per-subspace squared
    /// distances sum exactly.)
    #[inline]
    pub fn lut_distance(&self, lut: &[f32], codes: &[u8]) -> f64 {
        debug_assert_eq!(lut.len(), self.m * self.ksub);
        debug_assert_eq!(codes.len(), self.code_stride());
        if self.packed {
            adc_sum_packed(lut, codes, self.m, self.ksub) as f64
        } else {
            adc_sum(lut, codes, self.ksub) as f64
        }
    }

    /// Worst-case L1 distance error of any row encoded by the last
    /// [`PqCodebook::encode_table`] (by the triangle inequality, the ADC
    /// distance of a row deviates from its exact distance by at most the
    /// row's L1 reconstruction error).
    pub fn l1_error_bound(&self) -> f64 {
        self.l1_bound as f64
    }

    /// The serialised bound field (exact f32, for bit-exact round trips).
    pub fn l1_bound_raw(&self) -> f32 {
        self.l1_bound
    }

    /// Approximate resident bytes of the codebook itself.
    pub fn memory_bytes(&self) -> usize {
        self.centroids.len() * 4 + self.offsets.len() * 8
    }
}

/// Plain Lloyd k-means over `(n, dsub)` subvectors into `out`
/// (`ksub * dsub`, pre-zeroed): distinct-random-row init, pooled
/// assignment through [`argmin_row`], f64 mean accumulation; empty
/// clusters keep their previous centroid.
fn kmeans_subspace(sub: &[f32], dsub: usize, ksub: usize, out: &mut [f32], rng: &mut impl Rng) {
    let n = sub.len() / dsub;
    debug_assert!(ksub <= n);
    let mut ids: Vec<usize> = (0..n).collect();
    ids.shuffle(rng);
    for (c, &i) in ids.iter().take(ksub).enumerate() {
        out[c * dsub..(c + 1) * dsub].copy_from_slice(&sub[i * dsub..(i + 1) * dsub]);
    }
    let mut assign = vec![0u32; n];
    for _ in 0..PQ_KMEANS_ITERS {
        let per = pool::rows_per_lane(n);
        let centroids_ref = &*out;
        pool::par_chunks_mut(&mut assign, per, |c, chunk| {
            let start = c * per;
            for (i, slot) in chunk.iter_mut().enumerate() {
                let row = &sub[(start + i) * dsub..(start + i + 1) * dsub];
                *slot = argmin_row(Metric::L2, row, centroids_ref, dsub) as u32;
            }
        });
        let mut sums = vec![0.0f64; ksub * dsub];
        let mut counts = vec![0usize; ksub];
        for (i, &c) in assign.iter().enumerate() {
            counts[c as usize] += 1;
            for j in 0..dsub {
                sums[c as usize * dsub + j] += sub[i * dsub + j] as f64;
            }
        }
        for c in 0..ksub {
            if counts[c] > 0 {
                for j in 0..dsub {
                    out[c * dsub + j] = (sums[c * dsub + j] / counts[c] as f64) as f32;
                }
            }
        }
    }
}

/// Scans PQ code rows by gather list, offering ADC distances to `topk`
/// (the PQ inverted-list scan; `codes` is the full `(n, m)` code table,
/// `lut` the current query's `m × ksub` ADC table).
#[inline]
pub fn pq_scan_ids(lut: &[f32], codes: &[u8], m: usize, ksub: usize, ids: &[u32], topk: &mut TopK) {
    scan_ids_by(ids, topk, |id| {
        adc_sum(lut, &codes[id as usize * m..(id as usize + 1) * m], ksub) as f64
    });
}

/// Scans nibble-packed PQ code rows by gather list (the `nbits ≤ 4`
/// inverted-list scan): `codes` is the full `(n, stride)` packed table
/// with `stride = ceil(m / 2)`, `lut` the current query's `m × ksub`
/// ADC table — at `ksub ≤ 16` each subspace's LUT slice fits in one or
/// two cache lines, so the whole table stays L1-resident.
#[inline]
pub fn pq_packed_scan_ids(
    lut: &[f32],
    codes: &[u8],
    stride: usize,
    m: usize,
    ksub: usize,
    ids: &[u32],
    topk: &mut TopK,
) {
    scan_ids_by(ids, topk, |id| {
        adc_sum_packed(
            lut,
            &codes[id as usize * stride..(id as usize + 1) * stride],
            m,
            ksub,
        ) as f64
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn randv(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-3.0f32..3.0)).collect()
    }

    #[test]
    fn f32_kernels_match_scalar_reference() {
        for d in [1usize, 7, 8, 9, 31, 64, 130] {
            let a = randv(d, d as u64);
            let b = randv(d, d as u64 + 99);
            let l1_ref: f32 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
            let l2_ref: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
            assert!((l1_f32(&a, &b) - l1_ref).abs() < 1e-4, "L1 d={d}");
            assert!((l2_f32(&a, &b) - l2_ref).abs() < 1e-3, "L2 d={d}");
        }
    }

    #[test]
    fn topk_selects_k_smallest_with_deterministic_ties() {
        let mut topk = TopK::new(3);
        for (id, d) in [
            (5u32, 2.0f64),
            (1, 1.0),
            (7, 1.0),
            (2, 3.0),
            (9, 0.5),
            (4, 2.0),
        ] {
            topk.offer(id, d);
        }
        assert_eq!(topk.into_sorted(), vec![(9, 0.5), (1, 1.0), (7, 1.0)]);
        // k larger than the candidate count keeps everything.
        let mut topk = TopK::new(10);
        topk.offer(3, 1.5);
        topk.offer(1, 0.5);
        assert_eq!(topk.into_sorted(), vec![(1, 0.5), (3, 1.5)]);
        // k = 0 retains nothing.
        let mut topk = TopK::new(0);
        topk.offer(1, 0.0);
        assert!(topk.is_empty());
    }

    #[test]
    fn topk_matches_full_sort_on_random_input() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let n = rng.gen_range(1usize..200);
            let k = rng.gen_range(1usize..20);
            let cands: Vec<(u32, f64)> = (0..n)
                .map(|i| (i as u32, rng.gen_range(0.0..10.0f64)))
                .collect();
            let mut topk = TopK::new(k);
            for &(id, d) in &cands {
                topk.offer(id, d);
            }
            let mut want = cands.clone();
            want.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            want.truncate(k);
            assert_eq!(topk.into_sorted(), want);
        }
    }

    #[test]
    fn topk_bound_tracks_kth_best() {
        let mut topk = TopK::new(2);
        assert_eq!(topk.bound(), f64::INFINITY);
        topk.offer(0, 5.0);
        assert_eq!(topk.bound(), f64::INFINITY);
        topk.offer(1, 3.0);
        assert_eq!(topk.bound(), 5.0);
        topk.offer(2, 1.0);
        assert_eq!(topk.bound(), 3.0);
    }

    #[test]
    fn sq8_round_trip_error_is_bounded() {
        let d = 24;
        let data = randv(96 * d, 5);
        let cb = Sq8Codebook::train(&data, d);
        let mut codes = Vec::new();
        let mut decoded = vec![0.0f32; d];
        for row in data.chunks_exact(d) {
            codes.clear();
            cb.encode_into(row, &mut codes);
            cb.decode_into(&codes, &mut decoded);
            for (j, (&v, &w)) in row.iter().zip(&decoded).enumerate() {
                assert!(
                    (v - w).abs() <= cb.step_error(j) + 1e-6,
                    "dim {j}: {v} vs {w}"
                );
            }
        }
    }

    #[test]
    fn sq8_handles_constant_dimensions() {
        // One constant dimension must decode exactly and never divide by 0.
        let d = 3;
        let data = vec![1.0f32, 7.5, -2.0, 3.0, 7.5, 2.0];
        let cb = Sq8Codebook::train(&data, d);
        let mut codes = Vec::new();
        cb.encode_into(&data[..d], &mut codes);
        let mut decoded = vec![0.0f32; d];
        cb.decode_into(&codes, &mut decoded);
        assert_eq!(decoded[1], 7.5);
    }

    #[test]
    fn pq_round_trip_error_is_bounded_by_trained_bound() {
        let d = 24;
        let data = randv(300 * d, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let mut cb = PqCodebook::train(&data, d, 3, 8, &mut rng);
        let codes = cb.encode_table(&data);
        assert_eq!(codes.len(), 300 * 3, "3 bytes per row");
        let bound = cb.l1_error_bound();
        assert!(bound > 0.0, "real data cannot encode losslessly");
        let mut decoded = vec![0.0f32; d];
        for (row, crow) in data.chunks_exact(d).zip(codes.chunks_exact(3)) {
            cb.decode_into(crow, &mut decoded);
            assert!(l1_f32(row, &decoded) as f64 <= bound + 1e-5);
        }
    }

    #[test]
    fn pq_lut_distance_equals_decoded_distance() {
        // ADC must be *exactly* the metric distance to the decoded row
        // (up to f32 association noise) — for both metrics, including an
        // uneven subspace split (d = 10, m = 3 → widths 4, 3, 3).
        let d = 10;
        let data = randv(120 * d, 21);
        let mut rng = StdRng::seed_from_u64(22);
        let mut cb = PqCodebook::train(&data, d, 3, 8, &mut rng);
        let codes = cb.encode_table(&data);
        let q = randv(d, 777);
        let mut lut = Vec::new();
        let mut decoded = vec![0.0f32; d];
        for metric in [Metric::L1, Metric::L2] {
            cb.build_lut_into(metric, &q, &mut lut);
            for crow in codes.chunks_exact(3).take(40) {
                cb.decode_into(crow, &mut decoded);
                let want = dist(metric, &q, &decoded);
                let got = cb.lut_distance(&lut, crow);
                assert!((want - got).abs() < 1e-4, "{metric:?}: {want} vs {got}");
            }
        }
    }

    #[test]
    fn pq_scan_matches_lut_distance_and_parameters_clamp() {
        let d = 8;
        let n = 64;
        let data = randv(n * d, 31);
        let mut rng = StdRng::seed_from_u64(32);
        // m and nbits out of range clamp rather than panic.
        let mut cb = PqCodebook::train(&data, d, 99, 12, &mut rng);
        assert_eq!(cb.m(), d);
        assert_eq!(cb.nbits(), 8);
        assert_eq!(cb.ksub(), n, "ksub clamps to the table size");
        let codes = cb.encode_table(&data);
        // With ksub == n and distinct rows, encoding is (near-)lossless.
        assert!(cb.l1_error_bound() < 1e-4);
        let q = randv(d, 33);
        let mut lut = Vec::new();
        cb.build_lut_into(Metric::L1, &q, &mut lut);
        let ids: Vec<u32> = (0..n as u32).collect();
        let mut topk = TopK::new(5);
        pq_scan_ids(&lut, &codes, cb.m(), cb.ksub(), &ids, &mut topk);
        let got = topk.into_sorted();
        let mut want: Vec<(u32, f64)> = (0..n)
            .map(|i| {
                (
                    i as u32,
                    cb.lut_distance(&lut, &codes[i * cb.m()..(i + 1) * cb.m()]),
                )
            })
            .collect();
        want.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        want.truncate(5);
        assert_eq!(got, want);
    }

    #[test]
    fn pq4_pack_roundtrip_is_bit_exact_with_odd_m() {
        // Packed rows must hold exactly the codes an unpacked twin
        // produces — low nibble = even subspace — and the trailing
        // nibble of an odd m must stay zero.
        let d = 10;
        let n = 80;
        let data = randv(n * d, 41);
        let mut rng = StdRng::seed_from_u64(42);
        let mut cb = PqCodebook::train(&data, d, 3, 4, &mut rng);
        assert!(cb.packed());
        assert_eq!(cb.code_stride(), 2, "ceil(3 / 2) bytes per row");
        let codes = cb.encode_table(&data);
        assert_eq!(codes.len(), n * 2);
        // Unpacked twin over the same centroids.
        let twin = PqCodebook::from_parts(
            d,
            cb.m(),
            cb.nbits(),
            cb.ksub(),
            cb.centroids().to_vec(),
            cb.l1_bound_raw(),
            false,
        )
        .expect("twin parts are consistent");
        let mut want = Vec::new();
        for (row, crow) in data.chunks_exact(d).zip(codes.chunks_exact(2)) {
            want.clear();
            twin.encode_into(row, &mut want);
            for (s, &w) in want.iter().enumerate().take(cb.m()) {
                assert_eq!(cb.code_at(crow, s), w as usize);
            }
            assert_eq!(crow[1] >> 4, 0, "trailing nibble of odd m is zero");
        }
        // Packed decode gathers the same centroids as the twin's.
        let mut dec = vec![0.0f32; d];
        let mut tdec = vec![0.0f32; d];
        let mut tcodes = Vec::new();
        for (row, crow) in data.chunks_exact(d).zip(codes.chunks_exact(2)) {
            cb.decode_into(crow, &mut dec);
            tcodes.clear();
            twin.encode_into(row, &mut tcodes);
            twin.decode_into(&tcodes, &mut tdec);
            assert_eq!(dec, tdec);
        }
    }

    #[test]
    fn pq4_packed_scan_matches_lut_distance() {
        let d = 12;
        let n = 96;
        let data = randv(n * d, 43);
        let mut rng = StdRng::seed_from_u64(44);
        let mut cb = PqCodebook::train(&data, d, 5, 4, &mut rng);
        let codes = cb.encode_table(&data);
        let stride = cb.code_stride();
        let q = randv(d, 45);
        let mut lut = Vec::new();
        let mut decoded = vec![0.0f32; d];
        for metric in [Metric::L1, Metric::L2] {
            cb.build_lut_into(metric, &q, &mut lut);
            let ids: Vec<u32> = (0..n as u32).collect();
            let mut topk = TopK::new(7);
            pq_packed_scan_ids(&lut, &codes, stride, cb.m(), cb.ksub(), &ids, &mut topk);
            let got = topk.into_sorted();
            let mut want: Vec<(u32, f64)> = (0..n)
                .map(|i| {
                    (
                        i as u32,
                        cb.lut_distance(&lut, &codes[i * stride..(i + 1) * stride]),
                    )
                })
                .collect();
            want.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            want.truncate(7);
            assert_eq!(got, want);
            // And the ADC value is the decoded-row distance.
            for (i, crow) in codes.chunks_exact(stride).take(20).enumerate() {
                cb.decode_into(crow, &mut decoded);
                let exact = dist(metric, &q, &decoded);
                let adc = cb.lut_distance(&lut, crow);
                assert!((exact - adc).abs() < 1e-4, "row {i}: {exact} vs {adc}");
            }
        }
    }

    #[test]
    fn uniform_codebook_has_one_scale_and_bounded_roundtrip() {
        let d = 16;
        let data = randv(200 * d, 51);
        let cb = Sq8Codebook::train_uniform(&data, d);
        let s = cb.uniform_scale().expect("trained uniform");
        assert!(s > 0.0);
        // Per-dim training on the same data is NOT uniform (distinct spans).
        assert_eq!(Sq8Codebook::train(&data, d).uniform_scale(), None);
        // The shared scale is the widest span, so every value still
        // round-trips within half a step.
        let mut codes = Vec::new();
        let mut dec = vec![0.0f32; d];
        for row in data.chunks_exact(d).take(50) {
            codes.clear();
            cb.encode_into(row, &mut codes);
            cb.decode_into(&codes, &mut dec);
            for (&v, &w) in row.iter().zip(&dec) {
                assert!((v - w).abs() <= s / 2.0 + 1e-6);
            }
        }
    }

    #[test]
    fn symmetric_distance_equals_decoded_distance() {
        // sym(q, row) must be *exactly* the metric distance between the
        // two decoded vectors: biases cancel, scale factors out.
        let d = 24;
        let n = 64;
        let data = randv(n * d, 53);
        let cb = Sq8Codebook::train_uniform(&data, d);
        let s = cb.uniform_scale().expect("uniform");
        let q = randv(d, 54);
        let mut qcodes = Vec::new();
        cb.encode_into(&q, &mut qcodes);
        let mut codes = Vec::new();
        for row in data.chunks_exact(d) {
            cb.encode_into(row, &mut codes);
        }
        let mut qdec = vec![0.0f32; d];
        let mut rdec = vec![0.0f32; d];
        cb.decode_into(&qcodes, &mut qdec);
        for metric in [Metric::L1, Metric::L2] {
            for i in 0..n {
                let crow = &codes[i * d..(i + 1) * d];
                cb.decode_into(crow, &mut rdec);
                let want = dist(metric, &qdec, &rdec);
                let got = sq8_sym_dist(metric, &qcodes, crow, s);
                let tol = want.abs().max(1.0) * 1e-5;
                assert!(
                    (want - got).abs() <= tol,
                    "{metric:?} row {i}: {want} vs {got}"
                );
            }
        }
    }

    #[test]
    fn symmetric_scan_matches_symmetric_distance() {
        let d = 16;
        let n = 128;
        let data = randv(n * d, 55);
        let cb = Sq8Codebook::train_uniform(&data, d);
        let s = cb.uniform_scale().expect("uniform");
        let q = randv(d, 56);
        let mut qcodes = Vec::new();
        cb.encode_into(&q, &mut qcodes);
        let mut codes = Vec::new();
        for row in data.chunks_exact(d) {
            cb.encode_into(row, &mut codes);
        }
        let ids: Vec<u32> = (0..n as u32).collect();
        for metric in [Metric::L1, Metric::L2] {
            let mut topk = TopK::new(9);
            sq8_sym_scan_ids(metric, &qcodes, &codes, d, s, &ids, &mut topk);
            let got = topk.into_sorted();
            let mut want: Vec<(u32, f64)> = (0..n)
                .map(|i| {
                    (
                        i as u32,
                        sq8_sym_dist(metric, &qcodes, &codes[i * d..(i + 1) * d], s),
                    )
                })
                .collect();
            want.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            want.truncate(9);
            assert_eq!(got, want);
        }
    }

    #[test]
    fn asymmetric_distance_close_to_exact() {
        let d = 32;
        let n = 64;
        let data = randv(n * d, 9);
        let cb = Sq8Codebook::train(&data, d);
        let mut codes = Vec::new();
        for row in data.chunks_exact(d) {
            cb.encode_into(row, &mut codes);
        }
        let q = randv(d, 1234);
        for i in 0..n {
            let row = &data[i * d..(i + 1) * d];
            let crow = &codes[i * d..(i + 1) * d];
            let exact = l1_f32(&q, row) as f64;
            let approx = sq8_dist(Metric::L1, &q, crow, &cb);
            assert!(
                (exact - approx).abs() <= cb.l1_error_bound() + 1e-5,
                "row {i}: exact {exact} vs sq8 {approx}"
            );
        }
    }
}
