//! Runtime CPU dispatch for the integer scan kernels.
//!
//! The symmetric SQ8 scan ([`crate::kernels::sq8_sym_scan_ids`]) works in
//! the byte domain: sum of absolute (or squared) differences between two
//! `u8` code rows, widened into integer accumulators. That shape maps
//! onto dedicated x86 instructions — `vpsadbw` sums 32 absolute byte
//! differences per instruction — so this module selects, **once per
//! process**, the widest implementation the running CPU supports:
//!
//! | level | selected when | SAD / SSD width |
//! |---|---|---|
//! | `Avx512` | `avx512bw` detected | 64 bytes per iteration |
//! | `Avx2` | `avx2` detected | 32 bytes per iteration |
//! | `Scalar` | fallback / forced | portable Rust, auto-vectorized |
//!
//! Detection uses [`std::arch::is_x86_feature_detected!`]; on non-x86_64
//! targets only the scalar path exists. Setting the environment variable
//! `TRAJCL_FORCE_SCALAR` (to anything but `0` or the empty string) pins
//! the scalar path regardless of CPU features — CI runs the test suite
//! once natively and once forced, so both sides of every dispatch stay
//! exercised.
//!
//! Every implementation returns **bit-identical integer results**: the
//! sums are exact (no floating-point reassociation), so a search executed
//! under any dispatch level produces the same candidates in the same
//! order. The scalar-vs-SIMD equivalence tests in this module assert
//! exactly that.
//!
//! Accumulator ranges: per element the L1 difference is ≤ 255 and the
//! squared difference ≤ 65 025, so a `u64` accumulator is exact for any
//! practical dimensionality; the AVX2/AVX-512 SSD paths accumulate
//! 16-bit `madd` products in 32-bit lanes, which stays exact below
//! `d ≈ 2^24` — far above any embedding width this crate handles
//! (debug-asserted at the entry points).

use std::sync::OnceLock;

/// Which kernel implementation the process dispatched to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchLevel {
    /// Portable Rust (also the `TRAJCL_FORCE_SCALAR` path).
    Scalar,
    /// 256-bit `std::arch` intrinsics (`vpsadbw` / `vpmaddwd`).
    Avx2,
    /// 512-bit `std::arch` intrinsics (requires `avx512bw`).
    Avx512,
}

/// Sum-of-absolute-differences / sum-of-squared-differences function
/// over two equal-length byte slices.
pub type ByteDistFn = fn(&[u8], &[u8]) -> u64;

/// `TRAJCL_FORCE_SCALAR` is honoured when set to anything but `"0"` or
/// the empty string.
fn env_force_scalar() -> bool {
    std::env::var_os("TRAJCL_FORCE_SCALAR")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

/// The dispatch decision for a given override state: widest detected
/// feature set unless the scalar path is forced. Factored out of the
/// cached [`level`] so tests can probe both outcomes in one process.
pub fn select(force_scalar: bool) -> DispatchLevel {
    if force_scalar {
        return DispatchLevel::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512bw") {
            return DispatchLevel::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return DispatchLevel::Avx2;
        }
    }
    DispatchLevel::Scalar
}

/// The process-wide dispatch level (feature detection + the
/// `TRAJCL_FORCE_SCALAR` override, evaluated once and cached).
pub fn level() -> DispatchLevel {
    static LEVEL: OnceLock<DispatchLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| select(env_force_scalar()))
}

/// True when `TRAJCL_FORCE_SCALAR` pinned the scalar path (recorded in
/// bench reports so rows are comparable across boxes).
pub fn forced_scalar() -> bool {
    level() == DispatchLevel::Scalar && env_force_scalar()
}

/// Human-readable dispatch description for logs and bench JSON:
/// `"avx512"`, `"avx2"`, `"scalar"` or `"scalar(forced)"`.
pub fn description() -> &'static str {
    match (level(), forced_scalar()) {
        (_, true) => "scalar(forced)",
        (DispatchLevel::Avx512, _) => "avx512",
        (DispatchLevel::Avx2, _) => "avx2",
        (DispatchLevel::Scalar, _) => "scalar",
    }
}

/// The sum-of-absolute-differences kernel for the current dispatch level.
/// Resolve once per scan, not per row.
#[inline]
pub fn sad_fn() -> ByteDistFn {
    match level() {
        DispatchLevel::Scalar => sad_scalar,
        #[cfg(target_arch = "x86_64")]
        DispatchLevel::Avx2 => x86::sad_avx2_entry,
        #[cfg(target_arch = "x86_64")]
        DispatchLevel::Avx512 => x86::sad_avx512_entry,
        #[cfg(not(target_arch = "x86_64"))]
        _ => sad_scalar,
    }
}

/// The sum-of-squared-differences kernel for the current dispatch level.
/// Resolve once per scan, not per row.
#[inline]
pub fn ssd_fn() -> ByteDistFn {
    match level() {
        DispatchLevel::Scalar => ssd_scalar,
        #[cfg(target_arch = "x86_64")]
        DispatchLevel::Avx2 => x86::ssd_avx2_entry,
        #[cfg(target_arch = "x86_64")]
        DispatchLevel::Avx512 => x86::ssd_avx512_entry,
        #[cfg(not(target_arch = "x86_64"))]
        _ => ssd_scalar,
    }
}

/// Portable SAD: `Σ |a_i − b_i|` over bytes, exact in `u64`. The
/// reference implementation every SIMD path must match bit-for-bit.
pub fn sad_scalar(a: &[u8], b: &[u8]) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| u64::from(x.abs_diff(y)))
        .sum()
}

/// Portable SSD: `Σ (a_i − b_i)²` over bytes, exact in `u64`.
pub fn ssd_scalar(a: &[u8], b: &[u8]) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = u64::from(x.abs_diff(y));
            d * d
        })
        .sum()
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! `std::arch` implementations. Structure of every kernel: process
    //! full-width chunks with unaligned loads, fold the vector
    //! accumulator horizontally, finish the tail with the scalar
    //! reference. All arithmetic is integer, so results are bit-identical
    //! to the scalar kernels.

    use std::arch::x86_64::*;

    use super::{sad_scalar, ssd_scalar};

    /// Plain-`fn` entry for the dispatch table (a `#[target_feature]`
    /// function cannot coerce to a function pointer).
    pub fn sad_avx2_entry(a: &[u8], b: &[u8]) -> u64 {
        // SAFETY: this entry is only installed by `sad_fn` after
        // `is_x86_feature_detected!("avx2")` returned true in `select`.
        unsafe { sad_avx2(a, b) }
    }

    /// See [`sad_avx2_entry`].
    pub fn ssd_avx2_entry(a: &[u8], b: &[u8]) -> u64 {
        // SAFETY: installed by `ssd_fn` only after AVX2 was detected.
        unsafe { ssd_avx2(a, b) }
    }

    /// See [`sad_avx2_entry`].
    pub fn sad_avx512_entry(a: &[u8], b: &[u8]) -> u64 {
        // SAFETY: installed by `sad_fn` only after `avx512bw` (which
        // implies `avx512f`) was detected.
        unsafe { sad_avx512(a, b) }
    }

    /// See [`sad_avx2_entry`].
    pub fn ssd_avx512_entry(a: &[u8], b: &[u8]) -> u64 {
        // SAFETY: installed by `ssd_fn` only after `avx512bw` was
        // detected.
        unsafe { ssd_avx512(a, b) }
    }

    /// AVX2 SAD: one `vpsadbw` per 32-byte chunk yields four u64 partial
    /// sums, accumulated with `vpaddq` — exact, no overflow possible
    /// (each partial grows by ≤ 8·255 per chunk).
    #[target_feature(enable = "avx2")]
    fn sad_avx2(a: &[u8], b: &[u8]) -> u64 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = _mm256_setzero_si256();
        let mut ca = a.chunks_exact(32);
        let mut cb = b.chunks_exact(32);
        for (xa, xb) in (&mut ca).zip(&mut cb) {
            // SAFETY: `xa`/`xb` are exactly 32 bytes (`chunks_exact`),
            // and `loadu` has no alignment requirement.
            let (va, vb) = unsafe {
                (
                    _mm256_loadu_si256(xa.as_ptr() as *const __m256i),
                    _mm256_loadu_si256(xb.as_ptr() as *const __m256i),
                )
            };
            acc = _mm256_add_epi64(acc, _mm256_sad_epu8(va, vb));
        }
        hsum_epi64_avx2(acc) + sad_scalar(ca.remainder(), cb.remainder())
    }

    /// AVX2 SSD: absolute byte differences (the unsigned-saturating
    /// subtraction trick), widened to 16 bits, squared-and-paired with
    /// `vpmaddwd` into 32-bit lanes, then widened to u64 per chunk so
    /// the running sum can never wrap.
    #[target_feature(enable = "avx2")]
    fn ssd_avx2(a: &[u8], b: &[u8]) -> u64 {
        debug_assert_eq!(a.len(), b.len());
        let zero = _mm256_setzero_si256();
        let mut acc = zero;
        let mut ca = a.chunks_exact(32);
        let mut cb = b.chunks_exact(32);
        for (xa, xb) in (&mut ca).zip(&mut cb) {
            // SAFETY: `xa`/`xb` are exactly 32 bytes (`chunks_exact`),
            // and `loadu` has no alignment requirement.
            let (va, vb) = unsafe {
                (
                    _mm256_loadu_si256(xa.as_ptr() as *const __m256i),
                    _mm256_loadu_si256(xb.as_ptr() as *const __m256i),
                )
            };
            // |a - b| per byte: max(a -sat- b, b -sat- a).
            let ad = _mm256_or_si256(_mm256_subs_epu8(va, vb), _mm256_subs_epu8(vb, va));
            // Widen to u16 (interleave with zero; lane order is
            // irrelevant for a sum), square-and-add pairs into i32.
            let lo = _mm256_unpacklo_epi8(ad, zero);
            let hi = _mm256_unpackhi_epi8(ad, zero);
            let sq = _mm256_add_epi32(_mm256_madd_epi16(lo, lo), _mm256_madd_epi16(hi, hi));
            // Widen the eight i32 partials to u64 before accumulating:
            // per chunk each partial is ≤ 4·255² < 2^19, far below i32
            // range, and the u64 accumulator never wraps.
            acc = _mm256_add_epi64(acc, _mm256_unpacklo_epi32(sq, zero));
            acc = _mm256_add_epi64(acc, _mm256_unpackhi_epi32(sq, zero));
        }
        hsum_epi64_avx2(acc) + ssd_scalar(ca.remainder(), cb.remainder())
    }

    /// Horizontal sum of the four u64 lanes of an AVX2 accumulator.
    #[target_feature(enable = "avx2")]
    fn hsum_epi64_avx2(v: __m256i) -> u64 {
        let lo = _mm256_castsi256_si128(v);
        let hi = _mm256_extracti128_si256(v, 1);
        let s = _mm_add_epi64(lo, hi);
        let s = _mm_add_epi64(s, _mm_unpackhi_epi64(s, s));
        _mm_cvtsi128_si64(s) as u64
    }

    /// AVX-512 SAD: `vpsadbw` over 64-byte chunks (eight u64 partials
    /// per register), AVX2 tail via the 32-byte kernel logic folded into
    /// the scalar remainder for simplicity.
    #[target_feature(enable = "avx512bw")]
    fn sad_avx512(a: &[u8], b: &[u8]) -> u64 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = _mm512_setzero_si512();
        let mut ca = a.chunks_exact(64);
        let mut cb = b.chunks_exact(64);
        for (xa, xb) in (&mut ca).zip(&mut cb) {
            // SAFETY: `xa`/`xb` are exactly 64 bytes (`chunks_exact`),
            // and `loadu` has no alignment requirement.
            let (va, vb) = unsafe {
                (
                    _mm512_loadu_si512(xa.as_ptr() as *const __m512i),
                    _mm512_loadu_si512(xb.as_ptr() as *const __m512i),
                )
            };
            acc = _mm512_add_epi64(acc, _mm512_sad_epu8(va, vb));
        }
        _mm512_reduce_add_epi64(acc) as u64 + sad_scalar(ca.remainder(), cb.remainder())
    }

    /// AVX-512 SSD: same shape as the AVX2 kernel at 64-byte width.
    #[target_feature(enable = "avx512bw")]
    fn ssd_avx512(a: &[u8], b: &[u8]) -> u64 {
        debug_assert_eq!(a.len(), b.len());
        let zero = _mm512_setzero_si512();
        let mut acc = zero;
        let mut ca = a.chunks_exact(64);
        let mut cb = b.chunks_exact(64);
        for (xa, xb) in (&mut ca).zip(&mut cb) {
            // SAFETY: `xa`/`xb` are exactly 64 bytes (`chunks_exact`),
            // and `loadu` has no alignment requirement.
            let (va, vb) = unsafe {
                (
                    _mm512_loadu_si512(xa.as_ptr() as *const __m512i),
                    _mm512_loadu_si512(xb.as_ptr() as *const __m512i),
                )
            };
            let ad = _mm512_or_si512(_mm512_subs_epu8(va, vb), _mm512_subs_epu8(vb, va));
            let lo = _mm512_unpacklo_epi8(ad, zero);
            let hi = _mm512_unpackhi_epi8(ad, zero);
            let sq = _mm512_add_epi32(_mm512_madd_epi16(lo, lo), _mm512_madd_epi16(hi, hi));
            acc = _mm512_add_epi64(acc, _mm512_unpacklo_epi32(sq, zero));
            acc = _mm512_add_epi64(acc, _mm512_unpackhi_epi32(sq, zero));
        }
        _mm512_reduce_add_epi64(acc) as u64 + ssd_scalar(ca.remainder(), cb.remainder())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn randb(n: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0..=255u8)).collect()
    }

    #[test]
    fn scalar_kernels_match_naive_reference() {
        for n in [0usize, 1, 7, 31, 32, 33, 63, 64, 65, 200] {
            let a = randb(n, n as u64);
            let b = randb(n, n as u64 + 7);
            let sad: u64 = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| (i32::from(x) - i32::from(y)).unsigned_abs() as u64)
                .sum();
            let ssd: u64 = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| {
                    let d = (i32::from(x) - i32::from(y)) as i64;
                    (d * d) as u64
                })
                .sum();
            assert_eq!(sad_scalar(&a, &b), sad, "sad n={n}");
            assert_eq!(ssd_scalar(&a, &b), ssd, "ssd n={n}");
        }
    }

    #[test]
    fn dispatched_kernels_are_bit_identical_to_scalar() {
        // Whatever `level()` resolved to in this process (native SIMD on
        // the default CI leg, scalar on the TRAJCL_FORCE_SCALAR leg),
        // the dispatched function must agree with the reference exactly
        // — including odd lengths that exercise every tail path.
        let (sad, ssd) = (sad_fn(), ssd_fn());
        for n in [0usize, 1, 15, 31, 32, 33, 63, 64, 65, 100, 127, 129, 513] {
            let a = randb(n, 1000 + n as u64);
            let b = randb(n, 2000 + n as u64);
            assert_eq!(
                sad(&a, &b),
                sad_scalar(&a, &b),
                "sad n={n} ({})",
                description()
            );
            assert_eq!(
                ssd(&a, &b),
                ssd_scalar(&a, &b),
                "ssd n={n} ({})",
                description()
            );
        }
        // Saturation corners: all-0 vs all-255 rows.
        let a = vec![0u8; 97];
        let b = vec![255u8; 97];
        assert_eq!(sad(&a, &b), 97 * 255);
        assert_eq!(ssd(&a, &b), 97 * 255 * 255);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn simd_levels_match_scalar_when_available() {
        // Probe every implementation the CPU supports directly, so the
        // native CI leg covers AVX2 and AVX-512 even when `level()`
        // picked only the widest one.
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let n = rng.gen_range(0usize..300);
            let a = randb(n, rng.gen());
            let b = randb(n, rng.gen());
            // The entry wrappers are safe fns whose inner unsafe is
            // justified by feature detection — mirrored here.
            if std::arch::is_x86_feature_detected!("avx2") {
                assert_eq!(
                    x86::sad_avx2_entry(&a, &b),
                    sad_scalar(&a, &b),
                    "avx2 sad n={n}"
                );
                assert_eq!(
                    x86::ssd_avx2_entry(&a, &b),
                    ssd_scalar(&a, &b),
                    "avx2 ssd n={n}"
                );
            }
            if std::arch::is_x86_feature_detected!("avx512bw") {
                assert_eq!(
                    x86::sad_avx512_entry(&a, &b),
                    sad_scalar(&a, &b),
                    "avx512 sad n={n}"
                );
                assert_eq!(
                    x86::ssd_avx512_entry(&a, &b),
                    ssd_scalar(&a, &b),
                    "avx512 ssd n={n}"
                );
            }
        }
    }

    #[test]
    fn select_honours_force_scalar_for_both_outcomes() {
        // `select(true)` is the TRAJCL_FORCE_SCALAR outcome; the forced
        // path must be scalar on every box. `select(false)` is the
        // native outcome — on x86_64 with SIMD it differs, elsewhere it
        // is scalar too. Both are valid dispatch results by construction.
        assert_eq!(select(true), DispatchLevel::Scalar);
        let native = select(false);
        #[cfg(not(target_arch = "x86_64"))]
        assert_eq!(native, DispatchLevel::Scalar);
        #[cfg(target_arch = "x86_64")]
        let _ = native; // any level is legitimate, equivalence is tested above
        assert!(!description().is_empty());
    }
}
