//! # trajcl-index
//!
//! The two indexes of the paper's kNN experiments (§V-E):
//!
//! * [`IvfIndex`] — an inverted-file (Voronoi) vector index over learned
//!   embeddings, substituting Faiss \[52\];
//! * [`SegmentHausdorffIndex`] — a segment-based exact Hausdorff kNN index
//!   with lower-bound pruning, substituting DFT \[1\].
//!
//! Both expose `memory_bytes` so Table IX's build-cost comparison (and the
//! DFT memory blow-up) can be reproduced.
//!
//! For serving, [`MutableIndex`] wraps the IVF machinery in an upsert /
//! remove / compact lifecycle with immutable, atomically-swapped read
//! snapshots ([`IndexSnapshot`]). The [`wal`] module adds crash
//! durability on top: a per-shard write-ahead log with group-commit
//! fsync, snapshot checkpointing, and a deterministic crash-point fault
//! injector ([`CrashPointFs`]) behind the crash-recovery test matrix
//! (DESIGN.md §15).
//!
//! All hot paths run through [`kernels`]: blocked SIMD-friendly f32
//! distance kernels, a fused bounded top-k selector ([`TopK`]), the SQ8
//! scalar quantizer ([`Sq8Codebook`]) behind
//! [`Quantization::Sq8`]-configured indexes, and the product quantizer
//! ([`PqCodebook`], ADC lookup-table scans) behind [`Quantization::Pq`].
//! Integer scan kernels (symmetric SQ8 under [`ScanMode::Symmetric`])
//! pick AVX-512/AVX2/scalar implementations at runtime through
//! [`kernels::dispatch`]. DESIGN.md §10 documents the storage layouts
//! and the over-fetch / rescore recall math shared by both quantizers;
//! §12 covers the integer kernels and CPU dispatch.

#![warn(missing_docs)]

pub mod hausdorff_index;
pub mod ivf;
pub mod kernels;
pub mod mutable;
pub mod sharded;
pub mod wal;

pub use hausdorff_index::SegmentHausdorffIndex;
pub use ivf::{
    brute_force_batch_knn, brute_force_knn, IvfIndex, Metric, Quantization, ScanMode,
    SearchScratch, DEFAULT_PQ_M, DEFAULT_RESCORE_FACTOR,
};
pub use kernels::{PqCodebook, Sq8Codebook, TopK};
pub use mutable::{ExactRescorer, IndexOptions, IndexSnapshot, MutableIndex};
pub use sharded::{merge_partials, shard_for, ShardedIndex, ShardedSnapshot};
pub use wal::{
    atomic_write, CheckpointData, CheckpointEntry, CrashPointFs, Durability, RealFs, Wal, WalFs,
    WalOp, WalRecovery,
};
