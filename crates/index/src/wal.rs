//! Write-ahead logging and crash recovery for [`MutableIndex`] shards
//! (DESIGN.md §15).
//!
//! The log is a length-prefixed append-only stream of mutation records
//! (`upsert` / `remove` / `compact`), each carrying a CRC32 of its
//! payload. A write is acknowledged only after its record is durable
//! under the configured [`Durability`] policy: [`Durability::Fsync`]
//! group-commits — the first writer to reach the fsync boundary syncs on
//! behalf of every record appended so far, latecomers wait on a condvar —
//! so a burst of concurrent writes (the micro-batcher's natural cadence)
//! shares one `fsync` instead of paying one each.
//!
//! Recovery is *checkpoint + log tail*: [`Wal::open`] loads the last
//! checkpoint (a full snapshot of the shard's live vectors, written with
//! the temp-file / fsync / atomic-rename protocol of [`atomic_write`])
//! and replays every complete record of the log on top. A torn final
//! record — interrupted mid-append by a crash — fails its CRC or length
//! check, is dropped, and the log is truncated back to the last complete
//! record; it can never be misparsed as a different operation because the
//! length prefix, the exact tag-implied payload geometry and the checksum
//! all have to agree. [`Wal::checkpoint`] writes a fresh snapshot and
//! truncates the log; a crash between the rename and the truncate is
//! benign because replaying a full log over the checkpoint it produced is
//! idempotent (the log holds every op since the *previous* checkpoint,
//! and later upserts of an id simply overwrite earlier state).
//!
//! Every mutating filesystem operation goes through the [`WalFs`] seam.
//! [`RealFs`] passes straight through; [`CrashPointFs`] is the
//! deterministic fault injector behind the crash-point matrix test
//! (`crates/index/tests/crash_points.rs`, in the spirit of the serve
//! crate's `ChaosProxy`): it counts operations and "kills the process" —
//! fails the N-th operation and every one after it, optionally leaving a
//! half-written append behind — so a harness can restart, recover, and
//! assert that no acknowledged write was lost and no torn write was
//! half-applied, at *every* append/fsync/rename/truncate boundary.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::mutable::MutableIndex;

/// When a write is acknowledged relative to stable storage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Durability {
    /// No write-ahead log: mutations live in memory only (the seed
    /// behaviour — a crash loses everything since the last explicit
    /// snapshot save).
    #[default]
    Ephemeral,
    /// Mutations are appended to the log before acknowledgement but not
    /// fsync'd per write; an OS crash may lose the buffered tail, a
    /// process crash does not.
    Buffered,
    /// A write is acknowledged only after its log record is covered by a
    /// completed `fsync` (group-committed across concurrent writers).
    Fsync,
}

/// One logged mutation.
#[derive(Clone, Debug, PartialEq)]
pub enum WalOp {
    /// Insert or replace the vector for `id`.
    Upsert {
        /// External id.
        id: u64,
        /// Exact f32 vector (the WAL always stores exact values, even
        /// when the index's sealed storage is quantized).
        vector: Vec<f32>,
    },
    /// Delete `id`.
    Remove {
        /// External id.
        id: u64,
    },
    /// Fold the write buffer into a freshly sealed part.
    Compact,
}

/// Why a WAL byte stream (or checkpoint blob) failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalError {
    /// Fewer bytes available than the record header or length prefix
    /// promises — the torn-tail case recovery silently drops.
    Truncated,
    /// A length prefix that is impossible for any record (zero, or beyond
    /// [`MAX_RECORD_LEN`]).
    BadLength(u32),
    /// Payload bytes do not match their CRC32.
    BadChecksum,
    /// Unknown operation tag.
    BadTag(u8),
    /// Payload length disagrees with the geometry its tag implies, or a
    /// checkpoint header is inconsistent with the blob length.
    BadPayload(&'static str),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Truncated => write!(f, "truncated record"),
            WalError::BadLength(n) => write!(f, "impossible record length {n}"),
            WalError::BadChecksum => write!(f, "payload checksum mismatch"),
            WalError::BadTag(t) => write!(f, "unknown op tag {t}"),
            WalError::BadPayload(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for WalError {}

/// Upper bound on a record's payload length: caps the vector
/// dimensionality a log can smuggle in (a garbled length field must
/// never turn into a giant allocation).
pub const MAX_RECORD_LEN: u32 = 1 << 26;

const TAG_UPSERT: u8 = 1;
const TAG_REMOVE: u8 = 2;
const TAG_COMPACT: u8 = 3;

/// Checkpoint file magic ("TrajCl Wal checkpoint v1").
const CKPT_MAGIC: &[u8; 4] = b"TCW1";

// CRC32 (IEEE 802.3 polynomial, reflected), table built at compile time.
const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC32 (IEEE) of `bytes` — the per-record payload checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = (c >> 8) ^ CRC_TABLE[((c ^ b as u32) & 0xff) as usize];
    }
    !c
}

/// Encodes one record: `payload_len: u32 LE | crc32(payload): u32 LE |
/// payload`, where the payload is a tag byte followed by the op body
/// (`upsert`: id u64 LE, dim u32 LE, dim little-endian f32s; `remove`:
/// id u64 LE; `compact`: empty). The geometry is fully determined by the
/// tag, so the encoding is canonical: any byte string
/// [`decode_record`] accepts re-encodes to exactly itself.
pub fn encode_record(op: &WalOp) -> Vec<u8> {
    let mut payload = Vec::new();
    match op {
        WalOp::Upsert { id, vector } => {
            payload.push(TAG_UPSERT);
            payload.extend_from_slice(&id.to_le_bytes());
            payload.extend_from_slice(&(vector.len() as u32).to_le_bytes());
            for v in vector {
                payload.extend_from_slice(&v.to_le_bytes());
            }
        }
        WalOp::Remove { id } => {
            payload.push(TAG_REMOVE);
            payload.extend_from_slice(&id.to_le_bytes());
        }
        WalOp::Compact => payload.push(TAG_COMPACT),
    }
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Strictly decodes the record at the head of `bytes`, returning the op
/// and the number of bytes it occupied. Every failure mode is an error:
/// short input is [`WalError::Truncated`], an impossible length prefix is
/// [`WalError::BadLength`], a checksum mismatch is
/// [`WalError::BadChecksum`], and a payload whose length disagrees with
/// its tag's geometry is [`WalError::BadPayload`]. Never panics, never
/// allocates beyond [`MAX_RECORD_LEN`].
pub fn decode_record(bytes: &[u8]) -> Result<(WalOp, usize), WalError> {
    if bytes.len() < 8 {
        return Err(WalError::Truncated);
    }
    let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    if len == 0 || len > MAX_RECORD_LEN {
        return Err(WalError::BadLength(len));
    }
    let len = len as usize;
    let crc = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    let rest = &bytes[8..];
    if rest.len() < len {
        return Err(WalError::Truncated);
    }
    let payload = &rest[..len];
    if crc32(payload) != crc {
        return Err(WalError::BadChecksum);
    }
    let op = match payload[0] {
        TAG_UPSERT => {
            if payload.len() < 13 {
                return Err(WalError::BadPayload("upsert header"));
            }
            let id = u64::from_le_bytes([
                payload[1], payload[2], payload[3], payload[4], payload[5], payload[6], payload[7],
                payload[8],
            ]);
            let dim =
                u32::from_le_bytes([payload[9], payload[10], payload[11], payload[12]]) as usize;
            if payload.len() != 13 + dim * 4 {
                return Err(WalError::BadPayload("upsert vector length"));
            }
            let vector = payload[13..]
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            WalOp::Upsert { id, vector }
        }
        TAG_REMOVE => {
            if payload.len() != 9 {
                return Err(WalError::BadPayload("remove length"));
            }
            let id = u64::from_le_bytes([
                payload[1], payload[2], payload[3], payload[4], payload[5], payload[6], payload[7],
                payload[8],
            ]);
            WalOp::Remove { id }
        }
        TAG_COMPACT => {
            if payload.len() != 1 {
                return Err(WalError::BadPayload("compact length"));
            }
            WalOp::Compact
        }
        t => return Err(WalError::BadTag(t)),
    };
    Ok((op, 8 + len))
}

/// Replays a log byte stream: decodes records front to back, stopping at
/// the first byte position that does not hold a complete valid record.
/// Returns the decoded ops and the number of bytes they occupied
/// (`consumed`); `bytes[consumed..]` is the torn/garbage tail recovery
/// truncates away. Because acknowledgement implies a completed `fsync`
/// over the *whole file prefix*, a crash can only corrupt the un-synced
/// suffix — stopping at the first bad record never drops an acknowledged
/// write.
pub fn replay(bytes: &[u8]) -> (Vec<WalOp>, usize) {
    let mut ops = Vec::new();
    let mut consumed = 0;
    while consumed < bytes.len() {
        match decode_record(&bytes[consumed..]) {
            Ok((op, n)) => {
                ops.push(op);
                consumed += n;
            }
            Err(_) => break,
        }
    }
    (ops, consumed)
}

/// One live vector captured by a checkpoint.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckpointEntry {
    /// External id.
    pub id: u64,
    /// Whether the serving layer considered this id *dirty* (written over
    /// the wire after the engine's exact table was built) — preserved so
    /// recovery never re-enables exact-table rescoring for a row the
    /// table does not actually hold.
    pub dirty: bool,
    /// Exact f32 vector.
    pub vector: Vec<f32>,
}

/// Encodes a checkpoint blob: `"TCW1" | dim u32 LE | count u64 LE |
/// count × (id u64 LE, dirty u8, dim f32 LE) | crc32 of everything
/// before it`. Self-delimiting and strict: [`decode_checkpoint`] rejects
/// any length mismatch.
pub fn encode_checkpoint(dim: usize, entries: &[CheckpointEntry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + entries.len() * (9 + dim * 4) + 4);
    out.extend_from_slice(CKPT_MAGIC);
    out.extend_from_slice(&(dim as u32).to_le_bytes());
    out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for e in entries {
        debug_assert_eq!(e.vector.len(), dim, "checkpoint entry dimensionality");
        out.extend_from_slice(&e.id.to_le_bytes());
        out.push(u8::from(e.dirty));
        for v in &e.vector {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Strictly decodes a checkpoint blob: returns `(dim, entries)` or an
/// error — never panics, and validates the entry count against the blob
/// length *before* allocating.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<(usize, Vec<CheckpointEntry>), WalError> {
    if bytes.len() < 20 {
        return Err(WalError::Truncated);
    }
    if &bytes[..4] != CKPT_MAGIC {
        return Err(WalError::BadPayload("checkpoint magic"));
    }
    let dim = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if dim > MAX_RECORD_LEN / 4 {
        return Err(WalError::BadLength(dim));
    }
    let dim = dim as usize;
    let count = u64::from_le_bytes([
        bytes[8], bytes[9], bytes[10], bytes[11], bytes[12], bytes[13], bytes[14], bytes[15],
    ]);
    let entry_bytes = 9u64 + 4 * dim as u64;
    let Some(body) = count.checked_mul(entry_bytes) else {
        return Err(WalError::BadPayload("checkpoint count overflow"));
    };
    let Some(expected) = body.checked_add(20) else {
        return Err(WalError::BadPayload("checkpoint count overflow"));
    };
    if expected != bytes.len() as u64 {
        return Err(WalError::BadPayload("checkpoint length"));
    }
    let crc_at = bytes.len() - 4;
    let crc = u32::from_le_bytes([
        bytes[crc_at],
        bytes[crc_at + 1],
        bytes[crc_at + 2],
        bytes[crc_at + 3],
    ]);
    if crc32(&bytes[..crc_at]) != crc {
        return Err(WalError::BadChecksum);
    }
    let mut entries = Vec::with_capacity(count as usize);
    let mut at = 16;
    for _ in 0..count {
        let id = u64::from_le_bytes([
            bytes[at],
            bytes[at + 1],
            bytes[at + 2],
            bytes[at + 3],
            bytes[at + 4],
            bytes[at + 5],
            bytes[at + 6],
            bytes[at + 7],
        ]);
        let dirty = match bytes[at + 8] {
            0 => false,
            1 => true,
            _ => return Err(WalError::BadPayload("checkpoint dirty flag")),
        };
        at += 9;
        let vector = bytes[at..at + dim * 4]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        at += dim * 4;
        entries.push(CheckpointEntry { id, dirty, vector });
    }
    Ok((dim, entries))
}

/// The filesystem seam every durable mutation goes through. Production
/// code uses [`RealFs`]; the crash-point harness injects
/// [`CrashPointFs`]. Reads (log scan, checkpoint load) bypass the seam —
/// recovery is a pure function of the bytes on disk, and the seam exists
/// to place crashes at *mutation* boundaries.
pub trait WalFs: Send + Sync {
    /// Creates (or truncates) the file at `path` for writing.
    fn create(&self, path: &Path) -> io::Result<File>;
    /// Appends `bytes` to `file` in one write.
    fn append(&self, file: &mut File, bytes: &[u8]) -> io::Result<()>;
    /// Flushes `file`'s data and metadata to stable storage.
    fn fsync(&self, file: &File) -> io::Result<()>;
    /// Atomically renames `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Truncates `file` to `len` bytes.
    fn truncate(&self, file: &File, len: u64) -> io::Result<()>;
    /// Flushes the directory entry table at `dir` (makes a rename
    /// durable).
    fn fsync_dir(&self, dir: &Path) -> io::Result<()>;
}

/// The pass-through [`WalFs`]: real filesystem operations.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealFs;

impl WalFs for RealFs {
    fn create(&self, path: &Path) -> io::Result<File> {
        OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
    }

    fn append(&self, file: &mut File, bytes: &[u8]) -> io::Result<()> {
        file.write_all(bytes)
    }

    fn fsync(&self, file: &File) -> io::Result<()> {
        file.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn truncate(&self, file: &File, len: u64) -> io::Result<()> {
        file.set_len(len)
    }

    fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
        let dir = if dir.as_os_str().is_empty() {
            Path::new(".")
        } else {
            dir
        };
        File::open(dir)?.sync_all()
    }
}

/// Deterministic crash injector (the `ChaosProxy` of the durability
/// layer): counts [`WalFs`] operations and simulates a `SIGKILL` at a
/// chosen boundary — the `crash_after`-th operation fails, as does every
/// operation after it, exactly as a dead process would stop making
/// syscalls. With `partial_append` set, a crash landing on an append
/// first writes *half* the record — the torn-write case recovery must
/// drop, never half-apply.
///
/// One honest limitation of in-process simulation: bytes written before
/// the crash stay in the (real) file even when never fsync'd, so an
/// unacknowledged record may survive "the crash" whole. That matches the
/// WAL contract — an unacknowledged write may be durable (the record was
/// synced but the response got lost) or absent, it just may never be
/// *torn* — and the torn case is what `partial_append` exercises.
///
/// Deterministic under single-threaded use (the crash-point matrix
/// drives one scripted writer).
pub struct CrashPointFs {
    crash_after: u64,
    partial_append: bool,
    ops: AtomicU64,
    crashed: AtomicBool,
}

impl CrashPointFs {
    /// Crash at the `crash_after`-th (0-based) filesystem operation.
    pub fn new(crash_after: u64, partial_append: bool) -> Self {
        CrashPointFs {
            crash_after,
            partial_append,
            ops: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
        }
    }

    /// Counting-only mode: never crashes. Run the workload once under
    /// this to learn the total operation count, then sweep `crash_after`
    /// over `0..total`.
    pub fn unlimited() -> Self {
        Self::new(u64::MAX, false)
    }

    /// Filesystem operations attempted so far.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    /// Whether the simulated crash has fired.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    fn crash_err() -> io::Error {
        io::Error::other("simulated crash (CrashPointFs)")
    }

    /// Counts one operation; `Ok(true)` means this operation is the crash
    /// boundary, `Err` means the process is already dead.
    fn gate(&self) -> io::Result<bool> {
        if self.crashed.load(Ordering::SeqCst) {
            return Err(Self::crash_err());
        }
        let n = self.ops.fetch_add(1, Ordering::SeqCst);
        if n >= self.crash_after {
            self.crashed.store(true, Ordering::SeqCst);
            return Ok(true);
        }
        Ok(false)
    }
}

impl WalFs for CrashPointFs {
    fn create(&self, path: &Path) -> io::Result<File> {
        if self.gate()? {
            return Err(Self::crash_err());
        }
        RealFs.create(path)
    }

    fn append(&self, file: &mut File, bytes: &[u8]) -> io::Result<()> {
        if self.gate()? {
            if self.partial_append && bytes.len() > 1 {
                // Torn write: half the record reaches the file, then the
                // "process" dies.
                RealFs.append(file, &bytes[..bytes.len() / 2])?;
            }
            return Err(Self::crash_err());
        }
        RealFs.append(file, bytes)
    }

    fn fsync(&self, file: &File) -> io::Result<()> {
        if self.gate()? {
            return Err(Self::crash_err());
        }
        RealFs.fsync(file)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if self.gate()? {
            return Err(Self::crash_err());
        }
        RealFs.rename(from, to)
    }

    fn truncate(&self, file: &File, len: u64) -> io::Result<()> {
        if self.gate()? {
            return Err(Self::crash_err());
        }
        RealFs.truncate(file, len)
    }

    fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
        if self.gate()? {
            return Err(Self::crash_err());
        }
        RealFs.fsync_dir(dir)
    }
}

/// Writes `bytes` to `path` crash-safely: temp file (`path` + `.tmp`),
/// fsync, atomic rename over the target, directory fsync. A crash at any
/// boundary leaves either the old file intact or the new file complete —
/// never a torn target. (This is also how `Engine::save` persists TCE1
/// snapshots.)
pub fn atomic_write(fs: &dyn WalFs, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let mut file = fs.create(&tmp)?;
    fs.append(&mut file, bytes)?;
    fs.fsync(&file)?;
    drop(file);
    fs.rename(&tmp, path)?;
    fs.fsync_dir(path.parent().unwrap_or_else(|| Path::new(".")))?;
    Ok(())
}

/// What [`Wal::open`] reconstructed from disk. Apply the checkpoint
/// first (it is the complete live state at its cut), then replay `ops`
/// in order.
pub struct WalRecovery {
    /// The last checkpoint, if one was ever written.
    pub checkpoint: Option<CheckpointData>,
    /// Complete log records after the checkpoint, in append order.
    pub ops: Vec<WalOp>,
    /// Torn/garbage tail bytes dropped (and truncated) from the log.
    pub truncated_tail_bytes: u64,
}

/// A decoded checkpoint: the shard's full live state at the cut.
pub struct CheckpointData {
    /// Vector dimensionality the checkpoint was written with.
    pub dim: usize,
    /// Every live vector (with its serving-layer dirty bit).
    pub entries: Vec<CheckpointEntry>,
}

/// Writer-side log state, serialised under one mutex.
struct WalState {
    file: File,
    /// Records appended (not necessarily synced).
    appended: u64,
    /// Records covered by a completed fsync.
    synced: u64,
    /// A group-commit leader is currently inside fsync.
    syncing: bool,
    /// Current log length in bytes (drives checkpoint scheduling).
    log_bytes: u64,
}

/// One shard's write-ahead log: `{dir}/{name}.log` plus the checkpoint
/// `{dir}/{name}.ckpt`. All methods take `&self`; appends from any
/// number of threads serialise internally and group-commit their fsyncs.
///
/// **Checkpoint concurrency:** [`Wal::checkpoint`] must not race an
/// in-flight [`Wal::append_durable`] whose effect is missing from the
/// entries being checkpointed — the caller is responsible for quiescing
/// writes first (the serve router holds a per-shard write gate across
/// append+apply and takes it exclusively to checkpoint).
pub struct Wal {
    fs: Arc<dyn WalFs>,
    dir: PathBuf,
    log_path: PathBuf,
    ckpt_path: PathBuf,
    ckpt_tmp_path: PathBuf,
    sync_on_append: bool,
    state: Mutex<WalState>,
    synced: Condvar,
}

impl fmt::Debug for Wal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Wal")
            .field("log", &self.log_path)
            .field("sync_on_append", &self.sync_on_append)
            .finish()
    }
}

impl Wal {
    /// Opens (creating if absent) the log named `name` under `dir` and
    /// recovers its durable state: loads the last checkpoint, replays
    /// every complete log record, truncates any torn tail. `durability`
    /// controls [`Wal::append_durable`]'s acknowledgement point
    /// ([`Durability::Ephemeral`] is treated as [`Durability::Buffered`]
    /// — callers who want no log simply don't open one).
    ///
    /// A leftover `.ckpt.tmp` (crash mid-checkpoint-write, before the
    /// rename) is deleted: it is never data-bearing, because the log is
    /// only truncated *after* a checkpoint rename lands.
    pub fn open(
        dir: &Path,
        name: &str,
        durability: Durability,
        fs: Arc<dyn WalFs>,
    ) -> io::Result<(Wal, WalRecovery)> {
        std::fs::create_dir_all(dir)?;
        let log_path = dir.join(format!("{name}.log"));
        let ckpt_path = dir.join(format!("{name}.ckpt"));
        let ckpt_tmp_path = dir.join(format!("{name}.ckpt.tmp"));
        if ckpt_tmp_path.exists() {
            std::fs::remove_file(&ckpt_tmp_path)?;
        }
        let checkpoint = if ckpt_path.exists() {
            let bytes = std::fs::read(&ckpt_path)?;
            let (dim, entries) = decode_checkpoint(&bytes).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("corrupt checkpoint {}: {e}", ckpt_path.display()),
                )
            })?;
            Some(CheckpointData { dim, entries })
        } else {
            None
        };
        let log_bytes_on_disk = if log_path.exists() {
            std::fs::read(&log_path)?
        } else {
            Vec::new()
        };
        let (ops, consumed) = replay(&log_bytes_on_disk);
        let truncated_tail_bytes = (log_bytes_on_disk.len() - consumed) as u64;
        let file = OpenOptions::new()
            .append(true)
            .create(true)
            .open(&log_path)?;
        if truncated_tail_bytes > 0 {
            // Drop the torn tail so new appends continue from the last
            // complete record instead of burying it under garbage.
            fs.truncate(&file, consumed as u64)?;
            fs.fsync(&file)?;
        }
        let wal = Wal {
            fs,
            dir: dir.to_path_buf(),
            log_path,
            ckpt_path,
            ckpt_tmp_path,
            sync_on_append: durability == Durability::Fsync,
            state: Mutex::new(WalState {
                file,
                appended: 0,
                synced: 0,
                syncing: false,
                log_bytes: consumed as u64,
            }),
            synced: Condvar::new(),
        };
        Ok((
            wal,
            WalRecovery {
                checkpoint,
                ops,
                truncated_tail_bytes,
            },
        ))
    }

    /// Appends `op` and returns once it is durable under the configured
    /// policy. Under [`Durability::Fsync`] this group-commits: the record
    /// is appended under the state lock, then the caller either becomes
    /// the fsync leader (syncing every record appended so far in one
    /// call) or waits for a leader whose fsync covers it. On `Err` the
    /// write must not be acknowledged — the record may or may not have
    /// reached the disk.
    pub fn append_durable(&self, op: &WalOp) -> io::Result<()> {
        let record = encode_record(op);
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        self.fs.append(&mut st.file, &record)?;
        st.appended += 1;
        st.log_bytes += record.len() as u64;
        let my_seq = st.appended;
        if !self.sync_on_append {
            return Ok(());
        }
        loop {
            if st.synced >= my_seq {
                return Ok(());
            }
            if st.syncing {
                st = self.synced.wait(st).unwrap_or_else(|p| p.into_inner());
                continue;
            }
            // Become the group-commit leader: fsync outside the lock so
            // followers can keep appending into the next group.
            st.syncing = true;
            let cover = st.appended;
            let file = st.file.try_clone()?;
            drop(st);
            let result = self.fs.fsync(&file);
            st = self.state.lock().unwrap_or_else(|p| p.into_inner());
            st.syncing = false;
            match result {
                Ok(()) => {
                    st.synced = st.synced.max(cover);
                    self.synced.notify_all();
                    if st.synced >= my_seq {
                        return Ok(());
                    }
                }
                Err(e) => {
                    // Wake followers so each can retry (or fail) as its
                    // own leader rather than hang.
                    self.synced.notify_all();
                    return Err(e);
                }
            }
        }
    }

    /// Current log length in bytes (drives auto-checkpoint scheduling).
    pub fn log_bytes(&self) -> u64 {
        self.state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .log_bytes
    }

    /// Writes a checkpoint of `entries` (the shard's *complete* live
    /// state) and truncates the log: temp file, fsync, atomic rename,
    /// directory fsync, then log truncate + fsync. Crash-safe at every
    /// boundary — before the rename the old checkpoint + full log still
    /// recover, after it the new checkpoint plus a (possibly un-truncated)
    /// log replay to the same state. See the struct docs for the
    /// quiescence requirement.
    pub fn checkpoint(&self, dim: usize, entries: &[CheckpointEntry]) -> io::Result<()> {
        let blob = encode_checkpoint(dim, entries);
        let st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let mut tmp = self.fs.create(&self.ckpt_tmp_path)?;
        self.fs.append(&mut tmp, &blob)?;
        self.fs.fsync(&tmp)?;
        drop(tmp);
        self.fs.rename(&self.ckpt_tmp_path, &self.ckpt_path)?;
        self.fs.fsync_dir(&self.dir)?;
        self.fs.truncate(&st.file, 0)?;
        self.fs.fsync(&st.file)?;
        drop(st);
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        st.log_bytes = 0;
        Ok(())
    }
}

/// Applies one recovered op to an index (the replay half of recovery).
pub fn apply_op(index: &MutableIndex, op: &WalOp) {
    match op {
        WalOp::Upsert { id, vector } => {
            index.upsert(*id, vector.clone());
        }
        WalOp::Remove { id } => {
            index.remove(*id);
        }
        WalOp::Compact => {
            index.compact();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Self-cleaning scratch directory.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let path =
                std::env::temp_dir().join(format!("trajcl-wal-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&path);
            std::fs::create_dir_all(&path).expect("create temp dir");
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn sample_ops() -> Vec<WalOp> {
        vec![
            WalOp::Upsert {
                id: 7,
                vector: vec![1.0, -2.5, 0.0, f32::MIN_POSITIVE],
            },
            WalOp::Remove { id: 7 },
            WalOp::Compact,
            WalOp::Upsert {
                id: u64::MAX,
                vector: vec![],
            },
        ]
    }

    /// Bit-exact op equality (floats compared by representation, so NaN
    /// payloads round-trip too).
    fn same_op(a: &WalOp, b: &WalOp) -> bool {
        match (a, b) {
            (WalOp::Upsert { id: ia, vector: va }, WalOp::Upsert { id: ib, vector: vb }) => {
                ia == ib
                    && va.len() == vb.len()
                    && va.iter().zip(vb).all(|(x, y)| x.to_bits() == y.to_bits())
            }
            (WalOp::Remove { id: ia }, WalOp::Remove { id: ib }) => ia == ib,
            (WalOp::Compact, WalOp::Compact) => true,
            _ => false,
        }
    }

    #[test]
    fn record_round_trip_is_canonical() {
        for op in sample_ops() {
            let enc = encode_record(&op);
            let (dec, n) = decode_record(&enc).expect("decode");
            assert_eq!(n, enc.len());
            assert!(same_op(&dec, &op));
            assert_eq!(encode_record(&dec), enc, "canonical re-encode");
        }
    }

    #[test]
    fn corrupt_records_error_never_panic() {
        let enc = encode_record(&WalOp::Upsert {
            id: 3,
            vector: vec![1.0, 2.0],
        });
        // Flip every byte, one at a time: must error or decode the
        // original length (a flipped float payload byte fails the CRC).
        for at in 0..enc.len() {
            let mut bad = enc.clone();
            bad[at] ^= 0x40;
            if let Ok((_, n)) = decode_record(&bad) {
                assert_eq!(n, enc.len());
            }
        }
        assert_eq!(decode_record(&[]), Err(WalError::Truncated));
        assert_eq!(
            decode_record(&[0, 0, 0, 0, 0, 0, 0, 0]),
            Err(WalError::BadLength(0))
        );
        let mut huge = Vec::new();
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        huge.extend_from_slice(&[0; 8]);
        assert_eq!(decode_record(&huge), Err(WalError::BadLength(u32::MAX)));
        // Bad tag with a valid CRC.
        let payload = [99u8];
        let mut rec = Vec::new();
        rec.extend_from_slice(&1u32.to_le_bytes());
        rec.extend_from_slice(&crc32(&payload).to_le_bytes());
        rec.extend_from_slice(&payload);
        assert_eq!(decode_record(&rec), Err(WalError::BadTag(99)));
    }

    #[test]
    fn checkpoint_round_trip_and_rejections() {
        let entries = vec![
            CheckpointEntry {
                id: 1,
                dirty: false,
                vector: vec![0.5, -0.5],
            },
            CheckpointEntry {
                id: 2,
                dirty: true,
                vector: vec![f32::NAN, 3.0],
            },
        ];
        let blob = encode_checkpoint(2, &entries);
        let (dim, dec) = decode_checkpoint(&blob).expect("decode");
        assert_eq!(dim, 2);
        assert_eq!(dec.len(), 2);
        assert_eq!(dec[0].id, 1);
        assert!(dec[1].dirty);
        assert_eq!(dec[1].vector[0].to_bits(), f32::NAN.to_bits());
        assert_eq!(encode_checkpoint(dim, &dec), blob, "canonical re-encode");
        // Truncations and extensions are rejected.
        for cut in 0..blob.len() {
            assert!(decode_checkpoint(&blob[..cut]).is_err(), "cut {cut}");
        }
        let mut extended = blob.clone();
        extended.push(0);
        assert!(decode_checkpoint(&extended).is_err());
        // Bit flips are rejected (CRC) or alter nothing structural.
        let mut flipped = blob.clone();
        flipped[17] ^= 1;
        assert!(decode_checkpoint(&flipped).is_err());
    }

    #[test]
    fn wal_append_reopen_recovers_all_ops() {
        let tmp = TempDir::new("reopen");
        let ops = sample_ops();
        {
            let (wal, rec) =
                Wal::open(&tmp.0, "s0", Durability::Fsync, Arc::new(RealFs)).expect("open");
            assert!(rec.checkpoint.is_none());
            assert!(rec.ops.is_empty());
            for op in &ops {
                wal.append_durable(op).expect("append");
            }
            assert!(wal.log_bytes() > 0);
        }
        let (_, rec) =
            Wal::open(&tmp.0, "s0", Durability::Fsync, Arc::new(RealFs)).expect("reopen");
        assert_eq!(rec.ops.len(), ops.len());
        for (got, want) in rec.ops.iter().zip(&ops) {
            assert!(same_op(got, want));
        }
        assert_eq!(rec.truncated_tail_bytes, 0);
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated() {
        let tmp = TempDir::new("torn");
        {
            let (wal, _) =
                Wal::open(&tmp.0, "s0", Durability::Fsync, Arc::new(RealFs)).expect("open");
            wal.append_durable(&WalOp::Remove { id: 1 })
                .expect("append");
            wal.append_durable(&WalOp::Remove { id: 2 })
                .expect("append");
        }
        // Tear the last record in half by hand.
        let log = tmp.0.join("s0.log");
        let bytes = std::fs::read(&log).expect("read");
        std::fs::write(&log, &bytes[..bytes.len() - 5]).expect("tear");
        let (_, rec) =
            Wal::open(&tmp.0, "s0", Durability::Fsync, Arc::new(RealFs)).expect("reopen");
        assert_eq!(rec.ops.len(), 1);
        assert!(same_op(&rec.ops[0], &WalOp::Remove { id: 1 }));
        assert!(rec.truncated_tail_bytes > 0);
        // The torn bytes were truncated away: a fresh append continues
        // cleanly from the surviving prefix.
        {
            let (wal, _) =
                Wal::open(&tmp.0, "s0", Durability::Fsync, Arc::new(RealFs)).expect("open 3");
            wal.append_durable(&WalOp::Remove { id: 3 })
                .expect("append");
        }
        let (_, rec) =
            Wal::open(&tmp.0, "s0", Durability::Fsync, Arc::new(RealFs)).expect("reopen 2");
        assert_eq!(rec.ops.len(), 2);
        assert!(same_op(&rec.ops[1], &WalOp::Remove { id: 3 }));
    }

    #[test]
    fn checkpoint_truncates_log_and_recovers() {
        let tmp = TempDir::new("ckpt");
        {
            let (wal, _) =
                Wal::open(&tmp.0, "s0", Durability::Fsync, Arc::new(RealFs)).expect("open");
            wal.append_durable(&WalOp::Upsert {
                id: 1,
                vector: vec![1.0, 2.0],
            })
            .expect("append");
            wal.checkpoint(
                2,
                &[CheckpointEntry {
                    id: 1,
                    dirty: true,
                    vector: vec![1.0, 2.0],
                }],
            )
            .expect("checkpoint");
            assert_eq!(wal.log_bytes(), 0);
            wal.append_durable(&WalOp::Remove { id: 1 })
                .expect("append 2");
        }
        let (_, rec) =
            Wal::open(&tmp.0, "s0", Durability::Fsync, Arc::new(RealFs)).expect("reopen");
        let ckpt = rec.checkpoint.expect("checkpoint present");
        assert_eq!(ckpt.dim, 2);
        assert_eq!(ckpt.entries.len(), 1);
        assert!(ckpt.entries[0].dirty);
        assert_eq!(rec.ops.len(), 1, "only the post-checkpoint tail replays");
        assert!(same_op(&rec.ops[0], &WalOp::Remove { id: 1 }));
    }

    #[test]
    fn group_commit_serves_concurrent_appenders() {
        let tmp = TempDir::new("group");
        let (wal, _) = Wal::open(&tmp.0, "s0", Durability::Fsync, Arc::new(RealFs)).expect("open");
        let wal = Arc::new(wal);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let wal = wal.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..16u64 {
                    wal.append_durable(&WalOp::Remove { id: t * 100 + i })
                        .expect("append");
                }
            }));
        }
        for h in handles {
            h.join().expect("join");
        }
        drop(wal);
        let (_, rec) =
            Wal::open(&tmp.0, "s0", Durability::Fsync, Arc::new(RealFs)).expect("reopen");
        assert_eq!(rec.ops.len(), 64);
    }

    #[test]
    fn atomic_write_replaces_whole_or_not_at_all() {
        let tmp = TempDir::new("atomic");
        let target = tmp.0.join("snap.bin");
        atomic_write(&RealFs, &target, b"first").expect("write 1");
        assert_eq!(std::fs::read(&target).expect("read"), b"first");
        atomic_write(&RealFs, &target, b"second, longer").expect("write 2");
        assert_eq!(std::fs::read(&target).expect("read"), b"second, longer");
        // A crash before the rename leaves the old contents untouched.
        let fs = CrashPointFs::new(2, false); // create, append, then die at fsync
        assert!(atomic_write(&fs, &target, b"torn").is_err());
        assert_eq!(std::fs::read(&target).expect("read"), b"second, longer");
    }

    fn arb_wal_op() -> impl Strategy<Value = WalOp> {
        (
            0u32..4,
            0u64..32,
            prop::collection::vec(0u32..=u32::MAX, 0..5),
        )
            .prop_map(|(kind, id, bits)| match kind {
                0 => WalOp::Compact,
                1 => WalOp::Remove { id },
                _ => WalOp::Upsert {
                    id,
                    vector: bits.into_iter().map(f32::from_bits).collect(),
                },
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        // The satellite property: truncating a log at EVERY byte offset
        // recovers exactly a prefix of the appended ops — the torn final
        // record is dropped, never misparsed as a different op.
        #[test]
        fn truncation_at_every_offset_recovers_a_prefix(
            ops in prop::collection::vec(arb_wal_op(), 0..7),
        ) {
            let records: Vec<Vec<u8>> = ops.iter().map(encode_record).collect();
            let mut boundaries = vec![0usize];
            let mut stream = Vec::new();
            for r in &records {
                stream.extend_from_slice(r);
                boundaries.push(stream.len());
            }
            for cut in 0..=stream.len() {
                let (got, consumed) = replay(&stream[..cut]);
                // Exactly the records wholly inside the cut survive.
                let want = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
                prop_assert_eq!(got.len(), want, "cut {}", cut);
                prop_assert_eq!(consumed, boundaries[want]);
                for (g, w) in got.iter().zip(&ops) {
                    prop_assert!(same_op(g, w));
                }
            }
        }
    }
}
