//! A mutable vector index with immutable, atomically-swapped read
//! snapshots — the serving layer's answer to "the database is frozen at
//! build time".
//!
//! Layout: a **sealed** part (an [`IvfIndex`] when cells are configured, a
//! flat table otherwise) built at construction or by the last
//! [`MutableIndex::compact`], plus a **write buffer** of vectors upserted
//! since. Deletions from the sealed part are tombstones; the buffer is
//! brute-force-scanned alongside the sealed lists at query time, so writes
//! are visible immediately without touching the trained centroids.
//!
//! Concurrency: readers clone an `Arc<IndexSnapshot>` out of an `RwLock`
//! (held only for the pointer copy — never across a search) and run
//! entirely on that immutable snapshot; a reader holding a snapshot keeps
//! observing exactly the index state it started from. Writers serialise on
//! a separate mutex, rebuild the cheap mutable tail (tombstone bitmap +
//! buffer), and publish a fresh snapshot with one pointer swap — readers
//! never block on a writer, and can never observe a torn (half-updated)
//! index.
//!
//! [`MutableIndex::compact`] folds tombstones and buffer into a newly
//! trained sealed part (k-means re-run), emptying the mutable tail. Its
//! cost is a full rebuild. With [`Quantization::Sq8`] (int8 codes) or
//! [`Quantization::Pq`] (product-quantized codes, sub-quantizers
//! retrained at every compaction) the sealed part is stored compressed
//! (the write buffer always stays exact f32); a compaction then reads
//! sealed rows back *decoded*, so re-sealing an SQ8 part re-encodes
//! values that already sit on the code lattice — the error does not
//! compound beyond the codebook's per-step bound (PQ re-seals re-train
//! centroids on the decoded rows, which reproduce them near-exactly for
//! the same reason). Sealed quantized searches return asymmetric
//! distances; [`IndexSnapshot::search_rescored`] lets a caller holding
//! exact vectors (the serving engine's cached table) re-rank them
//! exactly. Buffer-only writes republish in O(buffer)
//! pointer copies (vectors and the tombstone bitmap are `Arc`-shared
//! with snapshots); a write that tombstones a sealed position
//! additionally pays one bitmap copy-on-write.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

use rand::rngs::StdRng;
use rand::SeedableRng;
use trajcl_tensor::{Shape, Tensor};

use crate::ivf::{
    brute_force_knn, IvfIndex, Metric, Quantization, ScanMode, DEFAULT_RESCORE_FACTOR,
};
use crate::wal::Durability;

/// Construction options for a [`MutableIndex`]: how the sealed part is
/// trained and stored.
#[derive(Debug, Clone, Copy)]
pub struct IndexOptions {
    /// IVF cells to train at every compaction (`None` = flat scan, unless
    /// quantization forces an IVF container).
    pub nlist: Option<usize>,
    /// Seed for deterministic k-means retraining.
    pub seed: u64,
    /// Storage quantization of the sealed part. [`Quantization::Sq8`]
    /// stores sealed rows as int8 codes (4× smaller);
    /// [`Quantization::Pq`] as `m`-byte product-quantized codes
    /// (retrained sub-quantizers at every compaction). The write buffer
    /// always stays exact f32 until the next compaction.
    pub quantization: Quantization,
    /// Over-fetch multiplier carried into the sealed [`IvfIndex`] for
    /// callers that rescore against an exact table
    /// ([`IndexSnapshot::search_rescored`]).
    pub rescore_factor: usize,
    /// Scan kernel of the sealed part ([`ScanMode::Symmetric`] trains a
    /// uniform-scale SQ8 codebook and scans in integer arithmetic;
    /// ignored by f32/PQ storage).
    pub scan: ScanMode,
    /// Durability expectation for mutations (see [`crate::wal`]). The
    /// index itself is always in-memory; this knob is carried by the
    /// engine snapshot and honoured by the serving layer, which pairs
    /// each shard with a write-ahead log when it is not
    /// [`Durability::Ephemeral`].
    pub durability: Durability,
}

impl Default for IndexOptions {
    fn default() -> Self {
        IndexOptions {
            nlist: None,
            seed: 0,
            quantization: Quantization::None,
            rescore_factor: DEFAULT_RESCORE_FACTOR,
            scan: ScanMode::Asymmetric,
            durability: Durability::Ephemeral,
        }
    }
}

/// Where an external id currently lives (writer-side bookkeeping).
#[derive(Clone, Copy, Debug)]
enum Loc {
    /// Position in the sealed part.
    Sealed(u32),
    /// Index into the write buffer.
    Buffer(usize),
}

/// The sealed (trained, immutable) part of the index.
enum Sealed {
    /// IVF-searched when cells are configured.
    Ivf(IvfIndex),
    /// Flat brute-force table otherwise.
    Flat(Tensor),
}

impl Sealed {
    fn len(&self) -> usize {
        match self {
            Sealed::Ivf(ivf) => ivf.len(),
            Sealed::Flat(t) => t.shape().rows(),
        }
    }

    /// Appends row `pos` to `out` (decoded when the sealed part is
    /// quantized — the compaction read-back path).
    fn append_vector(&self, pos: u32, out: &mut Vec<f32>) {
        match self {
            Sealed::Ivf(ivf) => ivf.decode_vector_into(pos, out),
            Sealed::Flat(t) => out.extend_from_slice(t.row(pos as usize)),
        }
    }

    fn memory_bytes(&self) -> usize {
        match self {
            Sealed::Ivf(ivf) => ivf.memory_bytes(),
            Sealed::Flat(t) => t.data().len() * 4,
        }
    }
}

/// One immutable, internally-consistent view of a [`MutableIndex`].
///
/// A snapshot never changes after publication: searches against it are
/// repeatable, and a reader mixing several calls (`len`, `search`,
/// `live_ids`) on one snapshot sees one coherent index state.
pub struct IndexSnapshot {
    sealed: Option<Arc<Sealed>>,
    /// Position -> external id for the sealed part.
    sealed_ids: Arc<Vec<u64>>,
    /// Sealed positions deleted (or replaced into the buffer) since the
    /// last compaction.
    tombstones: Arc<Vec<bool>>,
    /// Number of `true` entries in `tombstones` (precomputed).
    dead: usize,
    /// Vectors upserted since the last compaction.
    buffer: Arc<Vec<(u64, Arc<Vec<f32>>)>>,
    /// Monotonically increasing publication counter.
    generation: u64,
    dim: usize,
    metric: Metric,
}

impl IndexSnapshot {
    /// Number of live (searchable) vectors.
    pub fn len(&self) -> usize {
        self.sealed.as_ref().map_or(0, |s| s.len()) - self.dead + self.buffer.len()
    }

    /// True when no vector is searchable.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The publication counter: strictly increases with every mutation,
    /// so two snapshots with equal generations are the same snapshot.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Vectors in this snapshot's write buffer (upserted since the last
    /// compaction).
    pub fn buffer_len(&self) -> usize {
        self.buffer.len()
    }

    /// Approximate resident bytes of this snapshot's index state: the
    /// sealed part (quantized when SQ8 is configured) plus the exact-f32
    /// write buffer and tombstone bitmap.
    pub fn memory_bytes(&self) -> usize {
        self.sealed.as_ref().map_or(0, |s| s.memory_bytes())
            + self.buffer.len() * (16 + self.dim * 4)
            + self.tombstones.len()
            + self.sealed_ids.len() * 8
    }

    /// All live external ids, ascending (test/diagnostic helper).
    pub fn live_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .sealed_ids
            .iter()
            .enumerate()
            .filter(|(pos, _)| !self.tombstones[*pos])
            .map(|(_, &id)| id)
            .collect();
        ids.extend(self.buffer.iter().map(|(id, _)| *id));
        ids.sort_unstable();
        ids
    }

    /// Every live `(id, vector)` pair: sealed survivors (decoded — exact
    /// for f32 storage, codebook-reconstructed for SQ8/PQ, the same
    /// read-back a compaction performs) followed by the write buffer.
    /// This is the WAL checkpoint capture path (DESIGN.md §15).
    pub fn live_entries(&self) -> Vec<(u64, Vec<f32>)> {
        let mut out = Vec::with_capacity(self.len());
        if let Some(sealed) = &self.sealed {
            for pos in 0..sealed.len() {
                if !self.tombstones[pos] {
                    let mut v = Vec::with_capacity(self.dim);
                    sealed.append_vector(pos as u32, &mut v);
                    out.push((self.sealed_ids[pos], v));
                }
            }
        }
        for (id, v) in self.buffer.iter() {
            out.push((*id, v.as_slice().to_vec()));
        }
        out
    }

    /// kNN over this snapshot: probes the sealed part (IVF with `nprobe`
    /// cells, or exact flat scan), filters tombstones, brute-force-scans
    /// the write buffer, and merges. Returns `(external id, distance)`
    /// ascending, at most `k` entries. Quantized sealed hits carry
    /// asymmetric distances — see [`IndexSnapshot::search_rescored`] for
    /// the exact-rescoring variant.
    pub fn search(&self, query: &[f32], k: usize, nprobe: usize) -> Vec<(u64, f64)> {
        self.search_rescored(query, k, nprobe, None)
    }

    /// [`IndexSnapshot::search`] with optional sealed-part rescoring.
    ///
    /// A quantized (SQ8/PQ) sealed part keeps no exact copy of its rows,
    /// so plain searches return *asymmetric* distances (exact query vs
    /// quantized rows), correct within the codebook's error bound. When
    /// the caller can supply exact vectors for (some) external ids — the
    /// serving layer's engine keeps its cached embedding table for
    /// exactly this — passing a [`ExactRescorer`] makes the sealed scan
    /// over-fetch `rescore_factor · k` candidates and re-rank every hit
    /// the rescorer covers with exact distances.
    ///
    /// **Caveat:** ids the rescorer returns `None` for (vectors upserted
    /// or replaced after the exact table was built) keep their asymmetric
    /// distances and compete in the merged ranking as-is; each individual
    /// distance stays within the quantization error bound, but the final
    /// ordering mixes exact and asymmetric values. Buffer hits are always
    /// exact. With an f32 (unquantized) sealed part the rescorer is
    /// ignored — distances are exact already.
    pub fn search_rescored(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
        rescorer: Option<&dyn ExactRescorer>,
    ) -> Vec<(u64, f64)> {
        assert_eq!(query.len(), self.dim, "query dimensionality mismatch");
        // Clamp before allocating: at most len() hits exist, and k comes
        // straight off the wire in the serve protocol — an absurd k must
        // not turn into an absurd allocation.
        let k = k.min(self.len());
        let mut hits: Vec<(u64, f64)> = Vec::with_capacity(k + self.buffer.len());
        if let Some(sealed) = &self.sealed {
            // Over-fetch by the tombstone count so filtering cannot starve
            // the result below k while live candidates were probed; when a
            // rescorer is in play, additionally over-fetch the sealed
            // IvfIndex's rescore factor so re-ranking has candidates to
            // promote.
            let (fetch, rescoring) = match (sealed.as_ref(), rescorer) {
                (Sealed::Ivf(ivf), Some(_)) if ivf.quantization() != Quantization::None => {
                    (k.saturating_mul(ivf.rescore_factor()).max(k), true)
                }
                _ => (k, false),
            };
            let sealed_hits = match sealed.as_ref() {
                Sealed::Ivf(ivf) => ivf.search(query, fetch + self.dead, nprobe),
                Sealed::Flat(t) => brute_force_knn(t, query, fetch + self.dead, self.metric),
            };
            hits.extend(
                sealed_hits
                    .into_iter()
                    .filter(|(pos, _)| !self.tombstones[*pos as usize])
                    .map(|(pos, d)| {
                        let id = self.sealed_ids[pos as usize];
                        let d = if rescoring {
                            rescorer
                                .and_then(|r| r.exact_vector(id))
                                .map_or(d, |v| self.metric.dist(query, v))
                        } else {
                            d
                        };
                        (id, d)
                    }),
            );
        }
        for (id, v) in self.buffer.iter() {
            hits.push((*id, self.metric.dist(query, v.as_slice())));
        }
        hits.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        hits.truncate(k);
        hits
    }
}

/// A source of exact vectors for sealed-part rescoring
/// ([`IndexSnapshot::search_rescored`]): maps an external id to its exact
/// f32 vector when one is known to match what the index holds for that
/// id, `None` otherwise (in which case the asymmetric distance is kept).
pub trait ExactRescorer {
    /// The exact vector for `id`, when available and current.
    fn exact_vector(&self, id: u64) -> Option<&[f32]>;
}

/// Writer-side state (everything needed to build the next snapshot).
///
/// `tombstones` lives behind an `Arc` shared with the published snapshot:
/// buffer-only writes republish it for free, and `Arc::make_mut` pays the
/// bitmap copy only on writes that actually touch the sealed part.
/// Buffer vectors are `Arc`'d too, so republishing the buffer is a
/// shallow O(buffer) pointer copy, never a deep float copy.
struct Writer {
    id_loc: HashMap<u64, Loc>,
    tombstones: Arc<Vec<bool>>,
    /// Count of `true` entries in `tombstones` (kept incrementally).
    dead: usize,
    buffer: Vec<(u64, Arc<Vec<f32>>)>,
    generation: u64,
}

/// A mutable, snapshot-readable vector index over external `u64` ids.
///
/// All read paths go through [`MutableIndex::snapshot`] (or the
/// [`MutableIndex::search`] convenience wrapper); all write paths serialise
/// internally, so `&self` methods are safe to call from any number of
/// threads.
///
/// # Examples
///
/// ```
/// use trajcl_index::{Metric, MutableIndex};
///
/// // An empty 2-d index that trains 2 IVF cells at every compaction.
/// let index = MutableIndex::new(2, Metric::L1, Some(2), 0);
/// index.upsert(7, vec![0.0, 0.0]);
/// index.upsert(8, vec![5.0, 5.0]);
///
/// // Writes are visible immediately (buffer scan), no compaction needed.
/// assert_eq!(index.search(&[0.1, 0.0], 1, 1)[0].0, 7);
///
/// // Compaction folds the buffer into a freshly trained sealed part;
/// // readers holding older snapshots are unaffected.
/// let old = index.snapshot();
/// assert_eq!(index.compact(), 2);
/// index.remove(7);
/// assert_eq!(old.len(), 2); // the held snapshot still sees id 7
/// assert_eq!(index.len(), 1);
/// ```
pub struct MutableIndex {
    snapshot: RwLock<Arc<IndexSnapshot>>,
    writer: Mutex<Writer>,
    dim: usize,
    metric: Metric,
    opts: IndexOptions,
}

impl MutableIndex {
    /// An empty index over `dim`-dimensional vectors. `nlist` requests IVF
    /// training at every compaction; `seed` makes retraining deterministic.
    /// (Convenience wrapper over [`MutableIndex::with_options`].)
    pub fn new(dim: usize, metric: Metric, nlist: Option<usize>, seed: u64) -> Self {
        Self::with_options(
            dim,
            metric,
            IndexOptions {
                nlist,
                seed,
                ..IndexOptions::default()
            },
        )
    }

    /// An empty index with full construction options (quantized sealed
    /// storage, rescore factor).
    pub fn with_options(dim: usize, metric: Metric, opts: IndexOptions) -> Self {
        assert!(dim > 0, "vector dimensionality must be positive");
        let snapshot = IndexSnapshot {
            sealed: None,
            sealed_ids: Arc::new(Vec::new()),
            tombstones: Arc::new(Vec::new()),
            dead: 0,
            buffer: Arc::new(Vec::new()),
            generation: 0,
            dim,
            metric,
        };
        MutableIndex {
            snapshot: RwLock::new(Arc::new(snapshot)),
            writer: Mutex::new(Writer {
                id_loc: HashMap::new(),
                tombstones: Arc::new(Vec::new()),
                dead: 0,
                buffer: Vec::new(),
                generation: 0,
            }),
            dim,
            metric,
            opts,
        }
    }

    /// An index pre-seeded with `(ids[i], embeddings.row(i))` pairs, sealed
    /// immediately (IVF-trained when `nlist` is set). Ids must be unique.
    /// (Convenience wrapper over [`MutableIndex::from_table_with`].)
    pub fn from_table(
        ids: Vec<u64>,
        embeddings: &Tensor,
        metric: Metric,
        nlist: Option<usize>,
        seed: u64,
    ) -> Self {
        Self::from_table_with(
            ids,
            embeddings,
            metric,
            IndexOptions {
                nlist,
                seed,
                ..IndexOptions::default()
            },
        )
    }

    /// [`MutableIndex::from_table`] with full construction options.
    pub fn from_table_with(
        ids: Vec<u64>,
        embeddings: &Tensor,
        metric: Metric,
        opts: IndexOptions,
    ) -> Self {
        assert_eq!(
            ids.len(),
            embeddings.shape().rows(),
            "one id per embedding row"
        );
        let index = MutableIndex::with_options(embeddings.shape().last(), metric, opts);
        if !ids.is_empty() {
            let mut w = index.writer.lock().unwrap_or_else(|p| p.into_inner());
            for (i, &id) in ids.iter().enumerate() {
                assert!(
                    w.id_loc.insert(id, Loc::Buffer(i)).is_none(),
                    "duplicate id {id} in from_table"
                );
            }
            w.buffer = ids
                .iter()
                .zip(0..)
                .map(|(&id, i)| (id, Arc::new(embeddings.row(i).to_vec())))
                .collect();
            index.seal(&mut w);
        }
        index
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of live vectors (via the current snapshot).
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// True when no vector is searchable.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current read snapshot. Cheap (one `Arc` clone under a read
    /// lock); hold it to run any number of mutually-consistent queries.
    pub fn snapshot(&self) -> Arc<IndexSnapshot> {
        self.snapshot
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// One-shot kNN against the current snapshot.
    pub fn search(&self, query: &[f32], k: usize, nprobe: usize) -> Vec<(u64, f64)> {
        self.snapshot().search(query, k, nprobe)
    }

    /// Inserts or replaces the vector for `id`. Returns `true` when the id
    /// was already present (replace).
    pub fn upsert(&self, id: u64, vector: Vec<f32>) -> bool {
        assert_eq!(vector.len(), self.dim, "vector dimensionality mismatch");
        let mut w = self.writer.lock().unwrap_or_else(|p| p.into_inner());
        let vector = Arc::new(vector);
        let existed = match w.id_loc.get(&id).copied() {
            Some(Loc::Buffer(i)) => {
                w.buffer[i].1 = vector;
                true
            }
            Some(Loc::Sealed(pos)) => {
                Arc::make_mut(&mut w.tombstones)[pos as usize] = true;
                w.dead += 1;
                w.buffer.push((id, vector));
                let slot = Loc::Buffer(w.buffer.len() - 1);
                w.id_loc.insert(id, slot);
                true
            }
            None => {
                w.buffer.push((id, vector));
                let slot = Loc::Buffer(w.buffer.len() - 1);
                w.id_loc.insert(id, slot);
                false
            }
        };
        self.publish(&mut w);
        existed
    }

    /// Removes `id`; returns `true` when it was present.
    pub fn remove(&self, id: u64) -> bool {
        let mut w = self.writer.lock().unwrap_or_else(|p| p.into_inner());
        let removed = match w.id_loc.remove(&id) {
            Some(Loc::Sealed(pos)) => {
                Arc::make_mut(&mut w.tombstones)[pos as usize] = true;
                w.dead += 1;
                true
            }
            Some(Loc::Buffer(i)) => {
                w.buffer.swap_remove(i);
                if let Some(&(moved, _)) = w.buffer.get(i) {
                    w.id_loc.insert(moved, Loc::Buffer(i));
                }
                true
            }
            None => false,
        };
        if removed {
            self.publish(&mut w);
        }
        removed
    }

    /// Drops every vector and publishes an empty snapshot — the reset
    /// step of checkpoint-based crash recovery (the recovered state is
    /// rebuilt from the checkpoint's complete live set, so nothing
    /// pre-existing may survive). Readers holding old snapshots are
    /// unaffected.
    pub fn clear(&self) {
        let mut w = self.writer.lock().unwrap_or_else(|p| p.into_inner());
        w.id_loc = HashMap::new();
        w.tombstones = Arc::new(Vec::new());
        w.dead = 0;
        w.buffer = Vec::new();
        w.generation += 1;
        let published = IndexSnapshot {
            sealed: None,
            sealed_ids: Arc::new(Vec::new()),
            tombstones: w.tombstones.clone(),
            dead: 0,
            buffer: Arc::new(Vec::new()),
            generation: w.generation,
            dim: self.dim,
            metric: self.metric,
        };
        *self.snapshot.write().unwrap_or_else(|p| p.into_inner()) = Arc::new(published);
    }

    /// Vectors currently sitting in the write buffer (0 right after a
    /// compaction; grows with every insert until the next one).
    pub fn buffer_len(&self) -> usize {
        self.snapshot().buffer.len()
    }

    /// Folds tombstones and the write buffer into a freshly trained sealed
    /// part (k-means re-run when IVF cells are configured) and publishes
    /// the result atomically. Readers holding older snapshots are
    /// unaffected. Returns the number of live vectors sealed.
    pub fn compact(&self) -> usize {
        let mut w = self.writer.lock().unwrap_or_else(|p| p.into_inner());
        self.seal(&mut w)
    }

    /// Builds a new sealed part from `w`'s live set, resets the mutable
    /// tail and publishes. Caller holds the writer lock.
    fn seal(&self, w: &mut Writer) -> usize {
        // Assemble the live vectors: sealed survivors first, then buffer.
        let snap = self.snapshot();
        let mut ids: Vec<u64> = Vec::with_capacity(snap.len());
        let mut data: Vec<f32> = Vec::with_capacity(snap.len() * self.dim);
        if let Some(sealed) = &snap.sealed {
            for pos in 0..sealed.len() {
                if !w.tombstones[pos] {
                    ids.push(snap.sealed_ids[pos]);
                    sealed.append_vector(pos as u32, &mut data);
                }
            }
        }
        for (id, v) in w.buffer.iter() {
            ids.push(*id);
            data.extend_from_slice(v);
        }
        let n = ids.len();
        let sealed = if n == 0 {
            None
        } else {
            let table = Tensor::from_vec(data, Shape::d2(n, self.dim));
            // Quantized storage always lives in an IVF container; without
            // configured cells a single list keeps the scan exhaustive
            // (every search probes at least one cell).
            let nlist = match (self.opts.nlist, self.opts.quantization) {
                (Some(nlist), _) => Some(nlist),
                (None, Quantization::None) => None,
                (None, Quantization::Sq8 | Quantization::Pq { .. }) => Some(1),
            };
            Some(Arc::new(match nlist {
                Some(nlist) => {
                    // Deterministic retrain: seed varies with generation so
                    // repeated compactions don't re-use degenerate inits.
                    let mut rng = StdRng::seed_from_u64(self.opts.seed ^ w.generation);
                    Sealed::Ivf(IvfIndex::build_with_scan(
                        &table,
                        nlist,
                        self.metric,
                        self.opts.quantization,
                        self.opts.rescore_factor,
                        self.opts.scan,
                        &mut rng,
                    ))
                }
                None => Sealed::Flat(table),
            }))
        };
        w.id_loc = ids
            .iter()
            .enumerate()
            .map(|(pos, &id)| (id, Loc::Sealed(pos as u32)))
            .collect();
        w.tombstones = Arc::new(vec![false; n]);
        w.dead = 0;
        w.buffer = Vec::new();
        w.generation += 1;
        let published = IndexSnapshot {
            sealed,
            sealed_ids: Arc::new(ids),
            tombstones: w.tombstones.clone(),
            dead: 0,
            buffer: Arc::new(Vec::new()),
            generation: w.generation,
            dim: self.dim,
            metric: self.metric,
        };
        *self.snapshot.write().unwrap_or_else(|p| p.into_inner()) = Arc::new(published);
        n
    }

    /// Publishes a snapshot of `w`'s current state (writer lock held).
    fn publish(&self, w: &mut Writer) {
        w.generation += 1;
        let snap = self.snapshot();
        let published = IndexSnapshot {
            sealed: snap.sealed.clone(),
            sealed_ids: snap.sealed_ids.clone(),
            tombstones: w.tombstones.clone(),
            dead: w.dead,
            buffer: Arc::new(w.buffer.clone()),
            generation: w.generation,
            dim: self.dim,
            metric: self.metric,
        };
        *self.snapshot.write().unwrap_or_else(|p| p.into_inner()) = Arc::new(published);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn vecs(n: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect()
    }

    /// Brute-force oracle over an id -> vector map.
    fn oracle_knn(
        live: &HashMap<u64, Vec<f32>>,
        query: &[f32],
        k: usize,
        metric: Metric,
    ) -> Vec<u64> {
        let mut hits: Vec<(u64, f64)> = live
            .iter()
            .map(|(id, v)| (*id, metric.dist(query, v)))
            .collect();
        hits.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        hits.truncate(k);
        hits.into_iter().map(|(id, _)| id).collect()
    }

    #[test]
    fn upsert_search_remove_round_trip() {
        let index = MutableIndex::new(4, Metric::L1, None, 0);
        assert!(index.is_empty());
        let data = vecs(10, 4, 1);
        for (i, v) in data.iter().enumerate() {
            assert!(!index.upsert(i as u64, v.clone()));
        }
        assert_eq!(index.len(), 10);
        let hits = index.search(&data[3], 1, 1);
        assert_eq!(hits[0].0, 3);
        assert_eq!(hits[0].1, 0.0);
        assert!(index.remove(3));
        assert!(!index.remove(3));
        assert_eq!(index.len(), 9);
        let hits = index.search(&data[3], 1, 1);
        assert_ne!(hits[0].0, 3, "removed id must not be returned");
    }

    #[test]
    fn upsert_replaces_in_place() {
        let index = MutableIndex::new(2, Metric::L2, None, 0);
        assert!(!index.upsert(7, vec![0.0, 0.0]));
        assert!(index.upsert(7, vec![5.0, 5.0]));
        assert_eq!(index.len(), 1);
        let hits = index.search(&[5.0, 5.0], 1, 1);
        assert_eq!(hits[0], (7, 0.0));
    }

    #[test]
    fn matches_oracle_through_mixed_ops_and_compactions() {
        let metric = Metric::L1;
        let index = MutableIndex::new(6, metric, Some(4), 42);
        let mut live: HashMap<u64, Vec<f32>> = HashMap::new();
        let data = vecs(120, 6, 7);
        let mut rng = StdRng::seed_from_u64(9);
        for (step, v) in data.iter().enumerate() {
            let id = rng.gen_range(0u64..40);
            match rng.gen_range(0u32..4) {
                0 => {
                    index.remove(id);
                    live.remove(&id);
                }
                1 if step % 17 == 0 => {
                    index.compact();
                }
                _ => {
                    index.upsert(id, v.clone());
                    live.insert(id, v.clone());
                }
            }
            assert_eq!(index.len(), live.len(), "step {step}");
        }
        // Full-probe IVF + buffer scan must equal the oracle exactly.
        let snap = index.snapshot();
        for q in data.iter().step_by(13) {
            let got: Vec<u64> = snap
                .search(q, 5, usize::MAX)
                .into_iter()
                .map(|(id, _)| id)
                .collect();
            assert_eq!(got, oracle_knn(&live, q, 5, metric));
        }
        // And again after sealing everything.
        index.compact();
        for q in data.iter().step_by(13) {
            let got: Vec<u64> = index
                .search(q, 5, usize::MAX)
                .into_iter()
                .map(|(id, _)| id)
                .collect();
            assert_eq!(got, oracle_knn(&live, q, 5, metric));
        }
    }

    #[test]
    fn from_table_seeds_sealed_part() {
        let data = vecs(30, 3, 3);
        let flat: Vec<f32> = data.iter().flatten().copied().collect();
        let table = Tensor::from_vec(flat, Shape::d2(30, 3));
        let ids: Vec<u64> = (100..130).collect();
        let index = MutableIndex::from_table(ids, &table, Metric::L1, Some(5), 0);
        assert_eq!(index.len(), 30);
        assert_eq!(index.buffer_len(), 0, "from_table must seal");
        let hits = index.search(&data[12], 1, usize::MAX);
        assert_eq!(hits[0], (112, 0.0));
    }

    #[test]
    fn old_snapshots_survive_mutation_and_compaction() {
        let index = MutableIndex::new(2, Metric::L1, Some(2), 0);
        for i in 0..8u64 {
            index.upsert(i, vec![i as f32, 0.0]);
        }
        let old = index.snapshot();
        let old_gen = old.generation();
        index.remove(0);
        index.upsert(99, vec![-1.0, 0.0]);
        index.compact();
        // The held snapshot still answers from the pre-mutation state.
        assert_eq!(old.generation(), old_gen);
        assert_eq!(old.len(), 8);
        assert_eq!(old.search(&[0.0, 0.0], 1, usize::MAX)[0].0, 0);
        // The new snapshot sees the mutations.
        let new = index.snapshot();
        assert!(new.generation() > old_gen);
        assert_eq!(new.search(&[-1.0, 0.0], 1, usize::MAX)[0].0, 99);
        assert_eq!(new.len(), 8);
        assert!(!new.live_ids().contains(&0));
    }

    #[test]
    fn tombstone_overfetch_keeps_k_results() {
        // Delete most of the sealed part; k results must still surface.
        let data = vecs(20, 2, 5);
        let flat: Vec<f32> = data.iter().flatten().copied().collect();
        let table = Tensor::from_vec(flat, Shape::d2(20, 2));
        let index = MutableIndex::from_table((0..20).collect(), &table, Metric::L2, None, 0);
        for id in 0..15u64 {
            index.remove(id);
        }
        assert_eq!(index.len(), 5);
        assert_eq!(index.search(&data[0], 5, 1).len(), 5);
    }
}
