//! Quantization acceptance suite (SQ8 + PQ): bit-exact serialization
//! round trips (property-tested, `IVF2` and `IVF3`), the recall@10 gates
//! against exact f32 brute force (SQ8 ≥ 0.95, PQ rescored ≥ 0.90), and
//! `IVF1` backward compatibility.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trajcl_index::{brute_force_knn, IvfIndex, Metric, Quantization, ScanMode};
use trajcl_tensor::{Shape, Tensor};

/// Clustered table: rows scattered around `centers` Gaussian centers (the
/// geometry IVF is designed for).
fn mixture(n: usize, d: usize, centers: usize, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let c = Tensor::randn(Shape::d2(centers, d), 0.0, 1.0, &mut rng);
    let mut data = Tensor::randn(Shape::d2(n, d), 0.0, 0.2, &mut rng)
        .data()
        .to_vec();
    for i in 0..n {
        let row = c.row(rng.gen_range(0..centers));
        for j in 0..d {
            data[i * d + j] += row[j];
        }
    }
    Tensor::from_vec(data, Shape::d2(n, d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // The satellite acceptance property: an SQ8 index must survive
    // `to_bytes` -> `from_bytes` -> `to_bytes` BIT-EXACTLY, and the
    // restored index must answer searches identically.
    #[test]
    fn sq8_round_trips_bit_exactly(
        n in 10usize..150,
        d in 2usize..24,
        nlist in 1usize..12,
        rescore in 1usize..9,
        metric_l2 in 0u32..2,
        seed in 0u64..1000,
    ) {
        let metric = if metric_l2 == 1 { Metric::L2 } else { Metric::L1 };
        let emb = mixture(n, d, 8, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let index =
            IvfIndex::build_with(&emb, nlist, metric, Quantization::Sq8, rescore, &mut rng);
        let bytes = index.to_bytes();
        prop_assert_eq!(&bytes[..4], b"IVF2");
        let restored = IvfIndex::from_bytes(&bytes).expect("valid bytes must deserialize");
        prop_assert_eq!(restored.to_bytes(), bytes, "round trip must be bit-exact");
        prop_assert_eq!(restored.len(), index.len());
        prop_assert_eq!(restored.rescore_factor(), index.rescore_factor());
        prop_assert_eq!(restored.quantization(), Quantization::Sq8);
        for qi in [0, n / 2, n - 1] {
            prop_assert_eq!(
                restored.search(emb.row(qi), 5, 3),
                index.search(emb.row(qi), 5, 3),
                "restored index diverged on query {}", qi
            );
            prop_assert_eq!(
                restored.search_rescored(emb.row(qi), 5, 3, Some(&emb)),
                index.search_rescored(emb.row(qi), 5, 3, Some(&emb))
            );
        }
    }

    // The PQ acceptance property: an IVF3 index must survive
    // `to_bytes` -> `from_bytes` -> `to_bytes` BIT-EXACTLY (codebook
    // centroids, trained error bound and codes included), and the
    // restored index must answer plain and rescored searches identically.
    #[test]
    fn pq_round_trips_bit_exactly(
        n in 10usize..150,
        d in 2usize..24,
        m in 1usize..6,
        nbits in 4u8..9,
        nlist in 1usize..12,
        rescore in 1usize..9,
        metric_l2 in 0u32..2,
        seed in 0u64..1000,
    ) {
        let metric = if metric_l2 == 1 { Metric::L2 } else { Metric::L1 };
        let emb = mixture(n, d, 8, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x90);
        let index = IvfIndex::build_with(
            &emb,
            nlist,
            metric,
            Quantization::Pq { m, nbits },
            rescore,
            &mut rng,
        );
        let bytes = index.to_bytes();
        // nbits ≤ 4 packs two codes per byte, which needs the IVF4
        // section; wider codes keep the legacy IVF3 layout.
        prop_assert_eq!(&bytes[..4], if nbits <= 4 { &b"IVF4"[..] } else { &b"IVF3"[..] });
        let restored = IvfIndex::from_bytes(&bytes).expect("valid bytes must deserialize");
        prop_assert_eq!(restored.to_bytes(), bytes, "round trip must be bit-exact");
        prop_assert_eq!(restored.len(), index.len());
        prop_assert_eq!(restored.rescore_factor(), index.rescore_factor());
        // The effective geometry survives (m clamps to d at build time).
        prop_assert_eq!(restored.quantization(), index.quantization());
        prop_assert_eq!(
            restored.pq_codebook().map(|cb| (cb.m(), cb.nbits(), cb.ksub())),
            index.pq_codebook().map(|cb| (cb.m(), cb.nbits(), cb.ksub()))
        );
        for qi in [0, n / 2, n - 1] {
            prop_assert_eq!(
                restored.search(emb.row(qi), 5, 3),
                index.search(emb.row(qi), 5, 3),
                "restored index diverged on query {}", qi
            );
            prop_assert_eq!(
                restored.search_rescored(emb.row(qi), 5, 3, Some(&emb)),
                index.search_rescored(emb.row(qi), 5, 3, Some(&emb))
            );
        }
    }

    // The symmetric-scan acceptance property: integer (code × code)
    // distances must stay within the derived codebook error bound of the
    // asymmetric ones. sym = L1(decode(enc(q)), decode(codes)) and
    // asym = L1(q, decode(codes)) differ by at most L1(q, decode(enc(q)))
    // ≤ Σ_j scale_j / 2 (the triangle inequality), provided q lies inside
    // the trained box — so queries are drawn as convex combinations of
    // table rows.
    #[test]
    fn symmetric_distances_stay_within_codebook_bound_of_asymmetric(
        n in 10usize..150,
        d in 2usize..24,
        nlist in 1usize..12,
        metric_l2 in 0u32..2,
        qa in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let metric = if metric_l2 == 1 { Metric::L2 } else { Metric::L1 };
        let emb = mixture(n, d, 8, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
        let sym = IvfIndex::build_with_scan(
            &emb, nlist, metric, Quantization::Sq8, 4, ScanMode::Symmetric, &mut rng,
        );
        let cb = sym.codebook().expect("sq8 storage");
        let scale = cb.uniform_scale().expect("symmetric build trains uniform");
        // In-box query: a convex combination of two table rows.
        let (r0, r1) = (emb.row(0), emb.row(n / 2));
        let q: Vec<f32> = r0
            .iter()
            .zip(r1)
            .map(|(&a, &b)| (qa as f32) * a + (1.0 - qa as f32) * b)
            .collect();
        // Compare the two kernels row by row over the same codebook.
        let mut qcodes = Vec::new();
        cb.encode_into(&q, &mut qcodes);
        let mut codes_row = Vec::new();
        let half = 0.5f64 * scale as f64;
        for i in 0..n {
            codes_row.clear();
            cb.encode_into(emb.row(i), &mut codes_row);
            let sym_d = trajcl_index::kernels::sq8_sym_dist(metric, &qcodes, &codes_row, scale);
            let asym_d = trajcl_index::kernels::sq8_dist(metric, &q, &codes_row, cb);
            match metric {
                Metric::L1 => {
                    // |sym - asym| ≤ Σ_j |q_j - dec(enc(q))_j| ≤ d · scale/2.
                    let bound = d as f64 * half + 1e-4;
                    prop_assert!(
                        (sym_d - asym_d).abs() <= bound,
                        "row {}: sym {} vs asym {} (bound {})", i, sym_d, asym_d, bound
                    );
                }
                Metric::L2 => {
                    // √sym and √asym are Euclidean norms differing by the
                    // norm of the encode error: |√sym - √asym| ≤ √(d)·scale/2.
                    let bound = (d as f64).sqrt() * half + 1e-4;
                    prop_assert!(
                        (sym_d.sqrt() - asym_d.sqrt()).abs() <= bound,
                        "row {}: √sym {} vs √asym {} (bound {})",
                        i, sym_d.sqrt(), asym_d.sqrt(), bound
                    );
                }
            }
        }
    }

    // Symmetric SQ8 indexes round-trip through IVF4 bit-exactly with the
    // scan mode preserved, and restored indexes search identically.
    #[test]
    fn symmetric_sq8_round_trips_bit_exactly(
        n in 10usize..150,
        d in 2usize..24,
        nlist in 1usize..12,
        rescore in 1usize..9,
        metric_l2 in 0u32..2,
        seed in 0u64..1000,
    ) {
        let metric = if metric_l2 == 1 { Metric::L2 } else { Metric::L1 };
        let emb = mixture(n, d, 8, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
        let index = IvfIndex::build_with_scan(
            &emb, nlist, metric, Quantization::Sq8, rescore, ScanMode::Symmetric, &mut rng,
        );
        let bytes = index.to_bytes();
        prop_assert_eq!(&bytes[..4], b"IVF4");
        let restored = IvfIndex::from_bytes(&bytes).expect("valid bytes must deserialize");
        prop_assert_eq!(restored.to_bytes(), bytes, "round trip must be bit-exact");
        prop_assert_eq!(restored.scan_mode(), ScanMode::Symmetric);
        for qi in [0, n / 2, n - 1] {
            prop_assert_eq!(
                restored.search(emb.row(qi), 5, 3),
                index.search(emb.row(qi), 5, 3),
                "restored index diverged on query {}", qi
            );
            prop_assert_eq!(
                restored.search_rescored(emb.row(qi), 5, 3, Some(&emb)),
                index.search_rescored(emb.row(qi), 5, 3, Some(&emb))
            );
        }
    }

    // f32 indexes keep the pre-quantization IVF1 layout and still load —
    // new readers accept old blobs, old readers accept new f32 blobs.
    #[test]
    fn f32_round_trip_stays_ivf1(
        n in 5usize..80,
        d in 2usize..12,
        nlist in 1usize..8,
        seed in 0u64..1000,
    ) {
        let emb = mixture(n, d, 4, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let index = IvfIndex::build(&emb, nlist, Metric::L1, &mut rng);
        let bytes = index.to_bytes();
        prop_assert_eq!(&bytes[..4], b"IVF1");
        let restored = IvfIndex::from_bytes(&bytes).expect("IVF1 must still deserialize");
        prop_assert_eq!(restored.to_bytes(), bytes);
        prop_assert_eq!(
            restored.search(emb.row(0), 4, nlist),
            index.search(emb.row(0), 4, nlist)
        );
    }
}

/// Mean recall@k of an index configuration against exact brute force.
fn measured_recall(index: &IvfIndex, emb: &Tensor, nprobe: usize, k: usize, rescore: bool) -> f64 {
    let n = emb.shape().rows();
    let trials = 50;
    let mut recall_sum = 0.0;
    for t in 0..trials {
        let q = emb.row((t * (n / trials)) % n);
        let exact: Vec<u32> = brute_force_knn(emb, q, k, Metric::L1)
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        let table = rescore.then_some(emb);
        let got = index.search_rescored(q, k, nprobe, table);
        let hits = got.iter().filter(|(id, _)| exact.contains(id)).count();
        recall_sum += hits as f64 / k as f64;
    }
    recall_sum / trials as f64
}

// The headline acceptance gate: IVF+SQ8 recall@10 >= 0.95 against exact
// f32 brute force on a seeded clustered table, at a partial probe.
#[test]
fn sq8_recall_gate_at_partial_probe() {
    let (n, d, nlist, nprobe, k) = (4000, 32, 32, 8, 10);
    let emb = mixture(n, d, 16, 77);
    let mut rng = StdRng::seed_from_u64(78);
    let sq8 = IvfIndex::build_with(&emb, nlist, Metric::L1, Quantization::Sq8, 4, &mut rng);

    let rescored = measured_recall(&sq8, &emb, nprobe, k, true);
    assert!(
        rescored >= 0.95,
        "IVF+SQ8 (rescored) recall@10 gate failed: {rescored:.4} < 0.95"
    );
    // Even the raw asymmetric scan (no rescoring table) must clear the
    // gate — rescoring sharpens distances, not recall floors.
    let plain = measured_recall(&sq8, &emb, nprobe, k, false);
    assert!(
        plain >= 0.95,
        "IVF+SQ8 (no rescore) recall@10 gate failed: {plain:.4} < 0.95"
    );

    // And the f32 IVF control at the same probe: SQ8 must not trail it by
    // more than a whisker.
    let mut rng = StdRng::seed_from_u64(78);
    let f32_index = IvfIndex::build(&emb, nlist, Metric::L1, &mut rng);
    let control = measured_recall(&f32_index, &emb, nprobe, k, false);
    assert!(
        rescored >= control - 0.02,
        "quantization cost too much recall: sq8 {rescored:.4} vs f32 {control:.4}"
    );
}

// The PQ acceptance gate: IVF+PQ recall@10 >= 0.90 *after rescoring* on
// the same clustered geometry — m-byte codes are far coarser than SQ8,
// so the deep (rescore_factor 32) over-fetch is what claws recall back.
#[test]
fn pq_recall_gate_at_partial_probe() {
    let (n, d, nlist, nprobe, k) = (4000, 32, 32, 8, 10);
    let emb = mixture(n, d, 16, 77);
    let mut rng = StdRng::seed_from_u64(78);
    let pq = IvfIndex::build_with(
        &emb,
        nlist,
        Metric::L1,
        Quantization::Pq { m: 4, nbits: 8 },
        32,
        &mut rng,
    );

    let rescored = measured_recall(&pq, &emb, nprobe, k, true);
    assert!(
        rescored >= 0.90,
        "IVF+PQ (rescored) recall@10 gate failed: {rescored:.4} < 0.90"
    );

    // And rescored PQ distances are exact (the whole point of the
    // over-fetch): every reported hit matches its brute-force distance.
    let q = emb.row(123);
    for (id, dist) in pq.search_rescored(q, k, nprobe, Some(&emb)) {
        assert_eq!(dist, Metric::L1.dist(q, emb.row(id as usize)));
    }
}

// The symmetric-scan acceptance gate: quantizing the query too must not
// drop rescored recall@10 below 0.90 (in practice it matches asymmetric
// almost exactly — the rescore absorbs the extra half-step of error).
#[test]
fn symmetric_recall_gate_at_partial_probe() {
    let (n, d, nlist, nprobe, k) = (4000, 32, 32, 8, 10);
    let emb = mixture(n, d, 16, 77);
    let mut rng = StdRng::seed_from_u64(78);
    let sym = IvfIndex::build_with_scan(
        &emb,
        nlist,
        Metric::L1,
        Quantization::Sq8,
        4,
        ScanMode::Symmetric,
        &mut rng,
    );
    let rescored = measured_recall(&sym, &emb, nprobe, k, true);
    assert!(
        rescored >= 0.90,
        "IVF+SQ8 symmetric (rescored) recall@10 gate failed: {rescored:.4} < 0.90"
    );
}

// The pq4 acceptance gate: nibble-packed 4-bit codes with a deep
// over-fetch must still clear rescored recall@10 >= 0.90.
#[test]
fn pq4_recall_gate_at_partial_probe() {
    let (n, d, nlist, nprobe, k) = (4000, 32, 32, 8, 10);
    let emb = mixture(n, d, 16, 77);
    let mut rng = StdRng::seed_from_u64(78);
    let pq4 = IvfIndex::build_with(
        &emb,
        nlist,
        Metric::L1,
        Quantization::Pq { m: 8, nbits: 4 },
        32,
        &mut rng,
    );
    assert!(pq4.pq_codebook().expect("pq").packed());
    let rescored = measured_recall(&pq4, &emb, nprobe, k, true);
    assert!(
        rescored >= 0.90,
        "IVF+PQ4 (rescored) recall@10 gate failed: {rescored:.4} < 0.90"
    );
}

// Rescored distances are exact f32 distances: merged rankings (e.g. the
// mutable index's buffer merge) can compare them against unquantized
// candidates without bias.
#[test]
fn rescored_distances_equal_brute_force_distances() {
    let emb = mixture(600, 16, 8, 91);
    let mut rng = StdRng::seed_from_u64(92);
    let sq8 = IvfIndex::build_with(&emb, 8, Metric::L1, Quantization::Sq8, 4, &mut rng);
    for qi in [3usize, 299, 599] {
        let q = emb.row(qi);
        let got = sq8.search_rescored(q, 5, 8, Some(&emb));
        for (id, dist) in got {
            let exact = Metric::L1.dist(q, emb.row(id as usize));
            assert_eq!(dist, exact, "id {id}: rescored distance not exact");
        }
    }
}
