//! The deterministic crash-point matrix (DESIGN.md §15): a scripted
//! writer runs against a WAL through `CrashPointFs`, which simulates a
//! `SIGKILL` at the N-th filesystem operation — for *every* N, in both
//! whole-op and torn-append (half-written record) modes. After each
//! crash the harness restarts, recovers from checkpoint + log tail, and
//! asserts the two durability invariants:
//!
//! 1. **No acknowledged write lost, nothing half-applied**: the
//!    recovered live set equals the state after some *prefix* of the
//!    script — never a state no op sequence produced — and that prefix
//!    covers at least every acknowledged op. (An unacknowledged op may
//!    survive whole: its record can be durable even though the response
//!    was lost. It may never survive torn.)
//! 2. **Bit-exact kNN vs an always-in-memory oracle**: searches against
//!    the recovered index equal — ids and f64 distance bits — searches
//!    against a fresh in-memory index fed the same prefix. The script
//!    uses exact f32 storage, where recovery is bit-lossless; quantized
//!    sealed storage recovers within its codebook bound instead
//!    (DESIGN.md §15).

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use trajcl_index::wal::{
    apply_op, CheckpointEntry, CrashPointFs, Durability, RealFs, Wal, WalFs, WalOp,
};
use trajcl_index::{Metric, MutableIndex};

const DIM: usize = 4;
const METRIC: Metric = Metric::L1;

/// Self-cleaning scratch directory.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("trajcl-crashmatrix-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Deterministic dense vector for id/salt (splitmix64-expanded).
fn vec_for(id: u64, salt: u64) -> Vec<f32> {
    let mut x = id ^ (salt << 17) ^ 0x9e37_79b9_7f4a_7c15;
    (0..DIM)
        .map(|_| {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            ((z >> 40) as f32) / 1000.0 - 8.0
        })
        .collect()
}

/// The scripted workload: upserts, replacements, removes and two
/// compactions (each compaction checkpoints, exercising the
/// create/fsync/rename/truncate boundaries mid-matrix).
fn script() -> Vec<WalOp> {
    let up = |id: u64, salt: u64| WalOp::Upsert {
        id,
        vector: vec_for(id, salt),
    };
    vec![
        up(1, 0),
        up(2, 0),
        up(3, 0),
        WalOp::Remove { id: 2 },
        up(4, 0),
        WalOp::Compact,
        up(5, 0),
        up(3, 1), // replace a sealed row
        WalOp::Remove { id: 1 },
        WalOp::Compact,
        up(6, 0),
        up(7, 0),
        WalOp::Remove { id: 4 },
        up(2, 2), // re-insert a previously removed id
    ]
}

fn fresh_index() -> MutableIndex {
    MutableIndex::new(DIM, METRIC, Some(2), 0)
}

/// Runs the scripted writer until completion or simulated crash,
/// returning how many ops were *acknowledged*. The serve-layer ordering
/// is reproduced exactly: append+fsync, then apply, then (for compacts)
/// checkpoint — an op only counts as acked once the whole sequence
/// succeeded, and the first failure aborts the run like a dead process.
fn run_workload(dir: &Path, fs: Arc<dyn WalFs>) -> usize {
    let Ok((wal, recovery)) = Wal::open(dir, "s0", Durability::Fsync, fs) else {
        return 0;
    };
    let index = fresh_index();
    if let Some(ckpt) = &recovery.checkpoint {
        for e in &ckpt.entries {
            index.upsert(e.id, e.vector.clone());
        }
    }
    for op in &recovery.ops {
        apply_op(&index, op);
    }
    let mut acked = 0;
    for op in script() {
        if wal.append_durable(&op).is_err() {
            return acked;
        }
        apply_op(&index, &op);
        if matches!(op, WalOp::Compact) {
            let entries: Vec<CheckpointEntry> = index
                .snapshot()
                .live_entries()
                .into_iter()
                .map(|(id, vector)| CheckpointEntry {
                    id,
                    dirty: id % 2 == 0, // exercise both dirty-bit values
                    vector,
                })
                .collect();
            if wal.checkpoint(DIM, &entries).is_err() {
                return acked;
            }
        }
        acked += 1;
    }
    acked
}

/// Restart: recover an index from whatever the crash left on disk.
fn recover(dir: &Path) -> MutableIndex {
    let (_wal, recovery) =
        Wal::open(dir, "s0", Durability::Fsync, Arc::new(RealFs)).expect("recovery open");
    let index = fresh_index();
    if let Some(ckpt) = &recovery.checkpoint {
        assert_eq!(ckpt.dim, DIM, "checkpoint dimensionality");
        index.clear();
        for e in &ckpt.entries {
            index.upsert(e.id, e.vector.clone());
        }
    }
    for op in &recovery.ops {
        apply_op(&index, op);
    }
    index
}

/// Live id -> vector-bit-pattern map after applying `ops[..p]`.
fn oracle_state(p: usize) -> HashMap<u64, Vec<u32>> {
    let mut live = HashMap::new();
    for op in script().iter().take(p) {
        match op {
            WalOp::Upsert { id, vector } => {
                live.insert(*id, vector.iter().map(|v| v.to_bits()).collect());
            }
            WalOp::Remove { id } => {
                live.remove(id);
            }
            WalOp::Compact => {}
        }
    }
    live
}

/// Asserts the recovered index equals the state after some script prefix
/// covering every acked op, and that its kNN answers are bit-exact
/// against an in-memory oracle index fed that same prefix.
fn verify_recovery(dir: &Path, acked: usize, label: &str) {
    let recovered = recover(dir);
    let got: HashMap<u64, Vec<u32>> = recovered
        .snapshot()
        .live_entries()
        .into_iter()
        .map(|(id, v)| (id, v.iter().map(|x| x.to_bits()).collect()))
        .collect();
    let total = script().len();
    let Some(prefix) = (acked..=total).find(|&p| oracle_state(p) == got) else {
        panic!(
            "{label}: recovered state matches no script prefix >= acked {acked} \
             (live ids {:?})",
            {
                let mut ids: Vec<u64> = got.keys().copied().collect();
                ids.sort_unstable();
                ids
            }
        );
    };
    // Bit-exact kNN: replay the matched prefix into a fresh in-memory
    // index (the oracle never touched a disk) and compare full searches.
    let oracle = fresh_index();
    for op in script().iter().take(prefix) {
        apply_op(&oracle, op);
    }
    let mut queries: Vec<Vec<f32>> = (1..=7).map(|id| vec_for(id, 0)).collect();
    queries.push(vec![0.0; DIM]);
    queries.push(vec![-4.0, 2.0, -1.0, 5.5]);
    for (qi, q) in queries.iter().enumerate() {
        let got_hits: Vec<(u64, u64)> = recovered
            .search(q, 3, usize::MAX)
            .into_iter()
            .map(|(id, d)| (id, d.to_bits()))
            .collect();
        let want_hits: Vec<(u64, u64)> = oracle
            .search(q, 3, usize::MAX)
            .into_iter()
            .map(|(id, d)| (id, d.to_bits()))
            .collect();
        assert_eq!(
            got_hits, want_hits,
            "{label}: query {qi} diverges from the in-memory oracle (prefix {prefix})"
        );
    }
}

/// The full matrix: crash at every filesystem-operation boundary, in
/// whole-op mode (covers pre-fsync, post-fsync, mid-checkpoint-rename,
/// mid-truncate — a crash *after* op N is a crash *before* op N+1) and
/// torn-append mode (a half-written record reaches the disk).
#[test]
fn crash_point_matrix_recovers_every_boundary() {
    // Dry run under a counting-only injector to learn the op total.
    let total_fs_ops = {
        let tmp = TempDir::new("count");
        let fs = Arc::new(CrashPointFs::unlimited());
        let acked = run_workload(&tmp.0, fs.clone());
        assert_eq!(acked, script().len(), "clean run must ack everything");
        verify_recovery(&tmp.0, acked, "clean run");
        fs.ops()
    };
    assert!(
        total_fs_ops > 30,
        "script too small to exercise the matrix ({total_fs_ops} fs ops)"
    );
    for partial in [false, true] {
        for point in 0..total_fs_ops {
            let label = format!(
                "crash at fs op {point}/{total_fs_ops} ({} mode)",
                if partial { "torn-append" } else { "whole-op" }
            );
            let tmp = TempDir::new(&format!("p{}-{point}", u8::from(partial)));
            let fs = Arc::new(CrashPointFs::new(point, partial));
            let acked = run_workload(&tmp.0, fs.clone());
            assert!(fs.crashed(), "{label}: injector never fired");
            assert!(acked < script().len() || point >= total_fs_ops, "{label}");
            verify_recovery(&tmp.0, acked, &label);
        }
    }
}

/// Crashing *during recovery itself* (the torn-tail truncate) must leave
/// a state the next recovery still handles.
#[test]
fn crash_during_recovery_truncate_is_recoverable() {
    let tmp = TempDir::new("rerecover");
    {
        let (wal, _) = Wal::open(&tmp.0, "s0", Durability::Fsync, Arc::new(RealFs)).expect("open");
        wal.append_durable(&WalOp::Upsert {
            id: 1,
            vector: vec_for(1, 0),
        })
        .expect("append");
        wal.append_durable(&WalOp::Upsert {
            id: 2,
            vector: vec_for(2, 0),
        })
        .expect("append");
    }
    // Tear the tail by hand, then crash at the recovery truncate.
    let log = tmp.0.join("s0.log");
    let bytes = std::fs::read(&log).expect("read log");
    std::fs::write(&log, &bytes[..bytes.len() - 3]).expect("tear");
    let fs = Arc::new(CrashPointFs::new(0, false));
    assert!(Wal::open(&tmp.0, "s0", Durability::Fsync, fs).is_err());
    // The next (healthy) recovery still lands on the durable prefix.
    let recovered = recover(&tmp.0);
    let ids: Vec<u64> = recovered
        .snapshot()
        .live_entries()
        .into_iter()
        .map(|(id, _)| id)
        .collect();
    assert_eq!(ids, vec![1]);
}

/// Double crash: die once mid-script, recover, resume appending to the
/// same log, die again, recover again — state must still be a prefix of
/// the combined history.
#[test]
fn repeated_crashes_compose() {
    let tmp = TempDir::new("double");
    let fs1 = Arc::new(CrashPointFs::new(9, true));
    let acked1 = run_workload(&tmp.0, fs1.clone());
    assert!(fs1.crashed());
    verify_recovery(&tmp.0, acked1, "first crash");
    // Second run replays recovery, then re-runs the script on top (every
    // id rewritten, so the final state is the full-script state).
    let fs2 = Arc::new(CrashPointFs::new(23, false));
    let _acked2 = run_workload(&tmp.0, fs2.clone());
    assert!(fs2.crashed());
    // After a full clean pass, the state must equal the complete script.
    let acked3 = run_workload(&tmp.0, Arc::new(RealFs));
    assert_eq!(acked3, script().len());
    let recovered = recover(&tmp.0);
    let got: HashMap<u64, Vec<u32>> = recovered
        .snapshot()
        .live_entries()
        .into_iter()
        .map(|(id, v)| (id, v.iter().map(|x| x.to_bits()).collect()))
        .collect();
    assert_eq!(got, oracle_state(script().len()));
}
