//! Property tests for decoder robustness: arbitrarily corrupted `IVF2`
//! (SQ8) and `IVF3` (PQ) blobs must either be rejected (`None`) or decode
//! to an index that answers a search — never panic, never index out of
//! bounds. This is the checked-in distillation of the `trajcl audit`
//! fuzzer's IVF target (which runs ~100k mutations per CI run); these
//! cases replay the attack shapes deterministically under `cargo test`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use trajcl_index::{IvfIndex, Metric, Quantization};
use trajcl_tensor::{Shape, Tensor};

/// A valid quantized blob to corrupt (geometry varies with the seed).
fn valid_blob(quant: Quantization, n: usize, d: usize, nlist: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let emb = Tensor::randn(Shape::d2(n, d), 0.0, 1.0, &mut rng);
    IvfIndex::build_with(&emb, nlist, Metric::L1, quant, 4, &mut rng).to_bytes()
}

/// The decode-or-reject contract: whatever `from_bytes` accepts must be
/// searchable end to end.
fn assert_decode_contract(bytes: &[u8]) {
    if let Some(idx) = IvfIndex::from_bytes(bytes) {
        let query = vec![0.5f32; idx.dim()];
        let hits = idx.search(&query, 3, 2);
        assert!(hits.len() <= idx.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Truncation at every kind of boundary: header, centroid table,
    // inverted lists, codebook, code matrix.
    #[test]
    fn truncated_sq8_and_pq_blobs_never_panic(
        cut_frac in 0.0f64..1.0,
        sq8 in 0u32..2,
        seed in 0u64..500,
    ) {
        let quant = if sq8 == 1 {
            Quantization::Sq8
        } else {
            Quantization::Pq { m: 2, nbits: 4 }
        };
        let blob = valid_blob(quant, 48, 8, 4, seed);
        let cut = ((blob.len() as f64) * cut_frac) as usize;
        let truncated = &blob[..cut.min(blob.len())];
        // A strict prefix can never be a valid blob (the trailing-bytes
        // check makes encodings self-delimiting), so anything short of
        // the full length must be rejected outright.
        if truncated.len() < blob.len() {
            prop_assert!(IvfIndex::from_bytes(truncated).is_none());
        } else {
            assert_decode_contract(truncated);
        }
    }

    // Random byte corruption anywhere in the blob.
    #[test]
    fn bitflipped_blobs_decode_or_reject(
        flips in prop::collection::vec((0usize..4096, 0u32..8), 1..8),
        sq8 in 0u32..2,
        seed in 0u64..500,
    ) {
        let quant = if sq8 == 1 {
            Quantization::Sq8
        } else {
            Quantization::Pq { m: 4, nbits: 4 }
        };
        let mut blob = valid_blob(quant, 40, 8, 3, seed);
        for (pos, bit) in flips {
            let at = pos % blob.len();
            blob[at] ^= 1 << bit;
        }
        assert_decode_contract(&blob);
    }

    // Length-field attacks: interesting u32s spliced over any aligned or
    // unaligned offset (counts, list lengths, ksub, ...).
    #[test]
    fn spliced_length_fields_decode_or_reject(
        at_frac in 0.0f64..1.0,
        value_idx in 0usize..9,
        sq8 in 0u32..2,
        seed in 0u64..500,
    ) {
        const INTERESTING: [u32; 9] =
            [0, 1, 2, 0xff, 0x100, 0xffff, 0x00ff_ffff, 0x7fff_ffff, u32::MAX];
        let value = INTERESTING[value_idx];
        let quant = if sq8 == 1 {
            Quantization::Sq8
        } else {
            Quantization::Pq { m: 2, nbits: 8 }
        };
        let mut blob = valid_blob(quant, 64, 6, 5, seed);
        let at = ((blob.len() - 4) as f64 * at_frac) as usize;
        blob[at..at + 4].copy_from_slice(&value.to_le_bytes());
        assert_decode_contract(&blob);
    }

    // Trailing garbage after a valid encoding must be rejected (the
    // format is self-delimiting).
    #[test]
    fn extended_blobs_are_rejected(
        extra in prop::collection::vec(0u32..256, 1..32),
        seed in 0u64..500,
    ) {
        let mut blob = valid_blob(Quantization::Sq8, 32, 8, 3, seed);
        blob.extend(extra.into_iter().map(|b| b as u8));
        prop_assert!(IvfIndex::from_bytes(&blob).is_none());
    }
}
