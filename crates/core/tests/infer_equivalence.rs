//! Serving-path equivalence: the tape-free infer forward must reproduce
//! the tape forward for every encoder variant, and the `InferCtx` scratch
//! arena must never leak state between batches.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;
use trajcl_core::{EncoderVariant, Featurizer, TrajClConfig, TrajClModel};
use trajcl_geo::{Bbox, Grid, Point, SpatialNorm, Trajectory};
use trajcl_nn::Fwd;
use trajcl_tensor::{InferCtx, Shape, Tape, Tensor};

const VARIANTS: [EncoderVariant; 3] = [
    EncoderVariant::Dual,
    EncoderVariant::VanillaMsm,
    EncoderVariant::Concat,
];

/// One model + featurizer per encoder variant, built once.
fn models() -> &'static Vec<(TrajClModel, Featurizer)> {
    static MODELS: OnceLock<Vec<(TrajClModel, Featurizer)>> = OnceLock::new();
    MODELS.get_or_init(|| {
        VARIANTS
            .iter()
            .map(|&variant| {
                let mut rng = StdRng::seed_from_u64(7);
                let cfg = TrajClConfig::test_default();
                let region = Bbox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0));
                let grid = Grid::new(region, 100.0);
                let table = Tensor::randn(Shape::d2(grid.num_cells(), cfg.dim), 0.0, 0.5, &mut rng);
                let feat =
                    Featurizer::new(grid, table, SpatialNorm::new(region, 100.0), cfg.max_len);
                let model = TrajClModel::new(&cfg, variant, &mut rng);
                (model, feat)
            })
            .collect()
    })
}

fn traj(n: usize, y: f64) -> Trajectory {
    (0..n)
        .map(|i| Point::new(30.0 + i as f64 * 35.0, y + (i % 3) as f64 * 15.0))
        .collect()
}

fn batch_of(lens: &[usize], y0: f64) -> Vec<Trajectory> {
    lens.iter()
        .enumerate()
        .map(|(i, &n)| traj(n, y0 + i as f64 * 70.0))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn infer_forward_matches_tape_forward_all_variants(
        lens in prop::collection::vec(2usize..14, 1..5),
        y0 in 50.0f64..800.0,
    ) {
        let trajs = batch_of(&lens, y0);
        for (model, feat) in models() {
            let batch = feat.featurize(&trajs).expect("featurize");

            let mut tape = Tape::new();
            let mut rng = StdRng::seed_from_u64(0);
            let mut f = Fwd::new(&mut tape, &model.store, &mut rng, false);
            let h_tape = model.forward_h(&mut f, &batch);

            let mut ctx = InferCtx::new();
            let h_infer = model.infer_h(&mut ctx, &batch);

            prop_assert!(
                h_infer.approx_eq(tape.value(h_tape), 1e-5),
                "{}: infer forward diverged from tape forward (lens {lens:?})",
                model.encoder.variant().name()
            );
        }
    }

    #[test]
    fn scratch_reuse_across_batches_leaks_nothing(
        lens in prop::collection::vec(2usize..14, 1..5),
        stir in prop::collection::vec(2usize..20, 1..7),
    ) {
        // One shared InferCtx serves several differently-shaped batches;
        // re-embedding the first batch must reproduce identical bytes.
        for (model, feat) in models() {
            let trajs = batch_of(&lens, 120.0);
            let other = batch_of(&stir, 430.0);
            let mut ctx = InferCtx::new();
            let first = model.embed_chunked_with(&mut ctx, feat, &trajs, 64);
            let _ = model.embed_chunked_with(&mut ctx, feat, &other, 64);
            let again = model.embed_chunked_with(&mut ctx, feat, &trajs, 64);
            prop_assert!(
                first.approx_eq(&again, 0.0),
                "{}: recycled scratch buffers changed the embedding",
                model.encoder.variant().name()
            );
        }
    }
}
