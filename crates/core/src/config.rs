//! TrajCL hyper-parameters.

use trajcl_data::{AugmentParams, Augmentation};

/// Full model + training configuration.
///
/// Paper defaults (§V-A): `d = 256`, 4 heads, 2 encoder layers, cell side
/// 100 m, queue 2048, momentum 0.999, point masking + trajectory truncating
/// as the two default views, Adam at 1e-3 halved every 5 epochs, ≤ 20
/// epochs with early stop after 5 non-improving epochs.
/// [`TrajClConfig::scaled_default`] shrinks the width for CPU-class runs;
/// every experiment binary accepts overrides.
#[derive(Debug, Clone)]
pub struct TrajClConfig {
    /// Embedding dimensionality `d` (structural feature / model width).
    pub dim: usize,
    /// Attention heads `h`.
    pub heads: usize,
    /// Encoder layers (`#layers`).
    pub layers: usize,
    /// Feed-forward hidden width inside encoder layers.
    pub ffn_hidden: usize,
    /// Projection-head output width (InfoNCE space).
    pub proj_dim: usize,
    /// Maximum points per trajectory (`l`); longer inputs are truncated.
    pub max_len: usize,
    /// Dropout probability.
    pub dropout: f32,
    /// InfoNCE temperature τ.
    pub temperature: f32,
    /// MoCo momentum coefficient `m` (paper: 0.999).
    pub momentum: f32,
    /// Negative-sample queue capacity |Q_neg|.
    pub queue_size: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Maximum training epochs.
    pub max_epochs: usize,
    /// Early-stop patience in epochs.
    pub patience: usize,
    /// Augmentation generating view 1 (default: point masking).
    pub aug1: Augmentation,
    /// Augmentation generating view 2 (default: trajectory truncating).
    pub aug2: Augmentation,
    /// Augmentation parameters (ρ_m, ρ_d, ρ_b, ρ_p).
    pub aug_params: AugmentParams,
}

impl TrajClConfig {
    /// Paper-shaped configuration at full width (d = 256). Heavy on CPU;
    /// prefer [`TrajClConfig::scaled_default`] for local runs.
    pub fn paper_default() -> Self {
        TrajClConfig {
            dim: 256,
            heads: 4,
            layers: 2,
            ffn_hidden: 512,
            proj_dim: 128,
            max_len: 200,
            dropout: 0.1,
            temperature: 0.07,
            momentum: 0.999,
            queue_size: 2048,
            batch_size: 64,
            max_epochs: 20,
            patience: 5,
            aug1: Augmentation::PointMask,
            aug2: Augmentation::Truncate,
            aug_params: AugmentParams::default(),
        }
    }

    /// CPU-scale configuration used by tests and the scaled experiment
    /// harness (d = 64); architecture identical to the paper's.
    pub fn scaled_default() -> Self {
        TrajClConfig {
            dim: 64,
            heads: 4,
            layers: 2,
            ffn_hidden: 128,
            proj_dim: 32,
            max_len: 200,
            dropout: 0.1,
            temperature: 0.07,
            momentum: 0.99,
            queue_size: 512,
            batch_size: 32,
            max_epochs: 6,
            patience: 3,
            aug1: Augmentation::PointMask,
            aug2: Augmentation::Truncate,
            aug_params: AugmentParams::default(),
        }
    }

    /// Tiny configuration for unit tests (seconds, not minutes).
    pub fn test_default() -> Self {
        TrajClConfig {
            dim: 16,
            heads: 2,
            layers: 1,
            ffn_hidden: 32,
            proj_dim: 8,
            max_len: 64,
            dropout: 0.0,
            temperature: 0.07,
            momentum: 0.9,
            queue_size: 64,
            batch_size: 8,
            max_epochs: 2,
            patience: 2,
            aug1: Augmentation::PointMask,
            aug2: Augmentation::Truncate,
            aug_params: AugmentParams::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = TrajClConfig::paper_default();
        assert_eq!(c.dim, 256);
        assert_eq!(c.heads, 4);
        assert_eq!(c.layers, 2);
        assert_eq!(c.queue_size, 2048);
        assert_eq!(c.max_epochs, 20);
        assert_eq!(c.patience, 5);
        assert!((c.momentum - 0.999).abs() < 1e-9);
        assert_eq!(c.aug1, Augmentation::PointMask);
        assert_eq!(c.aug2, Augmentation::Truncate);
        assert!((c.aug_params.rho_d - 0.3).abs() < 1e-9);
        assert!((c.aug_params.rho_b - 0.7).abs() < 1e-9);
        assert!((c.aug_params.rho_m - 100.0).abs() < 1e-9);
        assert!((c.aug_params.rho_p - 100.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_keeps_architecture() {
        let p = TrajClConfig::paper_default();
        let s = TrajClConfig::scaled_default();
        assert_eq!(p.heads, s.heads);
        assert_eq!(p.layers, s.layers);
        assert_eq!(p.aug1, s.aug1);
        assert_eq!(p.aug2, s.aug2);
        assert!(s.dim < p.dim);
    }
}
