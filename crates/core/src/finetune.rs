//! Fine-tuning a pre-trained TrajCL encoder to approximate a heuristic
//! similarity measure (§V-F).
//!
//! Protocol: attach a two-layer MLP (each layer of width `d`) on top of the
//! frozen-or-partially-frozen encoder and regress heuristic similarity with
//! an MSE loss. `TrajCL` fine-tunes the MLP plus the *last* encoder layer;
//! `TrajCL*` fine-tunes all layers.
//!
//! Similarity targets follow the NeuTraj-family convention the supervised
//! baselines use: `s = exp(-d_heuristic / σ)` with `σ` the mean heuristic
//! distance over the training pairs; the model predicts
//! `ŝ = exp(-‖g(h_a) − g(h_b)‖₁)`, so ranking by predicted similarity is
//! ranking by L1 distance in the refined embedding space.

use crate::featurizer::Featurizer;
use crate::model::TrajClModel;
use rand::Rng;
use trajcl_geo::Trajectory;
use trajcl_measures::HeuristicMeasure;
use trajcl_nn::{Adam, Fwd, InferFwd, Mlp, ParamStore};
use trajcl_tensor::{InferCtx, Shape, Tape, Tensor};

/// Which encoder parameters stay trainable during fine-tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinetuneScope {
    /// Fine-tune the regression head plus the last encoder layer
    /// (the paper's `TrajCL`).
    LastLayer,
    /// Fine-tune everything (`TrajCL*`).
    AllLayers,
    /// Freeze the encoder entirely (head only) — extra ablation.
    HeadOnly,
}

/// Fine-tuning hyper-parameters.
#[derive(Debug, Clone)]
pub struct FinetuneConfig {
    /// Trainable-parameter scope.
    pub scope: FinetuneScope,
    /// Number of (anchor, other) training pairs sampled per epoch.
    pub pairs_per_epoch: usize,
    /// Pairs per optimisation step.
    pub batch_pairs: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
}

impl Default for FinetuneConfig {
    fn default() -> Self {
        FinetuneConfig {
            scope: FinetuneScope::LastLayer,
            pairs_per_epoch: 512,
            batch_pairs: 32,
            epochs: 5,
            lr: 1e-3,
        }
    }
}

/// A fine-tuned estimator: encoder + regression head, usable as a fast
/// approximation of the target heuristic measure.
pub struct FinetunedEstimator {
    store: ParamStore,
    model: TrajClModel,
    head: Mlp,
    sigma: f64,
}

impl FinetunedEstimator {
    /// Refined embeddings `g(h)` for a set of trajectories `(N, d)`,
    /// computed through the tape-free serving path.
    pub fn embed(&self, featurizer: &Featurizer, trajs: &[Trajectory]) -> Tensor {
        self.embed_chunked(featurizer, trajs, self.model.cfg.batch_size)
    }

    /// Like [`FinetunedEstimator::embed`] with an explicit chunk size.
    pub fn embed_chunked(
        &self,
        featurizer: &Featurizer,
        trajs: &[Trajectory],
        batch: usize,
    ) -> Tensor {
        let mut ctx = InferCtx::new();
        self.embed_chunked_with(&mut ctx, featurizer, trajs, batch)
    }

    /// Like [`FinetunedEstimator::embed_chunked`] but reusing a
    /// caller-owned [`InferCtx`] (scratch buffers persist across calls).
    pub fn embed_chunked_with(
        &self,
        ctx: &mut InferCtx,
        featurizer: &Featurizer,
        trajs: &[Trajectory],
        batch: usize,
    ) -> Tensor {
        let d = self.model.cfg.dim;
        let mut out = Tensor::zeros(Shape::d2(trajs.len(), d));
        let mut row = 0usize;
        for chunk in trajs.chunks(batch.max(1)) {
            let inputs = featurizer.featurize(chunk).expect("embed: non-empty chunk");
            let mut f = InferFwd::new(ctx, &self.store);
            let h = self.model.encoder.infer_forward(&mut f, &inputs);
            let g = self.head.infer_forward(&mut f, &h);
            out.data_mut()[row * d..(row + chunk.len()) * d].copy_from_slice(g.data());
            ctx.recycle(h);
            ctx.recycle(g);
            row += chunk.len();
        }
        out
    }

    /// Predicted similarity for one refined-embedding pair (monotone in
    /// the L1 distance).
    pub fn similarity_from_embeddings(&self, a: &[f32], b: &[f32]) -> f64 {
        let l1: f32 = a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum();
        (-l1 as f64).exp()
    }

    /// The distance-normalisation constant learned from the training pairs.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

/// Fine-tunes a pre-trained model towards `measure` on the `pool` of
/// downstream trajectories. The input model is cloned; the pre-trained
/// weights are not modified.
pub fn finetune(
    pretrained: &TrajClModel,
    featurizer: &Featurizer,
    pool: &[Trajectory],
    measure: HeuristicMeasure,
    cfg: &FinetuneConfig,
    rng: &mut impl Rng,
) -> FinetunedEstimator {
    assert!(
        pool.len() >= 2,
        "need at least two trajectories to form pairs"
    );
    let d = pretrained.cfg.dim;
    let mut store = pretrained.store.clone();
    let head = Mlp::new(&mut store, "ft_head", d, d, d, 0.0, rng);

    // Trainable-name predicate per scope.
    let last_layer = pretrained.encoder.num_layers().saturating_sub(1);
    let last_prefix = format!("enc.layer{last_layer}");
    let keep = move |name: &str, scope: FinetuneScope| -> bool {
        match scope {
            FinetuneScope::HeadOnly => name.starts_with("ft_head"),
            FinetuneScope::LastLayer => {
                name.starts_with("ft_head") || name.starts_with(&last_prefix)
            }
            FinetuneScope::AllLayers => !name.starts_with("proj"),
        }
    };

    // Calibrate σ on a sample of pairs.
    let mut sample_dists = Vec::new();
    for _ in 0..64.min(pool.len() * (pool.len() - 1) / 2) {
        let i = rng.gen_range(0..pool.len());
        let mut j = rng.gen_range(0..pool.len());
        if i == j {
            j = (j + 1) % pool.len();
        }
        sample_dists.push(measure.distance(&pool[i], &pool[j]));
    }
    let sigma = (sample_dists.iter().sum::<f64>() / sample_dists.len().max(1) as f64).max(1e-9);

    let mut opt = Adam::new(cfg.lr);
    let scope = cfg.scope;
    for _epoch in 0..cfg.epochs {
        let mut remaining = cfg.pairs_per_epoch;
        while remaining > 0 {
            let n_pairs = cfg.batch_pairs.min(remaining);
            remaining -= n_pairs;
            // Sample pairs and labels.
            let mut lefts = Vec::with_capacity(n_pairs);
            let mut rights = Vec::with_capacity(n_pairs);
            let mut labels = Vec::with_capacity(n_pairs);
            for _ in 0..n_pairs {
                let i = rng.gen_range(0..pool.len());
                let mut j = rng.gen_range(0..pool.len());
                if i == j {
                    j = (j + 1) % pool.len();
                }
                lefts.push(pool[i].clone());
                rights.push(pool[j].clone());
                labels.push((measure.distance(&pool[i], &pool[j]) / sigma) as f32);
            }
            let lb = featurizer
                .featurize(&lefts)
                .expect("sampled pairs are non-empty");
            let rb = featurizer
                .featurize(&rights)
                .expect("sampled pairs are non-empty");

            let mut tape = Tape::new();
            {
                let mut f = Fwd::new(&mut tape, &store, rng, true);
                let ha = {
                    let h = pretrained.model_forward_h(&mut f, &lb);
                    head.forward(&mut f, h)
                };
                let hb = {
                    let h = pretrained.model_forward_h(&mut f, &rb);
                    head.forward(&mut f, h)
                };
                // Regress in log-similarity space: ŝ = exp(-‖ga-gb‖₁) and
                // s = exp(-d/σ) are matched by regressing the L1 embedding
                // distance against the σ-normalised heuristic distance,
                // which avoids needing an exp op on the tape and weights
                // near and far pairs evenly in distance space.
                let diff = f.tape.sub(ha, hb);
                let absd = f.tape.abs_op(diff);
                let ones = f.input(Tensor::ones(Shape::d2(d, 1)));
                let l1 = f.tape.matmul(absd, ones, false, false); // (B,1)
                let target = f.input(Tensor::from_vec(labels.clone(), Shape::d2(n_pairs, 1)));
                let err = f.tape.sub(l1, target);
                let sq = f.tape.mul(err, err);
                let loss = f.tape.mean_all(sq);
                let grads = f.tape.backward(loss);
                store.accumulate(grads.into_param_grads(f.tape));
            }
            store.zero_grads_where_not(|name| keep(name, scope));
            store.clip_grad_norm(5.0);
            opt.step(&mut store);
        }
    }
    FinetunedEstimator {
        store,
        model: pretrained.clone(),
        head,
        sigma,
    }
}

impl TrajClModel {
    /// Forward helper used by the fine-tuner (same as
    /// [`TrajClModel::forward_h`], named separately for clarity at the
    /// call site where the store differs from `self.store`).
    pub fn model_forward_h(
        &self,
        f: &mut Fwd,
        batch: &crate::featurizer::BatchInputs,
    ) -> trajcl_tensor::Var {
        self.forward_h(f, batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrajClConfig;
    use crate::encoder::EncoderVariant;
    use crate::model::l1_distances;
    use rand::{rngs::StdRng, SeedableRng};
    use trajcl_data::{hit_ratio, recall_k_at_m};
    use trajcl_geo::{Bbox, Grid, Point, SpatialNorm};

    fn setup() -> (TrajClModel, Featurizer, Vec<Trajectory>, StdRng) {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = TrajClConfig::test_default();
        let region = Bbox::new(Point::new(0.0, 0.0), Point::new(3000.0, 3000.0));
        let grid = Grid::new(region, 150.0);
        let table = Tensor::randn(Shape::d2(grid.num_cells(), cfg.dim), 0.0, 0.5, &mut rng);
        let feat = Featurizer::new(grid, table, SpatialNorm::new(region, 150.0), cfg.max_len);
        let model = TrajClModel::new(&cfg, EncoderVariant::Dual, &mut rng);
        use rand::Rng as _;
        let pool: Vec<Trajectory> = (0..24)
            .map(|_| {
                let y = rng.gen_range(100.0..2900.0);
                let x0 = rng.gen_range(0.0..800.0);
                (0..16)
                    .map(|i| Point::new(x0 + i as f64 * 90.0, y))
                    .collect()
            })
            .collect();
        (model, feat, pool, rng)
    }

    #[test]
    fn finetuning_improves_hausdorff_approximation() {
        let (model, feat, pool, mut rng) = setup();
        let cfg = FinetuneConfig {
            scope: FinetuneScope::AllLayers,
            pairs_per_epoch: 96,
            batch_pairs: 16,
            epochs: 4,
            lr: 2e-3,
        };
        let measure = HeuristicMeasure::Hausdorff;
        let est = finetune(&model, &feat, &pool[..16], measure, &cfg, &mut rng);

        // Evaluate HR@3 on held-out trajectories vs the untuned encoder.
        let eval = &pool[16..];
        let q = &eval[0];
        let true_d: Vec<f64> = eval.iter().map(|t| measure.distance(q, t)).collect();

        let tuned_emb = est.embed(&feat, eval);
        let tuned_q = est.embed(&feat, std::slice::from_ref(q));
        let tuned_d = l1_distances(&tuned_q, &tuned_emb);

        let raw_emb = model.embed(&feat, eval);
        let raw_q = model.embed(&feat, std::slice::from_ref(q));
        let raw_d = l1_distances(&raw_q, &raw_emb);

        let tuned_hr = hit_ratio(&true_d, &tuned_d, 3);
        let raw_hr = hit_ratio(&true_d, &raw_d, 3);
        assert!(
            tuned_hr >= raw_hr,
            "fine-tuning should not hurt: tuned {tuned_hr} vs raw {raw_hr}"
        );
        assert!(recall_k_at_m(&true_d, &tuned_d, 3, 5) > 0.0);
    }

    #[test]
    fn head_only_scope_freezes_encoder() {
        let (model, feat, pool, mut rng) = setup();
        let cfg = FinetuneConfig {
            scope: FinetuneScope::HeadOnly,
            pairs_per_epoch: 16,
            batch_pairs: 8,
            epochs: 1,
            lr: 1e-2,
        };
        let est = finetune(
            &model,
            &feat,
            &pool,
            HeuristicMeasure::Frechet,
            &cfg,
            &mut rng,
        );
        // All encoder params must equal the pre-trained values.
        for id in model.store.ids() {
            let name = model.store.name(id).to_string();
            let before = model.store.value(id);
            let after = est.store.value(est.store.ids_where(|n| n == name)[0]);
            assert!(
                before.approx_eq(after, 0.0),
                "frozen param {name} changed during head-only fine-tuning"
            );
        }
    }

    #[test]
    fn last_layer_scope_moves_only_selected_params() {
        let (model, feat, pool, mut rng) = setup();
        let cfg = FinetuneConfig {
            scope: FinetuneScope::LastLayer,
            pairs_per_epoch: 16,
            batch_pairs: 8,
            epochs: 1,
            lr: 1e-2,
        };
        let est = finetune(
            &model,
            &feat,
            &pool,
            HeuristicMeasure::Hausdorff,
            &cfg,
            &mut rng,
        );
        let last = model.encoder.num_layers() - 1;
        let last_prefix = format!("enc.layer{last}");
        let mut moved_last = false;
        for id in model.store.ids() {
            let name = model.store.name(id).to_string();
            let before = model.store.value(id);
            let after = est.store.value(est.store.ids_where(|n| n == name)[0]);
            let changed = !before.approx_eq(after, 0.0);
            if name.starts_with(&last_prefix) {
                moved_last |= changed;
            } else if !name.starts_with("ft_head") && !name.starts_with("proj") {
                assert!(!changed, "frozen param {name} moved");
            }
        }
        assert!(moved_last, "last encoder layer should be fine-tuned");
    }
}
