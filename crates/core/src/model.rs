//! The TrajCL model: DualSTB encoder + projection head, with batched
//! inference helpers.

use crate::config::TrajClConfig;
use crate::encoder::{DualStbEncoder, EncoderVariant};
use crate::featurizer::Featurizer;
use rand::Rng;
use trajcl_geo::Trajectory;
use trajcl_nn::{Fwd, InferFwd, Mlp, ParamStore};
use trajcl_tensor::{pool, InferCtx, Shape, Tensor, Var};

/// Encoder `F` plus projection head `P` (Eq. 1) and their parameters.
#[derive(Clone)]
pub struct TrajClModel {
    /// All model parameters.
    pub store: ParamStore,
    /// The backbone encoder.
    pub encoder: DualStbEncoder,
    proj: Mlp,
    /// The configuration the model was built with.
    pub cfg: TrajClConfig,
}

impl TrajClModel {
    /// Builds a model of the given architecture variant.
    pub fn new(cfg: &TrajClConfig, variant: EncoderVariant, rng: &mut impl Rng) -> Self {
        let mut store = ParamStore::new();
        let encoder = DualStbEncoder::new(
            &mut store,
            "enc",
            variant,
            cfg.dim,
            cfg.heads,
            cfg.layers,
            cfg.ffn_hidden,
            cfg.dropout,
            rng,
        );
        let proj = Mlp::new(&mut store, "proj", cfg.dim, cfg.dim, cfg.proj_dim, 0.0, rng);
        TrajClModel {
            store,
            encoder,
            proj,
            cfg: cfg.clone(),
        }
    }

    /// Forward to the backbone embedding `h` `(B, d)` on an existing tape.
    pub fn forward_h(&self, f: &mut Fwd, batch: &crate::featurizer::BatchInputs) -> Var {
        self.encoder.forward(f, batch)
    }

    /// Forward to the L2-normalised projection `z` `(B, proj_dim)` used by
    /// the InfoNCE loss.
    pub fn forward_z(&self, f: &mut Fwd, batch: &crate::featurizer::BatchInputs) -> Var {
        let h = self.forward_h(f, batch);
        let z = self.proj.forward(f, h);
        f.tape.l2_normalize_rows(z)
    }

    /// Tape-free backbone forward on an [`InferCtx`]: the serving-path
    /// counterpart of [`TrajClModel::forward_h`].
    pub fn infer_h(&self, ctx: &mut InferCtx, batch: &crate::featurizer::BatchInputs) -> Tensor {
        let mut f = InferFwd::new(ctx, &self.store);
        self.encoder.infer_forward(&mut f, batch)
    }

    /// Inference: embeds trajectories into `(N, d)` backbone embeddings,
    /// processing `cfg.batch_size` at a time through the tape-free serving
    /// path (dropout statically elided — no RNG involved).
    pub fn embed(&self, featurizer: &Featurizer, trajs: &[Trajectory]) -> Tensor {
        self.embed_chunked(featurizer, trajs, self.cfg.batch_size)
    }

    /// Like [`TrajClModel::embed`] with an explicit chunk size — callers
    /// that already batch (the engine) pass their own chunk through as one
    /// forward pass.
    pub fn embed_chunked(
        &self,
        featurizer: &Featurizer,
        trajs: &[Trajectory],
        batch: usize,
    ) -> Tensor {
        let mut ctx = InferCtx::new();
        self.embed_chunked_with(&mut ctx, featurizer, trajs, batch)
    }

    /// Like [`TrajClModel::embed_chunked`] but reusing a caller-owned
    /// [`InferCtx`], so scratch buffers persist across calls (the engine
    /// backends hold one per serving path).
    pub fn embed_chunked_with(
        &self,
        ctx: &mut InferCtx,
        featurizer: &Featurizer,
        trajs: &[Trajectory],
        batch: usize,
    ) -> Tensor {
        let d = self.cfg.dim;
        let mut out = Tensor::zeros(Shape::d2(trajs.len(), d));
        let mut row = 0usize;
        for chunk in trajs.chunks(batch.max(1)) {
            let inputs = featurizer.featurize(chunk).expect("embed: non-empty chunk");
            let h = self.infer_h(ctx, &inputs);
            out.data_mut()[row * d..(row + chunk.len()) * d].copy_from_slice(h.data());
            ctx.recycle(h);
            row += chunk.len();
        }
        out
    }
}

/// Row-wise L1 distance matrix between `(Q, d)` and `(N, d)` embedding
/// tables (the similarity function of the problem statement, computed in
/// parallel). Row-major `Q × N` output.
pub fn l1_distances(queries: &Tensor, database: &Tensor) -> Vec<f64> {
    let d = queries.shape().last();
    assert_eq!(d, database.shape().last(), "embedding dims differ");
    let q = queries.shape().rows();
    let n = database.shape().rows();
    let mut out = vec![0.0f64; q * n];
    let rows_per = pool::rows_per_lane(q);
    let qd = queries.data();
    let dd = database.data();
    pool::par_chunks_mut(&mut out, rows_per * n, |c, chunk| {
        let start = c * rows_per;
        for (r, row) in chunk.chunks_mut(n).enumerate() {
            let qrow = &qd[(start + r) * d..(start + r + 1) * d];
            for (j, slot) in row.iter_mut().enumerate() {
                let drow = &dd[j * d..(j + 1) * d];
                let mut acc = 0.0f32;
                for (a, b) in qrow.iter().zip(drow) {
                    acc += (a - b).abs();
                }
                *slot = acc as f64;
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use trajcl_geo::{Bbox, Grid, Point, SpatialNorm};
    use trajcl_tensor::Tape;

    fn setup() -> (TrajClModel, Featurizer, StdRng) {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = TrajClConfig::test_default();
        let region = Bbox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0));
        let grid = Grid::new(region, 100.0);
        let table = Tensor::randn(Shape::d2(grid.num_cells(), cfg.dim), 0.0, 0.5, &mut rng);
        let feat = Featurizer::new(grid, table, SpatialNorm::new(region, 100.0), cfg.max_len);
        let model = TrajClModel::new(&cfg, EncoderVariant::Dual, &mut rng);
        (model, feat, rng)
    }

    fn traj(n: usize, y: f64) -> Trajectory {
        (0..n)
            .map(|i| Point::new(30.0 + i as f64 * 35.0, y))
            .collect()
    }

    #[test]
    fn embed_shapes_and_determinism() {
        let (model, feat, _rng) = setup();
        let trajs: Vec<Trajectory> = (0..5)
            .map(|i| traj(6 + i, 100.0 * (i + 1) as f64))
            .collect();
        let e1 = model.embed(&feat, &trajs);
        let e2 = model.embed(&feat, &trajs);
        assert_eq!(e1.shape(), Shape::d2(5, model.cfg.dim));
        assert!(
            e1.approx_eq(&e2, 0.0),
            "eval-mode embedding must be deterministic"
        );
    }

    #[test]
    fn embed_batches_agree_with_single() {
        let (model, feat, _rng) = setup();
        let trajs: Vec<Trajectory> = (0..7).map(|i| traj(5 + i, 80.0 * (i + 1) as f64)).collect();
        let all = model.embed(&feat, &trajs);
        for (i, t) in trajs.iter().enumerate() {
            let single = model.embed(&feat, std::slice::from_ref(t));
            for k in 0..model.cfg.dim {
                assert!(
                    (all.at2(i, k) - single.at2(0, k)).abs() < 1e-4,
                    "batching changed embedding {i}"
                );
            }
        }
    }

    #[test]
    fn infer_embed_matches_tape_forward() {
        let (model, feat, mut rng) = setup();
        let trajs: Vec<Trajectory> = (0..4)
            .map(|i| traj(5 + i, 150.0 * (i + 1) as f64))
            .collect();
        let infer = model.embed(&feat, &trajs);
        let batch = feat.featurize(&trajs).expect("featurize");
        let mut tape = Tape::new();
        let mut f = Fwd::new(&mut tape, &model.store, &mut rng, false);
        let h = model.forward_h(&mut f, &batch);
        assert!(
            infer.approx_eq(tape.value(h), 1e-5),
            "serving path drifted from the tape forward"
        );
    }

    #[test]
    fn z_is_unit_norm() {
        let (model, feat, mut rng) = setup();
        let batch = feat
            .featurize(&[traj(6, 100.0), traj(8, 400.0)])
            .expect("featurize");
        let mut tape = Tape::new();
        let mut f = Fwd::new(&mut tape, &model.store, &mut rng, false);
        let z = model.forward_z(&mut f, &batch);
        for r in 0..2 {
            let row = tape.value(z).row(r);
            let norm: f32 = row.iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-5, "z row norm {norm}");
        }
    }

    #[test]
    fn l1_distance_matrix_correct() {
        let a = Tensor::from_vec(vec![0.0, 0.0, 1.0, 2.0], Shape::d2(2, 2));
        let b = Tensor::from_vec(vec![1.0, 1.0, 0.0, 0.0, 3.0, 3.0], Shape::d2(3, 2));
        let m = l1_distances(&a, &b);
        assert_eq!(m.len(), 6);
        assert_eq!(m[0], 2.0); // |0-1|+|0-1|
        assert_eq!(m[1], 0.0);
        assert_eq!(m[2], 6.0);
        assert_eq!(m[3], 1.0); // |1-1|+|2-1|
        assert_eq!(m[4], 3.0);
        assert_eq!(m[5], 3.0);
    }
}
