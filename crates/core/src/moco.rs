//! The MoCo-style dual-branch contrastive framework (§III).
//!
//! The online branch (`F`, `P`) is trained by gradient descent on the
//! InfoNCE loss (Eq. 2); the target branch (`F'`, `P'`) follows by momentum
//! (EMA) updates (Eq. 3); a FIFO queue of past target projections enlarges
//! the negative pool.

use crate::config::TrajClConfig;
use crate::encoder::EncoderVariant;
use crate::featurizer::Featurizer;
use crate::model::TrajClModel;
use rand::Rng;
use std::collections::VecDeque;
use trajcl_data::Augmentation;
use trajcl_geo::Trajectory;
use trajcl_nn::{Adam, Fwd, ParamStore};
use trajcl_tensor::{Shape, Tape, Tensor};

/// Online model, momentum (target) parameters and the negative queue.
pub struct MocoState {
    /// The online branch (the model that is ultimately kept).
    pub online: TrajClModel,
    target_store: ParamStore,
    queue: VecDeque<Vec<f32>>,
    /// Augmentation for view 1 (overridable for the Fig. 8 grid).
    pub aug1: Augmentation,
    /// Augmentation for view 2.
    pub aug2: Augmentation,
}

impl MocoState {
    /// Initialises both branches with identical weights and fills the
    /// negative queue with random unit vectors (standard MoCo warm-start;
    /// real negatives displace them within the first few steps).
    pub fn new(cfg: &TrajClConfig, variant: EncoderVariant, rng: &mut impl Rng) -> Self {
        let online = TrajClModel::new(cfg, variant, rng);
        let target_store = online.store.clone();
        let mut queue = VecDeque::with_capacity(cfg.queue_size);
        for _ in 0..cfg.queue_size {
            let v = Tensor::randn(Shape::d1(cfg.proj_dim), 0.0, 1.0, rng);
            let norm = v.frobenius_norm().max(1e-9);
            queue.push_back(v.data().iter().map(|x| x / norm).collect());
        }
        MocoState {
            online,
            target_store,
            queue,
            aug1: cfg.aug1,
            aug2: cfg.aug2,
        }
    }

    /// Current number of stored negatives.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The momentum-branch parameters (exposed for tests).
    pub fn target_store(&self) -> &ParamStore {
        &self.target_store
    }

    fn queue_matrix(&self, proj_dim: usize) -> Tensor {
        let k = self.queue.len();
        let mut data = Vec::with_capacity(k * proj_dim);
        for row in &self.queue {
            data.extend_from_slice(row);
        }
        Tensor::from_vec(data, Shape::d2(k, proj_dim))
    }

    /// One InfoNCE training step on a mini-batch of raw trajectories.
    ///
    /// Generates the two augmented views, runs the target branch without
    /// gradients, computes Eq. 2 on the online branch, applies one
    /// optimizer step, momentum-updates the target branch and rotates the
    /// batch's target projections into the negative queue. Returns the
    /// batch loss.
    pub fn train_step(
        &mut self,
        trajs: &[Trajectory],
        featurizer: &Featurizer,
        opt: &mut Adam,
        rng: &mut impl Rng,
    ) -> f32 {
        let cfg = self.online.cfg.clone();
        let params = cfg.aug_params;
        let view1: Vec<Trajectory> = trajs
            .iter()
            .map(|t| self.aug1.apply(t, &params, rng))
            .collect();
        let view2: Vec<Trajectory> = trajs
            .iter()
            .map(|t| self.aug2.apply(t, &params, rng))
            .collect();
        let batch1 = featurizer
            .featurize(&view1)
            .expect("augmented views stay non-empty");
        let batch2 = featurizer
            .featurize(&view2)
            .expect("augmented views stay non-empty");

        // Target branch: no gradients, eval-mode dropout, momentum params.
        let z2: Tensor = {
            let mut tape = Tape::new();
            let mut f = Fwd::new(&mut tape, &self.target_store, rng, false);
            let z = self.online.forward_z(&mut f, &batch2);
            tape.value(z).clone()
        };

        // Online branch with InfoNCE.
        let mut tape = Tape::new();
        let loss_value;
        {
            let mut f = Fwd::new(&mut tape, &self.online.store, rng, true);
            let z1 = self.online.forward_z(&mut f, &batch1);
            let z2_const = f.input(z2.clone());
            let l_pos = f.tape.row_dot(z1, z2_const);
            let queue_mat = f.input(self.queue_matrix(cfg.proj_dim));
            let l_neg = f.tape.matmul(z1, queue_mat, false, true);
            let logits = f.tape.concat(&[l_pos, l_neg]);
            let scaled = f.tape.scale(logits, 1.0 / cfg.temperature);
            let targets = vec![0usize; trajs.len()];
            let loss = f.tape.cross_entropy(scaled, &targets);
            loss_value = f.tape.value(loss).data()[0];
            let grads = f.tape.backward(loss);
            self.online.store.accumulate(grads.into_param_grads(f.tape));
        }
        self.online.store.clip_grad_norm(5.0);
        opt.step(&mut self.online.store);

        // Momentum update (Eq. 3) and queue rotation.
        self.target_store
            .ema_update_from(&self.online.store, cfg.momentum);
        for r in 0..z2.shape().rows() {
            if self.queue.len() >= cfg.queue_size {
                self.queue.pop_front();
            }
            self.queue.push_back(z2.row(r).to_vec());
        }
        loss_value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use trajcl_geo::{Bbox, Grid, Point, SpatialNorm};

    fn setup() -> (MocoState, Featurizer, StdRng) {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = TrajClConfig::test_default();
        let region = Bbox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0));
        let grid = Grid::new(region, 100.0);
        let table = Tensor::randn(Shape::d2(grid.num_cells(), cfg.dim), 0.0, 0.5, &mut rng);
        let feat = Featurizer::new(grid, table, SpatialNorm::new(region, 100.0), cfg.max_len);
        let moco = MocoState::new(&cfg, EncoderVariant::Dual, &mut rng);
        (moco, feat, rng)
    }

    fn trajs(n: usize, rng: &mut StdRng) -> Vec<Trajectory> {
        use rand::Rng as _;
        (0..n)
            .map(|_| {
                let y = rng.gen_range(100.0..1900.0);
                let x0 = rng.gen_range(0.0..500.0);
                (0..20)
                    .map(|i| Point::new(x0 + i as f64 * 60.0, y))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn queue_starts_full_and_rotates() {
        let (mut moco, feat, mut rng) = setup();
        let k = moco.online.cfg.queue_size;
        assert_eq!(moco.queue_len(), k);
        let before = moco.queue_matrix(moco.online.cfg.proj_dim);
        let batch = trajs(4, &mut rng);
        let mut opt = Adam::new(1e-3);
        moco.train_step(&batch, &feat, &mut opt, &mut rng);
        assert_eq!(moco.queue_len(), k, "queue stays at capacity");
        let after = moco.queue_matrix(moco.online.cfg.proj_dim);
        assert!(!before.approx_eq(&after, 1e-9), "queue must rotate");
    }

    #[test]
    fn train_step_returns_finite_loss_and_updates_online() {
        let (mut moco, feat, mut rng) = setup();
        let batch = trajs(6, &mut rng);
        let mut opt = Adam::new(1e-3);
        let w_before = moco
            .online
            .store
            .value(moco.online.store.ids().next().unwrap())
            .clone();
        let loss = moco.train_step(&batch, &feat, &mut opt, &mut rng);
        assert!(loss.is_finite() && loss > 0.0, "loss {loss}");
        let w_after = moco
            .online
            .store
            .value(moco.online.store.ids().next().unwrap());
        assert!(
            !w_before.approx_eq(w_after, 0.0),
            "online weights must move"
        );
    }

    #[test]
    fn target_moves_slower_than_online() {
        let (mut moco, feat, mut rng) = setup();
        let id = moco.online.store.ids().next().unwrap();
        let init = moco.online.store.value(id).clone();
        let mut opt = Adam::new(1e-2);
        for _ in 0..3 {
            let batch = trajs(4, &mut rng);
            moco.train_step(&batch, &feat, &mut opt, &mut rng);
        }
        let online_moved = {
            let mut diff = moco.online.store.value(id).clone();
            diff.add_assign_scaled(&init, -1.0);
            diff.frobenius_norm()
        };
        let target_moved = {
            let mut diff = moco.target_store().value(id).clone();
            diff.add_assign_scaled(&init, -1.0);
            diff.frobenius_norm()
        };
        assert!(
            target_moved < online_moved * 0.8,
            "EMA target ({target_moved}) should lag online ({online_moved})"
        );
        assert!(target_moved > 0.0, "target must still move");
    }

    #[test]
    fn training_learns_to_discriminate_views() {
        // The InfoNCE objective: after training, two views of the SAME
        // trajectory must be closer in projection space than views of
        // different trajectories. (Raw loss values are not monotone early
        // on: the queue starts with easy random negatives and hardens as
        // real embeddings rotate in.)
        let (mut moco, feat, mut rng) = setup();
        let mut opt = Adam::new(2e-3);
        let pool = trajs(24, &mut rng);
        for step in 0..20 {
            let start = (step * 8) % 16;
            let loss = moco.train_step(&pool[start..start + 8], &feat, &mut opt, &mut rng);
            assert!(loss.is_finite(), "loss diverged at step {step}");
        }
        // Evaluate alignment on held-out trajectories.
        let eval = &pool[16..24];
        let params = moco.online.cfg.aug_params;
        let v1: Vec<Trajectory> = eval
            .iter()
            .map(|t| moco.aug1.apply(t, &params, &mut rng))
            .collect();
        let v2: Vec<Trajectory> = eval
            .iter()
            .map(|t| moco.aug2.apply(t, &params, &mut rng))
            .collect();
        let z = |views: &[Trajectory], rng: &mut StdRng| -> Tensor {
            let batch = feat.featurize(views).expect("featurize");
            let mut tape = Tape::new();
            let mut f = Fwd::new(&mut tape, &moco.online.store, rng, false);
            let zv = moco.online.forward_z(&mut f, &batch);
            tape.value(zv).clone()
        };
        let z1 = z(&v1, &mut rng);
        let z2 = z(&v2, &mut rng);
        let dot = |a: &[f32], b: &[f32]| -> f32 { a.iter().zip(b).map(|(x, y)| x * y).sum() };
        let mut pos = 0.0;
        let mut neg = 0.0;
        let mut neg_n = 0;
        for i in 0..8 {
            pos += dot(z1.row(i), z2.row(i));
            for j in 0..8 {
                if i != j {
                    neg += dot(z1.row(i), z2.row(j));
                    neg_n += 1;
                }
            }
        }
        let pos_mean = pos / 8.0;
        let neg_mean = neg / neg_n as f32;
        assert!(
            pos_mean > neg_mean,
            "positive pairs should align better: pos {pos_mean} vs neg {neg_mean}"
        );
    }
}
