//! Epoch-level training loop with the paper's schedule: Adam, initial lr
//! 1e-3 halved every 5 epochs, ≤ 20 epochs, early stop after 5
//! non-improving epochs (§V-A).

use crate::featurizer::Featurizer;
use crate::moco::MocoState;
use rand::seq::SliceRandom;
use rand::Rng;
use std::time::Instant;
use trajcl_geo::Trajectory;
use trajcl_nn::{Adam, StepDecay};

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean InfoNCE loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Wall-clock seconds spent training.
    pub seconds: f64,
    /// Epochs actually run (≤ max, depending on early stop).
    pub epochs_run: usize,
}

/// Trains the MoCo state on `train_set`. Hyper-parameters come from the
/// model's [`crate::TrajClConfig`]; `schedule` controls the learning rate.
pub fn train(
    moco: &mut MocoState,
    featurizer: &Featurizer,
    train_set: &[Trajectory],
    schedule: &StepDecay,
    rng: &mut impl Rng,
) -> TrainReport {
    let cfg = moco.online.cfg.clone();
    let start = Instant::now();
    let mut epoch_losses = Vec::new();
    let mut best = f32::INFINITY;
    let mut since_best = 0usize;
    let mut order: Vec<usize> = (0..train_set.len()).collect();
    for epoch in 0..cfg.max_epochs {
        let mut opt = Adam::new(schedule.lr_at(epoch as u32));
        order.shuffle(rng);
        let mut total = 0.0f32;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            if chunk.len() < 2 {
                continue; // a contrastive batch needs at least two samples
            }
            let batch: Vec<Trajectory> = chunk.iter().map(|&i| train_set[i].clone()).collect();
            total += moco.train_step(&batch, featurizer, &mut opt, rng);
            batches += 1;
        }
        let mean = total / batches.max(1) as f32;
        epoch_losses.push(mean);
        if mean < best - 1e-4 {
            best = mean;
            since_best = 0;
        } else {
            since_best += 1;
            if since_best >= cfg.patience {
                break;
            }
        }
    }
    TrainReport {
        epochs_run: epoch_losses.len(),
        epoch_losses,
        seconds: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrajClConfig;
    use crate::encoder::EncoderVariant;
    use rand::{rngs::StdRng, SeedableRng};
    use trajcl_geo::{Bbox, Grid, Point, SpatialNorm};
    use trajcl_tensor::{Shape, Tensor};

    #[test]
    fn training_reports_decreasing_loss() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut cfg = TrajClConfig::test_default();
        cfg.max_epochs = 3;
        let region = Bbox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0));
        let grid = Grid::new(region, 100.0);
        let table = Tensor::randn(Shape::d2(grid.num_cells(), cfg.dim), 0.0, 0.5, &mut rng);
        let feat = Featurizer::new(grid, table, SpatialNorm::new(region, 100.0), cfg.max_len);
        let mut moco = MocoState::new(&cfg, EncoderVariant::Dual, &mut rng);
        use rand::Rng as _;
        let train_set: Vec<Trajectory> = (0..32)
            .map(|_| {
                let y = rng.gen_range(100.0..1900.0);
                (0..20)
                    .map(|i| Point::new(i as f64 * 80.0, y + (i % 3) as f64 * 30.0))
                    .collect()
            })
            .collect();
        let schedule = StepDecay::trajcl_default();
        let report = train(&mut moco, &feat, &train_set, &schedule, &mut rng);
        assert_eq!(report.epochs_run, report.epoch_losses.len());
        assert!(report.epochs_run >= 1 && report.epochs_run <= cfg.max_epochs);
        assert!(report.seconds > 0.0);
        // Loss trajectories are not monotone while the negative queue warms
        // up; finiteness plus the discrimination test in `moco` cover
        // learning. Here we check the loop mechanics.
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
    }
}
