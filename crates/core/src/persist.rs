//! Model persistence: save a trained TrajCL encoder together with its
//! featurizer (grid geometry + node2vec cell table) so it can be reloaded
//! for inference, fine-tuning or serving without retraining.
//!
//! Format (little-endian, versioned):
//! `magic "TCL1" | config | region | cell side | max len | cell table |
//!  ParamStore bytes` — everything needed to rebuild
//! `(TrajClModel, Featurizer)` exactly.

use crate::config::TrajClConfig;
use crate::encoder::EncoderVariant;
use crate::featurizer::Featurizer;
use crate::model::TrajClModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use trajcl_geo::{Bbox, Grid, Point, SpatialNorm};
use trajcl_nn::ParamStore;
use trajcl_tensor::{Shape, Tensor};

const MAGIC: &[u8; 4] = b"TCL1";

/// Errors from loading a persisted model.
#[derive(Debug, PartialEq, Eq)]
pub enum PersistError {
    /// Buffer too short or structurally invalid.
    Truncated,
    /// Magic/version mismatch.
    BadMagic,
    /// Parameter store failed to decode.
    BadStore,
    /// A decoded field is out of the range a valid save can produce
    /// (hostile or bit-rotted bytes; the payload names the field).
    Invalid(&'static str),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Truncated => write!(f, "model file truncated or corrupt"),
            PersistError::BadMagic => write!(f, "not a TrajCL model file"),
            PersistError::BadStore => write!(f, "parameter store failed to decode"),
            PersistError::Invalid(field) => write!(f, "model file field out of range: {field}"),
        }
    }
}

impl std::error::Error for PersistError {}

struct Writer(Vec<u8>);

impl Writer {
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
}

struct Reader<'a>(&'a [u8]);

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], PersistError> {
        if self.0.len() < n {
            return Err(PersistError::Truncated);
        }
        let (head, rest) = self.0.split_at(n);
        self.0 = rest;
        Ok(head)
    }
    fn u32(&mut self) -> Result<u32, PersistError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn f32(&mut self) -> Result<f32, PersistError> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn f64(&mut self) -> Result<f64, PersistError> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

fn variant_code(v: EncoderVariant) -> u32 {
    match v {
        EncoderVariant::Dual => 0,
        EncoderVariant::VanillaMsm => 1,
        EncoderVariant::Concat => 2,
    }
}

fn variant_from(code: u32) -> Result<EncoderVariant, PersistError> {
    match code {
        0 => Ok(EncoderVariant::Dual),
        1 => Ok(EncoderVariant::VanillaMsm),
        2 => Ok(EncoderVariant::Concat),
        _ => Err(PersistError::Truncated),
    }
}

/// Serialises a trained model plus its featurizer.
pub fn save_model(model: &TrajClModel, featurizer: &Featurizer, cell_side: f64) -> Vec<u8> {
    let mut w = Writer(Vec::new());
    w.0.extend_from_slice(MAGIC);
    // Config.
    let c = &model.cfg;
    for v in [
        c.dim,
        c.heads,
        c.layers,
        c.ffn_hidden,
        c.proj_dim,
        c.max_len,
        c.queue_size,
        c.batch_size,
        c.max_epochs,
        c.patience,
    ] {
        w.u32(v as u32);
    }
    w.f32(c.dropout);
    w.f32(c.temperature);
    w.f32(c.momentum);
    w.u32(variant_code(model.encoder.variant()));
    // Featurizer geometry: grid origin is the region min; region extent is
    // recoverable from the grid dims.
    let grid = featurizer.grid();
    let origin = grid.center(0);
    let min = Point::new(origin.x - cell_side / 2.0, origin.y - cell_side / 2.0);
    w.f64(min.x);
    w.f64(min.y);
    w.f64(cell_side);
    w.u32(grid.cols() as u32);
    w.u32(grid.rows() as u32);
    w.u32(featurizer.max_len() as u32);
    // Cell-embedding table.
    let table = featurizer.cell_table();
    w.u32(table.shape()[0] as u32);
    w.u32(table.shape()[1] as u32);
    for &v in table.data() {
        w.f32(v);
    }
    // Parameters.
    let store_bytes = model.store.to_bytes();
    w.u32(store_bytes.len() as u32);
    w.0.extend_from_slice(&store_bytes);
    w.0
}

/// Largest value any architecture/featurizer count field may carry; far
/// above anything a real training run produces, low enough that a single
/// corrupt field cannot drive a pathological allocation or loop.
const MAX_CFG_FIELD: usize = 1 << 24;

/// Largest accepted grid (`cols * rows`); the biggest shipped dataset
/// profile is a few million cells.
const MAX_GRID_CELLS: usize = 1 << 26;

/// Upper bound on the parameter count of the encoder+projection skeleton
/// a config describes (every term dominates the corresponding module's
/// real parameter count). Loading compares this against the serialized
/// store length — which IS bounded by the file's actual size — so a
/// corrupt config cannot make [`TrajClModel::new`] allocate orders of
/// magnitude more memory than the file plausibly carries.
fn skeleton_param_bound(cfg: &TrajClConfig) -> u128 {
    let d = cfg.dim as u128;
    let ffn = cfg.ffn_hidden as u128;
    let p = cfg.proj_dim as u128;
    let layers = cfg.layers as u128;
    // Dual layer: 4 temporal weights (4d²) + γ + a full vanilla layer
    // (attention 4d²+4d, two layer-norms 4d, FFN 2·d·ffn+ffn+d).
    let per_layer = 8 * d * d + 2 * d * ffn + ffn + 16 * d + 16;
    // Projections: spatial lift, optional concat fusion, MLP head.
    layers * per_layer + 4 * d * d + d * p + p + 16 * d + 64
}

/// Restores a model/featurizer pair from [`save_model`] output.
///
/// The bytes are untrusted (they arrive from disk or from an embedded
/// `TCE1` engine file): every decoded field is validated before it sizes
/// an allocation or reaches a constructor that asserts, so corrupt input
/// yields `Err`, never a panic.
pub fn load_model(bytes: &[u8]) -> Result<(TrajClModel, Featurizer), PersistError> {
    let mut r = Reader(bytes);
    if r.take(4)? != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let mut cfg = TrajClConfig::paper_default();
    cfg.dim = r.u32()? as usize;
    cfg.heads = r.u32()? as usize;
    cfg.layers = r.u32()? as usize;
    cfg.ffn_hidden = r.u32()? as usize;
    cfg.proj_dim = r.u32()? as usize;
    cfg.max_len = r.u32()? as usize;
    cfg.queue_size = r.u32()? as usize;
    cfg.batch_size = r.u32()? as usize;
    cfg.max_epochs = r.u32()? as usize;
    cfg.patience = r.u32()? as usize;
    cfg.dropout = r.f32()?;
    cfg.temperature = r.f32()?;
    cfg.momentum = r.f32()?;
    for (field, v) in [
        ("dim", cfg.dim),
        ("heads", cfg.heads),
        ("layers", cfg.layers),
        ("ffn_hidden", cfg.ffn_hidden),
        ("proj_dim", cfg.proj_dim),
        ("max_len", cfg.max_len),
        ("queue_size", cfg.queue_size),
        ("batch_size", cfg.batch_size),
        ("max_epochs", cfg.max_epochs),
        ("patience", cfg.patience),
    ] {
        if v > MAX_CFG_FIELD {
            return Err(PersistError::Invalid(field));
        }
    }
    if cfg.dim == 0 || cfg.heads == 0 || !cfg.dim.is_multiple_of(cfg.heads) {
        return Err(PersistError::Invalid("dim/heads"));
    }
    if !(cfg.dropout.is_finite() && cfg.temperature.is_finite() && cfg.momentum.is_finite()) {
        return Err(PersistError::Invalid("float config"));
    }
    let variant = variant_from(r.u32()?)?;
    let min_x = r.f64()?;
    let min_y = r.f64()?;
    let cell_side = r.f64()?;
    let cols = r.u32()? as usize;
    let rows = r.u32()? as usize;
    let max_len = r.u32()? as usize;
    // Grid geometry: `Grid::new` asserts on non-positive cell sides and
    // unbounded boxes, so reject those here instead of panicking.
    if !(cell_side.is_finite() && cell_side > 0.0) {
        return Err(PersistError::Invalid("cell side"));
    }
    if !(min_x.is_finite() && min_y.is_finite()) {
        return Err(PersistError::Invalid("grid origin"));
    }
    let cells = cols
        .checked_mul(rows)
        .ok_or(PersistError::Invalid("grid dims"))?;
    if cols == 0 || rows == 0 || cells > MAX_GRID_CELLS || max_len > MAX_CFG_FIELD {
        return Err(PersistError::Invalid("grid dims"));
    }
    let extent_x = cols as f64 * cell_side;
    let extent_y = rows as f64 * cell_side;
    if !((min_x + extent_x).is_finite() && (min_y + extent_y).is_finite()) {
        return Err(PersistError::Invalid("grid extent"));
    }
    let vocab = r.u32()? as usize;
    let dim = r.u32()? as usize;
    // The encoder consumes the featurizer's structural embeddings
    // directly, so the cell table's width must be the model width; a
    // mismatch would reach the first matmul as a shape panic.
    if dim != cfg.dim {
        return Err(PersistError::Invalid("cell table dim"));
    }
    let n = vocab.checked_mul(dim).ok_or(PersistError::Truncated)?;
    let n_bytes = n.checked_mul(4).ok_or(PersistError::Truncated)?;
    let raw = r.take(n_bytes)?;
    let mut data = Vec::with_capacity(n);
    for chunk in raw.chunks_exact(4) {
        data.push(f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
    }
    let table = Tensor::from_vec(data, Shape::d2(vocab, dim));
    let store_len = r.u32()? as usize;
    let store_bytes = r.take(store_len)?;
    // A valid store carries ≥ 4 bytes per parameter, so a config whose
    // skeleton outweighs the store describes a model this file cannot
    // hold — reject it BEFORE building the (potentially huge) skeleton.
    if skeleton_param_bound(&cfg) > store_len as u128 {
        return Err(PersistError::Invalid("architecture vs store size"));
    }
    let store = ParamStore::from_bytes(store_bytes).ok_or(PersistError::BadStore)?;

    let region = Bbox::new(
        Point::new(min_x, min_y),
        Point::new(min_x + extent_x, min_y + extent_y),
    );
    let grid = Grid::new(region, cell_side);
    // `Featurizer::new` asserts coverage; check it as a decode error.
    if vocab < grid.num_cells() {
        return Err(PersistError::Invalid("cell table vs grid"));
    }
    let norm = SpatialNorm::new(region, cell_side);
    let featurizer = Featurizer::new(grid, table, norm, max_len);

    // Rebuild the model skeleton (weights come from the decoded store —
    // the RNG only shapes throwaway initial values).
    let mut rng = StdRng::seed_from_u64(0);
    let mut model = TrajClModel::new(&cfg, variant, &mut rng);
    // The decoded store must match the skeleton slot for slot — names AND
    // shapes, not just count: a corrupt store with the right slot count
    // but resized tensors would otherwise poison every forward-pass
    // kernel (fuzz-found as OOB indexing and shape-assert panics).
    if !model.store.layout_matches(&store) {
        return Err(PersistError::BadStore);
    }
    model.store.copy_values_from(&store);
    Ok((model, featurizer))
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajcl_geo::Trajectory;

    fn setup() -> (TrajClModel, Featurizer, Vec<Trajectory>) {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = TrajClConfig::test_default();
        let region = Bbox::new(Point::new(0.0, 0.0), Point::new(1000.0, 800.0));
        let grid = Grid::new(region, 100.0);
        let table = Tensor::randn(Shape::d2(grid.num_cells(), cfg.dim), 0.0, 0.5, &mut rng);
        let feat = Featurizer::new(grid, table, SpatialNorm::new(region, 100.0), cfg.max_len);
        let model = TrajClModel::new(&cfg, EncoderVariant::Dual, &mut rng);
        let trajs: Vec<Trajectory> = (0..4)
            .map(|i| {
                (0..10)
                    .map(|j| Point::new(50.0 + j as f64 * 80.0, 100.0 + i as f64 * 150.0))
                    .collect()
            })
            .collect();
        (model, feat, trajs)
    }

    #[test]
    fn round_trip_preserves_embeddings() {
        let (model, feat, trajs) = setup();
        let before = model.embed(&feat, &trajs);
        let bytes = save_model(&model, &feat, 100.0);
        let (loaded, loaded_feat) = load_model(&bytes).expect("round trip");
        let after = loaded.embed(&loaded_feat, &trajs);
        assert!(
            before.approx_eq(&after, 1e-6),
            "persisted model produced different embeddings"
        );
    }

    #[test]
    fn round_trip_preserves_config_and_variant() {
        let (model, feat, _) = setup();
        let bytes = save_model(&model, &feat, 100.0);
        let (loaded, loaded_feat) = load_model(&bytes).unwrap();
        assert_eq!(loaded.cfg.dim, model.cfg.dim);
        assert_eq!(loaded.cfg.heads, model.cfg.heads);
        assert_eq!(loaded.cfg.layers, model.cfg.layers);
        assert_eq!(loaded.encoder.variant(), EncoderVariant::Dual);
        assert_eq!(loaded_feat.max_len(), feat.max_len());
        assert_eq!(loaded_feat.dim(), feat.dim());
        assert_eq!(loaded_feat.grid().num_cells(), feat.grid().num_cells());
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(load_model(b"nope").err(), Some(PersistError::BadMagic));
        assert_eq!(load_model(b"TC").err(), Some(PersistError::Truncated));
        let (model, feat, _) = setup();
        let mut bytes = save_model(&model, &feat, 100.0);
        bytes.truncate(bytes.len() / 2);
        assert!(load_model(&bytes).is_err());
    }

    /// Overwrites the 4 bytes at `at` and asserts the load fails cleanly
    /// (fuzz-found panic paths, kept as regressions).
    fn assert_rejects(bytes: &[u8], at: usize, field: [u8; 4]) {
        let mut corrupt = bytes.to_vec();
        corrupt[at..at + 4].copy_from_slice(&field);
        assert!(load_model(&corrupt).is_err(), "field at {at} accepted");
    }

    #[test]
    fn rejects_hostile_config_fields() {
        let (model, feat, _) = setup();
        let bytes = save_model(&model, &feat, 100.0);
        // Offsets follow the format comment: magic(4) then 10 u32 config
        // fields, 3 f32s, variant, grid f64s at 60/68/76, dims at 84.
        assert_rejects(&bytes, 4, u32::MAX.to_le_bytes()); // dim: cap
        assert_rejects(&bytes, 8, 0u32.to_le_bytes()); // heads = 0
        assert_rejects(&bytes, 8, 3u32.to_le_bytes()); // dim % heads != 0
        assert_rejects(&bytes, 12, (1u32 << 20).to_le_bytes()); // layers vs store
        assert_rejects(&bytes, 84, 0u32.to_le_bytes()); // cols = 0
        assert_rejects(&bytes, 84, u32::MAX.to_le_bytes()); // grid too big
                                                            // A negative cell side would trip Grid::new's assert.
        let mut corrupt = bytes.clone();
        corrupt[76..84].copy_from_slice(&(-100.0f64).to_le_bytes());
        assert!(load_model(&corrupt).is_err());
        // A non-finite origin would build an unbounded box.
        let mut corrupt = bytes.clone();
        corrupt[60..68].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(load_model(&corrupt).is_err());
        // The untouched original still loads.
        assert!(load_model(&bytes).is_ok());
    }

    /// Fuzz regressions: fields that disagree about the model's width
    /// must be rejected, not carried into the forward pass. A mutated
    /// `dim` keeps `dim % heads == 0` and the same slot COUNT (layer
    /// structure is unchanged), so before the cell-table cross-check and
    /// `ParamStore::layout_matches` it reached inference and panicked on
    /// a PE shape assert.
    #[test]
    fn rejects_config_vs_store_shape_mismatch() {
        let (model, feat, _) = setup();
        let bytes = save_model(&model, &feat, 100.0);
        // cfg.dim (offset 4) no longer matches the featurizer table dim.
        assert_rejects(&bytes, 4, 18u32.to_le_bytes());
        // The table dim field (offset 100) no longer matches cfg.dim.
        assert_rejects(&bytes, 100, 8u32.to_le_bytes());
    }
}
