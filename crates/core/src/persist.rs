//! Model persistence: save a trained TrajCL encoder together with its
//! featurizer (grid geometry + node2vec cell table) so it can be reloaded
//! for inference, fine-tuning or serving without retraining.
//!
//! Format (little-endian, versioned):
//! `magic "TCL1" | config | region | cell side | max len | cell table |
//!  ParamStore bytes` — everything needed to rebuild
//! `(TrajClModel, Featurizer)` exactly.

use crate::config::TrajClConfig;
use crate::encoder::EncoderVariant;
use crate::featurizer::Featurizer;
use crate::model::TrajClModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use trajcl_geo::{Bbox, Grid, Point, SpatialNorm};
use trajcl_nn::ParamStore;
use trajcl_tensor::{Shape, Tensor};

const MAGIC: &[u8; 4] = b"TCL1";

/// Errors from loading a persisted model.
#[derive(Debug, PartialEq, Eq)]
pub enum PersistError {
    /// Buffer too short or structurally invalid.
    Truncated,
    /// Magic/version mismatch.
    BadMagic,
    /// Parameter store failed to decode.
    BadStore,
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Truncated => write!(f, "model file truncated or corrupt"),
            PersistError::BadMagic => write!(f, "not a TrajCL model file"),
            PersistError::BadStore => write!(f, "parameter store failed to decode"),
        }
    }
}

impl std::error::Error for PersistError {}

struct Writer(Vec<u8>);

impl Writer {
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
}

struct Reader<'a>(&'a [u8]);

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], PersistError> {
        if self.0.len() < n {
            return Err(PersistError::Truncated);
        }
        let (head, rest) = self.0.split_at(n);
        self.0 = rest;
        Ok(head)
    }
    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn f32(&mut self) -> Result<f32, PersistError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

fn variant_code(v: EncoderVariant) -> u32 {
    match v {
        EncoderVariant::Dual => 0,
        EncoderVariant::VanillaMsm => 1,
        EncoderVariant::Concat => 2,
    }
}

fn variant_from(code: u32) -> Result<EncoderVariant, PersistError> {
    match code {
        0 => Ok(EncoderVariant::Dual),
        1 => Ok(EncoderVariant::VanillaMsm),
        2 => Ok(EncoderVariant::Concat),
        _ => Err(PersistError::Truncated),
    }
}

/// Serialises a trained model plus its featurizer.
pub fn save_model(model: &TrajClModel, featurizer: &Featurizer, cell_side: f64) -> Vec<u8> {
    let mut w = Writer(Vec::new());
    w.0.extend_from_slice(MAGIC);
    // Config.
    let c = &model.cfg;
    for v in [
        c.dim,
        c.heads,
        c.layers,
        c.ffn_hidden,
        c.proj_dim,
        c.max_len,
        c.queue_size,
        c.batch_size,
        c.max_epochs,
        c.patience,
    ] {
        w.u32(v as u32);
    }
    w.f32(c.dropout);
    w.f32(c.temperature);
    w.f32(c.momentum);
    w.u32(variant_code(model.encoder.variant()));
    // Featurizer geometry: grid origin is the region min; region extent is
    // recoverable from the grid dims.
    let grid = featurizer.grid();
    let origin = grid.center(0);
    let min = Point::new(origin.x - cell_side / 2.0, origin.y - cell_side / 2.0);
    w.f64(min.x);
    w.f64(min.y);
    w.f64(cell_side);
    w.u32(grid.cols() as u32);
    w.u32(grid.rows() as u32);
    w.u32(featurizer.max_len() as u32);
    // Cell-embedding table.
    let table = featurizer.cell_table();
    w.u32(table.shape()[0] as u32);
    w.u32(table.shape()[1] as u32);
    for &v in table.data() {
        w.f32(v);
    }
    // Parameters.
    let store_bytes = model.store.to_bytes();
    w.u32(store_bytes.len() as u32);
    w.0.extend_from_slice(&store_bytes);
    w.0
}

/// Restores a model/featurizer pair from [`save_model`] output.
pub fn load_model(bytes: &[u8]) -> Result<(TrajClModel, Featurizer), PersistError> {
    let mut r = Reader(bytes);
    if r.take(4)? != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let mut cfg = TrajClConfig::paper_default();
    cfg.dim = r.u32()? as usize;
    cfg.heads = r.u32()? as usize;
    cfg.layers = r.u32()? as usize;
    cfg.ffn_hidden = r.u32()? as usize;
    cfg.proj_dim = r.u32()? as usize;
    cfg.max_len = r.u32()? as usize;
    cfg.queue_size = r.u32()? as usize;
    cfg.batch_size = r.u32()? as usize;
    cfg.max_epochs = r.u32()? as usize;
    cfg.patience = r.u32()? as usize;
    cfg.dropout = r.f32()?;
    cfg.temperature = r.f32()?;
    cfg.momentum = r.f32()?;
    let variant = variant_from(r.u32()?)?;
    let min_x = r.f64()?;
    let min_y = r.f64()?;
    let cell_side = r.f64()?;
    let cols = r.u32()? as usize;
    let rows = r.u32()? as usize;
    let max_len = r.u32()? as usize;
    let vocab = r.u32()? as usize;
    let dim = r.u32()? as usize;
    let n = vocab.checked_mul(dim).ok_or(PersistError::Truncated)?;
    let raw = r.take(n * 4)?;
    let mut data = Vec::with_capacity(n);
    for chunk in raw.chunks_exact(4) {
        data.push(f32::from_le_bytes(chunk.try_into().unwrap()));
    }
    let table = Tensor::from_vec(data, Shape::d2(vocab, dim));
    let store_len = r.u32()? as usize;
    let store_bytes = r.take(store_len)?;
    let store = ParamStore::from_bytes(store_bytes).ok_or(PersistError::BadStore)?;

    let region = Bbox::new(
        Point::new(min_x, min_y),
        Point::new(
            min_x + cols as f64 * cell_side,
            min_y + rows as f64 * cell_side,
        ),
    );
    let grid = Grid::new(region, cell_side);
    let norm = SpatialNorm::new(region, cell_side);
    let featurizer = Featurizer::new(grid, table, norm, max_len);

    // Rebuild the model skeleton (weights come from the decoded store —
    // the RNG only shapes throwaway initial values).
    let mut rng = StdRng::seed_from_u64(0);
    let mut model = TrajClModel::new(&cfg, variant, &mut rng);
    if model.store.len() != store.len() {
        return Err(PersistError::BadStore);
    }
    model.store.copy_values_from(&store);
    Ok((model, featurizer))
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajcl_geo::Trajectory;

    fn setup() -> (TrajClModel, Featurizer, Vec<Trajectory>) {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = TrajClConfig::test_default();
        let region = Bbox::new(Point::new(0.0, 0.0), Point::new(1000.0, 800.0));
        let grid = Grid::new(region, 100.0);
        let table = Tensor::randn(Shape::d2(grid.num_cells(), cfg.dim), 0.0, 0.5, &mut rng);
        let feat = Featurizer::new(grid, table, SpatialNorm::new(region, 100.0), cfg.max_len);
        let model = TrajClModel::new(&cfg, EncoderVariant::Dual, &mut rng);
        let trajs: Vec<Trajectory> = (0..4)
            .map(|i| {
                (0..10)
                    .map(|j| Point::new(50.0 + j as f64 * 80.0, 100.0 + i as f64 * 150.0))
                    .collect()
            })
            .collect();
        (model, feat, trajs)
    }

    #[test]
    fn round_trip_preserves_embeddings() {
        let (model, feat, trajs) = setup();
        let before = model.embed(&feat, &trajs);
        let bytes = save_model(&model, &feat, 100.0);
        let (loaded, loaded_feat) = load_model(&bytes).expect("round trip");
        let after = loaded.embed(&loaded_feat, &trajs);
        assert!(
            before.approx_eq(&after, 1e-6),
            "persisted model produced different embeddings"
        );
    }

    #[test]
    fn round_trip_preserves_config_and_variant() {
        let (model, feat, _) = setup();
        let bytes = save_model(&model, &feat, 100.0);
        let (loaded, loaded_feat) = load_model(&bytes).unwrap();
        assert_eq!(loaded.cfg.dim, model.cfg.dim);
        assert_eq!(loaded.cfg.heads, model.cfg.heads);
        assert_eq!(loaded.cfg.layers, model.cfg.layers);
        assert_eq!(loaded.encoder.variant(), EncoderVariant::Dual);
        assert_eq!(loaded_feat.max_len(), feat.max_len());
        assert_eq!(loaded_feat.dim(), feat.dim());
        assert_eq!(loaded_feat.grid().num_cells(), feat.grid().num_cells());
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(load_model(b"nope").err(), Some(PersistError::BadMagic));
        assert_eq!(load_model(b"TC").err(), Some(PersistError::Truncated));
        let (model, feat, _) = setup();
        let mut bytes = save_model(&model, &feat, 100.0);
        bytes.truncate(bytes.len() / 2);
        assert!(load_model(&bytes).is_err());
    }
}
