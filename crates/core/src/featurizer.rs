//! Pointwise trajectory feature enrichment (§IV-B).
//!
//! Maps trajectories to the two model inputs:
//! * **structural** features: the node2vec embedding of the grid cell
//!   enclosing each point, giving a `(B, L, d)` matrix `T`;
//! * **spatial** features: the `(x, y, radian, mean segment length)`
//!   four-tuple of Eq. 8, normalised, giving a `(B, L, 4)` matrix `S`.
//!
//! Batches are padded to the longest member (capped at `max_len`); padding
//! is excluded from attention (mask) and pooling (lengths) downstream.

use trajcl_geo::{
    spatial_features, validate_batch, FeaturizeError, Grid, SpatialNorm, Trajectory, SPATIAL_DIM,
};
use trajcl_tensor::{Shape, Tensor};

/// A featurised batch ready for the encoder.
#[derive(Debug, Clone)]
pub struct BatchInputs {
    /// Structural feature matrix `T`: `(B, L, d)` cell embeddings.
    pub structural: Tensor,
    /// Spatial feature matrix `S`: `(B, L, 4)` normalised tuples.
    pub spatial: Tensor,
    /// Valid (pre-padding) length per batch element.
    pub lens: Vec<usize>,
    /// Grid cell id per point, row-major `(B, L)` (padding = cell 0);
    /// kept for baselines that embed raw cell tokens.
    pub cells: Vec<u32>,
}

impl BatchInputs {
    /// Batch size.
    pub fn batch(&self) -> usize {
        self.lens.len()
    }

    /// Padded sequence length.
    pub fn seq_len(&self) -> usize {
        self.structural.shape()[1]
    }
}

/// Converts trajectories into model inputs using a grid, a pretrained cell
/// embedding table and spatial normalisation constants.
#[derive(Debug, Clone)]
pub struct Featurizer {
    grid: Grid,
    cell_embeddings: Tensor,
    norm: SpatialNorm,
    max_len: usize,
}

impl Featurizer {
    /// Builds a featurizer.
    ///
    /// # Panics
    /// Panics if the embedding table's vocabulary does not cover the grid.
    pub fn new(grid: Grid, cell_embeddings: Tensor, norm: SpatialNorm, max_len: usize) -> Self {
        assert_eq!(
            cell_embeddings.shape().rank(),
            2,
            "cell table must be rank 2"
        );
        assert!(
            cell_embeddings.shape()[0] >= grid.num_cells(),
            "cell table covers {} cells but grid has {}",
            cell_embeddings.shape()[0],
            grid.num_cells()
        );
        Featurizer {
            grid,
            cell_embeddings,
            norm,
            max_len,
        }
    }

    /// Structural embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.cell_embeddings.shape()[1]
    }

    /// The grid used for cell lookups.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The spatial normalisation constants.
    pub fn norm(&self) -> &SpatialNorm {
        &self.norm
    }

    /// Maximum sequence length (`l` in the paper).
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// The pretrained cell-embedding table `(num_cells, dim)`.
    pub fn cell_table(&self) -> &Tensor {
        &self.cell_embeddings
    }

    /// Featurises a batch, padding to the longest member (≤ `max_len`).
    ///
    /// # Errors
    /// [`FeaturizeError::EmptyBatch`] on an empty batch,
    /// [`FeaturizeError::EmptyTrajectory`] when a member has no points.
    pub fn featurize(&self, trajs: &[Trajectory]) -> Result<BatchInputs, FeaturizeError> {
        validate_batch(trajs)?;
        let b = trajs.len();
        let lens: Vec<usize> = trajs.iter().map(|t| t.len().min(self.max_len)).collect();
        let l = lens.iter().copied().max().unwrap_or(0);
        let d = self.dim();
        let mut structural = Tensor::zeros(Shape::d3(b, l, d));
        let mut spatial = Tensor::zeros(Shape::d3(b, l, SPATIAL_DIM));
        let mut cells = vec![0u32; b * l];
        for (bi, traj) in trajs.iter().enumerate() {
            let len = lens[bi];
            let truncated: Trajectory = if traj.len() > len {
                Trajectory::new(traj.points()[..len].to_vec())
            } else {
                traj.clone()
            };
            let feats = spatial_features(&truncated);
            for (t, (p, feat)) in truncated.points().iter().zip(&feats).enumerate() {
                let cell = self.grid.cell_of(p);
                cells[bi * l + t] = cell;
                let src = &self.cell_embeddings.data()[cell as usize * d..(cell as usize + 1) * d];
                structural.data_mut()[(bi * l + t) * d..(bi * l + t + 1) * d].copy_from_slice(src);
                let sf = self.norm.apply(feat);
                spatial.data_mut()[(bi * l + t) * SPATIAL_DIM..(bi * l + t + 1) * SPATIAL_DIM]
                    .copy_from_slice(&sf);
            }
        }
        Ok(BatchInputs {
            structural,
            spatial,
            lens,
            cells,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use trajcl_geo::{Bbox, Point};

    fn featurizer(max_len: usize) -> Featurizer {
        let region = Bbox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0));
        let grid = Grid::new(region, 100.0);
        let mut rng = StdRng::seed_from_u64(0);
        let table = Tensor::randn(Shape::d2(grid.num_cells(), 8), 0.0, 1.0, &mut rng);
        let norm = SpatialNorm::new(region, 100.0);
        Featurizer::new(grid, table, norm, max_len)
    }

    fn traj(n: usize, y: f64) -> Trajectory {
        (0..n)
            .map(|i| Point::new(50.0 + i as f64 * 40.0, y))
            .collect()
    }

    #[test]
    fn shapes_and_lengths() {
        let f = featurizer(64);
        let batch = f
            .featurize(&[traj(5, 100.0), traj(9, 500.0)])
            .expect("featurize");
        assert_eq!(batch.batch(), 2);
        assert_eq!(batch.seq_len(), 9);
        assert_eq!(batch.lens, vec![5, 9]);
        assert_eq!(batch.structural.shape(), Shape::d3(2, 9, 8));
        assert_eq!(batch.spatial.shape(), Shape::d3(2, 9, 4));
    }

    #[test]
    fn padding_rows_are_zero() {
        let f = featurizer(64);
        let batch = f
            .featurize(&[traj(3, 100.0), traj(6, 500.0)])
            .expect("featurize");
        for t in 3..6 {
            for k in 0..8 {
                assert_eq!(batch.structural.at3(0, t, k), 0.0);
            }
            for k in 0..4 {
                assert_eq!(batch.spatial.at3(0, t, k), 0.0);
            }
        }
    }

    #[test]
    fn structural_rows_come_from_cell_table() {
        let f = featurizer(64);
        let t = traj(4, 100.0);
        let batch = f.featurize(std::slice::from_ref(&t)).expect("featurize");
        for (i, p) in t.points().iter().enumerate() {
            let cell = f.grid().cell_of(p) as usize;
            let expect = &f.cell_embeddings.data()[cell * 8..(cell + 1) * 8];
            let got: Vec<f32> = (0..8).map(|k| batch.structural.at3(0, i, k)).collect();
            assert_eq!(got.as_slice(), expect);
            assert_eq!(batch.cells[i], cell as u32);
        }
    }

    #[test]
    fn long_trajectories_truncate_to_max_len() {
        let f = featurizer(6);
        let batch = f.featurize(&[traj(20, 100.0)]).expect("featurize");
        assert_eq!(batch.seq_len(), 6);
        assert_eq!(batch.lens, vec![6]);
    }

    #[test]
    fn empty_batch_is_an_error_not_a_panic() {
        let f = featurizer(64);
        assert_eq!(f.featurize(&[]).err(), Some(FeaturizeError::EmptyBatch));
    }

    #[test]
    fn empty_trajectory_is_an_error_with_index() {
        let f = featurizer(64);
        let empty = Trajectory::new(Vec::new());
        assert_eq!(
            f.featurize(&[traj(4, 100.0), empty]).err(),
            Some(FeaturizeError::EmptyTrajectory { index: 1 })
        );
    }

    #[test]
    fn spatial_features_are_normalised() {
        let f = featurizer(64);
        let batch = f.featurize(&[traj(10, 500.0)]).expect("featurize");
        // Coordinates fall in [-1, 1]; radian/len scaled reasonably.
        for t in 0..10 {
            assert!(batch.spatial.at3(0, t, 0).abs() <= 1.0);
            assert!(batch.spatial.at3(0, t, 1).abs() <= 1.0);
        }
    }
}
