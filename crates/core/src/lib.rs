//! # trajcl-core
//!
//! The paper's primary contribution: **TrajCL**, a contrastive
//! trajectory-similarity learning model with a dual-feature self-attention
//! backbone encoder (ICDE 2023).
//!
//! Pipeline (Fig. 2): trajectory augmentation ([`trajcl_data::augment`])
//! → pointwise feature enrichment ([`featurizer`]) → DualSTB backbone
//! ([`encoder`], [`dual_attention`]) → projection heads → InfoNCE over a
//! MoCo-style dual branch with a momentum encoder and a negative queue
//! ([`moco`], [`trainer`]). Trained encoders compare trajectories by L1
//! distance between embeddings ([`model::l1_distances`]) and can be
//! fine-tuned into fast estimators of heuristic measures ([`finetune()`]).

pub mod config;
pub mod dual_attention;
pub mod encoder;
pub mod featurizer;
pub mod finetune;
pub mod moco;
pub mod model;
pub mod persist;
pub mod trainer;

pub use config::TrajClConfig;
pub use dual_attention::DualMsmLayer;
pub use encoder::{DualStbEncoder, EncoderVariant};
pub use featurizer::{BatchInputs, Featurizer};
pub use finetune::{finetune, FinetuneConfig, FinetuneScope, FinetunedEstimator};
pub use moco::MocoState;
pub use model::{l1_distances, TrajClModel};
pub use persist::{load_model, save_model, PersistError};
pub use trainer::{train, TrainReport};

use rand::Rng;
use trajcl_data::Dataset;
use trajcl_geo::{Grid, SpatialNorm};
use trajcl_graph::{node2vec_cell_embeddings, SgnsConfig, WalkConfig};

/// Builds the standard featurizer for a dataset: grid over the region at
/// the profile's cell side, node2vec cell embeddings of width `dim`,
/// spatial normalisation against the region.
pub fn build_featurizer(
    dataset: &Dataset,
    dim: usize,
    max_len: usize,
    rng: &mut impl Rng,
) -> Featurizer {
    let cell_side = dataset.profile.cell_side();
    let grid = Grid::new(dataset.region, cell_side);
    let walk_cfg = WalkConfig::default();
    let sgns_cfg = SgnsConfig {
        dim,
        ..Default::default()
    };
    let table = node2vec_cell_embeddings(&grid, &walk_cfg, &sgns_cfg, rng);
    let norm = SpatialNorm::new(dataset.region, cell_side);
    Featurizer::new(grid, table, norm, max_len)
}
