//! DualSTB — the dual-feature self-attention-based trajectory backbone
//! encoder (§IV-C), plus the two ablation variants of §V-G.

use crate::dual_attention::DualMsmLayer;
use crate::featurizer::BatchInputs;
use rand::Rng;
use trajcl_geo::SPATIAL_DIM;
use trajcl_nn::attention::{
    add_positional, attention_mask_bias, sinusoidal_pe, TransformerEncoderLayer,
};
use trajcl_nn::{Fwd, InferFwd, Linear, ParamStore};
use trajcl_tensor::{InferCtx, Tensor, Var};

/// Encoder architecture variant (Fig. 7 ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncoderVariant {
    /// Full DualSTB with DualMSM fusion (TrajCL).
    Dual,
    /// `TrajCL-MSM`: vanilla Transformer on structural features only.
    VanillaMsm,
    /// `TrajCL-concat`: vanilla Transformer on concatenated
    /// structural ∥ spatial features.
    Concat,
}

impl EncoderVariant {
    /// Display name used in the Fig. 7 ablation output.
    pub fn name(&self) -> &'static str {
        match self {
            EncoderVariant::Dual => "TrajCL",
            EncoderVariant::VanillaMsm => "TrajCL-MSM",
            EncoderVariant::Concat => "TrajCL-concat",
        }
    }
}

/// The trajectory backbone encoder `F : T -> h ∈ R^d`.
///
/// Spatial four-tuples are linearly lifted from `R^4` to the model width so
/// each attention head operates on a non-trivial subspace (the paper keeps
/// `d_s = 4`, which with `h = 4` heads would leave one dimension per head;
/// lifting preserves the architecture while keeping the spatial attention
/// expressive — see DESIGN.md §4).
#[derive(Debug, Clone)]
pub struct DualStbEncoder {
    variant: EncoderVariant,
    spatial_proj: Linear,
    concat_proj: Option<Linear>,
    dual_layers: Vec<DualMsmLayer>,
    vanilla_layers: Vec<TransformerEncoderLayer>,
    dim: usize,
    heads: usize,
}

impl DualStbEncoder {
    /// Registers an encoder of the given variant. Parameter names are
    /// prefixed `{name}.layer{i}` so fine-tuning can freeze by prefix.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        variant: EncoderVariant,
        dim: usize,
        heads: usize,
        layers: usize,
        ffn_hidden: usize,
        dropout: f32,
        rng: &mut impl Rng,
    ) -> Self {
        let spatial_proj = Linear::new(
            store,
            &format!("{name}.spatial_proj"),
            SPATIAL_DIM,
            dim,
            rng,
        );
        let concat_proj = (variant == EncoderVariant::Concat)
            .then(|| Linear::new(store, &format!("{name}.concat_proj"), 2 * dim, dim, rng));
        let mut dual_layers = Vec::new();
        let mut vanilla_layers = Vec::new();
        for i in 0..layers {
            match variant {
                EncoderVariant::Dual => dual_layers.push(DualMsmLayer::new(
                    store,
                    &format!("{name}.layer{i}"),
                    dim,
                    heads,
                    ffn_hidden,
                    dropout,
                    rng,
                )),
                EncoderVariant::VanillaMsm | EncoderVariant::Concat => {
                    vanilla_layers.push(TransformerEncoderLayer::new(
                        store,
                        &format!("{name}.layer{i}"),
                        dim,
                        heads,
                        ffn_hidden,
                        dropout,
                        rng,
                    ))
                }
            }
        }
        DualStbEncoder {
            variant,
            spatial_proj,
            concat_proj,
            dual_layers,
            vanilla_layers,
            dim,
            heads,
        }
    }

    /// Output embedding dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The architecture variant.
    pub fn variant(&self) -> EncoderVariant {
        self.variant
    }

    /// Number of encoder layers.
    pub fn num_layers(&self) -> usize {
        self.dual_layers.len().max(self.vanilla_layers.len())
    }

    /// Encodes a featurised batch into `(B, d)` trajectory embeddings
    /// (average-pooled over valid positions).
    pub fn forward(&self, f: &mut Fwd, batch: &BatchInputs) -> Var {
        let l = batch.seq_len();
        let pe = sinusoidal_pe(l, self.dim);
        let mask_t = attention_mask_bias(&batch.lens, l, self.heads);
        let t_raw = f.input(batch.structural.clone());
        let t0 = add_positional(f, t_raw, &pe);
        let mask = f.input(mask_t);

        let pooled = match self.variant {
            EncoderVariant::Dual => {
                let s_raw = f.input(batch.spatial.clone());
                let s_lift = self.spatial_proj.forward(f, s_raw);
                let mut s = add_positional(f, s_lift, &pe);
                let mut t = t0;
                for layer in &self.dual_layers {
                    let (tn, sn) = layer.forward(f, t, s, Some(mask));
                    t = tn;
                    s = sn;
                }
                t
            }
            EncoderVariant::VanillaMsm => {
                let mut x = t0;
                for layer in &self.vanilla_layers {
                    let (xn, _) = layer.forward(f, x, Some(mask));
                    x = xn;
                }
                x
            }
            EncoderVariant::Concat => {
                let s_raw = f.input(batch.spatial.clone());
                let s_lift = self.spatial_proj.forward(f, s_raw);
                let cat = f.tape.concat(&[t0, s_lift]);
                let proj = self
                    .concat_proj
                    .as_ref()
                    .expect("concat variant has a projection")
                    .forward(f, cat);
                let mut x = add_positional(f, proj, &pe);
                for layer in &self.vanilla_layers {
                    let (xn, _) = layer.forward(f, x, Some(mask));
                    x = xn;
                }
                x
            }
        };
        f.tape.mean_pool_masked(pooled, &batch.lens)
    }

    /// Tape-free forward: the serving-path twin of
    /// [`DualStbEncoder::forward`]. No autograd bookkeeping, no additive
    /// mask tensor (lengths are passed straight to the fused attention
    /// kernels), dropout statically elided, and every intermediate drawn
    /// from the [`InferCtx`] scratch arena.
    pub fn infer_forward(&self, f: &mut InferFwd, batch: &BatchInputs) -> Tensor {
        let l = batch.seq_len();
        let pe = sinusoidal_pe(l, self.dim);
        let lens = &batch.lens;
        let mut t = f.ctx.alloc_copy(&batch.structural);
        InferCtx::add_pe_inplace(&mut t, &pe);

        let pooled = match self.variant {
            EncoderVariant::Dual => {
                let mut s = self.spatial_proj.infer_forward(f, &batch.spatial);
                InferCtx::add_pe_inplace(&mut s, &pe);
                let last = self.dual_layers.len().saturating_sub(1);
                for (li, layer) in self.dual_layers.iter().enumerate() {
                    let (tn, sn) = layer.infer_forward(f, &t, &s, lens, li < last);
                    f.ctx.recycle(std::mem::replace(&mut t, tn));
                    if let Some(sn) = sn {
                        f.ctx.recycle(std::mem::replace(&mut s, sn));
                    }
                }
                f.ctx.recycle(s);
                t
            }
            EncoderVariant::VanillaMsm => {
                for layer in &self.vanilla_layers {
                    let (tn, _) = layer.infer_forward(f, &t, lens, false);
                    f.ctx.recycle(std::mem::replace(&mut t, tn));
                }
                t
            }
            EncoderVariant::Concat => {
                let s_lift = self.spatial_proj.infer_forward(f, &batch.spatial);
                let cat = f.ctx.concat2(&t, &s_lift);
                let mut x = self
                    .concat_proj
                    .as_ref()
                    .expect("concat variant has a projection")
                    .infer_forward(f, &cat);
                InferCtx::add_pe_inplace(&mut x, &pe);
                for tmp in [t, s_lift, cat] {
                    f.ctx.recycle(tmp);
                }
                for layer in &self.vanilla_layers {
                    let (xn, _) = layer.infer_forward(f, &x, lens, false);
                    f.ctx.recycle(std::mem::replace(&mut x, xn));
                }
                x
            }
        };
        let out = f.ctx.mean_pool_masked(&pooled, lens);
        f.ctx.recycle(pooled);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurizer::Featurizer;
    use rand::{rngs::StdRng, SeedableRng};
    use trajcl_geo::{Bbox, Grid, Point, SpatialNorm, Trajectory};
    use trajcl_tensor::{Shape, Tape, Tensor};

    fn setup(variant: EncoderVariant) -> (DualStbEncoder, ParamStore, Featurizer, StdRng) {
        let mut rng = StdRng::seed_from_u64(0);
        let region = Bbox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0));
        let grid = Grid::new(region, 100.0);
        let table = Tensor::randn(Shape::d2(grid.num_cells(), 16), 0.0, 0.5, &mut rng);
        let feat = Featurizer::new(grid, table, SpatialNorm::new(region, 100.0), 64);
        let mut store = ParamStore::new();
        let enc = DualStbEncoder::new(&mut store, "enc", variant, 16, 2, 2, 32, 0.0, &mut rng);
        (enc, store, feat, rng)
    }

    fn traj(n: usize, y: f64) -> Trajectory {
        (0..n)
            .map(|i| Point::new(30.0 + i as f64 * 35.0, y))
            .collect()
    }

    #[test]
    fn all_variants_produce_embeddings() {
        for variant in [
            EncoderVariant::Dual,
            EncoderVariant::VanillaMsm,
            EncoderVariant::Concat,
        ] {
            let (enc, store, feat, mut rng) = setup(variant);
            let batch = feat
                .featurize(&[traj(5, 100.0), traj(9, 700.0)])
                .expect("featurize");
            let mut tape = Tape::new();
            let mut f = Fwd::new(&mut tape, &store, &mut rng, false);
            let h = enc.forward(&mut f, &batch);
            assert_eq!(
                tape.shape(h),
                Shape::d2(2, 16),
                "variant {}",
                variant.name()
            );
            assert!(tape.value(h).all_finite());
        }
    }

    #[test]
    fn padding_invariance() {
        // Same trajectory alone vs padded alongside a longer one must embed
        // identically (masking + masked pooling).
        let (enc, store, feat, mut rng) = setup(EncoderVariant::Dual);
        let a = traj(4, 200.0);
        let long = traj(12, 800.0);
        let solo = feat.featurize(std::slice::from_ref(&a)).expect("featurize");
        let padded = feat.featurize(&[a.clone(), long]).expect("featurize");
        let embed = |batch: &crate::featurizer::BatchInputs, rng: &mut StdRng| -> Vec<f32> {
            let mut tape = Tape::new();
            let mut f = Fwd::new(&mut tape, &store, rng, false);
            let h = enc.forward(&mut f, batch);
            tape.value(h).row(0).to_vec()
        };
        let e1 = embed(&solo, &mut rng);
        let e2 = embed(&padded, &mut rng);
        for (x, y) in e1.iter().zip(&e2) {
            assert!(
                (x - y).abs() < 1e-4,
                "padding changed the embedding: {x} vs {y}"
            );
        }
    }

    #[test]
    fn gradients_reach_all_parameters_dual() {
        let (enc, mut store, feat, mut rng) = setup(EncoderVariant::Dual);
        let batch = feat
            .featurize(&[traj(6, 300.0), traj(7, 600.0)])
            .expect("featurize");
        let mut tape = Tape::new();
        let mut f = Fwd::new(&mut tape, &store, &mut rng, true);
        let h = enc.forward(&mut f, &batch);
        let loss = tape.mean_all(h);
        let grads = tape.backward(loss);
        store.accumulate(grads.into_param_grads(&tape));
        // The LAST layer's spatial value path (wv/wo/ln/mlp) is
        // architecturally unused: only its attention coefficients A_s feed
        // the fusion (Eq. 15), and its s-output goes nowhere. Everything
        // else must receive gradient.
        let last = enc.num_layers() - 1;
        let dead_prefix = format!("enc.layer{last}.spatial.");
        let expected_dead = |name: &str| {
            name.starts_with(&dead_prefix) && !name.contains("attn.wq") && !name.contains("attn.wk")
        };
        let mut missing = Vec::new();
        for id in store.ids() {
            let name = store.name(id).to_string();
            let zero = store.grad(id).max_abs() == 0.0;
            if zero && !expected_dead(&name) {
                missing.push(name);
            } else if !zero && expected_dead(&name) {
                missing.push(format!("{name} (unexpectedly alive)"));
            }
        }
        assert!(
            missing.is_empty(),
            "parameters with wrong gradient liveness: {missing:?}"
        );
    }

    #[test]
    fn different_trajectories_embed_differently() {
        let (enc, store, feat, mut rng) = setup(EncoderVariant::Dual);
        let batch = feat
            .featurize(&[traj(8, 100.0), traj(8, 900.0)])
            .expect("featurize");
        let mut tape = Tape::new();
        let mut f = Fwd::new(&mut tape, &store, &mut rng, false);
        let h = enc.forward(&mut f, &batch);
        let v = tape.value(h);
        let d: f32 = (0..16).map(|k| (v.at2(0, k) - v.at2(1, k)).abs()).sum();
        assert!(d > 1e-3, "distinct trajectories collapsed to one embedding");
    }
}
