//! DualMSM — the dual-feature multi-head self-attention module (§IV-C).
//!
//! Per encoder layer:
//! 1. the **spatial branch** runs a full vanilla-MSM encoder sub-layer over
//!    the (projected) spatial features, producing updated spatial states
//!    and the spatial attention coefficients `A_s`;
//! 2. the **structural branch** computes its own attention coefficients
//!    `A_t` from the structural features (Eq. 12);
//! 3. the two are fused per head with the learnable weight γ:
//!    `C_ts = (A_t + γ·A_s)·V_t` (Eq. 15), concatenated across heads and
//!    linearly transformed;
//! 4. the result goes through the residual + layer-norm + MLP post-block of
//!    Eqs. 10–11.

use rand::Rng;
use trajcl_nn::attention::{
    infer_project_heads, project_heads, scaled_scores, TransformerEncoderLayer,
};
use trajcl_nn::{Fwd, InferFwd, LayerNorm, Mlp, ParamId, ParamStore};
use trajcl_tensor::{InferCtx, Tensor, Var};

/// One DualSTB encoder layer built around DualMSM.
#[derive(Debug, Clone)]
pub struct DualMsmLayer {
    wq_t: ParamId,
    wk_t: ParamId,
    wv_t: ParamId,
    wo_t: ParamId,
    /// The learnable fusion weight γ of Eq. 15.
    pub gamma: ParamId,
    spatial: TransformerEncoderLayer,
    ln1: LayerNorm,
    mlp: Mlp,
    ln2: LayerNorm,
    dropout: f32,
    heads: usize,
}

impl DualMsmLayer {
    /// Registers one layer of width `dim` with `heads` heads and an
    /// `ffn_hidden`-wide feed-forward block.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        heads: usize,
        ffn_hidden: usize,
        dropout: f32,
        rng: &mut impl Rng,
    ) -> Self {
        assert_eq!(dim % heads, 0, "dim {dim} not divisible by heads {heads}");
        let mut w = |suffix: &str, rng: &mut dyn rand::RngCore| {
            store.add(
                format!("{name}.{suffix}"),
                trajcl_nn::init::xavier_uniform(dim, dim, &mut &mut *rng),
            )
        };
        let wq_t = w("wq_t", rng);
        let wk_t = w("wk_t", rng);
        let wv_t = w("wv_t", rng);
        let wo_t = w("wo_t", rng);
        // γ starts at 1 so both attention families contribute from step one.
        let gamma = store.add(format!("{name}.gamma"), Tensor::scalar(1.0));
        DualMsmLayer {
            wq_t,
            wk_t,
            wv_t,
            wo_t,
            gamma,
            spatial: TransformerEncoderLayer::new(
                store,
                &format!("{name}.spatial"),
                dim,
                heads,
                ffn_hidden,
                dropout,
                rng,
            ),
            ln1: LayerNorm::new(store, &format!("{name}.ln1"), dim),
            mlp: Mlp::new(
                store,
                &format!("{name}.mlp"),
                dim,
                ffn_hidden,
                dim,
                dropout,
                rng,
            ),
            ln2: LayerNorm::new(store, &format!("{name}.ln2"), dim),
            dropout,
            heads,
        }
    }

    /// Applies the layer to structural states `t` and spatial states `s`
    /// (both `(B, L, dim)`); returns the updated pair.
    pub fn forward(&self, f: &mut Fwd, t: Var, s: Var, mask: Option<Var>) -> (Var, Var) {
        // Spatial branch: vanilla encoder sub-layer; its attention matrix is
        // the A_s of the (stacked) spatial MSM.
        let (s_out, a_s) = self.spatial.forward(f, s, mask);

        // Structural attention A_t (Eq. 12).
        let q = project_heads(f, t, self.wq_t, self.heads);
        let k = project_heads(f, t, self.wk_t, self.heads);
        let v = project_heads(f, t, self.wv_t, self.heads);
        let a_t = scaled_scores(f, q, k, mask);

        // Fusion: C_ts = (A_t + γ A_s) V_t per head (Eq. 15).
        let gamma = f.p(self.gamma);
        let gated = f.tape.mul_scalar_var(a_s, gamma);
        let combined = f.tape.add(a_t, gated);
        let ctx = f.tape.matmul(combined, v, false, false);
        let merged = f.tape.merge_heads(ctx, self.heads);
        let wo = f.p(self.wo_t);
        let cts = f.tape.matmul(merged, wo, false, false);

        // Post-block (Eqs. 10–11).
        let cts = f.dropout(cts, self.dropout);
        let res = f.tape.add(t, cts);
        let h = self.ln1.forward(f, res);
        let m = self.mlp.forward(f, h);
        let m = f.dropout(m, self.dropout);
        let res2 = f.tape.add(h, m);
        let t_out = self.ln2.forward(f, res2);
        (t_out, s_out)
    }

    /// Tape-free forward (dropout elided), mirroring [`DualMsmLayer::forward`]
    /// with lengths in place of an additive mask tensor. The γ-fusion
    /// `A_t + γ·A_s` is computed in place on the structural coefficients,
    /// never materialising the scaled copy.
    ///
    /// When `need_spatial_out` is false (the encoder's last layer, whose
    /// spatial output feeds nothing — only `A_s` enters the fusion, Eq.
    /// 15), the spatial branch computes just its attention coefficients
    /// and the whole spatial value path (V/output projections, residual
    /// MLP block) is skipped; `None` is returned in its place.
    pub fn infer_forward(
        &self,
        f: &mut InferFwd,
        t: &Tensor,
        s: &Tensor,
        lens: &[usize],
        need_spatial_out: bool,
    ) -> (Tensor, Option<Tensor>) {
        // Spatial branch (coefficients A_s are needed for the fusion).
        let (s_out, a_s) = if need_spatial_out {
            let (s_out, a_s) = self.spatial.infer_forward(f, s, lens, true);
            (
                Some(s_out),
                a_s.expect("spatial branch computes coefficients"),
            )
        } else {
            (None, self.spatial.attn.infer_attention_probs(f, s, lens))
        };

        // Structural attention A_t fused with γ·A_s and the value multiply
        // in one kernel pass (Eq. 12 + Eq. 15) — A_t is never materialised.
        let q = infer_project_heads(f, t, self.wq_t, self.heads);
        let k = infer_project_heads(f, t, self.wk_t, self.heads);
        let v = infer_project_heads(f, t, self.wv_t, self.heads);
        let gamma = f.p(self.gamma).data()[0];
        let ctx_heads = f.ctx.fused_attention_bias(&q, &k, &v, &a_s, gamma, lens);
        let merged = f.ctx.merge_heads(&ctx_heads, self.heads);
        let mut h = f.ctx.matmul(&merged, f.p(self.wo_t), false, false);
        for tmp in [a_s, q, k, v, ctx_heads, merged] {
            f.ctx.recycle(tmp);
        }

        // Post-block (Eqs. 10–11).
        InferCtx::add_inplace(&mut h, t);
        self.ln1.infer_forward_inplace(f, &mut h);
        let mut t_out = self.mlp.infer_forward(f, &h);
        InferCtx::add_inplace(&mut t_out, &h);
        self.ln2.infer_forward_inplace(f, &mut t_out);
        f.ctx.recycle(h);
        (t_out, s_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use trajcl_nn::attention::attention_mask_bias;
    use trajcl_tensor::{Shape, Tape};

    fn layer_and_store(dim: usize, heads: usize) -> (DualMsmLayer, ParamStore, StdRng) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let layer = DualMsmLayer::new(&mut store, "dual", dim, heads, dim * 2, 0.0, &mut rng);
        (layer, store, rng)
    }

    #[test]
    fn forward_shapes() {
        let (layer, store, mut rng) = layer_and_store(8, 2);
        let mut tape = Tape::new();
        let mut f = Fwd::new(&mut tape, &store, &mut rng, false);
        let t = f.input(Tensor::randn(
            Shape::d3(2, 5, 8),
            0.0,
            1.0,
            &mut StdRng::seed_from_u64(1),
        ));
        let s = f.input(Tensor::randn(
            Shape::d3(2, 5, 8),
            0.0,
            1.0,
            &mut StdRng::seed_from_u64(2),
        ));
        let (t2, s2) = layer.forward(&mut f, t, s, None);
        assert_eq!(tape.shape(t2), Shape::d3(2, 5, 8));
        assert_eq!(tape.shape(s2), Shape::d3(2, 5, 8));
    }

    #[test]
    fn gamma_receives_gradient() {
        let (layer, mut store, mut rng) = layer_and_store(8, 2);
        let mut tape = Tape::new();
        let mut f = Fwd::new(&mut tape, &store, &mut rng, true);
        let t = f.input(Tensor::randn(
            Shape::d3(2, 4, 8),
            0.0,
            1.0,
            &mut StdRng::seed_from_u64(3),
        ));
        let s = f.input(Tensor::randn(
            Shape::d3(2, 4, 8),
            0.0,
            1.0,
            &mut StdRng::seed_from_u64(4),
        ));
        let (t2, _) = layer.forward(&mut f, t, s, None);
        let loss = tape.mean_all(t2);
        let grads = tape.backward(loss);
        store.accumulate(grads.into_param_grads(&tape));
        let g = store.grad(layer.gamma);
        assert!(g.data()[0].abs() > 0.0, "γ must be trained");
    }

    #[test]
    fn spatial_features_change_the_output() {
        // With different spatial inputs (same structural), outputs differ:
        // proof that A_s enters the fusion.
        let (layer, store, mut rng) = layer_and_store(8, 2);
        let t_val = Tensor::randn(Shape::d3(1, 4, 8), 0.0, 1.0, &mut StdRng::seed_from_u64(5));
        let s1 = Tensor::randn(Shape::d3(1, 4, 8), 0.0, 1.0, &mut StdRng::seed_from_u64(6));
        let s2 = Tensor::randn(Shape::d3(1, 4, 8), 0.0, 1.0, &mut StdRng::seed_from_u64(7));
        let run = |s_val: &Tensor, rng: &mut StdRng| -> Tensor {
            let mut tape = Tape::new();
            let mut f = Fwd::new(&mut tape, &store, rng, false);
            let t = f.input(t_val.clone());
            let s = f.input(s_val.clone());
            let (t2, _) = layer.forward(&mut f, t, s, None);
            tape.value(t2).clone()
        };
        let o1 = run(&s1, &mut rng);
        let o2 = run(&s2, &mut rng);
        assert!(
            !o1.approx_eq(&o2, 1e-5),
            "spatial branch must influence output"
        );
    }

    #[test]
    fn masked_positions_do_not_influence_valid_ones() {
        // Change padding content; valid outputs must stay identical.
        let (layer, store, mut rng) = layer_and_store(8, 2);
        let mask = attention_mask_bias(&[2], 4, 2);
        let base_t = Tensor::randn(Shape::d3(1, 4, 8), 0.0, 1.0, &mut StdRng::seed_from_u64(8));
        let base_s = Tensor::randn(Shape::d3(1, 4, 8), 0.0, 1.0, &mut StdRng::seed_from_u64(9));
        let mut poisoned_t = base_t.clone();
        let mut poisoned_s = base_s.clone();
        for t in 2..4 {
            for k in 0..8 {
                poisoned_t.data_mut()[(t) * 8 + k] = 99.0;
                poisoned_s.data_mut()[(t) * 8 + k] = -55.0;
            }
        }
        let run = |tv: &Tensor, sv: &Tensor, rng: &mut StdRng| -> Tensor {
            let mut tape = Tape::new();
            let mut f = Fwd::new(&mut tape, &store, rng, false);
            let t = f.input(tv.clone());
            let s = f.input(sv.clone());
            let m = f.input(mask.clone());
            let (t2, _) = layer.forward(&mut f, t, s, Some(m));
            tape.value(t2).clone()
        };
        let clean = run(&base_t, &base_s, &mut rng);
        let dirty = run(&poisoned_t, &poisoned_s, &mut rng);
        for t in 0..2 {
            for k in 0..8 {
                let (a, b) = (clean.at3(0, t, k), dirty.at3(0, t, k));
                assert!(
                    (a - b).abs() < 1e-4,
                    "padding leaked into valid position {t}: {a} vs {b}"
                );
            }
        }
    }
}
