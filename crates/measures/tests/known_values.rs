//! Hand-computed reference values and cross-measure relationships for the
//! heuristic similarity measures.

use trajcl_geo::Trajectory;
use trajcl_measures::{
    discrete_hausdorff, dtw, edr, edr_normalized, edwp, frechet, hausdorff, rank_of,
    HeuristicMeasure,
};

fn t(p: &[(f64, f64)]) -> Trajectory {
    Trajectory::from_xy(p)
}

#[test]
fn hausdorff_hand_computed_l_shape() {
    // Square corner path vs its diagonal: the farthest point of the corner
    // path from the diagonal is the corner itself, at distance √2/2 · 10.
    let corner = t(&[(0.0, 0.0), (10.0, 0.0), (10.0, 10.0)]);
    let diagonal = t(&[(0.0, 0.0), (10.0, 10.0)]);
    let expect = 10.0 / 2.0_f64.sqrt();
    assert!((hausdorff(&corner, &diagonal) - expect).abs() < 1e-9);
}

#[test]
fn frechet_hand_computed_crossing() {
    // Two crossing diagonals of a unit square: the leash must reach a far
    // corner pair at some moment -> distance 1 (sides have length 1).
    let d1 = t(&[(0.0, 0.0), (1.0, 1.0)]);
    let d2 = t(&[(0.0, 1.0), (1.0, 0.0)]);
    assert!((frechet(&d1, &d2) - 1.0).abs() < 1e-9);
}

#[test]
fn dtw_hand_computed_offset_points() {
    // Point sequences [(0),(1),(2)] vs [(0),(2)] on a line: optimal monotone
    // alignment is 0-0, 1-{0 or 2}, 2-2 => total 1.
    let a = t(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
    let b = t(&[(0.0, 0.0), (2.0, 0.0)]);
    assert!((dtw(&a, &b) - 1.0).abs() < 1e-9);
}

#[test]
fn edr_counts_minimal_edits() {
    // b equals a with one substituted middle point far away -> 1 edit.
    let a = t(&[(0.0, 0.0), (10.0, 0.0), (20.0, 0.0), (30.0, 0.0)]);
    let b = t(&[(0.0, 0.0), (10.0, 500.0), (20.0, 0.0), (30.0, 0.0)]);
    assert_eq!(edr(&a, &b, 1.0), 1.0);
    assert!((edr_normalized(&a, &b, 1.0) - 0.25).abs() < 1e-12);
}

#[test]
fn discrete_vs_continuous_hausdorff_ordering() {
    // Continuous (point-to-segment) never exceeds discrete (point-to-point).
    let a = t(&[(0.0, 0.0), (10.0, 0.0), (20.0, 5.0)]);
    let b = t(&[(0.0, 2.0), (20.0, 2.0)]);
    assert!(hausdorff(&a, &b) <= discrete_hausdorff(&a, &b) + 1e-12);
}

#[test]
fn translation_shifts_all_metric_measures_consistently() {
    let a = t(&[(0.0, 0.0), (10.0, 5.0), (20.0, 0.0)]);
    let near = t(&[(0.0, 1.0), (10.0, 6.0), (20.0, 1.0)]);
    let far = t(&[(0.0, 100.0), (10.0, 105.0), (20.0, 100.0)]);
    for m in [
        HeuristicMeasure::Hausdorff,
        HeuristicMeasure::Frechet,
        HeuristicMeasure::Dtw,
        HeuristicMeasure::Edwp,
    ] {
        let dn = m.distance(&a, &near);
        let df = m.distance(&a, &far);
        assert!(dn < df, "{} ordering broken: {dn} !< {df}", m.name());
    }
}

#[test]
fn edwp_prefers_shape_over_sampling() {
    // Identical L-shaped geometry at different sampling rates is closer
    // than a straight path of the same length.
    let l_sparse = t(&[(0.0, 0.0), (100.0, 0.0), (100.0, 100.0)]);
    let l_dense = t(&[
        (0.0, 0.0),
        (25.0, 0.0),
        (50.0, 0.0),
        (75.0, 0.0),
        (100.0, 0.0),
        (100.0, 25.0),
        (100.0, 50.0),
        (100.0, 75.0),
        (100.0, 100.0),
    ]);
    let straight = t(&[(0.0, 0.0), (200.0, 0.0)]);
    assert!(edwp(&l_sparse, &l_dense) < edwp(&l_sparse, &straight));
}

#[test]
fn rank_of_handles_all_positions() {
    let d = [0.5, 0.1, 0.9];
    assert_eq!(rank_of(&d, 1), 1);
    assert_eq!(rank_of(&d, 0), 2);
    assert_eq!(rank_of(&d, 2), 3);
}

#[test]
fn measures_scale_with_coordinates() {
    // Scaling all coordinates by c scales metric distances by c
    // (homogeneity) for point-distance-based measures.
    let a = t(&[(0.0, 0.0), (3.0, 4.0), (6.0, 0.0)]);
    let b = t(&[(0.0, 2.0), (6.0, 2.0)]);
    let scale = |tr: &Trajectory, c: f64| -> Trajectory {
        tr.points()
            .iter()
            .map(|p| trajcl_geo::Point::new(p.x * c, p.y * c))
            .collect()
    };
    for m in [
        HeuristicMeasure::Hausdorff,
        HeuristicMeasure::Frechet,
        HeuristicMeasure::Dtw,
    ] {
        let base = m.distance(&a, &b);
        let scaled = m.distance(&scale(&a, 10.0), &scale(&b, 10.0));
        assert!(
            (scaled - 10.0 * base).abs() < 1e-6 * scaled.max(1.0),
            "{} not homogeneous: {base} -> {scaled}",
            m.name()
        );
    }
}

#[test]
fn longer_divergence_costs_more_under_edwp_and_dtw() {
    // Accumulating measures charge per unit of divergent travel.
    let a_short = t(&[(0.0, 0.0), (10.0, 0.0)]);
    let b_short = t(&[(0.0, 5.0), (10.0, 5.0)]);
    let a_long = t(&[(0.0, 0.0), (50.0, 0.0), (100.0, 0.0)]);
    let b_long = t(&[(0.0, 5.0), (50.0, 5.0), (100.0, 5.0)]);
    assert!(edwp(&a_long, &b_long) > edwp(&a_short, &b_short));
    assert!(dtw(&a_long, &b_long) > dtw(&a_short, &b_short));
    // ...while max-based Hausdorff does not.
    assert!((hausdorff(&a_long, &b_long) - hausdorff(&a_short, &b_short)).abs() < 1e-9);
}
