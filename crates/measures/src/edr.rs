//! Edit Distance on Real sequence (EDR, Chen et al. \[7\]).
//!
//! Counts the minimum number of insert/delete/substitute edits needed to
//! align two trajectories, where two points *match* (cost 0) when both
//! coordinate differences are within a threshold `eps`.

use trajcl_geo::Trajectory;

/// EDR distance with matching threshold `eps` meters.
///
/// Returns the raw edit count in `[0, max(|a|, |b|)]`.
pub fn edr(a: &Trajectory, b: &Trajectory, eps: f64) -> f64 {
    let pa = a.points();
    let pb = b.points();
    if pa.is_empty() {
        return pb.len() as f64;
    }
    if pb.is_empty() {
        return pa.len() as f64;
    }
    let m = pb.len();
    // dp[j] = cost aligning current prefix of a with b[..j].
    let mut prev: Vec<f64> = (0..=m).map(|j| j as f64).collect();
    let mut cur = vec![0.0f64; m + 1];
    for (i, p) in pa.iter().enumerate() {
        cur[0] = (i + 1) as f64;
        for (j, q) in pb.iter().enumerate() {
            let subcost = if (p.x - q.x).abs() <= eps && (p.y - q.y).abs() <= eps {
                0.0
            } else {
                1.0
            };
            cur[j + 1] = (prev[j] + subcost) // match / substitute
                .min(prev[j + 1] + 1.0) // delete from a
                .min(cur[j] + 1.0); // insert from b
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// EDR normalised by the longer trajectory length, in `[0, 1]`.
pub fn edr_normalized(a: &Trajectory, b: &Trajectory, eps: f64) -> f64 {
    let denom = a.len().max(b.len()).max(1) as f64;
    edr(a, b, eps) / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_is_zero() {
        let t = Trajectory::from_xy(&[(0.0, 0.0), (10.0, 10.0), (20.0, 0.0)]);
        assert_eq!(edr(&t, &t, 1.0), 0.0);
    }

    #[test]
    fn within_threshold_matches() {
        let a = Trajectory::from_xy(&[(0.0, 0.0), (10.0, 0.0)]);
        let b = Trajectory::from_xy(&[(0.4, -0.3), (10.2, 0.1)]);
        assert_eq!(edr(&a, &b, 0.5), 0.0);
        assert_eq!(edr(&a, &b, 0.05), 2.0);
    }

    #[test]
    fn insertion_cost_one_per_point() {
        let a = Trajectory::from_xy(&[(0.0, 0.0), (10.0, 0.0)]);
        let b = Trajectory::from_xy(&[(0.0, 0.0), (5.0, 100.0), (10.0, 0.0)]);
        assert_eq!(edr(&a, &b, 0.5), 1.0);
    }

    #[test]
    fn symmetric() {
        let a = Trajectory::from_xy(&[(0.0, 0.0), (3.0, 3.0), (6.0, 0.0), (9.0, 3.0)]);
        let b = Trajectory::from_xy(&[(1.0, 1.0), (6.5, 0.2)]);
        assert_eq!(edr(&a, &b, 1.0), edr(&b, &a, 1.0));
    }

    #[test]
    fn bounded_by_longer_length() {
        let a = Trajectory::from_xy(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let b = Trajectory::from_xy(&[(100.0, 100.0)]);
        let d = edr(&a, &b, 0.5);
        assert!(d <= 3.0);
        assert_eq!(edr_normalized(&a, &b, 0.5), d / 3.0);
    }

    #[test]
    fn against_empty() {
        let a = Trajectory::from_xy(&[(0.0, 0.0), (1.0, 0.0)]);
        let e = Trajectory::new(vec![]);
        assert_eq!(edr(&a, &e, 1.0), 2.0);
        assert_eq!(edr(&e, &a, 1.0), 2.0);
    }
}
