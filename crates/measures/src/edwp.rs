//! Edit Distance with Projections (EDwP, Ranu et al. \[8\]).
//!
//! EDwP aligns trajectory *segments* (not points) using two operations:
//! *replacement* of one segment by another, and *insertion* of a projected
//! point that splits a segment, so trajectories sampled at different rates
//! can still align cheaply. Costs are weighted by *coverage* (the lengths of
//! the matched segments), so long stretches of nearby movement are cheap
//! while divergent movement is expensive.
//!
//! ## Implementation
//! Quadratic dynamic programming over point indices `(i, j)` with a third
//! coordinate recording whether the current segment of one side has been
//! *split* at a projection by a previous insertion:
//!
//! * `Whole`  — both current segments start at original points;
//! * `SplitA` — trajectory A's current segment starts at the projection of
//!   B's current point (B advanced past it);
//! * `SplitB` — symmetric.
//!
//! The split point is a function of `(i, j)` alone, which keeps the DP
//! quadratic while reproducing EDwP's defining behaviour: one long segment
//! can be consumed piecewise against many short ones (see
//! `edwp_resampling_robustness`).

use trajcl_geo::{Point, Trajectory};

fn project_onto(p: &Point, a: &Point, b: &Point) -> Point {
    let len2 = a.sq_dist(b);
    if len2 == 0.0 {
        return *a;
    }
    let t = (((p.x - a.x) * (b.x - a.x) + (p.y - a.y) * (b.y - a.y)) / len2).clamp(0.0, 1.0);
    a.lerp(b, t)
}

/// Replacement cost × coverage for matching sub-segment `(a0,a1)` against
/// `(b0,b1)`.
fn op_cost(a0: &Point, a1: &Point, b0: &Point, b1: &Point) -> f64 {
    let rep = a0.dist(b0) + a1.dist(b1);
    let cov = a0.dist(a1) + b0.dist(b1);
    rep * cov
}

const WHOLE: usize = 0;
const SPLIT_A: usize = 1;
const SPLIT_B: usize = 2;

/// EDwP distance between two trajectories (`O(|a|·|b|)` time).
///
/// Zero for identical geometry regardless of sampling rate; grows with both
/// the spatial gap and the length of divergent stretches.
pub fn edwp(a: &Trajectory, b: &Trajectory) -> f64 {
    let pa = a.points();
    let pb = b.points();
    assert!(!pa.is_empty() && !pb.is_empty(), "EDwP of empty trajectory");
    if pa.len() == 1 && pb.len() == 1 {
        return pa[0].dist(&pb[0]);
    }
    if pa.len() == 1 {
        // Degenerate: treat the single point as a zero-length trajectory and
        // charge each segment of b against it.
        return pb
            .windows(2)
            .map(|w| op_cost(&pa[0], &pa[0], &w[0], &w[1]))
            .sum();
    }
    if pb.len() == 1 {
        return edwp(b, a);
    }
    let n = pa.len();
    let m = pb.len();
    // Current start of A's segment i in each split state.
    let a_start = |i: usize, j: usize, s: usize| -> Point {
        if s == SPLIT_A && i + 1 < n {
            project_onto(&pb[j], &pa[i], &pa[i + 1])
        } else {
            pa[i]
        }
    };
    let b_start = |i: usize, j: usize, s: usize| -> Point {
        if s == SPLIT_B && j + 1 < m {
            project_onto(&pa[i], &pb[j], &pb[j + 1])
        } else {
            pb[j]
        }
    };
    let idx = |i: usize, j: usize, s: usize| (i * m + j) * 3 + s;
    let mut dp = vec![f64::INFINITY; n * m * 3];
    dp[idx(0, 0, WHOLE)] = 0.0;
    for i in 0..n {
        for j in 0..m {
            for s in 0..3 {
                let cur = dp[idx(i, j, s)];
                if !cur.is_finite() {
                    continue;
                }
                let sa = a_start(i, j, s);
                let sb = b_start(i, j, s);
                // Replacement: consume the rest of both current segments.
                if i + 1 < n && j + 1 < m {
                    let cost = op_cost(&sa, &pa[i + 1], &sb, &pb[j + 1]);
                    let t = &mut dp[idx(i + 1, j + 1, WHOLE)];
                    *t = t.min(cur + cost);
                }
                // Advance A only: match A's remaining segment against the
                // sub-segment of B up to the projection of p_{i+1}.
                if i + 1 < n {
                    let proj = if j + 1 < m {
                        project_onto(&pa[i + 1], &pb[j], &pb[j + 1])
                    } else {
                        sb
                    };
                    let cost = op_cost(&sa, &pa[i + 1], &sb, &proj);
                    let t = &mut dp[idx(i + 1, j, SPLIT_B)];
                    *t = t.min(cur + cost);
                }
                // Advance B only (symmetric).
                if j + 1 < m {
                    let proj = if i + 1 < n {
                        project_onto(&pb[j + 1], &pa[i], &pa[i + 1])
                    } else {
                        sa
                    };
                    let cost = op_cost(&sb, &pb[j + 1], &sa, &proj);
                    let t = &mut dp[idx(i, j + 1, SPLIT_A)];
                    *t = t.min(cur + cost);
                }
            }
        }
    }
    let end = (0..3)
        .map(|s| dp[idx(n - 1, m - 1, s)])
        .fold(f64::INFINITY, f64::min);
    debug_assert!(
        end.is_finite(),
        "EDwP DP failed to reach the terminal state"
    );
    end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hausdorff::hausdorff;

    fn resample_line(n: usize) -> Trajectory {
        // Same geometry as [(0,0) -> (100,0) -> (100,100)] with n points per leg.
        let mut pts = Vec::new();
        for i in 0..n {
            pts.push((100.0 * i as f64 / n as f64, 0.0));
        }
        for i in 0..=n {
            pts.push((100.0, 100.0 * i as f64 / n as f64));
        }
        Trajectory::from_xy(&pts)
    }

    #[test]
    fn identical_is_zero() {
        let t = Trajectory::from_xy(&[(0.0, 0.0), (5.0, 5.0), (10.0, 0.0)]);
        assert!(edwp(&t, &t).abs() < 1e-9);
    }

    #[test]
    fn symmetric() {
        let a = Trajectory::from_xy(&[(0.0, 0.0), (10.0, 2.0), (20.0, 0.0)]);
        let b = Trajectory::from_xy(&[(0.0, 1.0), (20.0, 1.0)]);
        let d1 = edwp(&a, &b);
        let d2 = edwp(&b, &a);
        assert!((d1 - d2).abs() < 1e-6 * d1.max(1.0), "{d1} vs {d2}");
    }

    #[test]
    fn edwp_resampling_robustness() {
        // The defining property (paper §II): EDwP with interpolation points
        // handles non-uniform sampling. A sparsely- and a densely-sampled
        // version of the same path should be much closer to each other than
        // either is to a genuinely different path.
        let sparse = resample_line(2);
        let dense = resample_line(10);
        let shifted = {
            let mut t = resample_line(2);
            for p in t.points_mut() {
                p.y += 50.0;
            }
            t
        };
        let same_geom = edwp(&sparse, &dense);
        let diff_geom = edwp(&sparse, &shifted);
        assert!(
            same_geom < diff_geom * 0.05,
            "resampled geometry should be near-free: {same_geom} vs {diff_geom}"
        );
    }

    #[test]
    fn identical_geometry_different_sampling_is_near_zero() {
        let sparse = resample_line(1);
        let dense = resample_line(20);
        let d = edwp(&sparse, &dense);
        assert!(d < 1e-6, "same geometry should cost ~0, got {d}");
    }

    #[test]
    fn grows_with_divergence() {
        let a = Trajectory::from_xy(&[(0.0, 0.0), (50.0, 0.0), (100.0, 0.0)]);
        let near = Trajectory::from_xy(&[(0.0, 5.0), (50.0, 5.0), (100.0, 5.0)]);
        let far = Trajectory::from_xy(&[(0.0, 50.0), (50.0, 50.0), (100.0, 50.0)]);
        assert!(edwp(&a, &near) < edwp(&a, &far));
    }

    #[test]
    fn single_point_pairs() {
        let a = Trajectory::from_xy(&[(0.0, 0.0)]);
        let b = Trajectory::from_xy(&[(3.0, 4.0)]);
        assert_eq!(edwp(&a, &b), 5.0);
        let c = Trajectory::from_xy(&[(0.0, 0.0), (3.0, 4.0)]);
        assert!(edwp(&a, &c).is_finite());
        assert!((edwp(&a, &c) - edwp(&c, &a)).abs() < 1e-9);
    }

    #[test]
    fn agrees_with_hausdorff_on_clean_parallel_paths() {
        let a = Trajectory::from_xy(&[(0.0, 0.0), (100.0, 0.0)]);
        let near = Trajectory::from_xy(&[(0.0, 3.0), (100.0, 3.0)]);
        let far = Trajectory::from_xy(&[(0.0, 30.0), (100.0, 30.0)]);
        assert!(edwp(&a, &near) < edwp(&a, &far));
        assert!(hausdorff(&a, &near) < hausdorff(&a, &far));
    }
}
