//! Discrete Fréchet distance (Alt & Godau \[10\]; Eiter–Mannila recurrence).
//!
//! Like Hausdorff but the point matching must respect the sequential order
//! of both trajectories — the classic "man walking a dog" measure.

use trajcl_geo::Trajectory;

/// Discrete Fréchet distance between two trajectories.
///
/// Runs in `O(|a|·|b|)` time and `O(|b|)` memory (rolling DP rows).
pub fn frechet(a: &Trajectory, b: &Trajectory) -> f64 {
    let pa = a.points();
    let pb = b.points();
    assert!(
        !pa.is_empty() && !pb.is_empty(),
        "Fréchet of empty trajectory"
    );
    let m = pb.len();
    let mut prev = vec![0.0f64; m];
    let mut cur = vec![0.0f64; m];
    for (i, p) in pa.iter().enumerate() {
        for (j, q) in pb.iter().enumerate() {
            let d = p.dist(q);
            cur[j] = if i == 0 && j == 0 {
                d
            } else if i == 0 {
                d.max(cur[j - 1])
            } else if j == 0 {
                d.max(prev[0])
            } else {
                d.max(prev[j].min(prev[j - 1]).min(cur[j - 1]))
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hausdorff::discrete_hausdorff;

    #[test]
    fn identical_is_zero() {
        let t = Trajectory::from_xy(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]);
        assert_eq!(frechet(&t, &t), 0.0);
    }

    #[test]
    fn parallel_lines() {
        let a = Trajectory::from_xy(&[(0.0, 0.0), (5.0, 0.0), (10.0, 0.0)]);
        let b = Trajectory::from_xy(&[(0.0, 2.0), (5.0, 2.0), (10.0, 2.0)]);
        assert!((frechet(&a, &b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric() {
        let a = Trajectory::from_xy(&[(0.0, 0.0), (3.0, 4.0), (6.0, 0.0)]);
        let b = Trajectory::from_xy(&[(0.0, 1.0), (6.0, 1.0)]);
        assert_eq!(frechet(&a, &b), frechet(&b, &a));
    }

    #[test]
    fn order_matters_unlike_hausdorff() {
        // Same point sets, opposite directions: Hausdorff (set-based) is 0,
        // Fréchet must pay for the reversed order.
        let a = Trajectory::from_xy(&[(0.0, 0.0), (10.0, 0.0)]);
        let b = Trajectory::from_xy(&[(10.0, 0.0), (0.0, 0.0)]);
        assert_eq!(discrete_hausdorff(&a, &b), 0.0);
        assert!((frechet(&a, &b) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn lower_bounded_by_discrete_hausdorff() {
        let a = Trajectory::from_xy(&[(0.0, 0.0), (2.0, 3.0), (5.0, 1.0), (7.0, 4.0)]);
        let b = Trajectory::from_xy(&[(1.0, 0.0), (3.0, 2.0), (6.0, 2.0)]);
        assert!(frechet(&a, &b) >= discrete_hausdorff(&a, &b) - 1e-12);
    }

    #[test]
    fn single_point_vs_line() {
        let a = Trajectory::from_xy(&[(0.0, 0.0)]);
        let b = Trajectory::from_xy(&[(0.0, 0.0), (6.0, 8.0)]);
        assert_eq!(frechet(&a, &b), 10.0);
    }
}
