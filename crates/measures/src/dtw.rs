//! Dynamic Time Warping — a classic order-preserving alignment measure,
//! included beyond the paper's four heuristics as an extra comparison point
//! for the benchmark harness.

use trajcl_geo::Trajectory;

/// DTW distance: the minimum sum of point distances over monotone
/// alignments. `O(|a|·|b|)` time, `O(|b|)` memory.
pub fn dtw(a: &Trajectory, b: &Trajectory) -> f64 {
    let pa = a.points();
    let pb = b.points();
    assert!(!pa.is_empty() && !pb.is_empty(), "DTW of empty trajectory");
    let m = pb.len();
    let mut prev = vec![f64::INFINITY; m + 1];
    let mut cur = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;
    for p in pa {
        cur[0] = f64::INFINITY;
        for (j, q) in pb.iter().enumerate() {
            let d = p.dist(q);
            cur[j + 1] = d + prev[j].min(prev[j + 1]).min(cur[j]);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_is_zero() {
        let t = Trajectory::from_xy(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]);
        assert_eq!(dtw(&t, &t), 0.0);
    }

    #[test]
    fn known_small_case() {
        let a = Trajectory::from_xy(&[(0.0, 0.0), (1.0, 0.0)]);
        let b = Trajectory::from_xy(&[(0.0, 1.0), (1.0, 1.0)]);
        // Best alignment matches index-to-index: 1 + 1 = 2.
        assert!((dtw(&a, &b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric() {
        let a = Trajectory::from_xy(&[(0.0, 0.0), (4.0, 2.0), (8.0, 0.0)]);
        let b = Trajectory::from_xy(&[(0.0, 1.0), (8.0, 1.0)]);
        assert_eq!(dtw(&a, &b), dtw(&b, &a));
    }

    #[test]
    fn accumulates_unlike_frechet() {
        // DTW sums costs: longer parallel paths grow the distance.
        let short_a = Trajectory::from_xy(&[(0.0, 0.0), (1.0, 0.0)]);
        let short_b = Trajectory::from_xy(&[(0.0, 1.0), (1.0, 1.0)]);
        let long_a = Trajectory::from_xy(&(0..10).map(|i| (i as f64, 0.0)).collect::<Vec<_>>());
        let long_b = Trajectory::from_xy(&(0..10).map(|i| (i as f64, 1.0)).collect::<Vec<_>>());
        assert!(dtw(&long_a, &long_b) > dtw(&short_a, &short_b));
    }
}
