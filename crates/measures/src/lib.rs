//! # trajcl-measures
//!
//! The heuristic trajectory-similarity measures TrajCL is evaluated against
//! and fine-tuned towards (§II, §V): Hausdorff, discrete Fréchet, EDR and
//! EDwP, plus DTW as an extra reference. All take `O(n²)` time in the
//! number of points — the inefficiency the paper's Table VIII quantifies.
//!
//! [`HeuristicMeasure`] is a small dispatch enum used by the experiment
//! harness; [`pairwise_distances`] evaluates query×database blocks on all
//! cores.
//!
//! ```
//! use trajcl_geo::Trajectory;
//! use trajcl_measures::{hausdorff, HeuristicMeasure};
//!
//! let a = Trajectory::from_xy(&[(0.0, 0.0), (100.0, 0.0)]);
//! let b = Trajectory::from_xy(&[(0.0, 30.0), (100.0, 30.0)]);
//! assert_eq!(hausdorff(&a, &b), 30.0);
//! assert_eq!(HeuristicMeasure::Hausdorff.distance(&a, &b), 30.0);
//! ```

pub mod dtw;
pub mod edr;
pub mod edwp;
pub mod frechet;
pub mod hausdorff;

pub use dtw::dtw;
pub use edr::{edr, edr_normalized};
pub use edwp::edwp;
pub use frechet::frechet;
pub use hausdorff::{directed_hausdorff, discrete_hausdorff, hausdorff};

use trajcl_geo::Trajectory;
use trajcl_tensor::pool;

/// Dispatchable heuristic measure (distance semantics: lower = more
/// similar).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HeuristicMeasure {
    /// Symmetric point-to-polyline Hausdorff distance.
    Hausdorff,
    /// Discrete Fréchet distance.
    Frechet,
    /// Edit Distance on Real sequence with the given matching threshold
    /// (meters).
    Edr(f64),
    /// Edit Distance with Projections.
    Edwp,
    /// Dynamic Time Warping.
    Dtw,
}

impl HeuristicMeasure {
    /// Distance between two trajectories under this measure.
    pub fn distance(&self, a: &Trajectory, b: &Trajectory) -> f64 {
        match self {
            HeuristicMeasure::Hausdorff => hausdorff(a, b),
            HeuristicMeasure::Frechet => frechet(a, b),
            HeuristicMeasure::Edr(eps) => edr(a, b, *eps),
            HeuristicMeasure::Edwp => edwp(a, b),
            HeuristicMeasure::Dtw => dtw(a, b),
        }
    }

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            HeuristicMeasure::Hausdorff => "Hausdorff",
            HeuristicMeasure::Frechet => "Frechet",
            HeuristicMeasure::Edr(_) => "EDR",
            HeuristicMeasure::Edwp => "EDwP",
            HeuristicMeasure::Dtw => "DTW",
        }
    }

    /// The paper's four fine-tuning targets (EDR threshold in meters).
    pub fn paper_set(edr_eps: f64) -> [HeuristicMeasure; 4] {
        [
            HeuristicMeasure::Edr(edr_eps),
            HeuristicMeasure::Edwp,
            HeuristicMeasure::Hausdorff,
            HeuristicMeasure::Frechet,
        ]
    }
}

/// Computes the `queries × database` distance matrix in parallel
/// (row-major: `out[qi * db.len() + di]`).
pub fn pairwise_distances(
    queries: &[Trajectory],
    database: &[Trajectory],
    measure: HeuristicMeasure,
) -> Vec<f64> {
    let mut out = vec![0.0f64; queries.len() * database.len()];
    if queries.is_empty() || database.is_empty() {
        return out;
    }
    let rows_per = pool::rows_per_lane(queries.len());
    pool::par_chunks_mut(&mut out, rows_per * database.len(), |c, chunk| {
        let start = c * rows_per;
        for (r, row) in chunk.chunks_mut(database.len()).enumerate() {
            let q = &queries[start + r];
            for (d, slot) in row.iter_mut().enumerate() {
                *slot = measure.distance(q, &database[d]);
            }
        }
    });
    out
}

/// Rank (1-based) of `target` among `dists` sorted ascending: one plus the
/// number of strictly smaller distances.
pub fn rank_of(dists: &[f64], target: usize) -> usize {
    let t = dists[target];
    1 + dists.iter().filter(|&&d| d < t).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(y: f64) -> Trajectory {
        Trajectory::from_xy(&[(0.0, y), (50.0, y), (100.0, y)])
    }

    #[test]
    fn enum_dispatch_matches_functions() {
        let a = line(0.0);
        let b = line(7.0);
        assert_eq!(
            HeuristicMeasure::Hausdorff.distance(&a, &b),
            hausdorff(&a, &b)
        );
        assert_eq!(HeuristicMeasure::Frechet.distance(&a, &b), frechet(&a, &b));
        assert_eq!(
            HeuristicMeasure::Edr(1.0).distance(&a, &b),
            edr(&a, &b, 1.0)
        );
        assert_eq!(HeuristicMeasure::Edwp.distance(&a, &b), edwp(&a, &b));
        assert_eq!(HeuristicMeasure::Dtw.distance(&a, &b), dtw(&a, &b));
    }

    #[test]
    fn pairwise_matrix_matches_direct_eval() {
        let queries = vec![line(0.0), line(5.0)];
        let db = vec![line(1.0), line(2.0), line(10.0)];
        let m = pairwise_distances(&queries, &db, HeuristicMeasure::Hausdorff);
        assert_eq!(m.len(), 6);
        for (qi, q) in queries.iter().enumerate() {
            for (di, d) in db.iter().enumerate() {
                assert_eq!(m[qi * 3 + di], hausdorff(q, d));
            }
        }
    }

    #[test]
    fn rank_of_counts_strictly_smaller() {
        let d = [5.0, 1.0, 3.0, 3.0];
        assert_eq!(rank_of(&d, 1), 1);
        assert_eq!(rank_of(&d, 2), 2);
        assert_eq!(rank_of(&d, 3), 2);
        assert_eq!(rank_of(&d, 0), 4);
    }

    #[test]
    fn all_measures_rank_near_before_far() {
        let q = line(0.0);
        let db = vec![line(100.0), line(2.0), line(50.0)];
        for m in [
            HeuristicMeasure::Hausdorff,
            HeuristicMeasure::Frechet,
            HeuristicMeasure::Edr(5.0),
            HeuristicMeasure::Edwp,
            HeuristicMeasure::Dtw,
        ] {
            let dists = pairwise_distances(std::slice::from_ref(&q), &db, m);
            assert_eq!(rank_of(&dists, 1), 1, "measure {} failed", m.name());
        }
    }
}
