//! Hausdorff distance between trajectories (Alt \[9\] in the paper).
//!
//! The paper's description: "Hausdorff computes the maximum
//! point-to-trajectory distance between two trajectories". We implement the
//! segment-based (continuous) point-to-polyline form as the primary measure
//! and also provide the discrete point-to-point variant.

use trajcl_geo::{Point, Trajectory};

/// Distance from a point to the closest location on a polyline.
fn point_to_polyline(p: &Point, t: &Trajectory) -> f64 {
    let pts = t.points();
    if pts.len() == 1 {
        return p.dist(&pts[0]);
    }
    pts.windows(2)
        .map(|w| p.dist_to_segment(&w[0], &w[1]))
        .fold(f64::INFINITY, f64::min)
}

/// Directed Hausdorff: `max_{p ∈ a} dist(p, b)`.
pub fn directed_hausdorff(a: &Trajectory, b: &Trajectory) -> f64 {
    a.points()
        .iter()
        .map(|p| point_to_polyline(p, b))
        .fold(0.0, f64::max)
}

/// Symmetric Hausdorff distance (point-to-polyline).
pub fn hausdorff(a: &Trajectory, b: &Trajectory) -> f64 {
    directed_hausdorff(a, b).max(directed_hausdorff(b, a))
}

/// Discrete symmetric Hausdorff distance (point-to-point).
pub fn discrete_hausdorff(a: &Trajectory, b: &Trajectory) -> f64 {
    let dir = |x: &Trajectory, y: &Trajectory| {
        x.points()
            .iter()
            .map(|p| {
                y.points()
                    .iter()
                    .map(|q| p.sq_dist(q))
                    .fold(f64::INFINITY, f64::min)
            })
            .fold(0.0, f64::max)
    };
    dir(a, b).max(dir(b, a)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_is_zero() {
        let t = Trajectory::from_xy(&[(0.0, 0.0), (1.0, 2.0), (3.0, 1.0)]);
        assert_eq!(hausdorff(&t, &t), 0.0);
        assert_eq!(discrete_hausdorff(&t, &t), 0.0);
    }

    #[test]
    fn parallel_lines_distance() {
        let a = Trajectory::from_xy(&[(0.0, 0.0), (10.0, 0.0)]);
        let b = Trajectory::from_xy(&[(0.0, 3.0), (10.0, 3.0)]);
        assert!((hausdorff(&a, &b) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric() {
        let a = Trajectory::from_xy(&[(0.0, 0.0), (5.0, 1.0), (9.0, 0.0)]);
        let b = Trajectory::from_xy(&[(0.0, 2.0), (4.0, 4.0)]);
        assert_eq!(hausdorff(&a, &b), hausdorff(&b, &a));
        assert_eq!(discrete_hausdorff(&a, &b), discrete_hausdorff(&b, &a));
    }

    #[test]
    fn segment_form_is_at_most_discrete_form() {
        // The continuous form can match interior segment points, so it never
        // exceeds the discrete form.
        let a = Trajectory::from_xy(&[(0.0, 0.0), (10.0, 0.0)]);
        let b = Trajectory::from_xy(&[(5.0, 1.0)]);
        assert!(hausdorff(&a, &b) <= discrete_hausdorff(&a, &b) + 1e-12);
        // Here the discrete form must pick an endpoint (distance sqrt(26)),
        // while the continuous form reaches the projection (distance 5... the
        // directed a->b is max over endpoints of a to b: sqrt(26); symmetric
        // form equals sqrt(26) for both, but b->a is 1.
        assert!((directed_hausdorff(&b, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn resampling_insensitive() {
        // Densified copy of the same geometry keeps Hausdorff ~ 0.
        let a = Trajectory::from_xy(&[(0.0, 0.0), (10.0, 0.0)]);
        let dense: Vec<(f64, f64)> = (0..=20).map(|i| (i as f64 * 0.5, 0.0)).collect();
        let b = Trajectory::from_xy(&dense);
        assert!(hausdorff(&a, &b) < 1e-12);
    }

    #[test]
    fn single_point_trajectories() {
        let a = Trajectory::from_xy(&[(0.0, 0.0)]);
        let b = Trajectory::from_xy(&[(3.0, 4.0)]);
        assert_eq!(hausdorff(&a, &b), 5.0);
    }
}
