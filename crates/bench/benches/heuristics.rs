//! Heuristic-measure cost scaling in the number of trajectory points —
//! the O(n²) behaviour behind Table VIII's slow rows.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use trajcl_data::{City, DatasetProfile};
use trajcl_geo::Trajectory;
use trajcl_measures::HeuristicMeasure;

fn make_pair(points: usize) -> (Trajectory, Trajectory) {
    let mut rng = StdRng::seed_from_u64(points as u64);
    let mut cfg = DatasetProfile::porto().city_config();
    cfg.min_points = points;
    cfg.max_points = points;
    cfg.mean_points = points as f64;
    let city = City::new(cfg, &mut rng);
    let a = city.generate_trajectory(&mut rng);
    let b = city.generate_trajectory(&mut rng);
    (a, b)
}

fn bench_measures(c: &mut Criterion) {
    let mut group = c.benchmark_group("heuristic_measures");
    for &n in &[25usize, 50, 100, 200] {
        let (a, b) = make_pair(n);
        for measure in [
            HeuristicMeasure::Hausdorff,
            HeuristicMeasure::Frechet,
            HeuristicMeasure::Edr(100.0),
            HeuristicMeasure::Edwp,
            HeuristicMeasure::Dtw,
        ] {
            group.bench_with_input(BenchmarkId::new(measure.name(), n), &n, |bch, _| {
                bch.iter(|| measure.distance(black_box(&a), black_box(&b)))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_measures
}
criterion_main!(benches);
