//! Augmentation-op throughput: the per-sample cost of the four view
//! generators (they sit on the training hot path, §IV-A).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use trajcl_data::{AugmentParams, Augmentation};
use trajcl_geo::{Point, Trajectory};

fn bench_augmentations(c: &mut Criterion) {
    let traj: Trajectory = (0..200)
        .map(|i| Point::new(i as f64 * 35.0, ((i * 31) % 17) as f64 * 40.0))
        .collect();
    let params = AugmentParams::default();
    let mut group = c.benchmark_group("augmentations_200pt");
    for aug in Augmentation::all() {
        let mut rng = StdRng::seed_from_u64(1);
        group.bench_function(aug.name(), |b| {
            b.iter(|| black_box(aug.apply(&traj, &params, &mut rng)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_augmentations);
criterion_main!(benches);
