//! Batched embedding throughput of the unified engine: trajectories/sec
//! through `Engine::embed_all` across inference batch sizes {1, 16, 128}.
//! This is the baseline later serving/perf PRs measure against.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use trajcl_core::{EncoderVariant, Featurizer, TrajClConfig, TrajClModel};
use trajcl_engine::Engine;
use trajcl_geo::{Bbox, Grid, Point, SpatialNorm, Trajectory};
use trajcl_tensor::{Shape, Tensor};

fn engine_with_batch(batch: usize) -> Engine {
    let mut rng = StdRng::seed_from_u64(0);
    let mut cfg = TrajClConfig::scaled_default();
    cfg.dim = 32;
    cfg.ffn_hidden = 64;
    let region = Bbox::new(Point::new(0.0, 0.0), Point::new(10_000.0, 10_000.0));
    let grid = Grid::new(region, 200.0);
    let table = Tensor::randn(Shape::d2(grid.num_cells(), cfg.dim), 0.0, 0.3, &mut rng);
    let feat = Featurizer::new(grid, table, SpatialNorm::new(region, 200.0), 128);
    let model = TrajClModel::new(&cfg, EncoderVariant::Dual, &mut rng);
    Engine::builder()
        .trajcl(model, feat)
        .batch_size(batch)
        .build()
        .expect("engine build")
}

fn workload(n: usize, points: usize) -> Vec<Trajectory> {
    (0..n)
        .map(|i| {
            (0..points)
                .map(|t| {
                    Point::new(
                        200.0 + t as f64 * 60.0,
                        500.0 + (i % 37) as f64 * 250.0 + (t % 5) as f64 * 20.0,
                    )
                })
                .collect()
        })
        .collect()
}

fn bench_embed_all(c: &mut Criterion) {
    let trajs = workload(128, 48);
    let mut group = c.benchmark_group("engine_embed_all_128trajs");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trajs.len() as u64));
    for &batch in &[1usize, 16, 128] {
        let engine = engine_with_batch(batch);
        group.bench_with_input(BenchmarkId::new("batch", batch), &batch, |b, _| {
            b.iter(|| black_box(engine.embed_all(&trajs).expect("embed")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_embed_all);
criterion_main!(benches);
