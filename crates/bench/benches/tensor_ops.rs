//! Kernel microbenchmarks: the matmul/softmax primitives that dominate
//! encoder cost (§IV-D cost analysis).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use trajcl_tensor::{kernels, Shape, Tape, Tensor};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = StdRng::seed_from_u64(0);
    for &n in &[32usize, 64, 128] {
        let a = Tensor::randn(Shape::d2(n, n), 0.0, 1.0, &mut rng);
        let b = Tensor::randn(Shape::d2(n, n), 0.0, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("square", n), &n, |bch, _| {
            bch.iter(|| kernels::matmul(black_box(&a), black_box(&b), false, false))
        });
    }
    // The attention shape: (B*H, L, Dh) x (B*H, L, Dh)^T.
    let q = Tensor::randn(Shape::d3(16, 64, 16), 0.0, 1.0, &mut rng);
    let k = Tensor::randn(Shape::d3(16, 64, 16), 0.0, 1.0, &mut rng);
    group.bench_function("attention_scores_qkT", |bch| {
        bch.iter(|| kernels::matmul(black_box(&q), black_box(&k), false, true))
    });
    group.finish();
}

fn bench_softmax(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let x = Tensor::randn(Shape::d3(16, 64, 64), 0.0, 1.0, &mut rng);
    let mut out = vec![0.0f32; x.numel()];
    c.bench_function("softmax_rows_16x64x64", |b| {
        b.iter(|| kernels::softmax_rows(black_box(x.data()), 64, &mut out))
    });
}

fn bench_backward_sweep(c: &mut Criterion) {
    // Forward + backward through a small attention block: the training-step
    // unit of work.
    let mut rng = StdRng::seed_from_u64(2);
    let x0 = Tensor::randn(Shape::d3(8, 32, 32), 0.0, 1.0, &mut rng);
    let w0 = Tensor::randn(Shape::d2(32, 32), 0.0, 0.2, &mut rng);
    c.bench_function("attention_block_fwd_bwd", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let x = tape.input(x0.clone());
            let w = tape.param(w0.clone(), 0);
            let q = tape.matmul(x, w, false, false);
            let scores = tape.matmul(q, q, false, true);
            let attn = tape.softmax(scores);
            let ctx = tape.matmul(attn, q, false, false);
            let loss = tape.mean_all(ctx);
            let grads = tape.backward(loss);
            black_box(grads.get(w).is_some())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_softmax, bench_backward_sweep
}
criterion_main!(benches);
