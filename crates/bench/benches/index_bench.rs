//! Index microbenchmarks: IVF probe search vs brute-force scan over
//! embeddings, and segment-index kNN — the Fig. 6 mechanism at bench
//! granularity.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use trajcl_geo::{Point, Trajectory};
use trajcl_index::{brute_force_knn, IvfIndex, Metric, SegmentHausdorffIndex};
use trajcl_tensor::{Shape, Tensor};

fn bench_ivf_vs_brute(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut group = c.benchmark_group("embedding_knn");
    for &n in &[1_000usize, 10_000] {
        let emb = Tensor::randn(Shape::d2(n, 32), 0.0, 1.0, &mut rng);
        let index = IvfIndex::build(&emb, (n / 64).max(4), Metric::L1, &mut rng);
        let q = emb.row(7).to_vec();
        group.bench_with_input(BenchmarkId::new("ivf_nprobe4", n), &n, |bch, _| {
            bch.iter(|| black_box(index.search(&q, 10, 4)))
        });
        group.bench_with_input(BenchmarkId::new("brute_force", n), &n, |bch, _| {
            bch.iter(|| black_box(brute_force_knn(&emb, &q, 10, Metric::L1)))
        });
    }
    group.finish();
}

fn bench_segment_index(c: &mut Criterion) {
    let db: Vec<Trajectory> = (0..500)
        .map(|i| {
            (0..50)
                .map(|j| Point::new(j as f64 * 40.0, (i * 13 % 500) as f64 * 20.0))
                .collect()
        })
        .collect();
    let index = SegmentHausdorffIndex::build(&db);
    let query: Trajectory = (0..50)
        .map(|j| Point::new(j as f64 * 40.0, 3_333.0))
        .collect();
    let mut group = c.benchmark_group("segment_knn");
    group.sample_size(10);
    group.bench_function("hausdorff_knn10_db500", |b| {
        b.iter(|| black_box(index.knn(&query, 10)))
    });
    group.finish();
}

criterion_group!(benches, bench_ivf_vs_brute, bench_segment_index);
criterion_main!(benches);
