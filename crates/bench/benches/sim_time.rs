//! Table I at bench granularity: amortised per-pair similarity time for
//! Hausdorff vs embedding-space L1 comparison (with and without the
//! encode step), using an untrained encoder — the cost structure is
//! weight-independent.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rand::{rngs::StdRng, SeedableRng};
use trajcl_core::{l1_distances, EncoderVariant, Featurizer, TrajClConfig, TrajClModel};
use trajcl_data::{City, DatasetProfile};
use trajcl_geo::{Grid, SpatialNorm, Trajectory};
use trajcl_measures::{pairwise_distances, HeuristicMeasure};
use trajcl_tensor::{Shape, Tensor};

fn porto_batch(n: usize) -> (Vec<Trajectory>, trajcl_geo::Bbox) {
    let mut rng = StdRng::seed_from_u64(0);
    let cfg = DatasetProfile::porto().city_config();
    let region = cfg.region();
    let city = City::new(cfg, &mut rng);
    (city.generate(n, &mut rng), region)
}

fn bench_pairwise(c: &mut Criterion) {
    let (trajs, region) = porto_batch(120);
    let queries = &trajs[..20];
    let database = &trajs[20..];
    let n_pairs = (queries.len() * database.len()) as u64;

    let mut rng = StdRng::seed_from_u64(1);
    let cfg = TrajClConfig::scaled_default();
    let grid = Grid::new(region, 200.0);
    let table = Tensor::randn(Shape::d2(grid.num_cells(), cfg.dim), 0.0, 0.3, &mut rng);
    let feat = Featurizer::new(grid, table, SpatialNorm::new(region, 200.0), cfg.max_len);
    let model = TrajClModel::new(&cfg, EncoderVariant::Dual, &mut rng);

    let mut group = c.benchmark_group("similarity_workload_20x100");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n_pairs));
    group.bench_function("hausdorff_pairwise", |b| {
        b.iter(|| {
            black_box(pairwise_distances(
                black_box(queries),
                black_box(database),
                HeuristicMeasure::Hausdorff,
            ))
        })
    });
    group.bench_function("trajcl_encode_plus_l1", |b| {
        b.iter(|| {
            let q = model.embed(&feat, queries);
            let d = model.embed(&feat, database);
            black_box(l1_distances(&q, &d))
        })
    });
    // Comparison-only cost once embeddings exist (the paper's 0.14 µs row).
    let q = model.embed(&feat, queries);
    let d = model.embed(&feat, database);
    group.bench_function("l1_compare_only", |b| {
        b.iter(|| black_box(l1_distances(black_box(&q), black_box(&d))))
    });
    group.finish();
}

criterion_group!(benches, bench_pairwise);
criterion_main!(benches);
