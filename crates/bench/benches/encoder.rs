//! DualSTB encoder forward cost vs sequence length and depth — validates
//! the §IV-D cost model `O(l²·d·L)` and the Table I claim that inference
//! is a single parallel pass.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use trajcl_core::{EncoderVariant, Featurizer, TrajClConfig, TrajClModel};
use trajcl_geo::{Bbox, Grid, Point, SpatialNorm, Trajectory};
use trajcl_tensor::{Shape, Tensor};

fn setup(dim: usize, layers: usize) -> (TrajClModel, Featurizer) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut cfg = TrajClConfig::scaled_default();
    cfg.dim = dim;
    cfg.layers = layers;
    cfg.ffn_hidden = dim * 2;
    let region = Bbox::new(Point::new(0.0, 0.0), Point::new(10_000.0, 10_000.0));
    let grid = Grid::new(region, 200.0);
    let table = Tensor::randn(Shape::d2(grid.num_cells(), dim), 0.0, 0.3, &mut rng);
    let feat = Featurizer::new(grid, table, SpatialNorm::new(region, 200.0), 256);
    let model = TrajClModel::new(&cfg, EncoderVariant::Dual, &mut rng);
    (model, feat)
}

fn traj(n: usize) -> Trajectory {
    (0..n)
        .map(|i| Point::new(100.0 + i as f64 * 40.0, 5_000.0 + (i % 7) as f64 * 30.0))
        .collect()
}

fn bench_seq_len(c: &mut Criterion) {
    let (model, feat) = setup(32, 2);
    let mut group = c.benchmark_group("encoder_vs_seq_len");
    group.sample_size(10);
    for &l in &[25usize, 50, 100, 200] {
        let batch: Vec<Trajectory> = (0..8).map(|_| traj(l)).collect();
        group.bench_with_input(BenchmarkId::new("dualstb_b8", l), &l, |bch, _| {
            bch.iter(|| black_box(model.embed(&feat, &batch)))
        });
    }
    group.finish();
}

fn bench_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("encoder_vs_layers");
    group.sample_size(10);
    for &layers in &[1usize, 2, 4] {
        let (model, feat) = setup(32, layers);
        let batch: Vec<Trajectory> = (0..8).map(|_| traj(64)).collect();
        group.bench_with_input(
            BenchmarkId::new("dualstb_l64", layers),
            &layers,
            |bch, _| bch.iter(|| black_box(model.embed(&feat, &batch))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_seq_len, bench_depth);
criterion_main!(benches);
