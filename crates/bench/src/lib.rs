//! # trajcl-bench
//!
//! The experiment harness reproducing every table and figure in the
//! paper's evaluation (§V). Each `exp_*` binary regenerates one artifact:
//!
//! | binary | artifact |
//! |--------|----------|
//! | `exp_table1`  | Table I — per-pair similarity computation time |
//! | `exp_table2`  | Table II — dataset statistics |
//! | `exp_table3`  | Table III — mean rank vs database size |
//! | `exp_table4`  | Table IV — mean rank vs down-sampling rate |
//! | `exp_table5`  | Table V — mean rank vs distortion rate |
//! | `exp_table6`  | Table VI — cross-dataset generalisation |
//! | `exp_table7`  | Table VII — training time |
//! | `exp_table8`  | Table VIII — bulk similarity computation time |
//! | `exp_table9`  | Table IX — index building costs |
//! | `exp_table10` | Table X — HR@k approximating heuristic measures |
//! | `exp_fig5`    | Fig. 5 — training scalability |
//! | `exp_fig6`    | Fig. 6 — kNN query costs |
//! | `exp_fig7`    | Fig. 7 — encoder ablation |
//! | `exp_fig8`    | Fig. 8 — augmentation-pair grid |
//! | `exp_fig9`    | Fig. 9 — augmentation-parameter grid |
//! | `exp_fig10`   | Fig. 10 — embedding dimensionality |
//! | `exp_fig11`   | Fig. 11 — encoder depth |
//! | `exp_fig12`   | Fig. 12 — negative-queue size |
//!
//! All binaries accept `--train N --db N --queries N --pool N` to scale
//! towards the paper's sizes. Criterion benches (`benches/`) cover the
//! microbenchmark-shaped artifacts (per-pair times, encoder cost model,
//! index probes, kernels).

pub mod harness;
pub mod report;
pub mod snapfile;

pub use harness::{
    cstrm_table_feasible, heuristic_set, mean_rank_heuristic, train_all, ExperimentEnv, Scale,
    TrainedModels, LEARNED_METHODS,
};
pub use report::{fmt_mb, fmt_secs, Table};
