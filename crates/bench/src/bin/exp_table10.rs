//! Table X — HR@5, HR@20 and R5@20 of self-supervised (fine-tuned) and
//! supervised methods approximating the four heuristic measures.
//!
//! Expected shape (paper): TrajCL* best overall, TrajCL second; pre-trained
//! plus fine-tuned beats the supervised methods in most cells; Hausdorff
//! and Fréchet are the easiest targets (R5@20 near 0.9+ for TrajCL*).
//!
//! Fine-tuning protocol per §V-F: the downstream pool is split 7:1:2; the
//! self-supervised baselines are fine-tuned with the shared pair-regression
//! objective, TrajCL with its last encoder layer + MLP head (TrajCL* with
//! all layers).

use rand::rngs::StdRng;
use rand::SeedableRng;
use trajcl_baselines::{
    train_pair_regression, SupervisedConfig, T3s, Traj2SimVec, TrajGat, TrajectoryEncoder,
};
use trajcl_bench::{heuristic_set, train_all, ExperimentEnv, Scale, Table};
use trajcl_core::{finetune, l1_distances, FinetuneConfig, FinetuneScope, TrajClConfig};
use trajcl_data::{hit_ratio, recall_k_at_m, DatasetProfile};
use trajcl_geo::Trajectory;
use trajcl_measures::pairwise_distances;
use trajcl_tensor::Tensor;

/// Evaluates HR@5 / HR@20 / R5@20 of predicted vs true distance matrices.
fn metrics(true_d: &[f64], pred_d: &[f64], db: usize, queries: usize) -> [f64; 3] {
    let mut out = [0.0f64; 3];
    for q in 0..queries {
        let t = &true_d[q * db..(q + 1) * db];
        let p = &pred_d[q * db..(q + 1) * db];
        out[0] += hit_ratio(t, p, 5);
        out[1] += hit_ratio(t, p, 20.min(db));
        out[2] += recall_k_at_m(t, p, 5, 20.min(db));
    }
    out.map(|v| v / queries as f64)
}

fn main() {
    let scale = Scale::from_args();
    let mut cfg = TrajClConfig::scaled_default();
    cfg.dim = 32;
    cfg.max_epochs = 2;
    let profile = DatasetProfile::porto();
    let env = ExperimentEnv::new(profile, &scale, cfg.dim, cfg.max_len, 20);
    eprintln!(
        "[{}] pre-training self-supervised models...",
        profile.name()
    );
    let models = train_all(&env, &cfg, 20);

    // Downstream pool split 7:1:2 (train : val : eval).
    let pool = &env.splits.downstream;
    let n = pool.len();
    let ft_train = &pool[..n * 7 / 10];
    let eval_all = &pool[n * 8 / 10..];
    let n_q = (eval_all.len() / 4).clamp(4, 20);
    let queries: Vec<Trajectory> = eval_all[..n_q].to_vec();
    let database: Vec<Trajectory> = eval_all[n_q..].to_vec();
    let db = database.len();
    eprintln!(
        "fine-tune pool: {} train, {} queries x {} database",
        ft_train.len(),
        n_q,
        db
    );

    let sup_cfg = SupervisedConfig {
        pairs_per_epoch: 128,
        batch_pairs: 16,
        epochs: 2,
        lr: 2e-3,
    };
    let ft_cfg = FinetuneConfig {
        scope: FinetuneScope::LastLayer,
        pairs_per_epoch: 128,
        batch_pairs: 16,
        epochs: 2,
        lr: 2e-3,
    };

    let mut table = Table::new(
        format!(
            "Table X — approximating heuristic measures ({})",
            profile.name()
        ),
        &["measure", "HR@5", "HR@20", "R5@20"],
    );
    let mut rng = StdRng::seed_from_u64(21);

    for measure in heuristic_set(profile) {
        eprintln!("[{}] computing ground truth...", measure.name());
        let true_d = pairwise_distances(&queries, &database, measure);

        let mut add = |name: String, q_emb: Tensor, d_emb: Tensor| {
            let pred = l1_distances(&q_emb, &d_emb);
            let m = metrics(&true_d, &pred, db, n_q);
            table.row(
                name,
                vec![
                    measure.name().into(),
                    format!("{:.3}", m[0]),
                    format!("{:.3}", m[1]),
                    format!("{:.3}", m[2]),
                ],
            );
        };

        // Self-supervised baselines + shared fine-tuning.
        macro_rules! finetune_baseline {
            ($name:expr, $model:expr) => {{
                let mut m = $model;
                train_pair_regression(&mut m, ft_train, measure, &sup_cfg, &mut rng);
                let q = m.embed(&queries, &mut rng);
                let d = m.embed(&database, &mut rng);
                add(format!("{} (ft)", $name), q, d);
            }};
        }
        eprintln!("[{}] fine-tuning baselines...", measure.name());
        {
            // Each baseline is fine-tuned from its pre-trained state; clone
            // the stores so one measure's tuning does not leak into the next.
            let mut t2v =
                trajcl_baselines::T2Vec::new(env.token_featurizer.clone(), cfg.dim, &mut rng);
            t2v.store_mut().copy_values_from(models.t2vec.store());
            finetune_baseline!("t2vec", t2v);
        }
        if let Some(cstrm_ref) = models.cstrm.as_ref() {
            let cstrm_cfg = trajcl_baselines::CstrmConfig {
                dim: cfg.dim,
                heads: cfg.heads,
                layers: cfg.layers,
                ..Default::default()
            };
            let mut c =
                trajcl_baselines::Cstrm::new(env.token_featurizer.clone(), &cstrm_cfg, &mut rng);
            c.store_mut().copy_values_from(cstrm_ref.store());
            finetune_baseline!("CSTRM", c);
        }

        // TrajCL (last layer) and TrajCL* (all layers).
        eprintln!("[{}] fine-tuning TrajCL...", measure.name());
        let est = finetune(
            &models.trajcl.online,
            &env.featurizer,
            ft_train,
            measure,
            &ft_cfg,
            &mut rng,
        );
        add(
            "TrajCL (ft)".into(),
            est.embed(&env.featurizer, &queries),
            est.embed(&env.featurizer, &database),
        );
        let mut all_cfg = ft_cfg.clone();
        all_cfg.scope = FinetuneScope::AllLayers;
        let est = finetune(
            &models.trajcl.online,
            &env.featurizer,
            ft_train,
            measure,
            &all_cfg,
            &mut rng,
        );
        add(
            "TrajCL* (ft)".into(),
            est.embed(&env.featurizer, &queries),
            est.embed(&env.featurizer, &database),
        );

        // Supervised methods trained from scratch on the same pairs.
        eprintln!("[{}] training supervised baselines...", measure.name());
        {
            let mut m = Traj2SimVec::new(env.token_featurizer.clone(), cfg.dim, &mut rng);
            m.train(ft_train, measure, &sup_cfg, &mut rng);
            let q = m.embed(&queries, &mut rng);
            let d = m.embed(&database, &mut rng);
            add("Traj2SimVec".into(), q, d);
        }
        {
            let mut m = TrajGat::new(
                env.token_featurizer.clone(),
                cfg.dim,
                cfg.heads,
                1,
                &mut rng,
            );
            m.train(ft_train, measure, &sup_cfg, &mut rng);
            let q = m.embed(&queries, &mut rng);
            let d = m.embed(&database, &mut rng);
            add("TrajGAT".into(), q, d);
        }
        {
            let mut m = T3s::new(env.token_featurizer.clone(), cfg.dim, cfg.heads, &mut rng);
            m.train(ft_train, measure, &sup_cfg, &mut rng);
            let q = m.embed(&queries, &mut rng);
            let d = m.embed(&database, &mut rng);
            add("T3S".into(), q, d);
        }
    }
    table.print();
    table.save_json("table10");
    println!(
        "paper shape check: TrajCL*/TrajCL lead most cells; Hausdorff/Frechet easiest targets."
    );
}
