//! Fig. 5 — training scalability: (a) mean rank vs number of training
//! epochs; (b) mean rank vs number of training trajectories. Both
//! evaluated under the three standard settings (clean / ρs=0.2 / ρd=0.2).
//!
//! Expected shape: rapid improvement in the first few epochs, then
//! plateau; diminishing returns past ~¼ of the training pool.

use rand::rngs::StdRng;
use rand::SeedableRng;
use trajcl_bench::harness::{eval_three_settings, train_trajcl_only};
use trajcl_bench::{ExperimentEnv, Scale, Table};
use trajcl_core::{train, EncoderVariant, MocoState, TrajClConfig};
use trajcl_data::DatasetProfile;
use trajcl_nn::StepDecay;

fn main() {
    let scale = Scale::from_args();
    let mut cfg = TrajClConfig::scaled_default();
    cfg.dim = 32;
    let profile = DatasetProfile::porto();
    let env = ExperimentEnv::new(profile, &scale, cfg.dim, cfg.max_len, 22);
    let base = env.protocol();

    // (a) Mean rank vs epochs: train one epoch at a time on the same state.
    let checkpoints = [1usize, 2, 4, 6];
    let mut table_a = Table::new(
        "Fig. 5a — mean rank vs #epochs (Porto)",
        &["|D|=full", "ρs=0.2", "ρd=0.2", "cum. time (s)"],
    );
    let mut rng = StdRng::seed_from_u64(23);
    let mut moco = MocoState::new(&cfg, EncoderVariant::Dual, &mut rng);
    let schedule = StepDecay::trajcl_default();
    let mut elapsed = 0.0;
    let mut epoch_cfg = cfg.clone();
    epoch_cfg.max_epochs = 1;
    epoch_cfg.patience = usize::MAX;
    moco.online.cfg = epoch_cfg.clone();
    let mut done = 0usize;
    for &cp in &checkpoints {
        while done < cp {
            let t0 = std::time::Instant::now();
            train(
                &mut moco,
                &env.featurizer,
                &env.splits.train,
                &schedule,
                &mut rng,
            );
            elapsed += t0.elapsed().as_secs_f64();
            done += 1;
        }
        let ranks = eval_three_settings(&moco, &env.featurizer, &base, 24);
        table_a.row(
            format!("{cp} epochs"),
            vec![
                format!("{:.3}", ranks[0]),
                format!("{:.3}", ranks[1]),
                format!("{:.3}", ranks[2]),
                trajcl_bench::fmt_secs(elapsed),
            ],
        );
    }
    table_a.print();
    table_a.save_json("fig5a");

    // (b) Mean rank vs training-set size (fresh model each).
    let sizes: Vec<usize> = [4usize, 2, 1]
        .iter()
        .map(|div| env.splits.train.len() / div)
        .collect();
    let mut table_b = Table::new(
        "Fig. 5b — mean rank vs #training trajectories (Porto)",
        &["|D|=full", "ρs=0.2", "ρd=0.2", "train time (s)"],
    );
    for &n in &sizes {
        let mut sub_env_cfg = cfg.clone();
        sub_env_cfg.max_epochs = 3;
        let sub_train = &env.splits.train[..n];
        let mut rng = StdRng::seed_from_u64(25);
        let schedule = StepDecay::trajcl_default();
        let t0 = std::time::Instant::now();
        let mut m = MocoState::new(&sub_env_cfg, EncoderVariant::Dual, &mut rng);
        train(&mut m, &env.featurizer, sub_train, &schedule, &mut rng);
        let secs = t0.elapsed().as_secs_f64();
        let ranks = eval_three_settings(&m, &env.featurizer, &base, 26);
        table_b.row(
            format!("{n} trajectories"),
            vec![
                format!("{:.3}", ranks[0]),
                format!("{:.3}", ranks[1]),
                format!("{:.3}", ranks[2]),
                trajcl_bench::fmt_secs(secs),
            ],
        );
    }
    table_b.print();
    table_b.save_json("fig5b");
    let _ = train_trajcl_only; // shared helper exercised by other binaries
    println!("paper shape check: ranks fall then plateau along both axes.");
}
