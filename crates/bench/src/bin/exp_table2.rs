//! Table II — dataset statistics of the four (synthetic) dataset profiles.
//!
//! The counts are scaled (paper: 0.14–4.5 M trajectories); the per-
//! trajectory statistics (average/maximum points and kilometres) are the
//! quantities the simulator is calibrated to reproduce.

use trajcl_bench::{Scale, Table};
use trajcl_data::{Dataset, DatasetProfile};

fn main() {
    let scale = Scale::from_args();
    let mut table = Table::new(
        "Table II — dataset statistics (scaled reproduction)",
        &["Porto", "Chengdu", "Xi'an", "Germany"],
    );
    let stats: Vec<_> = DatasetProfile::all()
        .iter()
        .map(|&p| Dataset::generate(p, scale.dataset_size, 0).stats())
        .collect();
    table.row(
        "#trajectories",
        stats.iter().map(|s| s.count.to_string()).collect(),
    );
    table.row(
        "Avg. #points per trajectory",
        stats
            .iter()
            .map(|s| format!("{:.0}", s.avg_points))
            .collect(),
    );
    table.row(
        "Max. #points per trajectory",
        stats.iter().map(|s| s.max_points.to_string()).collect(),
    );
    table.row(
        "Avg. trajectory length (km)",
        stats
            .iter()
            .map(|s| format!("{:.2}", s.avg_length_km))
            .collect(),
    );
    table.row(
        "Max. trajectory length (km)",
        stats
            .iter()
            .map(|s| format!("{:.2}", s.max_length_km))
            .collect(),
    );
    table.print();
    table.save_json("table2");
    println!("paper reference: avg points 48/105/118/72; avg km 6.37/3.47/3.25/252.49");
}
