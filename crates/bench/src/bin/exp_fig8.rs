//! Fig. 8 — impact of the augmentation-method pair: a 5×5 grid over
//! {Raw, Shift, Simplify, Mask, Truncate} for the two views, reporting the
//! mean rank at full |D| (lighter/lower is better).
//!
//! Expected shape (paper): Mask & Truncate best; Raw&Raw (no augmentation)
//! and Simplify&Simplify among the worst; asymmetric pairs generally beat
//! symmetric ones.

use trajcl_bench::harness::{eval_three_settings, train_trajcl_only};
use trajcl_bench::{ExperimentEnv, Scale, Table};
use trajcl_core::{EncoderVariant, TrajClConfig};
use trajcl_data::{Augmentation, DatasetProfile};

fn main() {
    let mut scale = Scale::from_args();
    // 25 trainings: shrink defaults so the grid finishes in minutes.
    scale.train_size = scale.train_size.min(120);
    scale.db_size = scale.db_size.min(240);
    scale.n_queries = scale.n_queries.min(30);
    let mut cfg = TrajClConfig::scaled_default();
    cfg.dim = 16;
    cfg.max_epochs = 2;
    let profile = DatasetProfile::porto();
    let env = ExperimentEnv::new(profile, &scale, cfg.dim, cfg.max_len, 34);
    let base = env.protocol();

    let augs = Augmentation::all();
    let headers: Vec<&str> = augs.iter().map(|a| a.name()).collect();
    let mut table = Table::new(
        "Fig. 8 — mean rank vs augmentation pair (rows: view 1, cols: view 2)",
        &headers,
    );
    for a1 in augs {
        let mut cells = Vec::new();
        for a2 in augs {
            let mut c = cfg.clone();
            c.aug1 = a1;
            c.aug2 = a2;
            eprintln!("training {} & {}...", a1.name(), a2.name());
            let (moco, _) = train_trajcl_only(&env, &c, EncoderVariant::Dual, 35);
            let ranks = eval_three_settings(&moco, &env.featurizer, &base, 36);
            cells.push(format!("{:.2}", ranks[0]));
        }
        table.row(a1.name(), cells);
    }
    table.print();
    table.save_json("fig8");
    println!(
        "paper shape check: Mask&Trun among the best cells; Raw&Raw / Simp-heavy cells worst."
    );
}
