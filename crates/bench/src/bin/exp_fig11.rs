//! Fig. 11 — impact of the number of encoder layers (1–4), mean rank under
//! the three standard settings.
//!
//! Expected shape (paper): improves to ~2–4 layers then saturates/overfits;
//! time grows linearly with depth.

use trajcl_bench::harness::{eval_three_settings, train_trajcl_only};
use trajcl_bench::{ExperimentEnv, Scale, Table};
use trajcl_core::{EncoderVariant, TrajClConfig};
use trajcl_data::DatasetProfile;

fn main() {
    let scale = Scale::from_args();
    let mut table = Table::new(
        "Fig. 11 — mean rank vs #encoder layers (Porto)",
        &["|D|=full", "ρs=0.2", "ρd=0.2", "train time (s)"],
    );
    let env = ExperimentEnv::new(DatasetProfile::porto(), &scale, 32, 200, 43);
    let base = env.protocol();
    for layers in 1..=4usize {
        let mut cfg = TrajClConfig::scaled_default();
        cfg.dim = 32;
        cfg.layers = layers;
        cfg.max_epochs = 2;
        eprintln!("training #layers={layers}...");
        let (moco, secs) = train_trajcl_only(&env, &cfg, EncoderVariant::Dual, 44);
        let ranks = eval_three_settings(&moco, &env.featurizer, &base, 45);
        table.row(
            format!("{layers} layers"),
            vec![
                format!("{:.3}", ranks[0]),
                format!("{:.3}", ranks[1]),
                format!("{:.3}", ranks[2]),
                trajcl_bench::fmt_secs(secs),
            ],
        );
    }
    table.print();
    table.save_json("fig11");
    println!("paper shape check: improvement then saturation; time grows with depth.");
}
