//! Table VI — cross-dataset generalisation: train on Porto, test on Xi'an
//! (no fine-tuning), against t2vec, under |D| (clean), ρs = 0.2 and
//! ρd = 0.2.
//!
//! Expected shape: both methods degrade when transferred; TrajCL transfers
//! far better (its spatial features and grid topology generalise), echoing
//! the paper's 4.2 vs 1021.9 gap.

use rand::rngs::StdRng;
use rand::SeedableRng;
use trajcl_bench::{train_all, ExperimentEnv, Scale, Table};
use trajcl_core::TrajClConfig;
use trajcl_data::{distort, downsample, DatasetProfile, QueryProtocol};

fn main() {
    let scale = Scale::from_args();
    let mut cfg = TrajClConfig::scaled_default();
    cfg.dim = 32;
    cfg.max_epochs = 3;

    // Train once per source dataset.
    eprintln!("[Xi'an] training (same-dataset reference)...");
    let env_xian = ExperimentEnv::new(DatasetProfile::xian(), &scale, cfg.dim, cfg.max_len, 11);
    let models_xian = train_all(&env_xian, &cfg, 11);
    eprintln!("[Porto] training (transfer source)...");
    let env_porto = ExperimentEnv::new(DatasetProfile::porto(), &scale, cfg.dim, cfg.max_len, 11);
    let models_porto = train_all(&env_porto, &cfg, 11);

    // All evaluations run on Xi'an's test protocol. The transferred model
    // keeps its Porto featurizer (grid + cell embeddings), exactly like
    // applying a Porto-trained model to unseen Xi'an data. Coordinates are
    // normalised per-region, so the transfer stresses the learned weights.
    let base = env_xian.protocol();
    let mut deg_rng = StdRng::seed_from_u64(12);
    let protos: Vec<(&str, QueryProtocol)> = vec![
        ("|D|=full", base.clone()),
        ("ρs=0.2", base.degrade(|t| downsample(t, 0.2, &mut deg_rng))),
        (
            "ρd=0.2",
            base.degrade(|t| distort(t, 0.2, 100.0, 0.5, &mut deg_rng)),
        ),
    ];

    let headers: Vec<&str> = protos.iter().map(|(n, _)| *n).collect();
    let mut table = Table::new("Table VI — mean rank vs test dataset", &headers);
    let mut rng = StdRng::seed_from_u64(13);

    for (setting, models, env) in [
        ("Xi'an->Xi'an", &models_xian, &env_xian),
        ("Porto->Xi'an", &models_porto, &env_porto),
    ] {
        let t2v: Vec<f64> = protos
            .iter()
            .map(|(_, p)| models.mean_rank_learned("t2vec", &env.featurizer, p, &mut rng))
            .collect();
        table.row_f64(format!("{setting} t2vec"), &t2v);
        let tcl: Vec<f64> = protos
            .iter()
            .map(|(_, p)| models.mean_rank_learned("TrajCL", &env.featurizer, p, &mut rng))
            .collect();
        table.row_f64(format!("{setting} TrajCL"), &tcl);
    }
    table.print();
    table.save_json("table6");
    println!("paper shape check: Porto->Xi'an degrades both; TrajCL's gap to t2vec widens.");
}
