//! Fig. 1 — qualitative 3NN query comparison: Hausdorff (heuristic) vs
//! t2vec (learned, recurrent) vs TrajCL, rendered as SVG files under
//! `results/fig1_*.svg`.
//!
//! Expected shape (paper): TrajCL's neighbours hug the query trajectory;
//! t2vec's wander; Hausdorff's are close but not as tight.

use rand::rngs::StdRng;
use rand::SeedableRng;
use trajcl_bench::{train_all, ExperimentEnv, Scale, Table};
use trajcl_core::{l1_distances, TrajClConfig};
use trajcl_data::DatasetProfile;
use trajcl_geo::render_knn_figure;
use trajcl_measures::{hausdorff, pairwise_distances, HeuristicMeasure};

fn main() {
    let scale = Scale::from_args();
    let mut cfg = TrajClConfig::scaled_default();
    cfg.dim = 32;
    cfg.max_epochs = 3;
    let profile = DatasetProfile::porto();
    let env = ExperimentEnv::new(profile, &scale, cfg.dim, cfg.max_len, 50);
    eprintln!("[{}] training models...", profile.name());
    let models = train_all(&env, &cfg, 50);
    let mut rng = StdRng::seed_from_u64(51);

    let db = &env.splits.test;
    let query = &env.splits.downstream[0];
    let k = 3;

    // Hausdorff 3NN.
    let hd = pairwise_distances(std::slice::from_ref(query), db, HeuristicMeasure::Hausdorff);
    let mut order: Vec<usize> = (0..db.len()).collect();
    order.sort_by(|&a, &b| hd[a].total_cmp(&hd[b]));
    let hausdorff_knn: Vec<usize> = order[..k].to_vec();

    // t2vec 3NN.
    let tq = models.embed("t2vec", std::slice::from_ref(query), &mut rng);
    let td = models.embed("t2vec", db, &mut rng);
    let t2d = l1_distances(&tq, &td);
    let mut order: Vec<usize> = (0..db.len()).collect();
    order.sort_by(|&a, &b| t2d[a].total_cmp(&t2d[b]));
    let t2vec_knn: Vec<usize> = order[..k].to_vec();

    // TrajCL 3NN.
    let cq = models.embed_trajcl(&env.featurizer, std::slice::from_ref(query));
    let cd = models.embed_trajcl(&env.featurizer, db);
    let cld = l1_distances(&cq, &cd);
    let mut order: Vec<usize> = (0..db.len()).collect();
    order.sort_by(|&a, &b| cld[a].total_cmp(&cld[b]));
    let trajcl_knn: Vec<usize> = order[..k].to_vec();

    std::fs::create_dir_all("results").ok();
    let mut table = Table::new(
        "Fig. 1 — 3NN results (mean Hausdorff distance of the result set, meters)",
        &["#1", "#2", "#3", "mean dist (m)"],
    );
    for (name, knn) in [
        ("Hausdorff", &hausdorff_knn),
        ("t2vec", &t2vec_knn),
        ("TrajCL", &trajcl_knn),
    ] {
        let neighbors: Vec<&trajcl_geo::Trajectory> = knn.iter().map(|&i| &db[i]).collect();
        let svg = render_knn_figure(query, &neighbors, 480);
        let path = format!("results/fig1_{}.svg", name.to_lowercase());
        std::fs::write(&path, svg).expect("write svg");
        let mean_d: f64 = knn.iter().map(|&i| hausdorff(query, &db[i])).sum::<f64>() / k as f64;
        table.row(
            name,
            vec![
                knn[0].to_string(),
                knn[1].to_string(),
                knn[2].to_string(),
                format!("{mean_d:.0}"),
            ],
        );
        eprintln!("wrote {path}");
    }
    table.print();
    table.save_json("fig1");
    println!(
        "paper shape check: TrajCL's result set is geographically tightest (smallest mean dist)."
    );
}
