//! Fig. 9 — impact of the augmentation parameters: ρd (masking
//! proportion) × ρb (truncation keep-ratio) grid under the default
//! Mask & Truncate views, reporting mean rank at full |D|.
//!
//! Expected shape (paper): flat middle, degradation at the extremes
//! (0.1 / 0.9); the default (ρd=0.3, ρb=0.7) sits in the good region.

use trajcl_bench::harness::{eval_three_settings, train_trajcl_only};
use trajcl_bench::{ExperimentEnv, Scale, Table};
use trajcl_core::{EncoderVariant, TrajClConfig};
use trajcl_data::DatasetProfile;

fn main() {
    let mut scale = Scale::from_args();
    scale.train_size = scale.train_size.min(120);
    scale.db_size = scale.db_size.min(240);
    scale.n_queries = scale.n_queries.min(30);
    let mut cfg = TrajClConfig::scaled_default();
    cfg.dim = 16;
    cfg.max_epochs = 2;
    let profile = DatasetProfile::porto();
    let env = ExperimentEnv::new(profile, &scale, cfg.dim, cfg.max_len, 37);
    let base = env.protocol();

    let values = [0.1, 0.3, 0.5, 0.7, 0.9];
    let headers: Vec<String> = values.iter().map(|v| format!("ρb={v}")).collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "Fig. 9 — mean rank vs augmentation parameters (rows ρd, cols ρb)",
        &header_refs,
    );
    for &rho_d in &values {
        let mut cells = Vec::new();
        for &rho_b in &values {
            let mut c = cfg.clone();
            c.aug_params.rho_d = rho_d;
            c.aug_params.rho_b = rho_b;
            eprintln!("training ρd={rho_d} ρb={rho_b}...");
            let (moco, _) = train_trajcl_only(&env, &c, EncoderVariant::Dual, 38);
            let ranks = eval_three_settings(&moco, &env.featurizer, &base, 39);
            cells.push(format!("{:.2}", ranks[0]));
        }
        table.row(format!("ρd={rho_d}"), cells);
    }
    table.print();
    table.save_json("fig9");
    println!("paper shape check: extremes (0.9 masking / 0.1 keep) degrade; defaults competitive.");
}
