//! Closed-loop load generator for the serving layer: records p50/p99
//! latency and qps, commit-tagged, into `BENCH_serve.json` — the serve
//! counterpart of `perf_snapshot` / BENCH_embed.json.
//!
//! Scenarios (per client-thread count, default 1/8/32):
//!
//! * `mutex` — clients call `Engine::knn` directly, serialising on the
//!   backend's single serving `Mutex<InferCtx>` (the PR-2 path);
//! * `serve` — clients call `Server::knn` through the micro-batcher, the
//!   per-worker context pool and the LRU embedding cache, against a hot
//!   query pool (repeated queries, the "millions of users" profile);
//! * `serve_cold` — same runtime with the cache disabled and a query pool
//!   larger than any batch, isolating the batcher itself.
//!
//! Usage:
//!   load_gen [--quick] [--label NAME] [--out BENCH_serve.json]
//!            [--check BENCH_serve.json]
//!
//! * default: measure and append a run entry to `--out`;
//! * `--check FILE`: measure, compare the 8-client serving ratios
//!   (hot/cold qps speedup over the in-run mutex baseline, cold p99 tail
//!   ratio) against the last entry in FILE, and exit non-zero when any
//!   regressed more than 30% (the CI serve gate — ratios, not raw
//!   numbers, so the committed baseline is portable across machines).
//!   Nothing is written.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use trajcl_bench::snapfile::{append_run, git_commit, last_value};
use trajcl_core::{EncoderVariant, Featurizer, TrajClConfig, TrajClModel};
use trajcl_engine::Engine;
use trajcl_geo::{Bbox, Grid, Point, SpatialNorm, Trajectory};
use trajcl_serve::{ServeConfig, Server};
use trajcl_tensor::{Shape, Tensor};

/// Maximum tolerated qps-ratio regression vs. the baseline.
const MAX_REGRESSION: f64 = 0.30;
/// Tolerance for the p99 tail ratio, wider than the qps band: p99 over a
/// quick 400 ms window rests on a handful of tail samples and scheduler
/// convoying differs across runner core counts, so the tail gate catches
/// order-of-magnitude regressions without flaking on noise.
const TAIL_REGRESSION: f64 = 1.0;

const THREAD_COUNTS: [usize; 3] = [1, 8, 32];
const K: usize = 10;
/// Distinct queries in the hot pool (cachable working set).
const HOT_QUERIES: usize = 64;
/// Distinct queries in the cold pool (defeats the 0-capacity cache).
const COLD_QUERIES: usize = 512;
const DB_SIZE: usize = 256;
/// Batcher workers, pinned (not `available_parallelism`) so gated numbers
/// are comparable across runners with different core counts.
const WORKERS: usize = 2;

fn engine() -> Engine {
    let mut rng = StdRng::seed_from_u64(0);
    let mut cfg = TrajClConfig::scaled_default();
    cfg.dim = 32;
    cfg.ffn_hidden = 64;
    let region = Bbox::new(Point::new(0.0, 0.0), Point::new(10_000.0, 10_000.0));
    let grid = Grid::new(region, 200.0);
    let table = Tensor::randn(Shape::d2(grid.num_cells(), cfg.dim), 0.0, 0.3, &mut rng);
    let feat = Featurizer::new(grid, table, SpatialNorm::new(region, 200.0), 128);
    let model = TrajClModel::new(&cfg, EncoderVariant::Dual, &mut rng);
    Engine::builder()
        .trajcl(model, feat)
        .batch_size(128)
        .database(workload(DB_SIZE, 0))
        .build()
        .expect("engine build")
}

/// Deterministic trajectories; `salt` decorrelates pools.
fn workload(n: usize, salt: usize) -> Vec<Trajectory> {
    (0..n)
        .map(|i| {
            (0..48)
                .map(|t| {
                    Point::new(
                        200.0 + t as f64 * 60.0,
                        400.0 + ((i + salt) % 61) as f64 * 150.0 + (t % 7) as f64 * 17.0,
                    )
                })
                .collect()
        })
        .collect()
}

/// Latency distribution + throughput of one scenario cell.
#[derive(Clone, Copy)]
struct Cell {
    qps: f64,
    p50_us: f64,
    p99_us: f64,
}

fn percentile_us(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx] as f64 / 1e3
}

/// Runs `op` closed-loop from `threads` clients for `measure` seconds
/// (after `warmup`), returning the merged latency stats.
fn run_cell(
    threads: usize,
    warmup: Duration,
    measure: Duration,
    op: impl Fn(usize, usize) + Sync,
) -> Cell {
    let barrier = Barrier::new(threads);
    let next = AtomicUsize::new(0);
    let mut all: Vec<Vec<u64>> = Vec::new();
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|client| {
                let barrier = &barrier;
                let next = &next;
                let op = &op;
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(4096);
                    barrier.wait();
                    let start = Instant::now();
                    let warm_until = start + warmup;
                    let until = warm_until + measure;
                    loop {
                        let now = Instant::now();
                        if now >= until {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let t = Instant::now();
                        op(client, i);
                        if now >= warm_until {
                            lat.push(t.elapsed().as_nanos() as u64);
                        }
                    }
                    lat
                })
            })
            .collect();
        for h in handles {
            all.push(h.join().expect("client thread"));
        }
    });
    let _ = t0;
    let mut merged: Vec<u64> = all.into_iter().flatten().collect();
    merged.sort_unstable();
    let ops = merged.len();
    Cell {
        qps: ops as f64 / measure.as_secs_f64(),
        p50_us: percentile_us(&merged, 0.50),
        p99_us: percentile_us(&merged, 0.99),
    }
}

struct Snapshot {
    commit: String,
    label: String,
    quick: bool,
    /// (scenario, threads, cell)
    cells: Vec<(&'static str, usize, Cell)>,
}

impl Snapshot {
    fn to_json(&self) -> String {
        // `cpu`/`force_scalar` record the integer-kernel dispatch decision
        // (index scans under symmetric SQ8 route through it), keeping rows
        // from different machines comparable.
        let mut s = format!(
            "{{\"commit\":\"{}\",\"label\":\"{}\",\"quick\":{},\"cpu\":\"{}\",\"force_scalar\":{},\"hot\":{HOT_QUERIES},\"db\":{DB_SIZE}",
            self.commit,
            self.label,
            self.quick,
            trajcl_index::kernels::dispatch::description(),
            trajcl_index::kernels::dispatch::forced_scalar()
        );
        for (name, threads, cell) in &self.cells {
            s.push_str(&format!(
                ",\"{name}_{threads}_qps\":{:.1},\"{name}_{threads}_p50_us\":{:.1},\"{name}_{threads}_p99_us\":{:.1}",
                cell.qps, cell.p50_us, cell.p99_us
            ));
        }
        // Within-run ratios vs. the mutex baseline: these cancel machine
        // speed and scheduler effects, so they are what the CI gate
        // compares across runners (raw cells are kept for humans).
        if let (Some(m), Some(sv)) = (self.cell("mutex", 8), self.cell("serve", 8)) {
            s.push_str(&format!(",\"speedup_8\":{:.3}", sv.qps / m.qps));
        }
        if let (Some(m), Some(sc)) = (self.cell("mutex", 8), self.cell("serve_cold", 8)) {
            s.push_str(&format!(
                ",\"cold_speedup_8\":{:.3},\"cold_tail_ratio_8\":{:.3}",
                sc.qps / m.qps,
                sc.p99_us / m.p99_us
            ));
        }
        s.push('}');
        s
    }

    fn cell(&self, name: &str, threads: usize) -> Option<&Cell> {
        self.cells
            .iter()
            .find(|(n, t, _)| *n == name && *t == threads)
            .map(|(_, _, c)| c)
    }
}

fn measure_all(quick: bool, label: &str) -> Snapshot {
    let (warmup, measure) = if quick {
        (Duration::from_millis(100), Duration::from_millis(400))
    } else {
        (Duration::from_millis(250), Duration::from_millis(1500))
    };
    let engine = Arc::new(engine());
    let hot = workload(HOT_QUERIES, 7);
    let cold = workload(COLD_QUERIES, 13);
    let mut cells = Vec::new();

    for &threads in &THREAD_COUNTS {
        // Baseline: Engine::knn through the single serving mutex.
        let cell = run_cell(threads, warmup, measure, |_, i| {
            let hits = engine.knn(&hot[i % hot.len()], K).expect("knn");
            std::hint::black_box(hits);
        });
        eprintln!(
            "mutex      threads={threads:<3} {:>9.1} qps  p50 {:>8.1}us  p99 {:>8.1}us",
            cell.qps, cell.p50_us, cell.p99_us
        );
        cells.push(("mutex", threads, cell));
    }

    for &threads in &THREAD_COUNTS {
        // Batched serving, hot query pool (cache + batcher).
        let server = Server::new(
            Arc::clone(&engine),
            ServeConfig {
                workers: WORKERS,
                ..ServeConfig::default()
            },
        )
        .expect("server");
        let cell = run_cell(threads, warmup, measure, |_, i| {
            let hits = server.knn(&hot[i % hot.len()], K).expect("knn");
            std::hint::black_box(hits);
        });
        let stats = server.stats();
        eprintln!(
            "serve      threads={threads:<3} {:>9.1} qps  p50 {:>8.1}us  p99 {:>8.1}us  (cache {}/{} hit, {} batches)",
            cell.qps, cell.p50_us, cell.p99_us, stats.cache_hits,
            stats.cache_hits + stats.cache_misses, stats.batches
        );
        cells.push(("serve", threads, cell));
        server.shutdown();
    }

    // Cache-off, wide query pool: isolates the micro-batcher.
    let server = Server::new(
        Arc::clone(&engine),
        ServeConfig {
            workers: WORKERS,
            cache_cap: 0,
            ..ServeConfig::default()
        },
    )
    .expect("server");
    let cell = run_cell(8, warmup, measure, |_, i| {
        let hits = server.knn(&cold[i % cold.len()], K).expect("knn");
        std::hint::black_box(hits);
    });
    let stats = server.stats();
    eprintln!(
        "serve_cold threads=8   {:>9.1} qps  p50 {:>8.1}us  p99 {:>8.1}us  ({} trajs / {} batches)",
        cell.qps, cell.p50_us, cell.p99_us, stats.batched_trajs, stats.batches
    );
    cells.push(("serve_cold", 8, cell));
    server.shutdown();

    Snapshot {
        commit: git_commit(),
        label: label.to_string(),
        quick,
        cells,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = "BENCH_serve.json".to_string();
    let mut check: Option<String> = None;
    let mut label = "snapshot".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--out" => {
                i += 1;
                out = args[i].clone();
            }
            "--check" => {
                i += 1;
                check = Some(args[i].clone());
            }
            "--label" => {
                i += 1;
                label = args[i].clone();
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let snap = measure_all(quick, &label);

    if let Some(baseline_path) = check {
        // The gate compares WITHIN-RUN ratios vs. the mutex baseline, not
        // raw qps/latency: both sides of each ratio are measured on the
        // same machine in the same run, so runner speed and scheduler
        // effects cancel and the committed baseline stays comparable
        // across machines. Gated (all vs. last committed entry, 30%):
        //   * speedup_8        — hot serve qps / mutex qps (cache+batcher)
        //   * cold_speedup_8   — cache-off serve qps / mutex qps (batcher)
        //   * cold_tail_ratio_8 — cache-off serve p99 / mutex p99 (lower
        //     is better: the batcher's tail-latency win over convoying)
        let mutex = snap.cell("mutex", 8).copied().expect("mutex@8 measured");
        let hot = snap.cell("serve", 8).copied().expect("serve@8 measured");
        let cold = snap
            .cell("serve_cold", 8)
            .copied()
            .expect("serve_cold@8 measured");
        let ratios = [
            ("speedup_8", hot.qps / mutex.qps, false),
            ("cold_speedup_8", cold.qps / mutex.qps, false),
            ("cold_tail_ratio_8", cold.p99_us / mutex.p99_us, true),
        ];
        let mut failed = false;
        let mut checked = 0usize;
        for (key, measured, lower_is_better) in ratios {
            let Some(base) = last_value(&baseline_path, key) else {
                eprintln!("no {key} baseline in {baseline_path}; skipping");
                continue;
            };
            checked += 1;
            let (bound, budget, ok) = if lower_is_better {
                let ceiling = base * (1.0 + TAIL_REGRESSION);
                (ceiling, TAIL_REGRESSION, measured <= ceiling)
            } else {
                let floor = base * (1.0 - MAX_REGRESSION);
                (floor, MAX_REGRESSION, measured >= floor)
            };
            eprintln!(
                "check {key}: {measured:.3} vs baseline {base:.3} ({} {bound:.3})",
                if lower_is_better { "ceiling" } else { "floor" }
            );
            if !ok {
                eprintln!("FAIL: {key} regressed more than {:.0}%", budget * 100.0);
                failed = true;
            }
        }
        if checked == 0 {
            eprintln!("no usable baseline found in {baseline_path}");
            std::process::exit(2);
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("OK: within the regression budget");
    } else {
        let entry = snap.to_json();
        append_run(&out, &entry);
        eprintln!("recorded run '{}' ({}) -> {out}", snap.label, snap.commit);
    }
}
