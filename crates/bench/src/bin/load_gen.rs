//! Closed-loop load generator for the serving layer: records p50/p99
//! latency and qps, commit-tagged, into `BENCH_serve.json` — the serve
//! counterpart of `perf_snapshot` / BENCH_embed.json.
//!
//! Scenarios (per client-thread count, default 1/8/32):
//!
//! * `mutex` — clients call `Engine::knn` directly, serialising on the
//!   backend's single serving `Mutex<InferCtx>` (the PR-2 path);
//! * `serve` — clients call `Server::knn` through the micro-batcher, the
//!   per-worker context pool and the LRU embedding cache, against a hot
//!   query pool (repeated queries, the "millions of users" profile);
//! * `serve_cold` — same runtime with the cache disabled and a query pool
//!   larger than any batch, isolating the batcher itself.
//!
//! With `--transport tcp` the scenarios instead run over a live TCP
//! listener (`trajcl_serve::net`), sweeping the shard count 1/4/16:
//!
//! * `tcp_write_sN` — 8 client connections stream upsert frames over a
//!   working set of [`WRITE_IDS`] ids (trajectory pool small enough that
//!   the LRU embedding cache absorbs the encoder — the cell measures the
//!   index write path, which is what sharding changes);
//! * `tcp_knn_sN` — the same connections issue kNN frames against the
//!   hot pool after a compact (the sealed scatter-gather read path).
//!
//! The sweep first asserts sharded kNN is bit-identical to unsharded
//! over the engine's exact table (the merge-correctness leg).
//!
//! With `--transport fleet` the scenarios run through the fault-tolerant
//! front-end router (`trajcl_serve::Fleet`) over four downstream shard
//! servers, all on real sockets:
//!
//! * `fleet_knn_4of4` — healthy fleet; every response is checked
//!   `"partial":false` with all four shards answering;
//! * `fleet_knn_3of4` — shard 0 is SIGKILL-equivalently torn down and
//!   the health machine driven to Down first, then the same read load
//!   runs degraded; every measured response is checked
//!   `"partial":true,"shards_ok":3,"shards_total":4`.
//!
//! With `--transport wal` the scenarios measure what durability costs:
//! the same in-process 8-client upsert cell runs twice — once on a plain
//! server (`wal_off_write`) and once with a write-ahead log configured
//! (`wal_on_write`, every ack preceded by a group-commit fsync) — and
//! the within-run ratio `wal_write_qps_ratio` is gated against
//! [`WAL_WRITE_FLOOR`].
//!
//! Usage:
//!   load_gen [--quick] [--label NAME] [--transport inproc|tcp|fleet|wal]
//!            [--out BENCH_serve.json] [--check BENCH_serve.json]
//!
//! * default: measure and append a run entry to `--out`;
//! * `--check FILE`: measure and exit non-zero on a regression; nothing
//!   is written. In-process, the 8-client serving ratios (hot/cold qps
//!   speedup over the in-run mutex baseline, cold p99 tail ratio) are
//!   compared against the last entry in FILE with a 30% budget — ratios,
//!   not raw numbers, so the committed baseline is portable across
//!   machines. Over TCP the shard gate is within-run and absolute
//!   (4-shard write throughput >= 1.5x 1-shard, 4-shard read p99 no
//!   worse than the tail-noise band), so FILE is not consulted.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use trajcl_bench::snapfile::{append_run, git_commit, last_value};
use trajcl_core::{EncoderVariant, Featurizer, TrajClConfig, TrajClModel};
use trajcl_engine::Engine;
use trajcl_geo::{Bbox, Grid, Point, SpatialNorm, Trajectory};
use trajcl_index::{IndexOptions, Metric, ShardedIndex};
use trajcl_serve::{Client, Fleet, FleetConfig, ServeConfig, Server, SessionOptions};
use trajcl_tensor::{Shape, Tensor};

/// Maximum tolerated qps-ratio regression vs. the baseline.
const MAX_REGRESSION: f64 = 0.30;
/// Tolerance for the p99 tail ratio, wider than the qps band: p99 over a
/// quick 400 ms window rests on a handful of tail samples and scheduler
/// convoying differs across runner core counts, so the tail gate catches
/// order-of-magnitude regressions without flaking on noise.
const TAIL_REGRESSION: f64 = 1.0;

const THREAD_COUNTS: [usize; 3] = [1, 8, 32];
const K: usize = 10;
/// Distinct queries in the hot pool (cachable working set).
const HOT_QUERIES: usize = 64;
/// Distinct queries in the cold pool (defeats the 0-capacity cache).
const COLD_QUERIES: usize = 512;
const DB_SIZE: usize = 256;
/// Batcher workers, pinned (not `available_parallelism`) so gated numbers
/// are comparable across runners with different core counts.
const WORKERS: usize = 2;

/// Shard counts swept by `--transport tcp`.
const SHARD_COUNTS: [usize; 3] = [1, 4, 16];
/// Client connections for the TCP cells (matches the gated in-process
/// thread count).
const TCP_CLIENTS: usize = 8;
/// Distinct ids the write cell cycles through — the steady-state write
/// buffer size, prewarmed in-process before the cell so every measured
/// upsert pays the full O(buffer / shards) publish clone. Sized so that
/// clone dominates the per-request fixed cost (frame parse, cache
/// lookup, socket round trip) even on a single-core runner.
const WRITE_IDS: usize = 16384;
/// Distinct trajectories behind those ids: small enough that the LRU
/// embedding cache absorbs the encoder after warmup, so the cell
/// measures the index write path (buffer publish + dirty tracking) that
/// sharding actually changes.
const WRITE_POOL: usize = 64;
/// Id offset for write-cell ids, clear of the seeded database rows.
const WRITE_BASE: u64 = 1 << 20;
/// CI floor on 4-shard / 1-shard write throughput. Each upsert publishes
/// a copy-on-write clone of its shard's buffer, an O(per-shard buffer)
/// cost — four shards cut it ~4x even on a single-core runner, so 1.5x
/// leaves wide headroom.
const SHARD_WRITE_FLOOR: f64 = 1.5;
/// CI ceiling on 4-shard / 1-shard read p99: "does not regress", with
/// the same quick-window tail-noise allowance philosophy as
/// [`TAIL_REGRESSION`] (p99 over a short window rests on a handful of
/// samples).
const SHARD_TAIL_CEILING: f64 = 1.5;

/// Downstream shard servers in the fleet scenario; shard 0 is torn down
/// for the degraded cell.
const FLEET_SHARDS: usize = 4;
/// Rows seeded through the fleet front-end before the read cells.
const FLEET_DB: usize = 256;
/// CI floor on degraded-over-healthy fleet read throughput: once the
/// dead shard is marked Down the scatter skips it entirely, so degraded
/// qps should sit near parity — 0.5 catches "every request burns a
/// retry budget against the corpse" regressions without flaking.
const FLEET_DEGRADED_FLOOR: f64 = 0.5;

/// CI floor on wal-on / wal-off write throughput at the [`WRITE_IDS`]
/// steady state: group commit batches all concurrent appends into one
/// fsync (~1/8th of an fsync per op under 8 closed-loop clients), and at
/// a 16k-id buffer the publish clone both sides pay dominates that
/// share, so durable writes should stay within ~2x of ephemeral ones;
/// 0.5 catches "every ack pays a private fsync" (or worse, a checkpoint
/// stampede) regressions without flaking on storage-speed noise.
const WAL_WRITE_FLOOR: f64 = 0.5;

fn engine_with(database: Option<Vec<Trajectory>>) -> Engine {
    let mut rng = StdRng::seed_from_u64(0);
    let mut cfg = TrajClConfig::scaled_default();
    cfg.dim = 32;
    cfg.ffn_hidden = 64;
    let region = Bbox::new(Point::new(0.0, 0.0), Point::new(10_000.0, 10_000.0));
    let grid = Grid::new(region, 200.0);
    let table = Tensor::randn(Shape::d2(grid.num_cells(), cfg.dim), 0.0, 0.3, &mut rng);
    let feat = Featurizer::new(grid, table, SpatialNorm::new(region, 200.0), 128);
    let model = TrajClModel::new(&cfg, EncoderVariant::Dual, &mut rng);
    let mut builder = Engine::builder().trajcl(model, feat).batch_size(128);
    if let Some(db) = database {
        builder = builder.database(db);
    }
    builder.build().expect("engine build")
}

fn engine() -> Engine {
    engine_with(Some(workload(DB_SIZE, 0)))
}

/// Deterministic trajectories; `salt` decorrelates pools.
fn workload(n: usize, salt: usize) -> Vec<Trajectory> {
    (0..n)
        .map(|i| {
            (0..48)
                .map(|t| {
                    Point::new(
                        200.0 + t as f64 * 60.0,
                        400.0 + ((i + salt) % 61) as f64 * 150.0 + (t % 7) as f64 * 17.0,
                    )
                })
                .collect()
        })
        .collect()
}

/// Latency distribution + throughput of one scenario cell.
#[derive(Clone, Copy)]
struct Cell {
    qps: f64,
    p50_us: f64,
    p99_us: f64,
}

fn percentile_us(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx] as f64 / 1e3
}

/// Runs `op` closed-loop from `threads` clients for `measure` seconds
/// (after `warmup`), returning the merged latency stats.
fn run_cell(
    threads: usize,
    warmup: Duration,
    measure: Duration,
    op: impl Fn(usize, usize) + Sync,
) -> Cell {
    let barrier = Barrier::new(threads);
    let next = AtomicUsize::new(0);
    let mut all: Vec<Vec<u64>> = Vec::new();
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|client| {
                let barrier = &barrier;
                let next = &next;
                let op = &op;
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(4096);
                    barrier.wait();
                    let start = Instant::now();
                    let warm_until = start + warmup;
                    let until = warm_until + measure;
                    loop {
                        let now = Instant::now();
                        if now >= until {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let t = Instant::now();
                        op(client, i);
                        if now >= warm_until {
                            lat.push(t.elapsed().as_nanos() as u64);
                        }
                    }
                    lat
                })
            })
            .collect();
        for h in handles {
            all.push(h.join().expect("client thread"));
        }
    });
    let _ = t0;
    let mut merged: Vec<u64> = all.into_iter().flatten().collect();
    merged.sort_unstable();
    let ops = merged.len();
    Cell {
        qps: ops as f64 / measure.as_secs_f64(),
        p50_us: percentile_us(&merged, 0.50),
        p99_us: percentile_us(&merged, 0.99),
    }
}

struct Snapshot {
    commit: String,
    label: String,
    quick: bool,
    /// Which transport carried the cells (`"inproc"` or `"tcp"`).
    transport: &'static str,
    /// Shard counts the cells cover (`[1]` in-process, the sweep on TCP).
    shards: Vec<usize>,
    /// (scenario, threads, cell)
    cells: Vec<(&'static str, usize, Cell)>,
}

impl Snapshot {
    fn to_json(&self) -> String {
        // `cpu`/`force_scalar` record the integer-kernel dispatch decision
        // (index scans under symmetric SQ8 route through it), keeping rows
        // from different machines comparable.
        let shard_list: Vec<String> = self.shards.iter().map(|s| s.to_string()).collect();
        let mut s = format!(
            "{{\"commit\":\"{}\",\"label\":\"{}\",\"quick\":{},\"transport\":\"{}\",\"shards\":[{}],\"cpu\":\"{}\",\"force_scalar\":{},\"hot\":{HOT_QUERIES},\"db\":{DB_SIZE}",
            self.commit,
            self.label,
            self.quick,
            self.transport,
            shard_list.join(","),
            trajcl_index::kernels::dispatch::description(),
            trajcl_index::kernels::dispatch::forced_scalar()
        );
        for (name, threads, cell) in &self.cells {
            s.push_str(&format!(
                ",\"{name}_{threads}_qps\":{:.1},\"{name}_{threads}_p50_us\":{:.1},\"{name}_{threads}_p99_us\":{:.1}",
                cell.qps, cell.p50_us, cell.p99_us
            ));
        }
        // Within-run ratios vs. the mutex baseline: these cancel machine
        // speed and scheduler effects, so they are what the CI gate
        // compares across runners (raw cells are kept for humans).
        if let (Some(m), Some(sv)) = (self.cell("mutex", 8), self.cell("serve", 8)) {
            s.push_str(&format!(",\"speedup_8\":{:.3}", sv.qps / m.qps));
        }
        if let (Some(m), Some(sc)) = (self.cell("mutex", 8), self.cell("serve_cold", 8)) {
            s.push_str(&format!(
                ",\"cold_speedup_8\":{:.3},\"cold_tail_ratio_8\":{:.3}",
                sc.qps / m.qps,
                sc.p99_us / m.p99_us
            ));
        }
        // Shard-sweep ratios (TCP runs): what the sharding gate reads.
        if let Some((w, r)) = self.shard_ratios() {
            s.push_str(&format!(
                ",\"shard4_write_speedup\":{w:.3},\"shard4_read_tail_ratio\":{r:.3}"
            ));
        }
        // Degraded-over-healthy throughput (fleet runs): what the fleet
        // gate reads.
        if let Some(ratio) = self.fleet_degraded_ratio() {
            s.push_str(&format!(",\"fleet_degraded_qps_ratio\":{ratio:.3}"));
        }
        // Durable-over-ephemeral write throughput (wal runs): what the
        // durability gate reads.
        if let Some(ratio) = self.wal_write_ratio() {
            s.push_str(&format!(",\"wal_write_qps_ratio\":{ratio:.3}"));
        }
        s.push('}');
        s
    }

    /// 4-shard-over-1-shard (write qps speedup, read p99 tail ratio),
    /// when both sweep points were measured.
    fn shard_ratios(&self) -> Option<(f64, f64)> {
        let w1 = self.cell("tcp_write_s1", TCP_CLIENTS)?;
        let w4 = self.cell("tcp_write_s4", TCP_CLIENTS)?;
        let r1 = self.cell("tcp_knn_s1", TCP_CLIENTS)?;
        let r4 = self.cell("tcp_knn_s4", TCP_CLIENTS)?;
        Some((w4.qps / w1.qps, r4.p99_us / r1.p99_us))
    }

    /// Degraded (3 of 4 shards) over healthy fleet read qps, when both
    /// fleet cells were measured.
    fn fleet_degraded_ratio(&self) -> Option<f64> {
        let healthy = self.cell("fleet_knn_4of4", TCP_CLIENTS)?;
        let degraded = self.cell("fleet_knn_3of4", TCP_CLIENTS)?;
        Some(degraded.qps / healthy.qps)
    }

    /// WAL-on over WAL-off write qps, when both durability cells were
    /// measured.
    fn wal_write_ratio(&self) -> Option<f64> {
        let off = self.cell("wal_off_write", TCP_CLIENTS)?;
        let on = self.cell("wal_on_write", TCP_CLIENTS)?;
        Some(on.qps / off.qps)
    }

    fn cell(&self, name: &str, threads: usize) -> Option<&Cell> {
        self.cells
            .iter()
            .find(|(n, t, _)| *n == name && *t == threads)
            .map(|(_, _, c)| c)
    }
}

fn measure_all(quick: bool, label: &str) -> Snapshot {
    let (warmup, measure) = if quick {
        (Duration::from_millis(100), Duration::from_millis(400))
    } else {
        (Duration::from_millis(250), Duration::from_millis(1500))
    };
    let engine = Arc::new(engine());
    let hot = workload(HOT_QUERIES, 7);
    let cold = workload(COLD_QUERIES, 13);
    let mut cells = Vec::new();

    for &threads in &THREAD_COUNTS {
        // Baseline: Engine::knn through the single serving mutex.
        let cell = run_cell(threads, warmup, measure, |_, i| {
            let hits = engine.knn(&hot[i % hot.len()], K).expect("knn");
            std::hint::black_box(hits);
        });
        eprintln!(
            "mutex      threads={threads:<3} {:>9.1} qps  p50 {:>8.1}us  p99 {:>8.1}us",
            cell.qps, cell.p50_us, cell.p99_us
        );
        cells.push(("mutex", threads, cell));
    }

    for &threads in &THREAD_COUNTS {
        // Batched serving, hot query pool (cache + batcher).
        let server = Server::new(
            Arc::clone(&engine),
            ServeConfig {
                workers: WORKERS,
                ..ServeConfig::default()
            },
        )
        .expect("server");
        let cell = run_cell(threads, warmup, measure, |_, i| {
            let hits = server.knn(&hot[i % hot.len()], K).expect("knn");
            std::hint::black_box(hits);
        });
        let stats = server.stats();
        eprintln!(
            "serve      threads={threads:<3} {:>9.1} qps  p50 {:>8.1}us  p99 {:>8.1}us  (cache {}/{} hit, {} batches)",
            cell.qps, cell.p50_us, cell.p99_us, stats.cache_hits,
            stats.cache_hits + stats.cache_misses, stats.batches
        );
        cells.push(("serve", threads, cell));
        server.shutdown();
    }

    // Cache-off, wide query pool: isolates the micro-batcher.
    let server = Server::new(
        Arc::clone(&engine),
        ServeConfig {
            workers: WORKERS,
            cache_cap: 0,
            ..ServeConfig::default()
        },
    )
    .expect("server");
    let cell = run_cell(8, warmup, measure, |_, i| {
        let hits = server.knn(&cold[i % cold.len()], K).expect("knn");
        std::hint::black_box(hits);
    });
    let stats = server.stats();
    eprintln!(
        "serve_cold threads=8   {:>9.1} qps  p50 {:>8.1}us  p99 {:>8.1}us  ({} trajs / {} batches)",
        cell.qps, cell.p50_us, cell.p99_us, stats.batched_trajs, stats.batches
    );
    cells.push(("serve_cold", 8, cell));
    server.shutdown();

    Snapshot {
        commit: git_commit(),
        label: label.to_string(),
        quick,
        transport: "inproc",
        shards: vec![1],
        cells,
    }
}

/// A trajectory as the wire protocol's `[[x,y],...]` point array.
fn traj_json(t: &Trajectory) -> String {
    let pts: Vec<String> = t
        .points()
        .iter()
        .map(|p| format!("[{},{}]", p.x, p.y))
        .collect();
    format!("[{}]", pts.join(","))
}

/// Static scenario names per sweep point (`Snapshot::cells` keys are
/// `&'static str`).
fn shard_cell_names(shards: usize) -> (&'static str, &'static str) {
    match shards {
        1 => ("tcp_write_s1", "tcp_knn_s1"),
        4 => ("tcp_write_s4", "tcp_knn_s4"),
        16 => ("tcp_write_s16", "tcp_knn_s16"),
        _ => unreachable!("sweep shard counts are fixed"),
    }
}

/// Asserts scatter-gather kNN over N shards is bit-identical to the
/// 1-shard index on the engine's exact embedding table — the
/// merge-correctness leg of the serve gate (exact storage; quantized
/// shards train per-shard codebooks and are equivalence-tested at the
/// recall level elsewhere).
fn verify_sharded_equivalence(engine: &Engine) {
    let table = engine.embeddings().expect("engine has a database");
    let ids: Vec<u64> = (0..table.shape().rows() as u64).collect();
    let opts = IndexOptions::default();
    let baseline = ShardedIndex::from_table_with(ids.clone(), table, Metric::L1, opts, 1);
    for &shards in &SHARD_COUNTS[1..] {
        let sharded = ShardedIndex::from_table_with(ids.clone(), table, Metric::L1, opts, shards);
        for q in (0..table.shape().rows()).step_by(7) {
            let query = table.row(q);
            let want = baseline.search(query, K, usize::MAX);
            let got = sharded.search(query, K, usize::MAX);
            let same = want.len() == got.len()
                && want
                    .iter()
                    .zip(&got)
                    .all(|(w, g)| w.0 == g.0 && w.1.to_bits() == g.1.to_bits());
            assert!(
                same,
                "sharded kNN diverged from unsharded at {shards} shards (query {q}):\n  want {want:?}\n  got  {got:?}"
            );
        }
    }
    eprintln!(
        "equivalence: sharded kNN bit-identical to unsharded at {:?} shards",
        &SHARD_COUNTS[1..]
    );
}

/// The TCP shard sweep: per shard count, a write cell then (after a
/// compact) a read cell, both through [`TCP_CLIENTS`] real socket
/// connections against a listener on a free port.
fn measure_tcp(quick: bool, label: &str) -> Snapshot {
    let (warmup, measure) = if quick {
        (Duration::from_millis(100), Duration::from_millis(400))
    } else {
        (Duration::from_millis(250), Duration::from_millis(1500))
    };
    let engine = Arc::new(engine());
    verify_sharded_equivalence(&engine);
    let hot = workload(HOT_QUERIES, 7);
    let knn_payloads: Vec<String> = hot
        .iter()
        .map(|t| format!("{{\"op\":\"knn\",\"traj\":{},\"k\":{K}}}", traj_json(t)))
        .collect();
    let write_pool = workload(WRITE_POOL, 21);
    let write_trajs: Vec<String> = write_pool.iter().map(traj_json).collect();
    let mut cells = Vec::new();

    for &shards in &SHARD_COUNTS {
        let server = Arc::new(
            Server::new(
                Arc::clone(&engine),
                ServeConfig {
                    workers: WORKERS,
                    shards: Some(shards),
                    ..ServeConfig::default()
                },
            )
            .expect("server"),
        );
        let net =
            trajcl_serve::net::listen(Arc::clone(&server), "127.0.0.1:0", WORKERS).expect("listen");
        let addr = net.local_addr().to_string();
        let clients: Vec<Mutex<Client>> = (0..TCP_CLIENTS)
            .map(|_| Mutex::new(Client::connect(&addr).expect("connect")))
            .collect();
        let (write_name, read_name) = shard_cell_names(shards);

        // Bring the write buffer to its steady-state size in-process (and
        // warm the embedding cache): the cell then measures replaces at a
        // constant buffer size, not inserts into a growing prefix.
        for j in 0..WRITE_IDS {
            server
                .upsert(WRITE_BASE + j as u64, &write_pool[j % write_pool.len()])
                .expect("prewarm upsert");
        }
        let cell = run_cell(TCP_CLIENTS, warmup, measure, |client, i| {
            let payload = format!(
                "{{\"op\":\"upsert\",\"id\":{},\"traj\":{}}}",
                WRITE_BASE + (i % WRITE_IDS) as u64,
                write_trajs[i % write_trajs.len()]
            );
            let reply = clients[client]
                .lock()
                .expect("client mutex")
                .call(&payload)
                .expect("upsert reply");
            assert!(reply.contains("\"ok\":true"), "upsert failed: {reply}");
        });
        eprintln!(
            "{write_name:<12} clients={TCP_CLIENTS:<3} {:>9.1} qps  p50 {:>8.1}us  p99 {:>8.1}us",
            cell.qps, cell.p50_us, cell.p99_us
        );
        cells.push((write_name, TCP_CLIENTS, cell));

        // Seal the buffered writes so the read cell exercises the sealed
        // scatter-gather path, not a brute-force buffer scan.
        server.compact().expect("compact");
        let cell = run_cell(TCP_CLIENTS, warmup, measure, |client, i| {
            let reply = clients[client]
                .lock()
                .expect("client mutex")
                .call(&knn_payloads[i % knn_payloads.len()])
                .expect("knn reply");
            assert!(reply.contains("\"ok\":true"), "knn failed: {reply}");
        });
        eprintln!(
            "{read_name:<12} clients={TCP_CLIENTS:<3} {:>9.1} qps  p50 {:>8.1}us  p99 {:>8.1}us",
            cell.qps, cell.p50_us, cell.p99_us
        );
        cells.push((read_name, TCP_CLIENTS, cell));

        drop(clients);
        net.shutdown();
        server.shutdown();
    }

    Snapshot {
        commit: git_commit(),
        label: label.to_string(),
        quick,
        transport: "tcp",
        shards: SHARD_COUNTS.to_vec(),
        cells,
    }
}

/// The fleet scenario: four downstream shard servers on real sockets,
/// the fault-tolerant front-end router in front, [`TCP_CLIENTS`] client
/// connections against the front-end. Measures healthy reads, then
/// tears one shard down SIGKILL-style and measures the degraded steady
/// state — every degraded response is checked for the documented
/// `"partial":true` marker with correct shard counts.
fn measure_fleet(quick: bool, label: &str) -> Snapshot {
    let (warmup, measure) = if quick {
        (Duration::from_millis(100), Duration::from_millis(400))
    } else {
        (Duration::from_millis(250), Duration::from_millis(1500))
    };

    // Four shard "processes", seeded identically (same model weights, so
    // distances agree across shards) but with EMPTY databases: rows
    // arrive through the front-end, as in production.
    let mut shards: Vec<Option<(Arc<Server>, trajcl_serve::NetServer)>> = (0..FLEET_SHARDS)
        .map(|_| {
            let server = Arc::new(
                Server::new(
                    Arc::new(engine_with(None)),
                    ServeConfig {
                        workers: WORKERS,
                        ..ServeConfig::default()
                    },
                )
                .expect("shard server"),
            );
            let net = trajcl_serve::net::listen(Arc::clone(&server), "127.0.0.1:0", WORKERS)
                .expect("shard listen");
            Some((server, net))
        })
        .collect();
    let addrs: Vec<String> = shards
        .iter()
        .map(|s| s.as_ref().expect("live shard").1.local_addr().to_string())
        .collect();

    let fleet = Arc::new(Fleet::connect(&addrs, FleetConfig::default()).expect("fleet connect"));
    let front = trajcl_serve::net::listen_with(
        Arc::clone(&fleet),
        "127.0.0.1:0",
        WORKERS,
        SessionOptions::default(),
    )
    .expect("front-end listen");
    let addr = front.local_addr().to_string();
    let clients: Vec<Mutex<Client>> = (0..TCP_CLIENTS)
        .map(|_| Mutex::new(Client::connect(&addr).expect("connect")))
        .collect();

    // Seed every row through the front-end (hash-routed to its owner
    // shard), then seal so reads hit the scatter-gather path.
    {
        let mut seeder = clients[0].lock().expect("client mutex");
        for (j, t) in workload(FLEET_DB, 0).iter().enumerate() {
            let reply = seeder
                .call(&format!(
                    "{{\"op\":\"upsert\",\"id\":{j},\"traj\":{}}}",
                    traj_json(t)
                ))
                .expect("seed upsert");
            assert!(reply.contains("\"ok\":true"), "seed failed: {reply}");
        }
        let reply = seeder.call("{\"op\":\"compact\"}").expect("compact");
        assert!(reply.contains("\"ok\":true"), "compact failed: {reply}");
    }

    let hot = workload(HOT_QUERIES, 7);
    let knn_payloads: Vec<String> = hot
        .iter()
        .map(|t| format!("{{\"op\":\"knn\",\"traj\":{},\"k\":{K}}}", traj_json(t)))
        .collect();
    let mut cells = Vec::new();

    // Healthy fleet: all four shards answer every query in full.
    let cell = run_cell(TCP_CLIENTS, warmup, measure, |client, i| {
        let reply = clients[client]
            .lock()
            .expect("client mutex")
            .call(&knn_payloads[i % knn_payloads.len()])
            .expect("knn reply");
        assert!(
            reply.contains("\"partial\":false,\"shards_ok\":4,\"shards_total\":4"),
            "expected a full answer: {reply}"
        );
    });
    eprintln!(
        "fleet_knn_4of4 clients={TCP_CLIENTS:<3} {:>9.1} qps  p50 {:>8.1}us  p99 {:>8.1}us",
        cell.qps, cell.p50_us, cell.p99_us
    );
    cells.push(("fleet_knn_4of4", TCP_CLIENTS, cell));

    // SIGKILL-equivalent teardown of shard 0 (listener gone, every
    // connection severed mid-stream, no protocol goodbye), then drive
    // the health machine to Down so the cell measures the degraded
    // steady state rather than the transition.
    let (server0, net0) = shards[0].take().expect("shard 0 alive");
    net0.shutdown();
    server0.shutdown();
    {
        let mut driver = clients[0].lock().expect("client mutex");
        let mut settled = false;
        for _ in 0..50 {
            let reply = driver.call(&knn_payloads[0]).expect("degraded knn");
            if reply.contains("\"partial\":true,\"shards_ok\":3,\"shards_total\":4") {
                settled = true;
                break;
            }
        }
        assert!(settled, "shard 0 was never marked down by the fleet");
    }
    let cell = run_cell(TCP_CLIENTS, warmup, measure, |client, i| {
        let reply = clients[client]
            .lock()
            .expect("client mutex")
            .call(&knn_payloads[i % knn_payloads.len()])
            .expect("degraded knn reply");
        assert!(
            reply.contains("\"ok\":true"),
            "degraded knn failed: {reply}"
        );
        assert!(
            reply.contains("\"partial\":true,\"shards_ok\":3,\"shards_total\":4"),
            "expected a degraded answer: {reply}"
        );
    });
    eprintln!(
        "fleet_knn_3of4 clients={TCP_CLIENTS:<3} {:>9.1} qps  p50 {:>8.1}us  p99 {:>8.1}us",
        cell.qps, cell.p50_us, cell.p99_us
    );
    cells.push(("fleet_knn_3of4", TCP_CLIENTS, cell));

    drop(clients);
    front.shutdown();
    fleet.shutdown();
    for (server, net) in shards.into_iter().flatten() {
        net.shutdown();
        server.shutdown();
    }

    Snapshot {
        commit: git_commit(),
        label: label.to_string(),
        quick,
        transport: "fleet",
        shards: vec![FLEET_SHARDS],
        cells,
    }
}

/// The durability scenario: the same in-process 8-client upsert cell
/// against a plain server and against one with a write-ahead log, so the
/// ratio isolates exactly what `--wal` adds (group-commit fsync before
/// every ack) with the encoder cache, batcher and index write path held
/// constant.
fn measure_wal(quick: bool, label: &str) -> Snapshot {
    let (warmup, measure) = if quick {
        (Duration::from_millis(100), Duration::from_millis(400))
    } else {
        (Duration::from_millis(250), Duration::from_millis(1500))
    };
    let engine = Arc::new(engine());
    let write_pool = workload(WRITE_POOL, 21);
    let wal_dir = std::env::temp_dir().join(format!("trajcl-walbench-{}", std::process::id()));
    let mut cells = Vec::new();

    for durable in [false, true] {
        let mut cfg = ServeConfig {
            workers: WORKERS,
            ..ServeConfig::default()
        };
        if durable {
            cfg.wal = Some(trajcl_serve::WalConfig::new(&wal_dir));
        }
        let server = Server::new(Arc::clone(&engine), cfg).expect("server");
        // Steady-state prewarm, as in the TCP write cells: the measured
        // loop replaces ids at a constant buffer size (and, wal-on, a
        // constant append cadence), instead of growing a prefix. Runs on
        // [`TCP_CLIENTS`] threads so the wal-on prewarm's appends group
        // into shared fsyncs, just like the measured cell.
        std::thread::scope(|scope| {
            for client in 0..TCP_CLIENTS {
                let server = &server;
                let write_pool = &write_pool;
                scope.spawn(move || {
                    for j in (client..WRITE_IDS).step_by(TCP_CLIENTS) {
                        server
                            .upsert(WRITE_BASE + j as u64, &write_pool[j % write_pool.len()])
                            .expect("prewarm upsert");
                    }
                });
            }
        });
        let cell = run_cell(TCP_CLIENTS, warmup, measure, |_, i| {
            server
                .upsert(
                    WRITE_BASE + (i % WRITE_IDS) as u64,
                    &write_pool[i % write_pool.len()],
                )
                .expect("upsert");
        });
        let name = if durable {
            "wal_on_write"
        } else {
            "wal_off_write"
        };
        let log_note = if durable {
            format!("  (log {} KiB)", server.stats().wal_log_bytes / 1024)
        } else {
            String::new()
        };
        eprintln!(
            "{name:<13} clients={TCP_CLIENTS:<3} {:>9.1} qps  p50 {:>8.1}us  p99 {:>8.1}us{log_note}",
            cell.qps, cell.p50_us, cell.p99_us
        );
        cells.push((name, TCP_CLIENTS, cell));
        server.shutdown();
    }
    let _ = std::fs::remove_dir_all(&wal_dir);

    Snapshot {
        commit: git_commit(),
        label: label.to_string(),
        quick,
        transport: "wal",
        shards: vec![1],
        cells,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = "BENCH_serve.json".to_string();
    let mut check: Option<String> = None;
    let mut label = "snapshot".to_string();
    let mut transport = "inproc".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--out" => {
                i += 1;
                out = args[i].clone();
            }
            "--transport" => {
                i += 1;
                transport = args[i].clone();
                if !["inproc", "tcp", "fleet", "wal"].contains(&transport.as_str()) {
                    eprintln!("--transport must be inproc, tcp, fleet or wal, got {transport:?}");
                    std::process::exit(2);
                }
            }
            "--check" => {
                i += 1;
                check = Some(args[i].clone());
            }
            "--label" => {
                i += 1;
                label = args[i].clone();
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let snap = match transport.as_str() {
        "tcp" => measure_tcp(quick, &label),
        "fleet" => measure_fleet(quick, &label),
        "wal" => measure_wal(quick, &label),
        _ => measure_all(quick, &label),
    };

    if transport == "wal" {
        // Both sides of the durability gate come from this run on this
        // machine (ephemeral vs. durable server, same engine, same load),
        // so the floor is absolute; `--check FILE` keeps the CLI shape of
        // the other transports and FILE is not consulted.
        let ratio = snap.wal_write_ratio().expect("both wal cells measured");
        if check.is_some() {
            eprintln!("check wal_write_qps_ratio: {ratio:.3} (floor {WAL_WRITE_FLOOR:.3})");
            if ratio < WAL_WRITE_FLOOR {
                eprintln!(
                    "FAIL: durable write throughput below {WAL_WRITE_FLOOR}x the ephemeral run"
                );
                std::process::exit(1);
            }
            eprintln!("OK: group commit keeps durable writes within budget");
        } else {
            let entry = snap.to_json();
            append_run(&out, &entry);
            eprintln!("recorded run '{}' ({}) -> {out}", snap.label, snap.commit);
        }
        return;
    }

    if transport == "fleet" {
        // Both sides of the gate come from this run: the cells already
        // hard-assert the partial markers, so the gate only has to hold
        // the degraded-throughput floor. `--check FILE` keeps the CLI
        // shape of the other transports; FILE is not consulted.
        let ratio = snap
            .fleet_degraded_ratio()
            .expect("both fleet cells measured");
        if check.is_some() {
            eprintln!(
                "check fleet_degraded_qps_ratio: {ratio:.3} (floor {FLEET_DEGRADED_FLOOR:.3})"
            );
            if ratio < FLEET_DEGRADED_FLOOR {
                eprintln!(
                    "FAIL: degraded fleet throughput below {FLEET_DEGRADED_FLOOR}x the healthy run"
                );
                std::process::exit(1);
            }
            eprintln!("OK: degraded fleet answers partially at full speed");
        } else {
            let entry = snap.to_json();
            append_run(&out, &entry);
            eprintln!("recorded run '{}' ({}) -> {out}", snap.label, snap.commit);
        }
        return;
    }

    if transport == "tcp" {
        if check.is_some() {
            // The shard gate is within-run and absolute: both sides of
            // each ratio come from this run on this machine, so there is
            // no committed baseline to drift — `--check FILE` only keeps
            // the CLI shape of the in-process gate (FILE is not read).
            // Equivalence (sharded == unsharded, bit-identical) already
            // asserted before the sweep.
            let (write_speedup, read_tail) =
                snap.shard_ratios().expect("sweep measured 1 and 4 shards");
            eprintln!(
                "check shard4_write_speedup: {write_speedup:.3} (floor {SHARD_WRITE_FLOOR:.3})"
            );
            eprintln!(
                "check shard4_read_tail_ratio: {read_tail:.3} (ceiling {SHARD_TAIL_CEILING:.3})"
            );
            let mut failed = false;
            if write_speedup < SHARD_WRITE_FLOOR {
                eprintln!(
                    "FAIL: 4-shard write throughput below {SHARD_WRITE_FLOOR}x the 1-shard run"
                );
                failed = true;
            }
            if read_tail > SHARD_TAIL_CEILING {
                eprintln!("FAIL: 4-shard read p99 regressed past the tail-noise band");
                failed = true;
            }
            if failed {
                std::process::exit(1);
            }
            eprintln!("OK: sharding holds its write/read floors");
        } else {
            let entry = snap.to_json();
            append_run(&out, &entry);
            eprintln!("recorded run '{}' ({}) -> {out}", snap.label, snap.commit);
        }
        return;
    }

    if let Some(baseline_path) = check {
        // The gate compares WITHIN-RUN ratios vs. the mutex baseline, not
        // raw qps/latency: both sides of each ratio are measured on the
        // same machine in the same run, so runner speed and scheduler
        // effects cancel and the committed baseline stays comparable
        // across machines. Gated (all vs. last committed entry, 30%):
        //   * speedup_8        — hot serve qps / mutex qps (cache+batcher)
        //   * cold_speedup_8   — cache-off serve qps / mutex qps (batcher)
        //   * cold_tail_ratio_8 — cache-off serve p99 / mutex p99 (lower
        //     is better: the batcher's tail-latency win over convoying)
        let mutex = snap.cell("mutex", 8).copied().expect("mutex@8 measured");
        let hot = snap.cell("serve", 8).copied().expect("serve@8 measured");
        let cold = snap
            .cell("serve_cold", 8)
            .copied()
            .expect("serve_cold@8 measured");
        let ratios = [
            ("speedup_8", hot.qps / mutex.qps, false),
            ("cold_speedup_8", cold.qps / mutex.qps, false),
            ("cold_tail_ratio_8", cold.p99_us / mutex.p99_us, true),
        ];
        let mut failed = false;
        let mut checked = 0usize;
        for (key, measured, lower_is_better) in ratios {
            let Some(base) = last_value(&baseline_path, key) else {
                eprintln!("no {key} baseline in {baseline_path}; skipping");
                continue;
            };
            checked += 1;
            let (bound, budget, ok) = if lower_is_better {
                let ceiling = base * (1.0 + TAIL_REGRESSION);
                (ceiling, TAIL_REGRESSION, measured <= ceiling)
            } else {
                let floor = base * (1.0 - MAX_REGRESSION);
                (floor, MAX_REGRESSION, measured >= floor)
            };
            eprintln!(
                "check {key}: {measured:.3} vs baseline {base:.3} ({} {bound:.3})",
                if lower_is_better { "ceiling" } else { "floor" }
            );
            if !ok {
                eprintln!("FAIL: {key} regressed more than {:.0}%", budget * 100.0);
                failed = true;
            }
        }
        if checked == 0 {
            eprintln!("no usable baseline found in {baseline_path}");
            std::process::exit(2);
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("OK: within the regression budget");
    } else {
        let entry = snap.to_json();
        append_run(&out, &entry);
        eprintln!("recorded run '{}' ({}) -> {out}", snap.label, snap.commit);
    }
}
