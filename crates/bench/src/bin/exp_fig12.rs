//! Fig. 12 — impact of the negative-sample queue size |Q_neg|, mean rank
//! under the three standard settings.
//!
//! Expected shape (paper): larger queues help (more uniform embedding
//! space) with diminishing returns; training cost grows mildly.

use trajcl_bench::harness::{eval_three_settings, train_trajcl_only};
use trajcl_bench::{ExperimentEnv, Scale, Table};
use trajcl_core::{EncoderVariant, TrajClConfig};
use trajcl_data::DatasetProfile;

fn main() {
    let scale = Scale::from_args();
    let queues = [64usize, 128, 256, 512, 1024];
    let mut table = Table::new(
        "Fig. 12 — mean rank vs negative queue size |Q_neg| (Porto)",
        &["|D|=full", "ρs=0.2", "ρd=0.2", "train time (s)"],
    );
    let env = ExperimentEnv::new(DatasetProfile::porto(), &scale, 32, 200, 46);
    let base = env.protocol();
    for &q in &queues {
        let mut cfg = TrajClConfig::scaled_default();
        cfg.dim = 32;
        cfg.queue_size = q;
        cfg.max_epochs = 2;
        eprintln!("training |Q_neg|={q}...");
        let (moco, secs) = train_trajcl_only(&env, &cfg, EncoderVariant::Dual, 47);
        let ranks = eval_three_settings(&moco, &env.featurizer, &base, 48);
        table.row(
            format!("|Qneg|={q}"),
            vec![
                format!("{:.3}", ranks[0]),
                format!("{:.3}", ranks[1]),
                format!("{:.3}", ranks[2]),
                trajcl_bench::fmt_secs(secs),
            ],
        );
    }
    table.print();
    table.save_json("fig12");
    println!("paper shape check: bigger queues help with diminishing returns.");
}
