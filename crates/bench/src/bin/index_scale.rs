//! Million-scale kNN benchmark: exact brute force vs IVF vs IVF+SQ8 vs
//! IVF+PQ over synthetic embedding tables, recorded commit-tagged into
//! `BENCH_index.json` — the index counterpart of `perf_snapshot` /
//! `load_gen`.
//!
//! The table is a Gaussian-mixture synthetic (clustered, like real
//! trajectory embeddings) of `--n` rows × `--dim` dimensions; queries are
//! perturbed database rows. Six contenders answer the same k=10 batch:
//!
//! * `exact` — `brute_force_batch_knn` over the f32 table (ground truth);
//! * `ivf` — f32-storage `IvfIndex`, `nprobe` of `nlist` cells;
//! * `sq8` — SQ8-quantized `IvfIndex` (1 byte/dim), asymmetric scan plus
//!   exact rescoring of the top `rescore_factor · k` candidates against
//!   the f32 table (the engine's serving configuration);
//! * `sym` — the same SQ8 storage under `ScanMode::Symmetric`: the query
//!   is quantized too and lists are scanned with the runtime-dispatched
//!   integer SAD/SSD kernels (AVX-512/AVX2/scalar), same exact rescore;
//! * `pq` — PQ-quantized `IvfIndex` (`d/4` subspaces ⇒ a quarter byte
//!   per dimension), ADC lookup-table scan plus exact rescoring with a
//!   deep (64×) over-fetch;
//! * `pq4` — packed 4-bit PQ (`d/4` subspaces, two codes per byte ⇒ an
//!   eighth of a byte per dimension, 16-entry LUTs), deeper (128×)
//!   over-fetch to claim the coarser codes' recall back.
//!
//! Every JSON record also captures the dispatch decision (`cpu`) and
//! whether `TRAJCL_FORCE_SCALAR` pinned the portable kernels, so rows
//! from different machines stay comparable.
//!
//! Usage:
//!   index_scale [--quick] [--n N] [--dim D] [--label NAME]
//!               [--out BENCH_index.json] [--check]
//!
//! * default: measure and append a run entry to `--out`;
//! * `--check`: measure and gate on ABSOLUTE floors — recall@10 ≥ 0.95
//!   for IVF and IVF+SQ8 and ≥ 0.90 for symmetric SQ8, IVF+PQ and pq4
//!   (all rescored), SQ8 memory ≤ 32%, PQ memory ≤ 10% and pq4 memory
//!   ≤ 6% of the f32 index, quantized-vs-exact qps ratio ≥ 2× (quick) /
//!   4× (full) for SQ8 and ≥ 1× for PQ, and symmetric-vs-asymmetric SQ8
//!   qps ratio ≥ 1.0× (quick) / 1.5× (full). Absolute rather than
//!   baseline-relative because the ratios depend on the run's own
//!   `n`/`nlist` geometry, which both sides of each ratio share.
//!   Nothing is written.
//!
//! Scales to 1M rows (`--n 1000000`); the committed baseline entry is a
//! 100k full run.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trajcl_bench::snapfile::{append_run, git_commit};
use trajcl_index::kernels::dispatch;
use trajcl_index::{brute_force_batch_knn, IvfIndex, Metric, Quantization, ScanMode};
use trajcl_tensor::{Shape, Tensor};

const K: usize = 10;
const CLUSTERS: usize = 64;
/// Floors for `--check` (quick, full).
const MIN_RECALL: f64 = 0.95;
const MIN_SQ8_SPEEDUP_QUICK: f64 = 2.0;
const MIN_SQ8_SPEEDUP_FULL: f64 = 4.0;
const MAX_MEM_RATIO: f64 = 0.32;
/// PQ floors: coarser codes pay a small recall tax (claimed back by the
/// deeper rescore), must stay under a tenth of the f32 footprint, and
/// must at least match exact brute force on speed.
const MIN_PQ_RECALL: f64 = 0.90;
const MIN_PQ_SPEEDUP: f64 = 1.0;
const MAX_PQ_MEM_RATIO: f64 = 0.10;
/// Symmetric-SQ8 floors: the integer scan must beat the asymmetric
/// decode-and-subtract scan end-to-end (quick runs scan so few rows per
/// query that fixed per-query costs flatten the ratio), and the uniform
/// codebook's coarser per-dimension scale pays a small recall tax that
/// the exact rescore claims back down to the PQ floor.
const MIN_SYM_SPEEDUP_QUICK: f64 = 1.0;
const MIN_SYM_SPEEDUP_FULL: f64 = 1.5;
/// Packed 4-bit PQ: half a PQ byte per code pair and a 128× over-fetch
/// (16-entry codebooks rank within-cluster neighbours coarsely; the
/// rescore is what holds recall@10 at the floor).
const MAX_PQ4_MEM_RATIO: f64 = 0.06;
const PQ4_RESCORE_FACTOR: usize = 128;
/// PQ geometry: 4 dims per subspace (m = d/4), 8-bit codes, and a 64×
/// rescore over-fetch. PQ codes are coarse enough that within-cluster
/// ADC order is noisy; at 100k a cluster holds ~1.5k rows, so recall
/// needs both the finer subspaces AND a few hundred exact re-ranks per
/// query — which stay cheap next to the scan.
const PQ_DIMS_PER_SUBSPACE: usize = 4;
const PQ_RESCORE_FACTOR: usize = 64;

/// Clustered synthetic table: `n` rows scattered around `CLUSTERS`
/// Gaussian centers (IVF behaves like it does on real embeddings, not on
/// uniform noise).
fn mixture_table(n: usize, d: usize, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers = Tensor::randn(Shape::d2(CLUSTERS, d), 0.0, 1.0, &mut rng);
    let noise = Tensor::randn(Shape::d2(n, d), 0.0, 0.25, &mut rng);
    let mut data = noise.data().to_vec();
    for i in 0..n {
        let c = centers.row(rng.gen_range(0..CLUSTERS));
        for j in 0..d {
            data[i * d + j] += c[j];
        }
    }
    Tensor::from_vec(data, Shape::d2(n, d))
}

/// Queries: perturbed copies of evenly-spaced database rows.
fn queries_from(table: &Tensor, q: usize, seed: u64) -> Tensor {
    let n = table.shape().rows();
    let d = table.shape().last();
    let noise = Tensor::randn(Shape::d2(q, d), 0.0, 0.05, &mut StdRng::seed_from_u64(seed));
    let mut data = noise.data().to_vec();
    for i in 0..q {
        let row = table.row((i * (n / q).max(1)) % n);
        for j in 0..d {
            data[i * d + j] += row[j];
        }
    }
    Tensor::from_vec(data, Shape::d2(q, d))
}

/// Mean recall@k of `got` against the exact ground truth.
fn recall_at_k(got: &[Vec<(u32, f64)>], truth: &[Vec<(u32, f64)>], k: usize) -> f64 {
    let mut sum = 0.0;
    for (g, t) in got.iter().zip(truth) {
        let t_ids: Vec<u32> = t.iter().map(|(id, _)| *id).collect();
        let hits = g.iter().filter(|(id, _)| t_ids.contains(id)).count();
        sum += hits as f64 / k.min(t.len()).max(1) as f64;
    }
    sum / got.len().max(1) as f64
}

/// Times `f` (one warmup call, one measured call), returning
/// `(result, qps over `q` queries)`.
fn timed<T>(q: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    std::hint::black_box(f());
    let t0 = Instant::now();
    let out = f();
    (out, q as f64 / t0.elapsed().as_secs_f64())
}

struct Run {
    n: usize,
    d: usize,
    nlist: usize,
    nprobe: usize,
    exact_qps: f64,
    ivf_qps: f64,
    ivf_recall: f64,
    sq8_qps: f64,
    sq8_recall: f64,
    sym_qps: f64,
    sym_recall: f64,
    pq_m: usize,
    pq_qps: f64,
    pq_recall: f64,
    pq4_qps: f64,
    pq4_recall: f64,
    f32_bytes: usize,
    sq8_bytes: usize,
    pq_bytes: usize,
    pq4_bytes: usize,
}

impl Run {
    fn speedup_ivf(&self) -> f64 {
        self.ivf_qps / self.exact_qps
    }

    fn speedup_sq8(&self) -> f64 {
        self.sq8_qps / self.exact_qps
    }

    fn speedup_pq(&self) -> f64 {
        self.pq_qps / self.exact_qps
    }

    /// Symmetric-vs-asymmetric SQ8 qps — same storage, same rescore,
    /// only the scan kernel differs, so this isolates the kernel win.
    fn speedup_sym_vs_asym(&self) -> f64 {
        self.sym_qps / self.sq8_qps
    }

    fn mem_ratio(&self) -> f64 {
        self.sq8_bytes as f64 / self.f32_bytes as f64
    }

    fn pq_mem_ratio(&self) -> f64 {
        self.pq_bytes as f64 / self.f32_bytes as f64
    }

    fn pq4_mem_ratio(&self) -> f64 {
        self.pq4_bytes as f64 / self.f32_bytes as f64
    }

    fn to_json(&self, label: &str, quick: bool) -> String {
        format!(
            "{{\"commit\":\"{}\",\"label\":\"{label}\",\"quick\":{quick},\"cpu\":\"{}\",\"force_scalar\":{},\
\"n\":{},\"d\":{},\"nlist\":{},\"nprobe\":{},\"k\":{K},\
\"exact_qps\":{:.1},\"ivf_qps\":{:.1},\"sq8_qps\":{:.1},\"sym_qps\":{:.1},\"pq_qps\":{:.1},\"pq4_qps\":{:.1},\
\"ivf_recall10\":{:.4},\"sq8_recall10\":{:.4},\"sym_recall10\":{:.4},\"pq_recall10\":{:.4},\"pq4_recall10\":{:.4},\"pq_m\":{},\
\"f32_index_bytes\":{},\"sq8_index_bytes\":{},\"pq_index_bytes\":{},\"pq4_index_bytes\":{},\"table_bytes\":{},\
\"speedup_ivf\":{:.2},\"speedup_sq8\":{:.2},\"speedup_sym_vs_asym\":{:.2},\"speedup_pq\":{:.2},\
\"mem_ratio\":{:.3},\"pq_mem_ratio\":{:.3},\"pq4_mem_ratio\":{:.3}}}",
            git_commit(),
            dispatch::description(),
            dispatch::forced_scalar(),
            self.n,
            self.d,
            self.nlist,
            self.nprobe,
            self.exact_qps,
            self.ivf_qps,
            self.sq8_qps,
            self.sym_qps,
            self.pq_qps,
            self.pq4_qps,
            self.ivf_recall,
            self.sq8_recall,
            self.sym_recall,
            self.pq_recall,
            self.pq4_recall,
            self.pq_m,
            self.f32_bytes,
            self.sq8_bytes,
            self.pq_bytes,
            self.pq4_bytes,
            self.n * self.d * 4,
            self.speedup_ivf(),
            self.speedup_sq8(),
            self.speedup_sym_vs_asym(),
            self.speedup_pq(),
            self.mem_ratio(),
            self.pq_mem_ratio(),
            self.pq4_mem_ratio(),
        )
    }
}

fn measure(n: usize, d: usize, nlist: usize, nprobe: usize, nq: usize) -> Run {
    eprintln!("building {n} x {d} mixture table ({nlist} cells, nprobe {nprobe}, {nq} queries)");
    let table = mixture_table(n, d, 42);
    let queries = queries_from(&table, nq, 43);

    let (truth, exact_qps) = timed(nq, || {
        brute_force_batch_knn(&table, &queries, K, Metric::L1)
    });
    eprintln!("exact    {exact_qps:>9.1} qps  (ground truth)");

    let t0 = Instant::now();
    let ivf = IvfIndex::build(&table, nlist, Metric::L1, &mut StdRng::seed_from_u64(7));
    let ivf_build_s = t0.elapsed().as_secs_f64();
    let (ivf_hits, ivf_qps) = timed(nq, || ivf.batch_search(&queries, K, nprobe));
    let ivf_recall = recall_at_k(&ivf_hits, &truth, K);
    eprintln!(
        "ivf      {ivf_qps:>9.1} qps  recall@10 {ivf_recall:.4}  ({:.1} MB, built in {ivf_build_s:.1}s)",
        ivf.memory_bytes() as f64 / 1e6
    );

    let t0 = Instant::now();
    let sq8 = IvfIndex::build_with(
        &table,
        nlist,
        Metric::L1,
        Quantization::Sq8,
        4,
        &mut StdRng::seed_from_u64(7),
    );
    let sq8_build_s = t0.elapsed().as_secs_f64();
    let (sq8_hits, sq8_qps) = timed(nq, || {
        sq8.batch_search_rescored(&queries, K, nprobe, Some(&table))
    });
    let sq8_recall = recall_at_k(&sq8_hits, &truth, K);
    eprintln!(
        "ivf+sq8  {sq8_qps:>9.1} qps  recall@10 {sq8_recall:.4}  ({:.1} MB, built in {sq8_build_s:.1}s)",
        sq8.memory_bytes() as f64 / 1e6
    );

    let t0 = Instant::now();
    let sym = IvfIndex::build_with_scan(
        &table,
        nlist,
        Metric::L1,
        Quantization::Sq8,
        4,
        ScanMode::Symmetric,
        &mut StdRng::seed_from_u64(7),
    );
    let sym_build_s = t0.elapsed().as_secs_f64();
    let (sym_hits, sym_qps) = timed(nq, || {
        sym.batch_search_rescored(&queries, K, nprobe, Some(&table))
    });
    let sym_recall = recall_at_k(&sym_hits, &truth, K);
    eprintln!(
        "ivf+sym  {sym_qps:>9.1} qps  recall@10 {sym_recall:.4}  ({:.1} MB, built in {sym_build_s:.1}s, {} kernels)",
        sym.memory_bytes() as f64 / 1e6,
        dispatch::description()
    );

    let pq_m = (d / PQ_DIMS_PER_SUBSPACE).max(1);
    let t0 = Instant::now();
    let pq = IvfIndex::build_with(
        &table,
        nlist,
        Metric::L1,
        Quantization::Pq { m: pq_m, nbits: 8 },
        PQ_RESCORE_FACTOR,
        &mut StdRng::seed_from_u64(7),
    );
    let pq_build_s = t0.elapsed().as_secs_f64();
    let (pq_hits, pq_qps) = timed(nq, || {
        pq.batch_search_rescored(&queries, K, nprobe, Some(&table))
    });
    let pq_recall = recall_at_k(&pq_hits, &truth, K);
    eprintln!(
        "ivf+pq   {pq_qps:>9.1} qps  recall@10 {pq_recall:.4}  ({:.1} MB, m={pq_m}, built in {pq_build_s:.1}s)",
        pq.memory_bytes() as f64 / 1e6
    );

    let t0 = Instant::now();
    let pq4 = IvfIndex::build_with(
        &table,
        nlist,
        Metric::L1,
        Quantization::Pq { m: pq_m, nbits: 4 },
        PQ4_RESCORE_FACTOR,
        &mut StdRng::seed_from_u64(7),
    );
    let pq4_build_s = t0.elapsed().as_secs_f64();
    let (pq4_hits, pq4_qps) = timed(nq, || {
        pq4.batch_search_rescored(&queries, K, nprobe, Some(&table))
    });
    let pq4_recall = recall_at_k(&pq4_hits, &truth, K);
    eprintln!(
        "ivf+pq4  {pq4_qps:>9.1} qps  recall@10 {pq4_recall:.4}  ({:.1} MB, m={pq_m} packed, built in {pq4_build_s:.1}s)",
        pq4.memory_bytes() as f64 / 1e6
    );

    Run {
        n,
        d,
        nlist,
        nprobe,
        exact_qps,
        ivf_qps,
        ivf_recall,
        sq8_qps,
        sq8_recall,
        sym_qps,
        sym_recall,
        pq_m,
        pq_qps,
        pq_recall,
        pq4_qps,
        pq4_recall,
        f32_bytes: ivf.memory_bytes(),
        sq8_bytes: sq8.memory_bytes(),
        pq_bytes: pq.memory_bytes(),
        pq4_bytes: pq4.memory_bytes(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut check = false;
    let mut n: Option<usize> = None;
    let mut d: Option<usize> = None;
    let mut out = "BENCH_index.json".to_string();
    let mut label = "snapshot".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--check" => check = true,
            "--n" => {
                i += 1;
                n = Some(args[i].parse().expect("--n N"));
            }
            "--dim" => {
                i += 1;
                d = Some(args[i].parse().expect("--dim D"));
            }
            "--out" => {
                i += 1;
                out = args[i].clone();
            }
            "--label" => {
                i += 1;
                label = args[i].clone();
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let (n, d, nlist, nprobe, nq) = if quick {
        // Quick mode keeps the full run's d=64 geometry so the PQ memory
        // ceiling (codebook cost amortizes over dimensions) and recall
        // floors gate the same configuration CI ships.
        (n.unwrap_or(20_000), d.unwrap_or(64), 128, 8, 64)
    } else {
        let n = n.unwrap_or(100_000);
        // nlist ~ sqrt(n), power-of-two-ish, with enough cells that
        // nprobe/nlist stays a small probed fraction at any scale.
        let nlist = ((n as f64).sqrt() as usize).next_power_of_two().max(64);
        (n, d.unwrap_or(64), nlist, 16, 200)
    };
    let run = measure(n, d, nlist, nprobe, nq);

    if check {
        let min_speedup = if quick {
            MIN_SQ8_SPEEDUP_QUICK
        } else {
            MIN_SQ8_SPEEDUP_FULL
        };
        let min_sym_speedup = if quick {
            MIN_SYM_SPEEDUP_QUICK
        } else {
            MIN_SYM_SPEEDUP_FULL
        };
        let gates = [
            ("ivf_recall10", run.ivf_recall, MIN_RECALL, true),
            ("sq8_recall10", run.sq8_recall, MIN_RECALL, true),
            ("sym_recall10", run.sym_recall, MIN_PQ_RECALL, true),
            ("pq_recall10", run.pq_recall, MIN_PQ_RECALL, true),
            ("pq4_recall10", run.pq4_recall, MIN_PQ_RECALL, true),
            ("speedup_sq8", run.speedup_sq8(), min_speedup, true),
            (
                "speedup_sym_vs_asym",
                run.speedup_sym_vs_asym(),
                min_sym_speedup,
                true,
            ),
            ("speedup_pq", run.speedup_pq(), MIN_PQ_SPEEDUP, true),
            ("mem_ratio", run.mem_ratio(), MAX_MEM_RATIO, false),
            ("pq_mem_ratio", run.pq_mem_ratio(), MAX_PQ_MEM_RATIO, false),
            (
                "pq4_mem_ratio",
                run.pq4_mem_ratio(),
                MAX_PQ4_MEM_RATIO,
                false,
            ),
        ];
        let mut failed = false;
        for (key, measured, bound, at_least) in gates {
            let ok = if at_least {
                measured >= bound
            } else {
                measured <= bound
            };
            eprintln!(
                "check {key}: {measured:.3} ({} {bound:.3}) {}",
                if at_least { "floor" } else { "ceiling" },
                if ok { "ok" } else { "FAIL" }
            );
            failed |= !ok;
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("OK: index-scale gates passed");
    } else {
        append_run(&out, &run.to_json(&label, quick));
        eprintln!("recorded run '{label}' -> {out}");
    }
}
