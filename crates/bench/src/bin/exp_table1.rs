//! Table I — per-pair trajectory similarity computation time (µs).
//!
//! Reproduces the intro's headline: Hausdorff (pairwise point math) vs
//! t2vec (recurrent encode + L1) vs TrajCL (parallel attention encode +
//! L1), amortised over a query×database workload exactly as the paper's
//! numbers are. Expected shape: Hausdorff ≫ t2vec > TrajCL.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Paper workload constants for amortisation (1k queries x 100k database).
const PAPER_PAIRS: f64 = 1e8;
const PAPER_ENCODES: f64 = 101_000.0;
use trajcl_bench::{train_all, ExperimentEnv, Scale, Table};
use trajcl_core::{l1_distances, TrajClConfig};
use trajcl_data::DatasetProfile;
use trajcl_measures::{pairwise_distances, HeuristicMeasure};

fn main() {
    let scale = Scale::from_args();
    let mut cfg = TrajClConfig::scaled_default();
    cfg.dim = 32;
    cfg.max_epochs = 2;
    let env = ExperimentEnv::new(DatasetProfile::porto(), &scale, cfg.dim, cfg.max_len, 1);
    eprintln!(
        "training models (train={}, db={})...",
        scale.train_size, scale.db_size
    );
    let models = train_all(&env, &cfg, 1);
    let proto = env.protocol();
    let n_pairs = (proto.queries.len() * proto.database.len()) as f64;
    let mut rng = StdRng::seed_from_u64(2);

    // Hausdorff: full pairwise evaluation.
    let t0 = Instant::now();
    let _ = pairwise_distances(&proto.queries, &proto.database, HeuristicMeasure::Hausdorff);
    let hausdorff_us = t0.elapsed().as_micros() as f64 / n_pairs;

    let n_encodes = (proto.queries.len() + proto.database.len()) as f64;

    // Learned methods: measure encode and compare phases separately, then
    // amortise at the paper's pairs-per-encode ratio (10^8 pairs for 101k
    // encodes) — the quantity the paper's Table I reports.
    let amortised = |q: trajcl_tensor::Tensor, d: trajcl_tensor::Tensor, encode_secs: f64| -> f64 {
        let t0 = Instant::now();
        let _ = l1_distances(&q, &d);
        let compare_secs = t0.elapsed().as_secs_f64();
        let per_encode = encode_secs / n_encodes;
        let per_pair = compare_secs / n_pairs;
        (per_encode * PAPER_ENCODES + per_pair * PAPER_PAIRS) / PAPER_PAIRS * 1e6
    };

    let t0 = Instant::now();
    let q = models.embed("t2vec", &proto.queries, &mut rng);
    let d = models.embed("t2vec", &proto.database, &mut rng);
    let t2vec_encode = t0.elapsed().as_secs_f64();
    let t2vec_us = amortised(q, d, t2vec_encode);

    let t0 = Instant::now();
    let q = models.embed_trajcl(&env.featurizer, &proto.queries);
    let d = models.embed_trajcl(&env.featurizer, &proto.database);
    let trajcl_encode = t0.elapsed().as_secs_f64();
    let trajcl_us = amortised(q, d, trajcl_encode);

    let mut table = Table::new(
        "Table I — similarity computation time (µs/pair, amortised at the paper's 1k x 100k workload)",
        &["Hausdorff", "t2vec", "TrajCL"],
    );
    table.row_f64("Time (µs)", &[hausdorff_us, t2vec_us, trajcl_us]);
    table.print();
    table.save_json("table1");
    println!(
        "paper shape check: Hausdorff/t2vec = {:.1}x (paper 19.5x), t2vec/TrajCL = {:.1}x (paper 2.4x)",
        hausdorff_us / t2vec_us,
        t2vec_us / trajcl_us
    );
}
