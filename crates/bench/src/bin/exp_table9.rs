//! Table IX — index building costs (time and memory) for the embedding IVF
//! index vs the segment-based Hausdorff index, across database sizes.
//!
//! Expected shape (paper): the TrajCL/IVF index takes somewhat longer to
//! build (embedding conversion dominates) but needs an order of magnitude
//! less memory; the segment index's memory blows up with |D| (DFT OOMs at
//! 10 M in the paper).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use trajcl_bench::{train_all, ExperimentEnv, Scale, Table};
use trajcl_core::TrajClConfig;
use trajcl_data::{distort, DatasetProfile};
use trajcl_geo::Trajectory;
use trajcl_index::{IvfIndex, Metric, SegmentHausdorffIndex};

fn main() {
    let scale = Scale::from_args();
    let mut cfg = TrajClConfig::scaled_default();
    cfg.dim = 32;
    cfg.max_epochs = 2;
    // Xi'an: largest #points per trajectory, like the paper's setup.
    let profile = DatasetProfile::xian();
    let env = ExperimentEnv::new(profile, &scale, cfg.dim, cfg.max_len, 17);
    eprintln!("[{}] training TrajCL...", profile.name());
    let models = train_all(&env, &cfg, 17);
    let mut rng = StdRng::seed_from_u64(18);

    // Databases of growing size built by distorting test trajectories
    // (ρd = 0.2), mirroring §V-E.
    let base = &env.splits.test;
    let sizes = [base.len() / 4, base.len() / 2, base.len()];
    let mut table = Table::new(
        "Table IX — index building costs (Xi'an profile, ρd=0.2)",
        &["|D|", "build time (s)", "RAM (MB)"],
    );
    for &n in &sizes {
        let mut drng = StdRng::seed_from_u64(19);
        let db: Vec<Trajectory> = base[..n]
            .iter()
            .map(|t| distort(t, 0.2, 100.0, 0.5, &mut drng))
            .collect();

        // Segment (DFT-substitute) index.
        let t0 = Instant::now();
        let seg = SegmentHausdorffIndex::build(&db);
        let seg_time = t0.elapsed().as_secs_f64();
        table.row(
            format!("Hausdorff/segment |D|={n}"),
            vec![
                n.to_string(),
                trajcl_bench::fmt_secs(seg_time),
                trajcl_bench::fmt_mb(seg.memory_bytes()),
            ],
        );

        // TrajCL/IVF index: embedding conversion + k-means lists.
        let t0 = Instant::now();
        let emb = models.embed_trajcl(&env.featurizer, &db);
        let ivf = IvfIndex::build(&emb, (n / 32).max(4), Metric::L1, &mut rng);
        let ivf_time = t0.elapsed().as_secs_f64();
        table.row(
            format!("TrajCL/IVF |D|={n}"),
            vec![
                n.to_string(),
                trajcl_bench::fmt_secs(ivf_time),
                trajcl_bench::fmt_mb(ivf.memory_bytes()),
            ],
        );
    }
    table.print();
    table.save_json("table9");
    println!(
        "paper shape check: IVF build slower (embedding conversion) but RAM ~10x smaller; segment RAM grows fastest."
    );
}
