//! Table IV — mean rank vs down-sampling rate ρs ∈ [0.1, 0.5].
//!
//! Both queries and database are randomly down-sampled; expected shape:
//! every method degrades with ρs, TrajCL degrades least (point masking in
//! training makes it sampling-robust), EDR degrades worst.

use rand::rngs::StdRng;
use rand::SeedableRng;
use trajcl_bench::{
    heuristic_set, mean_rank_heuristic, train_all, ExperimentEnv, Scale, Table, LEARNED_METHODS,
};
use trajcl_core::TrajClConfig;
use trajcl_data::{downsample, DatasetProfile};

fn main() {
    let scale = Scale::from_args();
    let rates = [0.1, 0.2, 0.3, 0.4, 0.5];
    let mut cfg = TrajClConfig::scaled_default();
    cfg.dim = 32;
    cfg.max_epochs = 3;
    let profile = DatasetProfile::porto();
    let env = ExperimentEnv::new(profile, &scale, cfg.dim, cfg.max_len, 5);
    eprintln!("[{}] training models...", profile.name());
    let models = train_all(&env, &cfg, 5);
    let base = env.protocol();

    let headers: Vec<String> = rates.iter().map(|r| format!("ρs={r}")).collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        format!(
            "Table IV — mean rank vs down-sampling rate ({})",
            profile.name()
        ),
        &header_refs,
    );

    // Degrade once per rate and evaluate all methods on the same protocol.
    let mut degrade_rng = StdRng::seed_from_u64(6);
    let degraded: Vec<_> = rates
        .iter()
        .map(|&r| base.degrade(|t| downsample(t, r, &mut degrade_rng)))
        .collect();

    for measure in heuristic_set(profile) {
        let ranks: Vec<f64> = degraded
            .iter()
            .map(|p| mean_rank_heuristic(measure, p))
            .collect();
        table.row_f64(measure.name(), &ranks);
    }
    let mut rng = StdRng::seed_from_u64(7);
    for name in LEARNED_METHODS {
        if name == "CSTRM" && models.cstrm.is_none() {
            table.row(name, vec!["-".into(); rates.len()]);
            continue;
        }
        let ranks: Vec<f64> = degraded
            .iter()
            .map(|p| models.mean_rank_learned(name, &env.featurizer, p, &mut rng))
            .collect();
        table.row_f64(name, &ranks);
    }
    table.print();
    table.save_json("table4");
    println!("paper shape check: ranks grow with ρs; TrajCL grows slowest.");
}
