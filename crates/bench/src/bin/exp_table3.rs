//! Table III — mean rank of the ground-truth most-similar trajectory vs
//! database size, for every heuristic and learned method on every dataset
//! profile.
//!
//! Expected shape (paper): TrajCL ≈ 1 and flat in |D|; learned baselines
//! degrade with |D|; heuristics worse still (EDR worst by far).
//!
//! Runs one profile by default (`--profiles all` for all four).

use rand::rngs::StdRng;
use rand::SeedableRng;
use trajcl_bench::harness::heuristic_rank_sweep;
use trajcl_bench::{heuristic_set, train_all, ExperimentEnv, Scale, Table, LEARNED_METHODS};
use trajcl_core::TrajClConfig;
use trajcl_data::DatasetProfile;

fn main() {
    let scale = Scale::from_args();
    let all = std::env::args().any(|a| a == "all");
    let profiles: Vec<DatasetProfile> = if all {
        DatasetProfile::all().to_vec()
    } else {
        vec![DatasetProfile::porto()]
    };
    let mut cfg = TrajClConfig::scaled_default();
    cfg.dim = 32;
    cfg.max_epochs = 3;

    for profile in profiles {
        let env = ExperimentEnv::new(profile, &scale, cfg.dim, cfg.max_len, 3);
        eprintln!("[{}] training models...", profile.name());
        let models = train_all(&env, &cfg, 3);
        let full = env.protocol();
        let sizes: Vec<usize> = (1..=5)
            .map(|i| (full.database.len() * i / 5).max(full.queries.len()))
            .collect();
        let headers: Vec<String> = sizes.iter().map(|s| format!("|D|={s}")).collect();
        let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut table = Table::new(
            format!(
                "Table III — mean rank vs database size ({})",
                profile.name()
            ),
            &header_refs,
        );

        for measure in heuristic_set(profile) {
            let ranks = heuristic_rank_sweep(measure, &full, &sizes);
            table.row_f64(measure.name(), &ranks);
        }
        let mut rng = StdRng::seed_from_u64(4);
        for name in LEARNED_METHODS {
            if name == "CSTRM" && models.cstrm.is_none() {
                table.row(name, vec!["-".into(); sizes.len()]);
                continue;
            }
            let ranks = models.learned_rank_sweep(name, &env.featurizer, &full, &sizes, &mut rng);
            table.row_f64(name, &ranks);
        }
        table.print();
        table.save_json(&format!("table3_{}", profile.name().to_lowercase()));
    }
    println!("paper shape check: TrajCL rows should stay near 1.0 and be the smallest per column.");
}
