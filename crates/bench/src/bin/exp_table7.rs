//! Table VII — training time of the learning-based measures (seconds).
//!
//! Expected shape: TrjSR slowest (13-layer CNN in the paper, conv stack
//! here); CSTRM fastest-or-close (vanilla MSM); TrajCL comparable to CSTRM
//! and much faster than TrjSR; everything faster on Germany (smaller
//! training set).

use trajcl_bench::{train_all, ExperimentEnv, Scale, Table};
use trajcl_core::TrajClConfig;
use trajcl_data::DatasetProfile;

fn main() {
    let mut scale = Scale::from_args();
    // Training time is the artifact; shrink the untimed parts.
    scale.db_size = scale.db_size.min(100);
    scale.n_queries = scale.n_queries.min(10);
    let mut cfg = TrajClConfig::scaled_default();
    cfg.dim = 32;
    cfg.max_epochs = 3;

    let mut table = Table::new(
        "Table VII — training time of learning-based measures (seconds)",
        &["Porto", "Chengdu", "Xi'an", "Germany"],
    );
    let mut rows: Vec<(&str, Vec<String>)> = vec![
        ("t2vec", Vec::new()),
        ("TrjSR", Vec::new()),
        ("E2DTC", Vec::new()),
        ("CSTRM", Vec::new()),
        ("TrajCL", Vec::new()),
    ];
    for profile in DatasetProfile::all() {
        // Germany trains on fewer trajectories, like the paper (30k vs 200k).
        let mut s = scale.clone();
        if profile == DatasetProfile::Germany {
            s.train_size = (s.train_size * 3 / 10).max(20);
        }
        let env = ExperimentEnv::new(profile, &s, cfg.dim, cfg.max_len, 14);
        eprintln!(
            "[{}] training all models (train={})...",
            profile.name(),
            s.train_size
        );
        let models = train_all(&env, &cfg, 14);
        for (name, cells) in rows.iter_mut() {
            let cell = models
                .train_seconds
                .get(name)
                .map(|s| trajcl_bench::fmt_secs(*s))
                .unwrap_or_else(|| "-".into());
            cells.push(cell);
        }
    }
    for (name, cells) in rows {
        table.row(name, cells);
    }
    table.print();
    table.save_json("table7");
    println!("paper shape check: TrjSR slowest; TrajCL near CSTRM; Germany column smallest.");
}
