//! Fig. 7 — ablation study: TrajCL vs TrajCL-MSM (vanilla attention,
//! structural only) vs TrajCL-concat (vanilla attention on concatenated
//! features), with and without fine-tuning.
//!
//! Expected shape (paper): TrajCL best on mean rank; TrajCL-concat worst
//! (naive concatenation confuses the feature space); with fine-tuning
//! TrajCL still leads HR@5 except near-ties on EDwP.

use rand::rngs::StdRng;
use rand::SeedableRng;
use trajcl_bench::harness::{eval_three_settings, train_trajcl_only};
use trajcl_bench::{ExperimentEnv, Scale, Table};
use trajcl_core::{
    finetune, l1_distances, EncoderVariant, FinetuneConfig, FinetuneScope, TrajClConfig,
};
use trajcl_data::{hit_ratio, DatasetProfile};
use trajcl_measures::{pairwise_distances, HeuristicMeasure};

fn main() {
    let scale = Scale::from_args();
    let mut cfg = TrajClConfig::scaled_default();
    cfg.dim = 32;
    cfg.max_epochs = 3;
    let profile = DatasetProfile::porto();
    let env = ExperimentEnv::new(profile, &scale, cfg.dim, cfg.max_len, 30);
    let base = env.protocol();

    let variants = [
        EncoderVariant::VanillaMsm,
        EncoderVariant::Concat,
        EncoderVariant::Dual,
    ];
    let mut no_ft = Table::new(
        "Fig. 7a — ablation, no fine-tuning (mean rank, Porto)",
        &["|D|=full", "ρs=0.2", "ρd=0.2"],
    );
    let mut with_ft = Table::new(
        "Fig. 7b — ablation, with fine-tuning (HR@5, Porto)",
        &["Hausdorff HR@5"],
    );

    for variant in variants {
        eprintln!("training {}...", variant.name());
        let (moco, _) = train_trajcl_only(&env, &cfg, variant, 31);
        let ranks = eval_three_settings(&moco, &env.featurizer, &base, 32);
        no_ft.row_f64(variant.name(), &ranks);

        // Fine-tune toward Hausdorff and measure HR@5 on held-out data.
        let mut rng = StdRng::seed_from_u64(33);
        let pool = &env.splits.downstream;
        let split = pool.len() * 7 / 10;
        let ft_cfg = FinetuneConfig {
            scope: FinetuneScope::AllLayers,
            pairs_per_epoch: 128,
            batch_pairs: 16,
            epochs: 2,
            lr: 2e-3,
        };
        let est = finetune(
            &moco.online,
            &env.featurizer,
            &pool[..split],
            HeuristicMeasure::Hausdorff,
            &ft_cfg,
            &mut rng,
        );
        let eval = &pool[split..];
        let nq = (eval.len() / 4).max(2);
        let queries = &eval[..nq];
        let database = &eval[nq..];
        let true_d = pairwise_distances(queries, database, HeuristicMeasure::Hausdorff);
        let qe = est.embed(&env.featurizer, queries);
        let de = est.embed(&env.featurizer, database);
        let pred = l1_distances(&qe, &de);
        let mut hr = 0.0;
        for q in 0..nq {
            hr += hit_ratio(
                &true_d[q * database.len()..(q + 1) * database.len()],
                &pred[q * database.len()..(q + 1) * database.len()],
                5,
            );
        }
        with_ft.row_f64(variant.name(), &[hr / nq as f64]);
    }
    no_ft.print();
    no_ft.save_json("fig7a");
    with_ft.print();
    with_ft.save_json("fig7b");
    println!("paper shape check: Dual < MSM < concat on mean rank; Dual leads HR@5.");
}
