//! Table VIII — wall-clock time for the bulk similarity workload.
//!
//! The paper computes 1 000 × 100 000 = 10⁸ pair similarities: heuristics
//! pay per pair, learned methods pay once per trajectory (encode) plus a
//! trivial L1 comparison per pair. At reproduction scale the pair count is
//! ~10⁴, so the measured columns are reported alongside a *projection to
//! the paper's workload* that amortises the measured encode and compare
//! rates over 10⁸ pairs / 101 000 encodes — this is where the paper's
//! "learned ≫ heuristic" gap (and t2vec-vs-TrajCL recurrence gap) appears.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use trajcl_bench::{heuristic_set, train_all, ExperimentEnv, Scale, Table, LEARNED_METHODS};
use trajcl_core::{l1_distances, TrajClConfig};
use trajcl_data::DatasetProfile;
use trajcl_measures::pairwise_distances;

const PAPER_PAIRS: f64 = 1e8;
const PAPER_ENCODES: f64 = 101_000.0;

fn main() {
    let scale = Scale::from_args();
    let mut cfg = TrajClConfig::scaled_default();
    cfg.dim = 32;
    cfg.max_epochs = 2;
    let profile = DatasetProfile::porto();
    let env = ExperimentEnv::new(profile, &scale, cfg.dim, cfg.max_len, 15);
    eprintln!("[{}] training models...", profile.name());
    let models = train_all(&env, &cfg, 15);
    let proto = env.protocol();
    let n_pairs = proto.queries.len() * proto.database.len();
    let n_encodes = proto.queries.len() + proto.database.len();

    let mut table = Table::new(
        format!(
            "Table VIII — similarity workload: measured {} pairs, projected to paper's 1k x 100k",
            n_pairs
        ),
        &["measured (s)", "µs/pair", "paper-scale projection (s)"],
    );

    for measure in heuristic_set(profile) {
        let t0 = Instant::now();
        let _ = pairwise_distances(&proto.queries, &proto.database, measure);
        let secs = t0.elapsed().as_secs_f64();
        let per_pair = secs / n_pairs as f64;
        table.row(
            measure.name(),
            vec![
                trajcl_bench::fmt_secs(secs),
                format!("{:.2}", per_pair * 1e6),
                trajcl_bench::fmt_secs(per_pair * PAPER_PAIRS),
            ],
        );
    }
    let mut rng = StdRng::seed_from_u64(16);
    for name in LEARNED_METHODS {
        if name == "CSTRM" && models.cstrm.is_none() {
            table.row(name, vec!["-".into(), "-".into(), "-".into()]);
            continue;
        }
        // Encode phase (per-trajectory cost).
        let t0 = Instant::now();
        let (q, d) = if name == "TrajCL" {
            (
                models.embed_trajcl(&env.featurizer, &proto.queries),
                models.embed_trajcl(&env.featurizer, &proto.database),
            )
        } else {
            (
                models.embed(name, &proto.queries, &mut rng),
                models.embed(name, &proto.database, &mut rng),
            )
        };
        let encode_secs = t0.elapsed().as_secs_f64();
        // Compare phase (per-pair cost).
        let t0 = Instant::now();
        let _ = l1_distances(&q, &d);
        let compare_secs = t0.elapsed().as_secs_f64();
        let total = encode_secs + compare_secs;
        let encode_rate = encode_secs / n_encodes as f64;
        let compare_rate = compare_secs / n_pairs as f64;
        let projected = encode_rate * PAPER_ENCODES + compare_rate * PAPER_PAIRS;
        table.row(
            name,
            vec![
                trajcl_bench::fmt_secs(total),
                format!("{:.2}", total * 1e6 / n_pairs as f64),
                trajcl_bench::fmt_secs(projected),
            ],
        );
    }
    table.print();
    table.save_json("table8");
    println!(
        "paper shape check (projection column): learned methods beat every heuristic; \
         recurrent t2vec/E2DTC pay more encode time than attention-based TrajCL/CSTRM."
    );
}
