//! Fig. 10 — impact of the embedding dimensionality `d` (sweep), with the
//! mean rank under the three standard settings.
//!
//! Expected shape (paper): best around the middle (overfitting at very
//! large `d` without fine-tuning); we sweep a scaled range.

use trajcl_bench::harness::{eval_three_settings, train_trajcl_only};
use trajcl_bench::{ExperimentEnv, Scale, Table};
use trajcl_core::{EncoderVariant, TrajClConfig};
use trajcl_data::DatasetProfile;

fn main() {
    let scale = Scale::from_args();
    let dims = [16usize, 32, 64, 128];
    let mut table = Table::new(
        "Fig. 10 — mean rank vs embedding dimensionality d (Porto)",
        &["|D|=full", "ρs=0.2", "ρd=0.2", "train time (s)"],
    );
    for &d in &dims {
        let mut cfg = TrajClConfig::scaled_default();
        cfg.dim = d;
        cfg.ffn_hidden = d * 2;
        cfg.proj_dim = (d / 2).max(8);
        cfg.max_epochs = 2;
        let env = ExperimentEnv::new(DatasetProfile::porto(), &scale, d, cfg.max_len, 40);
        let base = env.protocol();
        eprintln!("training d={d}...");
        let (moco, secs) = train_trajcl_only(&env, &cfg, EncoderVariant::Dual, 41);
        let ranks = eval_three_settings(&moco, &env.featurizer, &base, 42);
        table.row(
            format!("d={d}"),
            vec![
                format!("{:.3}", ranks[0]),
                format!("{:.3}", ranks[1]),
                format!("{:.3}", ranks[2]),
                trajcl_bench::fmt_secs(secs),
            ],
        );
    }
    table.print();
    table.save_json("fig10");
    println!("paper shape check: accuracy flat-ish with a sweet spot; time grows with d.");
}
