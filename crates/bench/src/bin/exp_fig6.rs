//! Fig. 6 — kNN query response time: TrajCL embeddings + IVF index vs the
//! segment-based Hausdorff index, across database sizes.
//!
//! Expected shape: both grow with |D|; TrajCL/IVF is about two orders of
//! magnitude faster (embedding-space scan + Voronoi probing vs exact
//! quadratic Hausdorff with pruning).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use trajcl_bench::{train_all, ExperimentEnv, Scale, Table};
use trajcl_core::TrajClConfig;
use trajcl_data::{distort, DatasetProfile};
use trajcl_geo::Trajectory;
use trajcl_index::SegmentHausdorffIndex;

fn main() {
    let scale = Scale::from_args();
    let mut cfg = TrajClConfig::scaled_default();
    cfg.dim = 32;
    cfg.max_epochs = 2;
    let profile = DatasetProfile::xian();
    let env = ExperimentEnv::new(profile, &scale, cfg.dim, cfg.max_len, 27);
    eprintln!("[{}] training TrajCL...", profile.name());
    let models = train_all(&env, &cfg, 27);

    let base = &env.splits.test;
    let k = 10;
    let n_queries = scale.n_queries.min(base.len() / 4);
    let queries: Vec<Trajectory> = base[..n_queries].to_vec();
    let sizes = [base.len() / 4, base.len() / 2, base.len()];

    // On a V100 the query-encoding term of the learned route is negligible
    // (0.14 µs/pair amortised); on CPU at reproduction scale it dominates,
    // so encode and index-search phases are reported separately — the
    // |D|-dependent term (search) is what Fig. 6 scales.
    let mut table = Table::new(
        format!("Fig. 6 — {k}NN query costs, {n_queries} queries (Xi'an, ρd=0.2)"),
        &[
            "Hausdorff/segment (s)",
            "TrajCL encode (s)",
            "TrajCL IVF search (s)",
            "search speedup",
        ],
    );
    for &n in &sizes {
        let mut drng = StdRng::seed_from_u64(29);
        let db: Vec<Trajectory> = base[..n]
            .iter()
            .map(|t| distort(t, 0.2, 100.0, 0.5, &mut drng))
            .collect();

        let seg = SegmentHausdorffIndex::build(&db);
        let t0 = Instant::now();
        let _ = seg.batch_knn(&queries, k);
        let seg_time = t0.elapsed().as_secs_f64();

        // The learned route through the unified engine: database embedding
        // + IVF build at construction, then encode/search per query batch.
        let engine = models
            .trajcl_engine(&env.featurizer, db, Some((n / 32).max(4)), 4)
            .expect("engine build");
        let t0 = Instant::now();
        let q_emb = engine.embed_all(&queries).expect("encode queries");
        let encode_time = t0.elapsed().as_secs_f64();
        let index = engine.index().expect("ivf index built");
        let t0 = Instant::now();
        let _ = index.batch_search(&q_emb, k, 4);
        let search_time = t0.elapsed().as_secs_f64();

        table.row(
            format!("|D|={n}"),
            vec![
                trajcl_bench::fmt_secs(seg_time),
                trajcl_bench::fmt_secs(encode_time),
                format!("{:.5}", search_time),
                format!("{:.0}x", seg_time / search_time.max(1e-9)),
            ],
        );
    }
    table.print();
    table.save_json("fig6");
    println!(
        "paper shape check: the |D|-dependent search term is orders faster than the segment scan \
         and both grow with |D|; query encoding is a fixed cost (GPU-trivial in the paper)."
    );
}
