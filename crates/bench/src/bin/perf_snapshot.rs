//! Perf snapshot: a fixed embed+knn workload whose throughput is recorded,
//! commit-tagged, in `BENCH_embed.json` at the repo root — the repo's
//! long-term perf trajectory.
//!
//! Usage:
//!   perf_snapshot [--quick] [--label NAME] [--out BENCH_embed.json]
//!                 [--check BENCH_embed.json]
//!
//! * default: measure and append a run entry to `--out` (created if absent);
//! * `--check FILE`: measure, compare the batch=128 embed throughput against
//!   the last entry recorded in FILE, and exit non-zero on a regression of
//!   more than 30% (the CI `perf-smoke` gate). Nothing is written.
//! * `--quick`: fewer repetitions (CI-sized).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use trajcl_bench::snapfile::{append_run, git_commit, last_value};
use trajcl_core::{EncoderVariant, Featurizer, TrajClConfig, TrajClModel};
use trajcl_engine::Engine;
use trajcl_geo::{Bbox, Grid, Point, SpatialNorm, Trajectory};
use trajcl_tensor::{Shape, Tensor};

/// Maximum tolerated throughput drop vs. the committed baseline.
const MAX_REGRESSION: f64 = 0.30;

const BATCH_SIZES: [usize; 3] = [1, 16, 128];

fn engine_with_batch(batch: usize, database: Vec<Trajectory>) -> Engine {
    let mut rng = StdRng::seed_from_u64(0);
    let mut cfg = TrajClConfig::scaled_default();
    cfg.dim = 32;
    cfg.ffn_hidden = 64;
    let region = Bbox::new(Point::new(0.0, 0.0), Point::new(10_000.0, 10_000.0));
    let grid = Grid::new(region, 200.0);
    let table = Tensor::randn(Shape::d2(grid.num_cells(), cfg.dim), 0.0, 0.3, &mut rng);
    let feat = Featurizer::new(grid, table, SpatialNorm::new(region, 200.0), 128);
    let model = TrajClModel::new(&cfg, EncoderVariant::Dual, &mut rng);
    Engine::builder()
        .trajcl(model, feat)
        .batch_size(batch)
        .database(database)
        .build()
        .expect("engine build")
}

/// Same deterministic workload as the `engine_throughput` criterion bench.
fn workload(n: usize, points: usize) -> Vec<Trajectory> {
    (0..n)
        .map(|i| {
            (0..points)
                .map(|t| {
                    Point::new(
                        200.0 + t as f64 * 60.0,
                        500.0 + (i % 37) as f64 * 250.0 + (t % 5) as f64 * 20.0,
                    )
                })
                .collect()
        })
        .collect()
}

/// Best-of-`reps` wall time of `f`, in seconds.
fn time_best(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

struct Snapshot {
    commit: String,
    label: String,
    quick: bool,
    /// trajectories/sec through `Engine::embed_all`, per batch size.
    embed: Vec<(usize, f64)>,
    /// single-query kNN queries/sec (k = 10, brute-force route).
    knn_qps: f64,
}

impl Snapshot {
    fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{{\"commit\":\"{}\",\"label\":\"{}\",\"quick\":{}",
            self.commit, self.label, self.quick
        ));
        for (b, tps) in &self.embed {
            s.push_str(&format!(",\"embed_{b}\":{tps:.1}"));
        }
        s.push_str(&format!(",\"knn_qps\":{:.1}}}", self.knn_qps));
        s
    }
}

fn measure(quick: bool, label: &str) -> Snapshot {
    let trajs = workload(128, 48);
    let reps = if quick { 2 } else { 5 };
    let mut embed = Vec::new();
    for &batch in &BATCH_SIZES {
        let engine = engine_with_batch(batch, Vec::new());
        let secs = time_best(reps, || {
            let e = engine.embed_all(&trajs).expect("embed");
            std::hint::black_box(e);
        });
        let tps = trajs.len() as f64 / secs;
        eprintln!(
            "embed_all batch={batch:<4} {tps:9.1} trajs/sec ({:.1} ms)",
            secs * 1e3
        );
        embed.push((batch, tps));
    }

    let engine = engine_with_batch(128, trajs.clone());
    let queries: Vec<Trajectory> = trajs.iter().take(16).cloned().collect();
    let secs = time_best(reps, || {
        for q in &queries {
            std::hint::black_box(engine.knn(q, 10).expect("knn"));
        }
    });
    let knn_qps = queries.len() as f64 / secs;
    eprintln!("knn k=10            {knn_qps:9.1} queries/sec");

    Snapshot {
        commit: git_commit(),
        label: label.to_string(),
        quick,
        embed,
        knn_qps,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = "BENCH_embed.json".to_string();
    let mut check: Option<String> = None;
    let mut label = "snapshot".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--out" => {
                i += 1;
                out = args[i].clone();
            }
            "--check" => {
                i += 1;
                check = Some(args[i].clone());
            }
            "--label" => {
                i += 1;
                label = args[i].clone();
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let snap = measure(quick, &label);

    if let Some(baseline_path) = check {
        let Some(baseline) = last_value(&baseline_path, "embed_128") else {
            eprintln!("no baseline found in {baseline_path}; nothing to check against");
            std::process::exit(2);
        };
        let measured = snap
            .embed
            .iter()
            .find(|(b, _)| *b == 128)
            .map(|(_, t)| *t)
            .expect("batch=128 measured");
        let floor = baseline * (1.0 - MAX_REGRESSION);
        eprintln!(
            "check: measured {measured:.1} trajs/sec vs baseline {baseline:.1} (floor {floor:.1})"
        );
        if measured < floor {
            eprintln!(
                "FAIL: embed throughput regressed more than {:.0}%",
                MAX_REGRESSION * 100.0
            );
            std::process::exit(1);
        }
        eprintln!("OK: within the regression budget");
    } else {
        append_run(&out, &snap.to_json());
        eprintln!("recorded run '{}' ({}) -> {out}", snap.label, snap.commit);
    }
}
