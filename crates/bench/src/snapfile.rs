//! Shared plumbing for the commit-tagged perf-snapshot files
//! (`BENCH_embed.json`, `BENCH_serve.json`): git tagging, JSON-array
//! appending, and baseline extraction — one implementation for every
//! snapshot binary so the two files can never drift in format.

/// The current short commit id, suffixed `-dirty` when the working tree
/// has uncommitted changes (so a perf trajectory never attributes two
/// code states to one commit id); `"unknown"` outside a git checkout.
pub fn git_commit() -> String {
    let head = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string());
    let Some(head) = head else {
        return "unknown".to_string();
    };
    let dirty = std::process::Command::new("git")
        .args(["status", "--porcelain"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .is_some_and(|o| !o.stdout.is_empty());
    if dirty {
        format!("{head}-dirty")
    } else {
        head
    }
}

/// Appends one JSON object to the JSON-array file at `path`, creating the
/// file when absent.
pub fn append_run(path: &str, entry: &str) {
    let existing = std::fs::read_to_string(path)
        .ok()
        .filter(|s| !s.trim().is_empty());
    let body = match existing {
        Some(existing) => {
            let trimmed = existing.trim_end().trim_end_matches(']').trim_end();
            let sep = if trimmed.ends_with('[') { "" } else { "," };
            format!("{trimmed}{sep}\n  {entry}\n]\n")
        }
        None => format!("[\n  {entry}\n]\n"),
    };
    std::fs::write(path, body).expect("write snapshot file");
}

/// The last `"key":<number>` recorded in the file at `path` (the active
/// baseline for regression checks); `None` when absent.
pub fn last_value(path: &str, key: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let needle = format!("\"{key}\":");
    let mut last = None;
    let mut rest = text.as_str();
    while let Some(pos) = rest.find(&needle) {
        rest = &rest[pos + needle.len()..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        if let Ok(v) = rest[..end].trim().parse::<f64>() {
            last = Some(v);
        }
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_extract_round_trip() {
        let path = std::env::temp_dir().join("trajcl_snapfile_test.json");
        let path = path.to_str().unwrap().to_string();
        let _ = std::fs::remove_file(&path);
        append_run(&path, "{\"a\":1.5,\"b\":2}");
        append_run(&path, "{\"a\":3.25}");
        assert_eq!(last_value(&path, "a"), Some(3.25));
        assert_eq!(last_value(&path, "b"), Some(2.0));
        assert_eq!(last_value(&path, "c"), None);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.trim_start().starts_with('[') && text.trim_end().ends_with(']'));
        std::fs::remove_file(&path).unwrap();
    }
}
