//! Shared experiment harness: dataset environments, model training
//! registry, and protocol evaluation used by every `exp_*` binary.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::time::Instant;
use trajcl_baselines::{
    Cstrm, CstrmConfig, E2dtc, E2dtcConfig, T2Vec, T2VecConfig, TokenFeaturizer, TrajectoryEncoder,
    TrjSr, TrjSrConfig,
};
use trajcl_core::{
    build_featurizer, l1_distances, train, EncoderVariant, Featurizer, MocoState, TrajClConfig,
};
use trajcl_data::{mean_rank, Dataset, DatasetProfile, QueryProtocol, Splits};
use trajcl_engine::{Engine, EngineError};
use trajcl_geo::Trajectory;
use trajcl_measures::{pairwise_distances, HeuristicMeasure};
use trajcl_nn::StepDecay;
use trajcl_tensor::Tensor;

/// Experiment scale knobs (paper sizes ÷ ~100 by default; every binary
/// accepts `--train`, `--db`, `--queries`, `--pool` overrides).
#[derive(Debug, Clone)]
pub struct Scale {
    /// Trajectories generated per dataset.
    pub dataset_size: usize,
    /// Contrastive training set size.
    pub train_size: usize,
    /// Database size for ranking experiments.
    pub db_size: usize,
    /// Number of queries.
    pub n_queries: usize,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            dataset_size: 1600,
            train_size: 300,
            db_size: 600,
            n_queries: 50,
        }
    }
}

impl Scale {
    /// Reads overrides from command-line arguments of the form
    /// `--train 500 --db 1000 --queries 100 --pool 4000`.
    pub fn from_args() -> Self {
        let mut scale = Scale::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i + 1 < args.len() {
            let val = || args[i + 1].parse::<usize>().ok();
            match args[i].as_str() {
                "--train" => scale.train_size = val().unwrap_or(scale.train_size),
                "--db" => scale.db_size = val().unwrap_or(scale.db_size),
                "--queries" => scale.n_queries = val().unwrap_or(scale.n_queries),
                "--pool" => scale.dataset_size = val().unwrap_or(scale.dataset_size),
                _ => {}
            }
            i += 1;
        }
        // The test pool (4/5 of the post-train remainder) must cover the DB.
        let needed = scale.train_size + scale.train_size / 10 + scale.db_size * 5 / 4 + 8;
        if scale.dataset_size < needed {
            scale.dataset_size = needed;
        }
        scale
    }
}

/// A fully prepared dataset environment.
pub struct ExperimentEnv {
    /// The dataset profile.
    pub profile: DatasetProfile,
    /// Generated dataset.
    pub dataset: Dataset,
    /// Train/val/test/downstream splits.
    pub splits: Splits,
    /// TrajCL featurizer (grid + node2vec table + normalisation).
    pub featurizer: Featurizer,
    /// Tokeniser shared by the baselines.
    pub token_featurizer: TokenFeaturizer,
    /// Scale used.
    pub scale: Scale,
    /// Seed for reproducibility.
    pub seed: u64,
}

impl ExperimentEnv {
    /// Generates data and featurizers for `profile` (deterministic per
    /// profile + seed).
    pub fn new(
        profile: DatasetProfile,
        scale: &Scale,
        dim: usize,
        max_len: usize,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ profile.seed());
        let dataset = Dataset::generate(profile, scale.dataset_size, seed);
        let splits = dataset.split(scale.train_size, &mut rng);
        let featurizer = build_featurizer(&dataset, dim, max_len, &mut rng);
        let token_featurizer = TokenFeaturizer::new(dataset.region, profile.cell_side(), max_len);
        ExperimentEnv {
            profile,
            dataset,
            splits,
            featurizer,
            token_featurizer,
            scale: scale.clone(),
            seed,
        }
    }

    /// Builds the §V-B query protocol from the test split.
    pub fn protocol(&self) -> QueryProtocol {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xBEEF);
        QueryProtocol::build(
            &self.splits.test,
            self.scale.n_queries.min(self.splits.test.len() / 2),
            self.scale.db_size.min(self.splits.test.len()),
            &mut rng,
        )
    }
}

/// All trained learned models for one environment.
pub struct TrainedModels {
    /// TrajCL (MoCo state holding the online model).
    pub trajcl: MocoState,
    /// t2vec baseline.
    pub t2vec: T2Vec,
    /// TrjSR baseline.
    pub trjsr: TrjSr,
    /// E2DTC baseline.
    pub e2dtc: E2dtc,
    /// CSTRM baseline (`None` when profile = Germany, mirroring the
    /// paper's OOM).
    pub cstrm: Option<Cstrm>,
    /// Wall-clock training seconds per model.
    pub train_seconds: BTreeMap<&'static str, f64>,
}

/// Names of the learned methods in table order.
pub const LEARNED_METHODS: [&str; 5] = ["t2vec", "TrjSR", "E2DTC", "CSTRM", "TrajCL"];

/// Names of the heuristic methods in table order.
pub fn heuristic_set(profile: DatasetProfile) -> [HeuristicMeasure; 4] {
    // EDR threshold scales with the dataset's spatial granularity.
    HeuristicMeasure::paper_set(profile.cell_side())
}

/// Trains TrajCL and all self-supervised baselines on the environment's
/// training split. `cfg` controls TrajCL; baseline widths follow it.
pub fn train_all(env: &ExperimentEnv, cfg: &TrajClConfig, seed: u64) -> TrainedModels {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut secs = BTreeMap::new();
    let schedule = StepDecay::trajcl_default();

    let t0 = Instant::now();
    let mut trajcl = MocoState::new(cfg, EncoderVariant::Dual, &mut rng);
    train(
        &mut trajcl,
        &env.featurizer,
        &env.splits.train,
        &schedule,
        &mut rng,
    );
    secs.insert("TrajCL", t0.elapsed().as_secs_f64());

    let t2v_cfg = T2VecConfig {
        dim: cfg.dim,
        epochs: cfg.max_epochs.min(3),
        batch_size: cfg.batch_size,
        ..Default::default()
    };
    let t0 = Instant::now();
    let mut t2vec = T2Vec::new(env.token_featurizer.clone(), cfg.dim, &mut rng);
    t2vec.train(&env.splits.train, &t2v_cfg, &mut rng);
    secs.insert("t2vec", t0.elapsed().as_secs_f64());

    let t0 = Instant::now();
    let trjsr_cfg = TrjSrConfig {
        dim: cfg.dim,
        epochs: cfg.max_epochs.min(3),
        batch_size: cfg.batch_size,
        ..Default::default()
    };
    let mut trjsr = TrjSr::new(env.dataset.region, &trjsr_cfg, &mut rng);
    trjsr.train(&env.splits.train, &trjsr_cfg, &mut rng);
    secs.insert("TrjSR", t0.elapsed().as_secs_f64());

    let t0 = Instant::now();
    let e2dtc_cfg = E2dtcConfig {
        backbone: T2VecConfig {
            dim: cfg.dim,
            epochs: cfg.max_epochs.min(2),
            batch_size: cfg.batch_size,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut e2dtc = E2dtc::new(env.token_featurizer.clone(), cfg.dim, 8, &mut rng);
    e2dtc.train(&env.splits.train, &e2dtc_cfg, &mut rng);
    secs.insert("E2DTC", t0.elapsed().as_secs_f64());

    // CSTRM OOMs on Germany in the paper (trainable cell table over a
    // country-wide grid); we reproduce the mechanism by refusing to
    // allocate tables past a budget.
    let cstrm = if cstrm_table_feasible(&env.token_featurizer, cfg.dim) {
        let t0 = Instant::now();
        let cstrm_cfg = CstrmConfig {
            dim: cfg.dim,
            heads: cfg.heads,
            layers: cfg.layers,
            epochs: cfg.max_epochs.min(3),
            batch_size: cfg.batch_size,
            ..Default::default()
        };
        let mut m = Cstrm::new(env.token_featurizer.clone(), &cstrm_cfg, &mut rng);
        m.train(&env.splits.train, &cstrm_cfg, &mut rng);
        secs.insert("CSTRM", t0.elapsed().as_secs_f64());
        Some(m)
    } else {
        None
    };

    TrainedModels {
        trajcl,
        t2vec,
        trjsr,
        e2dtc,
        cstrm,
        train_seconds: secs,
    }
}

/// Whether CSTRM's trainable cell table fits the (scaled) memory budget.
pub fn cstrm_table_feasible(tf: &TokenFeaturizer, dim: usize) -> bool {
    // 2 GB of f32 at full scale ~ paper's V100; scaled budget: 64M floats.
    tf.vocab() * dim <= 64_000_000
}

impl TrainedModels {
    /// Embeds `trajs` with the named learned method.
    ///
    /// # Panics
    /// Panics on an unknown name or if CSTRM was infeasible.
    pub fn embed(&self, name: &str, trajs: &[Trajectory], rng: &mut StdRng) -> Tensor {
        match name {
            "TrajCL" => panic!("use embed_trajcl with the env's featurizer"),
            "t2vec" => self.t2vec.embed(trajs, rng),
            "TrjSR" => self.trjsr.embed(trajs, rng),
            "E2DTC" => self.e2dtc.embed(trajs, rng),
            "CSTRM" => self
                .cstrm
                .as_ref()
                .expect("CSTRM infeasible for this profile")
                .embed(trajs, rng),
            other => panic!("unknown learned method {other}"),
        }
    }

    /// Embeds with TrajCL using an explicit featurizer (the env's),
    /// through the tape-free serving path (no RNG involved).
    pub fn embed_trajcl(&self, featurizer: &Featurizer, trajs: &[Trajectory]) -> Tensor {
        self.trajcl.online.embed(featurizer, trajs)
    }

    /// Mean rank of a learned method on a protocol.
    pub fn mean_rank_learned(
        &self,
        name: &str,
        featurizer: &Featurizer,
        protocol: &QueryProtocol,
        rng: &mut StdRng,
    ) -> f64 {
        let (q, d) = if name == "TrajCL" {
            (
                self.embed_trajcl(featurizer, &protocol.queries),
                self.embed_trajcl(featurizer, &protocol.database),
            )
        } else {
            (
                self.embed(name, &protocol.queries, rng),
                self.embed(name, &protocol.database, rng),
            )
        };
        let dists = l1_distances(&q, &d);
        mean_rank(&dists, protocol.database.len(), &protocol.ground_truth)
    }
}

impl TrainedModels {
    /// Packages the trained TrajCL model as a serving [`Engine`] over
    /// `database` — the harness entry point for engine-routed experiments
    /// (kNN costs, index builds, throughput benches).
    pub fn trajcl_engine(
        &self,
        featurizer: &Featurizer,
        database: Vec<Trajectory>,
        nlist: Option<usize>,
        nprobe: usize,
    ) -> Result<Engine, EngineError> {
        Engine::builder()
            .trajcl(self.trajcl.online.clone(), featurizer.clone())
            .database(database)
            .maybe_ivf_index(nlist)
            .nprobe(nprobe)
            .build()
    }
}

impl ExperimentEnv {
    /// An exact-measure engine over `database` (the heuristic comparison
    /// arm of the kNN experiments).
    pub fn heuristic_engine(
        &self,
        measure: HeuristicMeasure,
        database: Vec<Trajectory>,
    ) -> Result<Engine, EngineError> {
        Engine::builder()
            .heuristic(measure)
            .database(database)
            .build()
    }
}

/// Trains only TrajCL (used by the parameter studies, Figs. 5/7–12).
pub fn train_trajcl_only(
    env: &ExperimentEnv,
    cfg: &TrajClConfig,
    variant: EncoderVariant,
    seed: u64,
) -> (MocoState, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let schedule = StepDecay::trajcl_default();
    let t0 = Instant::now();
    let mut moco = MocoState::new(cfg, variant, &mut rng);
    train(
        &mut moco,
        &env.featurizer,
        &env.splits.train,
        &schedule,
        &mut rng,
    );
    (moco, t0.elapsed().as_secs_f64())
}

/// Mean rank of a TrajCL model under the three standard settings of the
/// parameter studies: clean |D|, ρs = 0.2 down-sampling, ρd = 0.2
/// distortion. Returns `[clean, downsampled, distorted]`.
pub fn eval_three_settings(
    moco: &MocoState,
    featurizer: &Featurizer,
    base: &QueryProtocol,
    seed: u64,
) -> [f64; 3] {
    use trajcl_data::{distort, downsample};
    let mut drng = StdRng::seed_from_u64(seed);
    let down = base.degrade(|t| downsample(t, 0.2, &mut drng));
    let dist = base.degrade(|t| distort(t, 0.2, 100.0, 0.5, &mut drng));
    let rank = |p: &QueryProtocol| -> f64 {
        let q = moco.online.embed(featurizer, &p.queries);
        let d = moco.online.embed(featurizer, &p.database);
        mean_rank(&l1_distances(&q, &d), p.database.len(), &p.ground_truth)
    };
    [rank(base), rank(&down), rank(&dist)]
}

/// Mean rank of a heuristic measure on a protocol.
pub fn mean_rank_heuristic(measure: HeuristicMeasure, protocol: &QueryProtocol) -> f64 {
    let dists = pairwise_distances(&protocol.queries, &protocol.database, measure);
    mean_rank(&dists, protocol.database.len(), &protocol.ground_truth)
}

/// Mean rank from a precomputed full distance matrix restricted to the
/// first `db_size` database entries (ground truths are stored first, so
/// prefixes are valid databases).
pub fn mean_rank_prefix(
    dists: &[f64],
    full_db: usize,
    db_size: usize,
    ground_truth: &[usize],
) -> f64 {
    let mut total = 0.0;
    for (qi, &gt) in ground_truth.iter().enumerate() {
        let row = &dists[qi * full_db..qi * full_db + db_size];
        let t = row[gt];
        total += (1 + row.iter().filter(|&&d| d < t).count()) as f64;
    }
    total / ground_truth.len() as f64
}

/// Mean ranks of a heuristic for several database sizes, computing the
/// distance matrix once.
pub fn heuristic_rank_sweep(
    measure: HeuristicMeasure,
    protocol: &QueryProtocol,
    sizes: &[usize],
) -> Vec<f64> {
    let full = protocol.database.len();
    let dists = pairwise_distances(&protocol.queries, &protocol.database, measure);
    sizes
        .iter()
        .map(|&s| mean_rank_prefix(&dists, full, s.min(full), &protocol.ground_truth))
        .collect()
}

impl TrainedModels {
    /// Mean ranks of a learned method for several database sizes, embedding
    /// the full protocol once.
    pub fn learned_rank_sweep(
        &self,
        name: &str,
        featurizer: &Featurizer,
        protocol: &QueryProtocol,
        sizes: &[usize],
        rng: &mut StdRng,
    ) -> Vec<f64> {
        let (q, d) = if name == "TrajCL" {
            (
                self.embed_trajcl(featurizer, &protocol.queries),
                self.embed_trajcl(featurizer, &protocol.database),
            )
        } else {
            (
                self.embed(name, &protocol.queries, rng),
                self.embed(name, &protocol.database, rng),
            )
        };
        let full = protocol.database.len();
        let dists = l1_distances(&q, &d);
        sizes
            .iter()
            .map(|&s| mean_rank_prefix(&dists, full, s.min(full), &protocol.ground_truth))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> Scale {
        Scale {
            dataset_size: 260,
            train_size: 40,
            db_size: 60,
            n_queries: 10,
        }
    }

    #[test]
    fn env_builds_consistent_splits() {
        let scale = tiny_scale();
        let env = ExperimentEnv::new(DatasetProfile::porto(), &scale, 16, 64, 7);
        assert_eq!(env.splits.train.len(), 40);
        assert!(env.splits.test.len() >= 60);
        let proto = env.protocol();
        assert_eq!(proto.queries.len(), 10);
        assert_eq!(proto.database.len(), 60);
    }

    #[test]
    fn heuristic_mean_rank_finds_planted_matches() {
        let scale = tiny_scale();
        let env = ExperimentEnv::new(DatasetProfile::porto(), &scale, 16, 64, 8);
        let proto = env.protocol();
        let mr = mean_rank_heuristic(HeuristicMeasure::Hausdorff, &proto);
        // Odd/even splits of the same trajectory are near-identical under
        // Hausdorff — mean rank must be far better than random (db/2 = 30).
        assert!(mr < 8.0, "Hausdorff mean rank {mr} too poor");
    }

    #[test]
    fn engine_entry_points_serve_knn() {
        let scale = tiny_scale();
        let env = ExperimentEnv::new(DatasetProfile::porto(), &scale, 16, 64, 10);
        let db: Vec<Trajectory> = env.splits.test[..40].to_vec();

        let heuristic = env
            .heuristic_engine(HeuristicMeasure::Hausdorff, db.clone())
            .expect("heuristic engine");
        let hits = heuristic.knn(&db[5], 3).expect("knn");
        assert_eq!(hits[0].0, 5, "exact measure ranks the query itself first");

        // A fresh (untrained) TrajCL state is enough to validate routing.
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = TrajClConfig::test_default();
        let models = TrainedModels {
            trajcl: MocoState::new(&cfg, EncoderVariant::Dual, &mut rng),
            t2vec: T2Vec::new(env.token_featurizer.clone(), 16, &mut rng),
            trjsr: TrjSr::new(env.dataset.region, &TrjSrConfig::default(), &mut rng),
            e2dtc: E2dtc::new(env.token_featurizer.clone(), 16, 4, &mut rng),
            cstrm: None,
            train_seconds: BTreeMap::new(),
        };
        let engine = models
            .trajcl_engine(&env.featurizer, db.clone(), Some(6), 6)
            .expect("trajcl engine");
        assert!(engine.index().is_some());
        let hits = engine.knn(&db[5], 3).expect("knn");
        assert_eq!(hits[0].0, 5, "self-query through the IVF engine");
    }

    #[test]
    fn cstrm_feasibility_gate() {
        let scale = tiny_scale();
        let porto = ExperimentEnv::new(DatasetProfile::porto(), &scale, 16, 64, 9);
        assert!(cstrm_table_feasible(&porto.token_featurizer, 64));
        let germany = ExperimentEnv::new(DatasetProfile::germany(), &scale, 16, 64, 9);
        // Germany at the paper's 100 m cells would blow up; our profile uses
        // 10 km cells for the other models, so emulate the paper's check at
        // the fine granularity.
        let fine = TokenFeaturizer::new(germany.dataset.region, 100.0, 200);
        assert!(!cstrm_table_feasible(&fine, 256));
    }
}
