//! Table formatting and result persistence for the experiment binaries.
//!
//! Every `exp_*` binary prints a paper-shaped table via [`Table`] and can
//! dump the raw numbers as JSON next to the binary's output for
//! EXPERIMENTS.md bookkeeping.

use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table caption (e.g. "Table III — Porto").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row label + cells.
    pub rows: Vec<(String, Vec<String>)>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row of already-formatted cells.
    pub fn row(&mut self, label: impl Into<String>, cells: Vec<String>) {
        self.rows.push((label.into(), cells));
    }

    /// Adds a row of f64 values formatted with 3 decimals.
    pub fn row_f64(&mut self, label: impl Into<String>, values: &[f64]) {
        self.row(label, values.iter().map(|v| format!("{v:.3}")).collect());
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = Vec::new();
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once(8))
            .max()
            .unwrap_or(8);
        for (c, h) in self.headers.iter().enumerate() {
            let mut w = h.len();
            for (_, cells) in &self.rows {
                if let Some(cell) = cells.get(c) {
                    w = w.max(cell.len());
                }
            }
            widths.push(w);
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut header = format!("{:label_w$}", "");
        for (h, w) in self.headers.iter().zip(&widths) {
            let _ = write!(header, "  {h:>w$}");
        }
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{}", "-".repeat(header.len()));
        for (label, cells) in &self.rows {
            let _ = write!(out, "{label:label_w$}");
            for (c, w) in cells.iter().zip(&widths) {
                let _ = write!(out, "  {c:>w$}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Serialises the table (title, headers, rows) as JSON. Hand-rolled so
    /// the offline build needs no serde; the shape matches what
    /// `#[derive(Serialize)]` produced.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"title\": {},", json_str(&self.title));
        let headers: Vec<String> = self.headers.iter().map(|h| json_str(h)).collect();
        let _ = writeln!(out, "  \"headers\": [{}],", headers.join(", "));
        out.push_str("  \"rows\": [");
        for (i, (label, cells)) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let cells: Vec<String> = cells.iter().map(|c| json_str(c)).collect();
            let _ = write!(out, "\n    [{}, [{}]]", json_str(label), cells.join(", "));
        }
        if !self.rows.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}");
        out
    }

    /// Writes the JSON dump to `results/<name>.json` under the workspace
    /// root (best effort; failures are reported but not fatal).
    pub fn save_json(&self, name: &str) {
        let dir = std::path::Path::new("results");
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create results dir: {e}");
            return;
        }
        let path = dir.join(format!("{name}.json"));
        if let Err(e) = std::fs::write(&path, self.to_json()) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        }
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a duration in seconds with adaptive precision.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.1}")
    } else {
        format!("{s:.3}")
    }
}

/// Formats bytes as MB.
pub fn fmt_mb(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / 1_048_576.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["a", "bbbb"]);
        t.row("row1", vec!["1.0".into(), "2.0".into()]);
        t.row("longer-row", vec!["10.5".into(), "999.25".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // All data lines align: same length.
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn row_f64_formats_three_decimals() {
        let mut t = Table::new("x", &["v"]);
        t.row_f64("r", &[1.23456]);
        assert_eq!(t.rows[0].1[0], "1.235");
    }

    #[test]
    fn json_round_trip_contains_fields() {
        let mut t = Table::new("T", &["c"]);
        t.row("r", vec!["v".into()]);
        let j = t.to_json();
        assert!(j.contains("\"title\": \"T\""));
        assert!(j.contains("\"r\""));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_secs(0.1234), "0.123");
        assert_eq!(fmt_secs(12.34), "12.3");
        assert_eq!(fmt_secs(1234.0), "1234");
        assert_eq!(fmt_mb(1_048_576), "1.0");
    }
}
