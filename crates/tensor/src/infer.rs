//! Tape-free inference: scratch-buffer reuse and fused kernels.
//!
//! The autograd [`Tape`](crate::Tape) records every op, clones parameter
//! tensors into the graph and keeps all intermediate activations alive for
//! the backward sweep — pure overhead when no gradient will ever be asked
//! for. [`InferCtx`] is the serving-path counterpart: a bag of reusable
//! scratch buffers (an arena of `Vec<f32>` keyed by power-of-two size
//! class) plus forward-only kernels that write into recycled memory:
//!
//! * blocked/tiled [`InferCtx::matmul`] / [`InferCtx::linear`];
//! * [`InferCtx::fused_attention`] — `Q·Kᵀ → scale → mask → softmax → ·V`
//!   in one pass per (head, query) row, never materialising the `(B·H, L,
//!   L)` coefficient tensor or the additive mask;
//! * [`InferCtx::attention_probs`] for callers that need the coefficients
//!   themselves (TrajCL's DualMSM fusion), still fusing scale + mask +
//!   softmax into the score pass;
//! * in-place elementwise/normalisation helpers.
//!
//! Numerics match the tape kernels operation-for-operation (same
//! accumulation order, same softmax formulation), so a tape forward and an
//! infer forward agree to within float-associativity noise (≪ 1e-5); the
//! padding mask is applied by *skipping* masked keys, which is exact
//! because the tape's additive `-1e9` bias underflows `exp` to 0.0 in f32.
//!
//! All allocation goes through the arena; callers hand buffers back with
//! [`InferCtx::recycle`], so steady-state serving does no allocation at
//! all. Kernels fully overwrite their outputs — recycled buffers never
//! leak stale values into results.

use crate::kernels::{self, mat_dims};
use crate::pool;
use crate::shape::Shape;
use crate::tape::split_heads_copy;
use crate::tensor::Tensor;

/// Row-block size of the tiled matmul (each streamed row of `b` is reused
/// for this many output rows from L1).
const MR: usize = 4;

/// Arena of reusable `Vec<f32>` scratch buffers, keyed by power-of-two
/// size class.
#[derive(Default)]
struct ScratchArena {
    /// `classes[c]` holds free buffers of capacity ≈ `2^c`.
    classes: Vec<Vec<Vec<f32>>>,
}

impl ScratchArena {
    /// A buffer of exactly `len` elements with **unspecified contents**
    /// (possibly stale values from a previous use — callers must fully
    /// overwrite).
    fn take(&mut self, len: usize) -> Vec<f32> {
        if len == 0 {
            return Vec::new();
        }
        let class = len.next_power_of_two().trailing_zeros() as usize;
        if let Some(free) = self.classes.get_mut(class) {
            if let Some(mut buf) = free.pop() {
                buf.resize(len, 0.0);
                return buf;
            }
        }
        let mut buf = Vec::with_capacity(1usize << class);
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a buffer to the arena for reuse.
    fn give(&mut self, buf: Vec<f32>) {
        let cap = buf.capacity();
        if cap == 0 {
            return;
        }
        // Class by the largest power of two the buffer can hold.
        let class = (usize::BITS - 1 - cap.leading_zeros()) as usize;
        if class >= self.classes.len() {
            self.classes.resize_with(class + 1, Vec::new);
        }
        // Bound the number of cached buffers per class.
        if self.classes[class].len() < 8 {
            self.classes[class].push(buf);
        }
    }
}

/// Reusable inference context: scratch arena + tape-free kernels.
///
/// Not `Sync`: one `InferCtx` per serving thread (kernels themselves fan
/// out over the shared [`pool`] internally).
#[derive(Default)]
pub struct InferCtx {
    arena: ScratchArena,
}

impl InferCtx {
    /// An empty context (buffers are grown on first use and reused after).
    pub fn new() -> Self {
        Self::default()
    }

    /// An arena-backed tensor with **unspecified contents**; every kernel
    /// in this module fully overwrites its output, so this never leaks
    /// stale values.
    pub fn alloc(&mut self, shape: Shape) -> Tensor {
        Tensor::from_vec(self.arena.take(shape.numel()), shape)
    }

    /// An arena-backed copy of `src`.
    pub fn alloc_copy(&mut self, src: &Tensor) -> Tensor {
        let mut buf = self.arena.take(src.numel());
        buf.copy_from_slice(src.data());
        Tensor::from_vec(buf, src.shape())
    }

    /// Hands a tensor's backing buffer to the arena for reuse.
    pub fn recycle(&mut self, t: Tensor) {
        self.arena.give(t.into_vec());
    }

    // ----- matmul ---------------------------------------------------------

    /// (Batched / transposed) matrix product into an arena buffer; shape
    /// semantics identical to [`kernels::matmul`].
    pub fn matmul(&mut self, a: &Tensor, b: &Tensor, ta: bool, tb: bool) -> Tensor {
        self.matmul_bias(a, b, ta, tb, None)
    }

    /// Fully-connected layer `x·w + bias` with the bias added in the same
    /// output pass.
    pub fn linear(&mut self, x: &Tensor, w: &Tensor, bias: &Tensor) -> Tensor {
        debug_assert_eq!(bias.shape().rank(), 1, "linear bias must be rank 1");
        self.matmul_bias(x, w, false, false, Some(bias.data()))
    }

    fn matmul_bias(
        &mut self,
        a: &Tensor,
        b: &Tensor,
        ta: bool,
        tb: bool,
        bias: Option<&[f32]>,
    ) -> Tensor {
        let da = mat_dims(a.shape(), ta);
        let db = mat_dims(b.shape(), tb);
        assert_eq!(
            da.cols,
            db.rows,
            "matmul inner dims mismatch: {} x {}",
            a.shape(),
            b.shape()
        );
        let batch = match (da.batch, db.batch) {
            (x, y) if x == y => x,
            (x, 1) => x,
            (1, y) => y,
            (x, y) => panic!("matmul batch mismatch: {x} vs {y}"),
        };
        let (m, k, n) = (da.rows, da.cols, db.cols);
        let out_shape = if batch == 1 && a.shape().rank() == 2 && b.shape().rank() == 2 {
            Shape::d2(m, n)
        } else {
            Shape::d3(batch, m, n)
        };
        let mut out = self.alloc(out_shape);
        if !ta && !tb && db.batch == 1 {
            // Shared right operand (weights): the batched product collapses
            // to one (batch·m, k) x (k, n) multiply — run it tiled.
            matmul2d_tiled(a.data(), b.data(), batch * m, k, n, bias, out.data_mut());
            return out;
        }
        let a_stride = if da.batch == 1 { 0 } else { m * k };
        let b_stride = if db.batch == 1 { 0 } else { k * n };
        let (ad, bd) = (a.data(), b.data());
        kernels::for_each_row(out.data_mut(), n, k * n, |r, out_row| {
            let (bi, i) = (r / m, r % m);
            out_row.fill(0.0);
            kernels::matmul_row_into(
                &ad[bi * a_stride..bi * a_stride + m * k],
                &bd[bi * b_stride..bi * b_stride + k * n],
                i,
                m,
                k,
                n,
                ta,
                tb,
                out_row,
            );
            if let Some(bias) = bias {
                for (o, &bv) in out_row.iter_mut().zip(bias) {
                    *o += bv;
                }
            }
        });
        out
    }

    // ----- attention ------------------------------------------------------

    /// Splits `(B, L, H·Dh)` into `(B·H, L, Dh)`.
    pub fn split_heads(&mut self, x: &Tensor, heads: usize) -> Tensor {
        let xs = x.shape();
        assert_eq!(xs.rank(), 3, "split_heads expects rank 3, got {xs}");
        let (b, l, d) = (xs[0], xs[1], xs[2]);
        assert_eq!(d % heads, 0, "model dim {d} not divisible by {heads} heads");
        let dh = d / heads;
        let mut out = self.alloc(Shape::d3(b * heads, l, dh));
        split_heads_copy(x.data(), out.data_mut(), b, l, heads, dh, false);
        out
    }

    /// Merges `(B·H, L, Dh)` back into `(B, L, H·Dh)`.
    pub fn merge_heads(&mut self, x: &Tensor, heads: usize) -> Tensor {
        let xs = x.shape();
        assert_eq!(xs.rank(), 3, "merge_heads expects rank 3, got {xs}");
        let (bh, l, dh) = (xs[0], xs[1], xs[2]);
        assert_eq!(bh % heads, 0, "batch*heads {bh} not divisible by {heads}");
        let b = bh / heads;
        let mut out = self.alloc(Shape::d3(b, l, heads * dh));
        split_heads_copy(x.data(), out.data_mut(), b, l, heads, dh, true);
        out
    }

    /// Masked, scaled attention coefficients
    /// `softmax(Q·Kᵀ/√dh + mask)` of shape `(B·H, L, L)`, with scale, mask
    /// and softmax fused into the score pass. Key positions `≥ lens[b]`
    /// get exactly-zero weight (the tape's `-1e9` bias underflows to the
    /// same zeros).
    ///
    /// `q`/`k` are `(B·H, L, Dh)` with `B = lens.len()`.
    pub fn attention_probs(&mut self, q: &Tensor, k: &Tensor, lens: &[usize]) -> Tensor {
        let (bh, l, dh) = attn_dims(q, k, lens);
        let heads = bh / lens.len();
        let scale = 1.0 / (dh as f32).sqrt();
        let mut out = self.alloc(Shape::d3(bh, l, l));
        let (qd, kd) = (q.data(), k.data());
        let per = pool::rows_per_lane(bh);
        pool::par_chunks_mut(out.data_mut(), per * l * l, |c, chunk| {
            // K is transposed once per (batch, head) so the score loop
            // streams keys contiguously instead of issuing L short dots.
            let mut kt = vec![0.0f32; l * dh];
            for (b_off, block) in chunk.chunks_mut(l * l).enumerate() {
                let bhi = c * per + b_off;
                let len = lens[bhi / heads].min(l);
                transpose_block(&kd[bhi * l * dh..(bhi + 1) * l * dh], dh, len, &mut kt);
                for i in 0..l {
                    let row = &mut block[i * l..(i + 1) * l];
                    let q_row = &qd[(bhi * l + i) * dh..(bhi * l + i + 1) * dh];
                    scores_into(q_row, &kt, len, scale, &mut row[..len]);
                    softmax_inplace(&mut row[..len]);
                    row[len..].fill(0.0);
                }
            }
        });
        out
    }

    /// Fused attention: `softmax(Q·Kᵀ/√dh + mask)·V` computed in one pass
    /// per (head, query) row without materialising the `(B·H, L, L)`
    /// coefficient tensor. Inputs are `(B·H, L, Dh)`; output likewise.
    pub fn fused_attention(
        &mut self,
        q: &Tensor,
        k: &Tensor,
        v: &Tensor,
        lens: &[usize],
    ) -> Tensor {
        let (bh, l, dh) = attn_dims(q, k, lens);
        assert_eq!(v.shape(), q.shape(), "fused_attention v shape");
        let heads = bh / lens.len();
        let scale = 1.0 / (dh as f32).sqrt();
        let mut out = self.alloc(q.shape());
        let (qd, kd, vd) = (q.data(), k.data(), v.data());
        let per = pool::rows_per_lane(bh);
        pool::par_chunks_mut(out.data_mut(), per * l * dh, |c, chunk| {
            // Per-(batch, head) scratch: transposed K and V plus one score
            // row — the only live state of the whole attention, reused
            // across all L queries.
            let mut kt = vec![0.0f32; l * dh];
            let mut vt = vec![0.0f32; l * dh];
            let mut scores = vec![0.0f32; l];
            for (b_off, block) in chunk.chunks_mut(l * dh).enumerate() {
                let bhi = c * per + b_off;
                let len = lens[bhi / heads].min(l);
                let base = bhi * l * dh;
                transpose_block(&kd[base..base + l * dh], dh, len, &mut kt);
                transpose_block(&vd[base..base + l * dh], dh, len, &mut vt);
                for i in 0..l {
                    let q_row = &qd[base + i * dh..base + (i + 1) * dh];
                    scores_into(q_row, &kt, len, scale, &mut scores[..len]);
                    softmax_inplace(&mut scores[..len]);
                    let out_row = &mut block[i * dh..(i + 1) * dh];
                    for (d, o) in out_row.iter_mut().enumerate() {
                        *o = kernels::dot(&scores[..len], &vt[d * len..(d + 1) * len]);
                    }
                }
            }
        });
        out
    }

    /// DualMSM fusion in one pass: `(softmax(Q·Kᵀ/√dh + mask) + γ·A)·V`
    /// per (head, query) row, where `a` holds precomputed coefficients
    /// `(B·H, L, L)` (TrajCL Eq. 15 with `A = A_s`). The structural
    /// coefficient matrix `A_t` is never materialised.
    ///
    /// Masked keys carry zero weight on both sides (`a` rows are already
    /// zero there), so the blended row still skips them exactly.
    pub fn fused_attention_bias(
        &mut self,
        q: &Tensor,
        k: &Tensor,
        v: &Tensor,
        a: &Tensor,
        gamma: f32,
        lens: &[usize],
    ) -> Tensor {
        let (bh, l, dh) = attn_dims(q, k, lens);
        assert_eq!(v.shape(), q.shape(), "fused_attention_bias v shape");
        assert_eq!(
            a.shape(),
            Shape::d3(bh, l, l),
            "fused_attention_bias a shape"
        );
        let heads = bh / lens.len();
        let scale = 1.0 / (dh as f32).sqrt();
        let mut out = self.alloc(q.shape());
        let (qd, kd, vd, ad) = (q.data(), k.data(), v.data(), a.data());
        let per = pool::rows_per_lane(bh);
        pool::par_chunks_mut(out.data_mut(), per * l * dh, |c, chunk| {
            let mut kt = vec![0.0f32; l * dh];
            let mut vt = vec![0.0f32; l * dh];
            let mut scores = vec![0.0f32; l];
            for (b_off, block) in chunk.chunks_mut(l * dh).enumerate() {
                let bhi = c * per + b_off;
                let len = lens[bhi / heads].min(l);
                let base = bhi * l * dh;
                transpose_block(&kd[base..base + l * dh], dh, len, &mut kt);
                transpose_block(&vd[base..base + l * dh], dh, len, &mut vt);
                for i in 0..l {
                    let q_row = &qd[base + i * dh..base + (i + 1) * dh];
                    scores_into(q_row, &kt, len, scale, &mut scores[..len]);
                    softmax_inplace(&mut scores[..len]);
                    let a_row = &ad[(bhi * l + i) * l..(bhi * l + i) * l + len];
                    for (s, &av) in scores[..len].iter_mut().zip(a_row) {
                        *s += gamma * av;
                    }
                    let out_row = &mut block[i * dh..(i + 1) * dh];
                    for (d, o) in out_row.iter_mut().enumerate() {
                        *o = kernels::dot(&scores[..len], &vt[d * len..(d + 1) * len]);
                    }
                }
            }
        });
        out
    }

    // ----- pooling / shape plumbing ---------------------------------------

    /// Masked mean over time: `(B, L, D) -> (B, D)` averaging the first
    /// `lens[b]` positions.
    pub fn mean_pool_masked(&mut self, x: &Tensor, lens: &[usize]) -> Tensor {
        let xs = x.shape();
        assert_eq!(xs.rank(), 3, "mean_pool_masked expects rank 3");
        let (b, l, d) = (xs[0], xs[1], xs[2]);
        assert_eq!(lens.len(), b, "lens length must equal batch");
        let mut out = self.alloc(Shape::d2(b, d));
        let xd = x.data();
        for (bi, &len) in lens.iter().enumerate() {
            assert!(len >= 1 && len <= l, "invalid length {len} for L={l}");
            let inv = 1.0 / len as f32;
            let orow = &mut out.data_mut()[bi * d..(bi + 1) * d];
            orow.fill(0.0);
            for t in 0..len {
                let src = &xd[(bi * l + t) * d..(bi * l + t + 1) * d];
                for (o, &v) in orow.iter_mut().zip(src) {
                    *o += v * inv;
                }
            }
        }
        out
    }

    /// Concatenates two tensors along the last dimension.
    pub fn concat2(&mut self, a: &Tensor, b: &Tensor) -> Tensor {
        let rows = a.shape().rows();
        assert_eq!(b.shape().rows(), rows, "concat2 leading dims mismatch");
        let (wa, wb) = (a.shape().last(), b.shape().last());
        let total = wa + wb;
        let mut dims = a.shape().dims().to_vec();
        *dims.last_mut().unwrap() = total;
        let mut out = self.alloc(Shape::from_slice(&dims));
        let od = out.data_mut();
        for i in 0..rows {
            od[i * total..i * total + wa].copy_from_slice(&a.data()[i * wa..(i + 1) * wa]);
            od[i * total + wa..(i + 1) * total].copy_from_slice(&b.data()[i * wb..(i + 1) * wb]);
        }
        out
    }

    /// `(B, L, D)` slice at time step `t`, producing `(B, D)`.
    pub fn select_time(&mut self, x: &Tensor, t: usize) -> Tensor {
        let xs = x.shape();
        assert_eq!(xs.rank(), 3, "select_time expects rank 3");
        let (b, l, d) = (xs[0], xs[1], xs[2]);
        assert!(t < l, "time index {t} out of range {l}");
        let mut out = self.alloc(Shape::d2(b, d));
        for bi in 0..b {
            out.data_mut()[bi * d..(bi + 1) * d]
                .copy_from_slice(&x.data()[(bi * l + t) * d..(bi * l + t + 1) * d]);
        }
        out
    }

    /// Stacks `L` tensors of shape `(B, D)` into `(B, L, D)`.
    pub fn stack_time(&mut self, parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "stack_time of zero parts");
        let s0 = parts[0].shape();
        assert_eq!(s0.rank(), 2, "stack_time parts must be rank 2");
        let (b, d) = (s0[0], s0[1]);
        let l = parts.len();
        let mut out = self.alloc(Shape::d3(b, l, d));
        for (t, p) in parts.iter().enumerate() {
            assert_eq!(p.shape(), s0, "stack_time shape mismatch at {t}");
            for bi in 0..b {
                out.data_mut()[(bi * l + t) * d..(bi * l + t + 1) * d]
                    .copy_from_slice(&p.data()[bi * d..(bi + 1) * d]);
            }
        }
        out
    }

    // ----- in-place elementwise / normalisation ---------------------------

    /// `a += b` (shapes must match).
    pub fn add_inplace(a: &mut Tensor, b: &Tensor) {
        assert_eq!(a.shape(), b.shape(), "add_inplace shape mismatch");
        for (x, &y) in a.data_mut().iter_mut().zip(b.data()) {
            *x += y;
        }
    }

    /// `dst += alpha · src` (shapes must match) — the DualMSM fusion
    /// `A_t + γ·A_s` without materialising the scaled copy.
    pub fn add_scaled_inplace(dst: &mut Tensor, src: &Tensor, alpha: f32) {
        assert_eq!(
            dst.shape(),
            src.shape(),
            "add_scaled_inplace shape mismatch"
        );
        for (x, &y) in dst.data_mut().iter_mut().zip(src.data()) {
            *x += alpha * y;
        }
    }

    /// Adds a rank-1 bias over the last dimension of `x`.
    pub fn add_bias_inplace(x: &mut Tensor, bias: &Tensor) {
        let w = bias.shape().numel();
        assert_eq!(x.shape().last(), w, "add_bias_inplace dim mismatch");
        let bd = bias.data();
        for row in x.data_mut().chunks_mut(w) {
            for (o, &b) in row.iter_mut().zip(bd) {
                *o += b;
            }
        }
    }

    /// Adds a `(L, D)` positional table to every batch of a `(B, L, D)`
    /// tensor.
    pub fn add_pe_inplace(x: &mut Tensor, pe: &Tensor) {
        let xs = x.shape();
        assert_eq!(xs.rank(), 3, "add_pe_inplace expects (B, L, D)");
        assert_eq!(
            pe.shape(),
            Shape::d2(xs[1], xs[2]),
            "PE table shape mismatch"
        );
        let pd = pe.data();
        for batch in x.data_mut().chunks_mut(pd.len()) {
            for (o, &p) in batch.iter_mut().zip(pd) {
                *o += p;
            }
        }
    }

    /// Elementwise map in place.
    pub fn map_inplace(x: &mut Tensor, f: impl Fn(f32) -> f32) {
        for v in x.data_mut() {
            *v = f(*v);
        }
    }

    /// ReLU in place.
    pub fn relu_inplace(x: &mut Tensor) {
        Self::map_inplace(x, |v| v.max(0.0));
    }

    /// Elementwise combine into a fresh arena tensor.
    pub fn zip(&mut self, a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(a.shape(), b.shape(), "zip shape mismatch");
        let mut out = self.alloc(a.shape());
        for ((o, &x), &y) in out.data_mut().iter_mut().zip(a.data()).zip(b.data()) {
            *o = f(x, y);
        }
        out
    }

    /// Layer normalisation over the last dimension, in place (same formula
    /// as the tape kernel).
    pub fn layer_norm_inplace(x: &mut Tensor, gamma: &Tensor, beta: &Tensor, eps: f32) {
        let d = x.shape().last();
        assert_eq!(gamma.shape(), Shape::d1(d), "layer_norm gamma shape");
        assert_eq!(beta.shape(), Shape::d1(d), "layer_norm beta shape");
        let (g, b) = (gamma.data(), beta.data());
        for row in x.data_mut().chunks_mut(d) {
            let mu: f32 = row.iter().sum::<f32>() / d as f32;
            let var: f32 = row.iter().map(|v| (v - mu) * (v - mu)).sum::<f32>() / d as f32;
            let rs = 1.0 / (var + eps).sqrt();
            for (j, o) in row.iter_mut().enumerate() {
                *o = (*o - mu) * rs * g[j] + b[j];
            }
        }
    }

    /// Scales each row to unit L2 norm, in place.
    pub fn l2_normalize_rows_inplace(x: &mut Tensor) {
        let d = x.shape().last();
        for row in x.data_mut().chunks_mut(d) {
            let n = row.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-12);
            let inv = 1.0 / n;
            for v in row.iter_mut() {
                *v *= inv;
            }
        }
    }
}

/// Common `(B·H, L, Dh)` validation for the attention kernels.
fn attn_dims(q: &Tensor, k: &Tensor, lens: &[usize]) -> (usize, usize, usize) {
    let qs = q.shape();
    assert_eq!(qs.rank(), 3, "attention expects (B*H, L, Dh), got {qs}");
    assert_eq!(k.shape(), qs, "attention q/k shape mismatch");
    let (bh, l, dh) = (qs[0], qs[1], qs[2]);
    assert!(
        !lens.is_empty() && bh % lens.len() == 0,
        "batch*heads {bh} not divisible by batch {}",
        lens.len()
    );
    (bh, l, dh)
}

/// In-place softmax — the single shared implementation in
/// [`kernels::softmax_inplace`], so tape and infer can never drift.
fn softmax_inplace(row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    kernels::softmax_inplace(row);
}

/// Copies the first `len` rows of a `(L, dh)` block into `(dh, len)`
/// transposed layout.
fn transpose_block(src: &[f32], dh: usize, len: usize, dst: &mut [f32]) {
    for d in 0..dh {
        let out = &mut dst[d * len..(d + 1) * len];
        for (j, o) in out.iter_mut().enumerate() {
            *o = src[j * dh + d];
        }
    }
}

/// `out[j] = (q_row · K[j]) * scale` over the first `len` keys, streaming
/// the transposed key block.
fn scores_into(q_row: &[f32], kt: &[f32], len: usize, scale: f32, out: &mut [f32]) {
    out.fill(0.0);
    for (d, &qv) in q_row.iter().enumerate() {
        let k_row = &kt[d * len..(d + 1) * len];
        for (o, &kv) in out.iter_mut().zip(k_row) {
            *o += qv * kv;
        }
    }
    for o in out.iter_mut() {
        *o *= scale;
    }
}

/// A checkout pool of [`InferCtx`]s for concurrent serving.
///
/// An `InferCtx` is deliberately not `Sync` — its scratch arena is a
/// single-threaded bag of buffers. A serving runtime with many worker
/// threads wants one warm context per *in-flight forward pass* without
/// pinning contexts to threads (workers come and go; batches migrate).
/// `CtxPool` is the seam: [`CtxPool::checkout`] hands out an exclusive
/// [`PooledCtx`] guard (creating a fresh context only when the free list
/// is empty) and the guard's `Drop` returns the context — with all its
/// grown scratch buffers — to the free list for the next caller.
///
/// The pool itself is `Sync`; share it behind an `Arc`.
#[derive(Default)]
pub struct CtxPool {
    free: std::sync::Mutex<Vec<InferCtx>>,
}

impl CtxPool {
    /// An empty pool; contexts are created lazily on checkout.
    pub fn new() -> CtxPool {
        CtxPool::default()
    }

    /// A pool pre-warmed with `n` fresh contexts (their arenas still grow
    /// on first use; pre-warming only avoids the checkout-time creation).
    pub fn with_contexts(n: usize) -> CtxPool {
        CtxPool {
            free: std::sync::Mutex::new((0..n).map(|_| InferCtx::new()).collect()),
        }
    }

    /// Exclusive use of one context until the guard drops.
    pub fn checkout(&self) -> PooledCtx<'_> {
        let ctx = {
            let mut free = self.free.lock().unwrap_or_else(|p| p.into_inner());
            free.pop()
        };
        PooledCtx {
            pool: self,
            ctx: Some(ctx.unwrap_or_default()),
        }
    }

    /// Number of contexts currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.free.lock().unwrap_or_else(|p| p.into_inner()).len()
    }
}

/// RAII guard over a checked-out [`InferCtx`]; derefs to the context and
/// returns it to its [`CtxPool`] on drop.
pub struct PooledCtx<'a> {
    pool: &'a CtxPool,
    ctx: Option<InferCtx>,
}

impl std::ops::Deref for PooledCtx<'_> {
    type Target = InferCtx;

    fn deref(&self) -> &InferCtx {
        self.ctx.as_ref().expect("context present until drop")
    }
}

impl std::ops::DerefMut for PooledCtx<'_> {
    fn deref_mut(&mut self) -> &mut InferCtx {
        self.ctx.as_mut().expect("context present until drop")
    }
}

impl Drop for PooledCtx<'_> {
    fn drop(&mut self) {
        if let Some(ctx) = self.ctx.take() {
            let mut free = self.pool.free.lock().unwrap_or_else(|p| p.into_inner());
            free.push(ctx);
        }
    }
}

/// Tiled 2-D multiply `out = a·b (+ bias)`: rows of `a` are processed in
/// blocks of [`MR`] so each streamed row of `b` is reused from cache, with
/// per-element accumulation order identical to the row-wise kernel.
fn matmul2d_tiled(
    a: &[f32],
    b: &[f32],
    rows: usize,
    k: usize,
    n: usize,
    bias: Option<&[f32]>,
    out: &mut [f32],
) {
    let block = |row0: usize, chunk: &mut [f32]| {
        for (blk, out_blk) in chunk.chunks_mut(MR * n).enumerate() {
            let r0 = row0 + blk * MR;
            let mr = out_blk.len() / n;
            out_blk.fill(0.0);
            for kk in 0..k {
                let b_row = &b[kk * n..(kk + 1) * n];
                for r in 0..mr {
                    let av = a[(r0 + r) * k + kk];
                    if av == 0.0 {
                        continue;
                    }
                    let o_row = &mut out_blk[r * n..(r + 1) * n];
                    for (o, &bv) in o_row.iter_mut().zip(b_row) {
                        *o += av * bv;
                    }
                }
            }
            if let Some(bias) = bias {
                for r in 0..mr {
                    for (o, &bv) in out_blk[r * n..(r + 1) * n].iter_mut().zip(bias) {
                        *o += bv;
                    }
                }
            }
        }
    };
    if pool::threads() <= 1 || rows * k * n < kernels::PAR_THRESHOLD {
        block(0, out);
        return;
    }
    // Chunk on MR-aligned row boundaries so blocks never straddle chunks.
    let rows_per = pool::rows_per_lane(rows).next_multiple_of(MR);
    pool::par_chunks_mut(out, rows_per * n, |c, chunk| block(c * rows_per, chunk));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::matmul;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn randn(shape: Shape, seed: u64) -> Tensor {
        Tensor::randn(shape, 0.0, 1.0, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn matmul_matches_tape_kernel_all_flag_combos() {
        let mut ctx = InferCtx::new();
        let a = randn(Shape::d2(5, 7), 0);
        let b = randn(Shape::d2(7, 3), 1);
        let got = ctx.matmul(&a, &b, false, false);
        assert!(got.approx_eq(&matmul(&a, &b, false, false), 0.0));
        // Transposed combos (square to keep dims valid).
        let sa = randn(Shape::d2(6, 6), 2);
        let sb = randn(Shape::d2(6, 6), 3);
        for (ta, tb) in [(false, true), (true, false), (true, true)] {
            let got = ctx.matmul(&sa, &sb, ta, tb);
            assert!(
                got.approx_eq(&matmul(&sa, &sb, ta, tb), 1e-6),
                "flags ({ta}, {tb})"
            );
        }
    }

    #[test]
    fn matmul_batched_and_shared_weights() {
        let mut ctx = InferCtx::new();
        let a = randn(Shape::d3(3, 4, 5), 4);
        let b = randn(Shape::d3(3, 5, 2), 5);
        let got = ctx.matmul(&a, &b, false, false);
        assert!(got.approx_eq(&matmul(&a, &b, false, false), 0.0));
        let w = randn(Shape::d2(5, 6), 6);
        let got = ctx.matmul(&a, &w, false, false);
        assert!(got.approx_eq(&matmul(&a, &w, false, false), 1e-6));
    }

    #[test]
    fn tiled_matmul_covers_non_multiple_of_block_rows() {
        let mut ctx = InferCtx::new();
        for rows in [1usize, 2, 3, 4, 5, 7, 9] {
            let a = randn(Shape::d2(rows, 8), rows as u64);
            let b = randn(Shape::d2(8, 6), 100 + rows as u64);
            let got = ctx.matmul(&a, &b, false, false);
            assert!(
                got.approx_eq(&matmul(&a, &b, false, false), 1e-6),
                "rows={rows}"
            );
        }
    }

    #[test]
    fn linear_adds_bias() {
        let mut ctx = InferCtx::new();
        let x = randn(Shape::d2(3, 4), 7);
        let w = randn(Shape::d2(4, 2), 8);
        let bias = Tensor::from_vec(vec![0.5, -1.5], Shape::d1(2));
        let got = ctx.linear(&x, &w, &bias);
        let mut want = matmul(&x, &w, false, false);
        for row in want.data_mut().chunks_mut(2) {
            row[0] += 0.5;
            row[1] += -1.5;
        }
        assert!(got.approx_eq(&want, 1e-6));
    }

    #[test]
    fn attention_probs_rows_sum_to_one_and_mask_is_exact_zero() {
        let mut ctx = InferCtx::new();
        let q = randn(Shape::d3(4, 5, 8), 9);
        let k = randn(Shape::d3(4, 5, 8), 10);
        let lens = [3usize, 5];
        let probs = ctx.attention_probs(&q, &k, &lens);
        assert_eq!(probs.shape(), Shape::d3(4, 5, 5));
        for bh in 0..4 {
            let len = lens[bh / 2];
            for i in 0..5 {
                let row: Vec<f32> = (0..5).map(|j| probs.at3(bh, i, j)).collect();
                let s: f32 = row.iter().sum();
                assert!((s - 1.0).abs() < 1e-5, "row sum {s}");
                for (j, &p) in row.iter().enumerate() {
                    if j >= len {
                        assert_eq!(p, 0.0, "masked key got weight");
                    }
                }
            }
        }
    }

    #[test]
    fn fused_attention_matches_probs_times_v() {
        let mut ctx = InferCtx::new();
        let q = randn(Shape::d3(6, 7, 4), 11);
        let k = randn(Shape::d3(6, 7, 4), 12);
        let v = randn(Shape::d3(6, 7, 4), 13);
        let lens = [2usize, 7, 4];
        let fused = ctx.fused_attention(&q, &k, &v, &lens);
        let probs = ctx.attention_probs(&q, &k, &lens);
        let want = matmul(&probs, &v, false, false);
        assert!(fused.approx_eq(&want, 1e-6));
    }

    #[test]
    fn scratch_reuse_does_not_leak_stale_values() {
        let mut ctx = InferCtx::new();
        let a = randn(Shape::d2(9, 9), 14);
        let b = randn(Shape::d2(9, 9), 15);
        let first = ctx.matmul(&a, &b, false, false);
        let baseline = first.clone();
        ctx.recycle(first);
        // Poison the arena with a same-class buffer full of garbage.
        let poison = Tensor::full(Shape::d2(9, 9), f32::MAX);
        ctx.recycle(poison);
        for _ in 0..4 {
            let again = ctx.matmul(&a, &b, false, false);
            assert!(
                again.approx_eq(&baseline, 0.0),
                "recycled buffer leaked state"
            );
            ctx.recycle(again);
        }
    }

    #[test]
    fn layer_norm_inplace_matches_tape() {
        let mut x = randn(Shape::d2(4, 8), 16);
        let gamma = randn(Shape::d1(8), 17);
        let beta = randn(Shape::d1(8), 18);
        let mut tape = crate::Tape::new();
        let xv = tape.input(x.clone());
        let gv = tape.input(gamma.clone());
        let bv = tape.input(beta.clone());
        let want = tape.layer_norm(xv, gv, bv, 1e-5);
        InferCtx::layer_norm_inplace(&mut x, &gamma, &beta, 1e-5);
        assert!(x.approx_eq(tape.value(want), 0.0));
    }
}

#[cfg(test)]
mod pool_tests {
    use super::*;

    #[test]
    fn checkout_reuses_returned_contexts() {
        let pool = CtxPool::new();
        assert_eq!(pool.idle(), 0);
        {
            let mut ctx = pool.checkout();
            let t = ctx.alloc(Shape::d2(4, 4));
            ctx.recycle(t);
        }
        assert_eq!(pool.idle(), 1, "dropped guard must return its context");
        let a = pool.checkout();
        assert_eq!(pool.idle(), 0);
        let b = pool.checkout();
        drop(b);
        drop(a);
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn prewarmed_pool_starts_full() {
        let pool = CtxPool::with_contexts(3);
        assert_eq!(pool.idle(), 3);
        let _a = pool.checkout();
        let _b = pool.checkout();
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn pool_is_shareable_across_threads() {
        let pool = std::sync::Arc::new(CtxPool::with_contexts(2));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let pool = std::sync::Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                for _ in 0..16 {
                    let mut ctx = pool.checkout();
                    let t = ctx.alloc(Shape::d2(8, 8));
                    ctx.recycle(t);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Every checked-out context came back.
        assert!(pool.idle() >= 2 && pool.idle() <= 4 + 2);
    }
}
