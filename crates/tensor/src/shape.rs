//! Tensor shapes of rank 1–4 with copy semantics.
//!
//! Shapes are tiny fixed-capacity arrays so they can be freely copied around
//! the tape without heap traffic.

use std::fmt;

/// Maximum supported tensor rank.
pub const MAX_RANK: usize = 4;

/// The shape (dimension sizes) of a [`crate::Tensor`].
///
/// Rank is between 1 and [`MAX_RANK`]. A scalar is represented as `\[1\]`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: [usize; MAX_RANK],
    rank: u8,
}

impl Shape {
    /// Rank-1 shape `[a]`.
    pub fn d1(a: usize) -> Self {
        Shape {
            dims: [a, 1, 1, 1],
            rank: 1,
        }
    }

    /// Rank-2 shape `[a, b]`.
    pub fn d2(a: usize, b: usize) -> Self {
        Shape {
            dims: [a, b, 1, 1],
            rank: 2,
        }
    }

    /// Rank-3 shape `[a, b, c]`.
    pub fn d3(a: usize, b: usize, c: usize) -> Self {
        Shape {
            dims: [a, b, c, 1],
            rank: 3,
        }
    }

    /// Rank-4 shape `[a, b, c, d]`.
    pub fn d4(a: usize, b: usize, c: usize, d: usize) -> Self {
        Shape {
            dims: [a, b, c, d],
            rank: 4,
        }
    }

    /// Builds a shape from a slice of dimension sizes.
    ///
    /// # Panics
    /// Panics if `dims` is empty or longer than [`MAX_RANK`].
    pub fn from_slice(dims: &[usize]) -> Self {
        assert!(
            !dims.is_empty() && dims.len() <= MAX_RANK,
            "shape rank must be 1..={MAX_RANK}, got {}",
            dims.len()
        );
        let mut out = [1usize; MAX_RANK];
        out[..dims.len()].copy_from_slice(dims);
        Shape {
            dims: out,
            rank: dims.len() as u8,
        }
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank as usize
    }

    /// Total number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.dims().iter().product()
    }

    /// The dimension sizes as a slice of length `rank()`.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank as usize]
    }

    /// Size of the last dimension.
    #[inline]
    pub fn last(&self) -> usize {
        self.dims[self.rank as usize - 1]
    }

    /// Product of all dimensions except the last (i.e. the number of
    /// contiguous "rows" of length [`Shape::last`]).
    #[inline]
    pub fn rows(&self) -> usize {
        self.numel() / self.last()
    }

    /// Returns a copy with the last two dimensions swapped.
    ///
    /// # Panics
    /// Panics if rank < 2.
    pub fn transpose_last2(&self) -> Self {
        assert!(self.rank >= 2, "transpose needs rank >= 2");
        let mut s = *self;
        let r = self.rank as usize;
        s.dims.swap(r - 1, r - 2);
        s
    }
}

impl std::ops::Index<usize> for Shape {
    type Output = usize;
    #[inline]
    fn index(&self, i: usize) -> &usize {
        &self.dims()[i]
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let s = Shape::d3(2, 3, 4);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.dims(), &[2, 3, 4]);
        assert_eq!(s.last(), 4);
        assert_eq!(s.rows(), 6);
        assert_eq!(s[1], 3);
    }

    #[test]
    fn from_slice_round_trips() {
        for dims in [&[5usize][..], &[2, 7], &[1, 2, 3], &[4, 3, 2, 1]] {
            let s = Shape::from_slice(dims);
            assert_eq!(s.dims(), dims);
        }
    }

    #[test]
    fn transpose_swaps_last_two() {
        assert_eq!(Shape::d2(2, 3).transpose_last2(), Shape::d2(3, 2));
        assert_eq!(Shape::d3(5, 2, 3).transpose_last2(), Shape::d3(5, 3, 2));
    }

    #[test]
    #[should_panic(expected = "shape rank")]
    fn rejects_rank_zero() {
        Shape::from_slice(&[]);
    }

    #[test]
    fn equality_ignores_padding() {
        assert_eq!(Shape::d2(2, 3), Shape::from_slice(&[2, 3]));
        assert_ne!(Shape::d2(2, 3), Shape::d3(2, 3, 1));
    }

    #[test]
    fn display_matches_dims() {
        assert_eq!(format!("{}", Shape::d3(1, 2, 3)), "[1, 2, 3]");
    }
}
