//! The operation record stored per tape node.
//!
//! Each variant stores the parent [`Var`]s plus whatever forward-pass context
//! the backward pass needs (dropout masks, layer-norm statistics, ...).
//! Keeping ops as a closed enum (rather than boxed closures) makes the
//! reverse sweep a plain `match`, easy to audit against the textbook
//! gradient formulas.

use crate::tape::Var;
use crate::tensor::Tensor;

#[derive(Debug)]
pub(crate) enum Op {
    /// Input or parameter; no parents.
    Leaf,
    /// Elementwise `a + b`, same shapes.
    Add(Var, Var),
    /// `x + bias` where `bias` has the shape of the last dimension of `x`.
    AddBias(Var, Var),
    /// Elementwise `a - b`.
    Sub(Var, Var),
    /// Elementwise (Hadamard) `a * b`.
    Mul(Var, Var),
    /// `x * c` for a compile-time constant scalar.
    Scale(Var, f32),
    /// `x + c` for a constant scalar (gradient is pass-through).
    AddScalar(Var),
    /// `a_eff · b_eff` with per-operand transpose flags; batched.
    Matmul {
        a: Var,
        b: Var,
        ta: bool,
        tb: bool,
    },
    /// Softmax over the last dimension.
    Softmax(Var),
    /// Mean cross-entropy of `logits` rows against integer `targets`;
    /// stores the softmax probabilities for the backward pass.
    CrossEntropy {
        logits: Var,
        targets: Vec<usize>,
        probs: Tensor,
    },
    /// Layer normalisation over the last dimension with affine params.
    LayerNorm {
        x: Var,
        gamma: Var,
        beta: Var,
        mean: Tensor,
        rstd: Tensor,
    },
    Relu(Var),
    /// tanh-approximated GELU.
    Gelu(Var),
    Tanh(Var),
    Sigmoid(Var),
    /// Elementwise absolute value.
    Abs(Var),
    /// Inverted-dropout; `mask` elements are `0` or `1/(1-p)`.
    Dropout {
        x: Var,
        mask: Tensor,
    },
    /// Concatenation along the last dimension.
    Concat {
        parts: Vec<Var>,
    },
    /// `(B, L, H*Dh) -> (B*H, L, Dh)` head split for multi-head attention.
    SplitHeads {
        x: Var,
        heads: usize,
    },
    /// Inverse of [`Op::SplitHeads`].
    MergeHeads {
        x: Var,
        heads: usize,
    },
    /// Shape reinterpretation; same element count.
    Reshape(Var),
    /// Mean over the time dimension of `(B, L, D)` restricted to the first
    /// `lens[b]` positions of each sequence.
    MeanPoolMasked {
        x: Var,
        lens: Vec<usize>,
    },
    /// Row gather: `out[i, :] = table[ids[i], :]`.
    Embedding {
        table: Var,
        ids: Vec<u32>,
    },
    /// Per-row dot product of two `(R, D)` tensors -> `(R, 1)`.
    RowDot(Var, Var),
    /// Rows scaled to unit L2 norm; stores `1/||row||`.
    L2NormalizeRows {
        x: Var,
        inv_norms: Tensor,
    },
    /// Mean of all elements -> scalar.
    MeanAll(Var),
    /// Sum of all elements -> scalar.
    SumAll(Var),
    /// `x * s` where `s` is a learnable 1-element tensor.
    MulScalarVar {
        x: Var,
        s: Var,
    },
    /// `(B, L, D) -> (B, D)` slice at time `t`.
    SelectTime {
        x: Var,
        t: usize,
    },
    /// `L × (B, D) -> (B, L, D)` stack along a new time dimension.
    StackTime {
        parts: Vec<Var>,
    },
    /// 2-D convolution, NCHW layout, square kernel from `w`'s shape.
    Conv2d {
        x: Var,
        w: Var,
        bias: Var,
        stride: usize,
        pad: usize,
    },
    /// Non-overlapping max pooling with square window `size`;
    /// `argmax[i]` is the flat input index chosen for output element `i`.
    MaxPool2d {
        x: Var,
        argmax: Vec<u32>,
    },
    /// Global average pooling `(B, C, H, W) -> (B, C)`.
    AvgPool2dGlobal(Var),
}
