//! The autograd tape: forward-op constructors and node storage.
//!
//! A [`Tape`] is rebuilt for every training step (define-by-run). Nodes are
//! appended in topological order, so the backward sweep in
//! [`crate::backward`] is a single reverse iteration.

use crate::kernels::{self, matmul};
use crate::op::Op;
use crate::shape::Shape;
use crate::tensor::Tensor;
use rand::Rng;

/// Handle to a node on a [`Tape`]; a plain index, cheap to copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

/// Reverse-mode autodiff tape.
pub struct Tape {
    pub(crate) values: Vec<Tensor>,
    pub(crate) ops: Vec<Op>,
    pub(crate) requires: Vec<bool>,
    /// External parameter-store ids, used to route gradients back to the
    /// optimizer after [`Tape::backward`](crate::backward).
    pub(crate) param_binding: Vec<Option<usize>>,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Tape {
            values: Vec::with_capacity(64),
            ops: Vec::with_capacity(64),
            requires: Vec::with_capacity(64),
            param_binding: Vec::with_capacity(64),
        }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The forward value of `v`.
    #[inline]
    pub fn value(&self, v: Var) -> &Tensor {
        &self.values[v.0]
    }

    /// Shape of the forward value of `v`.
    #[inline]
    pub fn shape(&self, v: Var) -> Shape {
        self.values[v.0].shape()
    }

    fn push(&mut self, value: Tensor, op: Op, requires: bool) -> Var {
        debug_assert!(
            value.all_finite() || !cfg!(debug_assertions),
            "non-finite forward value"
        );
        self.values.push(value);
        self.ops.push(op);
        self.requires.push(requires);
        self.param_binding.push(None);
        Var(self.values.len() - 1)
    }

    fn req(&self, v: Var) -> bool {
        self.requires[v.0]
    }

    // ----- leaves ---------------------------------------------------------

    /// Records a constant input (no gradient).
    pub fn input(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Leaf, false)
    }

    /// Records a differentiable parameter bound to external id `param_id`.
    ///
    /// After [`backward`](crate::backward) the gradient for this node can be
    /// routed back to the parameter store through
    /// [`Grads::into_param_grads`](crate::backward::Grads::into_param_grads).
    pub fn param(&mut self, value: Tensor, param_id: usize) -> Var {
        let v = self.push(value, Op::Leaf, true);
        self.param_binding[v.0] = Some(param_id);
        v
    }

    // ----- elementwise ----------------------------------------------------

    /// Elementwise sum; shapes must match.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let out = self.value(a).zip_map(self.value(b), |x, y| x + y);
        let r = self.req(a) || self.req(b);
        self.push(out, Op::Add(a, b), r)
    }

    /// Adds a rank-1 bias over the last dimension of `x`.
    pub fn add_bias(&mut self, x: Var, bias: Var) -> Var {
        let xs = self.shape(x);
        let bs = self.shape(bias);
        assert_eq!(bs.rank(), 1, "bias must be rank 1, got {bs}");
        assert_eq!(bs[0], xs.last(), "bias dim {bs} != last dim of {xs}");
        let bd = self.value(bias).data().to_vec();
        let mut out = self.value(x).clone();
        for row in out.data_mut().chunks_mut(bd.len()) {
            for (o, &b) in row.iter_mut().zip(&bd) {
                *o += b;
            }
        }
        let r = self.req(x) || self.req(bias);
        self.push(out, Op::AddBias(x, bias), r)
    }

    /// Elementwise difference; shapes must match.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let out = self.value(a).zip_map(self.value(b), |x, y| x - y);
        let r = self.req(a) || self.req(b);
        self.push(out, Op::Sub(a, b), r)
    }

    /// Hadamard product; shapes must match.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let out = self.value(a).zip_map(self.value(b), |x, y| x * y);
        let r = self.req(a) || self.req(b);
        self.push(out, Op::Mul(a, b), r)
    }

    /// Multiplication by a constant scalar.
    pub fn scale(&mut self, x: Var, c: f32) -> Var {
        let out = self.value(x).map(|v| v * c);
        let r = self.req(x);
        self.push(out, Op::Scale(x, c), r)
    }

    /// Addition of a constant scalar.
    pub fn add_scalar(&mut self, x: Var, c: f32) -> Var {
        let out = self.value(x).map(|v| v + c);
        let r = self.req(x);
        self.push(out, Op::AddScalar(x), r)
    }

    // ----- linear algebra ---------------------------------------------------

    /// (Batched) matrix product with transpose flags; see
    /// [`kernels::matmul`] for the supported shape combinations.
    pub fn matmul(&mut self, a: Var, b: Var, ta: bool, tb: bool) -> Var {
        let out = matmul(self.value(a), self.value(b), ta, tb);
        let r = self.req(a) || self.req(b);
        self.push(out, Op::Matmul { a, b, ta, tb }, r)
    }

    /// Per-row dot product of two `(R, D)` tensors, returning `(R, 1)`.
    pub fn row_dot(&mut self, a: Var, b: Var) -> Var {
        let (av, bv) = (self.value(a), self.value(b));
        assert_eq!(av.shape(), bv.shape(), "row_dot shape mismatch");
        let d = av.shape().last();
        let rows = av.shape().rows();
        let mut out = Tensor::zeros(Shape::d2(rows, 1));
        for i in 0..rows {
            out.data_mut()[i] = kernels::dot(
                &av.data()[i * d..(i + 1) * d],
                &bv.data()[i * d..(i + 1) * d],
            );
        }
        let r = self.req(a) || self.req(b);
        self.push(out, Op::RowDot(a, b), r)
    }

    // ----- nonlinearities ----------------------------------------------------

    /// Numerically-stable softmax over the last dimension.
    pub fn softmax(&mut self, x: Var) -> Var {
        let xv = self.value(x);
        let mut out = Tensor::zeros(xv.shape());
        kernels::softmax_rows(xv.data(), xv.shape().last(), out.data_mut());
        let r = self.req(x);
        self.push(out, Op::Softmax(x), r)
    }

    /// ReLU.
    pub fn relu(&mut self, x: Var) -> Var {
        let out = self.value(x).map(|v| v.max(0.0));
        let r = self.req(x);
        self.push(out, Op::Relu(x), r)
    }

    /// GELU (tanh approximation).
    pub fn gelu(&mut self, x: Var) -> Var {
        let out = self.value(x).map(gelu_fwd);
        let r = self.req(x);
        self.push(out, Op::Gelu(x), r)
    }

    /// Hyperbolic tangent.
    pub fn tanh_op(&mut self, x: Var) -> Var {
        let out = self.value(x).map(f32::tanh);
        let r = self.req(x);
        self.push(out, Op::Tanh(x), r)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, x: Var) -> Var {
        let out = self.value(x).map(|v| 1.0 / (1.0 + (-v).exp()));
        let r = self.req(x);
        self.push(out, Op::Sigmoid(x), r)
    }

    /// Elementwise absolute value.
    pub fn abs_op(&mut self, x: Var) -> Var {
        let out = self.value(x).map(f32::abs);
        let r = self.req(x);
        self.push(out, Op::Abs(x), r)
    }

    /// Inverted dropout: keeps elements with probability `1-p` and scales
    /// them by `1/(1-p)`. Identity when `training` is false or `p == 0`.
    pub fn dropout(&mut self, x: Var, p: f32, training: bool, rng: &mut impl Rng) -> Var {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout p must be in [0,1), got {p}"
        );
        if !training || p == 0.0 {
            // Record a no-op pass-through so graph structure is stable.
            let out = self.value(x).clone();
            let mask = Tensor::ones(out.shape());
            let r = self.req(x);
            return self.push(out, Op::Dropout { x, mask }, r);
        }
        let keep = 1.0 - p;
        let inv = 1.0 / keep;
        let xv = self.value(x);
        let mut mask = Tensor::zeros(xv.shape());
        for m in mask.data_mut() {
            if rng.gen::<f32>() < keep {
                *m = inv;
            }
        }
        let out = xv.zip_map(&mask, |v, m| v * m);
        let r = self.req(x);
        self.push(out, Op::Dropout { x, mask }, r)
    }

    // ----- normalisation ----------------------------------------------------

    /// Layer normalisation over the last dimension, with learnable `gamma`
    /// (scale) and `beta` (shift), both rank-1 of that dimension.
    pub fn layer_norm(&mut self, x: Var, gamma: Var, beta: Var, eps: f32) -> Var {
        let xs = self.shape(x);
        let d = xs.last();
        assert_eq!(self.shape(gamma), Shape::d1(d), "layer_norm gamma shape");
        assert_eq!(self.shape(beta), Shape::d1(d), "layer_norm beta shape");
        let rows = xs.rows();
        let mut mean = Tensor::zeros(Shape::d1(rows));
        let mut rstd = Tensor::zeros(Shape::d1(rows));
        let mut out = Tensor::zeros(xs);
        {
            let xv = self.value(x).data();
            let g = self.value(gamma).data();
            let b = self.value(beta).data();
            for i in 0..rows {
                let row = &xv[i * d..(i + 1) * d];
                let mu: f32 = row.iter().sum::<f32>() / d as f32;
                let var: f32 = row.iter().map(|v| (v - mu) * (v - mu)).sum::<f32>() / d as f32;
                let rs = 1.0 / (var + eps).sqrt();
                mean.data_mut()[i] = mu;
                rstd.data_mut()[i] = rs;
                let orow = &mut out.data_mut()[i * d..(i + 1) * d];
                for j in 0..d {
                    orow[j] = (row[j] - mu) * rs * g[j] + b[j];
                }
            }
        }
        let r = self.req(x) || self.req(gamma) || self.req(beta);
        self.push(
            out,
            Op::LayerNorm {
                x,
                gamma,
                beta,
                mean,
                rstd,
            },
            r,
        )
    }

    /// Scales each row of a rank-2 tensor to unit L2 norm.
    pub fn l2_normalize_rows(&mut self, x: Var) -> Var {
        let xv = self.value(x);
        let d = xv.shape().last();
        let rows = xv.shape().rows();
        let mut inv_norms = Tensor::zeros(Shape::d1(rows));
        let mut out = xv.clone();
        for i in 0..rows {
            let row = &mut out.data_mut()[i * d..(i + 1) * d];
            let n = row.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-12);
            let inv = 1.0 / n;
            inv_norms.data_mut()[i] = inv;
            for v in row.iter_mut() {
                *v *= inv;
            }
        }
        let r = self.req(x);
        self.push(out, Op::L2NormalizeRows { x, inv_norms }, r)
    }

    // ----- shape plumbing ---------------------------------------------------

    /// Concatenates along the last dimension; leading dimensions must match.
    pub fn concat(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat of zero parts");
        let rows = self.shape(parts[0]).rows();
        let mut widths = Vec::with_capacity(parts.len());
        for &p in parts {
            assert_eq!(self.shape(p).rows(), rows, "concat leading dims mismatch");
            widths.push(self.shape(p).last());
        }
        let total: usize = widths.iter().sum();
        let lead = self.shape(parts[0]);
        let mut dims = lead.dims().to_vec();
        *dims.last_mut().unwrap() = total;
        let mut out = Tensor::zeros(Shape::from_slice(&dims));
        {
            let od = out.data_mut();
            let mut off = 0;
            for (&p, &w) in parts.iter().zip(&widths) {
                let pd = self.values[p.0].data();
                for i in 0..rows {
                    od[i * total + off..i * total + off + w]
                        .copy_from_slice(&pd[i * w..(i + 1) * w]);
                }
                off += w;
            }
        }
        let r = parts.iter().any(|&p| self.req(p));
        self.push(
            out,
            Op::Concat {
                parts: parts.to_vec(),
            },
            r,
        )
    }

    /// `(B, L, H*Dh) -> (B*H, L, Dh)` for multi-head attention.
    pub fn split_heads(&mut self, x: Var, heads: usize) -> Var {
        let xs = self.shape(x);
        assert_eq!(xs.rank(), 3, "split_heads expects rank 3, got {xs}");
        let (b, l, d) = (xs[0], xs[1], xs[2]);
        assert_eq!(d % heads, 0, "model dim {d} not divisible by {heads} heads");
        let dh = d / heads;
        let mut out = Tensor::zeros(Shape::d3(b * heads, l, dh));
        split_heads_copy(self.value(x).data(), out.data_mut(), b, l, heads, dh, false);
        let r = self.req(x);
        self.push(out, Op::SplitHeads { x, heads }, r)
    }

    /// `(B*H, L, Dh) -> (B, L, H*Dh)`, inverse of [`Tape::split_heads`].
    pub fn merge_heads(&mut self, x: Var, heads: usize) -> Var {
        let xs = self.shape(x);
        assert_eq!(xs.rank(), 3, "merge_heads expects rank 3, got {xs}");
        let (bh, l, dh) = (xs[0], xs[1], xs[2]);
        assert_eq!(bh % heads, 0, "batch*heads {bh} not divisible by {heads}");
        let b = bh / heads;
        let mut out = Tensor::zeros(Shape::d3(b, l, heads * dh));
        split_heads_copy(self.value(x).data(), out.data_mut(), b, l, heads, dh, true);
        let r = self.req(x);
        self.push(out, Op::MergeHeads { x, heads }, r)
    }

    /// Reinterprets the value under a new shape (same element count).
    pub fn reshape(&mut self, x: Var, shape: Shape) -> Var {
        let out = self.value(x).clone().reshaped(shape);
        let r = self.req(x);
        self.push(out, Op::Reshape(x), r)
    }

    /// `(B, L, D)` slice at time step `t`, producing `(B, D)`.
    pub fn select_time(&mut self, x: Var, t: usize) -> Var {
        let xs = self.shape(x);
        assert_eq!(xs.rank(), 3, "select_time expects rank 3");
        let (b, l, d) = (xs[0], xs[1], xs[2]);
        assert!(t < l, "time index {t} out of range {l}");
        let mut out = Tensor::zeros(Shape::d2(b, d));
        for bi in 0..b {
            let src = &self.value(x).data()[(bi * l + t) * d..(bi * l + t + 1) * d];
            out.data_mut()[bi * d..(bi + 1) * d].copy_from_slice(src);
        }
        let r = self.req(x);
        self.push(out, Op::SelectTime { x, t }, r)
    }

    /// Stacks `L` tensors of shape `(B, D)` into `(B, L, D)`.
    pub fn stack_time(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "stack_time of zero parts");
        let s0 = self.shape(parts[0]);
        assert_eq!(s0.rank(), 2, "stack_time parts must be rank 2");
        let (b, d) = (s0[0], s0[1]);
        let l = parts.len();
        let mut out = Tensor::zeros(Shape::d3(b, l, d));
        for (t, &p) in parts.iter().enumerate() {
            assert_eq!(self.shape(p), s0, "stack_time shape mismatch at {t}");
            let pd = self.values[p.0].data();
            for bi in 0..b {
                out.data_mut()[(bi * l + t) * d..(bi * l + t + 1) * d]
                    .copy_from_slice(&pd[bi * d..(bi + 1) * d]);
            }
        }
        let r = parts.iter().any(|&p| self.req(p));
        self.push(
            out,
            Op::StackTime {
                parts: parts.to_vec(),
            },
            r,
        )
    }

    // ----- pooling / gathering ----------------------------------------------

    /// Masked mean over time: averages the first `lens[b]` positions of each
    /// sequence in a `(B, L, D)` tensor, producing `(B, D)`.
    pub fn mean_pool_masked(&mut self, x: Var, lens: &[usize]) -> Var {
        let xs = self.shape(x);
        assert_eq!(xs.rank(), 3, "mean_pool_masked expects rank 3");
        let (b, l, d) = (xs[0], xs[1], xs[2]);
        assert_eq!(lens.len(), b, "lens length must equal batch");
        let mut out = Tensor::zeros(Shape::d2(b, d));
        for (bi, &len) in lens.iter().enumerate() {
            assert!(len >= 1 && len <= l, "invalid length {len} for L={l}");
            let inv = 1.0 / len as f32;
            let orow = &mut out.data_mut()[bi * d..(bi + 1) * d];
            for t in 0..len {
                let src = &self.values[x.0].data()[(bi * l + t) * d..(bi * l + t + 1) * d];
                for (o, &v) in orow.iter_mut().zip(src) {
                    *o += v * inv;
                }
            }
        }
        let r = self.req(x);
        self.push(
            out,
            Op::MeanPoolMasked {
                x,
                lens: lens.to_vec(),
            },
            r,
        )
    }

    /// Row gather from an embedding `table` of shape `(V, D)`:
    /// `out[i, :] = table[ids[i], :]`, producing `(N, D)`.
    pub fn embedding(&mut self, table: Var, ids: &[u32]) -> Var {
        let ts = self.shape(table);
        assert_eq!(ts.rank(), 2, "embedding table must be rank 2");
        let (v, d) = (ts[0], ts[1]);
        let mut out = Tensor::zeros(Shape::d2(ids.len(), d));
        for (i, &id) in ids.iter().enumerate() {
            assert!((id as usize) < v, "embedding id {id} out of range {v}");
            let src = &self.values[table.0].data()[id as usize * d..(id as usize + 1) * d];
            out.data_mut()[i * d..(i + 1) * d].copy_from_slice(src);
        }
        let r = self.req(table);
        self.push(
            out,
            Op::Embedding {
                table,
                ids: ids.to_vec(),
            },
            r,
        )
    }

    // ----- reductions / losses ------------------------------------------------

    /// Mean of all elements, producing a scalar node.
    pub fn mean_all(&mut self, x: Var) -> Var {
        let out = Tensor::scalar(self.value(x).mean());
        let r = self.req(x);
        self.push(out, Op::MeanAll(x), r)
    }

    /// Sum of all elements, producing a scalar node.
    pub fn sum_all(&mut self, x: Var) -> Var {
        let out = Tensor::scalar(self.value(x).sum());
        let r = self.req(x);
        self.push(out, Op::SumAll(x), r)
    }

    /// Mean cross-entropy between `(B, C)` logits and integer class targets.
    pub fn cross_entropy(&mut self, logits: Var, targets: &[usize]) -> Var {
        let ls = self.shape(logits);
        assert_eq!(ls.rank(), 2, "cross_entropy expects rank-2 logits");
        let (b, c) = (ls[0], ls[1]);
        assert_eq!(targets.len(), b, "targets length must equal batch");
        let mut probs = Tensor::zeros(ls);
        kernels::softmax_rows(self.value(logits).data(), c, probs.data_mut());
        let mut loss = 0.0;
        for (i, &t) in targets.iter().enumerate() {
            assert!(t < c, "target {t} out of range {c}");
            loss -= probs.data()[i * c + t].max(1e-12).ln();
        }
        let out = Tensor::scalar(loss / b as f32);
        let r = self.req(logits);
        self.push(
            out,
            Op::CrossEntropy {
                logits,
                targets: targets.to_vec(),
                probs,
            },
            r,
        )
    }

    /// `x * s` with a learnable 1-element scale `s` (e.g. the γ fusion weight
    /// in DualMSM).
    pub fn mul_scalar_var(&mut self, x: Var, s: Var) -> Var {
        assert_eq!(self.shape(s).numel(), 1, "scale must be a single element");
        let sv = self.value(s).data()[0];
        let out = self.value(x).map(|v| v * sv);
        let r = self.req(x) || self.req(s);
        self.push(out, Op::MulScalarVar { x, s }, r)
    }

    // ----- convolution (for the TrjSR baseline) -------------------------------

    /// 2-D convolution in NCHW layout with square stride and zero padding.
    ///
    /// `x: (B, C, H, W)`, `w: (O, C, K, K)`, `bias: (O)`.
    pub fn conv2d(&mut self, x: Var, w: Var, bias: Var, stride: usize, pad: usize) -> Var {
        let xs = self.shape(x);
        let ws = self.shape(w);
        assert_eq!(xs.rank(), 4, "conv2d input must be rank 4 (NCHW)");
        assert_eq!(ws.rank(), 4, "conv2d weight must be rank 4 (OCKK)");
        let (b, c, h, wd) = (xs[0], xs[1], xs[2], xs[3]);
        let (o, cw, kh, kw) = (ws[0], ws[1], ws[2], ws[3]);
        assert_eq!(c, cw, "conv2d channel mismatch");
        assert_eq!(self.shape(bias), Shape::d1(o), "conv2d bias shape");
        let oh = (h + 2 * pad - kh) / stride + 1;
        let ow = (wd + 2 * pad - kw) / stride + 1;
        let mut out = Tensor::zeros(Shape::d4(b, o, oh, ow));
        {
            let xd = self.value(x).data();
            let wdt = self.value(w).data();
            let bd = self.value(bias).data();
            let plane = oh * ow;
            kernels::for_each_row(out.data_mut(), plane, c * kh * kw * plane, |r, orow| {
                let (bi, oc) = (r / o, r % o);
                conv2d_plane(
                    xd, wdt, bd[oc], bi, oc, c, h, wd, kh, kw, stride, pad, oh, ow, orow,
                );
            });
        }
        let r = self.req(x) || self.req(w) || self.req(bias);
        self.push(
            out,
            Op::Conv2d {
                x,
                w,
                bias,
                stride,
                pad,
            },
            r,
        )
    }

    /// Non-overlapping max pooling with a square `size` window.
    pub fn max_pool2d(&mut self, x: Var, size: usize) -> Var {
        let xs = self.shape(x);
        assert_eq!(xs.rank(), 4, "max_pool2d input must be rank 4");
        let (b, c, h, w) = (xs[0], xs[1], xs[2], xs[3]);
        assert!(
            h % size == 0 && w % size == 0,
            "pool size must divide H and W"
        );
        let (oh, ow) = (h / size, w / size);
        let mut out = Tensor::zeros(Shape::d4(b, c, oh, ow));
        let mut argmax = vec![0u32; out.numel()];
        {
            let xd = self.value(x).data();
            let od = out.data_mut();
            let mut oi = 0;
            for bc in 0..b * c {
                let base = bc * h * w;
                for i in 0..oh {
                    for j in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for di in 0..size {
                            for dj in 0..size {
                                let idx = base + (i * size + di) * w + (j * size + dj);
                                if xd[idx] > best {
                                    best = xd[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        od[oi] = best;
                        argmax[oi] = best_idx as u32;
                        oi += 1;
                    }
                }
            }
        }
        let r = self.req(x);
        self.push(out, Op::MaxPool2d { x, argmax }, r)
    }

    /// Global average pooling `(B, C, H, W) -> (B, C)`.
    pub fn avg_pool2d_global(&mut self, x: Var) -> Var {
        let xs = self.shape(x);
        assert_eq!(xs.rank(), 4, "avg_pool2d_global input must be rank 4");
        let (b, c, h, w) = (xs[0], xs[1], xs[2], xs[3]);
        let inv = 1.0 / (h * w) as f32;
        let mut out = Tensor::zeros(Shape::d2(b, c));
        for bc in 0..b * c {
            let plane = &self.value(x).data()[bc * h * w..(bc + 1) * h * w];
            out.data_mut()[bc] = plane.iter().sum::<f32>() * inv;
        }
        let r = self.req(x);
        self.push(out, Op::AvgPool2dGlobal(x), r)
    }
}

/// Shared index shuffle for head split/merge.
///
/// `reverse = false`: src is `(B, L, H*Dh)`, dst is `(B*H, L, Dh)`.
/// `reverse = true` : src is `(B*H, L, Dh)`, dst is `(B, L, H*Dh)`.
pub(crate) fn split_heads_copy(
    src: &[f32],
    dst: &mut [f32],
    b: usize,
    l: usize,
    heads: usize,
    dh: usize,
    reverse: bool,
) {
    for bi in 0..b {
        for h in 0..heads {
            for t in 0..l {
                let packed = (bi * l + t) * heads * dh + h * dh;
                let split = ((bi * heads + h) * l + t) * dh;
                if reverse {
                    dst[packed..packed + dh].copy_from_slice(&src[split..split + dh]);
                } else {
                    dst[split..split + dh].copy_from_slice(&src[packed..packed + dh]);
                }
            }
        }
    }
}

fn gelu_fwd(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

/// Derivative of the tanh-approximated GELU; used by the backward pass.
pub(crate) fn gelu_bwd(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = x * x * x;
    let inner = C * (x + 0.044715 * x3);
    let t = inner.tanh();
    let dinner = C * (1.0 + 3.0 * 0.044715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * dinner
}

#[allow(clippy::too_many_arguments)]
fn conv2d_plane(
    x: &[f32],
    w: &[f32],
    bias: f32,
    bi: usize,
    oc: usize,
    c: usize,
    h: usize,
    wd: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    oh: usize,
    ow: usize,
    out: &mut [f32],
) {
    for i in 0..oh {
        for j in 0..ow {
            let mut acc = bias;
            for ci in 0..c {
                let xbase = (bi * c + ci) * h * wd;
                let wbase = (oc * c + ci) * kh * kw;
                for di in 0..kh {
                    let yi = (i * stride + di) as isize - pad as isize;
                    if yi < 0 || yi as usize >= h {
                        continue;
                    }
                    for dj in 0..kw {
                        let xj = (j * stride + dj) as isize - pad as isize;
                        if xj < 0 || xj as usize >= wd {
                            continue;
                        }
                        acc += x[xbase + yi as usize * wd + xj as usize] * w[wbase + di * kw + dj];
                    }
                }
            }
            out[i * ow + j] = acc;
        }
    }
}
