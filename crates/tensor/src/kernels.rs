//! Raw numeric kernels shared by the forward and backward passes.
//!
//! Everything here operates on plain slices; the tape layer handles shapes,
//! broadcasting decisions and gradient bookkeeping.

use crate::pool;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Work (in f32 multiply-adds) below which kernels stay single-threaded.
/// Even with the persistent pool a parallel region costs queue traffic and
/// a latch; this keeps small ops cheap while letting attention-sized
/// matmuls use all cores.
pub(crate) const PAR_THRESHOLD: usize = 1 << 17;

/// Runs `f(row_index, row)` over contiguous rows of `out`, in parallel on
/// the shared [`pool`] when the total work estimate is large enough.
///
/// `work_per_row` is an estimate in multiply-adds used for the threshold
/// decision only.
#[allow(clippy::manual_is_multiple_of)]
pub fn for_each_row(
    out: &mut [f32],
    row_len: usize,
    work_per_row: usize,
    f: impl Fn(usize, &mut [f32]) + Sync,
) {
    debug_assert!(row_len > 0 && out.len() % row_len == 0);
    let n_rows = out.len() / row_len;
    let threads = pool::threads();
    if threads <= 1 || n_rows <= 1 || n_rows * work_per_row < PAR_THRESHOLD {
        for (i, row) in out.chunks_mut(row_len).enumerate() {
            f(i, row);
        }
        return;
    }
    let rows_per = pool::rows_per_lane(n_rows);
    pool::par_chunks_mut(out, rows_per * row_len, |c, chunk| {
        for (i, row) in chunk.chunks_mut(row_len).enumerate() {
            f(c * rows_per + i, row);
        }
    });
}

/// Dimensions of one side of a (possibly batched) matmul after resolving the
/// transpose flag.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MatDims {
    pub batch: usize,
    pub rows: usize,
    pub cols: usize,
}

pub(crate) fn mat_dims(shape: Shape, transposed: bool) -> MatDims {
    let r = shape.rank();
    assert!(r >= 2, "matmul operand must have rank >= 2, got {shape}");
    let (mut rows, mut cols) = (shape[r - 2], shape[r - 1]);
    if transposed {
        std::mem::swap(&mut rows, &mut cols);
    }
    MatDims {
        batch: shape.numel() / (rows * cols),
        rows,
        cols,
    }
}

/// General (optionally batched / transposed) matrix multiply:
/// `out = a_eff · b_eff` where `x_eff` is `x` with its last two dims swapped
/// when the corresponding flag is set.
///
/// Supported batch combinations (Ba = batch of a, Bb = batch of b):
/// * `Ba == Bb` — per-batch multiply;
/// * `Bb == 1`  — shared right operand (e.g. weights);
/// * `Ba == 1`  — shared left operand.
///
/// # Panics
/// Panics on inner-dimension or batch mismatch.
pub fn matmul(a: &Tensor, b: &Tensor, ta: bool, tb: bool) -> Tensor {
    let da = mat_dims(a.shape(), ta);
    let db = mat_dims(b.shape(), tb);
    assert_eq!(
        da.cols,
        db.rows,
        "matmul inner dims mismatch: {}{} x {}{}",
        a.shape(),
        if ta { "^T" } else { "" },
        b.shape(),
        if tb { "^T" } else { "" }
    );
    let batch = match (da.batch, db.batch) {
        (x, y) if x == y => x,
        (x, 1) => x,
        (1, y) => y,
        (x, y) => panic!("matmul batch mismatch: {x} vs {y}"),
    };
    let (m, k, n) = (da.rows, da.cols, db.cols);
    let out_shape = if batch == 1 && a.shape().rank() == 2 && b.shape().rank() == 2 {
        Shape::d2(m, n)
    } else {
        Shape::d3(batch, m, n)
    };
    let mut out = Tensor::zeros(out_shape);

    let a_stride = if da.batch == 1 { 0 } else { m * k };
    let b_stride = if db.batch == 1 { 0 } else { k * n };
    let ad = a.data();
    let bd = b.data();
    // Parallelise over all (batch, row) pairs: each output row is independent.
    for_each_row(out.data_mut(), n, k * n, |r, out_row| {
        let (bi, i) = (r / m, r % m);
        let a_mat = &ad[bi * a_stride..bi * a_stride + m * k];
        let b_mat = &bd[bi * b_stride..bi * b_stride + k * n];
        matmul_row_into(a_mat, b_mat, i, m, k, n, ta, tb, out_row);
    });
    out
}

/// Accumulating variant: `acc += a_eff · b_eff` where `acc` already has the
/// right shape. Used by backward passes that sum gradient contributions over
/// the batch dimension (e.g. shared weight matrices).
pub fn matmul_acc_into(acc: &mut Tensor, a: &Tensor, b: &Tensor, ta: bool, tb: bool) {
    let prod = matmul(a, b, ta, tb);
    if prod.shape() == acc.shape() {
        acc.add_assign_scaled(&prod, 1.0);
        return;
    }
    // Batched product reduced into a rank-2 accumulator: sum over batch.
    let ps = prod.shape();
    assert!(
        ps.rank() == 3 && Shape::d2(ps[1], ps[2]) == acc.shape(),
        "matmul_acc_into: cannot reduce {ps} into {}",
        acc.shape()
    );
    let mn = ps[1] * ps[2];
    let accd = acc.data_mut();
    for bi in 0..ps[0] {
        let src = &prod.data()[bi * mn..(bi + 1) * mn];
        for (x, &y) in accd.iter_mut().zip(src) {
            *x += y;
        }
    }
}

/// Accumulates one output row `out_row += a_eff[i, :] · b_eff` (also used
/// by the tape-free kernels in [`crate::infer`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn matmul_row_into(
    a: &[f32],
    b: &[f32],
    i: usize,
    m: usize,
    k: usize,
    n: usize,
    ta: bool,
    tb: bool,
    out_row: &mut [f32],
) {
    debug_assert_eq!(out_row.len(), n);
    match (ta, tb) {
        (false, false) => {
            // Row of a is contiguous; iterate k outer for streaming access to b.
            let a_row = &a[i * k..(i + 1) * k];
            for (kk, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b_row = &b[kk * n..(kk + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
        (false, true) => {
            // b_eff[kk, j] = b[j, kk]; rows of both operands are contiguous.
            let a_row = &a[i * k..(i + 1) * k];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &b[j * k..(j + 1) * k];
                *o += dot(a_row, b_row);
            }
        }
        (true, false) => {
            // a_eff[i, kk] = a[kk, i]: strided reads of a, streaming b.
            for kk in 0..k {
                let av = a[kk * m + i];
                if av == 0.0 {
                    continue;
                }
                let b_row = &b[kk * n..(kk + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
        (true, true) => {
            // a_eff[i, kk] = a[kk*m + i] (a stored (k, m));
            // b_eff[kk, j] = b[j*k + kk] (b stored (n, k)).
            // Gather a's column once (k strided reads) instead of repeating
            // the strided walk for every j (n*k strided reads); the dots
            // against b's rows then stream both operands.
            let mut a_col = [0.0f32; COL_TILE];
            let mut col_heap;
            let col: &mut [f32] = if k <= COL_TILE {
                &mut a_col[..k]
            } else {
                col_heap = vec![0.0f32; k];
                &mut col_heap
            };
            for (kk, c) in col.iter_mut().enumerate() {
                *c = a[kk * m + i];
            }
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &b[j * k..(j + 1) * k];
                let mut acc = 0.0;
                for (&av, &bv) in col.iter().zip(b_row) {
                    acc += av * bv;
                }
                *o += acc;
            }
        }
    }
}

/// Plain dot product.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    // Unrolled by 4 to help auto-vectorisation.
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        acc[0] += a[i] * b[i];
        acc[1] += a[i + 1] * b[i + 1];
        acc[2] += a[i + 2] * b[i + 2];
        acc[3] += a[i + 3] * b[i + 3];
    }
    let mut total = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        total += a[i] * b[i];
    }
    total
}

/// Stack-buffer size for the `(true, true)` matmul column gather.
const COL_TILE: usize = 256;

/// Numerically-stable softmax over the last dimension, written into `out`;
/// rows are processed in parallel on the shared pool when the input is
/// attention-sized.
pub fn softmax_rows(x: &[f32], row_len: usize, out: &mut [f32]) {
    debug_assert_eq!(x.len(), out.len());
    let n_rows = x.len() / row_len.max(1);
    // ~4 flops per element (max, sub, exp≈amortised, scale).
    if pool::threads() <= 1 || n_rows <= 1 || x.len() * 4 < PAR_THRESHOLD {
        for (xr, or) in x.chunks(row_len).zip(out.chunks_mut(row_len)) {
            softmax_row(xr, or);
        }
        return;
    }
    let rows_per = pool::rows_per_lane(n_rows);
    pool::par_chunks_mut(out, rows_per * row_len, |c, chunk| {
        let start = c * rows_per * row_len;
        let xs = &x[start..start + chunk.len()];
        for (xr, or) in xs.chunks(row_len).zip(chunk.chunks_mut(row_len)) {
            softmax_row(xr, or);
        }
    });
}

/// One softmax row into a separate output buffer (the tape-side wrapper
/// around [`softmax_inplace`]).
#[inline]
pub(crate) fn softmax_row(xr: &[f32], or: &mut [f32]) {
    or.copy_from_slice(xr);
    softmax_inplace(or);
}

/// The one softmax implementation: max-shift, exp pass (vectorisable — no
/// reduction in the loop), unrolled sum, normalise. Shared by the tape's
/// [`softmax_rows`] and every fused kernel in [`crate::infer`] so the two
/// paths can never drift numerically.
#[inline]
pub(crate) fn softmax_inplace(row: &mut [f32]) {
    let max = max_unrolled(row);
    if !max.is_finite() {
        // Entire row masked out: define softmax as uniform to avoid NaNs.
        let u = 1.0 / row.len() as f32;
        row.fill(u);
        return;
    }
    for v in row.iter_mut() {
        *v = exp_fast(*v - max);
    }
    let inv = 1.0 / sum_unrolled(row);
    for v in row.iter_mut() {
        *v *= inv;
    }
}

/// 4-lane unrolled sum (breaks the serial float-add dependency chain the
/// same way [`dot`] does).
#[inline]
pub(crate) fn sum_unrolled(xs: &[f32]) -> f32 {
    let mut acc = [0.0f32; 4];
    let chunks = xs.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        acc[0] += xs[i];
        acc[1] += xs[i + 1];
        acc[2] += xs[i + 2];
        acc[3] += xs[i + 3];
    }
    let mut total = acc[0] + acc[1] + acc[2] + acc[3];
    for &v in &xs[chunks * 4..] {
        total += v;
    }
    total
}

/// 4-lane unrolled max (float max is associative, so lanes are exact).
#[inline]
pub(crate) fn max_unrolled(xs: &[f32]) -> f32 {
    let mut acc = [f32::NEG_INFINITY; 4];
    let chunks = xs.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        acc[0] = acc[0].max(xs[i]);
        acc[1] = acc[1].max(xs[i + 1]);
        acc[2] = acc[2].max(xs[i + 2]);
        acc[3] = acc[3].max(xs[i + 3]);
    }
    let mut m = acc[0].max(acc[1]).max(acc[2]).max(acc[3]);
    for &v in &xs[chunks * 4..] {
        m = m.max(v);
    }
    m
}

/// Fast branchless `exp` (Cephes-style argument reduction + degree-6
/// polynomial, ~2e-7 relative error). `libm`'s `expf` dominates softmax
/// cost at attention sizes; this version auto-vectorises inside the row
/// loops. Inputs are clamped to the finite range, so very negative masked
/// scores come out as ~1e-38 instead of exactly 0 — indistinguishable
/// after normalisation.
#[inline]
pub fn exp_fast(x: f32) -> f32 {
    const LOG2E: f32 = std::f32::consts::LOG2_E;
    const LN2_HI: f32 = 0.693_359_4;
    const LN2_LO: f32 = -2.121_944_4e-4;
    let x = x.clamp(-87.3, 88.0);
    // Round-to-nearest-even via the 1.5·2²³ magic constant: plain add/sub,
    // so the loop vectorises on the baseline target (no SSE4.1 `roundps`).
    const MAGIC: f32 = 12_582_912.0;
    let n = (x * LOG2E + MAGIC) - MAGIC;
    let r = x - n * LN2_HI - n * LN2_LO;
    let mut p = 1.987_569_1e-4f32;
    p = p * r + 1.398_199_9e-3;
    p = p * r + 8.333_452e-3;
    p = p * r + 4.166_579_6e-2;
    p = p * r + 1.666_666_5e-1;
    p = p * r + 5.000_000_3e-1;
    let e = p * (r * r) + r + 1.0;
    // Scale by 2^n through the exponent bits (n ∈ [-126, 127] after clamp).
    f32::from_bits(((n as i32 + 127) << 23) as u32) * e
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2(data: Vec<f32>, r: usize, c: usize) -> Tensor {
        Tensor::from_vec(data, Shape::d2(r, c))
    }

    #[test]
    fn matmul_2x2_identity() {
        let a = t2(vec![1., 2., 3., 4.], 2, 2);
        let i = t2(vec![1., 0., 0., 1.], 2, 2);
        assert_eq!(matmul(&a, &i, false, false).data(), a.data());
        assert_eq!(matmul(&i, &a, false, false).data(), a.data());
    }

    #[test]
    fn matmul_rect() {
        // (2,3) x (3,2)
        let a = t2(vec![1., 2., 3., 4., 5., 6.], 2, 3);
        let b = t2(vec![7., 8., 9., 10., 11., 12.], 3, 2);
        let c = matmul(&a, &b, false, false);
        assert_eq!(c.shape(), Shape::d2(2, 2));
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_transpose_flags_agree_with_materialized() {
        let a = t2(vec![1., 2., 3., 4., 5., 6.], 2, 3);
        let b = t2(vec![1., -1., 2., 0.5, 3., -2.], 2, 3);
        // a (2,3) x b^T (3,2)
        let via_flag = matmul(&a, &b, false, true);
        let via_mat = matmul(&a, &b.transpose_last2(), false, false);
        assert!(via_flag.approx_eq(&via_mat, 1e-6));
        // a^T (3,2) x b (2,3)
        let via_flag = matmul(&a, &b, true, false);
        let via_mat = matmul(&a.transpose_last2(), &b, false, false);
        assert!(via_flag.approx_eq(&via_mat, 1e-6));
        // a^T x b^T (3,3)... inner dims: a^T is (3,2), b^T is (3,2) -> mismatch;
        // use square operands instead.
        let sa = t2(vec![1., 2., 3., 4.], 2, 2);
        let sb = t2(vec![5., 6., 7., 8.], 2, 2);
        let via_flag = matmul(&sa, &sb, true, true);
        let via_mat = matmul(&sa.transpose_last2(), &sb.transpose_last2(), false, false);
        assert!(via_flag.approx_eq(&via_mat, 1e-6));
    }

    #[test]
    fn matmul_double_transpose_large_k_heap_path() {
        // k > COL_TILE exercises the heap-allocated column gather.
        let k = COL_TILE + 37;
        let mut rng_state = 1u64;
        let mut next = || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((rng_state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        let a = t2((0..k * 3).map(|_| next()).collect(), k, 3);
        let b = t2((0..2 * k).map(|_| next()).collect(), 2, k);
        let via_flag = matmul(&a, &b, true, true);
        let via_mat = matmul(&a.transpose_last2(), &b.transpose_last2(), false, false);
        assert!(via_flag.approx_eq(&via_mat, 1e-4));
    }

    #[test]
    fn matmul_batched_matches_loop() {
        let a = Tensor::from_vec(
            (0..12).map(|x| x as f32 * 0.5).collect(),
            Shape::d3(2, 2, 3),
        );
        let b = Tensor::from_vec(
            (0..12).map(|x| 1.0 - x as f32 * 0.25).collect(),
            Shape::d3(2, 3, 2),
        );
        let c = matmul(&a, &b, false, false);
        assert_eq!(c.shape(), Shape::d3(2, 2, 2));
        for bi in 0..2 {
            let am = t2(a.data()[bi * 6..(bi + 1) * 6].to_vec(), 2, 3);
            let bm = t2(b.data()[bi * 6..(bi + 1) * 6].to_vec(), 3, 2);
            let cm = matmul(&am, &bm, false, false);
            assert_eq!(&c.data()[bi * 4..(bi + 1) * 4], cm.data());
        }
    }

    #[test]
    fn matmul_batched_with_shared_weights() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), Shape::d3(2, 2, 3));
        let w = t2(vec![1., 0., 0., 1., 1., 1.], 3, 2);
        let c = matmul(&a, &w, false, false);
        assert_eq!(c.shape(), Shape::d3(2, 2, 2));
        for bi in 0..2 {
            for i in 0..2 {
                for j in 0..2 {
                    let expect: f32 = (0..3).map(|k| a.at3(bi, i, k) * w.at2(k, j)).sum();
                    assert!((c.at3(bi, i, j) - expect).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn matmul_acc_reduces_batch() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), Shape::d3(2, 2, 3));
        let g = Tensor::from_vec(vec![1.0; 8], Shape::d3(2, 2, 2));
        // dW = sum_b a_b^T g_b has shape (3, 2)
        let mut acc = Tensor::zeros(Shape::d2(3, 2));
        matmul_acc_into(&mut acc, &a, &g, true, false);
        let mut expect = Tensor::zeros(Shape::d2(3, 2));
        for bi in 0..2 {
            for k in 0..3 {
                for j in 0..2 {
                    let v: f32 = (0..2).map(|i| a.at3(bi, i, k) * g.at3(bi, i, j)).sum();
                    expect.data_mut()[k * 2 + j] += v;
                }
            }
        }
        assert!(acc.approx_eq(&expect, 1e-5));
    }

    #[test]
    fn softmax_rows_sum_to_one_and_stable() {
        let x = vec![1000.0, 1001.0, 999.0, -5.0, 0.0, 5.0];
        let mut out = vec![0.0; 6];
        softmax_rows(&x, 3, &mut out);
        for row in out.chunks(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|v| v.is_finite()));
        }
        assert!(out[1] > out[0] && out[0] > out[2]);
    }

    #[test]
    fn softmax_fully_masked_row_is_uniform() {
        let x = vec![f32::NEG_INFINITY; 4];
        let mut out = vec![0.0; 4];
        softmax_rows(&x, 4, &mut out);
        assert!(out.iter().all(|&v| (v - 0.25).abs() < 1e-6));
    }

    #[test]
    fn exp_fast_accurate_over_softmax_range() {
        // Softmax arguments are always <= 0; sweep a wide range anyway.
        let mut x = -87.0f32;
        while x < 20.0 {
            let (got, want) = (exp_fast(x), x.exp());
            let rel = (got - want).abs() / want.max(f32::MIN_POSITIVE);
            assert!(rel < 1e-6, "exp_fast({x}) = {got}, want {want} (rel {rel})");
            x += 0.0137;
        }
        // Deeply-masked scores underflow to a negligible weight.
        assert!(exp_fast(-1e9) < 1.3e-38);
        assert_eq!(exp_fast(0.0), 1.0);
    }

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f32> = (0..13).map(|x| x as f32 * 0.3).collect();
        let b: Vec<f32> = (0..13).map(|x| 2.0 - x as f32 * 0.1).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-4);
    }

    #[test]
    fn for_each_row_covers_all_rows_parallel() {
        let mut out = vec![0.0f32; 64 * 128];
        for_each_row(&mut out, 128, 1 << 20, |i, row| {
            row.fill(i as f32);
        });
        for (i, row) in out.chunks(128).enumerate() {
            assert!(row.iter().all(|&v| v == i as f32));
        }
    }
}
