//! Reverse-mode gradient sweep over a [`Tape`].

use crate::kernels::{dot, matmul_acc_into};
use crate::op::Op;
use crate::shape::Shape;
use crate::tape::{gelu_bwd, split_heads_copy, Tape, Var};
use crate::tensor::Tensor;

/// Gradients produced by [`Tape::backward`].
///
/// After the sweep only *leaf* nodes (inputs / parameters) retain their
/// gradients; interior gradients are consumed as the sweep propagates them.
pub struct Grads {
    grads: Vec<Option<Tensor>>,
}

impl Grads {
    /// The gradient of the loss w.r.t. leaf `v`, if it was reached.
    pub fn get(&self, v: Var) -> Option<&Tensor> {
        self.grads.get(v.0).and_then(|g| g.as_ref())
    }

    /// Extracts `(param_id, grad)` pairs for every parameter leaf recorded
    /// with [`Tape::param`] that received a gradient.
    pub fn into_param_grads(mut self, tape: &Tape) -> Vec<(usize, Tensor)> {
        let mut out = Vec::new();
        for (i, binding) in tape.param_binding.iter().enumerate() {
            if let (Some(pid), Some(g)) = (binding, self.grads[i].take()) {
                out.push((*pid, g));
            }
        }
        out
    }
}

impl Tape {
    /// Runs reverse-mode differentiation from `loss` (seeded with ones) and
    /// returns the leaf gradients.
    ///
    /// `loss` is normally a scalar node; seeding a non-scalar node computes
    /// the gradient of its element sum.
    pub fn backward(&self, loss: Var) -> Grads {
        let mut grads: Vec<Option<Tensor>> = (0..self.len()).map(|_| None).collect();
        grads[loss.0] = Some(Tensor::ones(self.values[loss.0].shape()));

        for i in (0..=loss.0).rev() {
            if grads[i].is_none() || matches!(self.ops[i], Op::Leaf) {
                continue;
            }
            let g = grads[i].take().expect("checked above");
            self.backprop_node(i, &g, &mut grads);
        }
        Grads { grads }
    }

    fn backprop_node(&self, i: usize, g: &Tensor, grads: &mut [Option<Tensor>]) {
        let val = |v: Var| &self.values[v.0];
        match &self.ops[i] {
            Op::Leaf => {}
            Op::Add(a, b) => {
                self.acc(grads, *a, g.clone());
                self.acc(grads, *b, g.clone());
            }
            Op::AddBias(x, bias) => {
                self.acc(grads, *x, g.clone());
                if self.requires[bias.0] {
                    let d = self.values[bias.0].numel();
                    let mut db = Tensor::zeros(Shape::d1(d));
                    for row in g.data().chunks(d) {
                        for (o, &v) in db.data_mut().iter_mut().zip(row) {
                            *o += v;
                        }
                    }
                    self.acc(grads, *bias, db);
                }
            }
            Op::Sub(a, b) => {
                self.acc(grads, *a, g.clone());
                self.acc(grads, *b, g.map(|v| -v));
            }
            Op::Mul(a, b) => {
                if self.requires[a.0] {
                    self.acc(grads, *a, g.zip_map(val(*b), |x, y| x * y));
                }
                if self.requires[b.0] {
                    self.acc(grads, *b, g.zip_map(val(*a), |x, y| x * y));
                }
            }
            Op::Scale(x, c) => self.acc(grads, *x, g.map(|v| v * c)),
            Op::AddScalar(x) => self.acc(grads, *x, g.clone()),
            Op::Matmul { a, b, ta, tb } => {
                // With A_eff = ta?Aᵀ:A and B_eff = tb?Bᵀ:B and C = A_eff·B_eff:
                //   dA = ta ? B_eff·gᵀ : g·B_effᵀ   (expressed via transpose flags)
                //   dB = tb ? gᵀ·A_eff : A_effᵀ·g
                // `matmul_acc_into` also sums over the batch when the parent
                // is an unbatched (shared) operand.
                if self.requires[a.0] {
                    let mut da = Tensor::zeros(val(*a).shape());
                    if !*ta {
                        matmul_acc_into(&mut da, g, val(*b), false, !*tb);
                    } else {
                        matmul_acc_into(&mut da, val(*b), g, *tb, true);
                    }
                    self.acc(grads, *a, da);
                }
                if self.requires[b.0] {
                    let mut db = Tensor::zeros(val(*b).shape());
                    if !*tb {
                        matmul_acc_into(&mut db, val(*a), g, !*ta, false);
                    } else {
                        matmul_acc_into(&mut db, g, val(*a), true, *ta);
                    }
                    self.acc(grads, *b, db);
                }
            }
            Op::Softmax(x) => {
                // dx = y ⊙ (g - <g, y>_row)
                let y = &self.values[i];
                let d = y.shape().last();
                let mut dx = Tensor::zeros(y.shape());
                for ((yr, gr), dr) in y
                    .data()
                    .chunks(d)
                    .zip(g.data().chunks(d))
                    .zip(dx.data_mut().chunks_mut(d))
                {
                    let s = dot(yr, gr);
                    for j in 0..d {
                        dr[j] = yr[j] * (gr[j] - s);
                    }
                }
                self.acc(grads, *x, dx);
            }
            Op::CrossEntropy {
                logits,
                targets,
                probs,
            } => {
                let gs = g.data()[0];
                let (b, c) = (probs.shape()[0], probs.shape()[1]);
                let scale = gs / b as f32;
                let mut dl = probs.map(|p| p * scale);
                for (r, &t) in targets.iter().enumerate() {
                    dl.data_mut()[r * c + t] -= scale;
                }
                self.acc(grads, *logits, dl);
            }
            Op::LayerNorm {
                x,
                gamma,
                beta,
                mean,
                rstd,
            } => {
                let xs = val(*x).shape();
                let d = xs.last();
                let rows = xs.rows();
                let xd = val(*x).data();
                let gd = val(*gamma).data();
                let need_x = self.requires[x.0];
                let mut dx = Tensor::zeros(xs);
                let mut dgamma = Tensor::zeros(Shape::d1(d));
                let mut dbeta = Tensor::zeros(Shape::d1(d));
                for r in 0..rows {
                    let mu = mean.data()[r];
                    let rs = rstd.data()[r];
                    let xr = &xd[r * d..(r + 1) * d];
                    let gr = &g.data()[r * d..(r + 1) * d];
                    // Accumulate affine-parameter grads.
                    for j in 0..d {
                        let xhat = (xr[j] - mu) * rs;
                        dgamma.data_mut()[j] += gr[j] * xhat;
                        dbeta.data_mut()[j] += gr[j];
                    }
                    if need_x {
                        // dxhat = g ⊙ γ; dx = rs (dxhat - mean(dxhat) - x̂·mean(dxhat⊙x̂))
                        let mut m1 = 0.0;
                        let mut m2 = 0.0;
                        for j in 0..d {
                            let xhat = (xr[j] - mu) * rs;
                            let dxh = gr[j] * gd[j];
                            m1 += dxh;
                            m2 += dxh * xhat;
                        }
                        m1 /= d as f32;
                        m2 /= d as f32;
                        let dr = &mut dx.data_mut()[r * d..(r + 1) * d];
                        for j in 0..d {
                            let xhat = (xr[j] - mu) * rs;
                            let dxh = gr[j] * gd[j];
                            dr[j] = rs * (dxh - m1 - xhat * m2);
                        }
                    }
                }
                if need_x {
                    self.acc(grads, *x, dx);
                }
                self.acc(grads, *gamma, dgamma);
                self.acc(grads, *beta, dbeta);
            }
            Op::Relu(x) => {
                let dx = g.zip_map(val(*x), |gv, xv| if xv > 0.0 { gv } else { 0.0 });
                self.acc(grads, *x, dx);
            }
            Op::Gelu(x) => {
                let dx = g.zip_map(val(*x), |gv, xv| gv * gelu_bwd(xv));
                self.acc(grads, *x, dx);
            }
            Op::Tanh(x) => {
                let y = &self.values[i];
                let dx = g.zip_map(y, |gv, yv| gv * (1.0 - yv * yv));
                self.acc(grads, *x, dx);
            }
            Op::Sigmoid(x) => {
                let y = &self.values[i];
                let dx = g.zip_map(y, |gv, yv| gv * yv * (1.0 - yv));
                self.acc(grads, *x, dx);
            }
            Op::Abs(x) => {
                let dx = g.zip_map(val(*x), |gv, xv| {
                    gv * xv.signum() * (xv != 0.0) as u8 as f32
                });
                self.acc(grads, *x, dx);
            }
            Op::Dropout { x, mask } => {
                self.acc(grads, *x, g.zip_map(mask, |gv, m| gv * m));
            }
            Op::Concat { parts } => {
                let widths: Vec<usize> = parts
                    .iter()
                    .map(|&p| self.values[p.0].shape().last())
                    .collect();
                let total: usize = widths.iter().sum();
                let rows = self.values[i].shape().rows();
                let mut off = 0;
                for (&p, &w) in parts.iter().zip(&widths) {
                    if self.requires[p.0] {
                        let mut dp = Tensor::zeros(self.values[p.0].shape());
                        for r in 0..rows {
                            dp.data_mut()[r * w..(r + 1) * w]
                                .copy_from_slice(&g.data()[r * total + off..r * total + off + w]);
                        }
                        self.acc(grads, p, dp);
                    }
                    off += w;
                }
            }
            Op::SplitHeads { x, heads } => {
                let xs = val(*x).shape();
                let (b, l, d) = (xs[0], xs[1], xs[2]);
                let mut dx = Tensor::zeros(xs);
                split_heads_copy(g.data(), dx.data_mut(), b, l, *heads, d / *heads, true);
                self.acc(grads, *x, dx);
            }
            Op::MergeHeads { x, heads } => {
                let xs = val(*x).shape();
                let (bh, l, dh) = (xs[0], xs[1], xs[2]);
                let mut dx = Tensor::zeros(xs);
                split_heads_copy(g.data(), dx.data_mut(), bh / *heads, l, *heads, dh, false);
                self.acc(grads, *x, dx);
            }
            Op::Reshape(x) => {
                self.acc(grads, *x, g.clone().reshaped(val(*x).shape()));
            }
            Op::MeanPoolMasked { x, lens } => {
                let xs = val(*x).shape();
                let (l, d) = (xs[1], xs[2]);
                let mut dx = Tensor::zeros(xs);
                for (bi, &len) in lens.iter().enumerate() {
                    let inv = 1.0 / len as f32;
                    let gr = &g.data()[bi * d..(bi + 1) * d];
                    for t in 0..len {
                        let dr = &mut dx.data_mut()[(bi * l + t) * d..(bi * l + t + 1) * d];
                        for (o, &v) in dr.iter_mut().zip(gr) {
                            *o += v * inv;
                        }
                    }
                }
                self.acc(grads, *x, dx);
            }
            Op::Embedding { table, ids } => {
                let ts = val(*table).shape();
                let d = ts[1];
                let mut dt = Tensor::zeros(ts);
                for (r, &id) in ids.iter().enumerate() {
                    let gr = &g.data()[r * d..(r + 1) * d];
                    let tr = &mut dt.data_mut()[id as usize * d..(id as usize + 1) * d];
                    for (o, &v) in tr.iter_mut().zip(gr) {
                        *o += v;
                    }
                }
                self.acc(grads, *table, dt);
            }
            Op::RowDot(a, b) => {
                let d = val(*a).shape().last();
                let rows = val(*a).shape().rows();
                for (parent, other) in [(a, b), (b, a)] {
                    if !self.requires[parent.0] {
                        continue;
                    }
                    let mut dp = Tensor::zeros(val(*parent).shape());
                    for r in 0..rows {
                        let gv = g.data()[r];
                        let orow = &val(*other).data()[r * d..(r + 1) * d];
                        let prow = &mut dp.data_mut()[r * d..(r + 1) * d];
                        for (o, &v) in prow.iter_mut().zip(orow) {
                            *o += gv * v;
                        }
                    }
                    self.acc(grads, *parent, dp);
                }
            }
            Op::L2NormalizeRows { x, inv_norms } => {
                // dx = (g - y (y·g)) / ||x||
                let y = &self.values[i];
                let d = y.shape().last();
                let rows = y.shape().rows();
                let mut dx = Tensor::zeros(y.shape());
                for r in 0..rows {
                    let inv = inv_norms.data()[r];
                    let yr = &y.data()[r * d..(r + 1) * d];
                    let gr = &g.data()[r * d..(r + 1) * d];
                    let proj = dot(yr, gr);
                    let dr = &mut dx.data_mut()[r * d..(r + 1) * d];
                    for j in 0..d {
                        dr[j] = (gr[j] - yr[j] * proj) * inv;
                    }
                }
                self.acc(grads, *x, dx);
            }
            Op::MeanAll(x) => {
                let n = val(*x).numel() as f32;
                let gv = g.data()[0] / n;
                self.acc(grads, *x, Tensor::full(val(*x).shape(), gv));
            }
            Op::SumAll(x) => {
                self.acc(grads, *x, Tensor::full(val(*x).shape(), g.data()[0]));
            }
            Op::MulScalarVar { x, s } => {
                let sv = val(*s).data()[0];
                if self.requires[x.0] {
                    self.acc(grads, *x, g.map(|v| v * sv));
                }
                if self.requires[s.0] {
                    let ds: f32 = g
                        .data()
                        .iter()
                        .zip(val(*x).data())
                        .map(|(&gv, &xv)| gv * xv)
                        .sum();
                    self.acc(grads, *s, Tensor::scalar(ds));
                }
            }
            Op::SelectTime { x, t } => {
                let xs = val(*x).shape();
                let (b, l, d) = (xs[0], xs[1], xs[2]);
                let mut dx = Tensor::zeros(xs);
                for bi in 0..b {
                    dx.data_mut()[(bi * l + t) * d..(bi * l + t + 1) * d]
                        .copy_from_slice(&g.data()[bi * d..(bi + 1) * d]);
                }
                self.acc(grads, *x, dx);
            }
            Op::StackTime { parts } => {
                let os = self.values[i].shape();
                let (b, l, d) = (os[0], os[1], os[2]);
                for (t, &p) in parts.iter().enumerate() {
                    if !self.requires[p.0] {
                        continue;
                    }
                    let mut dp = Tensor::zeros(Shape::d2(b, d));
                    for bi in 0..b {
                        dp.data_mut()[bi * d..(bi + 1) * d]
                            .copy_from_slice(&g.data()[(bi * l + t) * d..(bi * l + t + 1) * d]);
                    }
                    self.acc(grads, p, dp);
                }
            }
            Op::Conv2d {
                x,
                w,
                bias,
                stride,
                pad,
            } => {
                self.conv2d_backward(i, g, *x, *w, *bias, *stride, *pad, grads);
            }
            Op::MaxPool2d { x, argmax } => {
                let mut dx = Tensor::zeros(val(*x).shape());
                for (oi, &src) in argmax.iter().enumerate() {
                    dx.data_mut()[src as usize] += g.data()[oi];
                }
                self.acc(grads, *x, dx);
            }
            Op::AvgPool2dGlobal(x) => {
                let xs = val(*x).shape();
                let (b, c, h, w) = (xs[0], xs[1], xs[2], xs[3]);
                let inv = 1.0 / (h * w) as f32;
                let mut dx = Tensor::zeros(xs);
                for bc in 0..b * c {
                    let gv = g.data()[bc] * inv;
                    dx.data_mut()[bc * h * w..(bc + 1) * h * w].fill(gv);
                }
                self.acc(grads, *x, dx);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn conv2d_backward(
        &self,
        node: usize,
        g: &Tensor,
        x: Var,
        w: Var,
        bias: Var,
        stride: usize,
        pad: usize,
        grads: &mut [Option<Tensor>],
    ) {
        let xs = self.values[x.0].shape();
        let ws = self.values[w.0].shape();
        let os = self.values[node].shape();
        let (b, c, h, wd) = (xs[0], xs[1], xs[2], xs[3]);
        let (o, _, kh, kw) = (ws[0], ws[1], ws[2], ws[3]);
        let (oh, ow) = (os[2], os[3]);
        let xd = self.values[x.0].data();
        let wdt = self.values[w.0].data();
        let need_x = self.requires[x.0];
        let need_w = self.requires[w.0];
        let need_b = self.requires[bias.0];
        let mut dx = Tensor::zeros(xs);
        let mut dw = Tensor::zeros(ws);
        let mut db = Tensor::zeros(Shape::d1(o));
        for bi in 0..b {
            for oc in 0..o {
                for i in 0..oh {
                    for j in 0..ow {
                        let gv = g.data()[((bi * o + oc) * oh + i) * ow + j];
                        if gv == 0.0 {
                            continue;
                        }
                        if need_b {
                            db.data_mut()[oc] += gv;
                        }
                        for ci in 0..c {
                            let xbase = (bi * c + ci) * h * wd;
                            let wbase = (oc * c + ci) * kh * kw;
                            for di in 0..kh {
                                let yi = (i * stride + di) as isize - pad as isize;
                                if yi < 0 || yi as usize >= h {
                                    continue;
                                }
                                for dj in 0..kw {
                                    let xj = (j * stride + dj) as isize - pad as isize;
                                    if xj < 0 || xj as usize >= wd {
                                        continue;
                                    }
                                    let xi = xbase + yi as usize * wd + xj as usize;
                                    let wi = wbase + di * kw + dj;
                                    if need_x {
                                        dx.data_mut()[xi] += gv * wdt[wi];
                                    }
                                    if need_w {
                                        dw.data_mut()[wi] += gv * xd[xi];
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        if need_x {
            self.acc(grads, x, dx);
        }
        if need_w {
            self.acc(grads, w, dw);
        }
        if need_b {
            self.acc(grads, bias, db);
        }
    }

    fn acc(&self, grads: &mut [Option<Tensor>], v: Var, t: Tensor) {
        if !self.requires[v.0] {
            return;
        }
        match &mut grads[v.0] {
            Some(existing) => existing.add_assign_scaled(&t, 1.0),
            slot => *slot = Some(t),
        }
    }
}
