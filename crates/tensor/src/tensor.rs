//! Dense row-major f32 tensors.

use crate::shape::Shape;
use rand::Rng;
use rand_distr_normal::sample_standard_normal;
use std::fmt;

/// A dense, row-major, heap-allocated f32 tensor of rank 1–4.
///
/// All model math in this workspace runs on `Tensor`. The type is plain data:
/// differentiation lives in [`crate::Tape`], which stores `Tensor`s per node.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// A tensor of zeros.
    pub fn zeros(shape: Shape) -> Self {
        Tensor {
            data: vec![0.0; shape.numel()],
            shape,
        }
    }

    /// A tensor of ones.
    pub fn ones(shape: Shape) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: Shape, value: f32) -> Self {
        Tensor {
            data: vec![value; shape.numel()],
            shape,
        }
    }

    /// A rank-1 single-element tensor holding `value`.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            data: vec![value],
            shape: Shape::d1(1),
        }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != shape.numel()`.
    pub fn from_vec(data: Vec<f32>, shape: Shape) -> Self {
        assert_eq!(
            data.len(),
            shape.numel(),
            "data length {} does not match shape {shape}",
            data.len()
        );
        Tensor { data, shape }
    }

    /// Uniform random tensor in `[lo, hi)`.
    pub fn rand_uniform(shape: Shape, lo: f32, hi: f32, rng: &mut impl Rng) -> Self {
        let data = (0..shape.numel()).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor { data, shape }
    }

    /// Gaussian random tensor with the given mean and standard deviation.
    pub fn randn(shape: Shape, mean: f32, std: f32, rng: &mut impl Rng) -> Self {
        let data = (0..shape.numel())
            .map(|_| mean + std * sample_standard_normal(rng))
            .collect();
        Tensor { data, shape }
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the raw buffer (row-major).
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the raw buffer (row-major).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the raw buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the buffer under a new shape with the same element count.
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn reshaped(mut self, shape: Shape) -> Self {
        assert_eq!(
            self.numel(),
            shape.numel(),
            "cannot reshape {} -> {shape}",
            self.shape
        );
        self.shape = shape;
        self
    }

    /// Element at a rank-2 index.
    #[inline]
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        debug_assert_eq!(self.shape.rank(), 2);
        self.data[i * self.shape[1] + j]
    }

    /// Element at a rank-3 index.
    #[inline]
    pub fn at3(&self, b: usize, i: usize, j: usize) -> f32 {
        debug_assert_eq!(self.shape.rank(), 3);
        self.data[(b * self.shape[1] + i) * self.shape[2] + j]
    }

    /// Contiguous row `i` of a rank-2 tensor.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        let w = self.shape.last();
        &self.data[i * w..(i + 1) * w]
    }

    /// Applies `f` elementwise, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape,
        }
    }

    /// Combines two same-shape tensors elementwise.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip_map shape mismatch");
        Tensor {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            shape: self.shape,
        }
    }

    /// `self += alpha * other` (same shapes).
    pub fn add_assign_scaled(&mut self, other: &Tensor, alpha: f32) {
        assert_eq!(self.shape, other.shape, "add_assign_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Scales every element in place.
    pub fn scale_in_place(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Materialized transpose of the last two dimensions.
    pub fn transpose_last2(&self) -> Tensor {
        let s = self.shape;
        assert!(s.rank() >= 2, "transpose needs rank >= 2");
        let (m, n) = (s[s.rank() - 2], s[s.rank() - 1]);
        let batch = s.numel() / (m * n);
        let mut out = vec![0.0f32; s.numel()];
        for b in 0..batch {
            let src = &self.data[b * m * n..(b + 1) * m * n];
            let dst = &mut out[b * m * n..(b + 1) * m * n];
            for i in 0..m {
                for j in 0..n {
                    dst[j * m + i] = src[i * n + j];
                }
            }
        }
        Tensor {
            data: out,
            shape: s.transpose_last2(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.numel() as f32
    }

    /// Frobenius (L2) norm of the flattened buffer.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// True if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Approximate equality with absolute tolerance `tol`.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        if self.numel() <= 16 {
            write!(f, "{:?}", self.data)
        } else {
            write!(
                f,
                "[{:?}, ... ({} elements)]",
                &self.data[..8],
                self.numel()
            )
        }
    }
}

/// Box–Muller standard normal sampling without pulling in `rand_distr`.
mod rand_distr_normal {
    use rand::Rng;

    /// One sample from N(0, 1).
    pub fn sample_standard_normal(rng: &mut impl Rng) -> f32 {
        // Box–Muller; reject u1 == 0 so ln is finite.
        loop {
            let u1: f32 = rng.gen();
            if u1 > f32::MIN_POSITIVE {
                let u2: f32 = rng.gen();
                let r = (-2.0 * u1.ln()).sqrt();
                return r * (2.0 * std::f32::consts::PI * u2).cos();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn zeros_ones_full() {
        let z = Tensor::zeros(Shape::d2(2, 3));
        assert_eq!(z.numel(), 6);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let o = Tensor::ones(Shape::d1(4));
        assert!(o.data().iter().all(|&x| x == 1.0));
        let f = Tensor::full(Shape::d1(3), 2.5);
        assert!(f.data().iter().all(|&x| x == 2.5));
    }

    #[test]
    fn from_vec_checks_len() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], Shape::d2(2, 2));
        assert_eq!(t.at2(1, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_rejects_bad_len() {
        Tensor::from_vec(vec![1.0], Shape::d2(2, 2));
    }

    #[test]
    fn randn_statistics() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::randn(Shape::d1(20_000), 1.0, 2.0, &mut rng);
        let mean = t.mean();
        let var = t
            .data()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / t.numel() as f32;
        assert!((mean - 1.0).abs() < 0.05, "mean={mean}");
        assert!((var - 4.0).abs() < 0.15, "var={var}");
    }

    #[test]
    fn transpose_last2_rank2_and_rank3() {
        let t = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], Shape::d2(2, 3));
        let tt = t.transpose_last2();
        assert_eq!(tt.shape(), Shape::d2(3, 2));
        assert_eq!(tt.data(), &[1., 4., 2., 5., 3., 6.]);

        let b = Tensor::from_vec((0..12).map(|x| x as f32).collect(), Shape::d3(2, 2, 3));
        let bt = b.transpose_last2();
        assert_eq!(bt.shape(), Shape::d3(2, 3, 2));
        assert_eq!(bt.at3(1, 0, 1), b.at3(1, 1, 0));
    }

    #[test]
    fn map_and_zip_map() {
        let a = Tensor::from_vec(vec![1., -2.], Shape::d1(2));
        let b = Tensor::from_vec(vec![3., 4.], Shape::d1(2));
        assert_eq!(a.map(|x| x.abs()).data(), &[1., 2.]);
        assert_eq!(a.zip_map(&b, |x, y| x * y).data(), &[3., -8.]);
    }

    #[test]
    fn add_assign_scaled_works() {
        let mut a = Tensor::from_vec(vec![1., 2.], Shape::d1(2));
        let b = Tensor::from_vec(vec![10., 20.], Shape::d1(2));
        a.add_assign_scaled(&b, 0.5);
        assert_eq!(a.data(), &[6., 12.]);
    }

    #[test]
    fn norms_and_reductions() {
        let t = Tensor::from_vec(vec![3., 4.], Shape::d1(2));
        assert_eq!(t.frobenius_norm(), 5.0);
        assert_eq!(t.sum(), 7.0);
        assert_eq!(t.mean(), 3.5);
        assert_eq!(t.max_abs(), 4.0);
        assert!(t.all_finite());
        let bad = Tensor::from_vec(vec![f32::NAN], Shape::d1(1));
        assert!(!bad.all_finite());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1., 2., 3., 4.], Shape::d2(2, 2));
        let r = t.clone().reshaped(Shape::d1(4));
        assert_eq!(r.data(), t.data());
        assert_eq!(r.shape(), Shape::d1(4));
    }
}
