//! A persistent, shared thread pool for data-parallel kernels.
//!
//! Every heavy kernel in the workspace used to open a fresh
//! `std::thread::scope` per call, paying ~10µs of spawn/join cost each
//! time. This module keeps one process-wide pool of workers alive instead;
//! a parallel region enqueues chunk tasks, the calling thread helps drain
//! the queue, and a latch blocks the caller until its last chunk finishes —
//! the same blocking contract as `thread::scope`, without the spawns.
//!
//! Sizing: `TRAJCL_THREADS` (when set to a positive integer) overrides the
//! default of `std::thread::available_parallelism()`. The value counts the
//! calling thread, so `TRAJCL_THREADS=1` runs every region serially with no
//! worker threads at all.

// This module owns the workspace's only `unsafe` (raw-pointer task
// trampolines and `SendPtr`); every unsafe operation must be written as an
// explicit block with its own `// SAFETY:` justification, even inside
// `unsafe fn` — enforced here by the lint and in CI by `trajcl audit`.
#![deny(unsafe_op_in_unsafe_fn)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// One chunk of a parallel region: `call(ctx, index)` with `ctx` pointing
/// at the region's closure, kept alive by the blocked caller.
struct Task {
    call: unsafe fn(*const (), usize),
    ctx: *const (),
    index: usize,
    latch: *const Latch,
}

// SAFETY: the pointers reference the stack frame of a caller that blocks in
// `Latch::wait` until every task has completed, so they stay valid for the
// task's whole lifetime regardless of which thread runs it.
unsafe impl Send for Task {}

/// Countdown latch: the caller waits until all its tasks have completed.
struct Latch {
    remaining: AtomicUsize,
    panicked: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Latch {
    fn new(n: usize) -> Latch {
        Latch {
            remaining: AtomicUsize::new(n),
            panicked: AtomicBool::new(false),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    fn complete_one(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.lock.lock().unwrap();
            self.cv.notify_all();
        }
    }

    fn wait(&self) {
        let mut guard = self.lock.lock().unwrap();
        while self.remaining.load(Ordering::Acquire) != 0 {
            guard = self.cv.wait(guard).unwrap();
        }
    }
}

struct Shared {
    queue: Mutex<VecDeque<Task>>,
    work_cv: Condvar,
}

/// A fixed-size pool of persistent worker threads.
pub struct ThreadPool {
    shared: Arc<Shared>,
    threads: usize,
}

fn run_task(task: Task) {
    // SAFETY: `task.call` is always `trampoline::<F>` for the same `F` whose
    // closure `task.ctx` points at (both are set together in `run`), and the
    // caller that owns that closure blocks in `latch.wait` until this task
    // calls `complete_one`, so the pointer is live and correctly typed.
    let result = catch_unwind(AssertUnwindSafe(|| unsafe {
        (task.call)(task.ctx, task.index)
    }));
    // SAFETY: the owning caller is blocked until `complete_one` below.
    let latch = unsafe { &*task.latch };
    if result.is_err() {
        latch.panicked.store(true, Ordering::Release);
    }
    latch.complete_one();
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let task = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(t) = queue.pop_front() {
                    break t;
                }
                queue = shared.work_cv.wait(queue).unwrap();
            }
        };
        run_task(task);
    }
}

impl ThreadPool {
    /// A pool of `threads` total execution lanes (`threads - 1` workers are
    /// spawned; the calling thread is the remaining lane).
    pub fn new(threads: usize) -> ThreadPool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
        });
        for i in 0..threads - 1 {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("trajcl-pool-{i}"))
                .spawn(move || worker_loop(shared))
                .expect("spawn pool worker");
        }
        ThreadPool { shared, threads }
    }

    /// Pool size from `TRAJCL_THREADS`, defaulting to the machine's
    /// available parallelism.
    fn from_env() -> ThreadPool {
        let threads = std::env::var("TRAJCL_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        ThreadPool::new(threads)
    }

    /// Total execution lanes (workers + the calling thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(0), f(1), ..., f(n-1)` across the pool and blocks until all
    /// calls complete. The calling thread participates, so the region makes
    /// progress even when every worker is busy elsewhere.
    ///
    /// # Panics
    /// Re-raises (as a fresh panic) any panic that occurred inside `f`.
    pub fn run<F: Fn(usize) + Sync>(&self, n: usize, f: F) {
        if n == 0 {
            return;
        }
        if n == 1 || self.threads == 1 {
            for i in 0..n {
                f(i);
            }
            return;
        }
        unsafe fn trampoline<F: Fn(usize) + Sync>(ctx: *const (), index: usize) {
            // SAFETY: `ctx` points to `f`, alive until `latch.wait` returns.
            let f = unsafe { &*(ctx as *const F) };
            f(index);
        }
        let latch = Latch::new(n);
        {
            let mut queue = self.shared.queue.lock().unwrap();
            for index in 0..n {
                queue.push_back(Task {
                    call: trampoline::<F>,
                    ctx: &f as *const F as *const (),
                    index,
                    latch: &latch,
                });
            }
        }
        self.shared.work_cv.notify_all();
        // Help drain the queue (our own tasks and, harmlessly, any
        // concurrent caller's) so the region never waits on a busy pool.
        loop {
            let task = self.shared.queue.lock().unwrap().pop_front();
            match task {
                Some(t) => run_task(t),
                None => break,
            }
        }
        latch.wait();
        if latch.panicked.load(Ordering::Acquire) {
            panic!("trajcl thread pool: a parallel task panicked");
        }
    }
}

/// The process-wide shared pool (created on first use).
pub fn global() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(ThreadPool::from_env)
}

/// Lanes of the global pool (1 = everything runs serially).
pub fn threads() -> usize {
    global().threads()
}

/// `*mut T` that may cross threads; safe because [`par_chunks_mut`] hands
/// each task a disjoint sub-slice.
struct SendPtr<T>(*mut T);
// SAFETY: the pointer is only dereferenced through the disjoint, in-bounds
// sub-slices carved out in `par_chunks_mut`, while the caller holds the
// exclusive borrow of the underlying `&mut [T]` for the whole region.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: shared across tasks only to be copied; see the Send rationale.
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// The wrapped pointer (method form so closures capture the wrapper,
    /// not the raw-pointer field).
    fn get(self) -> *mut T {
        self.0
    }
}

/// Splits `data` into chunks of at most `chunk_len` elements and runs
/// `f(chunk_index, chunk)` for each, in parallel on the global pool.
///
/// This is the shared replacement for the per-call-site
/// `available_parallelism` / `div_ceil` / `thread::scope` boilerplate.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = data.len();
    if len == 0 {
        return;
    }
    let chunk_len = chunk_len.max(1);
    let n = len.div_ceil(chunk_len);
    if n == 1 || threads() == 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let base = SendPtr(data.as_mut_ptr());
    global().run(n, move |i| {
        let start = i * chunk_len;
        let end = (start + chunk_len).min(len);
        // SAFETY: [start, end) ranges are disjoint across task indices and
        // in-bounds; `data` is exclusively borrowed for the whole region.
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
        f(i, chunk);
    });
}

/// Number of rows each parallel chunk should carry so that `rows` rows
/// split evenly across the pool (at least 1).
pub fn rows_per_lane(rows: usize) -> usize {
    rows.div_ceil(threads().min(rows).max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_covers_every_index() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        pool.run(64, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn run_serial_pool() {
        let pool = ThreadPool::new(1);
        let hits: Vec<AtomicUsize> = (0..8).map(|_| AtomicUsize::new(0)).collect();
        pool.run(8, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_chunks_mut_writes_disjoint_chunks() {
        let mut data = vec![0usize; 1000];
        par_chunks_mut(&mut data, 13, |c, chunk| {
            for v in chunk.iter_mut() {
                *v = c + 1;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i / 13 + 1, "element {i}");
        }
    }

    #[test]
    fn nested_regions_complete() {
        let pool = ThreadPool::new(2);
        let total = AtomicUsize::new(0);
        pool.run(4, |_| {
            // Nested use of the global pool must not deadlock.
            global().run(4, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn rows_per_lane_covers_all_rows() {
        for rows in [1usize, 2, 7, 63, 64, 65, 1000] {
            let per = rows_per_lane(rows);
            assert!(per >= 1 && per * threads().min(rows) >= rows);
        }
    }
}
