//! # trajcl-tensor
//!
//! A minimal dense f32 tensor library with tape-based reverse-mode
//! autodifferentiation, built from scratch for the TrajCL (ICDE 2023)
//! reproduction. It provides exactly the operations the paper's models need:
//! batched matmul with transpose flags, masked softmax attention plumbing,
//! layer norm, dropout, embedding lookups, sequence pooling, RNN time-step
//! ops (for baselines), and 2-D convolution (for the TrjSR baseline).
//!
//! ## Design
//! * [`Tensor`] is plain data (row-major `Vec<f32>` + [`Shape`], rank ≤ 4).
//! * [`Tape`] is a define-by-run autograd tape rebuilt per training step.
//!   Ops are a closed enum; the backward sweep is a single reverse
//!   iteration matching textbook gradient formulas (see `backward.rs`).
//! * [`Var`] is a copyable node index into the tape.
//! * Heavy kernels parallelise across rows on a shared persistent
//!   [`pool`] (no runtime dependency, `TRAJCL_THREADS` override), which
//!   is what lets the non-recurrent TrajCL encoder exploit hardware
//!   parallelism the way the paper's GPU runs do.
//! * [`InferCtx`] is the tape-free serving path: fused attention and
//!   scratch-buffer reuse for gradient-free forward passes (see
//!   [`infer`]).
//!
//! ## Example
//! ```
//! use trajcl_tensor::{Shape, Tape, Tensor};
//!
//! let mut tape = Tape::new();
//! let w = tape.param(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], Shape::d2(2, 2)), 0);
//! let x = tape.input(Tensor::from_vec(vec![1.0, -1.0], Shape::d2(1, 2)));
//! let y = tape.matmul(x, w, false, false);
//! let loss = tape.mean_all(y);
//! let grads = tape.backward(loss);
//! let dw = grads.get(w).unwrap();
//! assert_eq!(dw.shape(), Shape::d2(2, 2));
//! ```

pub mod backward;
pub mod infer;
pub mod kernels;
mod op;
pub mod pool;
pub mod shape;
pub mod tape;
pub mod tensor;

pub use backward::Grads;
pub use infer::{CtxPool, InferCtx, PooledCtx};
pub use shape::Shape;
pub use tape::{Tape, Var};
pub use tensor::Tensor;

/// Finite-difference gradient checking utilities (used by tests across the
/// workspace to validate every layer against numeric gradients).
pub mod check {
    use super::*;

    /// Central-difference numeric gradient of `f` at `x`.
    ///
    /// `f` must be a deterministic scalar function of the tensor.
    pub fn finite_diff_grad(f: impl Fn(&Tensor) -> f32, x: &Tensor, eps: f32) -> Tensor {
        let mut grad = Tensor::zeros(x.shape());
        let mut probe = x.clone();
        for i in 0..x.numel() {
            let orig = probe.data()[i];
            probe.data_mut()[i] = orig + eps;
            let up = f(&probe);
            probe.data_mut()[i] = orig - eps;
            let down = f(&probe);
            probe.data_mut()[i] = orig;
            grad.data_mut()[i] = (up - down) / (2.0 * eps);
        }
        grad
    }

    /// Asserts that the tape gradient of `build` w.r.t. its parameter input
    /// matches the central-difference estimate.
    ///
    /// `build` receives a fresh tape plus the parameter node and must return
    /// the scalar loss node. Non-determinism (e.g. dropout) must be avoided
    /// inside `build`.
    pub fn assert_grad_matches(
        build: impl Fn(&mut Tape, Var) -> Var,
        x0: &Tensor,
        eps: f32,
        tol: f32,
    ) {
        let eval = |t: &Tensor| -> f32 {
            let mut tape = Tape::new();
            let x = tape.param(t.clone(), 0);
            let loss = build(&mut tape, x);
            assert_eq!(tape.value(loss).numel(), 1, "loss must be scalar");
            tape.value(loss).data()[0]
        };
        let numeric = finite_diff_grad(eval, x0, eps);

        let mut tape = Tape::new();
        let x = tape.param(x0.clone(), 0);
        let loss = build(&mut tape, x);
        let grads = tape.backward(loss);
        let analytic = grads.get(x).expect("parameter did not receive a gradient");

        for i in 0..x0.numel() {
            let (a, n) = (analytic.data()[i], numeric.data()[i]);
            let denom = 1.0f32.max(a.abs()).max(n.abs());
            assert!(
                (a - n).abs() / denom <= tol,
                "gradient mismatch at {i}: analytic={a}, numeric={n} (shape {})",
                x0.shape()
            );
        }
    }
}
