//! Finite-difference validation of every differentiable tape operation.
//!
//! Each test builds a small scalar loss through one (or a few) ops and
//! compares the tape gradient against a central-difference estimate.

use rand::{rngs::StdRng, SeedableRng};
use trajcl_tensor::check::assert_grad_matches;
use trajcl_tensor::{Shape, Tape, Tensor, Var};

fn randt(shape: Shape, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::randn(shape, 0.0, 1.0, &mut rng)
}

/// Squash any tensor node to a scalar through a fixed random projection so
/// gradients of all elements are exercised (mean alone would hide sign bugs).
fn to_scalar(tape: &mut Tape, v: Var, seed: u64) -> Var {
    let shape = tape.shape(v);
    let w = tape.input(randt(shape, seed));
    let prod = tape.mul(v, w);
    tape.sum_all(prod)
}

const EPS: f32 = 1e-2;
const TOL: f32 = 2e-2;

#[test]
fn grad_add_sub_mul() {
    let x0 = randt(Shape::d2(3, 4), 1);
    assert_grad_matches(
        |t, x| {
            let c = t.input(randt(Shape::d2(3, 4), 2));
            let a = t.add(x, c);
            let b = t.sub(a, x);
            let m = t.mul(b, x);
            to_scalar(t, m, 3)
        },
        &x0,
        EPS,
        TOL,
    );
}

#[test]
fn grad_scale_and_add_scalar() {
    let x0 = randt(Shape::d1(5), 4);
    assert_grad_matches(
        |t, x| {
            let y = t.scale(x, -2.5);
            let z = t.add_scalar(y, 3.0);
            to_scalar(t, z, 5)
        },
        &x0,
        EPS,
        TOL,
    );
}

#[test]
fn grad_add_bias_wrt_bias() {
    let b0 = randt(Shape::d1(4), 6);
    assert_grad_matches(
        |t, bias| {
            let x = t.input(randt(Shape::d2(3, 4), 7));
            let y = t.add_bias(x, bias);
            to_scalar(t, y, 8)
        },
        &b0,
        EPS,
        TOL,
    );
}

#[test]
fn grad_matmul_all_transpose_combos() {
    for (ta, tb, seed) in [
        (false, false, 10),
        (false, true, 11),
        (true, false, 12),
        (true, true, 13),
    ] {
        // x has shape so that x_eff is (3, 4); other operand fixed with b_eff (4, 2).
        let xs = if ta { Shape::d2(4, 3) } else { Shape::d2(3, 4) };
        let bs = if tb { Shape::d2(2, 4) } else { Shape::d2(4, 2) };
        let x0 = randt(xs, seed);
        assert_grad_matches(
            |t, x| {
                let b = t.input(randt(bs, seed + 100));
                let y = t.matmul(x, b, ta, tb);
                to_scalar(t, y, seed + 200)
            },
            &x0,
            EPS,
            TOL,
        );
        // And gradient w.r.t. the right operand.
        let b0 = randt(bs, seed + 300);
        assert_grad_matches(
            |t, b| {
                let a = t.input(randt(xs, seed + 400));
                let y = t.matmul(a, b, ta, tb);
                to_scalar(t, y, seed + 500)
            },
            &b0,
            EPS,
            TOL,
        );
    }
}

#[test]
fn grad_matmul_batched_shared_weight() {
    // (B, L, D) x (D, E) — the shared-weight reduction path.
    let w0 = randt(Shape::d2(4, 3), 20);
    assert_grad_matches(
        |t, w| {
            let x = t.input(randt(Shape::d3(2, 5, 4), 21));
            let y = t.matmul(x, w, false, false);
            to_scalar(t, y, 22)
        },
        &w0,
        EPS,
        TOL,
    );
    // Gradient w.r.t. the batched input.
    let x0 = randt(Shape::d3(2, 5, 4), 23);
    assert_grad_matches(
        |t, x| {
            let w = t.input(randt(Shape::d2(4, 3), 24));
            let y = t.matmul(x, w, false, false);
            to_scalar(t, y, 25)
        },
        &x0,
        EPS,
        TOL,
    );
}

#[test]
fn grad_batched_attention_shape_matmul() {
    // Q (B, L, Dh) x K^T (B, Dh, L) via transpose flag — the QK^T path.
    let q0 = randt(Shape::d3(2, 4, 3), 30);
    assert_grad_matches(
        |t, q| {
            let k = t.input(randt(Shape::d3(2, 4, 3), 31));
            let scores = t.matmul(q, k, false, true);
            to_scalar(t, scores, 32)
        },
        &q0,
        EPS,
        TOL,
    );
}

#[test]
fn grad_softmax() {
    let x0 = randt(Shape::d2(3, 5), 40);
    assert_grad_matches(
        |t, x| {
            let y = t.softmax(x);
            to_scalar(t, y, 41)
        },
        &x0,
        EPS,
        TOL,
    );
}

#[test]
fn grad_cross_entropy() {
    let x0 = randt(Shape::d2(4, 6), 42);
    assert_grad_matches(|t, x| t.cross_entropy(x, &[0, 3, 5, 2]), &x0, EPS, TOL);
}

#[test]
fn grad_layer_norm_wrt_input_gamma_beta() {
    let x0 = randt(Shape::d2(3, 6), 50);
    assert_grad_matches(
        |t, x| {
            let g = t.input(randt(Shape::d1(6), 51).map(|v| v * 0.2 + 1.0));
            let b = t.input(randt(Shape::d1(6), 52));
            let y = t.layer_norm(x, g, b, 1e-5);
            to_scalar(t, y, 53)
        },
        &x0,
        EPS,
        TOL,
    );
    let g0 = randt(Shape::d1(6), 54).map(|v| v * 0.2 + 1.0);
    assert_grad_matches(
        |t, g| {
            let x = t.input(randt(Shape::d2(3, 6), 55));
            let b = t.input(randt(Shape::d1(6), 56));
            let y = t.layer_norm(x, g, b, 1e-5);
            to_scalar(t, y, 57)
        },
        &g0,
        EPS,
        TOL,
    );
    let b0 = randt(Shape::d1(6), 58);
    assert_grad_matches(
        |t, b| {
            let x = t.input(randt(Shape::d2(3, 6), 59));
            let g = t.input(randt(Shape::d1(6), 60).map(|v| v * 0.2 + 1.0));
            let y = t.layer_norm(x, g, b, 1e-5);
            to_scalar(t, y, 61)
        },
        &b0,
        EPS,
        TOL,
    );
}

#[test]
fn grad_nonlinearities() {
    // Shift inputs away from the ReLU/abs kink so finite differences are valid.
    let x0 = randt(Shape::d2(3, 4), 70).map(|v| if v.abs() < 0.1 { v + 0.3 } else { v });
    assert_grad_matches(
        |t, x| {
            let y = t.relu(x);
            to_scalar(t, y, 71)
        },
        &x0,
        1e-3,
        TOL,
    );
    assert_grad_matches(
        |t, x| {
            let y = t.gelu(x);
            to_scalar(t, y, 72)
        },
        &x0,
        EPS,
        TOL,
    );
    assert_grad_matches(
        |t, x| {
            let y = t.tanh_op(x);
            to_scalar(t, y, 73)
        },
        &x0,
        EPS,
        TOL,
    );
    assert_grad_matches(
        |t, x| {
            let y = t.sigmoid(x);
            to_scalar(t, y, 74)
        },
        &x0,
        EPS,
        TOL,
    );
    assert_grad_matches(
        |t, x| {
            let y = t.abs_op(x);
            to_scalar(t, y, 75)
        },
        &x0,
        1e-3,
        TOL,
    );
}

#[test]
fn grad_dropout_pass_through_in_eval_mode() {
    let x0 = randt(Shape::d2(2, 3), 80);
    let mut rng = StdRng::seed_from_u64(0);
    let mut tape = Tape::new();
    let x = tape.param(x0.clone(), 0);
    let y = tape.dropout(x, 0.5, false, &mut rng);
    let loss = tape.mean_all(y);
    let grads = tape.backward(loss);
    let g = grads.get(x).unwrap();
    assert!(g.data().iter().all(|&v| (v - 1.0 / 6.0).abs() < 1e-6));
}

#[test]
fn grad_dropout_training_mask_routes_gradient() {
    let x0 = Tensor::ones(Shape::d2(4, 8));
    let mut rng = StdRng::seed_from_u64(99);
    let mut tape = Tape::new();
    let x = tape.param(x0, 0);
    let y = tape.dropout(x, 0.5, true, &mut rng);
    let loss = tape.sum_all(y);
    let kept: usize = tape.value(y).data().iter().filter(|&&v| v != 0.0).count();
    assert!(kept > 0 && kept < 32, "mask should drop some but not all");
    let grads = tape.backward(loss);
    let g = grads.get(x).unwrap();
    let nonzero = g.data().iter().filter(|&&v| v != 0.0).count();
    assert_eq!(
        nonzero, kept,
        "gradient must flow only through kept elements"
    );
}

#[test]
fn grad_concat() {
    let x0 = randt(Shape::d2(3, 2), 90);
    assert_grad_matches(
        |t, x| {
            let other = t.input(randt(Shape::d2(3, 4), 91));
            let y = t.concat(&[x, other]);
            to_scalar(t, y, 92)
        },
        &x0,
        EPS,
        TOL,
    );
}

#[test]
fn grad_split_and_merge_heads_round_trip() {
    let x0 = randt(Shape::d3(2, 3, 8), 100);
    assert_grad_matches(
        |t, x| {
            let s = t.split_heads(x, 4);
            let m = t.merge_heads(s, 4);
            to_scalar(t, m, 101)
        },
        &x0,
        EPS,
        TOL,
    );
    // Forward round trip is exact identity.
    let mut tape = Tape::new();
    let x = tape.input(x0.clone());
    let s = tape.split_heads(x, 4);
    let m = tape.merge_heads(s, 4);
    assert!(tape.value(m).approx_eq(&x0, 0.0));
}

#[test]
fn grad_reshape_and_select_stack_time() {
    let x0 = randt(Shape::d3(2, 4, 3), 110);
    assert_grad_matches(
        |t, x| {
            let a = t.select_time(x, 1);
            let b = t.select_time(x, 3);
            let s = t.stack_time(&[a, b]);
            let r = t.reshape(s, Shape::d2(2, 6));
            to_scalar(t, r, 111)
        },
        &x0,
        EPS,
        TOL,
    );
}

#[test]
fn grad_mean_pool_masked() {
    let x0 = randt(Shape::d3(2, 4, 3), 120);
    assert_grad_matches(
        |t, x| {
            let p = t.mean_pool_masked(x, &[2, 4]);
            to_scalar(t, p, 121)
        },
        &x0,
        EPS,
        TOL,
    );
    // Padded positions must get exactly zero gradient.
    let mut tape = Tape::new();
    let x = tape.param(x0, 0);
    let p = tape.mean_pool_masked(x, &[2, 4]);
    let loss = tape.sum_all(p);
    let g = tape.backward(loss);
    let gx = g.get(x).unwrap();
    for t in 2..4 {
        for d in 0..3 {
            assert_eq!(gx.at3(0, t, d), 0.0, "padding leaked gradient");
        }
    }
}

#[test]
fn grad_embedding_accumulates_repeated_ids() {
    let table0 = randt(Shape::d2(5, 3), 130);
    assert_grad_matches(
        |t, table| {
            let e = t.embedding(table, &[1, 3, 1, 0]);
            to_scalar(t, e, 131)
        },
        &table0,
        EPS,
        TOL,
    );
}

#[test]
fn grad_row_dot_and_l2_normalize() {
    let x0 = randt(Shape::d2(3, 4), 140);
    assert_grad_matches(
        |t, x| {
            let other = t.input(randt(Shape::d2(3, 4), 141));
            let d = t.row_dot(x, other);
            to_scalar(t, d, 142)
        },
        &x0,
        EPS,
        TOL,
    );
    assert_grad_matches(
        |t, x| {
            let n = t.l2_normalize_rows(x);
            to_scalar(t, n, 143)
        },
        &x0,
        EPS,
        TOL,
    );
}

#[test]
fn grad_mul_scalar_var() {
    let s0 = Tensor::scalar(0.7);
    assert_grad_matches(
        |t, s| {
            let x = t.input(randt(Shape::d2(3, 3), 150));
            let y = t.mul_scalar_var(x, s);
            to_scalar(t, y, 151)
        },
        &s0,
        EPS,
        TOL,
    );
    let x0 = randt(Shape::d2(3, 3), 152);
    assert_grad_matches(
        |t, x| {
            let s = t.input(Tensor::scalar(-1.3));
            let y = t.mul_scalar_var(x, s);
            to_scalar(t, y, 153)
        },
        &x0,
        EPS,
        TOL,
    );
}

#[test]
fn grad_conv2d_wrt_input_weight_bias() {
    let x0 = randt(Shape::d4(2, 2, 5, 5), 160);
    assert_grad_matches(
        |t, x| {
            let w = t.input(randt(Shape::d4(3, 2, 3, 3), 161).map(|v| v * 0.3));
            let b = t.input(randt(Shape::d1(3), 162));
            let y = t.conv2d(x, w, b, 1, 1);
            to_scalar(t, y, 163)
        },
        &x0,
        EPS,
        5e-2,
    );
    let w0 = randt(Shape::d4(3, 2, 3, 3), 164).map(|v| v * 0.3);
    assert_grad_matches(
        |t, w| {
            let x = t.input(randt(Shape::d4(2, 2, 5, 5), 165));
            let b = t.input(randt(Shape::d1(3), 166));
            let y = t.conv2d(x, w, b, 2, 1);
            to_scalar(t, y, 167)
        },
        &w0,
        EPS,
        5e-2,
    );
    let b0 = randt(Shape::d1(3), 168);
    assert_grad_matches(
        |t, b| {
            let x = t.input(randt(Shape::d4(1, 2, 4, 4), 169));
            let w = t.input(randt(Shape::d4(3, 2, 3, 3), 170).map(|v| v * 0.3));
            let y = t.conv2d(x, w, b, 1, 0);
            to_scalar(t, y, 171)
        },
        &b0,
        EPS,
        TOL,
    );
}

#[test]
fn grad_pooling() {
    // Max pool: perturb inputs away from ties.
    let mut x0 = randt(Shape::d4(1, 2, 4, 4), 180);
    for (i, v) in x0.data_mut().iter_mut().enumerate() {
        *v += i as f32 * 1e-3;
    }
    assert_grad_matches(
        |t, x| {
            let y = t.max_pool2d(x, 2);
            to_scalar(t, y, 181)
        },
        &x0,
        1e-3,
        TOL,
    );
    let x1 = randt(Shape::d4(2, 3, 4, 4), 182);
    assert_grad_matches(
        |t, x| {
            let y = t.avg_pool2d_global(x);
            to_scalar(t, y, 183)
        },
        &x1,
        EPS,
        TOL,
    );
}

#[test]
fn grad_composite_transformer_block_shape() {
    // A miniature attention block end-to-end: checks op composition.
    let x0 = randt(Shape::d3(2, 3, 4), 190).map(|v| v * 0.5);
    assert_grad_matches(
        |t, x| {
            let wq = t.input(randt(Shape::d2(4, 4), 191).map(|v| v * 0.4));
            let wk = t.input(randt(Shape::d2(4, 4), 192).map(|v| v * 0.4));
            let wv = t.input(randt(Shape::d2(4, 4), 193).map(|v| v * 0.4));
            let q = t.matmul(x, wq, false, false);
            let k = t.matmul(x, wk, false, false);
            let v = t.matmul(x, wv, false, false);
            let qh = t.split_heads(q, 2);
            let kh = t.split_heads(k, 2);
            let vh = t.split_heads(v, 2);
            let scores = t.matmul(qh, kh, false, true);
            let scaled = t.scale(scores, 1.0 / (2.0f32).sqrt());
            let attn = t.softmax(scaled);
            let ctx = t.matmul(attn, vh, false, false);
            let merged = t.merge_heads(ctx, 2);
            let pooled = t.mean_pool_masked(merged, &[3, 2]);
            to_scalar(t, pooled, 194)
        },
        &x0,
        EPS,
        3e-2,
    );
}

#[test]
fn backward_multiple_uses_accumulates() {
    // y = x*x + x  => dy/dx = 2x + 1
    let x0 = Tensor::from_vec(vec![2.0, -3.0], Shape::d1(2));
    let mut tape = Tape::new();
    let x = tape.param(x0.clone(), 0);
    let sq = tape.mul(x, x);
    let y = tape.add(sq, x);
    let loss = tape.sum_all(y);
    let grads = tape.backward(loss);
    let g = grads.get(x).unwrap();
    assert!((g.data()[0] - 5.0).abs() < 1e-6);
    assert!((g.data()[1] - (-5.0)).abs() < 1e-6);
}

#[test]
fn into_param_grads_routes_by_binding() {
    let mut tape = Tape::new();
    let a = tape.param(Tensor::scalar(2.0), 7);
    let b = tape.param(Tensor::scalar(3.0), 9);
    let prod = tape.mul(a, b);
    let loss = tape.sum_all(prod);
    let grads = tape.backward(loss);
    let mut pairs = grads.into_param_grads(&tape);
    pairs.sort_by_key(|(id, _)| *id);
    assert_eq!(pairs.len(), 2);
    assert_eq!(pairs[0].0, 7);
    assert!((pairs[0].1.data()[0] - 3.0).abs() < 1e-6);
    assert_eq!(pairs[1].0, 9);
    assert!((pairs[1].1.data()[0] - 2.0).abs() < 1e-6);
}

#[test]
fn constants_do_not_accumulate_gradients() {
    let mut tape = Tape::new();
    let x = tape.param(Tensor::scalar(1.0), 0);
    let c = tape.input(Tensor::scalar(5.0));
    let y = tape.mul(x, c);
    let loss = tape.sum_all(y);
    let grads = tape.backward(loss);
    assert!(grads.get(c).is_none());
    assert!(grads.get(x).is_some());
}
