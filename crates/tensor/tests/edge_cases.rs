//! Edge-case and contract tests for the public tensor API: shape-mismatch
//! panics, degenerate sizes, and numerical boundaries not covered by the
//! gradient checks.

use rand::{rngs::StdRng, SeedableRng};
use trajcl_tensor::{kernels, Shape, Tape, Tensor};

#[test]
#[should_panic(expected = "matmul inner dims mismatch")]
fn matmul_rejects_inner_mismatch() {
    let a = Tensor::zeros(Shape::d2(2, 3));
    let b = Tensor::zeros(Shape::d2(4, 2));
    kernels::matmul(&a, &b, false, false);
}

#[test]
#[should_panic(expected = "matmul batch mismatch")]
fn matmul_rejects_batch_mismatch() {
    let a = Tensor::zeros(Shape::d3(2, 2, 3));
    let b = Tensor::zeros(Shape::d3(5, 3, 2));
    kernels::matmul(&a, &b, false, false);
}

#[test]
fn matmul_one_by_one() {
    let a = Tensor::from_vec(vec![3.0], Shape::d2(1, 1));
    let b = Tensor::from_vec(vec![-4.0], Shape::d2(1, 1));
    let c = kernels::matmul(&a, &b, false, false);
    assert_eq!(c.data(), &[-12.0]);
}

#[test]
fn concat_three_parts_and_gradients() {
    let mut tape = Tape::new();
    let a = tape.param(Tensor::from_vec(vec![1.0, 2.0], Shape::d2(1, 2)), 0);
    let b = tape.param(Tensor::from_vec(vec![3.0], Shape::d2(1, 1)), 1);
    let c = tape.param(Tensor::from_vec(vec![4.0, 5.0, 6.0], Shape::d2(1, 3)), 2);
    let cat = tape.concat(&[a, b, c]);
    assert_eq!(tape.shape(cat), Shape::d2(1, 6));
    assert_eq!(tape.value(cat).data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    let loss = tape.sum_all(cat);
    let grads = tape.backward(loss);
    for (v, len) in [(a, 2), (b, 1), (c, 3)] {
        assert_eq!(grads.get(v).unwrap().numel(), len);
    }
}

#[test]
#[should_panic(expected = "leading dims mismatch")]
fn concat_rejects_row_mismatch() {
    let mut tape = Tape::new();
    let a = tape.input(Tensor::zeros(Shape::d2(2, 2)));
    let b = tape.input(Tensor::zeros(Shape::d2(3, 2)));
    tape.concat(&[a, b]);
}

#[test]
fn softmax_single_column_is_one() {
    let mut tape = Tape::new();
    let x = tape.input(Tensor::from_vec(vec![5.0, -2.0, 0.1], Shape::d2(3, 1)));
    let y = tape.softmax(x);
    assert!(tape.value(y).data().iter().all(|&v| (v - 1.0).abs() < 1e-6));
}

#[test]
#[should_panic(expected = "embedding id")]
fn embedding_rejects_out_of_range_ids() {
    let mut tape = Tape::new();
    let table = tape.input(Tensor::zeros(Shape::d2(4, 2)));
    tape.embedding(table, &[0, 4]);
}

#[test]
#[should_panic(expected = "time index")]
fn select_time_rejects_out_of_range() {
    let mut tape = Tape::new();
    let x = tape.input(Tensor::zeros(Shape::d3(1, 3, 2)));
    tape.select_time(x, 3);
}

#[test]
fn dropout_extreme_keep_probability() {
    let mut rng = StdRng::seed_from_u64(0);
    let mut tape = Tape::new();
    let x = tape.param(Tensor::ones(Shape::d2(10, 10)), 0);
    let y = tape.dropout(x, 0.99, true, &mut rng);
    let kept = tape.value(y).data().iter().filter(|&&v| v != 0.0).count();
    assert!(
        kept < 20,
        "p=0.99 should drop almost everything, kept {kept}"
    );
    // Kept values carry the 1/(1-p) = 100x scale.
    for &v in tape.value(y).data() {
        assert!(v == 0.0 || (v - 100.0).abs() < 1.0);
    }
}

#[test]
fn layer_norm_constant_row_is_finite() {
    // Variance 0 + eps must not produce NaN.
    let mut tape = Tape::new();
    let x = tape.input(Tensor::full(Shape::d2(2, 4), 7.0));
    let g = tape.input(Tensor::ones(Shape::d1(4)));
    let b = tape.input(Tensor::zeros(Shape::d1(4)));
    let y = tape.layer_norm(x, g, b, 1e-5);
    assert!(tape.value(y).all_finite());
    assert!(
        tape.value(y).max_abs() < 1e-2,
        "constant row normalises to ~0"
    );
}

#[test]
fn mean_pool_masked_single_position() {
    let mut tape = Tape::new();
    let x = tape.input(Tensor::from_vec(
        vec![1.0, 2.0, 9.0, 9.0],
        Shape::d3(1, 2, 2),
    ));
    let p = tape.mean_pool_masked(x, &[1]);
    assert_eq!(tape.value(p).data(), &[1.0, 2.0]);
}

#[test]
fn reshape_requires_same_numel() {
    let t = Tensor::zeros(Shape::d2(2, 3));
    let r = std::panic::catch_unwind(|| t.clone().reshaped(Shape::d2(2, 4)));
    assert!(r.is_err());
}

#[test]
fn cross_entropy_perfect_prediction_near_zero_loss() {
    let mut tape = Tape::new();
    // Huge logit margin on the target class.
    let logits = tape.input(Tensor::from_vec(
        vec![50.0, 0.0, 0.0, 0.0, 50.0, 0.0],
        Shape::d2(2, 3),
    ));
    let loss = tape.cross_entropy(logits, &[0, 1]);
    assert!(tape.value(loss).data()[0] < 1e-5);
}

#[test]
fn cross_entropy_uniform_is_log_c() {
    let mut tape = Tape::new();
    let logits = tape.input(Tensor::zeros(Shape::d2(3, 4)));
    let loss = tape.cross_entropy(logits, &[0, 1, 2]);
    let expect = (4.0f32).ln();
    assert!((tape.value(loss).data()[0] - expect).abs() < 1e-5);
}

#[test]
fn backward_from_non_scalar_sums() {
    // Seeding backward at a vector node computes d(sum)/dx.
    let mut tape = Tape::new();
    let x = tape.param(Tensor::from_vec(vec![1.0, 2.0, 3.0], Shape::d1(3)), 0);
    let y = tape.scale(x, 2.0);
    let grads = tape.backward(y);
    assert_eq!(grads.get(x).unwrap().data(), &[2.0, 2.0, 2.0]);
}

#[test]
fn tape_len_tracks_nodes() {
    let mut tape = Tape::new();
    assert!(tape.is_empty());
    let a = tape.input(Tensor::scalar(1.0));
    let _ = tape.scale(a, 2.0);
    assert_eq!(tape.len(), 2);
}

#[test]
fn rank4_tensors_supported_through_conv_path() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut tape = Tape::new();
    let x = tape.input(Tensor::randn(Shape::d4(1, 1, 6, 6), 0.0, 1.0, &mut rng));
    let w = tape.input(Tensor::randn(Shape::d4(2, 1, 3, 3), 0.0, 0.3, &mut rng));
    let b = tape.input(Tensor::zeros(Shape::d1(2)));
    let y = tape.conv2d(x, w, b, 1, 0);
    assert_eq!(tape.shape(y), Shape::d4(1, 2, 4, 4));
    let p = tape.max_pool2d(y, 2);
    assert_eq!(tape.shape(p), Shape::d4(1, 2, 2, 2));
    let g = tape.avg_pool2d_global(p);
    assert_eq!(tape.shape(g), Shape::d2(1, 2));
}
