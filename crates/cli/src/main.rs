//! `trajcl` binary entry point — a thin shim over [`trajcl_cli::run`].

use trajcl_cli::{run, Args};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("try `trajcl help`");
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout();
    std::process::exit(run(&args, &mut stdout));
}
