//! # trajcl-cli
//!
//! Implementation of the `trajcl` command-line tool:
//!
//! ```text
//! trajcl generate --profile porto --count 1000 --out data.traj
//! trajcl stats    --input data.traj
//! trajcl train    --input data.traj --out model.tcl [--dim 32 --epochs 4]
//! trajcl embed    --model model.tcl --input data.traj --out emb.csv
//! trajcl query    --model model.tcl --db data.traj --query 0 -k 5
//! trajcl approx   --model model.tcl --input data.traj --measure hausdorff
//! ```
//!
//! The command logic lives in this library crate so it can be unit-tested;
//! `main.rs` is a thin argv shim.

pub mod args;
pub mod commands;

pub use args::{Args, ParsedCommand};
pub use commands::run;
