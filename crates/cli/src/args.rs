//! Tiny dependency-free argument parser for the `trajcl` CLI.

use std::collections::BTreeMap;

/// Parsed command line: subcommand + `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    /// `--key value` pairs.
    pub options: BTreeMap<String, String>,
}

/// Recognised subcommands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParsedCommand {
    /// Generate a synthetic dataset.
    Generate,
    /// Print dataset statistics.
    Stats,
    /// Train a TrajCL model.
    Train,
    /// Embed trajectories with a trained model.
    Embed,
    /// kNN query against a trajectory database.
    Query,
    /// Stream trajectories into a running server over the wire protocol.
    Upsert,
    /// Fine-tune into a heuristic-measure estimator and evaluate it.
    Approx,
    /// Run the concurrent query server over stdin/stdout frames.
    Serve,
    /// Run the workspace lint pass and decoder fuzzer.
    Audit,
    /// Print usage.
    Help,
}

/// Options that are boolean flags: `--json` takes no value.
const BOOL_FLAGS: &[&str] = &["json", "lint", "fuzz", "fuzz-quick", "fail-closed"];

impl Args {
    /// Parses an argv-style list (excluding the program name).
    ///
    /// Returns `Err` with a message on malformed input (option without a
    /// value, unknown leading option, ...). Options listed in
    /// `BOOL_FLAGS` take no value and parse as `"true"`.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut it = argv.iter();
        let command = match it.next() {
            Some(c) if !c.starts_with("--") => c.clone(),
            Some(c) => return Err(format!("expected a subcommand, got option {c}")),
            None => "help".to_string(),
        };
        let mut options = BTreeMap::new();
        let rest: Vec<&String> = it.collect();
        let mut i = 0;
        while i < rest.len() {
            let key = rest[i];
            if !key.starts_with("--") {
                return Err(format!("expected --option, got {key}"));
            }
            // Flags like `-k 5` are normalised by the caller to `--k 5`.
            let name = key.trim_start_matches('-').to_string();
            if BOOL_FLAGS.contains(&name.as_str()) {
                options.insert(name, "true".to_string());
                i += 1;
                continue;
            }
            let value = rest
                .get(i + 1)
                .ok_or_else(|| format!("option {key} needs a value"))?;
            options.insert(name, (*value).clone());
            i += 2;
        }
        Ok(Args { command, options })
    }

    /// Whether a boolean flag was passed.
    pub fn flag(&self, key: &str) -> bool {
        matches!(
            self.options.get(key).map(String::as_str),
            Some("true") | Some("1")
        )
    }

    /// The subcommand as an enum.
    pub fn command(&self) -> Result<ParsedCommand, String> {
        match self.command.as_str() {
            "generate" => Ok(ParsedCommand::Generate),
            "stats" => Ok(ParsedCommand::Stats),
            "train" => Ok(ParsedCommand::Train),
            "embed" => Ok(ParsedCommand::Embed),
            "query" => Ok(ParsedCommand::Query),
            "upsert" => Ok(ParsedCommand::Upsert),
            "approx" => Ok(ParsedCommand::Approx),
            "serve" => Ok(ParsedCommand::Serve),
            "audit" => Ok(ParsedCommand::Audit),
            "help" | "-h" | "--help" => Ok(ParsedCommand::Help),
            other => Err(format!("unknown command {other:?}; try `trajcl help`")),
        }
    }

    /// Required string option.
    pub fn req(&self, key: &str) -> Result<&str, String> {
        self.options
            .get(key)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// Optional string option with default.
    pub fn opt<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.options.get(key).map(|s| s.as_str()).unwrap_or(default)
    }

    /// Optional numeric option with default.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("option --{key} has invalid value {v:?}")),
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
trajcl — contrastive trajectory similarity learning (TrajCL, ICDE 2023)

USAGE:
  trajcl generate --profile <porto|chengdu|xian|germany> --count N --out FILE [--seed N]
  trajcl stats    --input FILE
  trajcl train    --input FILE --out MODEL [--dim N] [--epochs N] [--batch N] [--seed N]
  trajcl embed    --model MODEL --input FILE --out CSV
  trajcl query    --model MODEL --db FILE --query IDX [--k N] [--index NLIST]
                  [--quantize sq8|pq4[:M]|pq[:M]] [--scan symmetric|asym]
                  [--rescore-factor N] [--json]
  trajcl query    --connect ADDR --db FILE --query IDX [--k N] [--json]
  trajcl upsert   --connect ADDR --input FILE [--start-id N] [--json]
  trajcl approx   --model MODEL --input FILE --measure <hausdorff|frechet|edr|edwp|dtw> [--json]
  trajcl serve    --model MODEL --db FILE [--listen ADDR] [--shards N]
                  [--index NLIST] [--wal DIR]
                  [--quantize sq8|pq4[:M]|pq[:M]] [--scan symmetric|asym]
                  [--workers N] [--max-batch N] [--max-wait-us N]
                  [--cache N] [--queue N] [--idle-timeout-ms N]
  trajcl serve    --fleet ADDR1,ADDR2,... [--listen ADDR] [--fail-closed]
                  [--op-deadline-ms N] [--retries N] [--probe-ms N]
                  [--idle-timeout-ms N]
  trajcl audit    [--lint] [--fuzz | --fuzz-quick] [--cases N]
                  [--root DIR] [--repro-dir DIR]

FILES:
  *.traj   one trajectory per line: `x,y x,y ...` (meters)
  *.tcl    persisted engine: encoder weights + featurizer (grid + cell
           table) + serving configuration; legacy model-only files load too

All commands run through the unified trajcl-engine API; `--json` emits one
machine-readable JSON object per line instead of the human-readable report.

`--quantize sq8` stores indexed vectors as per-dimension int8 codes (4x
smaller); `--quantize pq[:M]` as M-byte product-quantized codes (default
M=8 — sub-byte per dimension); `--quantize pq4[:M]` packs two 4-bit PQ
codes per byte for half the PQ footprint. `--scan symmetric` quantizes
the query too and scans SQ8 codes with integer SIMD kernels
(AVX-512/AVX2/scalar picked at runtime; set TRAJCL_FORCE_SCALAR=1 to pin
the portable path). `query` rescores the top
`--rescore-factor` x k quantized candidates against the engine's exact
f32 embeddings, so its distances stay exact; `serve`'s mutable index
keeps no exact copy of sealed rows, but rescores hits that still match
the engine's cached table (ids upserted through the server keep
asymmetric, error-bounded distances).

`serve` speaks length-prefixed JSON frames (`LEN\\n{...}\\n`): ops ping,
embed, knn, distance, upsert, remove, compact, stats (PROTOCOL.md at
the repo root is the normative wire spec). By default frames flow over
stdin/stdout (logs go to stderr; stdout carries only frames). With
`--listen HOST:PORT` (or `--listen unix:PATH`) the server instead
accepts any number of TCP / unix-socket connections and runs until
stdin closes. `--shards N` partitions the mutable index into N
hash-on-id shards so writes on different shards never contend (the
count persists in the engine file; the flag overrides it). Responses
may arrive out of order; pass a numeric \"req\" field to match them up.
`--idle-timeout-ms N` reaps sessions quiet for N ms (0 disables).
`--wal DIR` makes writes durable: every upsert/remove/compact is
appended to a per-shard write-ahead log under DIR and fsync'd before it
is acknowledged; on restart with the same DIR the server recovers the
last checkpoint plus the log tail, so no acknowledged write is ever
lost (DESIGN.md §15; the README shows a recovery transcript).

`serve --fleet` runs the front-end router instead: no model or db — it
scatters the same wire protocol across the listed downstream shard
servers (each a `serve --listen` process), routing writes by id hash
and merging knn exactly. Shards are health-tracked (up/degraded/down,
background ping probes); downstream calls carry deadlines and
`--retries N` retries with backoff. Reads from a degraded fleet answer
with \"partial\":true plus shards_ok/shards_total, or error in-band
under `--fail-closed`. `--op-deadline-ms` bounds each downstream
call's total budget; `--probe-ms` sets the prober cadence. See
DESIGN.md §14 and the README operator's guide.

`query --connect` and `upsert --connect` are thin clients for a
listening server: they speak the same frames over the same address
syntax, so nothing needs a local model file.
";

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_command_and_options() {
        let a = Args::parse(&argv("train --input d.traj --epochs 4")).unwrap();
        assert_eq!(a.command().unwrap(), ParsedCommand::Train);
        assert_eq!(a.req("input").unwrap(), "d.traj");
        assert_eq!(a.num::<usize>("epochs", 1).unwrap(), 4);
        assert_eq!(a.num::<usize>("batch", 32).unwrap(), 32);
    }

    #[test]
    fn empty_argv_is_help() {
        let a = Args::parse(&[]).unwrap();
        assert_eq!(a.command().unwrap(), ParsedCommand::Help);
    }

    #[test]
    fn rejects_missing_values_and_unknown_commands() {
        assert!(Args::parse(&argv("train --input")).is_err());
        assert!(Args::parse(&argv("--input x")).is_err());
        let a = Args::parse(&argv("frobnicate")).unwrap();
        assert!(a.command().is_err());
    }

    #[test]
    fn req_reports_missing_option() {
        let a = Args::parse(&argv("stats")).unwrap();
        assert!(a.req("input").unwrap_err().contains("--input"));
    }

    #[test]
    fn num_rejects_garbage() {
        let a = Args::parse(&argv("train --epochs banana")).unwrap();
        assert!(a.num::<usize>("epochs", 1).is_err());
    }

    #[test]
    fn json_flag_takes_no_value() {
        let a = Args::parse(&argv("query --json --k 3")).unwrap();
        assert!(a.flag("json"));
        assert_eq!(a.num::<usize>("k", 5).unwrap(), 3);
        let a = Args::parse(&argv("query --k 3 --json")).unwrap();
        assert!(a.flag("json"));
        let a = Args::parse(&argv("query --k 3")).unwrap();
        assert!(!a.flag("json"));
    }
}
