//! Subcommand implementations for the `trajcl` CLI.
//!
//! Every command drives the unified [`trajcl_engine::Engine`] API and
//! propagates the typed [`EngineError`] — no stringly-typed plumbing.

use crate::args::{Args, ParsedCommand, USAGE};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write as _;
use std::path::Path;
use trajcl_core::{load_model, FinetuneConfig, FinetuneScope, TrajClConfig};
use trajcl_data::{hit_ratio, load_trajectory_file, save_trajectory_file, Dataset, DatasetProfile};
use trajcl_engine::{Engine, EngineError};
use trajcl_geo::Trajectory;
use trajcl_measures::{pairwise_distances, HeuristicMeasure};
use trajcl_serve::{ServeConfig, Server};

/// Runs a parsed command; returns the process exit code. (`Send` because
/// `serve` fans request handling out across threads that share `out`.)
pub fn run(args: &Args, out: &mut (impl std::io::Write + Send)) -> i32 {
    match execute(args, out) {
        Ok(()) => 0,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            1
        }
    }
}

fn execute(args: &Args, out: &mut (impl std::io::Write + Send)) -> Result<(), EngineError> {
    match args.command().map_err(EngineError::InvalidInput)? {
        ParsedCommand::Help => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        ParsedCommand::Generate => generate(args, out),
        ParsedCommand::Stats => stats(args, out),
        ParsedCommand::Train => train_cmd(args, out),
        ParsedCommand::Embed => embed(args, out),
        ParsedCommand::Query => query(args, out),
        ParsedCommand::Upsert => upsert_remote(args, out),
        ParsedCommand::Approx => approx(args, out),
        ParsedCommand::Serve => serve(args, out),
        ParsedCommand::Audit => audit_cmd(args, out),
    }
}

/// `trajcl audit`: the workspace lint pass and/or decoder fuzzer.
///
/// Bare `trajcl audit` runs both at CI depth; `--lint`, `--fuzz-quick`
/// (100k cases/target) and `--fuzz` (400k cases/target) select subsets,
/// and `--cases N` overrides the depth explicitly. Reproducers for fuzz
/// failures land in `--repro-dir` (default `target/audit-repros`).
fn audit_cmd(args: &Args, out: &mut impl std::io::Write) -> Result<(), EngineError> {
    let want_lint = args.flag("lint");
    let want_deep = args.flag("fuzz");
    let want_quick = args.flag("fuzz-quick");
    let everything = !(want_lint || want_deep || want_quick);
    let root = std::path::PathBuf::from(args.opt("root", "."));
    let mut failures: Vec<String> = Vec::new();

    if want_lint || everything {
        let report = trajcl_audit::lint::run_lint(&root)?;
        writeln!(
            out,
            "lint: {} files, {} grandfathered site(s), {} new violation(s)",
            report.files,
            report.grandfathered,
            report.new_violations.len()
        )?;
        for v in &report.new_violations {
            writeln!(out, "  {v}")?;
        }
        for stale in &report.stale_allowances {
            writeln!(out, "  note: stale allowance {stale}")?;
        }
        if !report.passed() {
            failures.push(format!(
                "{} lint violation(s) beyond crates/audit/allowlist.txt",
                report.new_violations.len()
            ));
        }
    }

    if want_deep || want_quick || everything {
        let default_cases = if want_deep { 400_000 } else { 100_000 };
        let cases = num(args, "cases", default_cases)?;
        let repro_dir = std::path::PathBuf::from(
            args.opt(
                "repro-dir",
                &root.join("target/audit-repros").to_string_lossy(),
            )
            .to_string(),
        );
        let report = trajcl_audit::fuzz::run_all(&trajcl_audit::FuzzOptions {
            cases_per_target: cases,
            repro_dir: Some(repro_dir),
        });
        for t in &report.targets {
            writeln!(
                out,
                "fuzz {}: {} cases ({} accepted, {} rejected), {} panic(s)",
                t.name, t.cases, t.accepted, t.rejected, t.panics
            )?;
            for path in &t.repro_paths {
                writeln!(out, "  reproducer: {}", path.display())?;
            }
        }
        if !report.passed() {
            failures.push(format!("{} fuzz panic(s)", report.total_panics()));
        }
    }

    if failures.is_empty() {
        writeln!(out, "audit: PASS")?;
        Ok(())
    } else {
        Err(invalid(format!("audit failed: {}", failures.join("; "))))
    }
}

fn invalid(msg: impl Into<String>) -> EngineError {
    EngineError::InvalidInput(msg.into())
}

fn req<'a>(args: &'a Args, key: &str) -> Result<&'a str, EngineError> {
    args.req(key).map_err(invalid)
}

fn num<T: std::str::FromStr>(args: &Args, key: &str, default: T) -> Result<T, EngineError> {
    args.num(key, default).map_err(invalid)
}

fn parse_profile(name: &str) -> Result<DatasetProfile, EngineError> {
    match name.to_lowercase().as_str() {
        "porto" => Ok(DatasetProfile::Porto),
        "chengdu" => Ok(DatasetProfile::Chengdu),
        "xian" | "xi'an" => Ok(DatasetProfile::Xian),
        "germany" => Ok(DatasetProfile::Germany),
        other => Err(invalid(format!("unknown profile {other:?}"))),
    }
}

fn parse_measure(name: &str) -> Result<HeuristicMeasure, EngineError> {
    match name.to_lowercase().as_str() {
        "hausdorff" => Ok(HeuristicMeasure::Hausdorff),
        "frechet" => Ok(HeuristicMeasure::Frechet),
        "edr" => Ok(HeuristicMeasure::Edr(100.0)),
        "edwp" => Ok(HeuristicMeasure::Edwp),
        "dtw" => Ok(HeuristicMeasure::Dtw),
        other => Err(invalid(format!("unknown measure {other:?}"))),
    }
}

/// Loads a persisted engine, accepting both the engine format (`TCE1`) and
/// legacy model-only files (`TCL1`) for backwards compatibility.
fn load_engine(path: &str) -> Result<Engine, EngineError> {
    let bytes = std::fs::read(path)?;
    match Engine::from_bytes(&bytes) {
        Ok(engine) => Ok(engine),
        Err(EngineError::CorruptEngineFile("bad magic")) => {
            let (model, featurizer) = load_model(&bytes)?;
            Engine::builder().trajcl(model, featurizer).build()
        }
        Err(e) => Err(e),
    }
}

fn generate(args: &Args, out: &mut impl std::io::Write) -> Result<(), EngineError> {
    let profile = parse_profile(req(args, "profile")?)?;
    let count: usize = num(args, "count", 1000)?;
    let seed: u64 = num(args, "seed", 0)?;
    let path = req(args, "out")?;
    let dataset = Dataset::generate(profile, count, seed);
    save_trajectory_file(Path::new(path), &dataset.trajectories)?;
    let s = dataset.stats();
    writeln!(
        out,
        "wrote {} trajectories to {path} (avg {:.0} pts, avg {:.2} km)",
        s.count, s.avg_points, s.avg_length_km
    )?;
    Ok(())
}

fn stats(args: &Args, out: &mut impl std::io::Write) -> Result<(), EngineError> {
    let trajs = load_trajectory_file(Path::new(req(args, "input")?))?;
    if trajs.is_empty() {
        return Err(EngineError::EmptyBatch);
    }
    let n = trajs.len();
    let pts: usize = trajs.iter().map(|t| t.len()).sum();
    let max_pts = trajs.iter().map(|t| t.len()).max().unwrap_or(0);
    let total_km: f64 = trajs.iter().map(|t| t.length() / 1000.0).sum();
    let max_km = trajs
        .iter()
        .map(|t| t.length() / 1000.0)
        .fold(0.0, f64::max);
    writeln!(out, "#trajectories            {n}")?;
    writeln!(out, "avg points / trajectory  {:.1}", pts as f64 / n as f64)?;
    writeln!(out, "max points / trajectory  {max_pts}")?;
    writeln!(out, "avg length (km)          {:.2}", total_km / n as f64)?;
    writeln!(out, "max length (km)          {max_km:.2}")?;
    Ok(())
}

/// Builds a dataset wrapper around loaded trajectories so the featurizer
/// helper can be reused.
fn dataset_from(trajs: Vec<Trajectory>) -> Dataset {
    let mut region = trajs[0].bbox();
    for t in &trajs[1..] {
        region = region.union(&t.bbox());
    }
    Dataset {
        profile: DatasetProfile::Porto,
        trajectories: trajs,
        region,
    }
}

fn train_cmd(args: &Args, out: &mut impl std::io::Write) -> Result<(), EngineError> {
    let trajs = load_trajectory_file(Path::new(req(args, "input")?))?;
    if trajs.len() < 8 {
        return Err(EngineError::TooFewTrajectories {
            needed: 8,
            got: trajs.len(),
        });
    }
    let seed: u64 = num(args, "seed", 0)?;
    let mut cfg = TrajClConfig::scaled_default();
    cfg.dim = num(args, "dim", 32)?;
    cfg.ffn_hidden = cfg.dim * 2;
    cfg.proj_dim = (cfg.dim / 2).max(8);
    cfg.max_epochs = num(args, "epochs", 3)?;
    cfg.batch_size = num(args, "batch", 32)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let dataset = dataset_from(trajs);
    writeln!(
        out,
        "building featurizer (grid + node2vec) and training TrajCL (dim={}, epochs<={})...",
        cfg.dim, cfg.max_epochs
    )?;
    let engine = Engine::builder()
        .train_trajcl(&dataset, &cfg, &mut rng)?
        .batch_size(cfg.batch_size)
        .build()?;
    let report = engine
        .train_report()
        .expect("builder-trained engine has a report");
    writeln!(
        out,
        "trained {} epochs in {:.1}s (final loss {:.4})",
        report.epochs_run,
        report.seconds,
        report.epoch_losses.last().copied().unwrap_or(f32::NAN)
    )?;
    let path = req(args, "out")?;
    engine.save(Path::new(path))?;
    writeln!(out, "saved engine to {path}")?;
    Ok(())
}

fn embed(args: &Args, out: &mut impl std::io::Write) -> Result<(), EngineError> {
    let engine = load_engine(req(args, "model")?)?;
    let trajs = load_trajectory_file(Path::new(req(args, "input")?))?;
    let emb = engine.embed_all(&trajs)?;
    let path = req(args, "out")?;
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    for r in 0..emb.shape().rows() {
        let row: Vec<String> = emb.row(r).iter().map(|v| format!("{v:.6}")).collect();
        writeln!(file, "{}", row.join(","))?;
    }
    writeln!(
        out,
        "wrote {} x {} embeddings to {path}",
        trajs.len(),
        engine.backend().dim()
    )?;
    Ok(())
}

/// One kNN hit as a JSON line (schema: rank, index, distance, points, km).
fn json_hit_line(rank: usize, id: u32, dist: f64, points: usize, km: f64) -> String {
    format!(
        "{{\"rank\":{rank},\"index\":{id},\"distance\":{dist:.6},\"points\":{points},\"km\":{km:.3}}}"
    )
}

/// The approx summary as a JSON line (schema: measure, k, hr, queries,
/// database).
fn json_approx_line(measure: &str, k: usize, hr: f64, queries: usize, database: usize) -> String {
    format!(
        "{{\"measure\":\"{measure}\",\"k\":{k},\"hr\":{hr:.4},\"queries\":{queries},\"database\":{database}}}"
    )
}

/// Parses the `--quantize` option (`sq8` | `pq4[:M]` | `pq[:M]` |
/// `none`), when present.
fn parse_quantize(args: &Args) -> Result<Option<trajcl_engine::Quantization>, EngineError> {
    args.options
        .get("quantize")
        .map(|v| v.parse().map_err(invalid))
        .transpose()
}

/// Parses the `--scan` option (`symmetric` | `asym`), when present.
fn parse_scan(args: &Args) -> Result<Option<trajcl_engine::ScanMode>, EngineError> {
    args.options
        .get("scan")
        .map(|v| v.parse().map_err(invalid))
        .transpose()
}

fn query(args: &Args, out: &mut impl std::io::Write) -> Result<(), EngineError> {
    if args.options.contains_key("connect") {
        return query_remote(args, out);
    }
    let mut engine = load_engine(req(args, "model")?)?;
    if args.options.contains_key("index") {
        let nlist: usize = num(args, "index", 16)?;
        engine = engine.with_ivf_index(nlist.max(1));
    }
    if let Some(quant) = parse_quantize(args)? {
        // Quantization is a property of the IVF index; without one the
        // flag would silently do nothing.
        if quant != trajcl_engine::Quantization::None && !args.options.contains_key("index") {
            return Err(invalid(
                "--quantize needs --index NLIST (quantization applies to the IVF index)",
            ));
        }
        engine = engine.with_quantization(quant);
    }
    if let Some(scan) = parse_scan(args)? {
        // Symmetric scanning is a property of the SQ8-quantized IVF
        // index; without one the flag would silently do nothing.
        if scan == trajcl_engine::ScanMode::Symmetric && !args.options.contains_key("index") {
            return Err(invalid(
                "--scan symmetric needs --index NLIST and --quantize sq8 (it selects the SQ8 scan kernel)",
            ));
        }
        engine = engine.with_scan_mode(scan);
    }
    let rescore = num(args, "rescore-factor", engine.rescore_factor())?;
    engine = engine.with_rescore_factor(rescore);
    let db = load_trajectory_file(Path::new(req(args, "db")?))?;
    let engine = engine.with_database(db)?;
    let qi: usize = num(args, "query", 0)?;
    let k: usize = num(args, "k", 5)?;
    let hits = engine.knn_by_index(qi, k)?;
    let db = engine.database();
    if args.flag("json") {
        for (rank, (id, dist)) in hits.iter().enumerate() {
            let t = &db[*id as usize];
            writeln!(
                out,
                "{}",
                json_hit_line(rank + 1, *id, *dist, t.len(), t.length() / 1000.0)
            )?;
        }
        return Ok(());
    }
    writeln!(out, "top-{k} similar to trajectory {qi}:")?;
    for (rank, (id, dist)) in hits.iter().enumerate() {
        let t = &db[*id as usize];
        writeln!(
            out,
            "  #{} idx={id} L1={dist:.4} ({} pts, {:.2} km)",
            rank + 1,
            t.len(),
            t.length() / 1000.0
        )?;
    }
    Ok(())
}

/// A trajectory as the wire protocol's `[[x,y],...]` point array.
fn traj_json(t: &Trajectory) -> String {
    let pts: Vec<String> = t
        .points()
        .iter()
        .map(|p| format!("[{},{}]", p.x, p.y))
        .collect();
    format!("[{}]", pts.join(","))
}

/// Parses a response frame, turning the in-band `{"ok":false,...}` error
/// convention into an [`EngineError`].
fn parse_response(reply: &str) -> Result<trajcl_serve::json::Json, EngineError> {
    let v = trajcl_serve::json::parse(reply)
        .map_err(|e| invalid(format!("malformed response from server: {e}")))?;
    if v.get("ok") == Some(&trajcl_serve::json::Json::Bool(true)) {
        return Ok(v);
    }
    let msg = v
        .get("error")
        .and_then(|e| e.as_str())
        .unwrap_or("request failed");
    Err(invalid(format!("server error: {msg}")))
}

/// `trajcl query --connect ADDR`: the kNN runs on a listening server
/// over the wire protocol (`PROTOCOL.md`) — no local model needed; the
/// `--db` file only supplies the query trajectory.
fn query_remote(args: &Args, out: &mut impl std::io::Write) -> Result<(), EngineError> {
    let addr = req(args, "connect")?;
    let db = load_trajectory_file(Path::new(req(args, "db")?))?;
    let qi: usize = num(args, "query", 0)?;
    let traj = db.get(qi).ok_or_else(|| {
        invalid(format!(
            "--query {qi} out of range ({} trajectories in the file)",
            db.len()
        ))
    })?;
    let k: usize = num(args, "k", 5)?;
    let mut client = trajcl_serve::Client::connect(addr)?;
    let reply = client.call(&format!(
        "{{\"op\":\"knn\",\"traj\":{},\"k\":{k}}}",
        traj_json(traj)
    ))?;
    let v = parse_response(&reply)?;
    let hits = v
        .get("hits")
        .and_then(|h| h.as_arr())
        .ok_or_else(|| invalid("knn response carries no \"hits\""))?;
    // Fleet front-ends mark degraded answers (PROTOCOL.md §7); surface
    // the marker instead of letting a narrower answer pass as full.
    let partial = v.get("partial") == Some(&trajcl_serve::json::Json::Bool(true));
    let shards_ok = v.get("shards_ok").and_then(|x| x.as_u64());
    let shards_total = v.get("shards_total").and_then(|x| x.as_u64());
    if !args.flag("json") {
        let note = match (partial, shards_ok, shards_total) {
            (true, Some(ok), Some(total)) => {
                format!("; PARTIAL: {ok}/{total} shards answered")
            }
            _ => String::new(),
        };
        writeln!(
            out,
            "top-{k} similar to trajectory {qi} (served by {addr}{note}):"
        )?;
    }
    for h in hits {
        let rank = h.get("rank").and_then(|x| x.as_u64());
        let id = h.get("index").and_then(|x| x.as_u64());
        let dist = h.get("distance").and_then(|x| x.as_f64());
        let (Some(rank), Some(id), Some(dist)) = (rank, id, dist) else {
            return Err(invalid("malformed hit row in knn response"));
        };
        if args.flag("json") {
            writeln!(
                out,
                "{{\"rank\":{rank},\"index\":{id},\"distance\":{dist:.6}}}"
            )?;
        } else {
            writeln!(out, "  #{rank} idx={id} L1={dist:.4}")?;
        }
    }
    // In --json mode a degraded answer appends one trailer object, so
    // line-oriented consumers can't mistake a partial answer for full.
    if args.flag("json") && partial {
        if let (Some(ok), Some(total)) = (shards_ok, shards_total) {
            writeln!(
                out,
                "{{\"partial\":true,\"shards_ok\":{ok},\"shards_total\":{total}}}"
            )?;
        }
    }
    Ok(())
}

/// `trajcl upsert --connect ADDR`: streams every trajectory in `--input`
/// into a listening server as upsert frames with ids `--start-id..`,
/// awaiting each ack (writes are acknowledged, never fire-and-forget).
fn upsert_remote(args: &Args, out: &mut impl std::io::Write) -> Result<(), EngineError> {
    let addr = req(args, "connect")?;
    let trajs = load_trajectory_file(Path::new(req(args, "input")?))?;
    let start: u64 = num(args, "start-id", 0)?;
    let mut client = trajcl_serve::Client::connect(addr)?;
    let mut replaced = 0usize;
    for (i, t) in trajs.iter().enumerate() {
        let reply = client.call(&format!(
            "{{\"op\":\"upsert\",\"id\":{},\"traj\":{}}}",
            start + i as u64,
            traj_json(t)
        ))?;
        let v = parse_response(&reply)?;
        if v.get("replaced") == Some(&trajcl_serve::json::Json::Bool(true)) {
            replaced += 1;
        }
    }
    if args.flag("json") {
        writeln!(
            out,
            "{{\"upserted\":{},\"replaced\":{replaced},\"start_id\":{start}}}",
            trajs.len()
        )?;
    } else {
        writeln!(
            out,
            "upserted {} trajectories as ids {start}..{} ({replaced} replaced)",
            trajs.len(),
            start + trajs.len() as u64
        )?;
    }
    Ok(())
}

/// The `--idle-timeout-ms` option: `0` disables reaping, absent keeps
/// `default`.
fn idle_timeout_opt(
    args: &Args,
    default: Option<std::time::Duration>,
) -> Result<Option<std::time::Duration>, EngineError> {
    if !args.options.contains_key("idle-timeout-ms") {
        return Ok(default);
    }
    let ms: u64 = num(args, "idle-timeout-ms", 0)?;
    Ok((ms > 0).then(|| std::time::Duration::from_millis(ms)))
}

/// Builds the serving runtime from CLI options, then serves protocol
/// frames: on a TCP / unix-socket listener with `--listen`, or between
/// stdin and `out` until end-of-stream otherwise. With `--fleet` the
/// process is instead the front-end router over downstream shard
/// servers — no model or database of its own.
fn serve(args: &Args, out: &mut (impl std::io::Write + Send)) -> Result<(), EngineError> {
    if args.options.contains_key("fleet") {
        return serve_fleet(args, out);
    }
    let engine = load_engine(req(args, "model")?)?;
    // The server only ever consults its own MutableIndex, so k-means must
    // train there and nowhere else: remember the engine's persisted IVF
    // configuration, then strip it so with_database skips the engine-side
    // build (which would otherwise duplicate both the training time and
    // the vector table).
    let engine_nlist = engine.nlist();
    let engine = engine.without_ivf_index();
    let db = load_trajectory_file(Path::new(req(args, "db")?))?;
    let engine = engine.with_database(db)?;
    let mut cfg = ServeConfig {
        ivf_nlist: engine_nlist,
        ..ServeConfig::default()
    };
    if args.options.contains_key("index") {
        let nlist: usize = num(args, "index", 16)?;
        cfg.ivf_nlist = Some(nlist.max(1));
    }
    cfg.quantization = parse_quantize(args)?;
    cfg.scan = parse_scan(args)?;
    cfg.workers = num(args, "workers", cfg.workers)?;
    cfg.max_batch = num(args, "max-batch", cfg.max_batch)?;
    cfg.max_wait = std::time::Duration::from_micros(num(args, "max-wait-us", 2000u64)?);
    cfg.cache_cap = num(args, "cache", cfg.cache_cap)?;
    cfg.queue_cap = num(args, "queue", cfg.queue_cap)?;
    if args.options.contains_key("shards") {
        cfg.shards = Some(num::<usize>(args, "shards", 1)?.max(1));
    }
    cfg.idle_timeout = idle_timeout_opt(args, cfg.idle_timeout)?;
    if let Some(dir) = args.options.get("wal") {
        let mut wal = trajcl_serve::WalConfig::new(dir.as_str());
        // An engine saved with a Buffered preference keeps it; any other
        // preference (including the Ephemeral default) serves at full
        // fsync durability — asking for --wal means asking for the
        // ack-implies-durable contract.
        if engine.durability() == trajcl_engine::Durability::Buffered {
            wal.durability = trajcl_engine::Durability::Buffered;
        }
        cfg.wal = Some(wal);
    }
    let handlers = cfg.workers.max(1);
    let server = Server::new(std::sync::Arc::new(engine), cfg)?;
    if let Some(rec) = server.wal_recovery() {
        eprintln!(
            "trajcl serve: WAL recovery replayed {} checkpoint row(s) + {} log op(s), \
             discarded {} torn byte(s)",
            rec.checkpoint_rows, rec.replayed_ops, rec.truncated_bytes
        );
    }
    if let Some(addr) = args.options.get("listen") {
        let server = std::sync::Arc::new(server);
        let net = trajcl_serve::net::listen(std::sync::Arc::clone(&server), addr, handlers)?;
        let stats = server.stats();
        eprintln!(
            "trajcl serve: {} vectors indexed across {} shard(s), {} workers; listening on {}",
            stats.index_len,
            stats.shards,
            handlers,
            net.local_addr()
        );
        // The listener runs until stdin closes (Ctrl-D interactively, or
        // the parent process closing the pipe / sending SIGTERM).
        std::io::copy(&mut std::io::stdin().lock(), &mut std::io::sink())?;
        net.shutdown();
        server.shutdown();
        return Ok(());
    }
    let stats = server.stats();
    eprintln!(
        "trajcl serve: {} vectors indexed across {} shard(s), {} workers; reading frames from stdin",
        stats.index_len, stats.shards, handlers
    );
    let stdin = std::io::stdin();
    serve_session(&server, &mut stdin.lock(), out, handlers)?;
    server.shutdown();
    Ok(())
}

/// `trajcl serve --fleet A,B,...`: the front-end router. Dials the
/// downstream shard servers, health-tracks them, and serves the same
/// wire protocol — scattering reads, routing writes by id hash, and
/// degrading to `"partial":true` answers when shards are down (or
/// erroring under `--fail-closed`). See DESIGN.md §14.
fn serve_fleet(args: &Args, out: &mut (impl std::io::Write + Send)) -> Result<(), EngineError> {
    let addrs: Vec<String> = req(args, "fleet")?
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    let mut cfg = trajcl_serve::FleetConfig {
        fail_closed: args.flag("fail-closed"),
        ..trajcl_serve::FleetConfig::default()
    };
    cfg.op_deadline = std::time::Duration::from_millis(num(args, "op-deadline-ms", 10_000u64)?);
    cfg.retries = num(args, "retries", cfg.retries)?;
    cfg.probe_interval = std::time::Duration::from_millis(num(args, "probe-ms", 500u64)?.max(1));
    let fleet = std::sync::Arc::new(trajcl_serve::Fleet::connect(&addrs, cfg)?);
    let up = fleet
        .health()
        .iter()
        .filter(|h| **h == trajcl_serve::ShardHealth::Up)
        .count();
    let handlers = num(args, "workers", 4usize)?.max(1);
    let session = trajcl_serve::SessionOptions {
        idle_timeout: idle_timeout_opt(args, trajcl_serve::SessionOptions::default().idle_timeout)?,
        ..trajcl_serve::SessionOptions::default()
    };
    if let Some(addr) = args.options.get("listen") {
        let net =
            trajcl_serve::listen_with(std::sync::Arc::clone(&fleet), addr, handlers, session)?;
        eprintln!(
            "trajcl serve: fleet front-end over {} shard(s) ({up} up); listening on {}",
            fleet.shards_total(),
            net.local_addr()
        );
        // Like shard mode: run until stdin closes.
        std::io::copy(&mut std::io::stdin().lock(), &mut std::io::sink())?;
        net.shutdown();
        fleet.shutdown();
        return Ok(());
    }
    eprintln!(
        "trajcl serve: fleet front-end over {} shard(s) ({up} up); reading frames from stdin",
        fleet.shards_total()
    );
    let stdin = std::io::stdin();
    trajcl_serve::net::pump_frames(&*fleet, &mut stdin.lock(), out, handlers)?;
    fleet.shutdown();
    Ok(())
}

/// Pumps frames between `input` and `out` — the stdin/stdout transport
/// is [`trajcl_serve::net::pump_frames`] over standard streams, exactly
/// the loop every TCP / unix-socket connection runs.
fn serve_session(
    server: &Server,
    input: &mut impl std::io::BufRead,
    out: &mut (impl std::io::Write + Send),
    handlers: usize,
) -> Result<(), EngineError> {
    trajcl_serve::net::pump_frames(server, input, out, handlers)?;
    Ok(())
}

fn approx(args: &Args, out: &mut impl std::io::Write) -> Result<(), EngineError> {
    let engine = load_engine(req(args, "model")?)?;
    let trajs = load_trajectory_file(Path::new(req(args, "input")?))?;
    if trajs.len() < 20 {
        return Err(EngineError::TooFewTrajectories {
            needed: 20,
            got: trajs.len(),
        });
    }
    let measure = parse_measure(req(args, "measure")?)?;
    let json = args.flag("json");
    let mut rng = StdRng::seed_from_u64(1);
    let split = trajs.len() * 7 / 10;
    if !json {
        writeln!(
            out,
            "fine-tuning towards {} on {split} trajectories...",
            measure.name()
        )?;
    }
    let cfg = FinetuneConfig {
        scope: FinetuneScope::LastLayer,
        pairs_per_epoch: num(args, "pairs", 128)?,
        batch_pairs: 16,
        epochs: num(args, "epochs", 2)?,
        lr: 2e-3,
    };
    let estimator = engine.approximate_measure(measure, &trajs[..split], &cfg, &mut rng)?;
    // Evaluate HR@5 on the held-out tail.
    let eval = &trajs[split..];
    let nq = (eval.len() / 4).max(2);
    let (queries, database) = eval.split_at(nq);
    let true_d = pairwise_distances(queries, database, measure);
    let qe = estimator.embed_all(queries)?;
    let de = estimator.embed_all(database)?;
    let pred = trajcl_core::l1_distances(&qe, &de);
    let mut hr = 0.0;
    let dbn = database.len();
    for q in 0..nq {
        hr += hit_ratio(
            &true_d[q * dbn..(q + 1) * dbn],
            &pred[q * dbn..(q + 1) * dbn],
            5,
        );
    }
    let hr = hr / nq as f64;
    if json {
        writeln!(out, "{}", json_approx_line(measure.name(), 5, hr, nq, dbn))?;
    } else {
        writeln!(out, "HR@5 approximating {}: {hr:.3}", measure.name())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cmd(line: &str) -> (i32, String) {
        let argv: Vec<String> = line.split_whitespace().map(|s| s.to_string()).collect();
        let args = Args::parse(&argv).unwrap();
        let mut out = Vec::new();
        let code = run(&args, &mut out);
        (code, String::from_utf8(out).unwrap())
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("trajcl_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    /// Pedestrian JSON-object check: one `{...}` per line with the given
    /// keys, no nesting (the CLI promises flat objects).
    fn assert_json_lines(text: &str, keys: &[&str]) {
        assert!(!text.trim().is_empty(), "no JSON lines emitted");
        for line in text.lines() {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "not an object: {line}"
            );
            for key in keys {
                assert!(
                    line.contains(&format!("\"{key}\":")),
                    "missing key {key}: {line}"
                );
            }
        }
    }

    #[test]
    fn help_prints_usage() {
        let (code, out) = run_cmd("help");
        assert_eq!(code, 0);
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors() {
        let (code, out) = run_cmd("bogus --x 1");
        assert_eq!(code, 1);
        assert!(out.contains("unknown command"));
    }

    #[test]
    fn fleet_with_no_reachable_shard_errors_fast() {
        // Both "shards" refuse connections (port 1 is never listening);
        // startup must fail within the connect deadline instead of
        // hanging, and without demanding --model/--db.
        let start = std::time::Instant::now();
        let (code, out) =
            run_cmd("serve --fleet 127.0.0.1:1,127.0.0.1:1 --fail-closed --retries 0");
        assert_eq!(code, 1, "{out}");
        assert!(out.starts_with("error:"), "{out}");
        assert!(
            start.elapsed() < std::time::Duration::from_secs(10),
            "startup failure took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn fleet_with_empty_address_list_errors() {
        let (code, out) = run_cmd("serve --fleet , --retries 0");
        assert_eq!(code, 1);
        assert!(out.contains("at least one shard"), "{out}");
    }

    #[test]
    fn generate_then_stats() {
        let path = tmp("gen.traj");
        let (code, out) = run_cmd(&format!(
            "generate --profile porto --count 30 --out {}",
            path.display()
        ));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("wrote 30 trajectories"));
        let (code, out) = run_cmd(&format!("stats --input {}", path.display()));
        assert_eq!(code, 0);
        assert!(out.contains("#trajectories            30"));
    }

    #[test]
    fn full_train_embed_query_pipeline() {
        let data = tmp("pipeline.traj");
        let model = tmp("pipeline.tcl");
        let emb = tmp("pipeline.csv");
        let (code, out) = run_cmd(&format!(
            "generate --profile porto --count 40 --out {}",
            data.display()
        ));
        assert_eq!(code, 0, "{out}");
        let (code, out) = run_cmd(&format!(
            "train --input {} --out {} --dim 16 --epochs 1 --batch 8",
            data.display(),
            model.display()
        ));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("saved engine"));
        let (code, out) = run_cmd(&format!(
            "embed --model {} --input {} --out {}",
            model.display(),
            data.display(),
            emb.display()
        ));
        assert_eq!(code, 0, "{out}");
        let lines = std::fs::read_to_string(&emb).unwrap();
        assert_eq!(lines.lines().count(), 40);
        assert_eq!(lines.lines().next().unwrap().split(',').count(), 16);
        let (code, out) = run_cmd(&format!(
            "query --model {} --db {} --query 0 --k 3",
            model.display(),
            data.display()
        ));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("top-3 similar"));

        // The same query through the IVF index route, as JSON lines.
        let (code, out) = run_cmd(&format!(
            "query --model {} --db {} --query 0 --k 3 --index 4 --json",
            model.display(),
            data.display()
        ));
        assert_eq!(code, 0, "{out}");
        assert_json_lines(&out, &["rank", "index", "distance", "points", "km"]);
        assert_eq!(out.lines().count(), 3);

        // And through SQ8-quantized storage with exact rescoring.
        let (code, out) = run_cmd(&format!(
            "query --model {} --db {} --query 0 --k 3 --index 4 --quantize sq8 --rescore-factor 8 --json",
            model.display(),
            data.display()
        ));
        assert_eq!(code, 0, "{out}");
        assert_json_lines(&out, &["rank", "index", "distance", "points", "km"]);
        assert_eq!(out.lines().count(), 3);

        // And through PQ product-quantized storage (4 subspaces over the
        // 16-d embeddings, exact rescoring against the cached table).
        let (code, out) = run_cmd(&format!(
            "query --model {} --db {} --query 0 --k 3 --index 4 --quantize pq:4 --rescore-factor 8 --json",
            model.display(),
            data.display()
        ));
        assert_eq!(code, 0, "{out}");
        assert_json_lines(&out, &["rank", "index", "distance", "points", "km"]);
        assert_eq!(out.lines().count(), 3);

        // And through packed 4-bit PQ with a symmetric-capable scan flag
        // (the engine falls back to asymmetric scanning off SQ8).
        let (code, out) = run_cmd(&format!(
            "query --model {} --db {} --query 0 --k 3 --index 4 --quantize pq4:4 --rescore-factor 8 --json",
            model.display(),
            data.display()
        ));
        assert_eq!(code, 0, "{out}");
        assert_json_lines(&out, &["rank", "index", "distance", "points", "km"]);
        assert_eq!(out.lines().count(), 3);

        // Symmetric SQ8 scanning through the integer kernels.
        let (code, out) = run_cmd(&format!(
            "query --model {} --db {} --query 0 --k 3 --index 4 --quantize sq8 --scan symmetric --rescore-factor 8 --json",
            model.display(),
            data.display()
        ));
        assert_eq!(code, 0, "{out}");
        assert_json_lines(&out, &["rank", "index", "distance", "points", "km"]);
        assert_eq!(out.lines().count(), 3);

        // Unknown quantization is rejected with a parse error.
        let (code, out) = run_cmd(&format!(
            "query --model {} --db {} --query 0 --quantize pq9",
            model.display(),
            data.display()
        ));
        assert_eq!(code, 1);
        assert!(out.contains("unknown quantization"));

        // Unknown scan mode likewise.
        let (code, out) = run_cmd(&format!(
            "query --model {} --db {} --query 0 --index 4 --scan diagonal",
            model.display(),
            data.display()
        ));
        assert_eq!(code, 1);
        assert!(out.contains("unknown scan mode"));

        // --scan symmetric without an index would be a silent no-op.
        let (code, out) = run_cmd(&format!(
            "query --model {} --db {} --query 0 --scan symmetric",
            model.display(),
            data.display()
        ));
        assert_eq!(code, 1);
        assert!(out.contains("--index"));

        // A malformed PQ subspace count is rejected too.
        let (code, out) = run_cmd(&format!(
            "query --model {} --db {} --query 0 --index 4 --quantize pq:zero",
            model.display(),
            data.display()
        ));
        assert_eq!(code, 1);
        assert!(out.contains("subspace"));

        // --quantize without --index would be a silent no-op; reject it.
        let (code, out) = run_cmd(&format!(
            "query --model {} --db {} --query 0 --quantize sq8",
            model.display(),
            data.display()
        ));
        assert_eq!(code, 1);
        assert!(out.contains("--index"));
    }

    #[test]
    fn train_rejects_tiny_input() {
        let data = tmp("tiny.traj");
        std::fs::write(&data, "1,2 3,4\n").unwrap();
        let (code, out) = run_cmd(&format!("train --input {} --out /dev/null", data.display()));
        assert_eq!(code, 1);
        assert!(out.contains("at least 8"));
    }

    #[test]
    fn json_line_schemas_are_stable() {
        let hit = json_hit_line(1, 42, 0.25, 17, 1.234);
        assert_eq!(
            hit,
            "{\"rank\":1,\"index\":42,\"distance\":0.250000,\"points\":17,\"km\":1.234}"
        );
        let approx = json_approx_line("Hausdorff", 5, 0.75, 4, 9);
        assert_eq!(
            approx,
            "{\"measure\":\"Hausdorff\",\"k\":5,\"hr\":0.7500,\"queries\":4,\"database\":9}"
        );
        assert_json_lines(&hit, &["rank", "index", "distance", "points", "km"]);
        assert_json_lines(&approx, &["measure", "k", "hr", "queries", "database"]);
    }

    #[test]
    fn serve_session_answers_frames() {
        use trajcl_serve::proto::{read_frame, write_frame};

        let data = tmp("serve.traj");
        let model = tmp("serve.tcl");
        let (code, out) = run_cmd(&format!(
            "generate --profile porto --count 24 --out {}",
            data.display()
        ));
        assert_eq!(code, 0, "{out}");
        let (code, out) = run_cmd(&format!(
            "train --input {} --out {} --dim 16 --epochs 1 --batch 8",
            data.display(),
            model.display()
        ));
        assert_eq!(code, 0, "{out}");

        let engine = load_engine(&model.display().to_string())
            .unwrap()
            .with_database(trajcl_data::load_trajectory_file(std::path::Path::new(&data)).unwrap())
            .unwrap();
        let server = Server::new(std::sync::Arc::new(engine), ServeConfig::default()).unwrap();

        // A pipelined session: knn, upsert, remove, stats, one bad frame.
        let mut input = Vec::new();
        let q = "{\"req\":1,\"op\":\"knn\",\"traj\":[[0,0],[500,300],[900,900]],\"k\":3}";
        write_frame(&mut input, q).unwrap();
        write_frame(
            &mut input,
            "{\"req\":2,\"op\":\"upsert\",\"id\":1000,\"traj\":[[1,1],[2,2]]}",
        )
        .unwrap();
        write_frame(&mut input, "{\"req\":3,\"op\":\"remove\",\"id\":1000}").unwrap();
        write_frame(&mut input, "{\"req\":4,\"op\":\"stats\"}").unwrap();
        write_frame(&mut input, "{\"req\":5,\"op\":\"frobnicate\"}").unwrap();
        let mut output = Vec::new();
        // One handler: the upsert/remove pair on id 1000 is order-dependent
        // (a pipelined client would await the upsert ack before removing).
        serve_session(&server, &mut &input[..], &mut output, 1).unwrap();
        server.shutdown();

        let mut reader = &output[..];
        let mut responses = Vec::new();
        while let Some(frame) = read_frame(&mut reader).unwrap() {
            responses.push(frame);
        }
        assert_eq!(responses.len(), 5);
        let find = |req: usize| {
            responses
                .iter()
                .find(|r| r.contains(&format!("\"req\":{req},")))
                .unwrap_or_else(|| panic!("no response for req {req}"))
        };
        assert!(find(1).contains("\"ok\":true") && find(1).contains("\"hits\":["));
        assert!(find(2).contains("\"replaced\":false"));
        assert!(find(3).contains("\"removed\":true"));
        assert!(find(4).contains("\"size\":24"));
        assert!(find(5).contains("\"ok\":false"));
    }

    #[test]
    fn serve_session_recovers_from_wal_across_restart() {
        use trajcl_serve::proto::{read_frame, write_frame};

        let data = tmp("walserve.traj");
        let model = tmp("walserve.tcl");
        let wal_dir = tmp("walserve.wal");
        let _ = std::fs::remove_dir_all(&wal_dir);
        let (code, out) = run_cmd(&format!(
            "generate --profile porto --count 24 --out {}",
            data.display()
        ));
        assert_eq!(code, 0, "{out}");
        let (code, out) = run_cmd(&format!(
            "train --input {} --out {} --dim 16 --epochs 1 --batch 8",
            data.display(),
            model.display()
        ));
        assert_eq!(code, 0, "{out}");

        let build = || {
            load_engine(&model.display().to_string())
                .unwrap()
                .with_database(
                    trajcl_data::load_trajectory_file(std::path::Path::new(&data)).unwrap(),
                )
                .unwrap()
        };
        let wal_cfg = || ServeConfig {
            wal: Some(trajcl_serve::WalConfig::new(&wal_dir)),
            ..ServeConfig::default()
        };

        // First life: upsert over the wire (the ack implies the record
        // is fsync-durable), then die without compacting — the write
        // exists only in the log.
        {
            let server = Server::new(std::sync::Arc::new(build()), wal_cfg()).unwrap();
            assert!(server.wal_recovery().is_some());
            let mut input = Vec::new();
            write_frame(
                &mut input,
                "{\"req\":1,\"op\":\"upsert\",\"id\":1000,\"traj\":[[1,1],[2,2]]}",
            )
            .unwrap();
            write_frame(&mut input, "{\"req\":2,\"op\":\"stats\"}").unwrap();
            let mut output = Vec::new();
            serve_session(&server, &mut &input[..], &mut output, 1).unwrap();
            server.shutdown();
            let text = String::from_utf8(output).unwrap();
            assert!(text.contains("\"replaced\":false"), "{text}");
            assert!(!text.contains("\"wal_log_bytes\":0,"), "{text}");
        }

        // Second life, same WAL dir: recovery must replay the upsert.
        let server = Server::new(std::sync::Arc::new(build()), wal_cfg()).unwrap();
        let rec = server.wal_recovery().expect("wal recovery ran");
        assert_eq!(rec.replayed_ops, 1, "the logged upsert replays");
        let mut input = Vec::new();
        write_frame(&mut input, "{\"req\":1,\"op\":\"stats\"}").unwrap();
        write_frame(&mut input, "{\"req\":2,\"op\":\"remove\",\"id\":1000}").unwrap();
        let mut output = Vec::new();
        serve_session(&server, &mut &input[..], &mut output, 1).unwrap();
        server.shutdown();
        let mut reader = &output[..];
        let mut responses = Vec::new();
        while let Some(frame) = read_frame(&mut reader).unwrap() {
            responses.push(frame);
        }
        let find = |req: usize| {
            responses
                .iter()
                .find(|r| r.contains(&format!("\"req\":{req},")))
                .unwrap_or_else(|| panic!("no response for req {req}"))
        };
        // 24 seeded + the recovered upsert.
        assert!(find(1).contains("\"size\":25"), "{}", find(1));
        assert!(find(2).contains("\"removed\":true"), "{}", find(2));
        let _ = std::fs::remove_dir_all(&wal_dir);
    }

    #[test]
    fn query_and_upsert_connect_to_a_listening_server() {
        let data = tmp("client.traj");
        let model = tmp("client.tcl");
        let (code, out) = run_cmd(&format!(
            "generate --profile porto --count 24 --out {}",
            data.display()
        ));
        assert_eq!(code, 0, "{out}");
        let (code, out) = run_cmd(&format!(
            "train --input {} --out {} --dim 16 --epochs 1 --batch 8",
            data.display(),
            model.display()
        ));
        assert_eq!(code, 0, "{out}");

        // A sharded server on a free TCP port, exactly as `trajcl serve
        // --listen 127.0.0.1:0 --shards 2` builds one.
        let engine = load_engine(&model.display().to_string())
            .unwrap()
            .with_database(trajcl_data::load_trajectory_file(std::path::Path::new(&data)).unwrap())
            .unwrap();
        let cfg = ServeConfig {
            shards: Some(2),
            ..ServeConfig::default()
        };
        let server = std::sync::Arc::new(Server::new(std::sync::Arc::new(engine), cfg).unwrap());
        let net =
            trajcl_serve::net::listen(std::sync::Arc::clone(&server), "127.0.0.1:0", 1).unwrap();
        let addr = net.local_addr().to_string();

        // kNN through the wire: same JSON line shape as the local query.
        let (code, out) = run_cmd(&format!(
            "query --connect {addr} --db {} --query 0 --k 3 --json",
            data.display()
        ));
        assert_eq!(code, 0, "{out}");
        assert_json_lines(&out, &["rank", "index", "distance"]);
        assert_eq!(out.lines().count(), 3);

        // Stream the whole file back in as ids 1000.. and replace one.
        let (code, out) = run_cmd(&format!(
            "upsert --connect {addr} --input {} --start-id 1000",
            data.display()
        ));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("upserted 24 trajectories as ids 1000..1024 (0 replaced)"));
        let (code, out) = run_cmd(&format!(
            "upsert --connect {addr} --input {} --start-id 1000 --json",
            data.display()
        ));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("{\"upserted\":24,\"replaced\":24,\"start_id\":1000}"));

        // An out-of-range query index fails client-side with a clear message.
        let (code, out) = run_cmd(&format!(
            "query --connect {addr} --db {} --query 99",
            data.display()
        ));
        assert_eq!(code, 1);
        assert!(out.contains("out of range"));

        net.shutdown();
        server.shutdown();
    }

    #[test]
    fn measure_parsing() {
        assert!(parse_measure("hausdorff").is_ok());
        assert!(parse_measure("EDWP").is_ok());
        assert!(parse_measure("cosine").is_err());
        assert!(parse_profile("germany").is_ok());
        assert!(parse_profile("mars").is_err());
    }
}
