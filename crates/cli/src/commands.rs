//! Subcommand implementations for the `trajcl` CLI.

use crate::args::{Args, ParsedCommand, USAGE};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write as _;
use std::path::Path;
use trajcl_core::{
    build_featurizer, finetune, l1_distances, load_model, save_model, train, EncoderVariant,
    FinetuneConfig, FinetuneScope, MocoState, TrajClConfig,
};
use trajcl_data::{
    hit_ratio, load_trajectory_file, save_trajectory_file, Dataset, DatasetProfile,
};
use trajcl_measures::{pairwise_distances, HeuristicMeasure};
use trajcl_nn::StepDecay;

/// Runs a parsed command; returns the process exit code.
pub fn run(args: &Args, out: &mut impl std::io::Write) -> i32 {
    match execute(args, out) {
        Ok(()) => 0,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            1
        }
    }
}

fn execute(args: &Args, out: &mut impl std::io::Write) -> Result<(), String> {
    match args.command()? {
        ParsedCommand::Help => {
            writeln!(out, "{USAGE}").map_err(io_err)?;
            Ok(())
        }
        ParsedCommand::Generate => generate(args, out),
        ParsedCommand::Stats => stats(args, out),
        ParsedCommand::Train => train_cmd(args, out),
        ParsedCommand::Embed => embed(args, out),
        ParsedCommand::Query => query(args, out),
        ParsedCommand::Approx => approx(args, out),
    }
}

fn io_err(e: impl std::fmt::Display) -> String {
    format!("io: {e}")
}

fn parse_profile(name: &str) -> Result<DatasetProfile, String> {
    match name.to_lowercase().as_str() {
        "porto" => Ok(DatasetProfile::Porto),
        "chengdu" => Ok(DatasetProfile::Chengdu),
        "xian" | "xi'an" => Ok(DatasetProfile::Xian),
        "germany" => Ok(DatasetProfile::Germany),
        other => Err(format!("unknown profile {other:?}")),
    }
}

fn parse_measure(name: &str) -> Result<HeuristicMeasure, String> {
    match name.to_lowercase().as_str() {
        "hausdorff" => Ok(HeuristicMeasure::Hausdorff),
        "frechet" => Ok(HeuristicMeasure::Frechet),
        "edr" => Ok(HeuristicMeasure::Edr(100.0)),
        "edwp" => Ok(HeuristicMeasure::Edwp),
        "dtw" => Ok(HeuristicMeasure::Dtw),
        other => Err(format!("unknown measure {other:?}")),
    }
}

fn generate(args: &Args, out: &mut impl std::io::Write) -> Result<(), String> {
    let profile = parse_profile(args.req("profile")?)?;
    let count: usize = args.num("count", 1000)?;
    let seed: u64 = args.num("seed", 0)?;
    let path = args.req("out")?;
    let dataset = Dataset::generate(profile, count, seed);
    save_trajectory_file(Path::new(path), &dataset.trajectories).map_err(io_err)?;
    let s = dataset.stats();
    writeln!(
        out,
        "wrote {} trajectories to {path} (avg {:.0} pts, avg {:.2} km)",
        s.count, s.avg_points, s.avg_length_km
    )
    .map_err(io_err)?;
    Ok(())
}

fn stats(args: &Args, out: &mut impl std::io::Write) -> Result<(), String> {
    let trajs = load_trajectory_file(Path::new(args.req("input")?))
        .map_err(|e| e.to_string())?;
    if trajs.is_empty() {
        return Err("input file holds no trajectories".into());
    }
    let n = trajs.len();
    let pts: usize = trajs.iter().map(|t| t.len()).sum();
    let max_pts = trajs.iter().map(|t| t.len()).max().unwrap_or(0);
    let total_km: f64 = trajs.iter().map(|t| t.length() / 1000.0).sum();
    let max_km = trajs.iter().map(|t| t.length() / 1000.0).fold(0.0, f64::max);
    writeln!(out, "#trajectories            {n}").map_err(io_err)?;
    writeln!(out, "avg points / trajectory  {:.1}", pts as f64 / n as f64).map_err(io_err)?;
    writeln!(out, "max points / trajectory  {max_pts}").map_err(io_err)?;
    writeln!(out, "avg length (km)          {:.2}", total_km / n as f64).map_err(io_err)?;
    writeln!(out, "max length (km)          {max_km:.2}").map_err(io_err)?;
    Ok(())
}

/// Builds a dataset wrapper around loaded trajectories so the featurizer
/// helper can be reused.
fn dataset_from(trajs: Vec<trajcl_geo::Trajectory>) -> Dataset {
    let mut region = trajs[0].bbox();
    for t in &trajs[1..] {
        region = region.union(&t.bbox());
    }
    Dataset { profile: DatasetProfile::Porto, trajectories: trajs, region }
}

fn train_cmd(args: &Args, out: &mut impl std::io::Write) -> Result<(), String> {
    let trajs = load_trajectory_file(Path::new(args.req("input")?))
        .map_err(|e| e.to_string())?;
    if trajs.len() < 8 {
        return Err(format!("need at least 8 trajectories to train, got {}", trajs.len()));
    }
    let seed: u64 = args.num("seed", 0)?;
    let mut cfg = TrajClConfig::scaled_default();
    cfg.dim = args.num("dim", 32)?;
    cfg.ffn_hidden = cfg.dim * 2;
    cfg.proj_dim = (cfg.dim / 2).max(8);
    cfg.max_epochs = args.num("epochs", 3)?;
    cfg.batch_size = args.num("batch", 32)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let dataset = dataset_from(trajs);
    writeln!(out, "building featurizer (grid + node2vec)...").map_err(io_err)?;
    let featurizer = build_featurizer(&dataset, cfg.dim, cfg.max_len, &mut rng);
    writeln!(out, "training TrajCL (dim={}, epochs<={})...", cfg.dim, cfg.max_epochs)
        .map_err(io_err)?;
    let mut moco = MocoState::new(&cfg, EncoderVariant::Dual, &mut rng);
    let report = train(
        &mut moco,
        &featurizer,
        &dataset.trajectories,
        &StepDecay::trajcl_default(),
        &mut rng,
    );
    writeln!(
        out,
        "trained {} epochs in {:.1}s (final loss {:.4})",
        report.epochs_run,
        report.seconds,
        report.epoch_losses.last().copied().unwrap_or(f32::NAN)
    )
    .map_err(io_err)?;
    let bytes = save_model(&moco.online, &featurizer, featurizer.grid().cell_side());
    let path = args.req("out")?;
    std::fs::write(path, bytes).map_err(io_err)?;
    writeln!(out, "saved model to {path}").map_err(io_err)?;
    Ok(())
}

fn embed(args: &Args, out: &mut impl std::io::Write) -> Result<(), String> {
    let bytes = std::fs::read(args.req("model")?).map_err(io_err)?;
    let (model, featurizer) = load_model(&bytes).map_err(|e| e.to_string())?;
    let trajs = load_trajectory_file(Path::new(args.req("input")?))
        .map_err(|e| e.to_string())?;
    let mut rng = StdRng::seed_from_u64(0);
    let emb = model.embed(&featurizer, &trajs, &mut rng);
    let path = args.req("out")?;
    let mut file = std::io::BufWriter::new(std::fs::File::create(path).map_err(io_err)?);
    for r in 0..emb.shape().rows() {
        let row: Vec<String> = emb.row(r).iter().map(|v| format!("{v:.6}")).collect();
        writeln!(file, "{}", row.join(",")).map_err(io_err)?;
    }
    writeln!(out, "wrote {} x {} embeddings to {path}", trajs.len(), model.cfg.dim)
        .map_err(io_err)?;
    Ok(())
}

fn query(args: &Args, out: &mut impl std::io::Write) -> Result<(), String> {
    let bytes = std::fs::read(args.req("model")?).map_err(io_err)?;
    let (model, featurizer) = load_model(&bytes).map_err(|e| e.to_string())?;
    let db = load_trajectory_file(Path::new(args.req("db")?)).map_err(|e| e.to_string())?;
    let qi: usize = args.num("query", 0)?;
    let k: usize = args.num("k", 5)?;
    if qi >= db.len() {
        return Err(format!("query index {qi} out of range ({} trajectories)", db.len()));
    }
    let mut rng = StdRng::seed_from_u64(0);
    let emb = model.embed(&featurizer, &db, &mut rng);
    let q = model.embed(&featurizer, std::slice::from_ref(&db[qi]), &mut rng);
    let dists = l1_distances(&q, &emb);
    let mut order: Vec<usize> = (0..db.len()).collect();
    order.sort_by(|&a, &b| dists[a].total_cmp(&dists[b]));
    writeln!(out, "top-{k} similar to trajectory {qi}:").map_err(io_err)?;
    for (rank, &i) in order.iter().filter(|&&i| i != qi).take(k).enumerate() {
        writeln!(
            out,
            "  #{} idx={i} L1={:.4} ({} pts, {:.2} km)",
            rank + 1,
            dists[i],
            db[i].len(),
            db[i].length() / 1000.0
        )
        .map_err(io_err)?;
    }
    Ok(())
}

fn approx(args: &Args, out: &mut impl std::io::Write) -> Result<(), String> {
    let bytes = std::fs::read(args.req("model")?).map_err(io_err)?;
    let (model, featurizer) = load_model(&bytes).map_err(|e| e.to_string())?;
    let trajs = load_trajectory_file(Path::new(args.req("input")?))
        .map_err(|e| e.to_string())?;
    if trajs.len() < 20 {
        return Err("need at least 20 trajectories for approx".into());
    }
    let measure = parse_measure(args.req("measure")?)?;
    let mut rng = StdRng::seed_from_u64(1);
    let split = trajs.len() * 7 / 10;
    writeln!(out, "fine-tuning towards {} on {split} trajectories...", measure.name())
        .map_err(io_err)?;
    let cfg = FinetuneConfig {
        scope: FinetuneScope::LastLayer,
        pairs_per_epoch: args.num("pairs", 128)?,
        batch_pairs: 16,
        epochs: args.num("epochs", 2)?,
        lr: 2e-3,
    };
    let est = finetune(&model, &featurizer, &trajs[..split], measure, &cfg, &mut rng);
    // Evaluate HR@5 on the held-out tail.
    let eval = &trajs[split..];
    let nq = (eval.len() / 4).max(2);
    let (queries, database) = eval.split_at(nq);
    let true_d = pairwise_distances(queries, database, measure);
    let qe = est.embed(&featurizer, queries, &mut rng);
    let de = est.embed(&featurizer, database, &mut rng);
    let pred = l1_distances(&qe, &de);
    let mut hr = 0.0;
    let dbn = database.len();
    for q in 0..nq {
        hr += hit_ratio(&true_d[q * dbn..(q + 1) * dbn], &pred[q * dbn..(q + 1) * dbn], 5);
    }
    writeln!(out, "HR@5 approximating {}: {:.3}", measure.name(), hr / nq as f64)
        .map_err(io_err)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cmd(line: &str) -> (i32, String) {
        let argv: Vec<String> = line.split_whitespace().map(|s| s.to_string()).collect();
        let args = Args::parse(&argv).unwrap();
        let mut out = Vec::new();
        let code = run(&args, &mut out);
        (code, String::from_utf8(out).unwrap())
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("trajcl_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn help_prints_usage() {
        let (code, out) = run_cmd("help");
        assert_eq!(code, 0);
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors() {
        let (code, out) = run_cmd("bogus --x 1");
        assert_eq!(code, 1);
        assert!(out.contains("unknown command"));
    }

    #[test]
    fn generate_then_stats() {
        let path = tmp("gen.traj");
        let (code, out) = run_cmd(&format!(
            "generate --profile porto --count 30 --out {}",
            path.display()
        ));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("wrote 30 trajectories"));
        let (code, out) = run_cmd(&format!("stats --input {}", path.display()));
        assert_eq!(code, 0);
        assert!(out.contains("#trajectories            30"));
    }

    #[test]
    fn full_train_embed_query_pipeline() {
        let data = tmp("pipeline.traj");
        let model = tmp("pipeline.tcl");
        let emb = tmp("pipeline.csv");
        let (code, out) = run_cmd(&format!(
            "generate --profile porto --count 40 --out {}",
            data.display()
        ));
        assert_eq!(code, 0, "{out}");
        let (code, out) = run_cmd(&format!(
            "train --input {} --out {} --dim 16 --epochs 1 --batch 8",
            data.display(),
            model.display()
        ));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("saved model"));
        let (code, out) = run_cmd(&format!(
            "embed --model {} --input {} --out {}",
            model.display(),
            data.display(),
            emb.display()
        ));
        assert_eq!(code, 0, "{out}");
        let lines = std::fs::read_to_string(&emb).unwrap();
        assert_eq!(lines.lines().count(), 40);
        assert_eq!(lines.lines().next().unwrap().split(',').count(), 16);
        let (code, out) = run_cmd(&format!(
            "query --model {} --db {} --query 0 --k 3",
            model.display(),
            data.display()
        ));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("top-3 similar"));
    }

    #[test]
    fn train_rejects_tiny_input() {
        let data = tmp("tiny.traj");
        std::fs::write(&data, "1,2 3,4\n").unwrap();
        let (code, out) = run_cmd(&format!(
            "train --input {} --out /dev/null",
            data.display()
        ));
        assert_eq!(code, 1);
        assert!(out.contains("at least 8"));
    }

    #[test]
    fn measure_parsing() {
        assert!(parse_measure("hausdorff").is_ok());
        assert!(parse_measure("EDWP").is_ok());
        assert!(parse_measure("cosine").is_err());
        assert!(parse_profile("germany").is_ok());
        assert!(parse_profile("mars").is_err());
    }
}
