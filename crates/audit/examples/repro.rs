//! Replays a fuzz reproducer file against the engine decoder.
fn main() {
    let path = std::env::args().nth(1).expect("usage: repro <file>");
    let bytes = std::fs::read(&path).expect("read repro");
    println!("{} bytes", bytes.len());
    let engine = trajcl_engine::Engine::from_bytes(&bytes);
    match &engine {
        Ok(e) => {
            println!("decoded ok; probing");
            let probe: trajcl_geo::Trajectory = (0..4)
                .map(|i| trajcl_geo::Point::new(100.0 + 50.0 * i as f64, 200.0))
                .collect();
            println!(
                "embed: {:?}",
                e.embed_all(std::slice::from_ref(&probe))
                    .map(|t| t.shape().dims().to_vec())
            );
            println!("knn: {:?}", e.knn(&probe, 2).map(|h| h.len()));
        }
        Err(e) => println!("rejected: {e}"),
    }
}
