//! `trajcl-audit`: the workspace's self-auditing toolkit, wired into CI
//! as `trajcl audit`.
//!
//! Two halves, both dependency-free beyond the workspace itself:
//!
//! - [`lint`] — a lexer-level static-analysis pass enforcing the serving
//!   stack's panic-safety contract (no `unwrap`/`expect`/`panic!` in
//!   serve+index non-test code, `// SAFETY:` above every unsafe site,
//!   no lossy `as` casts in codec modules, no `todo!`/`dbg!`), with a
//!   count-ratcheted allowlist for grandfathered sites.
//! - [`fuzz`] — a deterministic structure-aware mutation fuzzer for the
//!   four untrusted decoders (serve frames, the JSON parser, IVF index
//!   blobs, TCE1 engine files), asserting "reject cleanly or decode to
//!   something probe-able, never panic".
//!
//! Trust boundaries and the rationale for each rule are documented in
//! DESIGN.md §11.

#![warn(missing_docs)]

pub mod fuzz;
pub mod lint;

pub use fuzz::{FuzzOptions, FuzzReport};
pub use lint::{LintReport, Violation};
