//! A lexer-level static-analysis pass over the workspace source.
//!
//! The rules encode the serving stack's panic-safety contract (see
//! DESIGN.md §11) without any external parser dependency: the source is
//! *masked* — comments, strings and char literals blanked out, newlines
//! kept — so token scans cannot be fooled by `"unwrap()"` inside a string
//! or a commented-out `panic!`. Four rules run over the masked text:
//!
//! | rule | scope | violation |
//! |------|-------|-----------|
//! | `no-unwrap`    | `crates/serve`, `crates/index` non-test code | `.unwrap()`, `.expect(...)`, `panic!` |
//! | `safety-comment` | every crate | an `unsafe {` block or `unsafe impl` without a `// SAFETY:` comment directly above |
//! | `no-lossy-as`  | codec/decoder modules | `as` casts to a narrower type (`u8`/`u16`/`u32`/`i8`/`i16`/`i32`/`f32`) |
//! | `no-todo`      | every crate | `todo!` or `dbg!` |
//!
//! Grandfathered sites live in `crates/audit/allowlist.txt` as
//! `rule path max_count` lines — a count-based ratchet: the build fails
//! when a file *exceeds* its allowance (a regression), and the report
//! nags when a file comes in *under* it (time to tighten the number).

use std::fmt;
use std::path::{Path, PathBuf};

/// Decoder/codec modules where lossy `as` casts are flagged: these parse
/// attacker-controlled bytes, so a silent truncation is a correctness
/// (and occasionally a memory-safety) hazard rather than a style issue.
const CODEC_MODULES: &[&str] = &[
    "crates/core/src/persist.rs",
    "crates/nn/src/store.rs",
    "crates/index/src/ivf.rs",
    "crates/engine/src/engine.rs",
    "crates/serve/src/proto.rs",
    "crates/serve/src/json.rs",
];

/// Crates whose non-test code must be panic-free (the serving stack).
const NO_PANIC_SCOPES: &[&str] = &["crates/serve/src/", "crates/index/src/"];

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier (`no-unwrap`, `safety-comment`, ...).
    pub rule: &'static str,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.snippet
        )
    }
}

/// Outcome of a lint run over the tree.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Violations NOT covered by the allowlist (each one fails the run).
    pub new_violations: Vec<Violation>,
    /// Violations absorbed by allowlist allowances.
    pub grandfathered: usize,
    /// `rule path` entries whose allowance exceeds the current count —
    /// the ratchet should be tightened.
    pub stale_allowances: Vec<String>,
    /// Files scanned.
    pub files: usize,
}

impl LintReport {
    /// Whether the tree passes (no violations beyond the allowlist).
    pub fn passed(&self) -> bool {
        self.new_violations.is_empty()
    }
}

/// Runs the lint over `<root>/crates/*/src`, reading the allowlist from
/// `<root>/crates/audit/allowlist.txt` (a missing allowlist means no
/// allowances).
///
/// # Errors
/// Propagates I/O errors from walking or reading the tree.
pub fn run_lint(root: &Path) -> std::io::Result<LintReport> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for entry in std::fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }
    files.sort();
    let mut violations = Vec::new();
    for file in &files {
        let text = std::fs::read_to_string(file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        violations.extend(lint_source(&rel, &text));
    }
    let allowlist = load_allowlist(&root.join("crates/audit/allowlist.txt"));
    Ok(apply_allowlist(violations, &allowlist, files.len()))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// One allowlist entry: up to `max` violations of `rule` in `path`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allowance {
    /// Rule identifier the allowance applies to.
    pub rule: String,
    /// Repo-relative file path.
    pub path: String,
    /// Maximum tolerated count (the ratchet).
    pub max: usize,
}

fn load_allowlist(path: &Path) -> Vec<Allowance> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    parse_allowlist(&text)
}

/// Parses `rule path max_count` lines (`#` comments and blanks skipped);
/// malformed lines are ignored rather than failing the run.
pub fn parse_allowlist(text: &str) -> Vec<Allowance> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let mut parts = l.split_whitespace();
            Some(Allowance {
                rule: parts.next()?.to_string(),
                path: parts.next()?.to_string(),
                max: parts.next()?.parse().ok()?,
            })
        })
        .collect()
}

fn apply_allowlist(
    violations: Vec<Violation>,
    allowlist: &[Allowance],
    files: usize,
) -> LintReport {
    let mut report = LintReport {
        files,
        ..LintReport::default()
    };
    // Group counts per (rule, path); within a group, allowances absorb the
    // first `max` hits — the ratchet cares about counts, not line numbers,
    // so unrelated edits shifting lines never break the build.
    let mut absorbed: Vec<(String, String, usize)> = allowlist
        .iter()
        .map(|a| (a.rule.clone(), a.path.clone(), a.max))
        .collect();
    for v in violations {
        let slot = absorbed
            .iter_mut()
            .find(|(r, p, left)| *left > 0 && r == v.rule && *p == v.path);
        match slot {
            Some((_, _, left)) => {
                *left -= 1;
                report.grandfathered += 1;
            }
            None => report.new_violations.push(v),
        }
    }
    for (rule, path, left) in absorbed {
        if left > 0 {
            report
                .stale_allowances
                .push(format!("{rule} {path} (allowance exceeds count by {left})"));
        }
    }
    report
}

/// Lints one file's source text; `path` is the repo-relative label used
/// for scoping rules and reporting.
pub fn lint_source(path: &str, text: &str) -> Vec<Violation> {
    let masked = mask_source(text);
    let test_lines = test_line_mask(&masked);
    let lines: Vec<&str> = text.lines().collect();
    let masked_bytes = masked.as_bytes();
    let line_of = line_index(masked_bytes);
    let mut out = Vec::new();

    let in_tests =
        |byte: usize| -> bool { test_lines.get(line_of[byte]).copied().unwrap_or(false) };
    let mut push = |rule: &'static str, byte: usize| {
        let line = line_of[byte];
        out.push(Violation {
            rule,
            path: path.to_string(),
            line: line + 1,
            snippet: lines.get(line).map_or("", |l| l.trim()).to_string(),
        });
    };

    let no_panic_scope = NO_PANIC_SCOPES.iter().any(|s| path.starts_with(s));
    let codec_scope = CODEC_MODULES.contains(&path);

    for (start, word) in idents(masked_bytes) {
        match word {
            "unwrap" | "expect" if no_panic_scope && !in_tests(start) => {
                // Only the postfix-call form: `.unwrap()` / `.expect(`.
                let before = prev_non_ws(masked_bytes, start);
                let after = next_non_ws(masked_bytes, start + word.len());
                if before == Some(b'.') && after == Some(b'(') {
                    push("no-unwrap", start);
                }
            }
            "panic"
                if no_panic_scope
                    && !in_tests(start)
                    && next_non_ws(masked_bytes, start + word.len()) == Some(b'!') =>
            {
                push("no-unwrap", start);
            }
            "todo" | "dbg"
                if !in_tests(start)
                    && next_non_ws(masked_bytes, start + word.len()) == Some(b'!') =>
            {
                push("no-todo", start);
            }
            "unsafe" if !in_tests(start) => {
                let rest = &masked[start + word.len()..];
                let next = rest.trim_start();
                // `unsafe {` performs operations; `unsafe impl` asserts a
                // whole-type contract. Both need a written justification.
                // `unsafe fn` merely declares (its body operations carry
                // their own blocks under `deny(unsafe_op_in_unsafe_fn)`).
                let needs = next.starts_with('{') || next.starts_with("impl");
                if needs && !has_safety_comment(&lines, line_of[start]) {
                    push("safety-comment", start);
                }
            }
            "as" if codec_scope && !in_tests(start) => {
                let rest = &masked[start + word.len()..];
                let target: String = rest
                    .trim_start()
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric())
                    .collect();
                if matches!(
                    target.as_str(),
                    "u8" | "u16" | "u32" | "i8" | "i16" | "i32" | "f32"
                ) {
                    push("no-lossy-as", start);
                }
            }
            _ => {}
        }
    }
    out
}

/// Whether the contiguous `//` comment block directly above `line`
/// mentions `SAFETY:`.
fn has_safety_comment(lines: &[&str], line: usize) -> bool {
    // The `unsafe` token may sit on a continuation line of a multi-line
    // expression; accept a SAFETY marker earlier on the same line too.
    if lines.get(line).is_some_and(|l| l.contains("SAFETY:")) {
        return true;
    }
    let mut i = line;
    while i > 0 {
        i -= 1;
        let trimmed = lines[i].trim_start();
        if trimmed.starts_with("//") {
            if trimmed.contains("SAFETY:") {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

/// Byte index → 0-based line number, for every byte of `text`.
fn line_index(text: &[u8]) -> Vec<usize> {
    let mut out = Vec::with_capacity(text.len() + 1);
    let mut line = 0usize;
    for &b in text {
        out.push(line);
        if b == b'\n' {
            line += 1;
        }
    }
    out.push(line);
    out
}

fn prev_non_ws(b: &[u8], mut i: usize) -> Option<u8> {
    while i > 0 {
        i -= 1;
        if !b[i].is_ascii_whitespace() {
            return Some(b[i]);
        }
    }
    None
}

fn next_non_ws(b: &[u8], mut i: usize) -> Option<u8> {
    while i < b.len() {
        if !b[i].is_ascii_whitespace() {
            return Some(b[i]);
        }
        i += 1;
    }
    None
}

/// Iterates `(start, word)` over identifier tokens of masked source.
fn idents(b: &[u8]) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        if b[i].is_ascii_alphabetic() || b[i] == b'_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            // Masked source is ASCII-safe in ident positions.
            if let Ok(w) = std::str::from_utf8(&b[start..i]) {
                out.push((start, w));
            }
        } else {
            i += 1;
        }
    }
    out
}

/// Replaces comment bodies, string/char literal contents and their
/// delimiters with spaces, preserving byte offsets and newlines, so the
/// token scans above cannot match inside non-code text.
pub fn mask_source(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = b.to_vec();
    let mut i = 0usize;
    let blank = |out: &mut [u8], from: usize, to: usize| {
        for slot in &mut out[from..to] {
            if *slot != b'\n' {
                *slot = b' ';
            }
        }
    };
    while i < b.len() {
        let prev_ident = i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_');
        match b[i] {
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let end = memchr_newline(b, i);
                blank(&mut out, i, end);
                i = end;
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < b.len() && depth > 0 {
                    if b[j] == b'/' && b.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && b.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut out, i, j);
                i = j;
            }
            b'r' | b'b' if !prev_ident && is_raw_string_start(b, i) => {
                let end = skip_raw_string(b, i);
                blank(&mut out, i, end);
                i = end;
            }
            b'b' if !prev_ident && b.get(i + 1) == Some(&b'"') => {
                let end = skip_quoted(b, i + 1);
                blank(&mut out, i, end);
                i = end;
            }
            b'"' => {
                let end = skip_quoted(b, i);
                blank(&mut out, i, end);
                i = end;
            }
            b'\'' => {
                if let Some(end) = char_literal_end(b, i) {
                    blank(&mut out, i, end);
                    i = end;
                } else {
                    // A lifetime: leave it (it can't contain rule tokens
                    // because `unsafe`/`as`/... are reserved words).
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    // Masking only writes ASCII spaces over existing bytes, so the result
    // is still valid UTF-8.
    String::from_utf8(out).unwrap_or_else(|_| src.to_string())
}

fn memchr_newline(b: &[u8], from: usize) -> usize {
    b[from..]
        .iter()
        .position(|&c| c == b'\n')
        .map_or(b.len(), |p| from + p)
}

/// Past-the-end of a `"..."` literal starting at the opening quote.
fn skip_quoted(b: &[u8], open: usize) -> usize {
    let mut i = open + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    b.len()
}

/// Whether `r"`, `r#"`, `br"` or `br#"` starts at `i`.
fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if b.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while b.get(j) == Some(&b'#') {
        j += 1;
    }
    b.get(j) == Some(&b'"')
}

fn skip_raw_string(b: &[u8], i: usize) -> usize {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    j += 1; // 'r'
    let mut hashes = 0usize;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    while j < b.len() {
        if b[j] == b'"'
            && b[j + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == b'#')
                .count()
                == hashes
        {
            return j + 1 + hashes;
        }
        j += 1;
    }
    b.len()
}

/// Past-the-end of a char literal at `open`, or `None` for a lifetime.
fn char_literal_end(b: &[u8], open: usize) -> Option<usize> {
    let next = *b.get(open + 1)?;
    if next == b'\\' {
        // Escaped char: find the closing quote.
        let mut j = open + 2;
        while j < b.len() {
            match b[j] {
                b'\\' => j += 2,
                b'\'' => return Some(j + 1),
                _ => j += 1,
            }
        }
        return None;
    }
    // Unescaped: one char (possibly multi-byte) then a closing quote.
    let width = match next {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    };
    if b.get(open + 1 + width) == Some(&b'\'') {
        Some(open + 2 + width)
    } else {
        None // `'a` in `<'a>` or `&'a` — a lifetime.
    }
}

/// Marks the lines belonging to `#[cfg(test)]` / `#[test]` items so the
/// panic rules skip test code (tests are *supposed* to unwrap).
fn test_line_mask(masked: &str) -> Vec<bool> {
    let b = masked.as_bytes();
    let line_of = line_index(b);
    let total_lines = line_of.last().map_or(0, |&l| l + 1);
    let mut is_test = vec![false; total_lines];
    let mut search = 0usize;
    while let Some(found) = find_test_attr(masked, search) {
        let (attr_start, attr_end) = found;
        // Skip any further attributes stacked after this one.
        let mut item = attr_end;
        loop {
            let rest = &b[item..];
            let skipped = rest.iter().take_while(|c| c.is_ascii_whitespace()).count();
            item += skipped;
            if b.get(item) == Some(&b'#') && b.get(item + 1) == Some(&b'[') {
                item = skip_bracketed(b, item + 1);
            } else {
                break;
            }
        }
        // The item body: everything to the matching `}` of its first
        // brace (or to the `;` of a braceless item).
        let mut j = item;
        let end = loop {
            match b.get(j) {
                None => break b.len(),
                Some(b';') => break j + 1,
                Some(b'{') => break skip_braced(b, j),
                _ => j += 1,
            }
        };
        for line in is_test
            .iter_mut()
            .take(line_of[end.min(b.len())] + 1)
            .skip(line_of[attr_start])
        {
            *line = true;
        }
        search = end.max(attr_end);
    }
    is_test
}

/// Finds the next `#[cfg(test)]` or `#[test]` attribute at or after
/// `from`; returns its byte span.
fn find_test_attr(masked: &str, from: usize) -> Option<(usize, usize)> {
    let hit = ["#[cfg(test)]", "#[test]"]
        .iter()
        .filter_map(|pat| masked[from..].find(pat).map(|p| (from + p, pat.len())))
        .min()?;
    Some((hit.0, hit.0 + hit.1))
}

/// Past-the-end of a `[...]` starting at `open`.
fn skip_bracketed(b: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < b.len() {
        match b[i] {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    b.len()
}

/// Past-the-end of a `{...}` starting at `open`.
fn skip_braced(b: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < b.len() {
        match b[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    b.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_blanks_comments_and_strings() {
        let src = "let x = \"unwrap()\"; // panic!\n/* dbg! */ let y = 1;";
        let masked = mask_source(src);
        assert!(!masked.contains("unwrap"));
        assert!(!masked.contains("panic"));
        assert!(!masked.contains("dbg"));
        assert!(masked.contains("let y = 1;"));
        assert_eq!(masked.len(), src.len());
    }

    #[test]
    fn masking_handles_raw_strings_and_chars() {
        let src = "let s = r#\"a \" panic! \"#; let c = '\\''; let l: &'static str = \"x\";";
        let masked = mask_source(src);
        assert!(!masked.contains("panic"));
        assert!(masked.contains("'static"), "lifetimes survive: {masked}");
    }

    #[test]
    fn flags_unwrap_in_serve_scope_only() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(lint_source("crates/serve/src/server.rs", src).len(), 1);
        assert_eq!(lint_source("crates/core/src/model.rs", src).len(), 0);
    }

    #[test]
    fn skips_test_code() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u32>.unwrap(); panic!(); }\n}\n";
        assert!(lint_source("crates/serve/src/server.rs", src).is_empty());
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        let bad = "fn f() { unsafe { g() } }";
        let good = "fn f() {\n    // SAFETY: g has no preconditions here.\n    unsafe { g() }\n}";
        let v = lint_source("crates/tensor/src/pool.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "safety-comment");
        assert!(lint_source("crates/tensor/src/pool.rs", good).is_empty());
        // `unsafe fn` declarations and fn-pointer types are exempt.
        let decl = "unsafe fn f() {} struct S { call: unsafe fn(usize) }";
        assert!(lint_source("crates/tensor/src/pool.rs", decl).is_empty());
    }

    #[test]
    fn lossy_as_only_in_codec_modules() {
        let src = "fn f(x: usize) -> u32 { x as u32 }";
        assert_eq!(lint_source("crates/serve/src/json.rs", src).len(), 1);
        assert_eq!(lint_source("crates/serve/src/server.rs", src).len(), 0);
        // Widening casts are fine even in codecs.
        let widen = "fn f(x: u32) -> usize { x as usize }";
        assert!(lint_source("crates/serve/src/json.rs", widen).is_empty());
    }

    #[test]
    fn todo_and_dbg_flagged_everywhere() {
        let src = "fn f() { todo!() }\nfn g() { dbg!(1); }";
        let v = lint_source("crates/core/src/model.rs", src);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.rule == "no-todo"));
    }

    #[test]
    fn allowlist_absorbs_exact_count_and_flags_excess() {
        let violations = vec![
            Violation {
                rule: "no-unwrap",
                path: "crates/serve/src/a.rs".into(),
                line: 1,
                snippet: "x.unwrap()".into(),
            };
            3
        ];
        let allow = parse_allowlist("no-unwrap crates/serve/src/a.rs 2\n# comment\n");
        let report = apply_allowlist(violations, &allow, 1);
        assert_eq!(report.grandfathered, 2);
        assert_eq!(report.new_violations.len(), 1);
        assert!(!report.passed());
        assert!(report.stale_allowances.is_empty());
    }

    #[test]
    fn allowlist_reports_stale_allowances() {
        let allow = parse_allowlist("no-unwrap crates/serve/src/a.rs 5");
        let report = apply_allowlist(Vec::new(), &allow, 1);
        assert!(report.passed());
        assert_eq!(report.stale_allowances.len(), 1);
    }
}
