//! Deterministic structure-aware mutation fuzzing for every decoder that
//! parses untrusted bytes: the serve frame reader, the JSON parser, the
//! IVF index loader (all three sections), the TCE1 engine loader and the
//! write-ahead-log record/checkpoint decoders.
//!
//! The harness is a classic corpus mutator, not coverage-guided: each
//! target starts from a small set of *valid* encodings (so mutations land
//! near the format's structure instead of dying at the magic check) and
//! runs `cases` mutated inputs through the decoder under
//! [`std::panic::catch_unwind`]. The contract asserted for every input:
//!
//! 1. the decoder returns `Ok`/`Some` or `Err`/`None` — it never panics;
//! 2. a decode that *succeeds* yields a value that survives a probe
//!    (search/embed), i.e. accepted data is internally consistent.
//!
//! Determinism: case `i` of target `t` derives its RNG from
//! `seed_from_u64(FUZZ_SEED ^ (t << 32) ^ i)`, so a CI failure replays
//! bit-for-bit locally and every reproducer is re-derivable. Failures
//! additionally drop their exact input bytes into `repro_dir`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trajcl_core::{EncoderVariant, Featurizer, TrajClConfig, TrajClModel};
use trajcl_engine::Engine;
use trajcl_geo::{Bbox, Grid, Point, SpatialNorm, Trajectory};
use trajcl_index::{IvfIndex, Metric, Quantization};
use trajcl_tensor::{Shape, Tensor};

/// Base seed of the whole fuzz run (xor-folded with target and case ids).
pub const FUZZ_SEED: u64 = 0x7261_6a63_6c2d_6131; // "trajcl-a1"

/// Fuzzing knobs.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Mutated inputs per target.
    pub cases_per_target: usize,
    /// Where failing inputs are written (skipped when `None`).
    pub repro_dir: Option<PathBuf>,
}

/// Per-target outcome counts.
#[derive(Debug)]
pub struct TargetReport {
    /// Target name (`json`, `proto`, `ivf`, `engine`, `wal`).
    pub name: &'static str,
    /// Inputs executed (corpus entries + mutations).
    pub cases: usize,
    /// Inputs the decoder accepted.
    pub accepted: usize,
    /// Inputs the decoder rejected with a clean error.
    pub rejected: usize,
    /// Panics caught (each one is a bug).
    pub panics: usize,
    /// Reproducer files written for caught panics.
    pub repro_paths: Vec<PathBuf>,
}

/// Outcome of a full fuzz run.
#[derive(Debug)]
pub struct FuzzReport {
    /// One report per target.
    pub targets: Vec<TargetReport>,
}

impl FuzzReport {
    /// Whether every target ran panic-free.
    pub fn passed(&self) -> bool {
        self.targets.iter().all(|t| t.panics == 0)
    }

    /// Total panics across targets.
    pub fn total_panics(&self) -> usize {
        self.targets.iter().map(|t| t.panics).sum()
    }
}

/// What a decoder did with one input (when it didn't panic).
enum Outcome {
    Accepted,
    Rejected,
}

/// Runs every fuzz target for `opts.cases_per_target` cases each.
///
/// The default panic hook prints a backtrace per panic; with ~100k cases
/// per target that would swamp stderr, so the hook is silenced for the
/// duration of the run and restored afterwards.
pub fn run_all(opts: &FuzzOptions) -> FuzzReport {
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let targets = vec![
        run_target(0, "json", &corpus_json(), opts, |bytes| {
            let text = String::from_utf8_lossy(bytes);
            match trajcl_serve::json::parse(&text) {
                Ok(_) => Outcome::Accepted,
                Err(_) => Outcome::Rejected,
            }
        }),
        run_target(1, "proto", &corpus_proto(), opts, |bytes| {
            // Drain the mutated stream frame by frame, parsing every
            // payload that frames correctly (capped so a mutation cannot
            // manufacture an unbounded number of tiny frames).
            let mut reader = std::io::Cursor::new(bytes);
            let mut any = false;
            for _ in 0..64 {
                match trajcl_serve::proto::read_frame(&mut reader) {
                    Ok(Some(payload)) => {
                        any = true;
                        let _ = trajcl_serve::json::parse(&payload);
                    }
                    Ok(None) => break,
                    Err(_) => return Outcome::Rejected,
                }
            }
            if any {
                Outcome::Accepted
            } else {
                Outcome::Rejected
            }
        }),
        run_target(2, "ivf", &corpus_ivf(), opts, |bytes| {
            match IvfIndex::from_bytes(bytes) {
                Some(idx) => {
                    // Accepted indexes must be searchable: a decode that
                    // passes validation but indexes out of bounds here is
                    // exactly the bug class this target exists to catch.
                    let query = vec![0.25f32; idx.dim()];
                    let _ = idx.search(&query, 3, 2);
                    Outcome::Accepted
                }
                None => Outcome::Rejected,
            }
        }),
        run_target(3, "engine", &corpus_engine(), opts, |bytes| {
            match Engine::from_bytes(bytes) {
                Ok(engine) => {
                    // Probe the loaded model end-to-end: mutated weights
                    // may be garbage (NaNs are fine) but the forward pass
                    // must not panic, and neither must an indexed query.
                    let probe: Trajectory = (0..4)
                        .map(|i| Point::new(100.0 + 50.0 * i as f64, 200.0))
                        .collect();
                    let _ = engine.embed_all(std::slice::from_ref(&probe));
                    let _ = engine.knn(&probe, 2);
                    Outcome::Accepted
                }
                Err(_) => Outcome::Rejected,
            }
        }),
        run_target(4, "wal", &corpus_wal(), opts, |bytes| {
            // The log replayer is total: any byte string yields a valid
            // prefix of ops plus a torn tail it refuses to consume. The
            // contract fuzzed here is exactly the one recovery relies on:
            // whatever it accepts must re-encode to the bytes it consumed
            // (canonical encoding), and the tail must start with a record
            // that strictly errors.
            let (ops, consumed) = trajcl_index::wal::replay(bytes);
            let reencoded: Vec<u8> = ops
                .iter()
                .flat_map(trajcl_index::wal::encode_record)
                .collect();
            assert_eq!(
                reencoded,
                bytes[..consumed],
                "replayed prefix must re-encode canonically"
            );
            if consumed < bytes.len() {
                assert!(
                    trajcl_index::wal::decode_record(&bytes[consumed..]).is_err(),
                    "replay stopped before a decodable record"
                );
            }
            // The same input doubles as a checkpoint-blob candidate: an
            // accepted blob must survive an encode round trip bit-exactly.
            let ckpt = trajcl_index::wal::decode_checkpoint(bytes);
            if let Ok((dim, entries)) = &ckpt {
                assert_eq!(
                    trajcl_index::wal::encode_checkpoint(*dim, entries),
                    bytes,
                    "accepted checkpoint must round-trip"
                );
            }
            if !ops.is_empty() || ckpt.is_ok() {
                Outcome::Accepted
            } else {
                Outcome::Rejected
            }
        }),
    ];
    std::panic::set_hook(prev_hook);
    FuzzReport { targets }
}

fn run_target(
    target_id: u64,
    name: &'static str,
    corpus: &[Vec<u8>],
    opts: &FuzzOptions,
    check: impl Fn(&[u8]) -> Outcome,
) -> TargetReport {
    let mut report = TargetReport {
        name,
        cases: 0,
        accepted: 0,
        rejected: 0,
        panics: 0,
        repro_paths: Vec::new(),
    };
    let mut run_one = |input: &[u8], case: usize| {
        report.cases += 1;
        match catch_unwind(AssertUnwindSafe(|| check(input))) {
            Ok(Outcome::Accepted) => report.accepted += 1,
            Ok(Outcome::Rejected) => report.rejected += 1,
            Err(_) => {
                report.panics += 1;
                if let Some(dir) = &opts.repro_dir {
                    // Keep a bounded number of reproducers per target.
                    if report.repro_paths.len() < 16 && std::fs::create_dir_all(dir).is_ok() {
                        let path = dir.join(format!("{name}-case{case}.bin"));
                        if std::fs::write(&path, input).is_ok() {
                            report.repro_paths.push(path);
                        }
                    }
                }
            }
        }
    };
    // The unmutated corpus runs first: every entry must be accepted, so a
    // panic here means the corpus (or a decoder regression) is broken in
    // a way mutation statistics would hide.
    for (i, entry) in corpus.iter().enumerate() {
        run_one(entry, i);
    }
    for case in corpus.len()..opts.cases_per_target {
        let mut rng = StdRng::seed_from_u64(FUZZ_SEED ^ (target_id << 32) ^ case as u64);
        let base = &corpus[rng.gen_range(0..corpus.len())];
        let input = mutate(base, corpus, &mut rng);
        run_one(&input, case);
    }
    report
}

/// Values worth splicing over 4-byte fields: boundary counts and lengths
/// that historically trip `n - 1`, `n * size` and `Vec::with_capacity`.
const INTERESTING_U32: &[u32] = &[
    0,
    1,
    2,
    0x7f,
    0xff,
    0x100,
    0xffff,
    0x0100_0000,
    0x00ff_ffff,
    0x7fff_ffff,
    0xffff_fffe,
    0xffff_ffff,
];

/// Applies 1–4 random mutation operators to `base`.
pub fn mutate(base: &[u8], corpus: &[Vec<u8>], rng: &mut StdRng) -> Vec<u8> {
    let mut out = base.to_vec();
    let ops = rng.gen_range(1..=4usize);
    for _ in 0..ops {
        if out.is_empty() {
            out = vec![rng.gen_range(0..=u8::MAX)];
            continue;
        }
        match rng.gen_range(0..7usize) {
            // Bit flips: the classic off-by-one-bit probe.
            0 => {
                let flips = rng.gen_range(1..=4usize);
                for _ in 0..flips {
                    let i = rng.gen_range(0..out.len());
                    out[i] ^= 1 << rng.gen_range(0..8u32);
                }
            }
            // Byte randomization.
            1 => {
                let i = rng.gen_range(0..out.len());
                out[i] = rng.gen_range(0..=u8::MAX);
            }
            // Truncation: every decoder must survive any prefix.
            2 => {
                let len = rng.gen_range(0..out.len());
                out.truncate(len);
            }
            // Extension: trailing garbage after a valid encoding.
            3 => {
                let extra = rng.gen_range(1..=16usize);
                for _ in 0..extra {
                    out.push(rng.gen_range(0..=u8::MAX));
                }
            }
            // Length-field attack: splice an interesting u32 anywhere —
            // unaligned offsets included, since framing shifts fields.
            4 => {
                let v = match rng.gen_range(0..INTERESTING_U32.len() + 3) {
                    i if i < INTERESTING_U32.len() => INTERESTING_U32[i],
                    _ => {
                        let len = out.len() as u32;
                        [len.wrapping_sub(1), len, len.wrapping_add(1)][rng.gen_range(0..3usize)]
                    }
                };
                if out.len() >= 4 {
                    let at = rng.gen_range(0..=out.len() - 4);
                    out[at..at + 4].copy_from_slice(&v.to_le_bytes());
                }
            }
            // Splice a window from another corpus entry (crossover).
            5 => {
                let donor = &corpus[rng.gen_range(0..corpus.len())];
                if !donor.is_empty() {
                    let from = rng.gen_range(0..donor.len());
                    let n = rng.gen_range(1..=(donor.len() - from).min(64));
                    let at = rng.gen_range(0..=out.len());
                    let insert: Vec<u8> = donor[from..from + n].to_vec();
                    out.splice(at..at.min(out.len()), insert);
                }
            }
            // ASCII digit tweak: mutates decimal headers / JSON numbers
            // without destroying the surrounding structure.
            _ => {
                let digits: Vec<usize> = out
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| b.is_ascii_digit())
                    .map(|(i, _)| i)
                    .collect();
                if let Some(&i) = digits.get(rng.gen_range(0..digits.len().max(1))) {
                    out[i] = b'0' + rng.gen_range(0..10u8);
                }
            }
        }
    }
    out
}

/// Valid protocol JSON payloads (one per op, plus edge shapes).
fn corpus_json() -> Vec<Vec<u8>> {
    [
        r#"{"op":"knn","traj":[[1.5,-2.0],[3,4]],"k":5}"#,
        r#"{"op":"embed","traj":[[0,0],[100.25,50.5],[200,100]],"req":7}"#,
        r#"{"op":"distance","a":[[0,0],[1,1]],"b":[[2,2],[3,3]]}"#,
        r#"{"op":"upsert","id":42,"traj":[[9.5,8.25],[10,11]]}"#,
        r#"{"op":"remove","id":42}"#,
        r#"{"op":"stats"}"#,
        r#"{"s":"a\"b\\c\ndA","deep":[[[[1]]]],"neg":-1.25e2}"#,
        r#"[1e308,-1e-308,0.5,123456789,null,true,false,""]"#,
    ]
    .iter()
    .map(|s| s.as_bytes().to_vec())
    .collect()
}

/// Valid framed streams (`LEN\n{json}\n` sequences).
fn corpus_proto() -> Vec<Vec<u8>> {
    let payloads = corpus_json();
    let mut single = Vec::new();
    let mut multi = Vec::new();
    for (i, p) in payloads.iter().enumerate() {
        let text = String::from_utf8_lossy(p).into_owned();
        if i == 0 {
            trajcl_serve::proto::write_frame(&mut single, &text).expect("vec write");
        }
        trajcl_serve::proto::write_frame(&mut multi, &text).expect("vec write");
    }
    let mut blanks = b"\n\n".to_vec();
    blanks.extend_from_slice(&single);
    vec![single, multi, blanks]
}

/// Valid IVF blobs covering all three sections: IVF1 (f32), IVF2 (SQ8)
/// and IVF3 (PQ).
fn corpus_ivf() -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(FUZZ_SEED);
    let emb = Tensor::randn(Shape::d2(64, 8), 0.0, 1.0, &mut rng);
    let plain = IvfIndex::build(&emb, 4, Metric::L1, &mut rng);
    let sq8 = IvfIndex::build_with(&emb, 4, Metric::L1, Quantization::Sq8, 4, &mut rng);
    let pq = IvfIndex::build_with(
        &emb,
        4,
        Metric::L1,
        Quantization::Pq { m: 2, nbits: 4 },
        4,
        &mut rng,
    );
    vec![plain.to_bytes(), sq8.to_bytes(), pq.to_bytes()]
}

/// A small trained-shape (but untrained) model + featurizer, mirroring
/// the persistence tests: cheap to build, structurally identical to a
/// real checkpoint.
fn tiny_model() -> (TrajClModel, Featurizer, Vec<Trajectory>) {
    let mut rng = StdRng::seed_from_u64(FUZZ_SEED);
    let cfg = TrajClConfig::test_default();
    let region = Bbox::new(Point::new(0.0, 0.0), Point::new(1000.0, 800.0));
    let grid = Grid::new(region, 100.0);
    let table = Tensor::randn(Shape::d2(grid.num_cells(), cfg.dim), 0.0, 0.5, &mut rng);
    let feat = Featurizer::new(grid, table, SpatialNorm::new(region, 100.0), cfg.max_len);
    let model = TrajClModel::new(&cfg, EncoderVariant::Dual, &mut rng);
    let trajs: Vec<Trajectory> = (0..40)
        .map(|i| {
            (0..10)
                .map(|j| Point::new(50.0 + j as f64 * 80.0, 20.0 + (i % 8) as f64 * 90.0))
                .collect()
        })
        .collect();
    (model, feat, trajs)
}

/// Valid TCE1 blobs: bare model, SQ8-indexed, PQ-indexed, and a
/// tail-less legacy file (pre-quantization format).
fn corpus_engine() -> Vec<Vec<u8>> {
    let (model, feat, trajs) = tiny_model();
    let bare = Engine::builder()
        .trajcl(model, feat)
        .build()
        .expect("bare engine");
    let bare_bytes = bare.to_bytes().expect("serialize bare engine");

    let (model, feat, _) = tiny_model();
    let sq8 = Engine::builder()
        .trajcl(model, feat)
        .database(trajs.clone())
        .ivf_index(3)
        .quantization(Quantization::Sq8)
        .build()
        .expect("sq8 engine");
    let sq8_bytes = sq8.to_bytes().expect("serialize sq8 engine");

    let (model, feat, _) = tiny_model();
    let pq = Engine::builder()
        .trajcl(model, feat)
        .database(trajs)
        .ivf_index(3)
        .quantization(Quantization::Pq { m: 4, nbits: 4 })
        .build()
        .expect("pq engine");
    let pq_bytes = pq.to_bytes().expect("serialize pq engine");

    // Dropping the last 5 bytes removes the `shards u32 + durability u8`
    // suffix, yielding a valid pre-sharding engine file (quantization and
    // scan-mode tails intact) and exercising the tail-absent path.
    let legacy = sq8_bytes[..sq8_bytes.len() - 5].to_vec();

    vec![bare_bytes, sq8_bytes, pq_bytes, legacy]
}

/// Valid WAL inputs: single records of every op tag, a multi-record log
/// stream, and checkpoint blobs (empty and populated) — the replayer
/// accepts any bytes, so "valid" here means "decodes at least one op or
/// checkpoint", keeping mutations near the record framing.
fn corpus_wal() -> Vec<Vec<u8>> {
    use trajcl_index::wal::{encode_checkpoint, encode_record};
    use trajcl_index::{CheckpointEntry, WalOp};

    let upsert = |id: u64, fill: f32| WalOp::Upsert {
        id,
        vector: (0..8).map(|i| fill + i as f32 * 0.25).collect(),
    };
    let single = encode_record(&upsert(42, 1.5));
    let mut stream = Vec::new();
    for op in [
        upsert(1, -0.5),
        WalOp::Remove { id: 1 },
        WalOp::Compact,
        upsert(u64::MAX, 0.0),
        WalOp::Upsert {
            id: 7,
            vector: Vec::new(), // zero-dim vector: smallest legal upsert
        },
    ] {
        stream.extend_from_slice(&encode_record(&op));
    }
    let entries: Vec<CheckpointEntry> = (0..6)
        .map(|i| CheckpointEntry {
            id: i,
            dirty: i % 2 == 1,
            vector: (0..8).map(|j| (i * 8 + j) as f32 * 0.125).collect(),
        })
        .collect();
    vec![
        single,
        stream,
        encode_checkpoint(8, &entries),
        encode_checkpoint(8, &[]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A smoke-sized run of every target: the corpus itself must decode,
    /// and a few thousand mutations must not panic. The full-depth run
    /// lives behind `trajcl audit`.
    #[test]
    fn quick_fuzz_is_panic_free() {
        let report = run_all(&FuzzOptions {
            cases_per_target: 2_000,
            repro_dir: None,
        });
        assert_eq!(report.targets.len(), 5);
        for t in &report.targets {
            assert_eq!(t.panics, 0, "target {} panicked", t.name);
            assert_eq!(t.cases, 2_000, "target {} case count", t.name);
            // The valid corpus must decode: if everything is rejected the
            // mutator is exploring noise, not the format.
            assert!(t.accepted > 0, "target {} accepted nothing", t.name);
        }
    }

    #[test]
    fn mutation_is_deterministic() {
        let corpus = corpus_json();
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(
            mutate(&corpus[0], &corpus, &mut a),
            mutate(&corpus[0], &corpus, &mut b)
        );
    }

    #[test]
    fn truncated_corpora_are_rejected_not_panicking() {
        for blob in corpus_ivf() {
            for cut in [0, 1, 4, blob.len() / 2, blob.len() - 1] {
                assert!(IvfIndex::from_bytes(&blob[..cut]).is_none());
            }
        }
        for blob in corpus_engine() {
            for cut in [0, 3, 8, blob.len() / 2] {
                assert!(Engine::from_bytes(&blob[..cut]).is_err());
            }
        }
        // WAL decoders: a truncated stream replays to a strict prefix and
        // a truncated checkpoint is an error, never a panic.
        for blob in corpus_wal() {
            for cut in [0, 3, 7, blob.len() / 2, blob.len() - 1] {
                let (_, consumed) = trajcl_index::wal::replay(&blob[..cut]);
                assert!(consumed <= cut);
                assert!(trajcl_index::wal::decode_checkpoint(&blob[..cut]).is_err());
            }
        }
    }

    /// The documented WAL failure modes each map to a clean error: bad op
    /// tag, impossible length prefix, garbled checksum.
    #[test]
    fn wal_corruption_errors_cleanly() {
        use trajcl_index::wal::{decode_record, encode_record, WalError};
        use trajcl_index::WalOp;

        let good = encode_record(&WalOp::Remove { id: 9 });
        let mut bad_tag = good.clone();
        bad_tag[8] = 0xEE; // first payload byte is the op tag
        assert!(matches!(
            decode_record(&bad_tag),
            Err(WalError::BadChecksum) | Err(WalError::BadTag(_))
        ));
        let mut bad_len = good.clone();
        bad_len[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_record(&bad_len),
            Err(WalError::BadLength(_))
        ));
        let mut bad_crc = good;
        bad_crc[4] ^= 0xFF;
        assert!(matches!(
            decode_record(&bad_crc),
            Err(WalError::BadChecksum)
        ));
    }
}
