//! Biased second-order random walks over the grid graph (node2vec \[46\]).
//!
//! The grid graph has one vertex per cell and edges to the eight
//! surrounding cells (TrajCL §IV-B). Walks are biased by the node2vec
//! return parameter `p` and in-out parameter `q`.

use rand::seq::SliceRandom;
use rand::Rng;
use trajcl_geo::{CellId, Grid};

/// Configuration for walk generation.
#[derive(Debug, Clone)]
pub struct WalkConfig {
    /// Steps per walk.
    pub walk_length: usize,
    /// Walks started from every vertex.
    pub walks_per_node: usize,
    /// Return parameter `p` (likelihood of revisiting the previous node).
    pub p: f64,
    /// In-out parameter `q` (BFS- vs DFS-like exploration).
    pub q: f64,
}

impl Default for WalkConfig {
    fn default() -> Self {
        WalkConfig {
            walk_length: 20,
            walks_per_node: 4,
            p: 1.0,
            q: 1.0,
        }
    }
}

/// True if cells `a` and `b` are identical or 8-adjacent.
fn adjacent(grid: &Grid, a: CellId, b: CellId) -> bool {
    let (ca, ra) = grid.col_row(a);
    let (cb, rb) = grid.col_row(b);
    ca.abs_diff(cb) <= 1 && ra.abs_diff(rb) <= 1
}

/// Generates node2vec walks over the grid graph.
///
/// Returns `num_cells * walks_per_node` walks, each of length
/// `walk_length`.
pub fn grid_walks(grid: &Grid, cfg: &WalkConfig, rng: &mut impl Rng) -> Vec<Vec<CellId>> {
    let n = grid.num_cells();
    let mut walks = Vec::with_capacity(n * cfg.walks_per_node);
    let mut starts: Vec<CellId> = (0..n as u32).collect();
    for _ in 0..cfg.walks_per_node {
        starts.shuffle(rng);
        for &start in &starts {
            walks.push(one_walk(grid, start, cfg, rng));
        }
    }
    walks
}

fn one_walk(grid: &Grid, start: CellId, cfg: &WalkConfig, rng: &mut impl Rng) -> Vec<CellId> {
    let mut walk = Vec::with_capacity(cfg.walk_length);
    walk.push(start);
    let mut prev: Option<CellId> = None;
    let mut cur = start;
    while walk.len() < cfg.walk_length {
        let neighbors = grid.neighbors8(cur);
        if neighbors.is_empty() {
            break;
        }
        let next = match prev {
            None => *neighbors.choose(rng).expect("nonempty"),
            Some(pv) => {
                // Second-order bias: weight 1/p to return, 1 to stay in the
                // previous node's neighbourhood, 1/q to move outward.
                let weights: Vec<f64> = neighbors
                    .iter()
                    .map(|&nb| {
                        if nb == pv {
                            1.0 / cfg.p
                        } else if adjacent(grid, nb, pv) {
                            1.0
                        } else {
                            1.0 / cfg.q
                        }
                    })
                    .collect();
                weighted_choice(&neighbors, &weights, rng)
            }
        };
        prev = Some(cur);
        cur = next;
        walk.push(cur);
    }
    walk
}

fn weighted_choice(items: &[CellId], weights: &[f64], rng: &mut impl Rng) -> CellId {
    let total: f64 = weights.iter().sum();
    let mut pick = rng.gen::<f64>() * total;
    for (item, &w) in items.iter().zip(weights) {
        pick -= w;
        if pick <= 0.0 {
            return *item;
        }
    }
    *items.last().expect("nonempty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use trajcl_geo::{Bbox, Point};

    fn grid() -> Grid {
        Grid::new(
            Bbox::new(Point::new(0.0, 0.0), Point::new(500.0, 500.0)),
            100.0,
        )
    }

    #[test]
    fn walks_have_requested_shape() {
        let g = grid();
        let cfg = WalkConfig {
            walk_length: 10,
            walks_per_node: 2,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(0);
        let walks = grid_walks(&g, &cfg, &mut rng);
        assert_eq!(walks.len(), g.num_cells() * 2);
        assert!(walks.iter().all(|w| w.len() == 10));
    }

    #[test]
    fn walk_steps_are_adjacent() {
        let g = grid();
        let cfg = WalkConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        for walk in grid_walks(&g, &cfg, &mut rng).iter().take(50) {
            for w in walk.windows(2) {
                assert!(adjacent(&g, w[0], w[1]), "non-adjacent step {:?}", w);
                assert_ne!(w[0], w[1], "walk must move");
            }
        }
    }

    #[test]
    fn every_cell_is_started_from() {
        let g = grid();
        let cfg = WalkConfig {
            walks_per_node: 1,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let walks = grid_walks(&g, &cfg, &mut rng);
        let mut seen = vec![false; g.num_cells()];
        for w in &walks {
            seen[w[0] as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn low_p_increases_backtracking() {
        let g = grid();
        let mut rng = StdRng::seed_from_u64(3);
        let count_backtracks = |p: f64, rng: &mut StdRng| -> usize {
            let cfg = WalkConfig {
                p,
                q: 1.0,
                walk_length: 30,
                walks_per_node: 2,
            };
            grid_walks(&g, &cfg, rng)
                .iter()
                .map(|w| w.windows(3).filter(|t| t[0] == t[2]).count())
                .sum()
        };
        let returny = count_backtracks(0.05, &mut rng);
        let explorey = count_backtracks(20.0, &mut rng);
        assert!(
            returny > explorey,
            "p=0.05 should backtrack more than p=20 ({returny} vs {explorey})"
        );
    }
}
