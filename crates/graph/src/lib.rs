//! # trajcl-graph
//!
//! From-scratch node2vec \[46\] over the grid graph: biased second-order
//! random walks plus skip-gram-with-negative-sampling training. The
//! resulting cell embeddings are TrajCL's *structural feature* vocabulary
//! (§IV-B) — they encode the grid adjacency topology so that nearby cells
//! get nearby embeddings.
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use trajcl_geo::{Bbox, Grid, Point};
//! use trajcl_graph::{node2vec_cell_embeddings, SgnsConfig, WalkConfig};
//!
//! let grid = Grid::new(Bbox::new(Point::new(0.0, 0.0), Point::new(300.0, 300.0)), 100.0);
//! let mut rng = StdRng::seed_from_u64(0);
//! let table = node2vec_cell_embeddings(
//!     &grid,
//!     &WalkConfig { walk_length: 5, walks_per_node: 1, p: 1.0, q: 1.0 },
//!     &SgnsConfig { dim: 8, epochs: 1, ..Default::default() },
//!     &mut rng,
//! );
//! assert_eq!(table.shape().dims(), &[9, 8]);
//! ```

pub mod sgns;
pub mod walks;

pub use sgns::{cosine, train_sgns, SgnsConfig};
pub use walks::{grid_walks, WalkConfig};

use rand::Rng;
use trajcl_geo::Grid;
use trajcl_tensor::Tensor;

/// End-to-end node2vec over a grid: walks then SGNS, returning the
/// `(num_cells, dim)` cell-embedding table.
pub fn node2vec_cell_embeddings(
    grid: &Grid,
    walk_cfg: &WalkConfig,
    sgns_cfg: &SgnsConfig,
    rng: &mut impl Rng,
) -> Tensor {
    let walks = grid_walks(grid, walk_cfg, rng);
    train_sgns(&walks, grid.num_cells(), sgns_cfg, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use trajcl_geo::{Bbox, Point};

    #[test]
    fn adjacent_cells_more_similar_than_distant() {
        let grid = Grid::new(
            Bbox::new(Point::new(0.0, 0.0), Point::new(800.0, 800.0)),
            100.0,
        );
        let mut rng = StdRng::seed_from_u64(7);
        let walk_cfg = WalkConfig {
            walk_length: 15,
            walks_per_node: 6,
            p: 1.0,
            q: 1.0,
        };
        let sgns_cfg = SgnsConfig {
            dim: 16,
            window: 3,
            negatives: 4,
            epochs: 3,
            lr: 0.025,
        };
        let table = node2vec_cell_embeddings(&grid, &walk_cfg, &sgns_cfg, &mut rng);
        assert_eq!(table.shape()[0], grid.num_cells());

        // Average similarity of 8-adjacent pairs vs far-apart pairs.
        let cols = grid.cols();
        let cell = |c: usize, r: usize| r * cols + c;
        let mut near = 0.0;
        let mut near_n = 0;
        let mut far = 0.0;
        let mut far_n = 0;
        for c in 1..cols - 1 {
            for r in 1..grid.rows() - 1 {
                near += cosine(&table, cell(c, r), cell(c + 1, r));
                near_n += 1;
                let fc = (c + cols / 2) % cols;
                let fr = (r + grid.rows() / 2) % grid.rows();
                far += cosine(&table, cell(c, r), cell(fc, fr));
                far_n += 1;
            }
        }
        let near_avg = near / near_n as f32;
        let far_avg = far / far_n as f32;
        assert!(
            near_avg > far_avg + 0.1,
            "adjacency must be encoded: near {near_avg} vs far {far_avg}"
        );
    }
}
