//! Skip-gram with negative sampling (SGNS) over random walks — the training
//! objective of node2vec \[46\].
//!
//! Trains directly on flat f32 tables (outside the autograd tape): SGNS
//! gradients are two-vector rank-1 updates, so hand-rolled SGD is both
//! simpler and orders of magnitude faster than taping every pair.

use rand::Rng;
use trajcl_geo::CellId;
use trajcl_tensor::{Shape, Tensor};

/// SGNS training configuration.
#[derive(Debug, Clone)]
pub struct SgnsConfig {
    /// Embedding dimensionality (`d_t` for TrajCL's structural features).
    pub dim: usize,
    /// Context window radius.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Training epochs over the walk corpus.
    pub epochs: usize,
    /// Initial learning rate (linearly decayed to 10%).
    pub lr: f32,
}

impl Default for SgnsConfig {
    fn default() -> Self {
        SgnsConfig {
            dim: 32,
            window: 5,
            negatives: 5,
            epochs: 3,
            lr: 0.025,
        }
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Trains cell embeddings on the walk corpus; returns a `(vocab, dim)`
/// table whose rows are the input ("center") vectors, as node2vec uses.
pub fn train_sgns(
    walks: &[Vec<CellId>],
    vocab: usize,
    cfg: &SgnsConfig,
    rng: &mut impl Rng,
) -> Tensor {
    let d = cfg.dim;
    let bound = 0.5 / d as f32;
    let mut center: Vec<f32> = (0..vocab * d)
        .map(|_| rng.gen_range(-bound..bound))
        .collect();
    let mut context: Vec<f32> = vec![0.0; vocab * d];

    let total_steps = (cfg.epochs * walks.len()).max(1);
    let mut step = 0usize;
    let mut grad_c = vec![0.0f32; d];
    for _epoch in 0..cfg.epochs {
        for walk in walks {
            let lr = cfg.lr * (1.0 - 0.9 * step as f32 / total_steps as f32);
            step += 1;
            for (i, &u) in walk.iter().enumerate() {
                let lo = i.saturating_sub(cfg.window);
                let hi = (i + cfg.window + 1).min(walk.len());
                for (j, &v) in walk.iter().enumerate().take(hi).skip(lo) {
                    if i == j {
                        continue;
                    }
                    // Positive pair (u, v), then `negatives` random draws.
                    train_pair(
                        &mut center,
                        &mut context,
                        u as usize,
                        v as usize,
                        1.0,
                        lr,
                        d,
                        &mut grad_c,
                    );
                    for _ in 0..cfg.negatives {
                        let neg = rng.gen_range(0..vocab);
                        if neg == v as usize {
                            continue;
                        }
                        train_pair(
                            &mut center,
                            &mut context,
                            u as usize,
                            neg,
                            0.0,
                            lr,
                            d,
                            &mut grad_c,
                        );
                    }
                }
            }
        }
    }
    Tensor::from_vec(center, Shape::d2(vocab, d))
}

#[allow(clippy::too_many_arguments)]
#[inline]
fn train_pair(
    center: &mut [f32],
    context: &mut [f32],
    u: usize,
    v: usize,
    label: f32,
    lr: f32,
    d: usize,
    grad_c: &mut [f32],
) {
    let cu = u * d;
    let cv = v * d;
    let mut dot = 0.0f32;
    for k in 0..d {
        dot += center[cu + k] * context[cv + k];
    }
    let err = (label - sigmoid(dot)) * lr;
    for k in 0..d {
        grad_c[k] = err * context[cv + k];
    }
    for k in 0..d {
        context[cv + k] += err * center[cu + k];
    }
    for k in 0..d {
        center[cu + k] += grad_c[k];
    }
}

/// Cosine similarity between two embedding rows.
pub fn cosine(table: &Tensor, a: usize, b: usize) -> f32 {
    let d = table.shape()[1];
    let ra = &table.data()[a * d..(a + 1) * d];
    let rb = &table.data()[b * d..(b + 1) * d];
    let dot: f32 = ra.iter().zip(rb).map(|(x, y)| x * y).sum();
    let na: f32 = ra.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = rb.iter().map(|x| x * x).sum::<f32>().sqrt();
    dot / (na * nb).max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn table_shape_and_finiteness() {
        let walks = vec![vec![0u32, 1, 2, 1, 0], vec![2, 1, 0, 1, 2]];
        let mut rng = StdRng::seed_from_u64(0);
        let t = train_sgns(
            &walks,
            3,
            &SgnsConfig {
                dim: 8,
                ..Default::default()
            },
            &mut rng,
        );
        assert_eq!(t.shape(), Shape::d2(3, 8));
        assert!(t.all_finite());
    }

    #[test]
    fn co_occurring_tokens_become_similar() {
        // Two disjoint "communities": {0,1,2} and {3,4,5}; walks never cross.
        let mut walks = Vec::new();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let base = if rng.gen::<bool>() { 0u32 } else { 3u32 };
            let w: Vec<u32> = (0..12).map(|_| base + rng.gen_range(0..3)).collect();
            walks.push(w);
        }
        let cfg = SgnsConfig {
            dim: 16,
            epochs: 3,
            ..Default::default()
        };
        let t = train_sgns(&walks, 6, &cfg, &mut rng);
        let within = cosine(&t, 0, 1);
        let across = cosine(&t, 0, 4);
        assert!(
            within > across + 0.2,
            "same-community similarity {within} should beat cross {across}"
        );
    }
}
