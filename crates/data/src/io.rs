//! Plain-text trajectory I/O.
//!
//! Format: one trajectory per line, points as `x,y` pairs separated by
//! spaces (meters in the local plane). Lines starting with `#` are
//! comments. This is the interchange format of the `trajcl` CLI and is
//! trivially produced from any GPS dataset after projection.

use std::io::{BufRead, BufReader, Read, Write};
use trajcl_geo::{Point, Trajectory};

/// Errors from parsing trajectory text.
#[derive(Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Malformed coordinate pair with line and token context.
    BadPoint {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// Underlying I/O failure (message only, for test-friendly equality).
    Io(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadPoint { line, token } => {
                write!(f, "line {line}: malformed point {token:?} (expected x,y)")
            }
            ParseError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses trajectories from a reader; empty/comment lines are skipped.
pub fn read_trajectories(reader: impl Read) -> Result<Vec<Trajectory>, ParseError> {
    let buf = BufReader::new(reader);
    let mut out = Vec::new();
    for (i, line) in buf.lines().enumerate() {
        let line = line.map_err(|e| ParseError::Io(e.to_string()))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut points = Vec::new();
        for token in trimmed.split_whitespace() {
            let (x, y) = token.split_once(',').ok_or_else(|| ParseError::BadPoint {
                line: i + 1,
                token: token.into(),
            })?;
            let x: f64 = x.parse().map_err(|_| ParseError::BadPoint {
                line: i + 1,
                token: token.into(),
            })?;
            let y: f64 = y.parse().map_err(|_| ParseError::BadPoint {
                line: i + 1,
                token: token.into(),
            })?;
            points.push(Point::new(x, y));
        }
        if !points.is_empty() {
            out.push(Trajectory::new(points));
        }
    }
    Ok(out)
}

/// Writes trajectories in the line format (1 cm precision).
pub fn write_trajectories(writer: &mut impl Write, trajs: &[Trajectory]) -> std::io::Result<()> {
    for t in trajs {
        let mut first = true;
        for p in t.points() {
            if !first {
                write!(writer, " ")?;
            }
            write!(writer, "{:.2},{:.2}", p.x, p.y)?;
            first = false;
        }
        writeln!(writer)?;
    }
    Ok(())
}

/// Convenience: read a trajectory file from disk.
pub fn load_trajectory_file(path: &std::path::Path) -> Result<Vec<Trajectory>, ParseError> {
    let file = std::fs::File::open(path).map_err(|e| ParseError::Io(e.to_string()))?;
    read_trajectories(file)
}

/// Convenience: write a trajectory file to disk.
pub fn save_trajectory_file(path: &std::path::Path, trajs: &[Trajectory]) -> std::io::Result<()> {
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_trajectories(&mut file, trajs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let trajs = vec![
            Trajectory::from_xy(&[(0.0, 0.0), (10.5, -3.25)]),
            Trajectory::from_xy(&[(100.0, 200.0), (101.0, 201.0), (102.0, 199.0)]),
        ];
        let mut buf = Vec::new();
        write_trajectories(&mut buf, &trajs).unwrap();
        let parsed = read_trajectories(buf.as_slice()).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].len(), 2);
        assert_eq!(parsed[1].len(), 3);
        assert!((parsed[0].point(1).x - 10.5).abs() < 0.01);
        assert!((parsed[0].point(1).y + 3.25).abs() < 0.01);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "# header\n\n1,2 3,4\n  \n# trailing\n5,6\n";
        let parsed = read_trajectories(text.as_bytes()).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].len(), 2);
        assert_eq!(parsed[1].len(), 1);
    }

    #[test]
    fn reports_bad_tokens_with_line_numbers() {
        let text = "1,2 3,4\nnot-a-point\n";
        let err = read_trajectories(text.as_bytes()).unwrap_err();
        assert_eq!(
            err,
            ParseError::BadPoint {
                line: 2,
                token: "not-a-point".into()
            }
        );
        let text = "1,2 3,abc\n";
        assert!(matches!(
            read_trajectories(text.as_bytes()).unwrap_err(),
            ParseError::BadPoint { line: 1, .. }
        ));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("trajcl_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.traj");
        let trajs = vec![Trajectory::from_xy(&[(1.0, 2.0), (3.0, 4.0)])];
        save_trajectory_file(&path, &trajs).unwrap();
        let parsed = load_trajectory_file(&path).unwrap();
        assert_eq!(parsed.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
