//! Dataset container: generation, preprocessing filter, splits and Table II
//! statistics.

use crate::city::City;
use crate::profiles::DatasetProfile;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use trajcl_geo::{Bbox, Trajectory};

/// A generated dataset with its region metadata.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The profile this dataset was generated from.
    pub profile: DatasetProfile,
    /// All trajectories after preprocessing.
    pub trajectories: Vec<Trajectory>,
    /// The simulated region (used for grids and normalisation).
    pub region: Bbox,
}

/// Summary statistics in the shape of the paper's Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Number of trajectories.
    pub count: usize,
    /// Average points per trajectory.
    pub avg_points: f64,
    /// Maximum points per trajectory.
    pub max_points: usize,
    /// Average trajectory length (km).
    pub avg_length_km: f64,
    /// Maximum trajectory length (km).
    pub max_length_km: f64,
}

/// Train/validation/test/downstream split (paper §V-A partitioning).
#[derive(Debug, Clone)]
pub struct Splits {
    /// Contrastive pre-training set.
    pub train: Vec<Trajectory>,
    /// Validation set (10% of the training size).
    pub validation: Vec<Trajectory>,
    /// Query/database test pool.
    pub test: Vec<Trajectory>,
    /// Downstream fine-tuning pool (split 7:1:2 by the fine-tuner).
    pub downstream: Vec<Trajectory>,
}

impl Dataset {
    /// Generates a dataset of `count` trajectories from a profile
    /// (deterministic per profile seed + `salt`).
    pub fn generate(profile: DatasetProfile, count: usize, salt: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(profile.seed() ^ salt);
        let city = City::new(profile.city_config(), &mut rng);
        let cfg = city.config();
        // Preprocessing filter (paper: keep 20..=200-point trajectories
        // inside the region). The simulator respects both by construction,
        // but the filter is applied anyway to mirror the pipeline.
        let min_p = cfg.min_points;
        let max_p = cfg.max_points;
        let trajectories: Vec<Trajectory> = city
            .generate(count, &mut rng)
            .into_iter()
            .filter(|t| t.len() >= min_p && t.len() <= max_p)
            .collect();
        Dataset {
            profile,
            trajectories,
            region: city.region(),
        }
    }

    /// Table II-style statistics.
    pub fn stats(&self) -> DatasetStats {
        let count = self.trajectories.len();
        let total_points: usize = self.trajectories.iter().map(|t| t.len()).sum();
        let max_points = self.trajectories.iter().map(|t| t.len()).max().unwrap_or(0);
        let lengths: Vec<f64> = self
            .trajectories
            .iter()
            .map(|t| t.length() / 1000.0)
            .collect();
        DatasetStats {
            count,
            avg_points: total_points as f64 / count.max(1) as f64,
            max_points,
            avg_length_km: lengths.iter().sum::<f64>() / count.max(1) as f64,
            max_length_km: lengths.iter().fold(0.0, |a, &b| a.max(b)),
        }
    }

    /// Random disjoint splits following the paper's partitioning scheme,
    /// scaled: `train_size` for training, 10% of it for validation, and the
    /// remainder divided between the test pool and the downstream pool
    /// (4:1).
    pub fn split(&self, train_size: usize, rng: &mut impl Rng) -> Splits {
        let mut indices: Vec<usize> = (0..self.trajectories.len()).collect();
        indices.shuffle(rng);
        let val_size = (train_size / 10).max(1);
        let remaining = indices.len().saturating_sub(train_size + val_size);
        let test_size = remaining * 4 / 5;
        assert!(
            indices.len() >= train_size + val_size,
            "dataset too small for requested split"
        );
        let take = |range: std::ops::Range<usize>| -> Vec<Trajectory> {
            indices[range]
                .iter()
                .map(|&i| self.trajectories[i].clone())
                .collect()
        };
        let t0 = train_size;
        let t1 = t0 + val_size;
        let t2 = t1 + test_size;
        Splits {
            train: take(0..t0),
            validation: take(t0..t1),
            test: take(t1..t2),
            downstream: take(t2..indices.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(DatasetProfile::porto(), 20, 1);
        let b = Dataset::generate(DatasetProfile::porto(), 20, 1);
        assert_eq!(a.trajectories, b.trajectories);
        let c = Dataset::generate(DatasetProfile::porto(), 20, 2);
        assert_ne!(a.trajectories, c.trajectories);
    }

    #[test]
    fn stats_match_profile_targets() {
        let d = Dataset::generate(DatasetProfile::porto(), 300, 0);
        let s = d.stats();
        assert_eq!(s.count, 300);
        // Paper Table II: Porto avg 48 points, avg 6.37 km.
        assert!(
            (s.avg_points - 48.0).abs() < 12.0,
            "avg points {}",
            s.avg_points
        );
        assert!(
            s.avg_length_km > 2.0 && s.avg_length_km < 13.0,
            "len {}",
            s.avg_length_km
        );
        assert!(s.max_points <= 200);
    }

    #[test]
    fn split_is_disjoint_and_sized() {
        let d = Dataset::generate(DatasetProfile::chengdu(), 200, 0);
        let mut rng = StdRng::seed_from_u64(5);
        let s = d.split(100, &mut rng);
        assert_eq!(s.train.len(), 100);
        assert_eq!(s.validation.len(), 10);
        assert_eq!(s.test.len() + s.downstream.len(), 90);
        let total = s.train.len() + s.validation.len() + s.test.len() + s.downstream.len();
        assert_eq!(total, 200);
    }

    #[test]
    fn chengdu_has_more_points_than_porto() {
        let porto = Dataset::generate(DatasetProfile::porto(), 150, 0).stats();
        let chengdu = Dataset::generate(DatasetProfile::chengdu(), 150, 0).stats();
        assert!(chengdu.avg_points > porto.avg_points + 20.0);
        assert!(chengdu.avg_length_km < porto.avg_length_km);
    }

    #[test]
    fn germany_is_much_longer() {
        let g = Dataset::generate(DatasetProfile::germany(), 100, 0).stats();
        let p = Dataset::generate(DatasetProfile::porto(), 100, 0).stats();
        assert!(g.avg_length_km > 20.0 * p.avg_length_km);
    }
}
